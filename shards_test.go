package hpcc_test

import (
	"encoding/json"
	"testing"
	"time"

	"hpcc"
)

// The public sharding contract: Experiment.Run with Shards 2 and 4
// produces a byte-identical SimResult (JSON and all) to the
// single-engine run at the same seed.
func TestExperimentShardsByteIdentical(t *testing.T) {
	mk := func(shards int) hpcc.Experiment {
		return hpcc.Experiment{
			Scheme:   "hpcc",
			Topology: hpcc.Dumbbell{Pairs: 4},
			Traffic: []hpcc.Traffic{
				hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.6},
				hpcc.Incast{FanIn: 3, FlowSizeBytes: 200_000, LoadFraction: 0.02},
			},
			Horizon:  2 * time.Millisecond,
			Drain:    10 * time.Millisecond,
			MaxFlows: 120,
			Shards:   shards,
			Seed:     7,
		}
	}
	base, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if base.Flows == 0 {
		t.Fatal("baseline completed no flows — test is vacuous")
	}
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		res, err := mk(k).Run()
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("Shards=%d SimResult diverged:\n got %s\nwant %s", k, got, want)
		}
	}
}

// A FatTree run with the bounded completed-flow window and shards must
// also match the unbounded single-engine result.
func TestExperimentShardsFatTree(t *testing.T) {
	mk := func(shards, window int) hpcc.Experiment {
		return hpcc.Experiment{
			Scheme:              "hpcc",
			Topology:            hpcc.FatTree{},
			Traffic:             []hpcc.Traffic{hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.5}},
			Horizon:             time.Millisecond,
			Drain:               8 * time.Millisecond,
			MaxFlows:            80,
			Shards:              shards,
			CompletedFlowWindow: window,
			Seed:                1,
		}
	}
	base, err := mk(1, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(base)
	got4, err := mk(4, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(got4)
	if string(got) != string(want) {
		t.Fatalf("sharded+windowed FatTree diverged:\n got %s\nwant %s", got, want)
	}
}
