package hpcc_test

import (
	"encoding/json"
	"testing"
	"time"

	"hpcc"
)

// clearSyncFields zeroes the fields that legitimately differ between a
// serial run and a (possibly speculative) sharded one — engine count
// and synchronization accounting — so the rest of the SimResult can be
// compared byte-for-byte as JSON.
func clearSyncFields(r *hpcc.SimResult) {
	r.ShardsUsed = 0
	r.Speculated = false
	r.Epochs = 0
	r.SpecEpochs = 0
	r.SpecCommits = 0
	r.SpecRollbacks = 0
	r.SyncOverhead = 0
}

// The public sharding contract: Experiment.Run with Shards 2 and 4
// produces a byte-identical SimResult (JSON and all) to the
// single-engine run at the same seed.
func TestExperimentShardsByteIdentical(t *testing.T) {
	mk := func(shards int) hpcc.Experiment {
		return hpcc.Experiment{
			Scheme:   "hpcc",
			Topology: hpcc.Dumbbell{Pairs: 4},
			Traffic: []hpcc.Traffic{
				hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.6},
				hpcc.Incast{FanIn: 3, FlowSizeBytes: 200_000, LoadFraction: 0.02},
			},
			Horizon:  2 * time.Millisecond,
			Drain:    10 * time.Millisecond,
			MaxFlows: 120,
			Shards:   shards,
			Seed:     7,
		}
	}
	base, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if base.Flows == 0 {
		t.Fatal("baseline completed no flows — test is vacuous")
	}
	if base.ShardsUsed != 1 {
		t.Fatalf("baseline ShardsUsed = %d, want 1", base.ShardsUsed)
	}
	if base.Speculated || base.Epochs != 0 {
		t.Fatalf("serial run reports sync stats: speculated=%v epochs=%d", base.Speculated, base.Epochs)
	}
	clearSyncFields(base)
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		res, err := mk(k).Run()
		if err != nil {
			t.Fatal(err)
		}
		// The dumbbell has 2 rack-level clusters; Shards=4 engages the
		// per-host refinement and really runs 4 engines.
		if res.ShardsUsed != k {
			t.Fatalf("Shards=%d: ShardsUsed = %d, want %d", k, res.ShardsUsed, k)
		}
		if !res.Speculated {
			t.Fatalf("Shards=%d: speculation (default on) did not engage", k)
		}
		clearSyncFields(res)
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("Shards=%d SimResult diverged:\n got %s\nwant %s", k, got, want)
		}
	}
}

// Sharded execution is best-effort; the result must say how many
// engines actually ran so a fallback is never silent. Closed-loop
// traffic (AllToAll), observers and non-partitionable topologies
// (Star) all run on one engine regardless of the request.
func TestExperimentShardsUsedReportsFallback(t *testing.T) {
	run := func(e hpcc.Experiment) *hpcc.SimResult {
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	closed := run(hpcc.Experiment{
		Topology: hpcc.Dumbbell{Pairs: 2},
		Traffic:  []hpcc.Traffic{hpcc.AllToAll{FlowSizeBytes: 5_000}},
		Horizon:  time.Millisecond,
		Shards:   4,
	})
	if closed.ShardsUsed != 1 {
		t.Fatalf("closed-loop run reports ShardsUsed = %d, want 1", closed.ShardsUsed)
	}
	// A flat star used to be a fallback case; per-host sharding now
	// partitions it, so the request is honored.
	star := run(hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 6},
		Traffic:  []hpcc.Traffic{hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.2}},
		Horizon:  time.Millisecond,
		MaxFlows: 20,
		Shards:   4,
	})
	if star.ShardsUsed != 4 {
		t.Fatalf("star run reports ShardsUsed = %d, want 4", star.ShardsUsed)
	}
	sharded := run(hpcc.Experiment{
		Topology: hpcc.Dumbbell{Pairs: 4},
		Traffic:  []hpcc.Traffic{hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.4}},
		Horizon:  time.Millisecond,
		MaxFlows: 40,
		Shards:   2,
	})
	if sharded.ShardsUsed != 2 {
		t.Fatalf("partitionable run reports ShardsUsed = %d, want 2", sharded.ShardsUsed)
	}
}

// A FatTree run with the bounded completed-flow window and shards must
// also match the unbounded single-engine result.
func TestExperimentShardsFatTree(t *testing.T) {
	mk := func(shards, window int) hpcc.Experiment {
		return hpcc.Experiment{
			Scheme:              "hpcc",
			Topology:            hpcc.FatTree{},
			Traffic:             []hpcc.Traffic{hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.5}},
			Horizon:             time.Millisecond,
			Drain:               8 * time.Millisecond,
			MaxFlows:            80,
			Shards:              shards,
			CompletedFlowWindow: window,
			Seed:                1,
		}
	}
	base, err := mk(1, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	clearSyncFields(base)
	want, _ := json.Marshal(base)
	got4, err := mk(4, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got4.ShardsUsed != 4 {
		t.Fatalf("ShardsUsed = %d, want 4", got4.ShardsUsed)
	}
	clearSyncFields(got4)
	got, _ := json.Marshal(got4)
	if string(got) != string(want) {
		t.Fatalf("sharded+windowed FatTree diverged:\n got %s\nwant %s", got, want)
	}
}
