package packet

// Pool is a free list of Packet structs. A Packet is ~350 bytes (the
// inline 8-hop INT array dominates), and the simulator used to
// heap-allocate one per data packet *and* per ACK; recycling them at
// the terminal consumption points (host ACK processing, switch drops,
// PFC consumption) makes the per-packet hot path allocation-free in
// steady state.
//
// A Pool belongs to one simulated network (hosts and switches built by
// a topology.Builder share one); the whole world runs on a single
// goroutine, so there is no locking and recycling order is
// deterministic. Get returns a zeroed packet; Put does not scrub, so a
// frame already handed to tracing/tests stays readable until reuse.
type Pool struct {
	free []*Packet

	gets, news, puts uint64
}

// maxPoolFree bounds retained free packets (~1.5 MB at 4096); beyond
// it, Put lets packets go to the garbage collector. This keeps lossy
// scenarios — where drops strand packets at switch pools — from
// accumulating unbounded free lists.
const maxPoolFree = 4096

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, recycling a freed one when available.
// A nil pool degrades to plain allocation.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{}
		return p
	}
	pl.news++
	return &Packet{}
}

// Put recycles a packet the simulation has fully consumed. The caller
// must not touch p afterwards. Nil pool and nil packet are no-ops.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.puts++
	if len(pl.free) < maxPoolFree {
		pl.free = append(pl.free, p)
	}
}

// Recycled returns how many Gets were served from the free list (for
// tests and diagnostics).
func (pl *Pool) Recycled() uint64 { return pl.gets - pl.news }

// Allocated returns how many Gets fell through to the heap.
func (pl *Pool) Allocated() uint64 { return pl.news }
