package packet

// Pool is a free list of Packet structs. A Packet is ~350 bytes (the
// inline 8-hop INT array dominates), and the simulator used to
// heap-allocate one per data packet *and* per ACK; recycling them at
// the terminal consumption points (host ACK processing, switch drops,
// PFC consumption) makes the per-packet hot path allocation-free in
// steady state.
//
// A Pool belongs to one simulated network (hosts and switches built by
// a topology.Builder share one); the whole world runs on a single
// goroutine, so there is no locking and recycling order is
// deterministic. Get returns a zeroed packet; Put does not scrub, so a
// frame already handed to tracing/tests stays readable until reuse.
type Pool struct {
	free []*Packet

	gets, news, puts uint64

	snap poolSnap
}

// maxPoolFree bounds retained free packets (~1.5 MB at 4096); beyond
// it, Put lets packets go to the garbage collector. This keeps lossy
// scenarios — where drops strand packets at switch pools — from
// accumulating unbounded free lists.
const maxPoolFree = 4096

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, recycling a freed one when available.
// A nil pool degrades to plain allocation.
//
//hpcclint:alloc-free
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{} //hpcclint:allow hotpathalloc -- nil-pool degradation path, used only by tests without a pool
	}
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{}
		return p
	}
	pl.news++
	return &Packet{} //hpcclint:allow hotpathalloc -- pool miss warms the free list once; steady state recycles (TestSteadyStateAllocsPerPacketUnderBudget)
}

// Put recycles a packet the simulation has fully consumed. The caller
// must not touch p afterwards. Nil pool and nil packet are no-ops.
//
//hpcclint:alloc-free
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.puts++
	if len(pl.free) < maxPoolFree {
		pl.free = append(pl.free, p) //hpcclint:allow hotpathalloc -- free-list growth is amortized and capped at maxPoolFree
	}
}

// Recycled returns how many Gets were served from the free list (for
// tests and diagnostics).
func (pl *Pool) Recycled() uint64 { return pl.gets - pl.news }

// Allocated returns how many Gets fell through to the heap.
func (pl *Pool) Allocated() uint64 { return pl.news }

// snap is the pool's speculative-execution checkpoint: the freelist and
// counters as of the last Checkpoint call.
type poolSnap struct {
	free             []*Packet
	gets, news, puts uint64
}

// Checkpoint captures the freelist (pointers only — Get zeroes packets,
// so free packets' contents are irrelevant) and counters, overwriting
// the previous checkpoint. Part of the sim.Checkpointable contract used
// by speculative shard synchronization.
func (pl *Pool) Checkpoint() {
	pl.snap.free = append(pl.snap.free[:0], pl.free...)
	pl.snap.gets, pl.snap.news, pl.snap.puts = pl.gets, pl.news, pl.puts
}

// Rollback restores the last Checkpoint. Packets handed out during the
// rolled-back run return to the freelist with it; packets allocated
// fresh during that run are orphaned to the garbage collector.
func (pl *Pool) Rollback() {
	pl.free = append(pl.free[:0], pl.snap.free...)
	pl.gets, pl.news, pl.puts = pl.snap.gets, pl.snap.news, pl.snap.puts
}
