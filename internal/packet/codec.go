package packet

import (
	"encoding/binary"
	"fmt"

	"hpcc/internal/sim"
)

// This file implements the bit-exact INT wire format from Figure 7 of
// the paper:
//
//	nHop    (4 bits)  hop count, incremented by each switch
//	pathID  (12 bits) XOR of all switch IDs along the path
//	per hop (64 bits):
//	    B       (4 bits)  egress port speed, as an enum
//	    TS      (24 bits) egress timestamp, nanoseconds (wraps at 16.7ms)
//	    txBytes (20 bits) cumulative bytes sent, in units of 128 bytes
//	    qLen    (16 bits) queue length, in units of 80 bytes
//
// The sender only ever consumes *differences* of TS and txBytes between
// two ACKs of the same flow, so the wraparound fields decode correctly as
// long as two consecutive ACKs are less than one wrap apart — true by
// orders of magnitude in a data center.

// Quantization units from Figure 7.
const (
	TxBytesUnit = 128 // bytes
	QLenUnit    = 80  // bytes
	tsMask      = 1<<24 - 1
	txMask      = 1<<20 - 1
)

// speedEnum encodes the port-speed enum ("the type of speed of the
// egress port, e.g. 40Gbps, 100Gbps").
var speedEnum = []sim.Rate{
	0,
	1 * sim.Gbps,
	10 * sim.Gbps,
	25 * sim.Gbps,
	40 * sim.Gbps,
	50 * sim.Gbps,
	100 * sim.Gbps,
	200 * sim.Gbps,
	400 * sim.Gbps,
	800 * sim.Gbps,
}

// EncodeSpeed maps a rate to its 4-bit enum, or an error for a rate the
// wire format cannot express.
func EncodeSpeed(r sim.Rate) (uint8, error) {
	for i, v := range speedEnum {
		if v == r {
			return uint8(i), nil
		}
	}
	return 0, fmt.Errorf("packet: no speed enum for %v", r)
}

// DecodeSpeed is the inverse of EncodeSpeed.
func DecodeSpeed(code uint8) (sim.Rate, error) {
	if int(code) >= len(speedEnum) {
		return 0, fmt.Errorf("packet: invalid speed code %d", code)
	}
	return speedEnum[code], nil
}

// EncodedINTLen returns the encoded byte length for a header with n hops.
func EncodedINTLen(n int) int { return INTBaseBytes + n*INTHopBytes }

// EncodeINT serializes h into buf using the Figure-7 layout and returns
// the number of bytes written. buf must have room for EncodedINTLen
// bytes. Values are quantized exactly as the ASIC would: txBytes in
// 128-byte units (truncated), qLen in 80-byte units (rounded up so a
// non-empty queue never reads as empty, saturating at the field max),
// TS in nanoseconds modulo 2^24.
func EncodeINT(h *INTHeader, buf []byte) (int, error) {
	n := h.NHops
	if n > MaxHops {
		return 0, fmt.Errorf("packet: nHop %d exceeds max %d", n, MaxHops)
	}
	if len(buf) < EncodedINTLen(n) {
		return 0, fmt.Errorf("packet: buffer too small: %d < %d", len(buf), EncodedINTLen(n))
	}
	binary.BigEndian.PutUint16(buf, uint16(n)<<12|h.PathID&0x0fff)
	off := INTBaseBytes
	for i := 0; i < n; i++ {
		hop := &h.Hops[i]
		speed, err := EncodeSpeed(hop.B)
		if err != nil {
			return 0, err
		}
		ts := uint64(hop.TS.Nanoseconds()) & tsMask
		tx := (hop.TxBytes / TxBytesUnit) & txMask
		q := (hop.QLen + QLenUnit - 1) / QLenUnit
		if q > 0xffff {
			q = 0xffff
		}
		word := uint64(speed)<<60 | ts<<36 | tx<<16 | uint64(q)
		binary.BigEndian.PutUint64(buf[off:], word)
		off += INTHopBytes
	}
	return off, nil
}

// DecodeINT parses a Figure-7 INT header from buf. The decoded TS and
// TxBytes are the wrapped on-wire values (nanosecond and 128-byte
// granularity); use UnwrapTS/UnwrapTxBytes to reconstruct deltas.
func DecodeINT(buf []byte, h *INTHeader) (int, error) {
	if len(buf) < INTBaseBytes {
		return 0, fmt.Errorf("packet: INT header truncated")
	}
	w := binary.BigEndian.Uint16(buf)
	n := int(w >> 12)
	h.NHops = n
	h.PathID = w & 0x0fff
	if len(buf) < EncodedINTLen(n) {
		return 0, fmt.Errorf("packet: INT hops truncated: have %d bytes, need %d", len(buf), EncodedINTLen(n))
	}
	off := INTBaseBytes
	for i := 0; i < n; i++ {
		word := binary.BigEndian.Uint64(buf[off:])
		off += INTHopBytes
		speed, err := DecodeSpeed(uint8(word >> 60))
		if err != nil {
			return 0, err
		}
		h.Hops[i] = Hop{
			B:       speed,
			TS:      sim.Time(word>>36&tsMask) * sim.Nanosecond,
			TxBytes: (word >> 16 & txMask) * TxBytesUnit,
			QLen:    int64(word&0xffff) * QLenUnit,
		}
	}
	return off, nil
}

// UnwrapTS reconstructs the true delta between two wrapped 24-bit
// nanosecond timestamps (cur sampled after prev).
func UnwrapTS(prev, cur sim.Time) sim.Time {
	const wrap = (tsMask + 1) * int64(sim.Nanosecond)
	d := (int64(cur) - int64(prev)) % wrap
	if d < 0 {
		d += wrap
	}
	return sim.Time(d)
}

// UnwrapTxBytes reconstructs the true byte delta between two wrapped
// 20-bit 128-byte-unit counters (cur sampled after prev).
func UnwrapTxBytes(prev, cur uint64) uint64 {
	const wrap = (txMask + 1) * TxBytesUnit
	d := (int64(cur) - int64(prev)) % wrap
	if d < 0 {
		d += wrap
	}
	return uint64(d)
}

// Quantize rounds a hop record through the wire representation, so the
// simulator can hand congestion-control exactly what a hardware INT
// implementation would deliver. TS keeps absolute (unwrapped) time but
// at nanosecond granularity; TxBytes is truncated to 128-byte units;
// QLen is rounded up to 80-byte units.
func (hop Hop) Quantize() Hop {
	q := (hop.QLen + QLenUnit - 1) / QLenUnit * QLenUnit
	return Hop{
		B:       hop.B,
		TS:      hop.TS / sim.Nanosecond * sim.Nanosecond,
		TxBytes: hop.TxBytes / TxBytesUnit * TxBytesUnit,
		RxBytes: hop.RxBytes / TxBytesUnit * TxBytesUnit,
		QLen:    q,
	}
}
