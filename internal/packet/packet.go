// Package packet defines the simulated wire units: data packets, ACKs,
// NACKs, CNPs and PFC frames, plus the in-band network telemetry (INT)
// header that HPCC relies on (Figure 7 of the paper).
//
// Inside the simulator, packets carry INT records as structured fields at
// full precision (the "decoding layer" style: no per-packet byte-slice
// allocation). A separate bit-exact codec for the Figure-7 wire format
// lives in codec.go and is used to validate that the quantized ASIC
// representation round-trips; switches can optionally quantize their
// stamps through it to emulate hardware precision.
package packet

import (
	"fmt"

	"hpcc/internal/sim"
)

// Type discriminates the simulated frame kinds.
type Type uint8

// Frame kinds.
const (
	Data Type = iota
	Ack
	Nack
	CNP
	PFC
	// ReadReq is an RDMA READ request: the requester asks the
	// responder to stream Seq bytes back (§4.2 — HPCC supports RDMA
	// WRITE and READ; WRITE is the plain data flow).
	ReadReq
)

func (t Type) String() string {
	switch t {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nack:
		return "NACK"
	case CNP:
		return "CNP"
	case PFC:
		return "PFC"
	case ReadReq:
		return "READ"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Wire-size constants, in bytes. A data packet is payload + HeaderBytes
// (+ INTOverhead when INT is enabled, the paper's worst-case assumption
// of 42 bytes for 5 hops, §5.1).
const (
	HeaderBytes  = 64 // Eth + IP + UDP + IB BTH + ICRC, rounded
	AckBytes     = 64
	CtrlBytes    = 64 // NACK / CNP / PFC frames
	INTBaseBytes = 2  // nHop(4b) + pathID(12b)
	INTHopBytes  = 8  // B(4b) TS(24b) txBytes(20b) qLen(16b)
	// INTOverhead is the flat per-packet INT header tax used by the
	// evaluation: 42 bytes covers 5 hops (§5.1 "worst-case assumption").
	INTOverhead = INTBaseBytes + 5*INTHopBytes

	// DefaultMTU is the data payload size used throughout the paper's
	// evaluation ("1KB packet").
	DefaultMTU = 1000
)

// MaxHops bounds the INT stack depth. Data-center paths are at most 5
// hops (§4.1); 8 leaves room for experiments on deeper topologies.
const MaxHops = 8

// Hop is one switch egress-port INT record, stamped at dequeue.
type Hop struct {
	B       sim.Rate // egress link bandwidth
	TS      sim.Time // timestamp when the packet left the egress port
	TxBytes uint64   // cumulative bytes transmitted by the egress port
	RxBytes uint64   // cumulative bytes received into the egress queue (for the rxRate ablation, §3.4)
	QLen    int64    // egress queue length in bytes at dequeue
}

// INTHeader is the telemetry stack a data packet accumulates hop by hop
// and the receiver echoes back in the ACK.
type INTHeader struct {
	NHops  int
	PathID uint16 // XOR of 12-bit switch IDs along the path
	Hops   [MaxHops]Hop
}

// Push appends a hop record and folds the switch ID into PathID,
// mirroring what the P4 pipeline does per Figure 7.
func (h *INTHeader) Push(hop Hop, switchID uint16) {
	if h.NHops < MaxHops {
		h.Hops[h.NHops] = hop
	}
	h.NHops++
	h.PathID ^= switchID & 0x0fff
}

// Records returns the valid hop records.
func (h *INTHeader) Records() []Hop {
	n := h.NHops
	if n > MaxHops {
		n = MaxHops
	}
	return h.Hops[:n]
}

// Packet is a simulated frame. One struct covers every frame type; the
// per-type fields are documented below. Packets come from per-network
// free-list Pools and are recycled at their terminal consumption points
// (ACK processing, switch drops, PFC consumption); the simulator never
// aliases a packet after handing it to the next node.
type Packet struct {
	ID   uint64 // globally unique, for tracing
	Type Type

	FlowID   int32 // sender-assigned flow identifier
	Src, Dst int32 // host node IDs (network-wide)
	Prio     uint8 // priority queue index (0 = control, highest)
	Size     int32 // total wire size, bytes

	// Data packets.
	Seq        int64 // byte offset of first payload byte
	PayloadLen int32
	// FlowEnd marks the chunk carrying the flow's final byte, so the
	// receiver can free its per-flow reassembly state once everything
	// up to it has been delivered in order.
	FlowEnd bool
	ECNCE   bool     // congestion-experienced mark set by switches
	SendTS  sim.Time // sender timestamp, echoed in the ACK for RTT
	INT     INTHeader

	// ACK / NACK packets.
	AckSeq  int64    // cumulative ACK: next expected byte
	DataSeq int64    // sequence of the data packet that triggered this ACK (IRN selective repeat)
	EchoTS  sim.Time // echoed SendTS
	ECE     bool     // ECN echo

	// PFC frames.
	PFCPrio  uint8
	PFCPause bool // true = pause, false = resume
}

// String renders a short trace line for debugging.
func (p *Packet) String() string {
	switch p.Type {
	case Data:
		return fmt.Sprintf("DATA f%d seq=%d len=%d", p.FlowID, p.Seq, p.PayloadLen)
	case Ack:
		return fmt.Sprintf("ACK f%d cum=%d", p.FlowID, p.AckSeq)
	case Nack:
		return fmt.Sprintf("NACK f%d exp=%d", p.FlowID, p.AckSeq)
	case CNP:
		return fmt.Sprintf("CNP f%d", p.FlowID)
	case PFC:
		op := "RESUME"
		if p.PFCPause {
			op = "PAUSE"
		}
		return fmt.Sprintf("PFC %s prio=%d", op, p.PFCPrio)
	default:
		return p.Type.String()
	}
}
