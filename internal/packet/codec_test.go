package packet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hpcc/internal/sim"
)

func TestEncodedINTLen(t *testing.T) {
	if got := EncodedINTLen(5); got != 42 {
		t.Fatalf("5-hop INT = %d bytes, want 42 (paper §4.1)", got)
	}
	if got := EncodedINTLen(0); got != 2 {
		t.Fatalf("0-hop INT = %d bytes, want 2", got)
	}
	if INTOverhead != 42 {
		t.Fatalf("INTOverhead = %d, want 42", INTOverhead)
	}
}

func TestSpeedEnumRoundTrip(t *testing.T) {
	for _, r := range []sim.Rate{sim.Gbps, 10 * sim.Gbps, 25 * sim.Gbps, 40 * sim.Gbps, 100 * sim.Gbps, 400 * sim.Gbps} {
		code, err := EncodeSpeed(r)
		if err != nil {
			t.Fatalf("EncodeSpeed(%v): %v", r, err)
		}
		back, err := DecodeSpeed(code)
		if err != nil {
			t.Fatalf("DecodeSpeed(%d): %v", code, err)
		}
		if back != r {
			t.Fatalf("round trip %v -> %d -> %v", r, code, back)
		}
	}
	if _, err := EncodeSpeed(33 * sim.Gbps); err == nil {
		t.Fatal("EncodeSpeed accepted a rate outside the enum")
	}
	if _, err := DecodeSpeed(15); err == nil {
		t.Fatal("DecodeSpeed accepted an out-of-range code")
	}
}

func TestINTRoundTripExact(t *testing.T) {
	h := INTHeader{}
	h.Push(Hop{B: 100 * sim.Gbps, TS: 123456 * sim.Nanosecond, TxBytes: 128 * 1000, QLen: 80 * 7}, 0x0abc)
	h.Push(Hop{B: 400 * sim.Gbps, TS: 200000 * sim.Nanosecond, TxBytes: 128 * 31, QLen: 0}, 0x0123)

	var buf [64]byte
	n, err := EncodeINT(&h, buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if n != EncodedINTLen(2) {
		t.Fatalf("encoded %d bytes, want %d", n, EncodedINTLen(2))
	}
	var got INTHeader
	m, err := DecodeINT(buf[:n], &got)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("decoded %d bytes, want %d", m, n)
	}
	if got.NHops != 2 || got.PathID != (0x0abc^0x0123) {
		t.Fatalf("header = %+v", got)
	}
	for i := 0; i < 2; i++ {
		w, g := h.Hops[i], got.Hops[i]
		if g.B != w.B || g.TxBytes != w.TxBytes || g.QLen != w.QLen {
			t.Fatalf("hop %d: got %+v, want %+v", i, g, w)
		}
		if g.TS != w.TS%((1<<24)*sim.Nanosecond) {
			t.Fatalf("hop %d TS: got %v", i, g.TS)
		}
	}
}

// Property: for random hop values, decode(encode(h)) matches h up to the
// documented quantization (txBytes truncated to 128B, qLen rounded up to
// 80B saturating, TS mod 2^24 ns).
func TestINTRoundTripProperty(t *testing.T) {
	f := func(seed int64, nHopsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nHopsRaw % (MaxHops + 1))
		h := INTHeader{NHops: n}
		for i := 0; i < n; i++ {
			h.Hops[i] = Hop{
				B:       speedEnum[1+rng.Intn(len(speedEnum)-1)],
				TS:      sim.Time(rng.Int63n(int64(10 * sim.Second))),
				TxBytes: uint64(rng.Int63n(1 << 40)),
				QLen:    rng.Int63n(40 << 20),
			}
		}
		h.PathID = uint16(rng.Intn(1 << 12))
		var buf [128]byte
		nb, err := EncodeINT(&h, buf[:])
		if err != nil {
			return false
		}
		var got INTHeader
		if _, err := DecodeINT(buf[:nb], &got); err != nil {
			return false
		}
		if got.NHops != n || got.PathID != h.PathID {
			return false
		}
		for i := 0; i < n; i++ {
			w, g := h.Hops[i], got.Hops[i]
			if g.B != w.B {
				return false
			}
			if g.TxBytes != w.TxBytes/TxBytesUnit%(1<<20)*TxBytesUnit {
				return false
			}
			wantQ := (w.QLen + QLenUnit - 1) / QLenUnit
			if wantQ > 0xffff {
				wantQ = 0xffff
			}
			if g.QLen != wantQ*QLenUnit {
				return false
			}
			if g.TS != w.TS/sim.Nanosecond%(1<<24)*sim.Nanosecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnwrapTS(t *testing.T) {
	wrap := sim.Time(1<<24) * sim.Nanosecond
	cases := []struct {
		prev, cur, want sim.Time
	}{
		{100 * sim.Nanosecond, 500 * sim.Nanosecond, 400 * sim.Nanosecond},
		{wrap - 10*sim.Nanosecond, 5 * sim.Nanosecond, 15 * sim.Nanosecond}, // wrapped
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := UnwrapTS(c.prev, c.cur); got != c.want {
			t.Errorf("UnwrapTS(%v,%v) = %v, want %v", c.prev, c.cur, got, c.want)
		}
	}
}

func TestUnwrapTxBytes(t *testing.T) {
	wrap := uint64(1<<20) * TxBytesUnit
	if got := UnwrapTxBytes(wrap-256, 256); got != 512 {
		t.Errorf("wrapped delta = %d, want 512", got)
	}
	if got := UnwrapTxBytes(1024, 4096); got != 3072 {
		t.Errorf("delta = %d, want 3072", got)
	}
}

// Property: deltas survive the wire format for any pair of true counter
// values less than one wrap apart.
func TestUnwrapDeltaProperty(t *testing.T) {
	f := func(startRaw uint64, deltaRaw uint32) bool {
		const wrapBytes = uint64(1<<20) * TxBytesUnit
		start := startRaw % (1 << 50)
		delta := uint64(deltaRaw) % (wrapBytes - TxBytesUnit)
		// Quantize both ends as the switch would.
		prevOnWire := start / TxBytesUnit % (1 << 20) * TxBytesUnit
		curOnWire := (start + delta) / TxBytesUnit % (1 << 20) * TxBytesUnit
		got := UnwrapTxBytes(prevOnWire, curOnWire)
		// True delta, up to one quantum of truncation error.
		diff := int64(got) - int64(delta)
		return diff >= -TxBytesUnit && diff <= TxBytesUnit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantize(t *testing.T) {
	hop := Hop{B: 100 * sim.Gbps, TS: 1234567 * sim.Picosecond, TxBytes: 1000, RxBytes: 999, QLen: 81}
	q := hop.Quantize()
	if q.TS != 1234*
		sim.Nanosecond/sim.Nanosecond*sim.Nanosecond {
		t.Errorf("TS = %v", q.TS)
	}
	if q.TxBytes != 896 { // 1000/128*128
		t.Errorf("TxBytes = %d, want 896", q.TxBytes)
	}
	if q.QLen != 160 { // ceil(81/80)*80
		t.Errorf("QLen = %d, want 160", q.QLen)
	}
}

func TestINTPushOverflow(t *testing.T) {
	h := INTHeader{}
	for i := 0; i < MaxHops+2; i++ {
		h.Push(Hop{B: 100 * sim.Gbps}, uint16(i))
	}
	if h.NHops != MaxHops+2 {
		t.Fatalf("NHops = %d", h.NHops)
	}
	if len(h.Records()) != MaxHops {
		t.Fatalf("Records() len = %d, want clamped to %d", len(h.Records()), MaxHops)
	}
	if _, err := EncodeINT(&h, make([]byte, 256)); err == nil {
		t.Fatal("encoding an overflowed header should fail")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Type: Data, FlowID: 7, Seq: 1000, PayloadLen: 1000}
	if got := p.String(); got != "DATA f7 seq=1000 len=1000" {
		t.Errorf("String = %q", got)
	}
	p = &Packet{Type: PFC, PFCPause: true, PFCPrio: 3}
	if got := p.String(); got != "PFC PAUSE prio=3" {
		t.Errorf("String = %q", got)
	}
}
