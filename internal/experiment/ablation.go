package experiment

import (
	"fmt"
	"math/rand"

	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/fabric"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/theory"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

func init() {
	Register(Scenario{
		Name:  "ablations-eta",
		Order: 110,
		Title: "η × maxStage stability sweep (16-to-1 incast, 100G)",
		Run:   func(p Params) []*Table { return []*Table{EtaMaxStageTable(AblationEtaMaxStage(0, p.Seed))} },
	})
	Register(Scenario{
		Name:  "ablations-quant",
		Order: 111,
		Title: "INT precision: simulator floats vs Figure-7 wire quantization (PoD)",
		Run:   func(p Params) []*Table { return []*Table{QuantizeTable(AblationINTQuantization(p.scale()))} },
	})
	Register(Scenario{
		Name:  "theory",
		Order: 120,
		Title: "Appendix A.2 synchronous recursion convergence on random networks",
		Run:   func(p Params) []*Table { return []*Table{TheoryLemmaTable(200, p.Seed)} },
	})
}

func randomTheorySystem(rng *rand.Rand) *theory.System {
	return theory.RandomSystem(rng, 6, 8)
}

// EtaMaxStageRow is one cell of the η × maxStage sweep (the paper's
// §5.1 footnote 5: "we tried maxStage from 0 to 5, and η from 95% to
// 98%, all of which give similar results").
type EtaMaxStageRow struct {
	Eta       float64
	MaxStage  int
	Queue95KB float64
	AvgGbps   float64
}

// AblationEtaMaxStage sweeps HPCC's two stability parameters over the
// 16-to-1 incast fixture.
func AblationEtaMaxStage(dur sim.Time, seed int64) []EtaMaxStageRow {
	if dur == 0 {
		dur = 2 * sim.Millisecond
	}
	const nSend = 16
	var out []EtaMaxStageRow
	for _, eta := range []float64{0.95, 0.98} {
		for _, ms := range []int{1, 3, 5} {
			scheme := HPCC(hpcccc.Config{Eta: eta, MaxStage: ms})
			m := buildStarMicro(scheme, nSend+1, 100*sim.Gbps, seed, 100*sim.Microsecond)
			for i := 0; i < nSend; i++ {
				m.flowAt(0, i, nSend, longFlowSize, i, nil)
			}
			// Sample steady state only: the line-rate-start transient
			// (identical for every setting) would otherwise dominate
			// the tail percentiles.
			var mon *stats.QueueMonitor
			m.eng.After(dur/2, func() {
				mon = stats.NewQueueMonitor(m.eng, []*fabric.Port{m.portTo(nSend)}, fabric.PrioData, sim.Microsecond, dur)
			})
			m.eng.RunUntil(dur)
			mon.Stop()
			var q []float64
			for _, tp := range mon.Series {
				q = append(q, tp.V/1024)
			}
			total := 0.0
			for i := 0; i < nSend; i++ {
				total += m.tput.Rate(i, dur/2, dur)
			}
			out = append(out, EtaMaxStageRow{
				Eta: eta, MaxStage: ms,
				Queue95KB: stats.Percentile(q, 95),
				AvgGbps:   total,
			})
		}
	}
	return out
}

// EtaMaxStageTable renders the sweep.
func EtaMaxStageTable(rows []EtaMaxStageRow) *Table {
	t := &Table{
		Title: "Ablation: η × maxStage stability sweep (16-to-1 incast, 100G)",
		Cols:  []string{"eta", "maxStage", "q95(KB)", "steady-tput(Gbps)"},
	}
	for _, r := range rows {
		t.AddRow(f2(r.Eta), fmt.Sprintf("%d", r.MaxStage), f1(r.Queue95KB), f1(r.AvgGbps))
	}
	t.AddNote("paper §5.1 footnote 5: all settings in this range behave similarly")
	return t
}

// QuantizeRow compares full-precision INT against Figure-7 wire
// quantization (txBytes in 128B units, qLen in 80B units, TS in ns).
type QuantizeRow struct {
	Label     string
	FCTp95    float64
	Queue99KB float64
}

// AblationINTQuantization runs HPCC on the PoD with and without ASIC
// quantization of the telemetry.
func AblationINTQuantization(sc Scale) []QuantizeRow {
	sc.normalize(300)
	var out []QuantizeRow
	for _, quant := range []bool{false, true} {
		r := mustRunLoad(LoadScenario{
			Scheme:      ByNameMust("hpcc"),
			Topo:        PodTopo(topology.PodSpec{}),
			Traffic:     []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.3}},
			MaxFlows:    sc.MaxFlows,
			Until:       sc.Until,
			Drain:       sc.Drain,
			PFC:         true,
			Seed:        sc.Seed,
			INTQuantize: quant,
		})
		label := "full-precision"
		if quant {
			label = "figure-7-wire"
		}
		out = append(out, QuantizeRow{
			Label:     label,
			FCTp95:    stats.Percentile(r.FCT.Slowdowns(), 95),
			Queue99KB: r.Queue.P99 / 1024,
		})
	}
	return out
}

// QuantizeTable renders the quantization ablation.
func QuantizeTable(rows []QuantizeRow) *Table {
	t := &Table{
		Title: "Ablation: INT precision — simulator floats vs Figure-7 wire quantization",
		Cols:  []string{"INT precision", "FCT-p95-slowdown", "q-p99(KB)"},
	}
	for _, r := range rows {
		t.AddRow(r.Label, f2(r.FCTp95), f1(r.Queue99KB))
	}
	t.AddNote("the 80B/128B/ns quantization of §4.1 should not change behaviour materially")
	return t
}

// TheoryLemmaTable exercises Appendix A.2 end-to-end: random systems,
// steps to ε-Pareto-optimality.
func TheoryLemmaTable(samples int, seed int64) *Table {
	t := &Table{
		Title: "Appendix A.2: synchronous recursion convergence on random networks",
		Cols:  []string{"metric", "value"},
	}
	rng := sim.NewRNG(seed, "lemma")
	feasibleAfter1 := 0
	totalSteps := 0
	pareto := 0
	for i := 0; i < samples; i++ {
		s := randomTheorySystem(rng)
		r := make([]float64, len(s.A[0]))
		for j := range r {
			r[j] = rng.Float64()*200 + 1
		}
		if s.Feasible(s.Step(r)) {
			feasibleAfter1++
		}
		traj := s.Converge(r, 400)
		totalSteps += len(traj) - 1
		if s.ParetoOptimal(traj[len(traj)-1], 1e-5) {
			pareto++
		}
	}
	t.AddRow("systems sampled", fmt.Sprintf("%d", samples))
	t.AddRow("feasible after 1 step (Lemma i)", fmt.Sprintf("%d/%d", feasibleAfter1, samples))
	t.AddRow("ε-Pareto-optimal at convergence (Lemma iii)", fmt.Sprintf("%d/%d", pareto, samples))
	t.AddRow("mean steps to convergence", f1(float64(totalSteps)/float64(samples)))
	return t
}
