package experiment

import (
	"fmt"

	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// The remaining workload-breadth scenarios ROADMAP lists: FB_Hadoop
// incast mixes and an RPC request-response job at FatTree scale, both
// composed from the spec-based generators (PR 3) and registered like
// every reproduction job. Sharded execution engages for the open-loop
// incast mix when the campaign requests it.
func init() {
	Register(Scenario{
		Name:  "extra-hadoop-incast",
		Order: 132,
		Title: "FB_Hadoop + incast mix on the FatTree (HPCC vs DCQCN, §5.3-style)",
		Run:   func(p Params) []*Table { return HadoopIncastMix(p.Fat, p.scale()).Tables() },
	})
	Register(Scenario{
		Name:  "extra-rpc-fattree",
		Order: 133,
		Title: "RPC request-response (RDMA READ) at FatTree scale, WebSearch responses",
		Run:   func(p Params) []*Table { return RPCFatTree(p.Fat, p.scale()).Tables() },
	})
}

// HadoopIncastResult is the §5.3-style "realistic mix" on FB_Hadoop:
// background Poisson at 50% load plus periodic N-to-1 incast bursts at
// 2% of capacity — the regime where HPCC's fast drain shows up in the
// short-flow tail while incast victims stress PFC.
type HadoopIncastResult struct {
	FanIn   int
	Schemes []string
	Buckets [][]stats.BucketRow
	Results []*LoadResult
}

// HadoopIncastMix runs FB_Hadoop at 50% + incast for HPCC and DCQCN.
func HadoopIncastMix(spec topology.FatTreeSpec, sc Scale) *HadoopIncastResult {
	sc.normalize(400)
	if spec.Cores == 0 {
		spec = topology.ScaledFatTree()
	}
	// The paper's simulation uses 60-to-1; keep the fan-in meaningful
	// on scaled-down fabrics.
	fanIn := 60
	if n := spec.NumHosts(); fanIn >= n/2 {
		fanIn = n / 2
	}
	res := &HadoopIncastResult{FanIn: fanIn}
	for _, scheme := range []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")} {
		res.Schemes = append(res.Schemes, scheme.Name)
		r := mustRunLoad(LoadScenario{
			Scheme: scheme,
			Topo:   FatTreeTopo(spec),
			Traffic: []workload.Generator{
				workload.PoissonSpec{CDF: workload.FBHadoop(), Load: 0.5},
				workload.IncastSpec{FanIn: fanIn, Size: 500_000, LoadFrac: 0.02},
			},
			MaxFlows:    sc.MaxFlows,
			Until:       sc.Until,
			Drain:       sc.Drain,
			PFC:         true,
			Seed:        sc.Seed,
			BufferBytes: BufferFor(spec.NumHosts()),
		})
		res.Buckets = append(res.Buckets, r.FCT.Buckets(stats.FBHadoopEdges()))
		res.Results = append(res.Results, r)
	}
	return res
}

// Tables renders the mix: the FB_Hadoop FCT panel plus the incast-side
// pause/queue summary.
func (r *HadoopIncastResult) Tables() []*Table {
	fct := &Table{
		Title: fmt.Sprintf("Extra: 95th-pct FCT slowdown, FB_Hadoop 50%% + %d:1 incast (FatTree)", r.FanIn),
		Cols:  []string{"size"},
	}
	fct.Cols = append(fct.Cols, r.Schemes...)
	for b := range r.Buckets[0] {
		row := []string{sizeLabel(r.Buckets[0][b].Hi)}
		for si := range r.Schemes {
			row = append(row, f2(r.Buckets[si][b].Stats.P95))
		}
		fct.AddRow(row...)
	}
	fct.AddNote("background FB_Hadoop Poisson at 50%% load + periodic fan-in bursts at 2%% of capacity")

	sum := &Table{
		Title: "Extra: pause and queues under the incast mix",
		Cols:  []string{"scheme", "sd-p99", "p95-lat-short(us)", "q-p99(KB)", "pause-frac(%)", "drops", "censored"},
	}
	for si, s := range r.Schemes {
		lr := r.Results[si]
		sl := lr.FCT.Slowdowns()
		sum.AddRow(s,
			f2(stats.Percentile(sl, 99)),
			f1(lr.ShortFlowP95Latency(7_000)),
			f1(lr.Queue.P99/1024),
			f2(lr.PauseFrac*100),
			fmt.Sprintf("%d", lr.Drops),
			fmt.Sprintf("%d", lr.Censored))
	}
	return []*Table{fct, sum}
}

// RPCResult is the request-response scenario at FatTree scale: every
// request issues an RDMA READ (§4.2) whose response size is drawn from
// WebSearch, measured at the requester — request-to-last-byte.
type RPCResult struct {
	Schemes []string
	Buckets [][]stats.BucketRow
	Results []*LoadResult
}

// RPCFatTree runs READ request-response traffic at 30% response-byte
// load for HPCC and DCQCN.
func RPCFatTree(spec topology.FatTreeSpec, sc Scale) *RPCResult {
	sc.normalize(400)
	if spec.Cores == 0 {
		spec = topology.ScaledFatTree()
	}
	res := &RPCResult{}
	for _, scheme := range []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")} {
		res.Schemes = append(res.Schemes, scheme.Name)
		r := mustRunLoad(LoadScenario{
			Scheme:      scheme,
			Topo:        FatTreeTopo(spec),
			Traffic:     []workload.Generator{workload.RPCSpec{CDF: workload.WebSearch(), Load: 0.3}},
			MaxFlows:    sc.MaxFlows,
			Until:       sc.Until,
			Drain:       sc.Drain,
			PFC:         true,
			Seed:        sc.Seed,
			BufferBytes: BufferFor(spec.NumHosts()),
		})
		res.Buckets = append(res.Buckets, r.FCT.Buckets(stats.WebSearchEdges()))
		res.Results = append(res.Results, r)
	}
	return res
}

// Tables renders the RPC panel: per-size p95 response slowdown plus
// the summary row per scheme.
func (r *RPCResult) Tables() []*Table {
	fct := &Table{
		Title: "Extra: 95th-pct READ response slowdown, WebSearch responses at 30% (FatTree)",
		Cols:  []string{"size"},
	}
	fct.Cols = append(fct.Cols, r.Schemes...)
	for b := range r.Buckets[0] {
		row := []string{sizeLabel(r.Buckets[0][b].Hi)}
		for si := range r.Schemes {
			row = append(row, f2(r.Buckets[si][b].Stats.P95))
		}
		fct.AddRow(row...)
	}
	fct.AddNote("response streamed by the responder's QP; clock runs request-to-last-byte at the requester")

	sum := &Table{
		Title: "Extra: RPC summary",
		Cols:  []string{"scheme", "sd-p50", "sd-p99", "q-p99(KB)", "pause-frac(%)", "censored"},
	}
	for si, s := range r.Schemes {
		lr := r.Results[si]
		sl := lr.FCT.Slowdowns()
		sum.AddRow(s,
			f2(stats.Percentile(sl, 50)),
			f2(stats.Percentile(sl, 99)),
			f1(lr.Queue.P99/1024),
			f2(lr.PauseFrac*100),
			fmt.Sprintf("%d", lr.Censored))
	}
	return []*Table{fct, sum}
}
