package experiment

import (
	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/fabric"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
)

func init() {
	Register(Scenario{
		Name:  "fig13",
		Order: 90,
		Title: "reaction combining: per-ACK vs per-RTT vs HPCC (16-to-1, 100G)",
		Run:   func(p Params) []*Table { return Fig13(0, p.Seed).Tables() },
	})
}

// Fig13Result compares the reaction-combining strategies of §5.4
// (Figure 13): per-ACK, per-RTT and HPCC's reference-window scheme
// under a 16-to-1 incast on 100 Gbps links.
type Fig13Result struct {
	Variants []SeriesPair
	// AvgGbps is each variant's total goodput averaged over the run;
	// PeakQueueKB / LateQueueKB summarize the bottleneck queue (peak,
	// and mean after 4 base RTTs when the incast should have drained).
	AvgGbps, PeakQueueKB, LateQueueKB []float64
	Cap                               float64 // achievable goodput ceiling, Gbps
}

// Fig13 runs the 16-to-1 incast for the three reaction strategies.
func Fig13(dur sim.Time, seed int64) *Fig13Result {
	if dur == 0 {
		dur = 400 * sim.Microsecond
	}
	variants := []Scheme{
		HPCC(hpcccc.Config{Reaction: hpcccc.PerAck}),
		HPCC(hpcccc.Config{Reaction: hpcccc.PerRTT}),
		HPCC(hpcccc.Config{}),
	}
	res := &Fig13Result{}
	const nSend = 16
	for _, scheme := range variants {
		bin := 10 * sim.Microsecond
		m := buildStarMicro(scheme, nSend+1, 100*sim.Gbps, seed, bin)
		for i := 0; i < nSend; i++ {
			m.flowAt(0, i, nSend, longFlowSize, i, nil)
		}
		mon := stats.NewQueueMonitor(m.eng, []*fabric.Port{m.portTo(nSend)}, fabric.PrioData, sim.Microsecond, dur)
		m.eng.RunUntil(dur)
		mon.Stop()

		// Total goodput series: sum flows into one series.
		total := make([]stats.TimePoint, 0)
		nBins := int(dur / bin)
		for b := 0; b < nBins; b++ {
			total = append(total, stats.TimePoint{T: sim.Time(b) * bin})
		}
		for i := 0; i < nSend; i++ {
			s := m.tput.Series(i, dur)
			for b := range s {
				total[b].V += s[b].V
			}
		}
		var sum float64
		for _, tp := range total {
			sum += tp.V
		}
		peak, lateSum, lateN := 0.0, 0.0, 0
		for _, tp := range mon.Series {
			if tp.V > peak {
				peak = tp.V
			}
			if tp.T > 4*m.baseRTT {
				lateSum += tp.V
				lateN++
			}
		}
		res.Variants = append(res.Variants, SeriesPair{Scheme: scheme.Name, Throughput: total, Queue: mon.Series})
		res.AvgGbps = append(res.AvgGbps, sum/float64(len(total)))
		res.PeakQueueKB = append(res.PeakQueueKB, peak/1024)
		late := 0.0
		if lateN > 0 {
			late = lateSum / float64(lateN) / 1024
		}
		res.LateQueueKB = append(res.LateQueueKB, late)
		res.Cap = m.goodputCap()
	}
	return res
}

// Tables renders Figure 13's two panels.
func (r *Fig13Result) Tables() []*Table {
	tput := &Table{
		Title: "Figure 13a: total throughput under 16-to-1 incast (100G)",
		Cols:  []string{"time(us)"},
	}
	queue := &Table{
		Title: "Figure 13b: bottleneck queue length under 16-to-1 incast",
		Cols:  []string{"time(us)"},
	}
	for _, v := range r.Variants {
		tput.Cols = append(tput.Cols, v.Scheme+"(Gbps)")
		queue.Cols = append(queue.Cols, v.Scheme+"(KB)")
	}
	for i := range r.Variants[0].Throughput {
		row := []string{f1(r.Variants[0].Throughput[i].T.Microseconds())}
		for _, v := range r.Variants {
			row = append(row, f1(v.Throughput[i].V))
		}
		tput.AddRow(row...)
	}
	for i := 0; i < len(r.Variants[0].Queue); i += 20 {
		row := []string{f1(r.Variants[0].Queue[i].T.Microseconds())}
		for _, v := range r.Variants {
			row = append(row, f1(v.Queue[i].V/1024))
		}
		queue.AddRow(row...)
	}
	for i, v := range r.Variants {
		tput.AddNote("%s: average %.1f Gbps of %.1f achievable", v.Scheme, r.AvgGbps[i], r.Cap)
		queue.AddNote("%s: peak %.1f KB, post-drain mean %.1f KB", v.Scheme, r.PeakQueueKB[i], r.LateQueueKB[i])
	}
	return []*Table{tput, queue}
}
