package experiment

import (
	"hpcc/internal/host"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

func init() {
	Register(Scenario{
		Name:  "fig12",
		Order: 80,
		Title: "flow-control choices: PFC vs go-back-N vs IRN (FB_Hadoop, FatTree)",
		Run:   func(p Params) []*Table { return Fig12(p.Fat, p.scale()).Tables() },
	})
}

// Fig12Result is the flow-control-choices experiment (Figure 12):
// {PFC, go-back-N, IRN} × {DCQCN, HPCC} on the FatTree at 30% load +
// incast. The paper's takeaway: with HPCC the flow-control choice
// barely matters; with DCQCN it does — CC is the key problem.
type Fig12Result struct {
	Schemes []string // outer: CC scheme
	Modes   []string // inner: flow control
	Buckets [][][]stats.BucketRow
	Results [][]*LoadResult
	FanIn   int
}

type fcMode struct {
	name string
	pfc  bool
	fc   host.FlowControl
}

func fig12Modes() []fcMode {
	return []fcMode{
		{"PFC", true, host.GoBackN},
		{"GBN", false, host.GoBackN},
		{"IRN", false, host.IRN},
	}
}

// Fig12 runs all six combinations.
func Fig12(spec topology.FatTreeSpec, sc Scale) *Fig12Result {
	sc.normalize(600)
	if spec.Cores == 0 {
		spec = topology.ScaledFatTree()
	}
	fanIn := 60
	if n := spec.NumHosts(); fanIn >= n/2 {
		fanIn = n / 4
	}
	res := &Fig12Result{FanIn: fanIn}
	for _, mode := range fig12Modes() {
		res.Modes = append(res.Modes, mode.name)
	}
	for _, scheme := range []Scheme{ByNameMust("dcqcn"), ByNameMust("hpcc")} {
		res.Schemes = append(res.Schemes, scheme.Name)
		var rows [][]stats.BucketRow
		var lrs []*LoadResult
		for _, mode := range fig12Modes() {
			r := mustRunLoad(LoadScenario{
				Scheme: scheme,
				Topo:   FatTreeTopo(spec),
				Traffic: []workload.Generator{
					workload.PoissonSpec{CDF: workload.FBHadoop(), Load: 0.3},
					workload.IncastSpec{FanIn: fanIn, Size: 500_000, LoadFrac: 0.02},
				},
				MaxFlows:    sc.MaxFlows,
				Until:       sc.Until,
				Drain:       sc.Drain,
				PFC:         mode.pfc,
				FlowCtl:     mode.fc,
				Seed:        sc.Seed,
				BufferBytes: BufferFor(spec.NumHosts()),
			})
			rows = append(rows, r.FCT.Buckets(stats.FBHadoopEdges()))
			lrs = append(lrs, r)
		}
		res.Buckets = append(res.Buckets, rows)
		res.Results = append(res.Results, lrs)
	}
	return res
}

// Tables renders Figure 12's two panels (one per CC scheme).
func (r *Fig12Result) Tables() []*Table {
	var out []*Table
	for si, scheme := range r.Schemes {
		t := &Table{
			Title: "Figure 12: 95th-pct FCT slowdown by flow control — " + scheme + " (FB_Hadoop 30% + incast)",
			Cols:  []string{"size"},
		}
		for _, m := range r.Modes {
			t.Cols = append(t.Cols, scheme+"-"+m)
		}
		nb := len(r.Buckets[si][0])
		for b := 0; b < nb; b++ {
			row := []string{sizeLabel(r.Buckets[si][0][b].Hi)}
			for mi := range r.Modes {
				row = append(row, f2(r.Buckets[si][mi][b].Stats.P95))
			}
			t.AddRow(row...)
		}
		for mi, m := range r.Modes {
			lr := r.Results[si][mi]
			t.AddNote("%s: %d drops, pause %.2f%%, %d censored", m, lr.Drops, lr.PauseFrac*100, lr.Censored)
		}
		out = append(out, t)
	}
	return out
}
