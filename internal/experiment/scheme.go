// Package experiment reproduces every table and figure of the HPCC
// paper's evaluation (§2.3 motivation, §5.2 testbed, §5.3 simulations,
// §5.4 design choices): one runner per figure, each emitting the same
// rows/series the paper plots. DESIGN.md carries the experiment index.
package experiment

import (
	"fmt"

	"hpcc/internal/cc"
	"hpcc/internal/cc/dcqcn"
	"hpcc/internal/cc/dctcp"
	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/cc/timely"
	"hpcc/internal/sim"
)

// Scheme bundles a congestion-control factory with the data-plane
// features it needs (INT stamping, ECN marking with scheme-specific
// thresholds).
type Scheme struct {
	Name    string
	Factory cc.Factory
	// INT makes hosts carry the 42-byte INT header and switches stamp
	// telemetry (HPCC family only).
	INT bool
	// ECN makes switches WRED-mark; Kmin/Kmax return the thresholds for
	// a given bottleneck rate (the paper scales them with bandwidth,
	// §5.1).
	ECN        bool
	Kmin, Kmax func(r sim.Rate) int64
}

// HPCC returns the HPCC scheme (or one of its ablation variants,
// depending on cfg).
func HPCC(cfg hpcccc.Config) Scheme {
	name := hpcccc.New(cfg)().Name()
	return Scheme{Name: name, Factory: hpcccc.New(cfg), INT: true}
}

// DCQCN returns the DCQCN scheme with the paper's ECN scaling:
// Kmin = 100KB × Bw/25G, Kmax = 400KB × Bw/25G (§5.1).
func DCQCN(cfg dcqcn.Config) Scheme {
	return DCQCNWithECN(cfg, 100<<10, 400<<10)
}

// DCQCNWithECN returns DCQCN with explicit ECN thresholds expressed at
// the 25 Gbps reference rate (used by the Figure 3 sweep).
func DCQCNWithECN(cfg dcqcn.Config, kminAt25G, kmaxAt25G int64) Scheme {
	name := dcqcn.New(cfg)().Name()
	return Scheme{
		Name:    name,
		Factory: dcqcn.New(cfg),
		ECN:     true,
		Kmin:    func(r sim.Rate) int64 { return kminAt25G * int64(r) / int64(25*sim.Gbps) },
		Kmax:    func(r sim.Rate) int64 { return kmaxAt25G * int64(r) / int64(25*sim.Gbps) },
	}
}

// TIMELY returns the TIMELY scheme (RTT-based; no ECN, no INT).
func TIMELY(cfg timely.Config) Scheme {
	name := timely.New(cfg)().Name()
	return Scheme{Name: name, Factory: timely.New(cfg)}
}

// DCTCP returns the DCTCP scheme with Kmin = Kmax = 30KB × Bw/10G
// (§5.1).
func DCTCP(cfg dctcp.Config) Scheme {
	k := func(r sim.Rate) int64 { return 30 << 10 * int64(r) / int64(10*sim.Gbps) }
	return Scheme{Name: "DCTCP", Factory: dctcp.New(cfg), ECN: true, Kmin: k, Kmax: k}
}

// ByName resolves a scheme from its CLI spelling.
func ByName(name string) (Scheme, error) {
	switch name {
	case "hpcc":
		return HPCC(hpcccc.Config{}), nil
	case "hpcc-rxrate":
		return HPCC(hpcccc.Config{UseRxRate: true}), nil
	case "hpcc-perack":
		return HPCC(hpcccc.Config{Reaction: hpcccc.PerAck}), nil
	case "hpcc-perrtt":
		return HPCC(hpcccc.Config{Reaction: hpcccc.PerRTT}), nil
	case "dcqcn":
		return DCQCN(dcqcn.Config{}), nil
	case "dcqcn+win":
		return DCQCN(dcqcn.Config{Window: true}), nil
	case "timely":
		return TIMELY(timely.Config{}), nil
	case "timely+win":
		return TIMELY(timely.Config{Window: true}), nil
	case "dctcp":
		return DCTCP(dctcp.Config{}), nil
	default:
		return Scheme{}, fmt.Errorf("experiment: unknown scheme %q (want hpcc, hpcc-rxrate, hpcc-perack, hpcc-perrtt, dcqcn, dcqcn+win, timely, timely+win, dctcp)", name)
	}
}

// Fig11Schemes returns the six schemes of Figure 11 in plot order.
func Fig11Schemes() []Scheme {
	return []Scheme{
		DCQCN(dcqcn.Config{}),
		TIMELY(timely.Config{}),
		DCQCN(dcqcn.Config{Window: true}),
		TIMELY(timely.Config{Window: true}),
		DCTCP(dctcp.Config{}),
		HPCC(hpcccc.Config{}),
	}
}
