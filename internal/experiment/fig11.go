package experiment

import (
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

func init() {
	Register(Scenario{
		Name:  "fig11",
		Order: 70,
		Title: "six-scheme comparison at scale (FB_Hadoop, FatTree)",
		Run:   func(p Params) []*Table { return Fig11(p.Fat, p.scale()).Tables() },
	})
}

// Fig11Result is the six-scheme large-scale comparison (Figure 11):
// FB_Hadoop on the FatTree at 30% load + 60-to-1 incast and at 50%
// load, reporting 95th-percentile FCT slowdowns, PFC pause fractions
// and short-flow tail latency.
type Fig11Result struct {
	Panels  []string // "30% + incast", "50%"
	Schemes []string
	Buckets [][][]stats.BucketRow // [panel][scheme][bucket]
	Results [][]*LoadResult
	FanIn   int
}

// Fig11 runs both panels across all six schemes. The FatTree and
// incast fan-in scale with spec; the paper's full setup is
// topology.PaperFatTree() with fan-in 60.
func Fig11(spec topology.FatTreeSpec, sc Scale) *Fig11Result {
	sc.normalize(600)
	if spec.Cores == 0 {
		spec = topology.ScaledFatTree()
	}
	fanIn := 60
	if n := spec.NumHosts(); fanIn >= n/2 {
		fanIn = n / 4
	}
	res := &Fig11Result{
		Panels: []string{"30% + incast", "50%"},
		FanIn:  fanIn,
	}
	schemes := Fig11Schemes()
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
	}
	type panel struct {
		load   float64
		incast *workload.IncastSpec
	}
	panels := []panel{
		{0.3, &workload.IncastSpec{FanIn: fanIn, Size: 500_000, LoadFrac: 0.02}},
		{0.5, nil},
	}
	for _, p := range panels {
		var rows [][]stats.BucketRow
		var lrs []*LoadResult
		for _, scheme := range schemes {
			traffic := []workload.Generator{workload.PoissonSpec{CDF: workload.FBHadoop(), Load: p.load}}
			if p.incast != nil {
				traffic = append(traffic, *p.incast)
			}
			r := mustRunLoad(LoadScenario{
				Scheme:      scheme,
				Topo:        FatTreeTopo(spec),
				Traffic:     traffic,
				MaxFlows:    sc.MaxFlows,
				Until:       sc.Until,
				Drain:       sc.Drain,
				PFC:         true,
				Seed:        sc.Seed,
				BufferBytes: BufferFor(spec.NumHosts()),
			})
			rows = append(rows, r.FCT.Buckets(stats.FBHadoopEdges()))
			lrs = append(lrs, r)
		}
		res.Buckets = append(res.Buckets, rows)
		res.Results = append(res.Results, lrs)
	}
	return res
}

// Tables renders Figure 11's four panels.
func (r *Fig11Result) Tables() []*Table {
	var out []*Table
	for pi, panel := range r.Panels {
		fct := &Table{
			Title: "Figure 11" + string(rune('a'+2*pi)) + ": 95th-pct FCT slowdown, FB_Hadoop " + panel + " (FatTree)",
			Cols:  []string{"size"},
		}
		fct.Cols = append(fct.Cols, r.Schemes...)
		nb := len(r.Buckets[pi][0])
		for b := 0; b < nb; b++ {
			row := []string{sizeLabel(r.Buckets[pi][0][b].Hi)}
			for si := range r.Schemes {
				row = append(row, f2(r.Buckets[pi][si][b].Stats.P95))
			}
			fct.AddRow(row...)
		}
		if pi == 0 {
			fct.AddNote("incast: %d-to-1 × 500KB at 2%% of capacity", r.FanIn)
		}
		out = append(out, fct)

		pfc := &Table{
			Title: "Figure 11" + string(rune('b'+2*pi)) + ": PFC pause and tail latency, " + panel,
			Cols:  []string{"scheme", "pause-frac(%)", "p95-lat-short(us)", "q-p99(KB)", "censored"},
		}
		for si, s := range r.Schemes {
			lr := r.Results[pi][si]
			pfc.AddRow(s,
				f2(lr.PauseFrac*100),
				f1(lr.ShortFlowP95Latency(7_000)),
				f1(lr.Queue.P99/1024),
				f1(float64(lr.Censored)))
		}
		out = append(out, pfc)
	}
	return out
}
