package experiment

import (
	"strings"
	"testing"

	"hpcc/internal/sim"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// The tests below run scaled-down versions of every figure and assert
// the paper's qualitative claims — who wins, in which direction — not
// absolute numbers.

func TestByName(t *testing.T) {
	for _, name := range []string{
		"hpcc", "hpcc-rxrate", "hpcc-perack", "hpcc-perrtt",
		"dcqcn", "dcqcn+win", "timely", "timely+win", "dctcp",
	} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Factory == nil {
			t.Fatalf("ByName(%q): nil factory", name)
		}
		if s.ECN && (s.Kmin == nil || s.Kmax == nil) {
			t.Fatalf("ByName(%q): ECN without thresholds", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("accepted an unknown scheme")
	}
}

func TestFig11SchemeOrder(t *testing.T) {
	names := []string{}
	for _, s := range Fig11Schemes() {
		names = append(names, s.Name)
	}
	want := "DCQCN TIMELY DCQCN+win TIMELY+win DCTCP HPCC"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("scheme order = %q, want %q", got, want)
	}
}

func TestFig06RxRateOscillates(t *testing.T) {
	r := Fig06(300*sim.Microsecond, 1)
	if len(r.Variants) != 2 {
		t.Fatal("want 2 variants")
	}
	// Both start at line rate: identical initial overshoot.
	if r.PeakKB[0] < 10 || r.PeakKB[1] < 10 {
		t.Fatalf("peaks = %v, expected a line-rate-start transient", r.PeakKB)
	}
	// The paper's claim: rxRate oscillates (queue rebuilds after the
	// first drain), txRate converges gracefully.
	if r.RebuildKB[1] <= r.RebuildKB[0] {
		t.Fatalf("rxRate rebuild %.1f KB should exceed txRate rebuild %.1f KB",
			r.RebuildKB[1], r.RebuildKB[0])
	}
}

func TestFig13ReactionStrategies(t *testing.T) {
	r := Fig13(300*sim.Microsecond, 1)
	idx := map[string]int{}
	for i, v := range r.Variants {
		idx[v.Scheme] = i
	}
	perAck, perRTT, combined := idx["HPCC-perACK"], idx["HPCC-perRTT"], idx["HPCC"]
	// Per-ACK overreacts: throughput collapses.
	if r.AvgGbps[perAck] >= 0.7*r.AvgGbps[combined] {
		t.Fatalf("per-ACK avg %.1f should collapse vs HPCC %.1f", r.AvgGbps[perAck], r.AvgGbps[combined])
	}
	// Per-RTT drains the queue slowly.
	if r.LateQueueKB[perRTT] <= r.LateQueueKB[combined] {
		t.Fatalf("per-RTT late queue %.1f KB should exceed HPCC %.1f KB",
			r.LateQueueKB[perRTT], r.LateQueueKB[combined])
	}
	// HPCC keeps high throughput.
	if r.AvgGbps[combined] < 0.7*r.Cap {
		t.Fatalf("HPCC avg %.1f Gbps too low vs cap %.1f", r.AvgGbps[combined], r.Cap)
	}
}

func TestFig14WAITradeoff(t *testing.T) {
	r := Fig14([]float64{25, 300}, 3*sim.Millisecond, 1)
	if len(r.Rows) != 2 {
		t.Fatal("want 2 rows")
	}
	small, large := r.Rows[0], r.Rows[1]
	// Larger W_AI → more standing queue (beyond the §3.3 bound).
	if large.Queue95KB < small.Queue95KB {
		t.Fatalf("W_AI=300 q95 %.1f KB should be ≥ W_AI=25 q95 %.1f KB",
			large.Queue95KB, small.Queue95KB)
	}
	// Both should keep utilization high.
	if small.TotalGbps < 0.6*r.Cap || large.TotalGbps < 0.6*r.Cap {
		t.Fatalf("total throughput too low: %v / %v of cap %.1f", small.TotalGbps, large.TotalGbps, r.Cap)
	}
	// The paper's stability bound for 16 flows.
	if r.StableLimit < 100 || r.StableLimit > 200 {
		t.Fatalf("stability bound = %.0f, want ≈ 150 bytes", r.StableLimit)
	}
}

func TestFig09LongShortRecovery(t *testing.T) {
	r := Fig09LongShort(nil, 2*sim.Millisecond, 1)
	idx := map[string]int{}
	for i, v := range r.Variants {
		idx[v.Scheme] = i
	}
	h, d := idx["HPCC"], idx["DCQCN"]
	// HPCC: short flow completes and the long flow is back to 90% of
	// line within a few hundred µs (paper: "right after").
	if r.ShortEnd[h] == 0 {
		t.Fatal("HPCC short flow never finished")
	}
	if r.RecoverAfter[h] < 0 || r.RecoverAfter[h] > 500*sim.Microsecond {
		t.Fatalf("HPCC recovery = %v, want prompt", r.RecoverAfter[h])
	}
	// Paper: DCQCN cannot recover to line rate even after 2 ms. The
	// long flow's tail rate must show the gap.
	if r.TailGbps[h] < 0.85*r.Cap {
		t.Fatalf("HPCC tail rate %.1f of %.1f Gbps: did not recover", r.TailGbps[h], r.Cap)
	}
	if r.TailGbps[d] >= 0.95*r.TailGbps[h] {
		t.Fatalf("DCQCN tail %.1f Gbps should lag HPCC %.1f", r.TailGbps[d], r.TailGbps[h])
	}
}

func TestFig09IncastDrain(t *testing.T) {
	r := Fig09Incast(nil, 4*sim.Millisecond, 1)
	idx := map[string]int{}
	for i, v := range r.Variants {
		idx[v.Scheme] = i
	}
	h, d := idx["HPCC"], idx["DCQCN"]
	if r.PeakKB[h] <= 0 || r.PeakKB[d] <= 0 {
		t.Fatal("no queue build-up recorded")
	}
	// Paper: HPCC drains quickly; DCQCN builds ~550 KB and lingers.
	if r.PeakKB[h] >= r.PeakKB[d] {
		t.Fatalf("HPCC peak %.1f KB should be below DCQCN peak %.1f KB", r.PeakKB[h], r.PeakKB[d])
	}
	if r.DrainTime[h] >= r.DrainTime[d] {
		t.Fatalf("HPCC drain %v should beat DCQCN %v", r.DrainTime[h], r.DrainTime[d])
	}
}

func TestFig09MiceLatency(t *testing.T) {
	r := Fig09Mice(nil, 4*sim.Millisecond, 1)
	idx := map[string]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	h, d := idx["HPCC"], idx["DCQCN"]
	// Paper: HPCC keeps near-zero queues → mice latency near base RTT;
	// DCQCN keeps a standing queue around the ECN threshold.
	if r.LatencyUs[h].P95 >= r.LatencyUs[d].P95 {
		t.Fatalf("HPCC mice p95 %.1fus should beat DCQCN %.1fus", r.LatencyUs[h].P95, r.LatencyUs[d].P95)
	}
	if r.QueueKB[h].P95 >= r.QueueKB[d].P95 {
		t.Fatalf("HPCC queue p95 %.1f KB should beat DCQCN %.1f KB", r.QueueKB[h].P95, r.QueueKB[d].P95)
	}
	if r.LatencyUs[h].P50 > 4*r.BaseRTTUs {
		t.Fatalf("HPCC median mice latency %.1fus too far above base RTT %.1fus", r.LatencyUs[h].P50, r.BaseRTTUs)
	}
}

func TestFig09FairnessJain(t *testing.T) {
	r := Fig09Fairness(nil, 2*sim.Millisecond, 1)
	idx := map[string]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	h := idx["HPCC"]
	// Epoch 3 has all four flows active: HPCC shares fairly even on
	// short timescales (the W_AI default targets 100 flows, so full
	// convergence takes longer than these scaled 2 ms epochs).
	if r.Jain[h][3] < 0.75 {
		t.Fatalf("HPCC Jain with 4 flows = %.2f, want ≥ 0.75", r.Jain[h][3])
	}
	// Epoch 6 has only flow 4 left: it should claim most of the line.
	last := r.Rates[h][6][3]
	if last < 15 {
		t.Fatalf("last flow rate = %.1f Gbps, want near line (25G minus overheads)", last)
	}
}

func TestFig10QueueAndTails(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario: skipped in -short")
	}
	r := Fig10(Scale{MaxFlows: 200, Until: 5 * sim.Millisecond, Drain: 15 * sim.Millisecond})
	for li := range r.Loads {
		h := r.Results[li][0]
		d := r.Results[li][1]
		// Paper: HPCC keeps queues ultra-low even at the tail.
		if h.Queue.P99 >= d.Queue.P99 && d.Queue.P99 > 0 {
			t.Fatalf("load %v: HPCC q-p99 %.1f KB !< DCQCN %.1f KB",
				r.Loads[li], h.Queue.P99/1024, d.Queue.P99/1024)
		}
		if h.Drops != 0 {
			t.Fatalf("HPCC dropped %d packets with PFC on", h.Drops)
		}
	}
	// Short-flow p99 slowdown: HPCC below DCQCN at 50% load (bucket 0
	// = flows ≤ 6.7KB; paper reports 95% reduction).
	h50 := r.Buckets[1][0][0].Stats.P99
	d50 := r.Buckets[1][1][0].Stats.P99
	if h50 >= d50 {
		t.Fatalf("short-flow p99 slowdown: HPCC %.2f !< DCQCN %.2f", h50, d50)
	}
}

func TestFig02TimerTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario: skipped in -short")
	}
	r := Fig02(Scale{MaxFlows: 150, Until: 4 * sim.Millisecond, Drain: 12 * sim.Millisecond})
	if len(r.Labels) != 3 {
		t.Fatal("want 3 timer settings")
	}
	// The aggressive setting (last: Ti=55,Td=50) must pause at least as
	// much as the conservative one (first: Ti=900,Td=4) under incast.
	if r.Incast[2].PauseFrac < r.Incast[0].PauseFrac {
		t.Fatalf("aggressive timers paused less (%.4f) than conservative (%.4f)",
			r.Incast[2].PauseFrac, r.Incast[0].PauseFrac)
	}
}

func TestFig03ThresholdTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario: skipped in -short")
	}
	r := Fig03(Scale{MaxFlows: 150, Until: 4 * sim.Millisecond, Drain: 12 * sim.Millisecond})
	// Low ECN thresholds keep queues smaller than high thresholds
	// (bandwidth-vs-latency trade-off), at 50% load.
	high := r.Results[1][0].Queue.P99 // Kmin=400K,Kmax=1600K
	low := r.Results[1][2].Queue.P99  // Kmin=12K,Kmax=50K
	if low >= high {
		t.Fatalf("low-threshold q-p99 %.1f KB !< high-threshold %.1f KB", low/1024, high/1024)
	}
}

func TestFig11SixSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario: skipped in -short")
	}
	spec := topology.FatTreeSpec{Cores: 2, Aggs: 2, ToRs: 4, HostsPerToR: 4,
		HostRate: 100 * sim.Gbps, FabricRate: 400 * sim.Gbps, LinkDelay: sim.Microsecond}
	r := Fig11(spec, Scale{MaxFlows: 150, Until: 3 * sim.Millisecond, Drain: 12 * sim.Millisecond})
	if len(r.Results) != 2 || len(r.Results[0]) != 6 {
		t.Fatalf("want 2 panels × 6 schemes")
	}
	idx := map[string]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	// Paper: with HPCC, PFC pauses are never triggered even under
	// incast (with the full 32 MB buffer). At this scaled-down buffer
	// the unavoidable first-RTT line-rate burst (Appendix A.4) may
	// graze the threshold, so assert near-zero and far below DCQCN.
	hp := r.Results[0][idx["HPCC"]]
	dc := r.Results[0][idx["DCQCN"]]
	if hp.PauseFrac > 0.005 {
		t.Fatalf("HPCC pause fraction %.4f, want ≈ 0", hp.PauseFrac)
	}
	if dc.PauseFrac > 0 && hp.PauseFrac > dc.PauseFrac/2 {
		t.Fatalf("HPCC pause %.4f not well below DCQCN %.4f", hp.PauseFrac, dc.PauseFrac)
	}
	// HPCC keeps tail queues below the rate-only schemes.
	if hp.Queue.P99 >= dc.Queue.P99 {
		t.Fatalf("HPCC q-p99 %.1f !< DCQCN %.1f", hp.Queue.P99/1024, dc.Queue.P99/1024)
	}
}

func TestFig12FlowControlChoices(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario: skipped in -short")
	}
	spec := topology.FatTreeSpec{Cores: 2, Aggs: 2, ToRs: 4, HostsPerToR: 4,
		HostRate: 100 * sim.Gbps, FabricRate: 400 * sim.Gbps, LinkDelay: sim.Microsecond}
	r := Fig12(spec, Scale{MaxFlows: 120, Until: 3 * sim.Millisecond, Drain: 12 * sim.Millisecond})
	if len(r.Results) != 2 || len(r.Results[0]) != 3 {
		t.Fatal("want 2 schemes × 3 modes")
	}
	// All runs must have delivered flows.
	for si := range r.Results {
		for mi := range r.Results[si] {
			lr := r.Results[si][mi]
			if len(lr.FCT.Records) == 0 {
				t.Fatalf("%s/%s: no completed flows", r.Schemes[si], r.Modes[mi])
			}
		}
	}
	// HPCC avoids loss so well that lossy modes barely drop; DCQCN
	// without PFC must drop far more.
	hpccGBNDrops := r.Results[1][1].Drops
	dcqcnGBNDrops := r.Results[0][1].Drops
	if hpccGBNDrops >= dcqcnGBNDrops && dcqcnGBNDrops > 0 {
		t.Fatalf("HPCC-GBN drops %d !< DCQCN-GBN drops %d", hpccGBNDrops, dcqcnGBNDrops)
	}
}

func TestFig01PFCPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario: skipped in -short")
	}
	r := Fig01(10*sim.Millisecond, 1)
	if r.PFCFrames == 0 {
		t.Fatal("no PFC activity under the storm scenario")
	}
	if r.SuppressedBandwidthFrac <= 0 {
		t.Fatal("no host bandwidth suppression recorded")
	}
	// Propagation: pauses must reach past the receiver ToR (host
	// uplinks paused = senders silenced).
	if r.PauseTimeByTier["host->tor"] <= 0 {
		t.Fatal("pauses never propagated to host uplinks")
	}
}

func TestAblationEtaMaxStage(t *testing.T) {
	rows := AblationEtaMaxStage(sim.Millisecond, 1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		// Paper footnote 5: the whole region behaves well — near-zero
		// steady queues and high utilization.
		if r.Queue95KB > 100 {
			t.Fatalf("eta=%v maxStage=%d: q95 = %.1f KB, want small", r.Eta, r.MaxStage, r.Queue95KB)
		}
		if r.AvgGbps < 50 {
			t.Fatalf("eta=%v maxStage=%d: throughput %.1f Gbps too low", r.Eta, r.MaxStage, r.AvgGbps)
		}
	}
}

func TestAblationINTQuantization(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario: skipped in -short")
	}
	rows := AblationINTQuantization(Scale{MaxFlows: 120, Until: 3 * sim.Millisecond, Drain: 10 * sim.Millisecond})
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	// Quantization must not change behaviour materially (same order of
	// magnitude of tail slowdown).
	if rows[1].FCTp95 > 3*rows[0].FCTp95+1 {
		t.Fatalf("wire quantization changed p95 slowdown: %.2f vs %.2f", rows[1].FCTp95, rows[0].FCTp95)
	}
}

func TestTheoryLemmaTable(t *testing.T) {
	tab := TheoryLemmaTable(50, 1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[1][1] != "50/50" {
		t.Fatalf("Lemma (i) row = %q, want 50/50", tab.Rows[1][1])
	}
	if tab.Rows[2][1] != "50/50" {
		t.Fatalf("Lemma (iii) row = %q, want 50/50", tab.Rows[2][1])
	}
}

func TestTablesRender(t *testing.T) {
	var sb strings.Builder
	tab := &Table{Title: "t", Cols: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("n %d", 7)
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== t ==", "a", "bb", "1", "2", "note: n 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	_ = workload.WebSearch
}
