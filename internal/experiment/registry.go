package experiment

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"hpcc/internal/topology"
)

// Params parameterizes one scenario run. The campaign runner supplies a
// distinct Seed per job replicate; scenarios must draw all randomness
// from it so runs are reproducible and independent of scheduling.
type Params struct {
	// Scale bounds the load scenarios (flow caps, horizons). Its Seed
	// field is ignored: scenarios must use Params.Seed.
	Scale Scale
	// Fat is the FatTree spec for the large-scale scenarios.
	Fat topology.FatTreeSpec
	// Seed is the replicate's RNG seed.
	Seed int64
}

// scale returns p.Scale with the replicate seed folded in.
func (p Params) scale() Scale {
	sc := p.Scale
	sc.Seed = p.Seed
	return sc
}

// Scenario is one independently runnable experiment — a figure panel
// set, an ablation, or any registered extra. Each invocation of Run
// must build its own sim.Engine(s), touch no shared mutable state, and
// derive all randomness from Params.Seed, so scenarios can execute
// concurrently and a campaign's output is schedule-independent.
type Scenario struct {
	// Name is the CLI spelling (e.g. "fig11", "fig9-incast"). Scenarios
	// in a family share a dash-separated prefix so the bare family name
	// selects them all ("fig9" runs every "fig9-*" job).
	Name string
	// Title is the one-line description shown by -list.
	Title string
	// Order positions the scenario in canonical "all" order.
	Order int
	// Run executes the scenario and returns its rendered tables.
	Run func(Params) []*Table
}

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the global registry. Duplicate names
// panic: they are always a wiring bug.
func Register(s Scenario) {
	if s.Name == "" || s.Run == nil {
		panic("experiment: Register needs a name and a Run func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("experiment: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// All returns every registered scenario in canonical order.
func All() []Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Lookup resolves one scenario by exact name.
func Lookup(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Match expands CLI selectors into scenarios, deduplicated, in
// canonical order. A selector is "all", an exact name, a family prefix
// ("fig9" selects every "fig9-*"), or a path glob ("fig1*", "*incast*").
// An selector matching nothing is an error.
func Match(selectors []string) ([]Scenario, error) {
	all := All()
	picked := make(map[string]bool)
	for _, sel := range selectors {
		if sel == "all" {
			for _, s := range all {
				picked[s.Name] = true
			}
			continue
		}
		matched := false
		for _, s := range all {
			ok := s.Name == sel || strings.HasPrefix(s.Name, sel+"-")
			if !ok {
				if g, err := path.Match(sel, s.Name); err != nil {
					return nil, fmt.Errorf("experiment: bad pattern %q: %v", sel, err)
				} else if g {
					ok = true
				}
			}
			if ok {
				picked[s.Name] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("experiment: no scenario matches %q (try -list)", sel)
		}
	}
	var out []Scenario
	for _, s := range all {
		if picked[s.Name] {
			out = append(out, s)
		}
	}
	return out, nil
}
