package experiment

import (
	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/fabric"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
)

func init() {
	Register(Scenario{
		Name:  "fig14",
		Order: 100,
		Title: "W_AI sweep: fairness vs standing queue (16-to-1, 100G)",
		Run:   func(p Params) []*Table { return []*Table{Fig14(nil, 0, p.Seed).Table()} },
	})
}

// Fig14Row is one W_AI setting's outcome (Figure 14): fairness across
// the 16 concurrent flows and the queue-length distribution.
type Fig14Row struct {
	WAI       float64
	Jain      float64 // Jain index of per-flow goodput in the final window
	Queue95KB float64 // 95th-percentile queue, 1 µs samples
	Queue99KB float64
	TotalGbps float64
}

// Fig14Result is the W_AI sweep of §5.4.
type Fig14Result struct {
	Rows []Fig14Row
	// StableLimit is the §3.3 rule-of-thumb bound W_init(1−η)/N for
	// the 16 flows of this scenario.
	StableLimit float64
	Cap         float64
}

// Fig14 sweeps W_AI over a 16-to-1 incast of long flows at 100 Gbps.
// The paper's bound for 16 flows at T = 4 µs is ≈ 150 bytes; settings
// beyond it trade queueing for faster fairness.
func Fig14(waiBytes []float64, dur sim.Time, seed int64) *Fig14Result {
	if len(waiBytes) == 0 {
		waiBytes = []float64{25, 50, 100, 150, 300}
	}
	if dur == 0 {
		dur = 5 * sim.Millisecond
	}
	const nSend = 16
	res := &Fig14Result{}
	for _, wai := range waiBytes {
		scheme := HPCC(hpcccc.Config{WAI: wai})
		bin := 100 * sim.Microsecond
		m := buildStarMicro(scheme, nSend+1, 100*sim.Gbps, seed, bin)
		for i := 0; i < nSend; i++ {
			m.flowAt(0, i, nSend, longFlowSize, i, nil)
		}
		// Sample past the (W_AI-independent) line-rate-start transient
		// so the tail percentiles reflect the steady state the sweep is
		// about.
		var mon *stats.QueueMonitor
		m.eng.After(dur/5, func() {
			mon = stats.NewQueueMonitor(m.eng, []*fabric.Port{m.portTo(nSend)}, fabric.PrioData, sim.Microsecond, dur)
		})
		m.eng.RunUntil(dur)
		mon.Stop()

		var shares []float64
		total := 0.0
		for i := 0; i < nSend; i++ {
			r := m.tput.Rate(i, dur-sim.Millisecond, dur)
			shares = append(shares, r)
			total += r
		}
		row := Fig14Row{
			WAI:       wai,
			Jain:      stats.Jain(shares),
			TotalGbps: total,
		}
		var samples []float64
		for _, tp := range mon.Series {
			samples = append(samples, tp.V)
		}
		row.Queue95KB = stats.Percentile(samples, 95) / 1024
		row.Queue99KB = stats.Percentile(samples, 99) / 1024
		res.Rows = append(res.Rows, row)

		if res.StableLimit == 0 {
			bdp := (100 * sim.Gbps).BytesPerSec() * m.baseRTT.Seconds()
			res.StableLimit = bdp * 0.05 / nSend
		}
		res.Cap = m.goodputCap()
	}
	return res
}

// Table renders the Figure 14 sweep.
func (r *Fig14Result) Table() *Table {
	t := &Table{
		Title: "Figure 14: W_AI sweep, 16-to-1 long flows (100G)",
		Cols:  []string{"WAI(B)", "Jain", "q95(KB)", "q99(KB)", "total(Gbps)"},
	}
	for _, row := range r.Rows {
		t.AddRow(f1(row.WAI), f2(row.Jain), f1(row.Queue95KB), f1(row.Queue99KB), f1(row.TotalGbps))
	}
	t.AddNote("§3.3 stability bound W_init(1-η)/16 ≈ %.0f bytes: settings beyond it should show larger queues", r.StableLimit)
	t.AddNote("queues sampled after the start-up transient; achievable goodput ceiling %.1f Gbps", r.Cap)
	return t
}
