package experiment

import (
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// runLoadSharded executes a load scenario across per-partition engines
// with conservative lookahead. It engages only when the run can be
// proven byte-identical to the single-engine execution:
//
//   - the traffic is open-loop, so the full arrival schedule — and the
//     exact flow-ID sequence the lazy single-engine install would
//     assign — is computable up front (workload.PlanArrivals);
//   - the topology splits into ≥2 host clusters joined by positive-
//     delay links (topology.Shard), giving the lookahead;
//   - no streaming observers are attached (their callbacks would
//     otherwise run concurrently on shard goroutines).
//
// Anything else returns !ok and RunLoad falls back to one engine.
//
// The error return is reserved for runs that engaged and then died:
// a shard goroutine panicking mid-epoch, or the speculation machinery
// catching a broken invariant. Those are surfaced, not swallowed —
// falling back after half a run executed would silently double-count
// fabric state.
func runLoadSharded(s LoadScenario) (*LoadResult, bool, error) {
	if s.Obs.OnFlow != nil || s.Obs.OnQueue != nil || s.Obs.OnPFC != nil || s.Obs.OnQueueFlush != nil {
		return nil, false, nil
	}
	for _, g := range s.Traffic {
		if !workload.CanPlan(g) {
			// Cheap refusal before building anything: the fallback path
			// builds its own fabric.
			return nil, false, nil
		}
	}
	rate := s.Topo.Rate()
	baseRTT := s.Topo.BaseRTT()
	eng0 := s.newEngine()
	nw := s.build(eng0)
	plan, ok := workload.PlanArrivals(s.Traffic, len(nw.Hosts), workload.Env{
		HostRate: rate,
		Until:    s.Until,
		MaxFlows: s.MaxFlows,
		Seed:     s.Seed,
	})
	if !ok {
		return nil, false, nil
	}
	sh, err := topology.Shard(nw, s.Shards, s.newEngine)
	if err != nil {
		return nil, false, nil
	}
	k := len(sh.Engines)

	// Per-shard FCT collection: completion callbacks run on the owning
	// shard's goroutine, so each shard feeds its own set; the sets merge
	// in shard order afterwards. In exact mode merge concatenates
	// records and every consumer of the record list (percentiles,
	// buckets) is order-independent; in sketch mode merge adds bucket
	// counts, which is exact and order-invariant — either way the merged
	// aggregate equals the single-engine one.
	fcts := make([]stats.FCTSet, k)
	if s.SketchStats {
		for i := range fcts {
			fcts[i] = stats.NewStreamingFCT(s.FCTBucketEdges, s.StatsAccuracy)
		}
	}
	dones := make([]func(*host.Flow), k)
	for i := range dones {
		set := &fcts[i]
		dones[i] = func(f *host.Flow) {
			set.Add(stats.FCTRecord{
				Size:  f.Size(),
				FCT:   f.FCT(),
				Ideal: stats.IdealFCT(f.Size(), rate, baseRTT, packet.DefaultMTU, s.Scheme.INT),
			})
		}
	}
	for _, pf := range plan {
		shard := sh.HostShard[pf.Src]
		done := dones[shard]
		if pf.At < 0 {
			// Inline arrival: the lazy install starts it during Install.
			nw.StartFlowID(pf.ID, pf.Src, pf.Dst, pf.Size, done)
			continue
		}
		pf := pf
		start := func() { nw.StartFlowID(pf.ID, pf.Src, pf.Dst, pf.Size, done) }
		// The generator's canonical arrival key fixes the event's
		// position among simultaneous events — the same (time, key)
		// rank the lazy install's chain event carries on one engine.
		sh.Engines[shard].AtKey(pf.At, sim.ArrivalKey(pf.Gen), start)
	}

	// One queue monitor per shard over that shard's edge ports: the
	// same ports sampled at the same instants as the single monitor
	// would, so the pooled sample multiset is identical. The retention
	// cap thins by tick index, which every monitor shares, so it keeps
	// the sharded multiset identical to the single-engine one too.
	edge := nw.EdgePorts()
	mons := make([]*stats.QueueMonitor, k)
	for i := 0; i < k; i++ {
		var ports []*fabric.Port
		for _, p := range edge {
			if sh.NodeShard[p.Owner().ID()] == i {
				ports = append(ports, p)
			}
		}
		mons[i] = stats.NewQueueMonitor(sh.Engines[i], ports, fabric.PrioData, s.QueueSample, s.Until)
		mons[i].SampleCap = s.QueueSampleCap
		if s.SketchStats {
			mons[i].EnableSketch(s.StatsAccuracy)
		}
	}

	// Optimistic barriers: best-effort, like sharding itself. The CC
	// algorithm's state rolls back through the host checkpoint only when
	// the scheme's instances can checkpoint themselves, so probe one;
	// EnableSpeculation separately refuses RNG-marking fabrics. Either
	// refusal leaves the run on plain conservative barriers.
	speculated := false
	if s.Speculate {
		if _, ok := s.Scheme.Factory().(sim.Checkpointable); ok {
			if sh.EnableSpeculation(s.SpecWindow) == nil {
				speculated = true
				// Result collectors mutate during speculative epochs, so
				// they must roll back alongside the world they observe.
				for i := 0; i < k; i++ {
					sh.Attach(i, &fcts[i])
					sh.Attach(i, mons[i])
				}
			}
		}
	}

	if err := sh.Group.RunUntil(s.Until + s.Drain); err != nil {
		return nil, false, err
	}

	res := &LoadResult{Scheme: s.Scheme.Name, Shards: k, Speculated: speculated, Sync: sh.Group.Stats}
	for _, m := range mons {
		m.Stop()
	}
	var queueBytes int64
	if s.SketchStats {
		// Sketch merges are exact bucket-count addition, so the merged
		// queue sketch equals the whole-fabric monitor's.
		for i := 1; i < k; i++ {
			mons[0].MergeSketch(mons[i])
		}
		res.Queue = mons[0].Summary()
		queueBytes = mons[0].RetainedBytes()
	} else {
		var samples []float64
		for _, m := range mons {
			samples = append(samples, m.Samples...)
		}
		res.Queue = stats.Summarize(samples)
		res.QueueKB = make([]float64, len(samples))
		for i, v := range samples {
			res.QueueKB[i] = v / 1024
		}
		queueBytes = int64(len(samples)) * 8
	}
	if s.SketchStats {
		res.FCT = stats.NewStreamingFCT(s.FCTBucketEdges, s.StatsAccuracy)
	}
	for i := range fcts {
		res.FCT.Merge(&fcts[i])
	}
	res.RetainedStatBytes = res.FCT.RetainedBytes() + queueBytes
	collectFabric(res, nw, s.Until+s.Drain)
	res.Elapsed = sh.Engines[0].Now()
	return res, true, nil
}
