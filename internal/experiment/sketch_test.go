package experiment

import (
	"math"
	"sort"
	"testing"

	"hpcc/internal/sim"
	"hpcc/internal/workload"
)

// bracketCheck asserts a sketch quantile against the exact sample
// multiset the run produced: the DDSketch guarantee is relative
// accuracy alpha against an exact order statistic, so the value must
// land between the bracketing order statistics at rank p/100*(n-1),
// each widened by alpha.
func bracketCheck(t *testing.T, name string, got float64, xs []float64, p, alpha float64) {
	t.Helper()
	if len(xs) == 0 {
		return
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := sorted[int(rank)] * (1 - alpha)
	hi := sorted[int(math.Ceil(rank))] * (1 + alpha)
	if got < lo-1e-9 || got > hi+1e-9 {
		t.Errorf("%s p%v = %v, want within [%v, %v] (n=%d)", name, p, got, lo, hi, len(sorted))
	}
}

// A sketch-stats run must reproduce the exact run's percentiles within
// the configured relative accuracy, on a registry-representative
// scenario (the dumbbell with incast the shard goldens use).
func TestSketchStatsWithinAccuracy(t *testing.T) {
	const alpha = 0.01
	exact := runLoadT(t, dumbbellScenario(1, false))
	sc := dumbbellScenario(1, false)
	sc.SketchStats = true
	sketch := runLoadT(t, sc)

	if got, want := sketch.FCT.Count(), exact.FCT.Count(); got != want {
		t.Fatalf("flow count %d, want %d", got, want)
	}
	if got, want := sketch.FCT.ShortCount(), exact.FCT.ShortCount(); got != want {
		t.Fatalf("short-flow count %d, want %d", got, want)
	}

	sl := exact.FCT.Slowdowns()
	var shortSl []float64
	for _, r := range exact.FCT.Records {
		if r.Size <= 7_000 {
			shortSl = append(shortSl, r.Slowdown())
		}
	}
	for _, p := range []float64{50, 95, 99, 99.9} {
		bracketCheck(t, "slowdown", sketch.FCT.SlowdownQuantile(p), sl, p, alpha)
	}
	bracketCheck(t, "short slowdown", sketch.FCT.ShortSlowdownQuantile(99), shortSl, 99, alpha)

	// Queue-depth percentiles: the exact run's pooled samples are the
	// reference multiset (QueueKB is the same samples in KB).
	depths := make([]float64, len(exact.QueueKB))
	for i, kb := range exact.QueueKB {
		depths[i] = kb * 1024
	}
	bracketCheck(t, "queue depth", sketch.Queue.P50, depths, 50, alpha)
	bracketCheck(t, "queue depth", sketch.Queue.P99, depths, 99, alpha)
	if sketch.Queue.Max != exact.Queue.Max {
		t.Errorf("queue max %v, want exact %v", sketch.Queue.Max, exact.Queue.Max)
	}

	if sketch.RetainedStatBytes >= exact.RetainedStatBytes {
		t.Errorf("sketch retention %d B not below exact %d B", sketch.RetainedStatBytes, exact.RetainedStatBytes)
	}
}

// Sharded sketch runs merge per-shard sketches by exact bucket
// addition, so every reported statistic — quantiles, counts, retained
// bytes — must be identical across 1/2/4/8 engines, conservative and
// speculative alike. (Float sums/means are the one order-sensitive
// piece and are deliberately not compared.)
func TestShardedSketchInvariance(t *testing.T) {
	base := func() LoadScenario {
		sc := dumbbellScenario(1, false)
		sc.SketchStats = true
		return sc
	}
	ref := runLoadT(t, base())
	type key struct {
		name string
		v    float64
	}
	fingerprint := func(r *LoadResult) []key {
		ks := []key{
			{"flows", float64(r.FCT.Count())},
			{"short-flows", float64(r.FCT.ShortCount())},
			{"short-p99", r.FCT.ShortSlowdownQuantile(99)},
			{"short-lat-p95", r.FCT.ShortLatencyQuantile(95)},
			{"queue-n", float64(r.Queue.N)},
			{"queue-p50", r.Queue.P50},
			{"queue-p95", r.Queue.P95},
			{"queue-p99", r.Queue.P99},
			{"queue-max", r.Queue.Max},
			{"retained", float64(r.RetainedStatBytes)},
		}
		for _, p := range []float64{50, 95, 99, 99.9} {
			ks = append(ks, key{"slowdown", r.FCT.SlowdownQuantile(p)})
		}
		for _, b := range r.FCT.Buckets(nil) {
			ks = append(ks, key{"bucket-n", float64(b.Stats.N)}, key{"bucket-p95", b.Stats.P95})
		}
		return ks
	}
	want := fingerprint(ref)
	for _, shards := range []int{2, 4, 8} {
		for _, spec := range []bool{false, true} {
			sc := base()
			sc.Shards = shards
			sc.Speculate = spec
			r := runLoadT(t, sc)
			if r.Shards < 2 {
				t.Fatalf("shards=%d spec=%v: ran on %d engines", shards, spec, r.Shards)
			}
			got := fingerprint(r)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("shards=%d spec=%v: %s = %v, want %v (serial)",
						shards, spec, got[i].name, got[i].v, want[i].v)
				}
			}
		}
	}
}

// streamScenario floods a 4-host star with fixed-1KB flows — the
// hpccbench stream-flows fixture — so flow count scales without
// simulation cost.
func streamScenario(flows int, sketch bool) LoadScenario {
	fixed := workload.MustCDF("fixed-1KB", []workload.Point{{Bytes: 1000, Prob: 0}, {Bytes: 1000, Prob: 1}})
	return LoadScenario{
		Scheme:      ByNameMust("hpcc"),
		Topo:        StarTopo(4),
		Traffic:     []workload.Generator{workload.PoissonSpec{CDF: fixed, Load: 0.5}},
		MaxFlows:    flows,
		Until:       sim.Second,
		Drain:       20 * sim.Millisecond,
		PFC:         true,
		Seed:        1,
		SketchStats: sketch,
	}
}

// The memory contract: sketch-mode retention is flat in the flow
// count, exact-mode retention is linear in it.
func TestSketchRetainedBytesFlatInFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 15k flows: skipped in -short")
	}
	s1 := runLoadT(t, streamScenario(3_000, true)).RetainedStatBytes
	s4 := runLoadT(t, streamScenario(12_000, true)).RetainedStatBytes
	e1 := runLoadT(t, streamScenario(3_000, false)).RetainedStatBytes
	if s4 > s1+s1/4 {
		t.Errorf("sketch retention grew with flows: %d B at 4x vs %d B (limit 1.25x)", s4, s1)
	}
	if e1 < 3_000*24 {
		t.Errorf("exact retention %d B below the per-flow floor %d B", e1, 3_000*24)
	}
	if s4 >= e1 {
		t.Errorf("sketch at 4x the flows (%d B) not below exact at 1x (%d B)", s4, e1)
	}
}
