package experiment

import (
	"strings"
	"testing"

	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

// TestAllTablesRender drives every figure's table formatter on
// miniature runs — the rendering paths otherwise only execute inside
// cmd/hpccexp.
func TestAllTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("renders several scaled-down load scenarios")
	}
	var sb strings.Builder
	sc := Scale{MaxFlows: 60, Until: 2 * sim.Millisecond, Drain: 8 * sim.Millisecond, Seed: 1}
	spec := topology.FatTreeSpec{Cores: 2, Aggs: 2, ToRs: 2, HostsPerToR: 4,
		HostRate: 100 * sim.Gbps, FabricRate: 400 * sim.Gbps, LinkDelay: sim.Microsecond}

	Fig01(3*sim.Millisecond, 1).Table().Fprint(&sb)
	for _, tb := range Fig02(sc).Tables() {
		tb.Fprint(&sb)
	}
	for _, tb := range Fig03(sc).Tables() {
		tb.Fprint(&sb)
	}
	Fig06(100*sim.Microsecond, 1).Table().Fprint(&sb)
	Fig09LongShort(nil, sim.Millisecond, 1).Table().Fprint(&sb)
	Fig09Incast(nil, 2*sim.Millisecond, 1).Table().Fprint(&sb)
	Fig09Mice(nil, 2*sim.Millisecond, 1).Table().Fprint(&sb)
	Fig09Fairness(nil, sim.Millisecond, 1).Table().Fprint(&sb)
	for _, tb := range Fig10(sc).Tables() {
		tb.Fprint(&sb)
	}
	for _, tb := range Fig11(spec, sc).Tables() {
		tb.Fprint(&sb)
	}
	for _, tb := range Fig12(spec, sc).Tables() {
		tb.Fprint(&sb)
	}
	for _, tb := range Fig13(100*sim.Microsecond, 1).Tables() {
		tb.Fprint(&sb)
	}
	Fig14([]float64{50}, sim.Millisecond, 1).Table().Fprint(&sb)
	EtaMaxStageTable(AblationEtaMaxStage(500*sim.Microsecond, 1)).Fprint(&sb)
	QuantizeTable(AblationINTQuantization(sc)).Fprint(&sb)
	TheoryLemmaTable(10, 1).Fprint(&sb)

	out := sb.String()
	for _, want := range []string{
		"Figure 1", "Figure 2a", "Figure 2b", "Figure 3a", "Figure 3b",
		"Figure 6", "Figure 9a", "Figure 9c", "Figure 9e", "Figure 9g",
		"Figure 10a", "Figure 11a", "Figure 12", "Figure 13a", "Figure 14",
		"Ablation", "Appendix A.2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatal("rendered output contains NaN")
	}
}

// sizeLabel formatting used across the figure tables.
func TestSizeLabel(t *testing.T) {
	cases := map[int64]string{
		324:        "324",
		6_700:      "6.7K",
		20_000:     "20K",
		1_000_000:  "1M",
		2_500_000:  "2.5M",
		30_000_000: "30M",
	}
	for in, want := range cases {
		if got := sizeLabel(in); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
