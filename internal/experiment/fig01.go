package experiment

import (
	"hpcc/internal/cc/dcqcn"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

func init() {
	Register(Scenario{
		Name:  "fig1",
		Order: 10,
		Title: "PFC pause propagation under incast storms (DCQCN, PoD)",
		Run:   func(p Params) []*Table { return []*Table{Fig01(0, p.Seed).Table()} },
	})
}

// Fig01Result substitutes for the paper's Figure 1, which plots
// *production* measurements of PFC pause propagation. We reproduce the
// phenomenon inside the simulated PoD: sustained incast under DCQCN
// triggers pauses that propagate from the receiver's ToR up through
// the Agg and back down to innocent hosts, suppressing send capacity
// (see DESIGN.md, substitution table).
type Fig01Result struct {
	// PauseTimeByTier is the fraction of paused (port × time) by
	// transmitter class, tracing propagation depth:
	//   agg->tor:  depth 1 (receiver's ToR paused its Agg uplink feed)
	//   tor->agg:  depth 2 (the Agg paused ToR uplinks)
	//   host->tor: depth 3 (ToRs paused host NICs — senders silenced)
	PauseTimeByTier map[string]float64
	// SuppressedBandwidthFrac is host-uplink pause time × NIC rate over
	// total host capacity × duration — Figure 1b's "suppressed
	// bandwidth".
	SuppressedBandwidthFrac float64
	PFCFrames               uint64
	Drops                   uint64
}

// Fig01 drives the PoD with background load plus a sustained heavy
// incast under aggressively-tuned DCQCN.
func Fig01(dur sim.Time, seed int64) *Fig01Result {
	if dur == 0 {
		dur = 20 * sim.Millisecond
	}
	scheme := DCQCN(dcqcn.Config{RateIncTimer: 55 * sim.Microsecond, MinDecGap: 50 * sim.Microsecond})
	eng := sim.NewEngine()
	topo := PodTopo(topology.PodSpec{})
	rate := topo.Rate()
	scfg := fabric.SwitchConfig{
		// A small buffer makes pauses propagate visibly at CI scale.
		BufferBytes: 2 << 20,
		PFCEnabled:  true,
		ECNEnabled:  true,
		KMin:        scheme.Kmin(rate),
		KMax:        scheme.Kmax(rate),
		Seed:        seed,
	}
	hcfg := host.Config{CC: scheme.Factory, BaseRTT: topo.BaseRTT(), Seed: seed}
	nw := topo.Build(eng, hcfg, scfg)

	workload.StartPoisson(nw, workload.PoissonSpec{
		CDF: workload.WebSearch(), Load: 0.3, HostRate: rate,
		Until: dur, MaxFlows: 100_000, Seed: seed,
	})
	workload.StartIncast(nw, workload.IncastSpec{
		FanIn: 16, Size: 500_000, LoadFrac: 0.10, HostRate: rate,
		Until: dur, Seed: seed + 1,
	})
	eng.RunUntil(dur + 10*sim.Millisecond)

	res := &Fig01Result{PauseTimeByTier: map[string]float64{}}
	elapsed := float64(eng.Now())
	classTime := map[string]float64{}
	classPorts := map[string]float64{}
	var hostPause sim.Time
	hostPorts := 0
	// Switch 0 is the Agg, 1..4 the ToRs (builder order in Pod).
	agg := nw.Switches[0]
	for _, sw := range nw.Switches {
		for _, p := range sw.Ports() {
			class := "tor->host"
			if sw == agg {
				class = "agg->tor"
			} else if p.Peer() == agg {
				class = "tor->agg"
			}
			classTime[class] += float64(p.PausedFor(fabric.PrioData))
			classPorts[class]++
		}
		res.PFCFrames += sw.PFCFramesSent()
	}
	for _, h := range nw.Hosts {
		for _, p := range h.Ports() {
			hostPause += p.PausedFor(fabric.PrioData)
			hostPorts++
		}
	}
	classTime["host->tor"] = float64(hostPause)
	classPorts["host->tor"] = float64(hostPorts)
	for class, t := range classTime {
		res.PauseTimeByTier[class] = t / (elapsed * classPorts[class])
	}
	res.SuppressedBandwidthFrac = float64(hostPause) / (elapsed * float64(hostPorts))
	res.Drops = nw.TotalDrops()
	return res
}

// Table renders the substitution study.
func (r *Fig01Result) Table() *Table {
	t := &Table{
		Title: "Figure 1 (substitution): PFC pause propagation under incast storms (DCQCN, PoD)",
		Cols:  []string{"pause class", "paused-time-frac(%)"},
	}
	// tor->host is omitted: hosts never emit pauses (they are the
	// receivers), so that class is structurally zero.
	for _, class := range []string{"agg->tor", "tor->agg", "host->tor"} {
		t.AddRow(class, f2(r.PauseTimeByTier[class]*100))
	}
	t.AddNote("host->tor pauses silence senders: suppressed bandwidth %.2f%% of capacity (paper Fig 1b: up to 25%%)", r.SuppressedBandwidthFrac*100)
	t.AddNote("%d PFC frames; %d drops; paper Fig 1a: ~10%% of pauses propagate 3 hops", r.PFCFrames, r.Drops)
	return t
}
