package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

func dumbbellScenario(shards int, calendar bool) LoadScenario {
	return LoadScenario{
		Scheme: ByNameMust("hpcc"),
		Topo: topology.DumbbellSpec{Pairs: 4, HostRate: 100 * sim.Gbps,
			CoreRate: 100 * sim.Gbps, Delay: sim.Microsecond},
		Traffic: []workload.Generator{
			workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.6},
			workload.IncastSpec{FanIn: 3, Size: 200_000, LoadFrac: 0.02},
		},
		MaxFlows: 150,
		Until:    2 * sim.Millisecond,
		Drain:    10 * sim.Millisecond,
		PFC:      true,
		Seed:     3,
		Shards:   shards,
		Calendar: calendar,
	}
}

// runLoadT is RunLoad with test-fatal error handling.
func runLoadT(t *testing.T, s LoadScenario) *LoadResult {
	t.Helper()
	r, err := RunLoad(s)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	return r
}

// canonicalize sorts the order-independent record and sample lists so
// runs that collect them in different (but equivalent) orders compare
// byte-for-byte.
func canonicalize(r *LoadResult) {
	sort.Slice(r.FCT.Records, func(i, j int) bool {
		a, b := r.FCT.Records[i], r.FCT.Records[j]
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		if a.FCT != b.FCT {
			return a.FCT < b.FCT
		}
		return a.Ideal < b.Ideal
	})
	sort.Float64s(r.QueueKB)
}

func compareRuns(t *testing.T, name string, base, got *LoadResult) {
	t.Helper()
	canonicalize(base)
	canonicalize(got)
	if len(got.FCT.Records) != len(base.FCT.Records) {
		t.Fatalf("%s: %d FCT records, want %d", name, len(got.FCT.Records), len(base.FCT.Records))
	}
	for i := range base.FCT.Records {
		if got.FCT.Records[i] != base.FCT.Records[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", name, i, got.FCT.Records[i], base.FCT.Records[i])
		}
	}
	if len(got.QueueKB) != len(base.QueueKB) {
		t.Fatalf("%s: %d queue samples, want %d", name, len(got.QueueKB), len(base.QueueKB))
	}
	for i := range base.QueueKB {
		if got.QueueKB[i] != base.QueueKB[i] {
			t.Fatalf("%s: queue sample %d = %v, want %v", name, i, got.QueueKB[i], base.QueueKB[i])
		}
	}
	if got.Queue != base.Queue {
		t.Fatalf("%s: queue summary %+v, want %+v", name, got.Queue, base.Queue)
	}
	if got.PauseFrac != base.PauseFrac && !(math.IsNaN(got.PauseFrac) && math.IsNaN(base.PauseFrac)) {
		t.Fatalf("%s: pause %v, want %v", name, got.PauseFrac, base.PauseFrac)
	}
	if got.Drops != base.Drops || got.Started != base.Started ||
		got.Censored != base.Censored || got.DataPackets != base.DataPackets ||
		got.PortPackets != base.PortPackets || got.Elapsed != base.Elapsed {
		t.Fatalf("%s: counters (drops %d started %d censored %d data %d port %d elapsed %v)"+
			" want (drops %d started %d censored %d data %d port %d elapsed %v)",
			name, got.Drops, got.Started, got.Censored, got.DataPackets, got.PortPackets, got.Elapsed,
			base.Drops, base.Started, base.Censored, base.DataPackets, base.PortPackets, base.Elapsed)
	}
}

// The golden sharding contract: 2-shard and 4-shard dumbbell runs are
// byte-identical to the single-engine run at the same seed.
func TestShardedDumbbellGolden(t *testing.T) {
	base := runLoadT(t, dumbbellScenario(1, false))
	if base.Shards != 1 || len(base.FCT.Records) == 0 {
		t.Fatalf("baseline: shards=%d records=%d", base.Shards, len(base.FCT.Records))
	}
	for _, k := range []int{2, 4} {
		got := runLoadT(t, dumbbellScenario(k, false))
		// The dumbbell has 2 rack-level host clusters; asking for more
		// engages the per-host refinement (each host its own cluster, the
		// cores one switch cluster), so 4 shards really means 4 engines.
		if got.Shards != k {
			t.Fatalf("%d-shard run engaged %d shards, want %d", k, got.Shards, k)
		}
		compareRuns(t, "dumbbell-shards", base, got)
	}
}

// The calendar-queue scheduler must not change results either — same
// fire order, different structure.
func TestCalendarSchedulerGolden(t *testing.T) {
	base := runLoadT(t, dumbbellScenario(1, false))
	cal := runLoadT(t, dumbbellScenario(1, true))
	compareRuns(t, "calendar", base, cal)
	// And combined: sharded execution on calendar engines.
	both := runLoadT(t, dumbbellScenario(2, true))
	compareRuns(t, "calendar+shards", base, both)
}

// Sharding the CI FatTree (multi-hop boundaries through aggs and
// cores, ECMP in play) must also match the single-engine run.
func TestShardedFatTreeGolden(t *testing.T) {
	mk := func(shards int) LoadScenario {
		return LoadScenario{
			Scheme:      ByNameMust("hpcc"),
			Topo:        FatTreeTopo(topology.ScaledFatTree()),
			Traffic:     []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.5}},
			MaxFlows:    120,
			Until:       sim.Millisecond,
			Drain:       10 * sim.Millisecond,
			PFC:         true,
			Seed:        1,
			BufferBytes: BufferFor(32),
			Shards:      shards,
		}
	}
	base := runLoadT(t, mk(1))
	if len(base.FCT.Records) == 0 {
		t.Fatal("baseline produced no flows")
	}
	for _, k := range []int{2, 4} {
		got := runLoadT(t, mk(k))
		if got.Shards != k {
			t.Fatalf("requested %d shards, engaged %d", k, got.Shards)
		}
		compareRuns(t, "fattree-shards", base, got)
	}
}

// The canonical-rank golden: a *saturated* multipath FatTree — ECMP
// spraying across aggs and cores at 95% Poisson load plus a 16:1
// incast — is where same-picosecond cross-shard deliveries into one
// node actually happen. Before the canonical (time, key, seq) rank,
// those ties fell back to arming order and the sharded run drifted at
// picosecond granularity; now Shards 1, 2 and 4 must match
// byte-for-byte on both schedulers.
func TestShardedSaturatedMultipathGolden(t *testing.T) {
	mk := func(shards int, calendar bool) LoadScenario {
		return LoadScenario{
			Scheme: ByNameMust("hpcc"),
			Topo:   FatTreeTopo(topology.ScaledFatTree()),
			Traffic: []workload.Generator{
				workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.95},
				workload.IncastSpec{FanIn: 16, Size: 500_000, LoadFrac: 0.1},
			},
			MaxFlows:    400,
			Until:       2 * sim.Millisecond,
			Drain:       15 * sim.Millisecond,
			PFC:         true,
			Seed:        5,
			BufferBytes: BufferFor(32),
			Shards:      shards,
			Calendar:    calendar,
		}
	}
	base := runLoadT(t, mk(1, false))
	if len(base.FCT.Records) == 0 {
		t.Fatal("saturated baseline produced no flows — test is vacuous")
	}
	for _, k := range []int{2, 4, 8} {
		got := runLoadT(t, mk(k, false))
		if got.Shards != k {
			t.Fatalf("requested %d shards, engaged %d", k, got.Shards)
		}
		compareRuns(t, "saturated-heap", base, got)
	}
	// Calendar engines, alone and sharded, fire in the same canonical
	// order.
	compareRuns(t, "saturated-calendar", base, runLoadT(t, mk(1, true)))
	compareRuns(t, "saturated-calendar-shards", base, runLoadT(t, mk(4, true)))

	// Speculative barriers on the same saturated fabric: commits and
	// rollbacks both happen here, and the result must not move a byte.
	for _, k := range []int{2, 4, 8} {
		s := mk(k, false)
		s.Speculate = true
		got := runLoadT(t, s)
		if !got.Speculated {
			t.Fatalf("%d-shard run did not engage speculation", k)
		}
		if got.Sync.SpecEpochs == 0 {
			t.Fatalf("%d-shard speculative run attempted no speculative epochs", k)
		}
		compareRuns(t, "saturated-spec", base, got)
	}
	sc := mk(8, true)
	sc.Speculate = true
	compareRuns(t, "saturated-spec-calendar", base, runLoadT(t, sc))
}

// Speculation on the dumbbell: every knob combination — scheduler ×
// window — replays the serial bytes, and a tight window forces the
// adaptive machinery through its rollback path.
func TestSpeculativeDumbbellGolden(t *testing.T) {
	base := runLoadT(t, dumbbellScenario(1, false))
	for _, cal := range []bool{false, true} {
		for _, win := range []int{0, 2} {
			s := dumbbellScenario(2, cal)
			s.Speculate = true
			s.SpecWindow = win
			got := runLoadT(t, s)
			if !got.Speculated {
				t.Fatalf("cal=%v win=%d: speculation did not engage", cal, win)
			}
			if got.Sync.SpecEpochs == 0 {
				t.Fatalf("cal=%v win=%d: no speculative epochs attempted", cal, win)
			}
			compareRuns(t, "spec-dumbbell", base, got)
		}
	}
}

// The randomized speculation property: whatever the workload mix,
// seed, shard count, scheduler or window, a speculative run replays
// the serial bytes. Scenario parameters are drawn from a seeded RNG so
// a failure reproduces; across the trials at least one rollback must
// occur, or the property was never exercised on its hard path.
func TestSpeculativePropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rollbacks, commits uint64
	for trial := 0; trial < 5; trial++ {
		seed := 1 + rng.Int63n(1000)
		s := LoadScenario{
			Scheme: ByNameMust("hpcc"),
			Topo: topology.DumbbellSpec{Pairs: 3 + rng.Intn(3), HostRate: 100 * sim.Gbps,
				CoreRate: 100 * sim.Gbps, Delay: sim.Microsecond},
			Traffic: []workload.Generator{
				workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.3 + 0.5*rng.Float64()},
				workload.IncastSpec{FanIn: 2 + rng.Intn(4), Size: 100_000, LoadFrac: 0.02},
			},
			MaxFlows: 80,
			Until:    sim.Millisecond,
			Drain:    8 * sim.Millisecond,
			PFC:      true,
			Seed:     seed,
		}
		base := runLoadT(t, s)
		sp := s
		sp.Shards = 2 + rng.Intn(3)
		sp.Calendar = rng.Intn(2) == 1
		sp.Speculate = true
		sp.SpecWindow = []int{0, 2, 4, 8}[rng.Intn(4)]
		got := runLoadT(t, sp)
		if !got.Speculated {
			t.Fatalf("trial %d (seed %d): speculation did not engage", trial, seed)
		}
		name := fmt.Sprintf("trial%d-seed%d-shards%d-win%d", trial, seed, sp.Shards, sp.SpecWindow)
		compareRuns(t, name, base, got)
		rollbacks += got.Sync.SpecRollbacks
		commits += got.Sync.SpecCommits
	}
	if rollbacks == 0 {
		t.Fatal("no trial rolled back — the hard path of the property went untested")
	}
	if commits == 0 {
		t.Fatal("no trial committed — speculation never paid off in any trial")
	}
}

// Speculation is best-effort: an ECN-marking scheme (RNG in the
// forwarding path) must fall back to conservative barriers, not error
// and not diverge.
func TestSpeculationFallsBackOnECN(t *testing.T) {
	mk := func(shards int, spec bool) LoadScenario {
		s := dumbbellScenario(shards, false)
		s.Scheme = ByNameMust("dcqcn")
		s.Speculate = spec
		return s
	}
	base := runLoadT(t, mk(1, false))
	got := runLoadT(t, mk(2, true))
	if got.Speculated {
		t.Fatal("ECN fabric engaged speculation; RNG marking cannot replay")
	}
	if got.Shards != 2 {
		t.Fatalf("conservative fallback ran on %d shards, want 2", got.Shards)
	}
	compareRuns(t, "ecn-conservative", base, got)
}

// Closed-loop traffic and observer attachment both fall back to a
// single engine — silently, with identical results.
func TestShardedFallbacks(t *testing.T) {
	s := dumbbellScenario(2, false)
	s.Traffic = append(s.Traffic, workload.AllToAllSpec{Size: 5_000})
	r := runLoadT(t, s)
	if r.Shards != 1 {
		t.Fatalf("closed-loop traffic ran on %d shards, want fallback to 1", r.Shards)
	}

	s2 := dumbbellScenario(2, false)
	var qs []stats.TimePoint
	s2.Obs.OnQueue = func(tp stats.TimePoint) { qs = append(qs, tp) }
	r2 := runLoadT(t, s2)
	if r2.Shards != 1 {
		t.Fatalf("observer run used %d shards, want fallback to 1", r2.Shards)
	}
	if len(qs) == 0 {
		t.Fatal("observer saw no samples in fallback mode")
	}

	// A flat star used to be a fallback case; per-host sharding now
	// partitions it (each host its own cluster, the hub switch whole),
	// still byte-identical to the serial run.
	s3 := dumbbellScenario(2, false)
	s3.Topo = StarTopo(8)
	serial := s3
	serial.Shards = 1
	base3 := runLoadT(t, serial)
	r3 := runLoadT(t, s3)
	if r3.Shards != 2 {
		t.Fatalf("star ran on %d shards, want 2", r3.Shards)
	}
	compareRuns(t, "star-per-host", base3, r3)

	// A single-host fabric genuinely cannot partition.
	s4 := dumbbellScenario(2, false)
	s4.Topo = StarTopo(1)
	s4.Traffic = nil
	if r4 := runLoadT(t, s4); r4.Shards != 1 {
		t.Fatalf("1-host star ran on %d shards, want 1", r4.Shards)
	}
}

// Bounded queue-sample retention: the cap must bound QueueKB however
// long the horizon, and — because thinning is by tick index, which all
// monitors share — a capped sharded run must retain exactly the same
// sample multiset as the capped single-engine run.
func TestQueueSampleCapSharded(t *testing.T) {
	const capTicks = 16
	mk := func(shards int) LoadScenario {
		s := dumbbellScenario(shards, false)
		s.QueueSampleCap = capTicks
		return s
	}
	base := runLoadT(t, mk(1))
	// 8 edge ports on the 4-pair dumbbell: the retained samples are
	// rows × ports.
	if len(base.QueueKB) == 0 || len(base.QueueKB) > capTicks*8 {
		t.Fatalf("capped run retained %d samples, want (0, %d]", len(base.QueueKB), capTicks*8)
	}
	uncapped := runLoadT(t, dumbbellScenario(1, false))
	if len(uncapped.QueueKB) <= len(base.QueueKB) {
		t.Fatalf("cap retained %d samples but uncapped has %d — cap never engaged",
			len(base.QueueKB), len(uncapped.QueueKB))
	}
	got := runLoadT(t, mk(2))
	if got.Shards != 2 {
		t.Fatalf("capped sharded run engaged %d shards, want 2", got.Shards)
	}
	compareRuns(t, "queue-cap-sharded", base, got)
}

// Bounded completed-flow retention must not change any aggregate.
func TestCompletedWindowAccounting(t *testing.T) {
	base := runLoadT(t, dumbbellScenario(1, false))
	s := dumbbellScenario(1, false)
	s.CompletedWindow = 4
	got := runLoadT(t, s)
	compareRuns(t, "completed-window", base, got)
	s.Shards = 2
	gotSharded := runLoadT(t, s)
	compareRuns(t, "completed-window-sharded", base, gotSharded)
}
