package experiment

import (
	"math"
	"sort"
	"testing"

	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

func dumbbellScenario(shards int, calendar bool) LoadScenario {
	return LoadScenario{
		Scheme: ByNameMust("hpcc"),
		Topo: topology.DumbbellSpec{Pairs: 4, HostRate: 100 * sim.Gbps,
			CoreRate: 100 * sim.Gbps, Delay: sim.Microsecond},
		Traffic: []workload.Generator{
			workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.6},
			workload.IncastSpec{FanIn: 3, Size: 200_000, LoadFrac: 0.02},
		},
		MaxFlows: 150,
		Until:    2 * sim.Millisecond,
		Drain:    10 * sim.Millisecond,
		PFC:      true,
		Seed:     3,
		Shards:   shards,
		Calendar: calendar,
	}
}

// canonicalize sorts the order-independent record and sample lists so
// runs that collect them in different (but equivalent) orders compare
// byte-for-byte.
func canonicalize(r *LoadResult) {
	sort.Slice(r.FCT.Records, func(i, j int) bool {
		a, b := r.FCT.Records[i], r.FCT.Records[j]
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		if a.FCT != b.FCT {
			return a.FCT < b.FCT
		}
		return a.Ideal < b.Ideal
	})
	sort.Float64s(r.QueueKB)
}

func compareRuns(t *testing.T, name string, base, got *LoadResult) {
	t.Helper()
	canonicalize(base)
	canonicalize(got)
	if len(got.FCT.Records) != len(base.FCT.Records) {
		t.Fatalf("%s: %d FCT records, want %d", name, len(got.FCT.Records), len(base.FCT.Records))
	}
	for i := range base.FCT.Records {
		if got.FCT.Records[i] != base.FCT.Records[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", name, i, got.FCT.Records[i], base.FCT.Records[i])
		}
	}
	if len(got.QueueKB) != len(base.QueueKB) {
		t.Fatalf("%s: %d queue samples, want %d", name, len(got.QueueKB), len(base.QueueKB))
	}
	for i := range base.QueueKB {
		if got.QueueKB[i] != base.QueueKB[i] {
			t.Fatalf("%s: queue sample %d = %v, want %v", name, i, got.QueueKB[i], base.QueueKB[i])
		}
	}
	if got.Queue != base.Queue {
		t.Fatalf("%s: queue summary %+v, want %+v", name, got.Queue, base.Queue)
	}
	if got.PauseFrac != base.PauseFrac && !(math.IsNaN(got.PauseFrac) && math.IsNaN(base.PauseFrac)) {
		t.Fatalf("%s: pause %v, want %v", name, got.PauseFrac, base.PauseFrac)
	}
	if got.Drops != base.Drops || got.Started != base.Started ||
		got.Censored != base.Censored || got.DataPackets != base.DataPackets ||
		got.PortPackets != base.PortPackets || got.Elapsed != base.Elapsed {
		t.Fatalf("%s: counters (drops %d started %d censored %d data %d port %d elapsed %v)"+
			" want (drops %d started %d censored %d data %d port %d elapsed %v)",
			name, got.Drops, got.Started, got.Censored, got.DataPackets, got.PortPackets, got.Elapsed,
			base.Drops, base.Started, base.Censored, base.DataPackets, base.PortPackets, base.Elapsed)
	}
}

// The golden sharding contract: 2-shard and 4-shard dumbbell runs are
// byte-identical to the single-engine run at the same seed.
func TestShardedDumbbellGolden(t *testing.T) {
	base := RunLoad(dumbbellScenario(1, false))
	if base.Shards != 1 || len(base.FCT.Records) == 0 {
		t.Fatalf("baseline: shards=%d records=%d", base.Shards, len(base.FCT.Records))
	}
	for _, k := range []int{2, 4} {
		got := RunLoad(dumbbellScenario(k, false))
		if got.Shards != 2 { // a dumbbell has exactly 2 host clusters
			t.Fatalf("%d-shard run engaged %d shards, want 2", k, got.Shards)
		}
		compareRuns(t, "dumbbell-shards", base, got)
	}
}

// The calendar-queue scheduler must not change results either — same
// fire order, different structure.
func TestCalendarSchedulerGolden(t *testing.T) {
	base := RunLoad(dumbbellScenario(1, false))
	cal := RunLoad(dumbbellScenario(1, true))
	compareRuns(t, "calendar", base, cal)
	// And combined: sharded execution on calendar engines.
	both := RunLoad(dumbbellScenario(2, true))
	compareRuns(t, "calendar+shards", base, both)
}

// Sharding the CI FatTree (multi-hop boundaries through aggs and
// cores, ECMP in play) must also match the single-engine run.
func TestShardedFatTreeGolden(t *testing.T) {
	mk := func(shards int) LoadScenario {
		return LoadScenario{
			Scheme:      ByNameMust("hpcc"),
			Topo:        FatTreeTopo(topology.ScaledFatTree()),
			Traffic:     []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.5}},
			MaxFlows:    120,
			Until:       sim.Millisecond,
			Drain:       10 * sim.Millisecond,
			PFC:         true,
			Seed:        1,
			BufferBytes: BufferFor(32),
			Shards:      shards,
		}
	}
	base := RunLoad(mk(1))
	if len(base.FCT.Records) == 0 {
		t.Fatal("baseline produced no flows")
	}
	for _, k := range []int{2, 4} {
		got := RunLoad(mk(k))
		if got.Shards != k {
			t.Fatalf("requested %d shards, engaged %d", k, got.Shards)
		}
		compareRuns(t, "fattree-shards", base, got)
	}
}

// The canonical-rank golden: a *saturated* multipath FatTree — ECMP
// spraying across aggs and cores at 95% Poisson load plus a 16:1
// incast — is where same-picosecond cross-shard deliveries into one
// node actually happen. Before the canonical (time, key, seq) rank,
// those ties fell back to arming order and the sharded run drifted at
// picosecond granularity; now Shards 1, 2 and 4 must match
// byte-for-byte on both schedulers.
func TestShardedSaturatedMultipathGolden(t *testing.T) {
	mk := func(shards int, calendar bool) LoadScenario {
		return LoadScenario{
			Scheme: ByNameMust("hpcc"),
			Topo:   FatTreeTopo(topology.ScaledFatTree()),
			Traffic: []workload.Generator{
				workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.95},
				workload.IncastSpec{FanIn: 16, Size: 500_000, LoadFrac: 0.1},
			},
			MaxFlows:    400,
			Until:       2 * sim.Millisecond,
			Drain:       15 * sim.Millisecond,
			PFC:         true,
			Seed:        5,
			BufferBytes: BufferFor(32),
			Shards:      shards,
			Calendar:    calendar,
		}
	}
	base := RunLoad(mk(1, false))
	if len(base.FCT.Records) == 0 {
		t.Fatal("saturated baseline produced no flows — test is vacuous")
	}
	for _, k := range []int{2, 4} {
		got := RunLoad(mk(k, false))
		if got.Shards != k {
			t.Fatalf("requested %d shards, engaged %d", k, got.Shards)
		}
		compareRuns(t, "saturated-heap", base, got)
	}
	// Calendar engines, alone and sharded, fire in the same canonical
	// order.
	compareRuns(t, "saturated-calendar", base, RunLoad(mk(1, true)))
	compareRuns(t, "saturated-calendar-shards", base, RunLoad(mk(4, true)))
}

// Closed-loop traffic and observer attachment both fall back to a
// single engine — silently, with identical results.
func TestShardedFallbacks(t *testing.T) {
	s := dumbbellScenario(2, false)
	s.Traffic = append(s.Traffic, workload.AllToAllSpec{Size: 5_000})
	r := RunLoad(s)
	if r.Shards != 1 {
		t.Fatalf("closed-loop traffic ran on %d shards, want fallback to 1", r.Shards)
	}

	s2 := dumbbellScenario(2, false)
	var qs []stats.TimePoint
	s2.Obs.OnQueue = func(tp stats.TimePoint) { qs = append(qs, tp) }
	r2 := RunLoad(s2)
	if r2.Shards != 1 {
		t.Fatalf("observer run used %d shards, want fallback to 1", r2.Shards)
	}
	if len(qs) == 0 {
		t.Fatal("observer saw no samples in fallback mode")
	}

	// Star does not partition: fallback too.
	s3 := dumbbellScenario(2, false)
	s3.Topo = StarTopo(8)
	if r3 := RunLoad(s3); r3.Shards != 1 {
		t.Fatalf("star ran on %d shards, want 1", r3.Shards)
	}
}

// Bounded queue-sample retention: the cap must bound QueueKB however
// long the horizon, and — because thinning is by tick index, which all
// monitors share — a capped sharded run must retain exactly the same
// sample multiset as the capped single-engine run.
func TestQueueSampleCapSharded(t *testing.T) {
	const capTicks = 16
	mk := func(shards int) LoadScenario {
		s := dumbbellScenario(shards, false)
		s.QueueSampleCap = capTicks
		return s
	}
	base := RunLoad(mk(1))
	// 8 edge ports on the 4-pair dumbbell: the retained samples are
	// rows × ports.
	if len(base.QueueKB) == 0 || len(base.QueueKB) > capTicks*8 {
		t.Fatalf("capped run retained %d samples, want (0, %d]", len(base.QueueKB), capTicks*8)
	}
	uncapped := RunLoad(dumbbellScenario(1, false))
	if len(uncapped.QueueKB) <= len(base.QueueKB) {
		t.Fatalf("cap retained %d samples but uncapped has %d — cap never engaged",
			len(base.QueueKB), len(uncapped.QueueKB))
	}
	got := RunLoad(mk(2))
	if got.Shards != 2 {
		t.Fatalf("capped sharded run engaged %d shards, want 2", got.Shards)
	}
	compareRuns(t, "queue-cap-sharded", base, got)
}

// Bounded completed-flow retention must not change any aggregate.
func TestCompletedWindowAccounting(t *testing.T) {
	base := RunLoad(dumbbellScenario(1, false))
	s := dumbbellScenario(1, false)
	s.CompletedWindow = 4
	got := RunLoad(s)
	compareRuns(t, "completed-window", base, got)
	s.Shards = 2
	gotSharded := RunLoad(s)
	compareRuns(t, "completed-window-sharded", base, gotSharded)
}
