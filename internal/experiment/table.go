package experiment

import (
	"fmt"
	"io"
	"strings"

	"hpcc/internal/stats"
)

// Table is a printable result grid: one per reproduced figure panel.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
	// Dists carries the raw streaming distributions behind rendered
	// percentile cells. They are not printed (text output stays
	// byte-identical); campaign aggregation merges them across seeds so
	// multi-seed percentiles can come from the pooled distribution
	// rather than a mean of per-seed percentiles, and the JSON sink
	// reports them.
	Dists []Dist
}

// Dist is one named distribution attached to a table.
type Dist struct {
	Name   string
	Sketch *stats.Sketch
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a caption line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddDist attaches a named distribution sketch to the table.
func (t *Table) AddDist(name string, sk *stats.Sketch) {
	t.Dists = append(t.Dists, Dist{Name: name, Sketch: sk})
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Cols)
	line(underlines(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func underlines(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// sizeLabel renders a byte count the way the paper's x-axes do.
func sizeLabel(b int64) string {
	switch {
	case b >= 1_000_000:
		if b%1_000_000 == 0 {
			return fmt.Sprintf("%dM", b/1_000_000)
		}
		return fmt.Sprintf("%.1fM", float64(b)/1e6)
	case b >= 1_000:
		if b%1_000 == 0 {
			return fmt.Sprintf("%dK", b/1_000)
		}
		return fmt.Sprintf("%.1fK", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d", b)
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
