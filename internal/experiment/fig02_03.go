package experiment

import (
	"fmt"

	"hpcc/internal/cc/dcqcn"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

func init() {
	Register(Scenario{
		Name:  "fig2",
		Order: 20,
		Title: "DCQCN timer trade-off: FCT vs PFC pauses (WebSearch, PoD)",
		Run:   func(p Params) []*Table { return Fig02(p.scale()).Tables() },
	})
	Register(Scenario{
		Name:  "fig3",
		Order: 30,
		Title: "DCQCN ECN-threshold trade-off: bandwidth vs latency (WebSearch, PoD)",
		Run:   func(p Params) []*Table { return Fig03(p.scale()).Tables() },
	})
}

// Fig02Timers are the three (Ti, Td) settings of Figure 2: the DCQCN
// paper's original, a vendor default, and the authors' conservative
// tuning.
func Fig02Timers() []dcqcn.Config {
	return []dcqcn.Config{
		{RateIncTimer: 900 * sim.Microsecond, MinDecGap: 4 * sim.Microsecond},
		{RateIncTimer: 300 * sim.Microsecond, MinDecGap: 4 * sim.Microsecond},
		{RateIncTimer: 55 * sim.Microsecond, MinDecGap: 50 * sim.Microsecond},
	}
}

func timerLabel(c dcqcn.Config) string {
	return fmt.Sprintf("Ti=%d,Td=%d", int64(c.RateIncTimer/sim.Microsecond), int64(c.MinDecGap/sim.Microsecond))
}

// Fig02Result is the throughput-vs-stability motivation experiment
// (§2.3, Figure 2): DCQCN under WebSearch with three timer settings —
// (a) FCT slowdowns under plain load, (b) PFC pauses and tail latency
// once incast is added.
type Fig02Result struct {
	Labels  []string
	Buckets [][]stats.BucketRow // panel (a)
	Plain   []*LoadResult
	Incast  []*LoadResult // panel (b)
}

// Fig02 runs both panels at 30% WebSearch load on the testbed PoD.
func Fig02(sc Scale) *Fig02Result {
	sc.normalize(600)
	res := &Fig02Result{}
	for _, cfg := range Fig02Timers() {
		res.Labels = append(res.Labels, timerLabel(cfg))
		scheme := DCQCN(cfg)
		base := LoadScenario{
			Scheme:   scheme,
			Topo:     PodTopo(topology.PodSpec{}),
			Traffic:  []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.3}},
			MaxFlows: sc.MaxFlows,
			Until:    sc.Until,
			Drain:    sc.Drain,
			PFC:      true,
			Seed:     sc.Seed,
		}
		plain := mustRunLoad(base)
		res.Plain = append(res.Plain, plain)
		res.Buckets = append(res.Buckets, plain.FCT.Buckets(stats.WebSearchEdges()))

		withIncast := base
		withIncast.Traffic = append(withIncast.Traffic[:1:1],
			workload.IncastSpec{FanIn: 16, Size: 500_000, LoadFrac: 0.02})
		withIncast.BufferBytes = BufferFor(32)
		res.Incast = append(res.Incast, mustRunLoad(withIncast))
	}
	return res
}

// Tables renders Figure 2's two panels.
func (r *Fig02Result) Tables() []*Table {
	a := &Table{
		Title: "Figure 2a: 95th-pct FCT slowdown vs DCQCN timers (WebSearch 30%, PoD)",
		Cols:  append([]string{"size"}, r.Labels...),
	}
	nb := len(r.Buckets[0])
	for b := 0; b < nb; b++ {
		row := []string{sizeLabel(r.Buckets[0][b].Hi)}
		for vi := range r.Labels {
			row = append(row, f2(r.Buckets[vi][b].Stats.P95))
		}
		a.AddRow(row...)
	}
	b := &Table{
		Title: "Figure 2b: PFC pauses and latency with incast (WebSearch 30% + 16-to-1)",
		Cols:  []string{"timers", "pause-frac(%)", "p95-lat-short(us)", "q-p99(KB)"},
	}
	for vi, lab := range r.Labels {
		lr := r.Incast[vi]
		b.AddRow(lab, f2(lr.PauseFrac*100), f1(lr.ShortFlowP95Latency(30_000)), f1(lr.Queue.P99/1024))
	}
	b.AddNote("aggressive timers (small Ti, large Td) recover bandwidth faster (2a) but pause more under incast (2b)")
	return []*Table{a, b}
}

// Fig03Thresholds are the ECN (Kmin, Kmax) pairs of Figure 3, at the
// 25 Gbps reference rate.
func Fig03Thresholds() [][2]int64 {
	return [][2]int64{
		{400 << 10, 1600 << 10},
		{100 << 10, 400 << 10},
		{12 << 10, 50 << 10},
	}
}

// Fig03Result is the bandwidth-vs-latency motivation experiment (§2.3,
// Figure 3): DCQCN FCT slowdowns under three ECN threshold settings at
// 30% and 50% load.
type Fig03Result struct {
	Loads   []float64
	Labels  []string
	Buckets [][][]stats.BucketRow // [load][threshold][bucket]
	Results [][]*LoadResult
}

// Fig03 runs both loads across the three threshold settings.
func Fig03(sc Scale) *Fig03Result {
	sc.normalize(600)
	res := &Fig03Result{Loads: []float64{0.3, 0.5}}
	for _, th := range Fig03Thresholds() {
		res.Labels = append(res.Labels, fmt.Sprintf("Kmin=%dK,Kmax=%dK", th[0]>>10, th[1]>>10))
	}
	for _, load := range res.Loads {
		var rows [][]stats.BucketRow
		var lrs []*LoadResult
		for _, th := range Fig03Thresholds() {
			scheme := DCQCNWithECN(dcqcn.Config{}, th[0], th[1])
			r := mustRunLoad(LoadScenario{
				Scheme:   scheme,
				Topo:     PodTopo(topology.PodSpec{}),
				Traffic:  []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: load}},
				MaxFlows: sc.MaxFlows,
				Until:    sc.Until,
				Drain:    sc.Drain,
				PFC:      true,
				Seed:     sc.Seed,
			})
			rows = append(rows, r.FCT.Buckets(stats.WebSearchEdges()))
			lrs = append(lrs, r)
		}
		res.Buckets = append(res.Buckets, rows)
		res.Results = append(res.Results, lrs)
	}
	return res
}

// Tables renders Figure 3's two panels.
func (r *Fig03Result) Tables() []*Table {
	var out []*Table
	for li, load := range r.Loads {
		t := &Table{
			Title: fmt.Sprintf("Figure 3%c: 95th-pct FCT slowdown vs ECN thresholds (WebSearch %.0f%%, PoD)", 'a'+li, load*100),
			Cols:  append([]string{"size"}, r.Labels...),
		}
		nb := len(r.Buckets[li][0])
		for b := 0; b < nb; b++ {
			row := []string{sizeLabel(r.Buckets[li][0][b].Hi)}
			for vi := range r.Labels {
				row = append(row, f2(r.Buckets[li][vi][b].Stats.P95))
			}
			t.AddRow(row...)
		}
		for vi, lab := range r.Labels {
			t.AddNote("%s: queue p99 %.1f KB", lab, r.Results[li][vi].Queue.P99/1024)
		}
		out = append(out, t)
	}
	return out
}
