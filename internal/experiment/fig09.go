package experiment

import (
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
)

// fig9Rate is the testbed NIC speed (25 Gbps, §5.1).
const fig9Rate = 25 * sim.Gbps

func init() {
	Register(Scenario{
		Name:  "fig9-longshort",
		Order: 50,
		Title: "long-flow rate recovery around a 1MB short flow (25G)",
		Run:   func(p Params) []*Table { return []*Table{Fig09LongShort(nil, 0, p.Seed).Table()} },
	})
	Register(Scenario{
		Name:  "fig9-incast",
		Order: 51,
		Title: "7-to-1 incast joining a long flow: queue build-up and drain (25G)",
		Run:   func(p Params) []*Table { return []*Table{Fig09Incast(nil, 0, p.Seed).Table()} },
	})
	Register(Scenario{
		Name:  "fig9-mice",
		Order: 52,
		Title: "mice latency and queue size under two elephants (25G)",
		Run:   func(p Params) []*Table { return []*Table{Fig09Mice(nil, 0, p.Seed).Table()} },
	})
	Register(Scenario{
		Name:  "fig9-fairness",
		Order: 53,
		Title: "fair share under staggered join/leave (25G)",
		Run:   func(p Params) []*Table { return []*Table{Fig09Fairness(nil, 0, p.Seed).Table()} },
	})
}

// Fig09LongShortResult is Figure 9a/9b: a long flow's rate recovery
// after a 1 MB short flow comes and goes.
type Fig09LongShortResult struct {
	Variants []SeriesPair
	// ShortEnd is when the short flow finished (0 = never, within the
	// horizon); RecoverAfter is how long past that the long flow needed
	// to regain 90% of the achievable rate (-1 = never).
	ShortEnd     []sim.Time
	RecoverAfter []sim.Time
	// TailGbps is the long flow's goodput over the final quarter of
	// the run — the paper's claim distilled: HPCC is back at line
	// rate, DCQCN is not.
	TailGbps []float64
	Cap      float64
}

// Fig09LongShort runs the long-short scenario for the given schemes
// (the paper compares HPCC and DCQCN).
func Fig09LongShort(schemes []Scheme, dur sim.Time, seed int64) *Fig09LongShortResult {
	if len(schemes) == 0 {
		schemes = []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")}
	}
	if dur == 0 {
		dur = 3 * sim.Millisecond
	}
	res := &Fig09LongShortResult{}
	for _, scheme := range schemes {
		bin := 50 * sim.Microsecond
		m := buildStarMicro(scheme, 3, fig9Rate, seed, bin)
		m.flowAt(0, 0, 2, longFlowSize, 0, nil)
		var shortEnd sim.Time
		m.flowAt(dur/6, 1, 2, 1<<20, 1, func(f *host.Flow) { shortEnd = f.Finished() })
		mon := stats.NewQueueMonitor(m.eng, []*fabric.Port{m.portTo(2)}, fabric.PrioData, sim.Microsecond, dur)
		m.eng.RunUntil(dur)
		mon.Stop()

		long := m.tput.Series(0, dur)
		cap := m.goodputCap()
		recover := sim.Time(-1)
		if shortEnd > 0 {
			for _, tp := range long {
				if tp.T >= shortEnd && tp.V >= 0.9*cap {
					recover = tp.T + bin - shortEnd // bin end covers the rate
					break
				}
			}
		}
		res.Variants = append(res.Variants, SeriesPair{Scheme: scheme.Name, Throughput: long, Queue: mon.Series})
		res.ShortEnd = append(res.ShortEnd, shortEnd)
		res.RecoverAfter = append(res.RecoverAfter, recover)
		res.TailGbps = append(res.TailGbps, m.tput.Rate(0, dur*3/4, dur))
		res.Cap = cap
	}
	return res
}

// Table renders Figure 9a/9b.
func (r *Fig09LongShortResult) Table() *Table {
	t := &Table{
		Title: "Figure 9a/9b: long-flow rate recovery around a 1MB short flow (25G)",
		Cols:  []string{"time(us)"},
	}
	for _, v := range r.Variants {
		t.Cols = append(t.Cols, v.Scheme+"-long(Gbps)", v.Scheme+"-queue(KB)")
	}
	qPerBin := len(r.Variants[0].Queue) / len(r.Variants[0].Throughput)
	for i := range r.Variants[0].Throughput {
		row := []string{f1(r.Variants[0].Throughput[i].T.Microseconds())}
		for _, v := range r.Variants {
			qi := i * qPerBin
			if qi >= len(v.Queue) {
				qi = len(v.Queue) - 1
			}
			row = append(row, f1(v.Throughput[i].V), f1(v.Queue[qi].V/1024))
		}
		t.AddRow(row...)
	}
	for i, v := range r.Variants {
		if r.RecoverAfter[i] >= 0 {
			t.AddNote("%s: short flow ended at %v; long flow back to 90%% of %.1f Gbps after %v; tail rate %.1f Gbps",
				v.Scheme, r.ShortEnd[i], r.Cap, r.RecoverAfter[i], r.TailGbps[i])
		} else {
			t.AddNote("%s: never recovered to 90%% within the horizon (short flow done: %v); tail rate %.1f Gbps",
				v.Scheme, r.ShortEnd[i] > 0, r.TailGbps[i])
		}
	}
	return t
}

// Fig09IncastResult is Figure 9c/9d: queue build-up and drain when 7
// senders join the receiver of a long-running flow.
type Fig09IncastResult struct {
	Variants []SeriesPair
	// PeakKB and DrainTime: maximum queue and time from burst start
	// until the queue stays below 10% of peak (-1 = never drained).
	PeakKB    []float64
	DrainTime []sim.Time
}

// Fig09Incast runs the 7+1 incast of Figure 9c/9d.
func Fig09Incast(schemes []Scheme, dur sim.Time, seed int64) *Fig09IncastResult {
	if len(schemes) == 0 {
		schemes = []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")}
	}
	if dur == 0 {
		dur = 5 * sim.Millisecond
	}
	res := &Fig09IncastResult{}
	burstAt := dur / 5
	for _, scheme := range schemes {
		m := buildStarMicro(scheme, 9, fig9Rate, seed, 50*sim.Microsecond)
		m.flowAt(0, 0, 8, longFlowSize, 0, nil)
		for i := 1; i <= 7; i++ {
			m.flowAt(burstAt, i, 8, 500_000, i, nil)
		}
		mon := stats.NewQueueMonitor(m.eng, []*fabric.Port{m.portTo(8)}, fabric.PrioData, sim.Microsecond, dur)
		m.eng.RunUntil(dur)
		mon.Stop()

		peak := 0.0
		for _, tp := range mon.Series {
			if tp.V > peak {
				peak = tp.V
			}
		}
		drain := sim.Time(-1)
		// Find the last time the queue was above 10% of peak.
		for i := len(mon.Series) - 1; i >= 0; i-- {
			if mon.Series[i].V > peak/10 {
				drain = mon.Series[i].T - burstAt
				break
			}
		}
		long := m.tput.Series(0, dur)
		res.Variants = append(res.Variants, SeriesPair{Scheme: scheme.Name, Throughput: long, Queue: mon.Series})
		res.PeakKB = append(res.PeakKB, peak/1024)
		res.DrainTime = append(res.DrainTime, drain)
	}
	return res
}

// Table renders Figure 9c/9d.
func (r *Fig09IncastResult) Table() *Table {
	t := &Table{
		Title: "Figure 9c/9d: 7-to-1 incast joining a long flow (25G) — buffer at receiver port",
		Cols:  []string{"time(us)"},
	}
	for _, v := range r.Variants {
		t.Cols = append(t.Cols, v.Scheme+"(KB)")
	}
	for i := 0; i < len(r.Variants[0].Queue); i += 100 {
		row := []string{f1(r.Variants[0].Queue[i].T.Microseconds())}
		for _, v := range r.Variants {
			row = append(row, f1(v.Queue[i].V/1024))
		}
		t.AddRow(row...)
	}
	for i, v := range r.Variants {
		t.AddNote("%s: peak buffer %.1f KB, drained %.1fus after burst", v.Scheme, r.PeakKB[i], r.DrainTime[i].Microseconds())
	}
	return t
}

// Fig09MiceResult is Figure 9e/9f: mice-flow latency and queue CDFs
// while two elephants saturate the path.
type Fig09MiceResult struct {
	Schemes    []string
	LatencyUs  []stats.Summary // per scheme, mice FCT in µs
	QueueKB    []stats.Summary
	BaseRTTUs  float64
	MiceCounts []int
}

// Fig09Mice runs the elephant-mice scenario: hosts 0,1 send elephants
// to host 3; host 2 sends a 1 KB mouse every 100 µs.
func Fig09Mice(schemes []Scheme, dur sim.Time, seed int64) *Fig09MiceResult {
	if len(schemes) == 0 {
		schemes = []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")}
	}
	if dur == 0 {
		dur = 5 * sim.Millisecond
	}
	res := &Fig09MiceResult{}
	for _, scheme := range schemes {
		m := buildStarMicro(scheme, 4, fig9Rate, seed, 50*sim.Microsecond)
		m.flowAt(0, 0, 3, longFlowSize, 0, nil)
		m.flowAt(0, 1, 3, longFlowSize, 1, nil)

		var mice []float64
		gap := 100 * sim.Microsecond
		for at := gap; at < dur-gap; at += gap {
			m.flowAt(at, 2, 3, 1000, 2, func(f *host.Flow) {
				mice = append(mice, f.FCT().Microseconds())
			})
		}
		mon := stats.NewQueueMonitor(m.eng, []*fabric.Port{m.portTo(3)}, fabric.PrioData, sim.Microsecond, dur)
		m.eng.RunUntil(dur)
		mon.Stop()

		var q []float64
		for _, tp := range mon.Series {
			q = append(q, tp.V/1024)
		}
		res.Schemes = append(res.Schemes, scheme.Name)
		res.LatencyUs = append(res.LatencyUs, stats.Summarize(mice))
		res.QueueKB = append(res.QueueKB, stats.Summarize(q))
		res.MiceCounts = append(res.MiceCounts, len(mice))
		res.BaseRTTUs = m.baseRTT.Microseconds()
	}
	return res
}

// Table renders Figure 9e/9f.
func (r *Fig09MiceResult) Table() *Table {
	t := &Table{
		Title: "Figure 9e/9f: mice latency and queue size under two elephants (25G)",
		Cols:  []string{"scheme", "lat-p50(us)", "lat-p95(us)", "lat-p99(us)", "q-p50(KB)", "q-p95(KB)", "q-p99(KB)"},
	}
	for i, s := range r.Schemes {
		t.AddRow(s,
			f1(r.LatencyUs[i].P50), f1(r.LatencyUs[i].P95), f1(r.LatencyUs[i].P99),
			f1(r.QueueKB[i].P50), f1(r.QueueKB[i].P95), f1(r.QueueKB[i].P99))
	}
	t.AddNote("base RTT %.1f us; %d mice per scheme", r.BaseRTTUs, r.MiceCounts[0])
	return t
}

// Fig09FairnessResult is Figure 9g/9h: four flows joining (and leaving)
// one by one; per-epoch rates and Jain indices.
type Fig09FairnessResult struct {
	Schemes []string
	// Rates[s][e][f] is flow f's goodput in the last half of epoch e
	// under scheme s (flows enter one per epoch, then exit one per
	// epoch — 7 epochs for 4 flows).
	Rates [][][]float64
	Jain  [][]float64 // per scheme, per epoch (over active flows)
	Epoch sim.Time
}

// Fig09Fairness runs the staggered join/leave scenario. The paper's
// epochs are 1 s; the default here is 4 ms (scaled, noted in the
// output) so the whole suite stays CI-friendly.
func Fig09Fairness(schemes []Scheme, epoch sim.Time, seed int64) *Fig09FairnessResult {
	if len(schemes) == 0 {
		schemes = []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")}
	}
	if epoch == 0 {
		epoch = 4 * sim.Millisecond
	}
	const nFlows = 4
	nEpochs := 2*nFlows - 1
	res := &Fig09FairnessResult{Epoch: epoch}
	for _, scheme := range schemes {
		m := buildStarMicro(scheme, nFlows+1, fig9Rate, seed, epoch/8)
		flows := make([]*host.Flow, nFlows)
		for i := 0; i < nFlows; i++ {
			i := i
			at := sim.Time(i) * epoch
			start := func() {
				f := m.nw.StartFlow(i, nFlows, longFlowSize, nil)
				f.OnProgress = func(fl *host.Flow, n int64) { m.tput.Record(i, m.eng.Now(), n) }
				flows[i] = f
			}
			if at == 0 {
				start()
			} else {
				m.eng.After(at, start)
			}
			m.eng.After(sim.Time(nFlows+i)*epoch, func() {
				if flows[i] != nil {
					flows[i].Abort()
				}
			})
		}
		dur := sim.Time(nEpochs) * epoch
		m.eng.RunUntil(dur)

		rates := make([][]float64, nEpochs)
		jain := make([]float64, nEpochs)
		for e := 0; e < nEpochs; e++ {
			from := sim.Time(e)*epoch + epoch/2
			to := sim.Time(e+1) * epoch
			var active []float64
			rates[e] = make([]float64, nFlows)
			for fidx := 0; fidx < nFlows; fidx++ {
				r := m.tput.Rate(fidx, from, to)
				rates[e][fidx] = r
				// Flow f is active in epochs [f, nFlows+f).
				if e >= fidx && e < nFlows+fidx {
					active = append(active, r)
				}
			}
			jain[e] = stats.Jain(active)
		}
		res.Schemes = append(res.Schemes, scheme.Name)
		res.Rates = append(res.Rates, rates)
		res.Jain = append(res.Jain, jain)
	}
	return res
}

// Table renders Figure 9g/9h.
func (r *Fig09FairnessResult) Table() *Table {
	t := &Table{
		Title: "Figure 9g/9h: fair share under staggered join/leave (25G)",
		Cols:  []string{"scheme", "epoch", "active", "f1(Gbps)", "f2", "f3", "f4", "Jain"},
	}
	for s, name := range r.Schemes {
		for e := range r.Rates[s] {
			active := 0
			for fidx := 0; fidx < 4; fidx++ {
				if e >= fidx && e < 4+fidx {
					active++
				}
			}
			t.AddRow(name, f1(float64(e)),
				f1(float64(active)),
				f1(r.Rates[s][e][0]), f1(r.Rates[s][e][1]),
				f1(r.Rates[s][e][2]), f1(r.Rates[s][e][3]),
				f2(r.Jain[s][e]))
		}
	}
	t.AddNote("epochs scaled to %v (paper: 1s); rates measured over each epoch's second half", r.Epoch)
	return t
}
