package experiment

import (
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// Scale bounds a load experiment's cost. The paper drives its testbed
// and 320-server simulation for seconds; the defaults here are sized
// for CI, and cmd/hpccexp exposes flags to grow them toward paper
// scale.
type Scale struct {
	MaxFlows int
	Until    sim.Time
	Drain    sim.Time
	Seed     int64
}

func (s *Scale) normalize(flows int) {
	if s.MaxFlows == 0 {
		s.MaxFlows = flows
	}
	if s.Until == 0 {
		s.Until = 20 * sim.Millisecond
	}
	if s.Drain == 0 {
		s.Drain = 30 * sim.Millisecond
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

func init() {
	Register(Scenario{
		Name:  "fig10",
		Order: 60,
		Title: "HPCC vs DCQCN end-to-end: FCT and queues (WebSearch, PoD)",
		Run:   func(p Params) []*Table { return Fig10(p.scale()).Tables() },
	})
}

// Fig10Result is the testbed end-to-end comparison (Figure 10): FCT
// slowdown buckets and queue-length distributions for HPCC vs DCQCN on
// the PoD at 30% and 50% WebSearch load.
type Fig10Result struct {
	Loads   []float64
	Schemes []string
	// Buckets[l][s] are the slowdown rows for load l, scheme s.
	Buckets [][][]stats.BucketRow
	Results [][]*LoadResult
}

// Fig10 runs the four panels.
func Fig10(sc Scale) *Fig10Result {
	sc.normalize(800)
	res := &Fig10Result{Loads: []float64{0.3, 0.5}}
	schemes := []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
	}
	for _, load := range res.Loads {
		var rowSet [][]stats.BucketRow
		var lr []*LoadResult
		for _, scheme := range schemes {
			r := mustRunLoad(LoadScenario{
				Scheme:   scheme,
				Topo:     PodTopo(topology.PodSpec{}),
				Traffic:  []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: load}},
				MaxFlows: sc.MaxFlows,
				Until:    sc.Until,
				Drain:    sc.Drain,
				PFC:      true,
				Seed:     sc.Seed,
			})
			rowSet = append(rowSet, r.FCT.Buckets(stats.WebSearchEdges()))
			lr = append(lr, r)
		}
		res.Buckets = append(res.Buckets, rowSet)
		res.Results = append(res.Results, lr)
	}
	return res
}

// Tables renders Figure 10's four panels.
func (r *Fig10Result) Tables() []*Table {
	var out []*Table
	for li, load := range r.Loads {
		fct := &Table{
			Title: "Figure 10" + string(rune('a'+2*li)) + ": FCT slowdown, WebSearch " + f1(load*100) + "% load (testbed PoD)",
			Cols:  []string{"size"},
		}
		for _, s := range r.Schemes {
			fct.Cols = append(fct.Cols, s+"-p50", s+"-p95", s+"-p99")
		}
		nb := len(r.Buckets[li][0])
		for b := 0; b < nb; b++ {
			row := []string{sizeLabel(r.Buckets[li][0][b].Hi)}
			for si := range r.Schemes {
				st := r.Buckets[li][si][b].Stats
				row = append(row, f2(st.P50), f2(st.P95), f2(st.P99))
			}
			fct.AddRow(row...)
		}
		for si, s := range r.Schemes {
			lr := r.Results[li][si]
			fct.AddNote("%s: %d flows (%d censored), %d drops", s, lr.Started, lr.Censored, lr.Drops)
		}
		out = append(out, fct)

		q := &Table{
			Title: "Figure 10" + string(rune('b'+2*li)) + ": queue length, WebSearch " + f1(load*100) + "% load",
			Cols:  []string{"scheme", "p50(KB)", "p95(KB)", "p99(KB)", "max(KB)"},
		}
		for si, s := range r.Schemes {
			lr := r.Results[li][si]
			q.AddRow(s, f1(lr.Queue.P50/1024), f1(lr.Queue.P95/1024), f1(lr.Queue.P99/1024), f1(lr.Queue.Max/1024))
		}
		out = append(out, q)
	}
	return out
}
