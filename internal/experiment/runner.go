package experiment

import (
	"fmt"

	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// Topo selects and parameterizes a topology for a scenario.
type Topo struct {
	Kind string // "star", "pod", "fattree", "dumbbell", "parkinglot"

	// Star / dumbbell parameters; for "parkinglot", N is the segment
	// count of the multi-bottleneck chain.
	N        int
	HostRate sim.Rate
	Delay    sim.Time

	// Preset specs.
	Pod topology.PodSpec
	Fat topology.FatTreeSpec
}

// StarTopo is the §5.4 fixture: n hosts at 100 Gbps, 1 µs links.
func StarTopo(n int) Topo {
	return Topo{Kind: "star", N: n, HostRate: 100 * sim.Gbps, Delay: sim.Microsecond}
}

// PodTopo is the §5.2 testbed PoD.
func PodTopo(spec topology.PodSpec) Topo { return Topo{Kind: "pod", Pod: spec} }

// FatTreeTopo is the §5.3 simulation fabric.
func FatTreeTopo(spec topology.FatTreeSpec) Topo { return Topo{Kind: "fattree", Fat: spec} }

// ParkingLotTopo is the §3.2/Appendix-A multi-bottleneck chain:
// segments+1 switches in a line whose inter-switch links run at the
// host rate, so every segment a flow crosses is a potential bottleneck.
func ParkingLotTopo(segments int, rate sim.Rate) Topo {
	return Topo{Kind: "parkinglot", N: segments, HostRate: rate, Delay: sim.Microsecond}
}

// Build constructs the network.
func (t Topo) Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *topology.Network {
	switch t.Kind {
	case "star":
		return topology.Star(eng, t.N, t.HostRate, t.Delay, hcfg, scfg)
	case "dumbbell":
		return topology.Dumbbell(eng, t.N, t.HostRate, t.HostRate, t.Delay, hcfg, scfg)
	case "pod":
		return topology.Pod(eng, t.Pod, hcfg, scfg)
	case "fattree":
		return topology.FatTree(eng, t.Fat, hcfg, scfg)
	case "parkinglot":
		return topology.ParkingLot(eng, t.N, t.HostRate, t.HostRate, t.Delay, hcfg, scfg)
	default:
		panic(fmt.Sprintf("experiment: unknown topology %q", t.Kind))
	}
}

// Rate returns the host NIC speed (for load targets, ideal FCTs and
// ECN scaling).
func (t Topo) Rate() sim.Rate {
	switch t.Kind {
	case "pod":
		sp := t.Pod
		if sp.HostRate == 0 {
			return 25 * sim.Gbps
		}
		return sp.HostRate
	case "fattree":
		sp := t.Fat
		if sp.HostRate == 0 {
			return 100 * sim.Gbps
		}
		return sp.HostRate
	default:
		return t.HostRate
	}
}

// BaseRTT returns the network's base-RTT constant T, per §5.1: "slightly
// greater than the maximum RTT" — 9 µs for the testbed PoD, 13 µs for
// the FatTree, and 4×delay + margin for the micro fixtures.
func (t Topo) BaseRTT() sim.Time {
	switch t.Kind {
	case "pod":
		return 9 * sim.Microsecond
	case "fattree":
		return 13 * sim.Microsecond
	case "parkinglot":
		// The long flow crosses every inter-switch hop plus both host
		// links: 2·(segments+2) one-way link delays, with margin.
		return 2*sim.Time(t.N+2)*t.Delay + time500ns
	default:
		return 4*t.Delay + time500ns
	}
}

const time500ns = 500 * sim.Nanosecond

// Incast parameterizes the periodic fan-in events of §5.3.
type Incast struct {
	FanIn    int
	Size     int64
	LoadFrac float64
}

// LoadScenario is the common "background Poisson load (+ optional
// incast) on a topology" experiment shared by Figures 2, 3, 10, 11, 12.
type LoadScenario struct {
	Scheme Scheme
	Topo   Topo

	CDF      *workload.CDF
	Load     float64
	Incast   *Incast
	MaxFlows int      // cap on Poisson arrivals (bounds runtime)
	Until    sim.Time // arrival window end
	Drain    sim.Time // extra time for in-flight flows to finish

	FlowCtl host.FlowControl
	// PFC enables lossless mode; when false, switches drop with the
	// footnote-6 dynamic egress threshold (α = 1) and hosts recover.
	PFC bool

	QueueSample sim.Time // queue sampling period (default 10 µs)
	Seed        int64
	BufferBytes int64 // switch buffer (default 32 MB)
	// INTQuantize rounds every INT stamp through the Figure-7 wire
	// precision (ASIC emulation ablation).
	INTQuantize bool
}

func (s *LoadScenario) normalize() {
	if s.Until == 0 {
		s.Until = 5 * sim.Millisecond
	}
	if s.Drain == 0 {
		s.Drain = 20 * sim.Millisecond
	}
	if s.QueueSample == 0 {
		s.QueueSample = 10 * sim.Microsecond
	}
	if s.MaxFlows == 0 {
		s.MaxFlows = 1000
	}
}

// BufferFor scales the paper's 32 MB switch buffer with the fabric
// size so PFC dynamics survive scaled-down (CI) runs: the paper's
// 320-host FatTree keeps the full 32 MB; a 32-host run gets 3.2 MB,
// floored at 2 MB.
func BufferFor(hosts int) int64 {
	b := int64(32) << 20 * int64(hosts) / 320
	if b < 2<<20 {
		b = 2 << 20
	}
	if b > 32<<20 {
		b = 32 << 20
	}
	return b
}

// LoadResult carries everything the load-scenario figures report.
type LoadResult struct {
	Scheme  string
	FCT     stats.FCTSet
	Queue   stats.Summary // per-port queue-length samples, bytes
	QueueKB []float64     // raw samples in KB (for CDFs)

	PauseFrac float64 // fraction of (port × time) spent PFC-paused
	Drops     uint64
	Started   int // flows started
	Censored  int // flows still unfinished at the horizon
	Elapsed   sim.Time

	// DataPackets counts data packets emitted by every sender flow
	// (retransmissions included); PortPackets counts packets serialized
	// across every port in the fabric (hop count). Both feed the perf
	// harness (cmd/hpccbench).
	DataPackets uint64
	PortPackets uint64
}

// ShortFlowP95Latency returns the 95th-percentile FCT (µs) of flows no
// larger than limit bytes — the "95pct-latency" bars of Figures 2b/11.
func (r *LoadResult) ShortFlowP95Latency(limit int64) float64 {
	var lat []float64
	for _, rec := range r.FCT.Records {
		if rec.Size <= limit {
			lat = append(lat, rec.FCT.Microseconds())
		}
	}
	return stats.Percentile(lat, 95)
}

// RunLoad executes the scenario to its horizon and collects results.
func RunLoad(s LoadScenario) *LoadResult {
	s.normalize()
	eng := sim.NewEngine()

	scfg := fabric.SwitchConfig{
		BufferBytes: s.BufferBytes,
		PFCEnabled:  s.PFC,
		INTEnabled:  s.Scheme.INT,
		INTQuantize: s.INTQuantize,
		ECNEnabled:  s.Scheme.ECN,
		Seed:        s.Seed,
	}
	if !s.PFC {
		scfg.LossyEgressAlpha = 1 // paper footnote 6
	}
	rate := s.Topo.Rate()
	if s.Scheme.ECN {
		scfg.KMin = s.Scheme.Kmin(rate)
		scfg.KMax = s.Scheme.Kmax(rate)
	}
	hcfg := host.Config{
		CC:      s.Scheme.Factory,
		FlowCtl: s.FlowCtl,
		INT:     s.Scheme.INT,
		BaseRTT: s.Topo.BaseRTT(),
		Seed:    s.Seed,
	}
	nw := s.Topo.Build(eng, hcfg, scfg)

	res := &LoadResult{Scheme: s.Scheme.Name}
	onDone := func(f *host.Flow) {
		res.FCT.Add(stats.FCTRecord{
			Size:  f.Size(),
			FCT:   f.FCT(),
			Ideal: stats.IdealFCT(f.Size(), rate, s.Topo.BaseRTT(), packet.DefaultMTU, s.Scheme.INT),
		})
	}
	workload.StartPoisson(nw, workload.PoissonSpec{
		CDF:      s.CDF,
		Load:     s.Load,
		HostRate: rate,
		Until:    s.Until,
		MaxFlows: s.MaxFlows,
		OnDone:   onDone,
		Seed:     s.Seed,
	})
	if s.Incast != nil {
		workload.StartIncast(nw, workload.IncastSpec{
			FanIn:    s.Incast.FanIn,
			Size:     s.Incast.Size,
			LoadFrac: s.Incast.LoadFrac,
			HostRate: rate,
			Until:    s.Until,
			OnDone:   onDone,
			Seed:     s.Seed + 1,
		})
	}
	mon := stats.NewQueueMonitor(eng, nw.EdgePorts(), fabric.PrioData, s.QueueSample, s.Until)

	eng.RunUntil(s.Until + s.Drain)
	mon.Stop()

	res.Queue = stats.Summarize(mon.Samples)
	res.QueueKB = make([]float64, len(mon.Samples))
	for i, v := range mon.Samples {
		res.QueueKB[i] = v / 1024
	}
	res.PauseFrac = stats.PFCPauseFraction(nw.Switches, fabric.PrioData, s.Until+s.Drain)
	res.Drops = nw.TotalDrops()
	res.Elapsed = eng.Now()
	for _, h := range nw.Hosts {
		for _, f := range h.Flows() {
			res.Started++
			res.DataPackets += f.PacketsSent()
			if !f.Done() {
				res.Censored++
			}
		}
		for _, p := range h.Ports() {
			res.PortPackets += p.PacketsSent()
		}
	}
	for _, p := range nw.SwitchPorts() {
		res.PortPackets += p.PacketsSent()
	}
	return res
}
