package experiment

import (
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// Topo is a buildable topology spec. Every fabric a scenario can run
// on — paper presets and user-composed graphs — is a topology.Spec
// value, so there is exactly one build path and no per-kind switch.
type Topo = topology.Spec

// StarTopo is the §5.4 fixture: n hosts at 100 Gbps, 1 µs links.
func StarTopo(n int) Topo {
	return topology.StarSpec{N: n, HostRate: 100 * sim.Gbps, Delay: sim.Microsecond}
}

// PodTopo is the §5.2 testbed PoD.
func PodTopo(spec topology.PodSpec) Topo { return spec }

// FatTreeTopo is the §5.3 simulation fabric.
func FatTreeTopo(spec topology.FatTreeSpec) Topo { return spec }

// ParkingLotTopo is the §3.2/Appendix-A multi-bottleneck chain:
// segments+1 switches in a line whose inter-switch links run at the
// host rate, so every segment a flow crosses is a potential bottleneck.
func ParkingLotTopo(segments int, rate sim.Rate) Topo {
	return topology.ParkingLotSpec{Segments: segments, HostRate: rate, Delay: sim.Microsecond}
}

// FlowEvent is one completed transfer, as streamed to Obs.OnFlow: the
// endpoint host indices, the start time, and the FCT record added to
// the result set. For RDMA READs (Read true), Src is the responder
// (the data source) and Dst the requester.
type FlowEvent struct {
	Src, Dst int
	Read     bool
	Started  sim.Time
	Rec      stats.FCTRecord
}

// Obs carries the optional observer callbacks a scenario attaches to a
// run: per-flow FCT records, periodic queue samples, PFC pause
// transitions, and — in sketch-stats mode — closed interval windows of
// queue statistics. The public API's Observer values, cmd/hpccbench and
// Network.TraceQueues all ride these hooks.
type Obs struct {
	OnFlow  func(FlowEvent)
	OnQueue func(stats.TimePoint)
	OnPFC   func(stats.PFCEvent)
	// OnQueueFlush receives one summary per closed queue window
	// (LoadScenario.FlushEvery ticks each). Window summaries come from
	// an interval sketch in either retention mode, so attaching a flush
	// consumer never changes the run's result statistics.
	OnQueueFlush func(stats.QueueFlush)
}

// LoadScenario is the common "composable traffic on a topology"
// experiment shared by Figures 2, 3, 10, 11, 12 and the public
// Experiment API: a scheme, a topology spec, and any number of traffic
// generators installed on the same fabric.
type LoadScenario struct {
	Scheme Scheme
	Topo   Topo

	// Traffic generators are installed in order; generator i draws its
	// randomness from Seed+i, so a scenario's output is independent of
	// everything but the specs themselves.
	Traffic []workload.Generator

	MaxFlows int      // default per-generator cap on arrivals (bounds runtime)
	Until    sim.Time // arrival window end
	Drain    sim.Time // extra time for in-flight flows to finish

	FlowCtl host.FlowControl
	// PFC enables lossless mode; when false, switches drop with the
	// footnote-6 dynamic egress threshold (α = 1) and hosts recover.
	PFC bool

	QueueSample sim.Time // queue sampling period (default 10 µs)
	// QueueSampleCap, when positive, bounds the retained queue-sample
	// instants per monitor (adaptive stride thinning; see
	// stats.QueueMonitor.SampleCap), so multi-second campaigns hold
	// bounded QueueKB slices instead of growing with the horizon.
	QueueSampleCap int
	Seed           int64
	BufferBytes    int64 // switch buffer (default 32 MB)
	// INTQuantize rounds every INT stamp through the Figure-7 wire
	// precision (ASIC emulation ablation).
	INTQuantize bool

	// Shards > 1 requests sharded execution: the fabric is partitioned
	// into per-cluster engines synchronized by conservative lookahead,
	// using up to Shards cores for one scenario. Best-effort: when the
	// topology does not partition, the traffic is closed-loop (AllToAll,
	// RPC), or observers are attached, the run falls back to one engine
	// (LoadResult.Shards reports the actual count). Sharded runs are
	// deterministic and replay the single-engine run byte-for-byte —
	// simultaneous deliveries included, via the canonical
	// (time, key, seq) event rank (see hpcc.Experiment.Shards).
	Shards int
	// Calendar selects the calendar-queue event scheduler instead of the
	// default 4-ary heap — same fire order (so identical results),
	// better constants with >100K pending events.
	Calendar bool
	// Speculate requests optimistic shard synchronization on sharded
	// runs: every shard checkpoints at the epoch barrier, runs past the
	// conservative horizon, and rolls back + replays conservatively when
	// a cross-shard arrival lands inside the speculated span — so the
	// result stays byte-identical to the serial run. Best-effort, like
	// Shards itself: fabrics whose switches mark ECN with an RNG, and
	// schemes whose CC state cannot checkpoint itself, run with plain
	// conservative barriers (LoadResult.Speculated reports what engaged).
	Speculate bool
	// SpecWindow caps the speculative horizon in lookahead epochs beyond
	// the conservative one (0 means the sim-layer default, 8).
	SpecWindow int
	// CompletedWindow, when positive, bounds per-host memory on long
	// runs: each host retains at most this many completed flows, evicting
	// the oldest into aggregate counters.
	CompletedWindow int

	// SketchStats switches result statistics to streaming mode: FCT
	// records and queue samples are not retained; every observation
	// streams into mergeable quantile sketches instead (per-size-bucket
	// slowdowns, short-flow latency, per-port queue depth), so retained
	// stat memory is O(sketch buckets) regardless of flow count or
	// horizon. Quantiles come out within StatsAccuracy of the exact
	// percentiles; LoadResult.QueueKB and FCT.Records stay empty. The
	// default (false) retains everything, exactly as before — goldens
	// are byte-identical.
	SketchStats bool
	// StatsAccuracy is the sketches' relative accuracy (<= 0 means the
	// 1% default, stats.DefaultRelativeAccuracy).
	StatsAccuracy float64
	// FCTBucketEdges are the flow-size bucket edges the streaming FCT
	// sketches are keyed by (nil means stats.WebSearchEdges). Streaming
	// results can only be bucketed by these edges.
	FCTBucketEdges []int64
	// FlushEvery, with SketchStats and Obs.OnQueueFlush, closes a queue
	// window every FlushEvery sampling ticks and reports its summary —
	// the live-progress feed of the streaming observer.
	FlushEvery int

	// Obs streams per-flow, queue and PFC events to observers.
	Obs Obs
}

// newEngine builds an engine with the scenario's scheduler choice.
func (s *LoadScenario) newEngine() *sim.Engine {
	if s.Calendar {
		return sim.NewEngineWith(sim.NewCalendar())
	}
	return sim.NewEngine()
}

func (s *LoadScenario) normalize() {
	if s.Until == 0 {
		s.Until = 5 * sim.Millisecond
	}
	if s.Drain == 0 {
		s.Drain = 20 * sim.Millisecond
	}
	if s.QueueSample == 0 {
		s.QueueSample = 10 * sim.Microsecond
	}
	if s.MaxFlows == 0 {
		s.MaxFlows = 1000
	}
	if s.FlushEvery == 0 {
		s.FlushEvery = 100 // one window per ms at the default 10 µs tick
	}
}

// BufferFor scales the paper's 32 MB switch buffer with the fabric
// size so PFC dynamics survive scaled-down (CI) runs: the paper's
// 320-host FatTree keeps the full 32 MB; a 32-host run gets 3.2 MB,
// floored at 2 MB.
func BufferFor(hosts int) int64 {
	b := int64(32) << 20 * int64(hosts) / 320
	if b < 2<<20 {
		b = 2 << 20
	}
	if b > 32<<20 {
		b = 32 << 20
	}
	return b
}

// LoadResult carries everything the load-scenario figures report.
type LoadResult struct {
	Scheme  string
	FCT     stats.FCTSet
	Queue   stats.Summary // per-port queue-length samples, bytes
	QueueKB []float64     // raw samples in KB (for CDFs)

	PauseFrac float64 // fraction of (port × time) spent PFC-paused
	Drops     uint64
	Started   int // flows started
	Censored  int // flows still unfinished at the horizon
	Elapsed   sim.Time
	// Shards is how many engines actually executed the run (1 unless
	// sharded execution was requested and engaged).
	Shards int
	// Speculated reports whether optimistic shard synchronization was
	// engaged; Sync counts its epochs, commits and rollbacks and the
	// fraction of wall time spent synchronizing.
	Speculated bool
	Sync       sim.SyncStats

	// DataPackets counts data packets emitted by every sender flow
	// (retransmissions included); PortPackets counts packets serialized
	// across every port in the fabric (hop count). Both feed the perf
	// harness (cmd/hpccbench).
	DataPackets uint64
	PortPackets uint64

	// RetainedStatBytes is the run's logical retained-statistics
	// footprint: FCT retention plus pooled queue samples (sketch buckets
	// in streaming mode). Deterministic and identical across shard
	// counts — the memory-regression gate compares it between runs.
	RetainedStatBytes int64
}

// ShortFlowP95Latency returns the 95th-percentile FCT (µs) of flows no
// larger than limit bytes — the "95pct-latency" bars of Figures 2b/11.
// Streaming runs track the fixed stats.ShortFlowLimit class, whatever
// limit is passed.
func (r *LoadResult) ShortFlowP95Latency(limit int64) float64 {
	if r.FCT.Streaming() {
		return r.FCT.ShortLatencyQuantile(95)
	}
	var lat []float64
	for _, rec := range r.FCT.Records {
		if rec.Size <= limit {
			lat = append(lat, rec.FCT.Microseconds())
		}
	}
	return stats.Percentile(lat, 95)
}

// build constructs the scenario's fabric on eng.
func (s *LoadScenario) build(eng *sim.Engine) *topology.Network {
	scfg := fabric.SwitchConfig{
		BufferBytes: s.BufferBytes,
		PFCEnabled:  s.PFC,
		INTEnabled:  s.Scheme.INT,
		INTQuantize: s.INTQuantize,
		ECNEnabled:  s.Scheme.ECN,
		Seed:        s.Seed,
	}
	if !s.PFC {
		scfg.LossyEgressAlpha = 1 // paper footnote 6
	}
	if s.Scheme.ECN {
		rate := s.Topo.Rate()
		scfg.KMin = s.Scheme.Kmin(rate)
		scfg.KMax = s.Scheme.Kmax(rate)
	}
	hcfg := host.Config{
		CC:              s.Scheme.Factory,
		FlowCtl:         s.FlowCtl,
		INT:             s.Scheme.INT,
		BaseRTT:         s.Topo.BaseRTT(),
		Seed:            s.Seed,
		CompletedWindow: s.CompletedWindow,
	}
	return s.Topo.Build(eng, hcfg, scfg)
}

// installTraffic installs the scenario's generators and PFC watch on a
// built fabric. Every completion becomes one FCTRecord — appended to
// fct when non-nil (RunLoad's aggregate) and streamed to Obs.OnFlow —
// so the aggregate and the observer stream can never disagree.
func (s *LoadScenario) installTraffic(eng *sim.Engine, nw *topology.Network, fct *stats.FCTSet) {
	rate := s.Topo.Rate()
	baseRTT := s.Topo.BaseRTT()
	emit := func(ev FlowEvent) {
		if fct != nil {
			fct.Add(ev.Rec)
		}
		if s.Obs.OnFlow != nil {
			s.Obs.OnFlow(ev)
		}
	}
	onDone := func(f *host.Flow) {
		emit(FlowEvent{
			Src:     nw.HostIndex(f.Host().ID()),
			Dst:     nw.HostIndex(f.Dst()),
			Started: f.Started(),
			Rec: stats.FCTRecord{
				Size:  f.Size(),
				FCT:   f.FCT(),
				Ideal: stats.IdealFCT(f.Size(), rate, baseRTT, packet.DefaultMTU, s.Scheme.INT),
			},
		})
	}
	onRead := func(req, resp int, size int64, elapsed sim.Time) {
		// A READ's response crosses the fabric like a flow, but the
		// clock starts at the request, so the ideal adds the request's
		// one-way trip.
		emit(FlowEvent{
			Src:     resp,
			Dst:     req,
			Read:    true,
			Started: eng.Now() - elapsed,
			Rec: stats.FCTRecord{
				Size:  size,
				FCT:   elapsed,
				Ideal: stats.IdealFCT(size, rate, baseRTT, packet.DefaultMTU, s.Scheme.INT) + baseRTT/2,
			},
		})
	}
	env := workload.Env{
		HostRate: rate,
		Until:    s.Until,
		MaxFlows: s.MaxFlows,
		OnDone:   onDone,
		OnRead:   onRead,
	}
	for i, g := range s.Traffic {
		env.Seed = s.Seed + int64(i)
		env.Key = sim.ArrivalKey(i)
		g.Install(nw, env)
	}
	if s.Obs.OnPFC != nil {
		stats.WatchPFC(eng, nw.Switches, s.Obs.OnPFC)
	}
}

// RunLoad executes the scenario to its horizon and collects results.
// With Shards > 1 it partitions the fabric across per-cluster engines
// (falling back to one engine when the scenario cannot shard); results
// are byte-identical either way. The error is non-nil only when a
// sharded run dies mid-flight (a shard goroutine panicked, or the
// speculation machinery detected a broken invariant) — scenario specs
// that merely cannot shard fall back, they do not error.
func RunLoad(s LoadScenario) (*LoadResult, error) {
	s.normalize()
	if s.Shards > 1 {
		res, ok, err := runLoadSharded(s)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	eng := s.newEngine()
	nw := s.build(eng)

	res := &LoadResult{Scheme: s.Scheme.Name, Shards: 1}
	if s.SketchStats {
		res.FCT = stats.NewStreamingFCT(s.FCTBucketEdges, s.StatsAccuracy)
	}
	s.installTraffic(eng, nw, &res.FCT)
	mon := stats.NewQueueMonitor(eng, nw.EdgePorts(), fabric.PrioData, s.QueueSample, s.Until)
	mon.OnSample = s.Obs.OnQueue
	mon.SampleCap = s.QueueSampleCap
	if s.SketchStats {
		mon.EnableSketch(s.StatsAccuracy)
	}
	if s.Obs.OnQueueFlush != nil {
		mon.FlushEvery = s.FlushEvery
		mon.OnFlush = s.Obs.OnQueueFlush
	}

	eng.RunUntil(s.Until + s.Drain)
	mon.Stop()

	if s.SketchStats {
		res.Queue = mon.Summary()
	} else {
		res.Queue = stats.Summarize(mon.Samples)
		res.QueueKB = make([]float64, len(mon.Samples))
		for i, v := range mon.Samples {
			res.QueueKB[i] = v / 1024
		}
	}
	res.RetainedStatBytes = res.FCT.RetainedBytes() + mon.RetainedBytes()
	collectFabric(res, nw, s.Until+s.Drain)
	res.Elapsed = eng.Now()
	return res, nil
}

// mustRunLoad is RunLoad for the figure and sweep drivers, whose
// scenarios are program constants: a run error there is a programming
// error, not an input error, so it panics rather than threading error
// returns through every figure. User-supplied specs (the public
// Experiment surface, cmd flags) go through RunLoad and get the error.
func mustRunLoad(s LoadScenario) *LoadResult {
	res, err := RunLoad(s)
	if err != nil {
		panic("experiment: " + err.Error())
	}
	return res
}

// collectFabric gathers the post-run counters shared by the single and
// sharded paths: PFC pause, drops, per-flow and per-port packet counts
// (including flows already evicted into host aggregate counters).
func collectFabric(res *LoadResult, nw *topology.Network, elapsed sim.Time) {
	res.PauseFrac = stats.PFCPauseFraction(nw.Switches, fabric.PrioData, elapsed)
	res.Drops = nw.TotalDrops()
	for _, h := range nw.Hosts {
		evicted, pkts := h.EvictedFlows()
		res.Started += evicted
		res.DataPackets += pkts
		for _, f := range h.Flows() {
			res.Started++
			res.DataPackets += f.PacketsSent()
			if !f.Done() {
				res.Censored++
			}
		}
		for _, p := range h.Ports() {
			res.PortPackets += p.PacketsSent()
		}
	}
	for _, p := range nw.SwitchPorts() {
		res.PortPackets += p.PacketsSent()
	}
}

// ManualNet is a built-but-not-run scenario: the fabric with traffic
// generators and observers installed, for callers that drive virtual
// time themselves (the public Network surface).
type ManualNet struct {
	Network *topology.Network
	Obs     Obs
	Until   sim.Time
}

// StartManual builds the scenario's fabric on eng, installs its
// traffic and observers, and hands control back without running.
// Completed generator flows (and READs) stream to Obs.OnFlow; no
// aggregate result is collected.
func StartManual(eng *sim.Engine, s LoadScenario) *ManualNet {
	s.normalize()
	nw := s.build(eng)
	s.installTraffic(eng, nw, nil)
	if s.Obs.OnQueue != nil || s.Obs.OnQueueFlush != nil {
		mon := stats.NewQueueMonitor(eng, nw.EdgePorts(), fabric.PrioData, s.QueueSample, s.Until)
		mon.OnSample = s.Obs.OnQueue
		mon.SampleCap = s.QueueSampleCap
		if s.SketchStats {
			mon.EnableSketch(s.StatsAccuracy)
		}
		if s.Obs.OnQueueFlush != nil {
			mon.FlushEvery = s.FlushEvery
			mon.OnFlush = s.Obs.OnQueueFlush
		}
	}
	return &ManualNet{Network: nw, Obs: s.Obs, Until: s.Until}
}
