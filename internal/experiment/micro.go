package experiment

import (
	"math"

	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
)

// longFlowSize is "effectively infinite" for long-running flows.
const longFlowSize = int64(1) << 40

// microNet is the shared fixture of the micro-benchmarks (§5.4 and
// Figure 9): a star of hosts around one switch, with throughput and
// queue instrumentation.
type microNet struct {
	eng     *sim.Engine
	nw      *topology.Network
	rate    sim.Rate
	baseRTT sim.Time
	tput    *stats.Throughput
	scheme  Scheme
}

// buildStarMicro wires n hosts at rate around one switch with PFC on
// (the testbed is lossless) and the scheme's INT/ECN needs.
func buildStarMicro(scheme Scheme, n int, rate sim.Rate, seed int64, tputBin sim.Time) *microNet {
	eng := sim.NewEngine()
	topo := topology.StarSpec{N: n, HostRate: rate, Delay: sim.Microsecond}
	scfg := fabric.SwitchConfig{
		PFCEnabled: true,
		INTEnabled: scheme.INT,
		ECNEnabled: scheme.ECN,
		Seed:       seed,
	}
	if scheme.ECN {
		scfg.KMin = scheme.Kmin(rate)
		scfg.KMax = scheme.Kmax(rate)
	}
	hcfg := host.Config{
		CC:      scheme.Factory,
		INT:     scheme.INT,
		BaseRTT: topo.BaseRTT(),
		Seed:    seed,
	}
	return &microNet{
		eng:     eng,
		nw:      topo.Build(eng, hcfg, scfg),
		rate:    rate,
		baseRTT: topo.BaseRTT(),
		tput:    stats.NewThroughput(tputBin),
		scheme:  scheme,
	}
}

// flowAt schedules a flow of size bytes from src to dst at time at,
// tagging its goodput into the throughput tracker.
func (m *microNet) flowAt(at sim.Time, src, dst int, size int64, tag int, onDone func(*host.Flow)) {
	start := func() {
		f := m.nw.StartFlow(src, dst, size, onDone)
		f.OnProgress = func(fl *host.Flow, n int64) {
			m.tput.Record(tag, m.eng.Now(), n)
		}
	}
	if at == 0 {
		start()
	} else {
		m.eng.After(at, start)
	}
}

// portTo returns the switch egress port facing host hostIdx — where
// the interesting queue forms in a many-to-one pattern.
func (m *microNet) portTo(hostIdx int) *fabric.Port {
	want := m.nw.Hosts[hostIdx].ID()
	for _, p := range m.nw.SwitchPorts() {
		if p.Peer().ID() == want {
			return p
		}
	}
	panic("experiment: no switch port to host")
}

// goodputCap returns the achievable goodput in Gbps after header (and
// INT) overhead — the ceiling of the throughput plots.
func (m *microNet) goodputCap() float64 {
	overhead := packet.HeaderBytes
	if m.scheme.INT {
		overhead += packet.INTOverhead
	}
	frac := float64(packet.DefaultMTU) / float64(packet.DefaultMTU+overhead)
	return float64(m.rate) / 1e9 * frac
}

// SeriesPair couples a throughput series with a queue series.
type SeriesPair struct {
	Scheme     string
	Throughput []stats.TimePoint // Gbps
	Queue      []stats.TimePoint // bytes (total across monitored ports)
}

func init() {
	Register(Scenario{
		Name:  "fig6",
		Order: 40,
		Title: "txRate vs rxRate congestion signal (2-to-1, 100G)",
		Run:   func(p Params) []*Table { return []*Table{Fig06(0, p.Seed).Table()} },
	})
}

// Fig06Result compares txRate- vs rxRate-based HPCC (Figure 6).
type Fig06Result struct {
	Variants []SeriesPair
	// PeakKB is the initial line-rate-start overshoot (identical for
	// both). RebuildKB is the largest queue after the first full drain:
	// the oscillation Figure 6 shows for rxRate, near zero for txRate.
	PeakKB, RebuildKB []float64
}

// Fig06 runs the 2-to-1 congestion scenario of §3.4 for HPCC and
// HPCC-rxRate and reports the bottleneck queue over time.
func Fig06(dur sim.Time, seed int64) *Fig06Result {
	if dur == 0 {
		dur = 400 * sim.Microsecond
	}
	res := &Fig06Result{}
	for _, scheme := range []Scheme{ByNameMust("hpcc"), ByNameMust("hpcc-rxrate")} {
		m := buildStarMicro(scheme, 3, 100*sim.Gbps, seed, 10*sim.Microsecond)
		m.flowAt(0, 0, 2, longFlowSize, 0, nil)
		m.flowAt(0, 1, 2, longFlowSize, 1, nil)
		mon := stats.NewQueueMonitor(m.eng, []*fabric.Port{m.portTo(2)}, fabric.PrioData, sim.Microsecond, dur)
		m.eng.RunUntil(dur)
		mon.Stop()

		peak, rebuild := 0.0, 0.0
		drained := false
		for _, tp := range mon.Series {
			if !drained {
				if tp.V > peak {
					peak = tp.V
				}
				if peak > 0 && tp.V == 0 {
					drained = true
				}
			} else if tp.V > rebuild {
				rebuild = tp.V
			}
		}
		res.Variants = append(res.Variants, SeriesPair{Scheme: scheme.Name, Queue: mon.Series})
		res.PeakKB = append(res.PeakKB, peak/1024)
		res.RebuildKB = append(res.RebuildKB, rebuild/1024)
	}
	return res
}

// Table renders Figure 6 as queue-over-time columns (dense during the
// transient, sparse after).
func (r *Fig06Result) Table() *Table {
	t := &Table{
		Title: "Figure 6: txRate vs rxRate congestion signal (2-to-1, 100G) — queue length",
		Cols:  []string{"time(us)"},
	}
	for _, v := range r.Variants {
		t.Cols = append(t.Cols, v.Scheme+"(KB)")
	}
	n := len(r.Variants[0].Queue)
	for i := 0; i < n; {
		row := []string{f1(r.Variants[0].Queue[i].T.Microseconds())}
		for _, v := range r.Variants {
			row = append(row, f1(v.Queue[i].V/1024))
		}
		t.AddRow(row...)
		if i < 60 {
			i += 3
		} else {
			i += 30
		}
	}
	for i, v := range r.Variants {
		t.AddNote("%s: line-rate-start peak %.1f KB; queue rebuild after first drain %.1f KB",
			v.Scheme, r.PeakKB[i], r.RebuildKB[i])
	}
	return t
}

// ByNameMust resolves a scheme or panics (experiment-internal tables).
func ByNameMust(name string) Scheme {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

func stdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, v := range xs {
		d := v - mean
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)))
}
