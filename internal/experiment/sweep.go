package experiment

import (
	"fmt"

	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// The "extra" family holds scenarios beyond the paper's figures,
// registered through the same interface as every reproduction job.
func init() {
	Register(Scenario{
		Name:  "extra-fbsweep",
		Order: 130,
		Title: "FB_Hadoop load sweep 30/50/70% on the FatTree (HPCC vs DCQCN)",
		Run:   func(p Params) []*Table { return SweepFBHadoop(p.Fat, p.scale()).Tables() },
	})
	Register(Scenario{
		Name:  "extra-parkinglot",
		Order: 131,
		Title: "six-scheme comparison on an oversubscribed parking-lot chain",
		Run:   func(p Params) []*Table { return ParkingLotCompare(p.scale()).Tables() },
	})
}

// SweepResult is the FB_Hadoop load sweep: the Figure-11 workload
// pushed through increasing offered load to map where each scheme's
// tails blow up — the scenario-diversity axis PCC-style evaluations
// argue for.
type SweepResult struct {
	Loads   []float64
	Schemes []string
	Results [][]*LoadResult // [load][scheme]
}

// SweepFBHadoop runs FB_Hadoop at 30/50/70% load on the FatTree for
// HPCC and DCQCN.
func SweepFBHadoop(spec topology.FatTreeSpec, sc Scale) *SweepResult {
	sc.normalize(400)
	if spec.Cores == 0 {
		spec = topology.ScaledFatTree()
	}
	res := &SweepResult{Loads: []float64{0.3, 0.5, 0.7}}
	schemes := []Scheme{ByNameMust("hpcc"), ByNameMust("dcqcn")}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
	}
	for _, load := range res.Loads {
		var lrs []*LoadResult
		for _, scheme := range schemes {
			lrs = append(lrs, mustRunLoad(LoadScenario{
				Scheme:      scheme,
				Topo:        FatTreeTopo(spec),
				Traffic:     []workload.Generator{workload.PoissonSpec{CDF: workload.FBHadoop(), Load: load}},
				MaxFlows:    sc.MaxFlows,
				Until:       sc.Until,
				Drain:       sc.Drain,
				PFC:         true,
				Seed:        sc.Seed,
				BufferBytes: BufferFor(spec.NumHosts()),
			}))
		}
		res.Results = append(res.Results, lrs)
	}
	return res
}

// Tables renders the sweep: one row per load × scheme.
func (r *SweepResult) Tables() []*Table {
	t := &Table{
		Title: "Extra: FB_Hadoop load sweep on the FatTree",
		Cols:  []string{"load(%)", "scheme", "sd-p50", "sd-p95", "sd-p99", "p95-lat-short(us)", "q-p99(KB)", "pause-frac(%)", "censored"},
	}
	for li, load := range r.Loads {
		for si, s := range r.Schemes {
			lr := r.Results[li][si]
			sl := lr.FCT.Slowdowns()
			t.AddRow(
				fmt.Sprintf("%.0f", load*100), s,
				f2(stats.Percentile(sl, 50)), f2(stats.Percentile(sl, 95)), f2(stats.Percentile(sl, 99)),
				f1(lr.ShortFlowP95Latency(7_000)),
				f1(lr.Queue.P99/1024),
				f2(lr.PauseFrac*100),
				fmt.Sprintf("%d", lr.Censored))
			t.AddDist(fmt.Sprintf("slowdown %s @%.0f%%", s, load*100), lr.FCT.SlowdownSketch(0))
		}
	}
	t.AddNote("same FB_Hadoop + FatTree fixture as Figure 11, swept past the paper's 50%% operating point")
	return []*Table{t}
}

// ParkingLotResult is the six-scheme comparison of Figure 11 moved onto
// the oversubscribed parking-lot chain: inter-switch links run at the
// host rate, so background flows contend on every segment they cross
// instead of inside a non-blocking fabric.
type ParkingLotResult struct {
	Segments int
	Schemes  []string
	Buckets  [][]stats.BucketRow
	Results  []*LoadResult
}

// ParkingLotCompare runs FB_Hadoop at 50% load over a 4-segment
// parking lot for the six Figure-11 schemes.
func ParkingLotCompare(sc Scale) *ParkingLotResult {
	sc.normalize(400)
	const segments = 4
	res := &ParkingLotResult{Segments: segments}
	for _, scheme := range Fig11Schemes() {
		res.Schemes = append(res.Schemes, scheme.Name)
		r := mustRunLoad(LoadScenario{
			Scheme:   scheme,
			Topo:     ParkingLotTopo(segments, 100*sim.Gbps),
			Traffic:  []workload.Generator{workload.PoissonSpec{CDF: workload.FBHadoop(), Load: 0.5}},
			MaxFlows: sc.MaxFlows,
			Until:    sc.Until,
			Drain:    sc.Drain,
			PFC:      true,
			Seed:     sc.Seed,
		})
		res.Buckets = append(res.Buckets, r.FCT.Buckets(stats.FBHadoopEdges()))
		res.Results = append(res.Results, r)
	}
	return res
}

// Tables renders the parking-lot comparison: the Figure-11 FCT panel
// plus the pause/queue summary.
func (r *ParkingLotResult) Tables() []*Table {
	fct := &Table{
		Title: fmt.Sprintf("Extra: 95th-pct FCT slowdown, FB_Hadoop 50%% (parking lot, %d segments)", r.Segments),
		Cols:  []string{"size"},
	}
	fct.Cols = append(fct.Cols, r.Schemes...)
	for b := range r.Buckets[0] {
		row := []string{sizeLabel(r.Buckets[0][b].Hi)}
		for si := range r.Schemes {
			row = append(row, f2(r.Buckets[si][b].Stats.P95))
		}
		fct.AddRow(row...)
	}
	fct.AddNote("multi-bottleneck chain: inter-switch links at host rate (oversubscribed), long paths cross every segment")

	sum := &Table{
		Title: "Extra: pause and queues on the parking lot",
		Cols:  []string{"scheme", "pause-frac(%)", "q-p99(KB)", "drops", "censored"},
	}
	for si, s := range r.Schemes {
		lr := r.Results[si]
		sum.AddRow(s,
			f2(lr.PauseFrac*100),
			f1(lr.Queue.P99/1024),
			fmt.Sprintf("%d", lr.Drops),
			fmt.Sprintf("%d", lr.Censored))
		sum.AddDist("slowdown "+s, lr.FCT.SlowdownSketch(0))
	}
	return []*Table{fct, sum}
}
