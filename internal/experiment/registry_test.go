package experiment

import (
	"strings"
	"testing"

	"hpcc/internal/sim"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// Every figure/ablation of the old CLI switch must be reachable via the
// registry, and the extra scenarios ride the same interface.
func TestRegistryCoversAllFigures(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig6",
		"fig9-longshort", "fig9-incast", "fig9-mice", "fig9-fairness",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"ablations-eta", "ablations-quant", "theory",
		"extra-fbsweep", "extra-parkinglot",
		"extra-hadoop-incast", "extra-rpc-fattree",
	}
	var got []string
	for _, s := range All() {
		got = append(got, s.Name)
		if s.Title == "" {
			t.Errorf("%s: empty title", s.Name)
		}
		if s.Run == nil {
			t.Errorf("%s: nil Run", s.Name)
		}
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("registry = %v\nwant      %v", got, want)
	}
}

func TestRegistryMatch(t *testing.T) {
	names := func(sel ...string) string {
		scens, err := Match(sel)
		if err != nil {
			t.Fatalf("Match(%v): %v", sel, err)
		}
		var out []string
		for _, s := range scens {
			out = append(out, s.Name)
		}
		return strings.Join(out, " ")
	}
	if got := names("fig6"); got != "fig6" {
		t.Fatalf("exact match = %q", got)
	}
	// Family prefix selects every member.
	if got := names("fig9"); got != "fig9-longshort fig9-incast fig9-mice fig9-fairness" {
		t.Fatalf("family match = %q", got)
	}
	if got := names("ablations"); got != "ablations-eta ablations-quant" {
		t.Fatalf("ablations family = %q", got)
	}
	// Globs.
	if got := names("fig1*"); !strings.Contains(got, "fig12") || strings.Contains(got, "fig9") {
		t.Fatalf("glob match = %q", got)
	}
	// Duplicates collapse; canonical order is kept regardless of
	// selector order.
	if got := names("fig10", "fig6", "fig10"); got != "fig6 fig10" {
		t.Fatalf("dedup/order = %q", got)
	}
	if got := names("all"); len(strings.Fields(got)) != len(All()) {
		t.Fatalf("all = %q", got)
	}
	if _, err := Match([]string{"nope"}); err == nil {
		t.Fatal("accepted unknown selector")
	}
	if _, err := Match([]string{"[bad"}); err == nil {
		t.Fatal("accepted malformed glob")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Scenario{Name: "fig6", Title: "dup", Run: func(Params) []*Table { return nil }})
}

// The parking-lot topology spec must build, carry load, and report a
// sane base RTT (used by both the registry scenario and the public
// API).
func TestParkingLotTopo(t *testing.T) {
	topo := ParkingLotTopo(3, fig9Rate)
	if topo.BaseRTT() <= topo.(topology.ParkingLotSpec).Delay {
		t.Fatal("parking-lot base RTT not derived from chain length")
	}
	r := runLoadT(t, LoadScenario{
		Scheme:   ByNameMust("hpcc"),
		Topo:     topo,
		Traffic:  []workload.Generator{workload.PoissonSpec{CDF: workload.FBHadoop(), Load: 0.3}},
		MaxFlows: 60,
		Until:    2 * sim.Millisecond,
		Drain:    8 * sim.Millisecond,
		PFC:      true,
		Seed:     1,
	})
	if len(r.FCT.Records) == 0 {
		t.Fatal("no flows completed on the parking lot")
	}
}
