// Package sim provides a deterministic discrete-event simulation engine
// with a picosecond-resolution virtual clock.
//
// The picosecond base is chosen so that per-byte serialization times at
// every data-center link speed used by the HPCC paper are exact integers:
// one byte takes 80 ps at 100 Gbps, 320 ps at 25 Gbps, 20 ps at 400 Gbps.
// Exact integer arithmetic makes simulations bit-reproducible across runs
// and platforms, which the test suite relies on.
package sim

import "fmt"

// Time is a point in virtual time (or a span between two points),
// measured in picoseconds since the start of the simulation.
type Time int64

// Time unit constants. These mirror time.Duration's constants but at
// picosecond resolution.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Picoseconds returns t as a raw picosecond count.
func (t Time) Picoseconds() int64 { return int64(t) }

// Nanoseconds returns t truncated to nanoseconds.
func (t Time) Nanoseconds() int64 { return int64(t / Nanosecond) }

// Microseconds returns t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t with an auto-selected unit, e.g. "12.5us".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%s%dps", neg, int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%s%gns", neg, float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%s%gus", neg, float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%s%gms", neg, float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%gs", neg, float64(t)/float64(Second))
	}
}

// Rate is a link or pacing bandwidth in bits per second.
type Rate int64

// Common data-center link speeds.
const (
	Mbps Rate = 1_000_000
	Gbps Rate = 1_000_000_000
)

// PsPerByte returns the serialization time of one byte at rate r,
// rounded to the nearest picosecond. For the standard link speeds used in
// the paper (10/25/40/100/400 Gbps) the result is exact.
func (r Rate) PsPerByte() Time {
	if r <= 0 {
		return 0
	}
	return Time((8*int64(Second) + int64(r)/2) / int64(r))
}

// TxTime returns how long it takes to serialize n bytes at rate r.
func (r Rate) TxTime(n int) Time {
	return Time(int64(n)) * r.PsPerByte()
}

// BytesPerSec returns r expressed in bytes per second.
func (r Rate) BytesPerSec() float64 { return float64(r) / 8 }

// String renders r with an auto-selected unit, e.g. "100Gbps".
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", int64(r/Gbps))
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", int64(r/Mbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}
