package sim

import "container/heap"

// Event is a handle to a scheduled callback. It can be cancelled with
// Engine.Cancel as long as it has not fired yet.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// At reports when the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// eventQueue implements heap.Interface ordered by (time, seq). The seq
// tie-break makes execution order deterministic for simultaneous events:
// first scheduled, first fired.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the whole simulated world runs on one goroutine,
// which is what makes runs deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	pool    []*Event // freelist for fired events
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	noteEngine(e)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: that is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool = e.pool[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.fn = nil
	e.pool = append(e.pool, ev)
}

// Step fires the earliest pending event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.pool = append(e.pool, ev)
	e.fired++
	fn()
	return true
}

// Run fires events until the queue empties or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain
// queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes the innermost Run/RunUntil return after the current event
// completes. Callable from inside event callbacks.
func (e *Engine) Stop() { e.stopped = true }
