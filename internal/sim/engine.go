package sim

// Event is the scheduler's internal node for one pending callback.
// Events are pooled and reused after they fire; external code holds
// Timer handles (which carry a generation counter) rather than bare
// *Event pointers, so a handle to a fired-and-reused event can never
// cancel its unrelated successor.
type Event struct {
	at    Time
	key   uint64 // canonical rank class; 0 for ordinary events
	seq   uint64
	gen   uint64
	fn    func()
	index int // heap index; -1 when not owned by a heap scheduler
}

// At reports when the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Before reports whether e fires before o: the canonical
// (time, key, seq) rank. Simultaneous events order first by their
// structural key — a topology-derived class that is identical whether
// the world runs on one engine or many shards (wire deliveries carry
// their port's build-time ID, traffic arrivals their generator's rank;
// ordinary events carry 0) — and only then by the per-engine scheduling
// sequence (first scheduled, first fired). Schedulers must agree on
// exactly this order.
func (e *Event) Before(o *Event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.key != o.key {
		return e.key < o.key
	}
	return e.seq < o.seq
}

// Canonical key bands. Keys are structural: derivable from the
// experiment spec alone, never from execution history, which is what
// makes the rank identical across single-engine and sharded runs.
//
//   - 0: ordinary events (host timers, tx-complete, cc trampolines) —
//     tie-broken by scheduling order, as before;
//   - [1, KeyArrivalBase): wire-delivery events, keyed by the directed
//     port's build-time structural ID (topology.Builder assigns them in
//     Link order);
//   - [KeyArrivalBase, ...): traffic-arrival events, keyed by the
//     generator's index in the scenario (ArrivalKey).
const KeyArrivalBase uint64 = 1 << 32

// ArrivalKey returns the canonical key for traffic-arrival events of
// scenario generator i.
func ArrivalKey(i int) uint64 { return KeyArrivalBase + uint64(i) }

// Scheduler is the pending-event set of an Engine: a priority queue
// over (time, key, seq). Implementations must pop events in exactly
// Event.Before order — the engine's determinism contract — but are free
// to trade structure for constant factors (binary heap for small
// pending sets, calendar queue for >100K pending events).
//
// Cancellation is cooperative: the engine marks cancelled events (fn =
// nil) and either removes them eagerly via Remove or lazily discards
// them at Pop/Peek, so implementations without O(log n) removal return
// false from Remove and simply keep the tombstone queued.
type Scheduler interface {
	// Push inserts a scheduled event.
	Push(ev *Event)
	// Pop removes and returns the earliest event (Before order), or nil.
	Pop() *Event
	// Peek returns the earliest event without removing it, or nil.
	Peek() *Event
	// Remove eagerly extracts a cancelled event if the structure
	// supports it, reporting whether ev was taken out.
	Remove(ev *Event) bool
	// Len returns the number of queued events, including tombstones.
	Len() int
	// Do calls fn for every queued event (tombstones included) in
	// unspecified order. Engine.Checkpoint snapshots the pending set
	// through it; order is irrelevant because a restore re-Pushes and
	// the (time, key, seq) rank is total.
	Do(fn func(*Event))
	// Reset discards every queued event, retaining internal capacity.
	// Engine.Rollback empties the structure through it before
	// re-pushing the checkpointed pending set.
	Reset()
}

// Timer is a cancellable handle to a scheduled event. The zero Timer
// is inert: cancelling it is a no-op. Handles are values; they embed
// the event's generation at scheduling time, so a stale handle (the
// event fired or was cancelled, and the pooled Event was reused) can
// never touch the reused event — the ABA hazard of the freelist.
type Timer struct {
	ev  *Event
	gen uint64
}

// Armed reports whether the timer still refers to a pending event.
func (t Timer) Armed() bool { return t.ev != nil && t.ev.gen == t.gen }

// When returns the scheduled fire time of a still-armed timer, or 0.
func (t Timer) When() Time {
	if !t.Armed() {
		return 0
	}
	return t.ev.at
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; one engine's world runs on one goroutine, which
// is what makes runs deterministic. (Multiple engines may run on
// concurrent goroutines — the campaign runner and ShardGroup do.)
type Engine struct {
	now     Time
	seq     uint64
	sched   Scheduler
	live    int      // queued events that are not cancelled tombstones
	stopped bool     //hpcclint:nosnap transient Stop flag; only ever true inside Run, never at a checkpoint barrier (Rollback clears it)
	pool    []*Event // freelist for fired events
	fired   uint64
	snap    engineSnap
}

// NewEngine returns an engine with the clock at zero, backed by the
// default 4-ary heap scheduler (order-identical to the binary heap and
// the calendar queue; see Scheduler).
func NewEngine() *Engine { return NewEngineWith(NewHeap4()) }

// NewEngineWith returns an engine backed by the given scheduler (which
// must be empty). Use NewCalendar for workloads holding >100K pending
// events.
func NewEngineWith(s Scheduler) *Engine {
	e := &Engine{sched: s}
	noteEngine(e)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.live }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute time t with the ordinary rank
// (key 0). Scheduling in the past (t < Now) panics: that is always a
// logic error in a discrete-event model.
//
//hpcclint:alloc-free
func (e *Engine) At(t Time, fn func()) Timer { return e.AtKey(t, 0, fn) }

// AtKey schedules fn to run at absolute time t under canonical key —
// the structural tie-break class for simultaneous events (see
// Event.Before). Wire deliveries and traffic arrivals use it so their
// order at a shared timestamp is derivable from the topology alone.
//
//hpcclint:alloc-free
func (e *Engine) AtKey(t Time, key uint64, fn func()) Timer {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool = e.pool[:n-1]
	} else {
		ev = &Event{index: -1} //hpcclint:allow hotpathalloc -- pool miss warms the free list once; steady state reuses recycled events (TestCalendarSteadyStateAllocs)
	}
	ev.at = t
	ev.key = key
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.live++
	e.sched.Push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
//
//hpcclint:alloc-free
func (e *Engine) After(d Time, fn func()) Timer {
	return e.AtKey(e.now+d, 0, fn)
}

// AfterKey schedules fn to run d after the current time under canonical
// key (see AtKey).
//
//hpcclint:alloc-free
func (e *Engine) AfterKey(d Time, key uint64, fn func()) Timer {
	return e.AtKey(e.now+d, key, fn)
}

// Cancel removes a scheduled event. Cancelling a zero Timer, an event
// that already fired, or one already cancelled is a no-op — the
// generation check makes this safe even after the pooled Event has been
// reused for an unrelated callback.
//
//hpcclint:alloc-free
func (e *Engine) Cancel(t Timer) {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.fn == nil {
		return
	}
	ev.fn = nil
	ev.gen++ // invalidate every outstanding handle
	e.live--
	if e.sched.Remove(ev) {
		e.recycle(ev)
	}
	// Otherwise the tombstone stays queued and is discarded at Pop.
}

//hpcclint:alloc-free
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.pool = append(e.pool, ev) //hpcclint:allow hotpathalloc -- free-list growth is amortized over reuse; capacity is retained across checkpoints
}

// head returns the earliest live event without removing it, discarding
// cancelled tombstones along the way.
func (e *Engine) head() *Event {
	for {
		ev := e.sched.Peek()
		if ev == nil {
			return nil
		}
		if ev.fn != nil {
			return ev
		}
		e.sched.Pop()
		e.recycle(ev)
	}
}

// PeekTime returns the fire time of the earliest pending event.
func (e *Engine) PeekTime() (Time, bool) {
	ev := e.head()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// fire executes a live event that has already been removed from the
// scheduler — the shared tail of Step and the deadline-bounded run
// loops.
//
//hpcclint:alloc-free
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	ev.gen++ // invalidate handles before fn can reschedule
	e.live--
	e.recycle(ev)
	e.fired++
	fn()
}

// Step fires the earliest pending event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	for {
		ev := e.sched.Pop()
		if ev == nil {
			return false
		}
		if ev.fn == nil { // lazily-cancelled tombstone
			e.recycle(ev)
			continue
		}
		e.fire(ev)
		return true
	}
}

// Run fires events until the queue empties or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain
// queued.
//
// Pop fast path: head() already discarded every tombstone ahead of the
// live head, so the subsequent Pop is guaranteed to return exactly that
// event — one tombstone-discard scan per fired event instead of the
// head()-then-Step() double scan.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.head()
		if ev == nil || ev.at > deadline {
			break
		}
		e.sched.Pop()
		e.fire(ev)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunBefore fires events with timestamps strictly < deadline, then
// advances the clock to the deadline. It is the epoch primitive of
// ShardGroup: an epoch [T, T+L) runs every event before the boundary
// and leaves boundary-time events for the next epoch, after the
// cross-shard exchange. Uses the same pop fast path as RunUntil.
func (e *Engine) RunBefore(deadline Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.head()
		if ev == nil || ev.at >= deadline {
			break
		}
		e.sched.Pop()
		e.fire(ev)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes the innermost Run/RunUntil return after the current event
// completes. Callable from inside event callbacks.
func (e *Engine) Stop() { e.stopped = true }

// Checkpointable is mutable world state that can be captured at a
// speculation barrier and restored on rollback. Checkpoint overwrites
// the component's single internal snapshot slot (so repeated
// checkpoints reuse its buffers); Rollback restores the last
// checkpoint and may be called any number of times.
//
// The contract that makes cheap snapshots possible is pointer
// stability: every implementation restores state in place, through the
// same pointers the rest of the world already holds (pooled events,
// pooled packets, flow structs), so cross-references — Timer handles,
// queued *Packet entries, callback closures — survive a rollback
// without any fix-up pass.
type Checkpointable interface {
	Checkpoint()
	Rollback()
}

// evSnap is one pending event at checkpoint time: the pooled struct's
// identity and a full value copy. Restoring writes the value back
// through the pointer, so Timer handles taken before the checkpoint
// (and held inside checkpointed host state) become valid again for
// free — same struct, same generation.
type evSnap struct {
	ptr *Event
	val Event
}

type engineSnap struct {
	valid bool
	now   Time
	seq   uint64
	live  int
	fired uint64
	evs   []evSnap
	pool  []*Event
}

// Checkpoint captures the engine's complete state — clock, sequence
// counter, pending-event set (tombstones included) and event freelist —
// into an internal snapshot slot, overwriting any previous snapshot.
func (e *Engine) Checkpoint() {
	s := &e.snap
	s.valid = true
	s.now, s.seq, s.live, s.fired = e.now, e.seq, e.live, e.fired
	s.evs = s.evs[:0]
	e.sched.Do(func(ev *Event) {
		s.evs = append(s.evs, evSnap{ptr: ev, val: *ev})
	})
	s.pool = append(s.pool[:0], e.pool...)
}

// Rollback restores the last Checkpoint in place: the scheduler is
// emptied and the checkpointed pending set re-pushed through the
// original Event pointers (restoring at/key/seq/gen/fn), and the
// freelist is reset to its checkpointed contents. Event structs
// allocated during the rolled-back run are simply dropped. Panics if
// no checkpoint was taken.
func (e *Engine) Rollback() {
	s := &e.snap
	if !s.valid {
		panic("sim: Engine.Rollback without Checkpoint")
	}
	e.now, e.seq, e.live, e.fired = s.now, s.seq, s.live, s.fired
	e.stopped = false
	e.sched.Reset()
	for i := range s.evs {
		ev := s.evs[i].ptr
		*ev = s.evs[i].val
		ev.index = -1
		e.sched.Push(ev)
	}
	e.pool = append(e.pool[:0], s.pool...)
}
