package sim

import "container/heap"

// Heap is a binary-heap Scheduler over the canonical (time, key, seq)
// rank, kept as the reference implementation the three-way equivalence
// property test compares against. The 4-ary Heap4 (the default) does
// the same job with shallower, cache-friendlier sift paths; the
// Calendar queue wins beyond ~100K pending events.
type Heap struct {
	q eventQueue
}

// NewHeap returns an empty heap scheduler.
func NewHeap() *Heap { return &Heap{} }

// Push implements Scheduler.
func (h *Heap) Push(ev *Event) { heap.Push(&h.q, ev) }

// Pop implements Scheduler.
func (h *Heap) Pop() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return heap.Pop(&h.q).(*Event)
}

// Peek implements Scheduler.
func (h *Heap) Peek() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

// Remove implements Scheduler: the heap supports eager O(log n)
// extraction of cancelled events.
func (h *Heap) Remove(ev *Event) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(&h.q, ev.index)
	return true
}

// Len implements Scheduler.
func (h *Heap) Len() int { return len(h.q) }

// Do implements Scheduler: heap order is irrelevant for snapshots, so
// this is a plain slice walk.
func (h *Heap) Do(fn func(*Event)) {
	for _, ev := range h.q {
		fn(ev)
	}
}

// Reset implements Scheduler, keeping the backing array for reuse.
func (h *Heap) Reset() {
	for i := range h.q {
		h.q[i] = nil
	}
	h.q = h.q[:0]
}

// eventQueue implements heap.Interface ordered by the canonical
// (time, key, seq) rank: simultaneous events fire in structural-key
// order, then scheduling order — deterministic, and identical across
// single-engine and sharded runs.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool { return q[i].Before(q[j]) }

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
