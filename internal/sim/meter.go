package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Meter records every Engine created on its goroutine while attached,
// so drivers (the campaign runner) can report engine and event counts
// for scenario code that constructs its engines internally.
//
// A Meter observes exactly one goroutine: attach it at the start of a
// job, run the job synchronously on the same goroutine, then Detach.
// Reading Events/Engines is only safe once the metered code finished.
type Meter struct {
	gid     uint64
	engines []*Engine
}

var (
	meterCount atomic.Int64 // fast-path skip when no meter is attached
	meterMu    sync.Mutex
	meters     = map[uint64]*Meter{}
)

// AttachMeter starts collecting engines created on the calling
// goroutine. It must be paired with Detach; attaching twice on the same
// goroutine panics.
func AttachMeter() *Meter {
	m := &Meter{gid: gid()}
	meterMu.Lock()
	defer meterMu.Unlock()
	if _, dup := meters[m.gid]; dup {
		panic("sim: meter already attached on this goroutine")
	}
	meters[m.gid] = m
	meterCount.Add(1)
	return m
}

// Detach stops collecting. The meter's counters remain readable.
func (m *Meter) Detach() {
	meterMu.Lock()
	defer meterMu.Unlock()
	if meters[m.gid] == m {
		delete(meters, m.gid)
		meterCount.Add(-1)
	}
}

// Engines returns how many engines were created while attached.
func (m *Meter) Engines() int { return len(m.engines) }

// Events returns the total events fired so far across those engines.
func (m *Meter) Events() uint64 {
	var total uint64
	for _, e := range m.engines {
		total += e.Fired()
	}
	return total
}

// noteEngine is called from NewEngine. With no meters attached it costs
// one atomic load.
func noteEngine(e *Engine) {
	if meterCount.Load() == 0 {
		return
	}
	id := gid()
	meterMu.Lock()
	if m, ok := meters[id]; ok {
		m.engines = append(m.engines, e)
	}
	meterMu.Unlock()
}

// gid parses the current goroutine's id from the runtime stack header
// ("goroutine N [running]:"). Only exercised while a meter is attached.
func gid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
