package sim

// Heap4 is the default Scheduler: an implicit 4-ary heap over the
// canonical (time, key, seq) rank. Compared to the binary heap it is
// half as deep, so a sift touches fewer cache lines per level crossed;
// the extra comparisons per level are against four children sitting in
// adjacent slots of one array, which the prefetcher hands over for
// free. Pop order is exactly Event.Before — identical to Heap and
// Calendar — which the three-way scheduler-equivalence property test
// pins down, so swapping schedulers never changes simulation results.
type Heap4 struct {
	q []*Event
}

// NewHeap4 returns an empty 4-ary heap scheduler.
func NewHeap4() *Heap4 { return &Heap4{} }

// Push implements Scheduler.
func (h *Heap4) Push(ev *Event) {
	ev.index = len(h.q)
	h.q = append(h.q, ev)
	h.siftUp(len(h.q) - 1)
}

// Pop implements Scheduler.
func (h *Heap4) Pop() *Event {
	n := len(h.q)
	if n == 0 {
		return nil
	}
	top := h.q[0]
	last := h.q[n-1]
	h.q[n-1] = nil
	h.q = h.q[:n-1]
	if n > 1 {
		last.index = 0
		h.q[0] = last
		h.siftDown(0)
	}
	top.index = -1
	return top
}

// Peek implements Scheduler.
func (h *Heap4) Peek() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

// Remove implements Scheduler: like the binary heap, the 4-ary heap
// supports eager O(log n) extraction of cancelled events through the
// per-event index.
func (h *Heap4) Remove(ev *Event) bool {
	i := ev.index
	if i < 0 {
		return false
	}
	n := len(h.q) - 1
	last := h.q[n]
	h.q[n] = nil
	h.q = h.q[:n]
	if i < n {
		last.index = i
		h.q[i] = last
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	ev.index = -1
	return true
}

// Len implements Scheduler.
func (h *Heap4) Len() int { return len(h.q) }

// Do implements Scheduler: heap order is irrelevant for snapshots, so
// this is a plain slice walk.
func (h *Heap4) Do(fn func(*Event)) {
	for _, ev := range h.q {
		fn(ev)
	}
}

// Reset implements Scheduler, keeping the backing array for reuse.
func (h *Heap4) Reset() {
	for i := range h.q {
		h.q[i] = nil
	}
	h.q = h.q[:0]
}

// siftUp restores heap order from slot i toward the root. The moved
// event is held out of the array until its final slot is known, so each
// level costs one comparison and one pointer store.
//
//hpcclint:alloc-free
func (h *Heap4) siftUp(i int) {
	ev := h.q[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h.q[parent]
		if !ev.Before(p) {
			break
		}
		h.q[i] = p
		p.index = i
		i = parent
	}
	h.q[i] = ev
	ev.index = i
}

// siftDown restores heap order from slot i toward the leaves,
// reporting whether the event moved. The four children of slot i are
// the adjacent slots 4i+1..4i+4, so selecting the minimum child scans
// one cache line.
//
//hpcclint:alloc-free
func (h *Heap4) siftDown(i int) bool {
	ev := h.q[i]
	start := i
	n := len(h.q)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if h.q[j].Before(h.q[m]) {
				m = j
			}
		}
		if !h.q[m].Before(ev) {
			break
		}
		h.q[i] = h.q[m]
		h.q[i].index = i
		i = m
	}
	h.q[i] = ev
	ev.index = i
	return i > start
}
