package sim

import "sync"

// ShardGroup runs several engines in lockstep epochs of conservative
// lookahead — the classic conservative parallel-DES synchronization.
// Every epoch [T, T+L) is executed concurrently (one goroutine per
// engine); at the epoch barrier the group calls Exchange, which moves
// cross-shard traffic between engines single-threaded. The scheme is
// sound when every cross-shard interaction initiated during an epoch
// takes effect at least Lookahead later — for a network partition, the
// minimum propagation delay of the links that cross shards.
//
// Determinism: each engine fires its own events in (time, seq) order
// exactly as it would alone, and Exchange injects cross-shard events in
// a caller-fixed order at every barrier, so a ShardGroup run is a pure
// function of its inputs — independent of goroutine scheduling.
type ShardGroup struct {
	Engines   []*Engine
	Lookahead Time
	// Exchange, if set, runs at every epoch boundary (single-threaded,
	// all engines parked at time now) and moves cross-shard work into
	// the destination engines.
	Exchange func(now Time)
}

// RunUntil advances every engine to the deadline in lookahead epochs.
// Epochs are event-driven: when all engines are idle until some later
// time, the group skips ahead (still conservatively: an epoch never
// extends past earliest-pending-event + Lookahead).
func (g *ShardGroup) RunUntil(deadline Time) {
	if len(g.Engines) == 1 {
		g.Engines[0].RunUntil(deadline)
		if g.Exchange != nil {
			g.Exchange(deadline)
		}
		return
	}
	if g.Lookahead <= 0 {
		panic("sim: ShardGroup needs a positive Lookahead")
	}

	type cmd struct {
		until Time
		final bool
	}
	var wg sync.WaitGroup
	cmds := make([]chan cmd, len(g.Engines))
	for i, e := range g.Engines {
		ch := make(chan cmd, 1)
		cmds[i] = ch
		go func(e *Engine, ch chan cmd) {
			for m := range ch {
				if m.final {
					e.RunUntil(m.until)
				} else {
					e.RunBefore(m.until)
				}
				wg.Done()
			}
		}(e, ch)
	}
	defer func() {
		for _, ch := range cmds {
			close(ch)
		}
	}()

	now := g.Engines[0].Now()
	for {
		// Event-driven epoch end: nothing can cross a shard boundary
		// earlier than the group's earliest pending event + Lookahead.
		next := deadline
		for _, e := range g.Engines {
			if h, ok := e.PeekTime(); ok && h+g.Lookahead < next {
				next = h + g.Lookahead
			}
		}
		if next < now+g.Lookahead {
			next = now + g.Lookahead
		}
		final := next >= deadline
		if final {
			next = deadline
		}
		wg.Add(len(g.Engines))
		for _, ch := range cmds {
			ch <- cmd{until: next, final: final}
		}
		wg.Wait()
		if g.Exchange != nil {
			g.Exchange(next)
		}
		if final {
			return
		}
		now = next
	}
}
