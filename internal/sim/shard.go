package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Speculator is the world-state interface ShardGroup needs for
// optimistic epochs: per-shard checkpoint/restore plus a staged
// variant of the cross-shard exchange, so a barrier can inspect what
// would be delivered before deciding to commit or roll back.
//
// Save and Restore are invoked concurrently, one call per shard on
// that shard's worker goroutine; shards' states must be disjoint.
// Stage, Commit and Discard run single-threaded at the barrier.
type Speculator interface {
	// Save checkpoints shard i's world state (engine, nodes, wires,
	// statistics), overwriting the previous checkpoint.
	Save(shard int)
	// Restore rolls shard i back to its last checkpoint.
	Restore(shard int)
	// Stage drains every cross-shard outbox into a staging area
	// WITHOUT delivering, and reports the earliest staged arrival
	// time (any is false when nothing was staged).
	Stage() (earliest Time, any bool)
	// Commit delivers everything staged into the receiver shards, in
	// the same deterministic order the conservative exchange uses.
	Commit()
	// Discard drops the staged packets after a rollback (their state
	// was produced by a run that never happened).
	Discard()
}

// SyncStats counts synchronization work done by one ShardGroup run.
type SyncStats struct {
	// Epochs is the number of conservative epochs executed, including
	// post-rollback replays.
	Epochs uint64
	// SpecEpochs counts speculative epochs attempted; each either
	// committed or rolled back.
	SpecEpochs    uint64
	SpecCommits   uint64
	SpecRollbacks uint64
	// WorkNS is wall time spent with the engines running concurrently;
	// TotalNS is the whole RunUntil. The difference is single-threaded
	// synchronization: barriers, exchanges, checkpoints, restores.
	WorkNS  int64
	TotalNS int64
}

// SyncOverhead is the fraction of wall time not spent running engines.
func (s SyncStats) SyncOverhead() float64 {
	if s.TotalNS <= 0 {
		return 0
	}
	return float64(s.TotalNS-s.WorkNS) / float64(s.TotalNS)
}

// ShardGroup runs several engines in lockstep epochs — conservative
// lookahead barriers by default, optimistic (speculative) epochs when
// Speculate is set.
//
// Conservative mode is the classic conservative parallel-DES scheme:
// every epoch [T, T+L) is executed concurrently (one goroutine per
// engine); at the epoch barrier the group calls Exchange, which moves
// cross-shard traffic between engines single-threaded. The scheme is
// sound when every cross-shard interaction initiated during an epoch
// takes effect at least Lookahead later — for a network partition, the
// minimum propagation delay of the links that cross shards.
//
// Speculative mode bets that low-delay fabrics rarely ship cross-shard
// traffic at the lookahead bound: each epoch checkpoints every shard,
// runs up to Window lookaheads past the conservative horizon, then
// stages (without delivering) the would-be exchange. If nothing staged
// lands inside the speculated span, the epoch commits — one barrier
// paid for Window epochs' progress. Otherwise every shard rolls back
// to the checkpoint and the span is replayed with conservative
// barriers, which is exact by construction; the canonical
// (time, key, seq) event rank makes the committed path equally exact,
// because a committed span had no cross-shard arrivals to order. The
// window adapts: it grows back toward Window after commits, halves on
// rollback, and falls back to conservative epochs (with periodic
// re-probes) when rollbacks dominate.
//
// Determinism: each engine fires its own events in canonical order
// exactly as it would alone; Exchange/Commit inject cross-shard events
// in a caller-fixed order at every barrier; and the commit-or-rollback
// decision is a pure function of staged arrival times. A ShardGroup
// run is therefore a pure function of its inputs — independent of
// goroutine scheduling — and byte-identical to the serial run.
type ShardGroup struct {
	Engines   []*Engine
	Lookahead Time
	// Exchange, if set, runs at every conservative epoch boundary
	// (single-threaded, all engines parked at time now) and moves
	// cross-shard work into the destination engines.
	Exchange func(now Time)

	// Speculate enables optimistic epochs; it requires Spec.
	Speculate bool
	// Window caps the speculative horizon at Window lookahead epochs
	// beyond the conservative one (default 8).
	Window int
	// Spec provides checkpoint/restore and the staged exchange.
	Spec Speculator

	// Stats is reset and refilled by each RunUntil.
	Stats SyncStats
}

const (
	defaultSpecWindow = 8
	// specCooldownEpochs is how many conservative epochs run after the
	// adaptive window collapses before speculation is probed again.
	specCooldownEpochs = 16
)

type opKind uint8

const (
	opRunBefore opKind = iota
	opRunUntil
	opSave
	opRestore
)

type shardOp struct {
	kind  opKind
	until Time
}

// shardWorkers fans one op out to every engine's goroutine and waits
// for all of them — the only synchronization primitive of the group.
type shardWorkers struct {
	wg   sync.WaitGroup
	cmds []chan shardOp
}

func (w *shardWorkers) do(op shardOp) {
	w.wg.Add(len(w.cmds))
	for _, ch := range w.cmds {
		ch <- op
	}
	w.wg.Wait()
}

// run fans out an engine-run op and accounts its wall time as
// concurrent work.
func (g *ShardGroup) run(w *shardWorkers, op shardOp) {
	t0 := time.Now() //hpcclint:allow determinism -- wall-clock metering for SyncStats overhead accounting; never feeds back into simulated state
	w.do(op)
	g.Stats.WorkNS += time.Since(t0).Nanoseconds() //hpcclint:allow determinism -- wall-clock metering for SyncStats overhead accounting; never feeds back into simulated state
}

// RunUntil advances every engine to the deadline in lookahead epochs.
// Epochs are event-driven: when all engines are idle until some later
// time, the group skips ahead (still conservatively: an epoch never
// extends past earliest-pending-event + Lookahead). A misconfigured
// group — no engines, nil or duplicated engines, a non-positive
// Lookahead, Speculate without a Speculator — is reported as an error
// before any engine runs.
func (g *ShardGroup) RunUntil(deadline Time) error {
	g.Stats = SyncStats{}
	if len(g.Engines) == 0 {
		return errors.New("sim: ShardGroup has no engines")
	}
	for i, e := range g.Engines {
		if e == nil {
			return fmt.Errorf("sim: ShardGroup engine %d is nil", i)
		}
		for j := i + 1; j < len(g.Engines); j++ {
			if g.Engines[j] == e {
				return fmt.Errorf("sim: ShardGroup engines %d and %d are the same engine", i, j)
			}
		}
	}
	if len(g.Engines) == 1 {
		g.Engines[0].RunUntil(deadline)
		if g.Exchange != nil {
			g.Exchange(deadline)
		}
		return nil
	}
	if g.Lookahead <= 0 {
		return fmt.Errorf("sim: ShardGroup needs a positive Lookahead, got %d", g.Lookahead)
	}
	if g.Speculate && g.Spec == nil {
		return errors.New("sim: ShardGroup.Speculate requires a Speculator")
	}

	start := time.Now() //hpcclint:allow determinism -- wall-clock metering for SyncStats overhead accounting; never feeds back into simulated state
	defer func() { g.Stats.TotalNS = time.Since(start).Nanoseconds() }()

	w := &shardWorkers{cmds: make([]chan shardOp, len(g.Engines))}
	for i, e := range g.Engines {
		ch := make(chan shardOp, 1)
		w.cmds[i] = ch
		//hpcclint:allow determinism -- one long-lived worker per engine; the barrier protocol serializes all cross-engine effects
		go func(i int, e *Engine, ch chan shardOp) {
			for m := range ch {
				switch m.kind {
				case opRunBefore:
					e.RunBefore(m.until)
				case opRunUntil:
					e.RunUntil(m.until)
				case opSave:
					g.Spec.Save(i)
				case opRestore:
					g.Spec.Restore(i)
				}
				w.wg.Done()
			}
		}(i, e, ch)
	}
	defer func() {
		for _, ch := range w.cmds {
			close(ch)
		}
	}()

	if g.Speculate {
		g.runSpeculative(w, deadline)
	} else {
		g.runConservative(w, deadline)
	}
	return nil
}

// nextEpoch computes the event-driven conservative epoch end: nothing
// can cross a shard boundary earlier than the group's earliest pending
// event plus the lookahead. final means the epoch reaches the deadline
// and must run inclusive.
func (g *ShardGroup) nextEpoch(now, deadline Time) (next Time, final bool) {
	next = deadline
	for _, e := range g.Engines {
		if h, ok := e.PeekTime(); ok && h+g.Lookahead < next {
			next = h + g.Lookahead
		}
	}
	if next < now+g.Lookahead {
		next = now + g.Lookahead
	}
	if next >= deadline {
		return deadline, true
	}
	return next, false
}

// runConservative is the PR4/PR5 loop: exclusive epochs with an
// exchange at every barrier, then one final inclusive epoch at the
// deadline.
func (g *ShardGroup) runConservative(w *shardWorkers, deadline Time) {
	now := g.Engines[0].Now()
	for {
		next, final := g.nextEpoch(now, deadline)
		g.Stats.Epochs++
		if final {
			g.run(w, shardOp{kind: opRunUntil, until: next})
		} else {
			g.run(w, shardOp{kind: opRunBefore, until: next})
		}
		if g.Exchange != nil {
			g.Exchange(next)
		}
		if final {
			return
		}
		now = next
	}
}

// runSpeculative interleaves speculative epochs with conservative
// fallbacks under an adaptive window.
func (g *ShardGroup) runSpeculative(w *shardWorkers, deadline Time) {
	window := g.Window
	if window <= 0 {
		window = defaultSpecWindow
	}
	now := g.Engines[0].Now()
	curWin := window
	cooldown := 0
	for {
		next, final := g.nextEpoch(now, deadline)
		if final {
			// The conservative horizon already reaches the deadline, so
			// no cross-shard arrival can land before it: finish with the
			// plain inclusive epoch. Speculation has nothing to add.
			g.Stats.Epochs++
			g.run(w, shardOp{kind: opRunUntil, until: next})
			if g.Exchange != nil {
				g.Exchange(next)
			}
			return
		}
		if curWin < 2 {
			// Rollbacks collapsed the window; a 1-lookahead speculation
			// can never lose its bet (arrivals land at >= the horizon by
			// the lookahead guarantee) but pays the checkpoint for no
			// extra progress. Run conservatively for a while, then probe
			// speculation again with a minimal window.
			g.Stats.Epochs++
			g.run(w, shardOp{kind: opRunBefore, until: next})
			if g.Exchange != nil {
				g.Exchange(next)
			}
			now = next
			if cooldown++; cooldown >= specCooldownEpochs {
				cooldown = 0
				curWin = 2
			}
			continue
		}

		// Speculative epoch: checkpoint, run everything strictly before
		// the speculated horizon, then look at what would be exchanged.
		h := next + Time(curWin-1)*g.Lookahead
		if h > deadline {
			h = deadline
		}
		g.Stats.SpecEpochs++
		w.do(shardOp{kind: opSave})
		g.run(w, shardOp{kind: opRunBefore, until: h})
		earliest, any := g.Spec.Stage()
		if !any || earliest >= h {
			// The bet held: nothing crossed a shard boundary inside the
			// speculated span, so every shard's run is exactly its
			// serial-order run. Deliver the staged packets (all at or
			// past the horizon) and move on.
			g.Spec.Commit()
			g.Stats.SpecCommits++
			now = h
			if curWin < window {
				curWin++
			}
			continue
		}
		// A cross-shard packet landed inside the window: the receiver
		// ran past its arrival without seeing it. Roll every shard back
		// to the checkpoint, drop the staged packets, and replay the
		// span with conservative barriers — the proven-exact path.
		w.do(shardOp{kind: opRestore})
		g.Spec.Discard()
		g.Stats.SpecRollbacks++
		g.replayConservative(w, now, h)
		now = h
		curWin /= 2
	}
}

// replayConservative re-runs [from, to) with exclusive conservative
// epochs and an exchange at every barrier including at to itself; the
// caller resumes from to.
func (g *ShardGroup) replayConservative(w *shardWorkers, from, to Time) {
	now := from
	for now < to {
		next, _ := g.nextEpoch(now, to)
		g.Stats.Epochs++
		g.run(w, shardOp{kind: opRunBefore, until: next})
		if g.Exchange != nil {
			g.Exchange(next)
		}
		now = next
	}
}
