package sim

import "container/heap"

// Calendar is a bucketed-ladder Scheduler tuned for large pending sets
// (>100K events): the pending window is split into fixed-width time
// buckets, pushes into future buckets are O(1) appends, and only the
// bucket currently being drained is kept heap-ordered. Far-future
// events sit in an overflow list until the window drains, at which
// point the window re-anchors and re-tunes its width to the overflow's
// span — so sparse tails (RTO backstops a millisecond out) cost nothing
// until their time comes.
//
// The pop order is exactly Event.Before — identical to Heap — which the
// scheduler-equivalence property test pins down; engines backed by
// either scheduler produce byte-identical simulations.
type Calendar struct {
	nbuck   int
	buckets [][]*Event

	// Active window: buckets[i] spans
	// [winStart + i*width, winStart + (i+1)*width).
	width    Time
	winEnd   Time
	cur      int        // bucket being drained (-1 before the first)
	curStart Time       // start time of bucket cur's span
	curq     eventQueue // bucket cur, heapified at activation
	ringLive int        // events in buckets after cur

	overflow     []*Event // events at/after winEnd, unordered
	ofMin, ofMax Time
	ofSpare      []*Event // retired overflow array, reused by the next refill

	total  int
	active bool
}

// calendarBuckets is the fixed bucket count. Refills re-tune the bucket
// width to span the whole overflow, so the count only bounds how finely
// one window subdivides; dense buckets degrade gracefully to per-bucket
// heaps.
const calendarBuckets = 2048

// NewCalendar returns an empty calendar scheduler.
func NewCalendar() *Calendar {
	return &Calendar{nbuck: calendarBuckets, buckets: make([][]*Event, calendarBuckets)}
}

// Push implements Scheduler.
func (c *Calendar) Push(ev *Event) {
	c.total++
	ev.index = -1
	if !c.active || ev.at >= c.winEnd {
		if len(c.overflow) == 0 || ev.at < c.ofMin {
			c.ofMin = ev.at
		}
		if len(c.overflow) == 0 || ev.at > c.ofMax {
			c.ofMax = ev.at
		}
		c.overflow = append(c.overflow, ev)
		return
	}
	if ev.at < c.curStart+c.width {
		// The event lands in (or before) the bucket being drained; the
		// per-bucket heap keeps Before order exact even when the clock
		// sits below curStart.
		heap.Push(&c.curq, ev)
		return
	}
	idx := c.cur + int((ev.at-c.curStart)/c.width)
	c.buckets[idx] = append(c.buckets[idx], ev)
	c.ringLive++
}

// Pop implements Scheduler.
func (c *Calendar) Pop() *Event {
	ev := c.ensure()
	if ev == nil {
		return nil
	}
	heap.Pop(&c.curq)
	c.total--
	return ev
}

// Peek implements Scheduler.
func (c *Calendar) Peek() *Event { return c.ensure() }

// Remove implements Scheduler: the calendar has no per-event locator,
// so cancelled events stay queued as tombstones and are discarded when
// popped.
func (c *Calendar) Remove(ev *Event) bool { return false }

// Len implements Scheduler.
func (c *Calendar) Len() int { return c.total }

// Do implements Scheduler: walks the active bucket's heap, the ring
// buckets and the overflow. Drained buckets are empty slices, so the
// blanket walk visits exactly the queued events.
func (c *Calendar) Do(fn func(*Event)) {
	for _, ev := range c.curq {
		fn(ev)
	}
	for _, b := range c.buckets {
		for _, ev := range b {
			fn(ev)
		}
	}
	for _, ev := range c.overflow {
		fn(ev)
	}
}

// Reset implements Scheduler: deactivates the window and empties every
// slice in place, keeping all backing arrays for reuse.
func (c *Calendar) Reset() {
	for i := range c.curq {
		c.curq[i] = nil
	}
	c.curq = c.curq[:0]
	for i, b := range c.buckets {
		if len(b) == 0 {
			continue
		}
		for j := range b {
			b[j] = nil
		}
		c.buckets[i] = b[:0]
	}
	for i := range c.overflow {
		c.overflow[i] = nil
	}
	c.overflow = c.overflow[:0]
	c.ringLive = 0
	c.total = 0
	c.active = false
	c.cur = 0
	c.width, c.winEnd, c.curStart = 0, 0, 0
	c.ofMin, c.ofMax = 0, 0
}

// ensure activates buckets until the earliest pending event heads the
// current bucket's heap, refilling the window from overflow when the
// whole window has drained.
func (c *Calendar) ensure() *Event {
	for {
		if len(c.curq) > 0 {
			return c.curq[0]
		}
		if c.ringLive > 0 {
			for {
				c.cur++
				c.curStart += c.width
				if len(c.buckets[c.cur]) > 0 {
					break
				}
			}
			// Swap the drained current array with the bucket being
			// activated: both backing arrays stay in circulation, so a
			// window full of activations allocates nothing once slices
			// reach their steady-state capacity.
			taken := c.buckets[c.cur]
			c.buckets[c.cur] = c.curq[:0]
			c.curq = eventQueue(taken)
			c.ringLive -= len(c.curq)
			heap.Init(&c.curq)
			continue
		}
		if len(c.overflow) == 0 {
			return nil
		}
		c.refill()
	}
}

// refill re-anchors the window at the overflow's earliest event and
// re-tunes the bucket width so the window spans the whole overflow,
// then redistributes every overflowed event into its bucket. The old
// overflow array is retired to ofSpare and becomes the next window's
// overflow, so refills ping-pong two arrays instead of growing a fresh
// one each time. (Stale *Event entries linger past len in the spare
// array; events are pooled for the engine's lifetime, so they pin no
// otherwise-free memory.)
func (c *Calendar) refill() {
	old := c.overflow
	span := c.ofMax - c.ofMin + 1
	c.width = span/Time(c.nbuck) + 1
	winStart := c.ofMin
	c.winEnd = winStart + c.width*Time(c.nbuck)
	c.cur = -1
	c.curStart = winStart - c.width
	c.curq = c.curq[:0]
	c.overflow = c.ofSpare[:0]
	c.ringLive = 0
	for _, ev := range old {
		idx := int((ev.at - winStart) / c.width)
		c.buckets[idx] = append(c.buckets[idx], ev)
	}
	c.ringLive = len(old)
	c.ofSpare = old[:0]
	c.active = true
}
