package sim

import "container/heap"

// Calendar is a bucketed-ladder Scheduler tuned for large pending sets
// (>100K events): the pending window is split into fixed-width time
// buckets, pushes into future buckets are O(1) appends, and only the
// bucket currently being drained is kept heap-ordered. Far-future
// events sit in an overflow list until the window drains, at which
// point the window re-anchors and re-tunes its width to the overflow's
// span — so sparse tails (RTO backstops a millisecond out) cost nothing
// until their time comes.
//
// The pop order is exactly Event.Before — identical to Heap — which the
// scheduler-equivalence property test pins down; engines backed by
// either scheduler produce byte-identical simulations.
type Calendar struct {
	nbuck   int
	buckets [][]*Event

	// Active window: buckets[i] spans
	// [winStart + i*width, winStart + (i+1)*width).
	width    Time
	winEnd   Time
	cur      int        // bucket being drained (-1 before the first)
	curStart Time       // start time of bucket cur's span
	curq     eventQueue // bucket cur, heapified at activation
	ringLive int        // events in buckets after cur

	overflow     []*Event // events at/after winEnd, unordered
	ofMin, ofMax Time

	total  int
	active bool
}

// calendarBuckets is the fixed bucket count. Refills re-tune the bucket
// width to span the whole overflow, so the count only bounds how finely
// one window subdivides; dense buckets degrade gracefully to per-bucket
// heaps.
const calendarBuckets = 2048

// NewCalendar returns an empty calendar scheduler.
func NewCalendar() *Calendar {
	return &Calendar{nbuck: calendarBuckets, buckets: make([][]*Event, calendarBuckets)}
}

// Push implements Scheduler.
func (c *Calendar) Push(ev *Event) {
	c.total++
	ev.index = -1
	if !c.active || ev.at >= c.winEnd {
		if len(c.overflow) == 0 || ev.at < c.ofMin {
			c.ofMin = ev.at
		}
		if len(c.overflow) == 0 || ev.at > c.ofMax {
			c.ofMax = ev.at
		}
		c.overflow = append(c.overflow, ev)
		return
	}
	if ev.at < c.curStart+c.width {
		// The event lands in (or before) the bucket being drained; the
		// per-bucket heap keeps Before order exact even when the clock
		// sits below curStart.
		heap.Push(&c.curq, ev)
		return
	}
	idx := c.cur + int((ev.at-c.curStart)/c.width)
	c.buckets[idx] = append(c.buckets[idx], ev)
	c.ringLive++
}

// Pop implements Scheduler.
func (c *Calendar) Pop() *Event {
	ev := c.ensure()
	if ev == nil {
		return nil
	}
	heap.Pop(&c.curq)
	c.total--
	return ev
}

// Peek implements Scheduler.
func (c *Calendar) Peek() *Event { return c.ensure() }

// Remove implements Scheduler: the calendar has no per-event locator,
// so cancelled events stay queued as tombstones and are discarded when
// popped.
func (c *Calendar) Remove(ev *Event) bool { return false }

// Len implements Scheduler.
func (c *Calendar) Len() int { return c.total }

// ensure activates buckets until the earliest pending event heads the
// current bucket's heap, refilling the window from overflow when the
// whole window has drained.
func (c *Calendar) ensure() *Event {
	for {
		if len(c.curq) > 0 {
			return c.curq[0]
		}
		if c.ringLive > 0 {
			// Hand the drained bucket's backing array back before
			// activating the next nonempty bucket.
			if c.cur >= 0 && c.buckets[c.cur] == nil {
				c.buckets[c.cur] = c.curq[:0]
			}
			for {
				c.cur++
				c.curStart += c.width
				if len(c.buckets[c.cur]) > 0 {
					break
				}
			}
			c.curq = eventQueue(c.buckets[c.cur])
			c.buckets[c.cur] = nil
			c.ringLive -= len(c.curq)
			heap.Init(&c.curq)
			continue
		}
		if len(c.overflow) == 0 {
			return nil
		}
		c.refill()
	}
}

// refill re-anchors the window at the overflow's earliest event and
// re-tunes the bucket width so the window spans the whole overflow,
// then redistributes every overflowed event into its bucket.
func (c *Calendar) refill() {
	old := c.overflow
	span := c.ofMax - c.ofMin + 1
	c.width = span/Time(c.nbuck) + 1
	winStart := c.ofMin
	c.winEnd = winStart + c.width*Time(c.nbuck)
	c.cur = -1
	c.curStart = winStart - c.width
	c.curq = c.curq[:0]
	c.overflow = nil
	c.ringLive = 0
	for _, ev := range old {
		idx := int((ev.at - winStart) / c.width)
		c.buckets[idx] = append(c.buckets[idx], ev)
	}
	c.ringLive = len(old)
	c.active = true
}
