package sim

import (
	"testing"
)

// Two engines exchanging timed messages through epoch barriers must
// deliver every message at its exact virtual time, in order, regardless
// of which epoch it was produced in.
func TestShardGroupExchange(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	const lookahead = 100 * Nanosecond

	type msg struct {
		at  Time
		val int
	}
	var outbox []msg // filled on a's goroutine, drained at barriers
	var delivered []msg

	// a emits a message every 37ns; each arrives at b lookahead later
	// (b replies by emitting nothing — one-directional suffices here).
	for i := 0; i < 50; i++ {
		i := i
		at := Time(i) * 37 * Nanosecond
		a.At(at, func() {
			outbox = append(outbox, msg{at: a.Now() + lookahead, val: i})
		})
	}
	// b also has sparse local events far apart, so the event-driven
	// epoch skip gets exercised.
	bLocal := 0
	b.At(5*Microsecond, func() { bLocal++ })

	g := &ShardGroup{
		Engines:   []*Engine{a, b},
		Lookahead: lookahead,
		Exchange: func(now Time) {
			for _, m := range outbox {
				m := m
				if m.at < now {
					t.Fatalf("message for %v exchanged after the barrier at %v", m.at, now)
				}
				b.At(m.at, func() {
					delivered = append(delivered, msg{b.Now(), m.val})
				})
			}
			outbox = outbox[:0]
		},
	}
	g.RunUntil(10 * Microsecond)

	if len(delivered) != 50 {
		t.Fatalf("delivered %d messages, want 50", len(delivered))
	}
	for i, m := range delivered {
		want := Time(i)*37*Nanosecond + lookahead
		if m.val != i || m.at != want {
			t.Fatalf("delivery %d = (%v, %d), want (%v, %d)", i, m.at, m.val, want, i)
		}
	}
	if bLocal != 1 {
		t.Fatal("b's local event did not fire")
	}
	if a.Now() != 10*Microsecond || b.Now() != 10*Microsecond {
		t.Fatalf("clocks at %v/%v, want both at 10us", a.Now(), b.Now())
	}
}

// A single-engine group degrades to plain RunUntil plus one Exchange.
func TestShardGroupSingle(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(Microsecond, func() { fired = true })
	barriers := 0
	g := &ShardGroup{Engines: []*Engine{e}, Lookahead: Nanosecond,
		Exchange: func(Time) { barriers++ }}
	g.RunUntil(2 * Microsecond)
	if !fired || barriers != 1 || e.Now() != 2*Microsecond {
		t.Fatalf("fired=%v barriers=%d now=%v", fired, barriers, e.Now())
	}
}
