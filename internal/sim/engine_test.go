package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order at %d: %v", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(Microsecond, tick)
		}
	}
	e.After(Microsecond, tick)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 10*Microsecond {
		t.Fatalf("Now = %v, want 10us", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(Microsecond, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []Timer
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(Time(i)*Microsecond, func() { got = append(got, i) }))
	}
	e.Cancel(evs[7])
	e.Cancel(evs[13])
	e.Run()
	if len(got) != 18 {
		t.Fatalf("fired %d events, want 18", len(got))
	}
	for _, v := range got {
		if v == 7 || v == 13 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 1; i <= 5; i++ {
		i := i
		e.At(Time(i)*Millisecond, func() { got = append(got, i) })
	}
	e.RunUntil(3 * Millisecond)
	if len(got) != 3 {
		t.Fatalf("fired %d events by 3ms, want 3", len(got))
	}
	if e.Now() != 3*Millisecond {
		t.Fatalf("Now = %v, want 3ms", e.Now())
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("fired %d events total, want 5", len(got))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i)*Microsecond, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4 (Stop should halt the loop)", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Microsecond, func() {})
}

// Property: for any set of random timestamps, the engine fires them in
// nondecreasing time order and ends with the clock at the max timestamp.
func TestEngineOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		if len(stamps) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s) * Nanosecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(stamps))
		for i, s := range stamps {
			want[i] = Time(s) * Nanosecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never fires the cancelled events
// and always fires exactly the rest.
func TestEngineCancelProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n%64) + 1
		firedSet := make(map[int]bool)
		evs := make([]Timer, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = e.At(Time(rng.Intn(1000))*Nanosecond, func() { firedSet[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < total; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < total; i++ {
			if cancelled[i] && firedSet[i] {
				return false
			}
			if !cancelled[i] && !firedSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRateExactness(t *testing.T) {
	cases := []struct {
		r    Rate
		want Time
	}{
		{400 * Gbps, 20 * Picosecond},
		{100 * Gbps, 80 * Picosecond},
		{40 * Gbps, 200 * Picosecond},
		{25 * Gbps, 320 * Picosecond},
		{10 * Gbps, 800 * Picosecond},
		{Gbps, 8 * Nanosecond},
	}
	for _, c := range cases {
		if got := c.r.PsPerByte(); got != c.want {
			t.Errorf("PsPerByte(%v) = %v, want %v", c.r, got, c.want)
		}
	}
	// A 1000-byte packet at 100 Gbps takes exactly 80 ns.
	if got := (100 * Gbps).TxTime(1000); got != 80*Nanosecond {
		t.Errorf("TxTime(1000 @100G) = %v, want 80ns", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{80 * Nanosecond, "80ns"},
		{12500 * Nanosecond, "12.5us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-5 * Microsecond, "-5us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	if got := (100 * Gbps).String(); got != "100Gbps" {
		t.Errorf("got %q", got)
	}
	if got := (40 * Mbps).String(); got != "40Mbps" {
		t.Errorf("got %q", got)
	}
}

func TestNewRNGDeterminism(t *testing.T) {
	a := NewRNG(1, "hosts")
	b := NewRNG(1, "hosts")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+tag produced different streams")
		}
	}
	c := NewRNG(1, "switches")
	d := NewRNG(2, "hosts")
	if a.Uint64() == c.Uint64() && a.Uint64() == d.Uint64() {
		t.Fatal("distinct tags/seeds produced identical streams (suspicious)")
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Nanosecond, func() {})
		e.Step()
	}
}
