package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The pooled-Event ABA regression: a handle whose event has fired (and
// whose Event struct was reused for an unrelated callback) must not be
// able to cancel the reused event.
func TestCancelStaleHandleABA(t *testing.T) {
	for _, mk := range []func() *Engine{
		NewEngine, // 4-ary heap default
		func() *Engine { return NewEngineWith(NewHeap()) },
		func() *Engine { return NewEngineWith(NewCalendar()) },
	} {
		e := mk()
		stale := e.At(Microsecond, func() {})
		e.Run() // fires; the Event returns to the freelist

		fired := false
		fresh := e.At(2*Microsecond, func() { fired = true }) // reuses the pooled Event
		e.Cancel(stale)                                       // stale handle: must be a no-op
		if fresh.Armed() != true {
			t.Fatal("fresh timer disarmed by a stale handle")
		}
		e.Run()
		if !fired {
			t.Fatal("event cancelled through a stale handle to its reused Event")
		}
		if fresh.Armed() {
			t.Fatal("fired timer still reports armed")
		}
	}
}

// A handle taken before an event fires must also be inert afterwards,
// even when no reuse happened yet.
func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	h := e.At(Microsecond, func() {})
	e.Run()
	e.Cancel(h) // no-op; must not corrupt the freelist
	n := 0
	e.At(2*Microsecond, func() { n++ })
	e.At(3*Microsecond, func() { n++ })
	e.Run()
	if n != 2 {
		t.Fatalf("fired %d events after stale cancel, want 2", n)
	}
}

// Property: under any random mix of keyed schedules, cancels, and
// engine checkpoint/rollback cycles, engines backed by the binary heap
// (the reference), the 4-ary heap (the default), and the calendar
// queue fire exactly the same (time, key, order) sequence. This is the
// scheduler-equivalence contract the sharded runner's byte-identical
// results build on; the canonical key is drawn from all three bands
// (ordinary 0, wire keys, arrival keys) with dense same-timestamp
// ties, and the rollback leg drives each scheduler's Do (snapshot
// walk) and Reset+Push (restore) paths mid-stream.
func TestSchedulerEquivalence(t *testing.T) {
	type fireRec struct {
		at Time
		id int
	}
	keys := []uint64{0, 0, 1, 2, 7, 40, ArrivalKey(0), ArrivalKey(3)}
	run := func(mk func() *Engine, seed int64, n int) []fireRec {
		rng := rand.New(rand.NewSource(seed))
		e := mk()
		var fired []fireRec
		var timers []Timer
		id := 0
		// Seed events; each fired event may reschedule and cancel.
		var schedule func(at Time)
		schedule = func(at Time) {
			me := id
			id++
			timers = append(timers, e.AtKey(at, keys[rng.Intn(len(keys))], func() {
				fired = append(fired, fireRec{e.Now(), me})
				// Reschedule a couple of follow-ups with varied gaps,
				// including zero-gap ties and far-future tails.
				if id < n {
					gaps := []Time{0, Time(rng.Intn(5)) * Nanosecond,
						Time(rng.Intn(1000)) * Nanosecond,
						Time(rng.Intn(100)) * Microsecond}
					schedule(e.Now() + gaps[rng.Intn(len(gaps))])
				}
				// Randomly cancel an old handle (often already fired —
				// exercising stale-handle safety on every scheduler; the
				// heaps remove tied events eagerly, the calendar leaves
				// tombstones, and the fire order must agree anyway).
				if len(timers) > 0 && rng.Intn(3) == 0 {
					e.Cancel(timers[rng.Intn(len(timers))])
				}
			}))
		}
		for i := 0; i < 8; i++ {
			schedule(Time(rng.Intn(2000)) * Nanosecond)
		}
		// Run in bounded slices with a checkpoint/rollback cycle between
		// them: take a snapshot, run ahead a window, roll back (discarding
		// the speculative firings), and replay the same window for keeps.
		// The replayed sequence must be what a straight run produces, for
		// every scheduler — the restore path re-pushes the pending set in
		// arbitrary Do order, so this catches any ordering state a
		// scheduler fails to rebuild.
		for e.Pending() > 0 {
			e.Checkpoint()
			window := e.Now() + Time(1+rng.Intn(3000))*Nanosecond
			mark := len(fired)
			savedID, savedTimers := id, len(timers)
			e.RunUntil(window)
			fired = fired[:mark] // discard the speculative leg
			id, timers = savedID, timers[:savedTimers]
			e.Rollback()
			e.RunUntil(window) // replay for keeps
		}
		return fired
	}

	f := func(seed int64) bool {
		n := 400
		ref := run(func() *Engine { return NewEngineWith(NewHeap()) }, seed, n)
		for _, other := range []struct {
			name string
			mk   func() *Engine
		}{
			{"heap4", NewEngine},
			{"calendar", func() *Engine { return NewEngineWith(NewCalendar()) }},
		} {
			got := run(other.mk, seed, n)
			if len(got) != len(ref) {
				t.Logf("seed %d: heap fired %d, %s fired %d", seed, len(ref), other.name, len(got))
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Logf("seed %d: divergence at %d: heap %v %s %v", seed, i, ref[i], other.name, got[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Directed calendar coverage: many events in one bucket, ties, window
// refills, and cancels interleaved with pops.
func TestCalendarDirected(t *testing.T) {
	e := NewEngineWith(NewCalendar())
	var got []int
	// Dense cluster now, sparse tail later (forces at least two window
	// refills through the overflow).
	for i := 0; i < 1000; i++ {
		i := i
		e.At(Time(i%7)*Nanosecond, func() { got = append(got, i) })
	}
	tail := e.At(5*Millisecond, func() { got = append(got, -1) })
	e.At(9*Millisecond, func() { got = append(got, -2) })
	e.Cancel(tail)
	e.Run()
	if len(got) != 1001 {
		t.Fatalf("fired %d events, want 1001", len(got))
	}
	if got[1000] != -2 {
		t.Fatalf("tail event fired out of order: %d", got[1000])
	}
	// Ties must fire in scheduling order within each timestamp.
	seen := map[int][]int{}
	for _, v := range got[:1000] {
		k := v % 7
		seen[k] = append(seen[k], v)
	}
	for k, vs := range seen {
		for i := 1; i < len(vs); i++ {
			if vs[i] < vs[i-1] {
				t.Fatalf("ties at %dns fired out of scheduling order: %v", k, vs)
			}
		}
	}
}

// Directed canonical-rank coverage: many events tied at one timestamp
// with interleaved keys; both schedulers must fire them in (key, seq)
// order — ordinary key-0 events first in scheduling order, then wire
// keys ascending, then arrival keys — and removing a tied event (eager
// extraction on the heap, a tombstone on the calendar) must not perturb
// its neighbors.
func TestCanonicalKeyTieOrder(t *testing.T) {
	for _, mk := range []struct {
		name string
		fn   func() *Engine
	}{
		{"heap4", NewEngine},
		{"heap", func() *Engine { return NewEngineWith(NewHeap()) }},
		{"calendar", func() *Engine { return NewEngineWith(NewCalendar()) }},
	} {
		e := mk.fn()
		const at = Microsecond
		var got []int
		rec := func(id int) func() { return func() { got = append(got, id) } }
		// Scheduling order deliberately scrambles key order.
		e.AtKey(at, 5, rec(50))             // wire key 5
		e.AtKey(at, 0, rec(1))              // ordinary
		e.AtKey(at, ArrivalKey(1), rec(91)) // arrival gen 1
		e.AtKey(at, 2, rec(20))             // wire key 2
		victim := e.AtKey(at, 2, rec(21))   // wire key 2, later seq — removed below
		e.AtKey(at, 0, rec(2))              // ordinary, later seq
		e.AtKey(at, ArrivalKey(0), rec(90)) // arrival gen 0
		e.AtKey(at, 2, rec(22))             // wire key 2, latest seq
		e.Cancel(victim)
		e.Run()
		want := []int{1, 2, 20, 22, 50, 90, 91}
		if len(got) != len(want) {
			t.Fatalf("%s: fired %v, want %v", mk.name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: fired %v, want %v", mk.name, got, want)
			}
		}
	}
}

func BenchmarkCalendarScheduleFire(b *testing.B) {
	e := NewEngineWith(NewCalendar())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Nanosecond, func() {})
		e.Step()
	}
}

// BenchmarkSchedulers100K measures push+pop through a standing set of
// 100K pending events — the regime the calendar queue targets.
func BenchmarkSchedulers100K(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() *Engine
	}{
		{"heap4", NewEngine},
		{"heap", func() *Engine { return NewEngineWith(NewHeap()) }},
		{"calendar", func() *Engine { return NewEngineWith(NewCalendar()) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			e := tc.mk()
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 100_000; i++ {
				e.At(Time(rng.Intn(1_000_000))*Nanosecond, func() {})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(Time(rng.Intn(1_000_000))*Nanosecond, func() {})
				e.Step()
			}
		})
	}
}
