package sim

import (
	"testing"
)

// Engine.Checkpoint/Rollback must replay the exact firing sequence —
// same times, same order — on both schedulers, including when the
// workload reschedules and cancels through pre-checkpoint Timer
// handles (the pointer-stability contract).
func TestEngineCheckpointRollback(t *testing.T) {
	type fireRec struct {
		at Time
		id int
	}
	for _, mk := range []struct {
		name string
		fn   func() *Engine
	}{
		{"heap", NewEngine},
		{"calendar", func() *Engine { return NewEngineWith(NewCalendar()) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			// Deterministic self-rescheduling workload: no runtime
			// randomness, so a rolled-back span replays identically.
			gaps := []Time{0, 3 * Nanosecond, 111 * Nanosecond, 7 * Microsecond}
			build := func(e *Engine) (run func(until Time), state *struct {
				fired  []fireRec
				timers []Timer
				nextID int
			}) {
				st := &struct {
					fired  []fireRec
					timers []Timer
					nextID int
				}{}
				var schedule func(at Time)
				schedule = func(at Time) {
					id := st.nextID
					st.nextID++
					st.timers = append(st.timers, e.AtKey(at, uint64(id%5), func() {
						st.fired = append(st.fired, fireRec{e.Now(), id})
						if st.nextID < 600 {
							schedule(e.Now() + gaps[id%len(gaps)])
							if id%3 == 0 {
								schedule(e.Now() + gaps[(id+1)%len(gaps)])
							}
						}
						if id%4 == 1 {
							e.Cancel(st.timers[id/2])
						}
					}))
				}
				for i := 0; i < 6; i++ {
					schedule(Time(i*i) * 50 * Nanosecond)
				}
				return e.RunUntil, st
			}

			// Reference: uninterrupted run.
			re := mk.fn()
			runRef, ref := build(re)
			runRef(5 * Millisecond)

			// Checkpoint mid-run, run on, roll back, run again: both
			// tails must equal each other and the reference.
			e := mk.fn()
			runE, st := build(e)
			runE(Microsecond)
			e.Checkpoint()
			savedFired, savedTimers, savedID := len(st.fired), len(st.timers), st.nextID

			runE(5 * Millisecond)
			tail1 := append([]fireRec(nil), st.fired[savedFired:]...)

			e.Rollback()
			st.fired = st.fired[:savedFired]
			st.timers = st.timers[:savedTimers]
			st.nextID = savedID
			runE(5 * Millisecond)
			tail2 := st.fired[savedFired:]

			if len(tail1) == 0 {
				t.Fatal("no events fired after the checkpoint — test is vacuous")
			}
			if len(tail1) != len(tail2) {
				t.Fatalf("replay fired %d events, first run fired %d", len(tail2), len(tail1))
			}
			for i := range tail1 {
				if tail1[i] != tail2[i] {
					t.Fatalf("replay diverged at %d: %v vs %v", i, tail2[i], tail1[i])
				}
			}
			if len(st.fired) != len(ref.fired) {
				t.Fatalf("rolled-back run fired %d events, reference fired %d", len(st.fired), len(ref.fired))
			}
			for i := range ref.fired {
				if st.fired[i] != ref.fired[i] {
					t.Fatalf("rolled-back run diverged from reference at %d: %v vs %v", i, st.fired[i], ref.fired[i])
				}
			}
		})
	}
}

// specMsg is one cross-shard message of the speculative-group tests.
type specMsg struct {
	at  Time
	val int
}

// specWorld is a minimal two-shard world for ShardGroup speculation:
// engine a produces messages for engine b. It implements Speculator
// (per-shard checkpoint of engine + harness state, staged exchange)
// and provides the conservative Exchange for fallback epochs.
type specWorld struct {
	a, b      *Engine
	outbox    []specMsg
	staged    []specMsg
	delivered []specMsg
	savedOut  int
	savedDel  int
}

func (w *specWorld) deliver(m specMsg) {
	w.b.At(m.at, func() {
		w.delivered = append(w.delivered, specMsg{w.b.Now(), m.val})
	})
}

func (w *specWorld) Exchange(now Time) {
	for _, m := range w.outbox {
		w.deliver(m)
	}
	w.outbox = w.outbox[:0]
}

func (w *specWorld) Save(i int) {
	if i == 0 {
		w.a.Checkpoint()
		w.savedOut = len(w.outbox)
	} else {
		w.b.Checkpoint()
		w.savedDel = len(w.delivered)
	}
}

func (w *specWorld) Restore(i int) {
	if i == 0 {
		w.a.Rollback()
		w.outbox = w.outbox[:w.savedOut]
	} else {
		w.b.Rollback()
		w.delivered = w.delivered[:w.savedDel]
	}
}

func (w *specWorld) Stage() (Time, bool) {
	earliest, any := Time(0), false
	for _, m := range w.outbox {
		if !any || m.at < earliest {
			earliest = m.at
		}
		any = true
	}
	w.staged = append(w.staged, w.outbox...)
	w.outbox = w.outbox[:0]
	return earliest, any
}

func (w *specWorld) Commit() {
	for _, m := range w.staged {
		w.deliver(m)
	}
	w.staged = w.staged[:0]
}

func (w *specWorld) Discard() { w.staged = w.staged[:0] }

// runSpecWorld builds the two-engine world (50 sends, 37ns apart, each
// arriving extra past the lookahead bound) and runs it to 10us.
func runSpecWorld(t *testing.T, speculate bool, window int, extra func(i int) Time) (*specWorld, SyncStats) {
	t.Helper()
	const lookahead = 100 * Nanosecond
	w := &specWorld{a: NewEngine(), b: NewEngine()}
	for i := 0; i < 50; i++ {
		i := i
		at := Time(i) * 37 * Nanosecond
		w.a.At(at, func() {
			w.outbox = append(w.outbox, specMsg{at: w.a.Now() + lookahead + extra(i), val: i})
		})
	}
	g := &ShardGroup{
		Engines:   []*Engine{w.a, w.b},
		Lookahead: lookahead,
		Exchange:  w.Exchange,
		Speculate: speculate,
		Window:    window,
		Spec:      w,
	}
	if err := g.RunUntil(10 * Microsecond); err != nil {
		t.Fatal(err)
	}
	return w, g.Stats
}

// With every arrival far past the speculation window, every bet is
// safe: the run must commit speculative epochs, never roll back, and
// deliver the exact conservative sequence.
func TestShardGroupSpeculativeCommits(t *testing.T) {
	farOut := func(i int) Time { return Time(1200+i) * Nanosecond }
	ref, _ := runSpecWorld(t, false, 0, farOut)
	got, stats := runSpecWorld(t, true, 8, farOut)
	if stats.SpecCommits == 0 {
		t.Fatalf("no speculative commits: %+v", stats)
	}
	if stats.SpecRollbacks != 0 {
		t.Fatalf("safe world rolled back: %+v", stats)
	}
	compareDeliveries(t, got.delivered, ref.delivered)
}

// With arrivals landing just past the lookahead bound — inside any
// speculated horizon — bets lose: the group must roll back, replay
// conservatively, adapt, and still deliver the exact sequence.
func TestShardGroupSpeculativeRollbacks(t *testing.T) {
	near := func(i int) Time { return Time(i%3) * Nanosecond }
	ref, _ := runSpecWorld(t, false, 0, near)
	got, stats := runSpecWorld(t, true, 8, near)
	if stats.SpecRollbacks == 0 {
		t.Fatalf("hostile world never rolled back: %+v", stats)
	}
	compareDeliveries(t, got.delivered, ref.delivered)
}

func compareDeliveries(t *testing.T, got, want []specMsg) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %v, want %v", i, got[i], want[i])
		}
	}
	if len(want) != 50 {
		t.Fatalf("reference delivered %d messages, want 50", len(want))
	}
}

// Misconfigured groups must report errors before running anything —
// the former panics.
func TestShardGroupConfigErrors(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	for name, g := range map[string]*ShardGroup{
		"no engines":       {},
		"nil engine":       {Engines: []*Engine{a, nil}, Lookahead: Nanosecond},
		"duplicate engine": {Engines: []*Engine{a, a}, Lookahead: Nanosecond},
		"zero lookahead":   {Engines: []*Engine{a, b}},
		"spec without speculator": {Engines: []*Engine{a, b}, Lookahead: Nanosecond,
			Speculate: true},
	} {
		if err := g.RunUntil(Microsecond); err == nil {
			t.Errorf("%s: RunUntil returned nil error", name)
		}
	}
	// A valid group still runs.
	ok := &ShardGroup{Engines: []*Engine{a, b}, Lookahead: Nanosecond}
	if err := ok.RunUntil(Microsecond); err != nil {
		t.Errorf("valid group errored: %v", err)
	}
}

// The calendar scheduler must not allocate in steady state: window
// refills ping-pong the overflow arrays and bucket activation swaps
// backing arrays, so a stable workload reuses everything.
func TestCalendarSteadyStateAllocs(t *testing.T) {
	e := NewEngineWith(NewCalendar())
	spread := []Time{0, 3 * Nanosecond, 40 * Nanosecond, 2 * Microsecond, 800 * Microsecond}
	i := 0
	op := func() {
		for k := 0; k < 512; k++ {
			e.After(spread[i%len(spread)], func() {})
			i++
			e.Step()
		}
	}
	for warm := 0; warm < 50; warm++ {
		op()
	}
	per := testing.AllocsPerRun(100, op) / 512
	if per > 0.05 {
		t.Fatalf("calendar steady state allocates %.3f allocs/op, want ~0", per)
	}
}
