package sim

import (
	"sync"
	"testing"
)

func TestMeterCountsOwnGoroutine(t *testing.T) {
	m := AttachMeter()
	e1 := NewEngine()
	e2 := NewEngine()
	fired := 0
	e1.After(1, func() { fired++ })
	e1.After(2, func() { fired++ })
	e2.After(1, func() { fired++ })
	e1.Run()
	e2.Run()
	m.Detach()
	if fired != 3 {
		t.Fatalf("fired = %d", fired)
	}
	if m.Engines() != 2 {
		t.Fatalf("Engines = %d, want 2", m.Engines())
	}
	if m.Events() != 3 {
		t.Fatalf("Events = %d, want 3", m.Events())
	}
	// Engines created after Detach are not counted.
	NewEngine()
	if m.Engines() != 2 {
		t.Fatal("Detach did not stop collection")
	}
}

func TestMeterIsolatesGoroutines(t *testing.T) {
	const workers = 4
	var wg sync.WaitGroup
	counts := make([]int, workers)
	events := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := AttachMeter()
			defer m.Detach()
			for i := 0; i <= w; i++ {
				e := NewEngine()
				e.After(1, func() {})
				e.Run()
			}
			counts[w] = m.Engines()
			events[w] = m.Events()
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if counts[w] != w+1 {
			t.Fatalf("worker %d saw %d engines, want %d", w, counts[w], w+1)
		}
		if events[w] != uint64(w+1) {
			t.Fatalf("worker %d saw %d events, want %d", w, events[w], w+1)
		}
	}
}

func TestMeterUnmeteredFastPath(t *testing.T) {
	// No meter attached: NewEngine must work and observe nothing.
	e := NewEngine()
	e.After(1, func() {})
	e.Run()
	if e.Fired() != 1 {
		t.Fatal("engine broken without meter")
	}
}
