package sim

import "math/rand"

// NewRNG returns a deterministic PRNG for a simulation component.
// Components derive their stream from a scenario seed plus a distinct
// component tag so that adding a component never perturbs the draws seen
// by existing ones.
func NewRNG(seed int64, tag string) *rand.Rand {
	h := uint64(seed)
	for _, c := range tag {
		h = (h ^ uint64(c)) * 1099511628211 // FNV-1a step
	}
	// splitmix64 finalizer to decorrelate nearby seeds.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}
