package fabric

import (
	"testing"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// Directed coverage for demand-driven (lazy) port service: a port must
// schedule engine events only while it has frames to move, and the
// same-picosecond races between the deferred kick, user enqueues, and
// PFC pause/resume must resolve to the exact timing the eager
// tx-complete chain produced.

// A drained port leaves nothing in the engine: one packet costs exactly
// one scheduled event (the wire delivery) — serialization is inline at
// enqueue time and no tx-complete or idle-poll event survives the
// drain.
func TestLazyPortNoIdleEvents(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ab.Enqueue(data(1, 1, 2, 0, 1064), -1)
	if got := eng.Pending(); got != 1 {
		t.Fatalf("pending after enqueue = %d, want 1 (wire delivery only)", got)
	}
	eng.Run()
	if len(b.got) != 1 {
		t.Fatalf("arrivals = %d, want 1", len(b.got))
	}
	if got := eng.Fired(); got != 1 {
		t.Fatalf("events fired = %d, want 1", got)
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}

// Back-to-back frames through the deferred kick: the second frame's
// serialization must begin exactly at the first's busyUntil — lazy
// service may not open an idle gap on a backlogged port.
func TestLazyKickBackToBack(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ab.Enqueue(data(1, 1, 2, 0, 1064), -1)
	ab.Enqueue(data(1, 1, 2, 1000, 1064), -1)
	eng.Run()
	ser := sim.Gbps.TxTime(1064)
	if len(b.got) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(b.got))
	}
	if b.got[0].at != ser || b.got[1].at != 2*ser {
		t.Fatalf("arrivals at %v, %v; want %v, %v", b.got[0].at, b.got[1].at, ser, 2*ser)
	}
}

// An enqueue landing at exactly busyUntil on a port whose queue just
// drained must serialize immediately (now >= busyUntil) — no deferred
// kick exists to beat it, and no idle gap may open.
func TestEnqueueAtBusyUntilTie(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ser := sim.Gbps.TxTime(1064)
	ab.Enqueue(data(1, 1, 2, 0, 1064), -1)
	eng.At(ser, func() { ab.Enqueue(data(1, 1, 2, 1000, 1064), -1) })
	eng.Run()
	if len(b.got) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(b.got))
	}
	if b.got[1].at != 2*ser {
		t.Fatalf("second arrival at %v, want %v (back-to-back)", b.got[1].at, 2*ser)
	}
}

// The redundant-kick cancellation: a kick is armed for a queued frame,
// but an earlier-sequenced event at the same picosecond enqueues and
// serializes first. The armed kick must be cancelled, not left to fire
// mid-frame — frames stay strictly FIFO at exact serialization
// boundaries.
func TestStaleKickCancelledAtTie(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ser := sim.Gbps.TxTime(1064)
	// Scheduled before the enqueues, so at t=ser this event sequences
	// ahead of the deferred kick armed during the first serialization.
	eng.At(ser, func() { ab.Enqueue(data(1, 1, 2, 2000, 1064), -1) })
	ab.Enqueue(data(1, 1, 2, 0, 1064), -1)
	ab.Enqueue(data(1, 1, 2, 1000, 1064), -1)
	eng.Run()
	if len(b.got) != 3 {
		t.Fatalf("arrivals = %d, want 3", len(b.got))
	}
	for i, want := range []sim.Time{ser, 2 * ser, 3 * ser} {
		if b.got[i].at != want {
			t.Fatalf("arrival %d at %v, want %v (got %v)", i, b.got[i].at, want, b.got)
		}
	}
	// FIFO: the tie-enqueued frame (seq 2000) serializes last.
	if b.got[2].p.Seq != 2000 {
		t.Fatalf("tie-enqueued frame out of order: seqs %d %d %d",
			b.got[0].p.Seq, b.got[1].p.Seq, b.got[2].p.Seq)
	}
}

// A kick that fires into a paused priority does not serialize and does
// not re-arm; the later resume must restart service itself, even when
// it lands after the port has long gone idle.
func TestPausedKickThenLateResume(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ser := sim.Gbps.TxTime(1064)
	ab.Enqueue(data(1, 1, 2, 0, 1064), -1)
	ab.Enqueue(data(1, 1, 2, 1000, 1064), -1)
	ab.SetPaused(PrioData, true) // the kick at ser will find data paused
	eng.At(3*ser, func() { ab.SetPaused(PrioData, false) })
	eng.Run()
	if len(b.got) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(b.got))
	}
	if b.got[1].at != 4*ser {
		t.Fatalf("post-resume arrival at %v, want %v", b.got[1].at, 4*ser)
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}

// Resume at exactly busyUntil: SetPaused(false) lands at the same
// picosecond the in-flight frame completes. The resume kick sees
// now >= busyUntil and serializes immediately — no idle gap, no
// duplicate kick left armed.
func TestResumeAtBusyUntilTie(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ser := sim.Gbps.TxTime(1064)
	ab.Enqueue(data(1, 1, 2, 0, 1064), -1) // serializing until ser
	ab.Enqueue(data(1, 1, 2, 1000, 1064), -1)
	ab.SetPaused(PrioData, true)
	eng.At(ser, func() { ab.SetPaused(PrioData, false) })
	eng.Run()
	if len(b.got) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(b.got))
	}
	if b.got[1].at != 2*ser {
		t.Fatalf("resumed arrival at %v, want %v (no idle gap)", b.got[1].at, 2*ser)
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}

// TotalQueueBytes is now a running sum; it must track the per-priority
// breakdown through enqueues, serializations and a checkpoint/rollback
// cycle.
func TestTotalQueueBytesRunningSum(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	check := func(label string) {
		t.Helper()
		var want int64
		for prio := 0; prio < NumPrio; prio++ {
			want += ab.QueueBytes(uint8(prio))
		}
		if got := ab.TotalQueueBytes(); got != want {
			t.Fatalf("%s: TotalQueueBytes = %d, per-prio sum = %d", label, got, want)
		}
	}
	ab.Enqueue(data(1, 1, 2, 0, 1064), -1) // serializes inline, not queued
	ab.Enqueue(data(1, 1, 2, 1000, 1064), -1)
	ab.Enqueue(&packet.Packet{Type: packet.Ack, Src: 1, Dst: 2, Prio: PrioCtrl, Size: 64}, -1)
	check("after enqueues")
	queued := ab.TotalQueueBytes()
	eng.Checkpoint()
	ab.Checkpoint()
	eng.Run()
	check("after drain")
	if got := ab.TotalQueueBytes(); got != 0 {
		t.Fatalf("drained TotalQueueBytes = %d, want 0", got)
	}
	eng.Rollback()
	ab.Rollback()
	check("after rollback")
	if got := ab.TotalQueueBytes(); got != queued {
		t.Fatalf("rolled-back TotalQueueBytes = %d, want %d", got, queued)
	}
	eng.Run()
	if len(b.got) != 2*3 {
		t.Fatalf("arrivals after replay = %d, want 6 (3 + replayed 3)", len(b.got))
	}
}
