package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hpcc/internal/packet"
)

func TestFifoBasics(t *testing.T) {
	var f fifo[entry]
	if !f.empty() || f.len() != 0 {
		t.Fatal("new fifo not empty")
	}
	p1 := &packet.Packet{ID: 1}
	p2 := &packet.Packet{ID: 2}
	f.push(entry{p1, 0})
	f.push(entry{p2, 1})
	if f.len() != 2 {
		t.Fatalf("len = %d", f.len())
	}
	if got := f.pop(); got.p.ID != 1 || got.ingress != 0 {
		t.Fatalf("pop 1 = %+v", got)
	}
	if got := f.pop(); got.p.ID != 2 || got.ingress != 1 {
		t.Fatalf("pop 2 = %+v", got)
	}
	if !f.empty() {
		t.Fatal("fifo not empty after draining")
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order,
// across the ring's compaction paths.
func TestFifoOrderProperty(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var q fifo[entry]
		nextPush := uint64(1)
		nextPop := uint64(1)
		for i := 0; i < int(ops); i++ {
			if q.empty() || rng.Intn(3) > 0 {
				q.push(entry{&packet.Packet{ID: nextPush}, int(nextPush)})
				nextPush++
			} else {
				e := q.pop()
				if e.p.ID != nextPop || e.ingress != int(nextPop) {
					return false
				}
				nextPop++
			}
			if q.len() != int(nextPush-nextPop) {
				return false
			}
		}
		for !q.empty() {
			if q.pop().p.ID != nextPop {
				return false
			}
			nextPop++
		}
		return nextPop == nextPush
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: compaction never loses or duplicates entries even under
// long runs that repeatedly cross the compaction threshold.
func TestFifoCompactionProperty(t *testing.T) {
	var q fifo[entry]
	id := uint64(0)
	popped := uint64(0)
	// Sawtooth: grow to 400, drain to 100, repeatedly.
	for round := 0; round < 20; round++ {
		for q.len() < 400 {
			id++
			q.push(entry{&packet.Packet{ID: id}, -1})
		}
		for q.len() > 100 {
			popped++
			if q.pop().p.ID != popped {
				t.Fatalf("round %d: out of order at %d", round, popped)
			}
		}
	}
	for !q.empty() {
		popped++
		if q.pop().p.ID != popped {
			t.Fatalf("drain: out of order at %d", popped)
		}
	}
	if popped != id {
		t.Fatalf("popped %d of %d pushed", popped, id)
	}
}
