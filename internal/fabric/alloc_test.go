package fabric

import (
	"testing"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// recyclingSink consumes arrivals back into the pool the test draws
// from, closing the packet lifecycle the way real hosts do.
type recyclingSink struct {
	id   NodeID
	pool *packet.Pool
	got  int
}

func (r *recyclingSink) ID() NodeID { return r.id }
func (r *recyclingSink) OnDequeue(p *packet.Packet, ingress int, from *Port) {
}
func (r *recyclingSink) HandleArrival(p *packet.Packet, in *Port) {
	if p.Type == packet.PFC {
		in.SetPaused(p.PFCPrio, p.PFCPause)
		r.pool.Put(p)
		return
	}
	r.got++
	r.pool.Put(p)
}

// The tentpole guarantee at the fabric layer: once the engine's event
// pool, the port FIFOs and the packet pool are warm, forwarding a
// packet through a store-and-forward INT switch (enqueue, dequeue, INT
// stamp, wire delivery, arrival) allocates nothing.
func TestForwardingHotPathAllocFree(t *testing.T) {
	pool := packet.NewPool()
	eng := sim.NewEngine()
	src := &recyclingSink{id: 1, pool: pool}
	dst := &recyclingSink{id: 2, pool: pool}
	sw := NewSwitch(eng, 100, SwitchConfig{INTEnabled: true, Pool: pool})
	ap, sa := Connect(eng, src, sw, 0, 0, 100*sim.Gbps, sim.Microsecond)
	sw.AttachPort(sa)
	sb, _ := Connect(eng, sw, dst, 1, 0, 100*sim.Gbps, sim.Microsecond)
	sw.AttachPort(sb)
	sw.InstallRoute(src.id, []int{0})
	sw.InstallRoute(dst.id, []int{1})

	const batch = 16
	send := func() {
		for i := 0; i < batch; i++ {
			p := pool.Get()
			p.Type = packet.Data
			p.FlowID = 1
			p.Src, p.Dst = 1, 2
			p.Prio = PrioData
			p.Size = 1064
			p.PayloadLen = 1000
			p.Seq = int64(i) * 1000
			ap.Enqueue(p, -1)
		}
		eng.Run()
	}
	// Warm every structure past its growth phase.
	for i := 0; i < 32; i++ {
		send()
	}

	avg := testing.AllocsPerRun(50, send)
	perPkt := avg / batch
	if perPkt > 0.05 {
		t.Fatalf("steady-state forwarding allocates %.3f allocs/packet, want ~0 (pooled packets + single-event wire)", perPkt)
	}
	if dst.got == 0 {
		t.Fatal("no packets forwarded")
	}
	if pool.Recycled() == 0 {
		t.Fatal("pool never recycled a packet")
	}
}
