package fabric

import (
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

type entry struct {
	p       *packet.Packet
	ingress int // arriving port index at the owner, -1 if locally generated
}

// wireEntry is one packet in flight on a link: the frame plus its
// (fully deterministic) arrival instant at the far end.
type wireEntry struct {
	p  *packet.Packet
	at sim.Time
}

// fifo is an amortized O(1) queue.
type fifo[T any] struct {
	buf  []T
	head int
}

//hpcclint:alloc-free
func (f *fifo[T]) push(e T) {
	f.buf = append(f.buf, e) //hpcclint:allow hotpathalloc -- ring growth is amortized; capacity is reused after pop/reset (TestForwardingHotPathAllocFree)
}

func (f *fifo[T]) pop() T {
	var zero T
	e := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head > 256 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = zero
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	return e
}

func (f *fifo[T]) peek() T { return f.buf[f.head] }

func (f *fifo[T]) empty() bool { return f.head == len(f.buf) }

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

// Port is one direction of a duplex link: the transmitter owned by a
// node. It serializes packets from strict-priority queues onto the link,
// honors per-priority PFC pause, and keeps the counters INT exposes
// (cumulative tx bytes) plus pause-time statistics.
type Port struct {
	eng   *sim.Engine //hpcclint:nosnap immutable wiring
	owner Node        //hpcclint:nosnap immutable wiring
	peer  Node        //hpcclint:nosnap immutable wiring
	// peerPort is the reverse-direction port at the peer. An arriving
	// packet is delivered as peer.HandleArrival(p, peerPort), so the
	// receiver can identify its ingress and reach back upstream (PFC).
	peerPort *Port //hpcclint:nosnap immutable wiring

	index int      //hpcclint:nosnap immutable; position in owner's port list
	rate  sim.Rate //hpcclint:nosnap immutable link config
	delay sim.Time //hpcclint:nosnap immutable link config

	// wireKey is the directed link's build-time structural ID — the
	// canonical rank class of this wire's delivery events (see
	// sim.Event.Before). topology.Builder assigns keys in Link order, so
	// simultaneous deliveries into one node fire in an order derivable
	// from the topology alone, identically on one engine or N shards.
	// Zero (hand-wired fabrics) falls back to scheduling order.
	wireKey uint64 //hpcclint:nosnap immutable build-time structural ID

	queues    [NumPrio]fifo[entry]
	qBytes    [NumPrio]int64
	totQBytes int64 // running sum of qBytes; kept so Enqueue's high-water update is O(1)
	paused    [NumPrio]bool

	// Lazy service state. The transmitter owns no standing tx-complete
	// event: busyUntil records when the frame being serialized (if any)
	// leaves the wire, and service resumes either inline — a kick at
	// now >= busyUntil serializes immediately — or through at most one
	// deferred kick armed at the frame boundary. The deferred kick is
	// armed at serialization time when more packets are already queued
	// (exactly where the eager per-packet tx-complete event used to be
	// scheduled), or by the first mid-frame Enqueue/resume when the
	// queue had drained; a busy period that ends with empty queues
	// schedules nothing at all, which eliminates up to one engine event
	// per packet at low-to-mid load.
	busyUntil sim.Time
	kickArmed bool
	kickEv    sim.Timer

	// wire holds packets whose serialization finished (or is finishing)
	// but which have not yet propagated to the peer. The link delay is
	// constant, so arrivals happen in push order: one scheduled
	// head-of-wire event suffices, re-armed as packets drain. Combined
	// with the reusable tx-complete closure below, the per-packet hot
	// path schedules no fresh closures at all.
	wire      fifo[wireEntry]
	wireArmed bool
	deliverFn func() //hpcclint:nosnap reusable closure built once at wiring time
	kickFn    func() //hpcclint:nosnap reusable closure built once at wiring time

	// remote, when set, marks this transmitter as a shard-boundary
	// port: instead of riding the local wire, a serialized packet is
	// handed to remote with its (deterministic) arrival instant, and
	// the shard exchange delivers it into the peer's engine at an epoch
	// barrier. Serialization, pacing and INT accounting stay local.
	remote func(p *packet.Packet, arrive sim.Time) //hpcclint:nosnap immutable shard wiring; the exchange buffer is checkpointed by the speculator

	txBytes uint64          // cumulative bytes fully handed to the serializer
	rxQ     [NumPrio]uint64 // cumulative bytes enqueued, per priority (INT rxRate ablation)

	// Statistics.
	pktsSent    uint64
	pauseStart  [NumPrio]sim.Time
	pausedFor   [NumPrio]sim.Time
	pauseEvents uint64
	maxQBytes   int64

	// pauseHook, if set, observes every pause/resume transition of this
	// transmitter (the observer layer's PFC event stream).
	pauseHook func(prio uint8, paused bool) //hpcclint:nosnap observer callback installed at setup

	// snap is the speculative-execution checkpoint slot (see
	// checkpoint.go); allocated lazily so non-speculative runs pay
	// nothing.
	snap *portSnap
}

// SetPauseHook installs fn to observe every PFC pause/resume transition
// applied to this port. Pass nil to remove.
func (pt *Port) SetPauseHook(fn func(prio uint8, paused bool)) { pt.pauseHook = fn }

// SetRemote marks this transmitter as a shard-boundary port: serialized
// packets are handed to fn with their arrival instant at the peer
// instead of being delivered locally. Pass nil to restore local
// delivery. Must not be called while packets are in flight on the wire.
func (pt *Port) SetRemote(fn func(p *packet.Packet, arrive sim.Time)) {
	if fn != nil && !pt.wire.empty() {
		panic("fabric: SetRemote with packets in flight")
	}
	pt.remote = fn
}

// Rebind moves the port's event scheduling onto another engine — the
// shard-partitioning step. Must happen before any traffic flows.
func (pt *Port) Rebind(eng *sim.Engine) {
	if pt.kickArmed || !pt.wire.empty() || pt.eng.Now() < pt.busyUntil {
		panic("fabric: Rebind with packets in flight")
	}
	pt.eng = eng
}

func newPort(eng *sim.Engine, owner Node, index int, rate sim.Rate, delay sim.Time) *Port {
	pt := &Port{eng: eng, owner: owner, index: index, rate: rate, delay: delay}
	pt.kickFn = func() {
		pt.kickArmed = false
		pt.kickEv = sim.Timer{}
		pt.kick()
	}
	pt.deliverFn = pt.deliver
	return pt
}

// Index returns the port's position in its owner's port list.
func (pt *Port) Index() int { return pt.index }

// SetWireKey assigns the directed link's structural ID, used as the
// canonical rank of its delivery events. The topology builder calls it
// once at build time, before any traffic flows.
func (pt *Port) SetWireKey(key uint64) { pt.wireKey = key }

// WireKey returns the directed link's structural ID (0 if unassigned).
func (pt *Port) WireKey() uint64 { return pt.wireKey }

// Rate returns the link bandwidth.
func (pt *Port) Rate() sim.Rate { return pt.rate }

// Delay returns the one-way propagation delay of the link.
func (pt *Port) Delay() sim.Time { return pt.delay }

// Peer returns the node at the far end of the link.
func (pt *Port) Peer() Node { return pt.peer }

// PeerPort returns the reverse-direction port at the peer node.
func (pt *Port) PeerPort() *Port { return pt.peerPort }

// Owner returns the node this transmitter belongs to.
func (pt *Port) Owner() Node { return pt.owner }

// QueueBytes returns the bytes currently queued at priority prio.
func (pt *Port) QueueBytes(prio uint8) int64 { return pt.qBytes[prio] }

// QueueLen returns the number of packets queued at priority prio.
func (pt *Port) QueueLen(prio uint8) int { return pt.queues[prio].len() }

// TotalQueueBytes returns the bytes queued across all priorities
// (maintained as a running sum; O(1)).
func (pt *Port) TotalQueueBytes() int64 { return pt.totQBytes }

// TxBytes returns the cumulative transmitted byte counter (the INT
// txBytes field).
func (pt *Port) TxBytes() uint64 { return pt.txBytes }

// RxQueueBytes returns the cumulative bytes ever enqueued at prio (the
// INT rxBytes counter used by the HPCC-rxRate ablation).
func (pt *Port) RxQueueBytes(prio uint8) uint64 { return pt.rxQ[prio] }

// PacketsSent returns the number of packets fully serialized.
func (pt *Port) PacketsSent() uint64 { return pt.pktsSent }

// MaxQueueBytes returns the high-water mark of total queued bytes.
func (pt *Port) MaxQueueBytes() int64 { return pt.maxQBytes }

// PauseEvents returns how many pause transitions this port received.
func (pt *Port) PauseEvents() uint64 { return pt.pauseEvents }

// PausedFor returns the cumulative time the given priority has spent
// paused, including an in-progress pause.
func (pt *Port) PausedFor(prio uint8) sim.Time {
	d := pt.pausedFor[prio]
	if pt.paused[prio] {
		d += pt.eng.Now() - pt.pauseStart[prio]
	}
	return d
}

// Paused reports whether prio is currently paused.
func (pt *Port) Paused(prio uint8) bool { return pt.paused[prio] }

// SetPaused applies a PFC pause or resume to one priority. The packet
// currently being serialized, if any, always completes (hardware cannot
// abort a frame mid-flight).
func (pt *Port) SetPaused(prio uint8, pause bool) {
	if pt.paused[prio] == pause {
		return
	}
	pt.paused[prio] = pause
	if pause {
		pt.pauseStart[prio] = pt.eng.Now()
		pt.pauseEvents++
	} else {
		pt.pausedFor[prio] += pt.eng.Now() - pt.pauseStart[prio]
		pt.kick()
	}
	if pt.pauseHook != nil {
		pt.pauseHook(prio, pause)
	}
}

// Enqueue queues p at its priority for transmission. ingress is the
// owner's port index the packet arrived on (-1 if locally generated).
//
//hpcclint:alloc-free
func (pt *Port) Enqueue(p *packet.Packet, ingress int) {
	prio := p.Prio
	pt.queues[prio].push(entry{p, ingress})
	pt.qBytes[prio] += int64(p.Size)
	pt.totQBytes += int64(p.Size)
	pt.rxQ[prio] += uint64(p.Size)
	if pt.totQBytes > pt.maxQBytes {
		pt.maxQBytes = pt.totQBytes
	}
	pt.kick()
}

// kick services the transmitter. Mid-frame (now < busyUntil) it arms at
// most one deferred kick at the frame boundary and returns; otherwise
// it serializes the head of the highest eligible (unpaused, nonempty)
// priority queue — strict priority, lower index first — and, when more
// packets remain queued, re-arms the deferred kick for the new frame's
// end, exactly when the eager per-packet tx-complete event used to
// fire. A drained queue arms nothing: the next Enqueue or PFC resume
// restarts service, inline when the frame has already ended.
//
//hpcclint:alloc-free
func (pt *Port) kick() {
	now := pt.eng.Now()
	if now < pt.busyUntil {
		// Queues empty (a PFC resume on a drained port): nothing will be
		// serviceable at the frame boundary either — every path that
		// adds work or eligibility (Enqueue, a later resume) kicks again.
		if !pt.kickArmed && pt.totQBytes > 0 {
			pt.kickArmed = true
			pt.kickEv = pt.eng.At(pt.busyUntil, pt.kickFn) //hpcclint:allow eventkey -- kick fires on this port's own engine and mutates only this transmitter's state; cross-shard arrivals enter through the exchange at epoch barriers under explicit AtKey arrival ranks, so a same-picosecond tie with the kick is broken by the arrival's canonical key and cannot span shards (TestShardDumbbellEquivalence)
		}
		return
	}
	var prio int = -1
	for i := 0; i < NumPrio; i++ {
		if !pt.paused[i] && !pt.queues[i].empty() {
			prio = i
			break
		}
	}
	if prio < 0 {
		return
	}
	if pt.kickArmed {
		// A kick armed for this very instant became redundant: another
		// same-picosecond event (an Enqueue, a PFC resume) got here
		// first. Cancel it so it cannot fire mid-frame and re-arm.
		pt.kickArmed = false
		pt.eng.Cancel(pt.kickEv)
		pt.kickEv = sim.Timer{}
	}
	e := pt.queues[prio].pop()
	pt.qBytes[prio] -= int64(e.p.Size)
	pt.totQBytes -= int64(e.p.Size)
	pt.busyUntil = now + pt.rate.TxTime(int(e.p.Size))
	pt.txBytes += uint64(e.p.Size)
	pt.pktsSent++
	pt.owner.OnDequeue(e.p, e.ingress, pt)

	if pt.totQBytes > 0 && !pt.kickArmed {
		pt.kickArmed = true
		pt.kickEv = pt.eng.At(pt.busyUntil, pt.kickFn) //hpcclint:allow eventkey -- kick fires on this port's own engine and mutates only this transmitter's state; cross-shard arrivals enter through the exchange at epoch barriers under explicit AtKey arrival ranks, so a same-picosecond tie with the kick is broken by the arrival's canonical key and cannot span shards (TestShardDumbbellEquivalence)
	}
	if pt.remote != nil {
		pt.remote(e.p, pt.busyUntil+pt.delay)
		return
	}
	pt.wire.push(wireEntry{e.p, pt.busyUntil + pt.delay})
	if !pt.wireArmed {
		pt.wireArmed = true
		pt.eng.AtKey(pt.wire.peek().at, pt.wireKey, pt.deliverFn)
	}
}

// deliver fires the head-of-wire packet into the peer and re-arms the
// single wire event for the next in-flight packet, if any. Serialization
// intervals never overlap and the propagation delay is constant, so wire
// arrival times are nondecreasing in push order.
//
//hpcclint:alloc-free
func (pt *Port) deliver() {
	e := pt.wire.pop()
	if pt.wire.empty() {
		pt.wireArmed = false
	} else {
		pt.eng.AtKey(pt.wire.peek().at, pt.wireKey, pt.deliverFn)
	}
	pt.peer.HandleArrival(e.p, pt.peerPort)
}
