package fabric

import (
	"testing"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// stallingHost emulates Case-1 of the paper (§1): after receiving a few
// packets it starts sending PFC pause frames indefinitely — "a vendor
// bug which caused the switch to keep sending PFC pause frames
// indefinitely" — and never resumes.
type stallingHost struct {
	mockHost
	stallAfter int
	stalled    bool
}

func (s *stallingHost) HandleArrival(p *packet.Packet, in *Port) {
	s.mockHost.HandleArrival(p, in)
	if !s.stalled && len(s.got) >= s.stallAfter {
		s.stalled = true
		in.Enqueue(&packet.Packet{
			Type: packet.PFC, Prio: PrioCtrl, Size: packet.CtrlBytes,
			PFCPrio: PrioData, PFCPause: true,
		}, -1)
	}
}

// §1 Case-1 and §2.2: PFC pauses propagate along a cyclic buffer
// dependency and freeze the fabric. Three switches in a ring forward
// each host's burst two hops clockwise; one buggy receiver stalls
// (pausing its access link forever), buffers fill with transit traffic
// that cannot move, every switch pauses its upstream, and the whole
// ring deadlocks — no forward progress ever again.
func TestPFCStormDeadlockCycle(t *testing.T) {
	eng := sim.NewEngine()
	cfg := SwitchConfig{
		// Small enough that pause thresholds trip immediately, with
		// headroom for the PFC reaction skid (in-flight bytes between
		// sending a pause and the upstream stopping).
		BufferBytes: 96 << 10,
		PFCEnabled:  true,
		PFCAlpha:    0.11,
	}
	mk := func(id NodeID) *Switch { return NewSwitch(eng, id, cfg) }
	s := []*Switch{mk(10), mk(11), mk(12)}
	hosts := make([]*stallingHost, 3)
	var hostPorts []*Port

	// Port 0 of each switch: its local host. Ports 1 and 2: ring links
	// to the next and previous switch.
	rate := 100 * sim.Gbps
	delay := 200 * sim.Nanosecond
	for i := range s {
		hosts[i] = &stallingHost{mockHost: mockHost{id: NodeID(i + 1), eng: eng}, stallAfter: 5}
		hp, sp := Connect(eng, hosts[i], s[i], 0, 0, rate, delay)
		hosts[i].ports = append(hosts[i].ports, hp)
		s[i].AttachPort(sp)
		hostPorts = append(hostPorts, hp)
	}
	for i := range s {
		next := (i + 1) % 3
		a, b := Connect(eng, s[i], s[next], len(s[i].Ports()), len(s[next].Ports()), rate, delay)
		s[i].AttachPort(a)
		s[next].AttachPort(b)
	}
	// Routing: host i's traffic targets host (i+2)%3, forwarded
	// clockwise (the long way) so every ring link carries transit.
	for i := range s {
		dst := hosts[(i+2)%3].id
		s[i].InstallRoute(dst, []int{1})
		s[(i+1)%3].InstallRoute(dst, []int{1})
		s[(i+2)%3].InstallRoute(dst, []int{0})
	}

	// Each host blasts a burst at its two-hops-away destination.
	for i := range hosts {
		dst := hosts[(i+2)%3].id
		for k := 0; k < 120; k++ {
			hostPorts[i].Enqueue(&packet.Packet{
				Type: packet.Data, FlowID: int32(i), Src: int32(hosts[i].id), Dst: int32(dst),
				Prio: PrioData, Size: 1064, Seq: int64(k) * 1000, PayloadLen: 1000,
			}, -1)
		}
	}
	eng.RunUntil(5 * sim.Millisecond)

	// Deadlock signature: the pause cycle closed on the ring...
	pausedRings := 0
	for i := range s {
		for _, p := range s[i].Ports() {
			if p.Index() != 0 && p.Paused(PrioData) {
				pausedRings++
			}
		}
	}
	if pausedRings < 3 {
		t.Fatalf("paused ring transmitters = %d, want the full cycle", pausedRings)
	}
	// ... while traffic is stuck in the fabric and stays stuck.
	var stuck int64
	for i := range s {
		stuck += s[i].BufferUsed()
	}
	if stuck == 0 {
		t.Fatal("no traffic stuck despite the pause cycle")
	}
	before := stuck
	eng.RunUntil(10 * sim.Millisecond)
	stuck = 0
	for i := range s {
		stuck += s[i].BufferUsed()
	}
	if stuck != before {
		t.Fatalf("buffered bytes changed %d -> %d; a true deadlock makes no progress", before, stuck)
	}
	// And receivers stopped short of the offered load.
	for i, h := range hosts {
		if len(h.got) == 120 {
			t.Fatalf("host %d received everything; no deadlock", i)
		}
	}
	// PFC kept the freeze lossless — the pathology is stalling, not
	// drops (that is exactly why the paper's operators fear it).
	for i := range s {
		if s[i].Drops() != 0 {
			t.Fatalf("switch %d dropped %d packets; PFC should be lossless", i, s[i].Drops())
		}
	}
}
