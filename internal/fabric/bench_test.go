package fabric

import (
	"testing"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// BenchmarkSwitchForwarding measures the simulator's per-packet cost
// through a store-and-forward switch (enqueue, dequeue, INT stamp,
// arrival) — the hot path that bounds experiment wall-clock time.
func BenchmarkSwitchForwarding(b *testing.B) {
	eng := sim.NewEngine()
	cfg := SwitchConfig{INTEnabled: true}
	a := &mockHost{id: 1, eng: eng}
	c := &mockHost{id: 2, eng: eng}
	sw := NewSwitch(eng, 100, cfg)
	ap, sa := Connect(eng, a, sw, 0, 0, 100*sim.Gbps, sim.Microsecond)
	a.ports = append(a.ports, ap)
	sw.AttachPort(sa)
	sb, cp := Connect(eng, sw, c, 1, 0, 100*sim.Gbps, sim.Microsecond)
	sw.AttachPort(sb)
	c.ports = append(c.ports, cp)
	sw.InstallRoute(a.id, []int{0})
	sw.InstallRoute(c.id, []int{1})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ap.Enqueue(&packet.Packet{
			Type: packet.Data, FlowID: 1, Src: 1, Dst: 2,
			Prio: PrioData, Size: 1064, PayloadLen: 1000,
		}, -1)
		if i%64 == 63 {
			eng.Run() // drain in batches to exercise queues
			c.got = c.got[:0]
		}
	}
	eng.Run()
}
