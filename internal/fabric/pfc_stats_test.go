package fabric

import (
	"testing"

	"hpcc/internal/sim"
)

// onePort wires a single transmitter from a mockHost toward a sink and
// returns the engine, the port and the sink.
func onePort(rate sim.Rate, delay sim.Time) (*sim.Engine, *Port, *mockHost) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, rate, delay)
	a.ports = append(a.ports, ab)
	return eng, ab, b
}

// PausedFor must include the in-progress pause, not just completed
// pause episodes.
func TestPausedForIncludesInProgressPause(t *testing.T) {
	eng, ab, _ := onePort(sim.Gbps, 0)
	ab.SetPaused(PrioData, true)
	eng.RunUntil(300 * sim.Microsecond)
	if got := ab.PausedFor(PrioData); got != 300*sim.Microsecond {
		t.Fatalf("mid-pause PausedFor = %v, want 300µs", got)
	}
	eng.RunUntil(500 * sim.Microsecond)
	ab.SetPaused(PrioData, false)
	if got := ab.PausedFor(PrioData); got != 500*sim.Microsecond {
		t.Fatalf("post-resume PausedFor = %v, want 500µs", got)
	}
	// A second episode accumulates on top of the first.
	ab.SetPaused(PrioData, true)
	eng.RunUntil(600 * sim.Microsecond)
	if got := ab.PausedFor(PrioData); got != 600*sim.Microsecond {
		t.Fatalf("second-episode PausedFor = %v, want 600µs", got)
	}
	// The other priority never paused.
	if got := ab.PausedFor(PrioCtrl); got != 0 {
		t.Fatalf("control-class PausedFor = %v, want 0", got)
	}
}

// PauseEvents counts pause transitions only: redundant pause frames
// (same state) and resumes must not increment it.
func TestPauseEventsCountsOnlyTransitions(t *testing.T) {
	_, ab, _ := onePort(sim.Gbps, 0)
	ab.SetPaused(PrioData, true)
	ab.SetPaused(PrioData, true) // redundant pause: no transition
	if got := ab.PauseEvents(); got != 1 {
		t.Fatalf("PauseEvents after redundant pause = %d, want 1", got)
	}
	ab.SetPaused(PrioData, false)
	ab.SetPaused(PrioData, false) // redundant resume
	if got := ab.PauseEvents(); got != 1 {
		t.Fatalf("PauseEvents after resume = %d, want 1 (resumes don't count)", got)
	}
	ab.SetPaused(PrioData, true)
	if got := ab.PauseEvents(); got != 2 {
		t.Fatalf("PauseEvents after second pause = %d, want 2", got)
	}
}

// A resume must kick the transmitter: packets queued during the pause
// (and packets queued after it) drain without any new Enqueue poke.
func TestResumeKickRestartsPausedQueue(t *testing.T) {
	eng, ab, b := onePort(100*sim.Gbps, sim.Microsecond)
	ab.SetPaused(PrioData, true)
	for i := 0; i < 5; i++ {
		ab.Enqueue(data(1, 1, 2, int64(i)*1000, 1064), -1)
	}
	eng.RunUntil(100 * sim.Microsecond)
	if len(b.got) != 0 {
		t.Fatalf("%d packets transmitted while paused", len(b.got))
	}
	if got := ab.QueueLen(PrioData); got != 5 {
		t.Fatalf("queued = %d, want 5", got)
	}
	ab.SetPaused(PrioData, false)
	eng.Run()
	if len(b.got) != 5 {
		t.Fatalf("arrivals after resume = %d, want 5", len(b.got))
	}
	// FIFO order survived the pause.
	for i, ar := range b.got {
		if ar.p.Seq != int64(i)*1000 {
			t.Fatalf("arrival %d has seq %d, want %d", i, ar.p.Seq, int64(i)*1000)
		}
	}
	// A second pause/resume cycle keeps working (the paused flag and
	// kick interplay has no one-shot behaviour).
	ab.SetPaused(PrioData, true)
	ab.Enqueue(data(1, 1, 2, 5000, 1064), -1)
	ab.SetPaused(PrioData, false)
	eng.Run()
	if len(b.got) != 6 {
		t.Fatalf("arrivals after second cycle = %d, want 6", len(b.got))
	}
	if ab.Paused(PrioData) {
		t.Fatal("port left paused")
	}
}
