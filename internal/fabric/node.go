// Package fabric models the network data plane: duplex links, egress
// ports with strict-priority queues, and shared-buffer switches
// implementing WRED/ECN marking, dynamic-threshold PFC, ECMP routing and
// INT stamping at dequeue — the full substrate the HPCC paper's
// evaluation runs on.
package fabric

import (
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// NodeID identifies a node (host or switch) network-wide.
type NodeID int32

// Node is anything attachable to a link: switches and hosts.
type Node interface {
	// ID returns the network-wide node identifier.
	ID() NodeID
	// HandleArrival is called when a packet has fully arrived over the
	// link whose local (reverse-direction) port is in.
	HandleArrival(p *packet.Packet, in *Port)
	// OnDequeue is called at the instant a packet is dequeued from one
	// of the node's own ports and starts serializing. ingress is the
	// port index the packet arrived on, or -1 for locally generated
	// packets. Switches use this hook for buffer release, PFC resume
	// checks and INT stamping.
	OnDequeue(p *packet.Packet, ingress int, from *Port)
}

// Priority levels. Control traffic (ACK/NACK/CNP/PFC) rides the highest
// priority and is never paused; data uses PrioData. The split matches
// production RoCE deployments where ACKs travel on a dedicated class.
const (
	PrioCtrl = 0
	PrioData = 1
	NumPrio  = 2
)

// Connect wires a full-duplex link between nodes a and b with the given
// rate and one-way propagation delay, returning the two directional
// ports (a's transmitter and b's transmitter). Port indices are the
// caller's concern: they must equal the position of the returned port in
// each node's port list for switch ingress accounting to work.
func Connect(eng *sim.Engine, a, b Node, aIdx, bIdx int, rate sim.Rate, delay sim.Time) (ab, ba *Port) {
	ab = newPort(eng, a, aIdx, rate, delay)
	ba = newPort(eng, b, bIdx, rate, delay)
	ab.peer, ab.peerPort = b, ba
	ba.peer, ba.peerPort = a, ab
	return ab, ba
}
