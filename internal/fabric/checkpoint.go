package fabric

import (
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// This file implements the sim.Checkpointable contract for the fabric:
// ports and switches snapshot their mutable state at a speculation
// barrier and restore it in place on rollback.
//
// Queued and in-flight packets need deep copies: packet structs are
// pooled, so a packet sitting in a queue at checkpoint time may have
// been consumed — and its struct reused for an unrelated frame — by the
// time the epoch rolls back. Each snapshot entry therefore keeps the
// struct's identity (the pointer every queue and freelist reference
// goes through) plus a full value copy, and restore writes the value
// back through the pointer. A packet lives in exactly one place at any
// instant (one queue, one wire, or one freelist), so the write-backs
// never conflict — including across shards restored concurrently.

// entrySnap is one queued packet at checkpoint time.
type entrySnap struct {
	p       *packet.Packet
	val     packet.Packet
	ingress int
}

// wireSnap is one in-flight packet at checkpoint time.
type wireSnap struct {
	p   *packet.Packet
	val packet.Packet
	at  sim.Time
}

type portSnap struct {
	queues      [NumPrio][]entrySnap
	qBytes      [NumPrio]int64
	totQBytes   int64
	paused      [NumPrio]bool
	busyUntil   sim.Time
	kickArmed   bool
	kickEv      sim.Timer
	wire        []wireSnap
	wireArmed   bool
	txBytes     uint64
	rxQ         [NumPrio]uint64
	pktsSent    uint64
	pauseStart  [NumPrio]sim.Time
	pausedFor   [NumPrio]sim.Time
	pauseEvents uint64
	maxQBytes   int64
}

// Checkpoint captures the port's mutable state — priority queues and
// the wire with deep packet copies, pause state, lazy-service state
// (busyUntil, the deferred-kick arm and its timer handle) and counters —
// overwriting the previous checkpoint. The port's scheduled events
// (deferred kick, wire delivery) are engine state and are checkpointed
// there; kickArmed/wireArmed are restored consistently because both
// snapshots are taken at the same barrier, and the kickEv handle stays
// valid across rollback because the engine restores pending events in
// place through their original pointers (same struct, same generation).
func (pt *Port) Checkpoint() {
	s := pt.snap
	if s == nil {
		s = &portSnap{}
		pt.snap = s
	}
	for i := range pt.queues {
		q := &pt.queues[i]
		dst := s.queues[i][:0]
		for _, e := range q.buf[q.head:] {
			dst = append(dst, entrySnap{p: e.p, val: *e.p, ingress: e.ingress})
		}
		s.queues[i] = dst
	}
	s.wire = s.wire[:0]
	for _, e := range pt.wire.buf[pt.wire.head:] {
		s.wire = append(s.wire, wireSnap{p: e.p, val: *e.p, at: e.at})
	}
	s.qBytes = pt.qBytes
	s.totQBytes = pt.totQBytes
	s.paused = pt.paused
	s.busyUntil = pt.busyUntil
	s.kickArmed = pt.kickArmed
	s.kickEv = pt.kickEv
	s.wireArmed = pt.wireArmed
	s.txBytes = pt.txBytes
	s.rxQ = pt.rxQ
	s.pktsSent = pt.pktsSent
	s.pauseStart = pt.pauseStart
	s.pausedFor = pt.pausedFor
	s.pauseEvents = pt.pauseEvents
	s.maxQBytes = pt.maxQBytes
}

// Rollback restores the last Checkpoint in place: queue and wire
// contents are rebuilt through the original packet pointers (restoring
// each packet's checkpointed bytes), and all scalars reset.
func (pt *Port) Rollback() {
	s := pt.snap
	if s == nil {
		panic("fabric: Port.Rollback without Checkpoint")
	}
	for i := range pt.queues {
		q := &pt.queues[i]
		for j := range q.buf {
			q.buf[j] = entry{}
		}
		q.buf, q.head = q.buf[:0], 0
		for k := range s.queues[i] {
			es := &s.queues[i][k]
			*es.p = es.val
			q.buf = append(q.buf, entry{es.p, es.ingress})
		}
	}
	w := &pt.wire
	for j := range w.buf {
		w.buf[j] = wireEntry{}
	}
	w.buf, w.head = w.buf[:0], 0
	for k := range s.wire {
		ws := &s.wire[k]
		*ws.p = ws.val
		w.buf = append(w.buf, wireEntry{ws.p, ws.at})
	}
	pt.qBytes = s.qBytes
	pt.totQBytes = s.totQBytes
	pt.paused = s.paused
	pt.busyUntil = s.busyUntil
	pt.kickArmed = s.kickArmed
	pt.kickEv = s.kickEv
	pt.wireArmed = s.wireArmed
	pt.txBytes = s.txBytes
	pt.rxQ = s.rxQ
	pt.pktsSent = s.pktsSent
	pt.pauseStart = s.pauseStart
	pt.pausedFor = s.pausedFor
	pt.pauseEvents = s.pauseEvents
	pt.maxQBytes = s.maxQBytes
}

type switchSnap struct {
	used       int64
	ingressB   [][NumPrio]int64
	pauseSent  [][NumPrio]bool
	drops      uint64
	pfcSent    uint64
	maxUsed    int64
	enqueued   uint64
	ecnMarked  uint64
	routeErrsr uint64
}

// UsesRNG reports whether the switch's forwarding consults its random
// source (WRED/ECN marking). An RNG mid-stream cannot be snapshotted,
// so speculation is gated off for fabrics with ECN-marking switches.
func (s *Switch) UsesRNG() bool { return s.cfg.ECNEnabled }

// Checkpoint captures the switch's mutable state (shared-buffer
// accounting, per-ingress byte counts, PFC pause bookkeeping, and
// counters), overwriting the previous checkpoint. Ports are
// checkpointed separately; routes are immutable after build.
func (s *Switch) Checkpoint() {
	sn := s.snap
	if sn == nil {
		sn = &switchSnap{}
		s.snap = sn
	}
	sn.used = s.used
	sn.ingressB = append(sn.ingressB[:0], s.ingressB...)
	sn.pauseSent = append(sn.pauseSent[:0], s.pauseSent...)
	sn.drops = s.drops
	sn.pfcSent = s.pfcSent
	sn.maxUsed = s.maxUsed
	sn.enqueued = s.enqueued
	sn.ecnMarked = s.ecnMarked
	sn.routeErrsr = s.routeErrsr
}

// Rollback restores the last Checkpoint in place.
func (s *Switch) Rollback() {
	sn := s.snap
	if sn == nil {
		panic("fabric: Switch.Rollback without Checkpoint")
	}
	s.used = sn.used
	s.ingressB = append(s.ingressB[:0], sn.ingressB...)
	s.pauseSent = append(s.pauseSent[:0], sn.pauseSent...)
	s.drops = sn.drops
	s.pfcSent = sn.pfcSent
	s.maxUsed = sn.maxUsed
	s.enqueued = sn.enqueued
	s.ecnMarked = sn.ecnMarked
	s.routeErrsr = sn.routeErrsr
}
