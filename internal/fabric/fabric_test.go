package fabric

import (
	"testing"
	"testing/quick"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

type arrival struct {
	p  *packet.Packet
	at sim.Time
	in *Port
}

// mockHost is a minimal endpoint for fabric tests.
type mockHost struct {
	id    NodeID
	eng   *sim.Engine
	ports []*Port
	got   []arrival
}

func (m *mockHost) ID() NodeID { return m.id }

func (m *mockHost) HandleArrival(p *packet.Packet, in *Port) {
	if p.Type == packet.PFC {
		in.SetPaused(p.PFCPrio, p.PFCPause)
		return
	}
	m.got = append(m.got, arrival{p, m.eng.Now(), in})
}

func (m *mockHost) OnDequeue(p *packet.Packet, ingress int, from *Port) {}

func data(flow int32, src, dst NodeID, seq int64, size int32) *packet.Packet {
	return &packet.Packet{
		Type: packet.Data, FlowID: flow, Src: int32(src), Dst: int32(dst),
		Prio: PrioData, Size: size, Seq: seq, PayloadLen: size - packet.HeaderBytes,
	}
}

// lineTopo builds A --- S --- B with the given rate/delay and returns
// everything. The switch routes by host ID.
func lineTopo(t testing.TB, cfg SwitchConfig, rate sim.Rate, delay sim.Time) (*sim.Engine, *mockHost, *Switch, *mockHost) {
	t.Helper()
	return lineTopoAsym(t, cfg, rate, rate, delay)
}

// lineTopoAsym is lineTopo with distinct ingress (A->S) and egress
// (S->B) link rates; a faster ingress builds a queue at the switch.
func lineTopoAsym(t testing.TB, cfg SwitchConfig, inRate, outRate sim.Rate, delay sim.Time) (*sim.Engine, *mockHost, *Switch, *mockHost) {
	t.Helper()
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	s := NewSwitch(eng, 100, cfg)

	as, sa := Connect(eng, a, s, 0, 0, inRate, delay)
	a.ports = append(a.ports, as)
	s.AttachPort(sa)
	sb, bs := Connect(eng, s, b, 1, 0, outRate, delay)
	s.AttachPort(sb)
	b.ports = append(b.ports, bs)

	s.InstallRoute(a.id, []int{0})
	s.InstallRoute(b.id, []int{1})
	return eng, a, s, b
}

func TestLinkTiming(t *testing.T) {
	// 1064B at 100Gbps = 85.12ns serialization; two hops and two 1us
	// propagation delays: arrival at 2*(85.12ns) + 2us... but the switch
	// is store-and-forward so the second serialization starts after the
	// first arrival completes.
	eng, a, _, b := lineTopo(t, SwitchConfig{}, 100*sim.Gbps, sim.Microsecond)
	p := data(1, a.id, b.id, 0, 1064)
	a.ports[0].Enqueue(p, -1)
	eng.Run()
	if len(b.got) != 1 {
		t.Fatalf("arrivals = %d, want 1", len(b.got))
	}
	ser := (100 * sim.Gbps).TxTime(1064) // 85.12ns -> exact: 1064*80ps
	want := 2*ser + 2*sim.Microsecond
	if b.got[0].at != want {
		t.Fatalf("arrival at %v, want %v", b.got[0].at, want)
	}
}

func TestStrictPriority(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	// Fill with data, then a control frame: control must jump the line
	// (after the in-flight data packet completes).
	for i := 0; i < 3; i++ {
		ab.Enqueue(data(1, 1, 2, int64(i)*1000, 1064), -1)
	}
	ctrl := &packet.Packet{Type: packet.Ack, FlowID: 9, Src: 1, Dst: 2, Prio: PrioCtrl, Size: 64}
	ab.Enqueue(ctrl, -1)
	eng.Run()
	if len(b.got) != 4 {
		t.Fatalf("arrivals = %d", len(b.got))
	}
	// First data was already serializing; the ACK must be second.
	if b.got[1].p.Type != packet.Ack {
		t.Fatalf("packet order: %v %v %v %v", b.got[0].p, b.got[1].p, b.got[2].p, b.got[3].p)
	}
}

func TestPortPauseResume(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ab.SetPaused(PrioData, true)
	ab.Enqueue(data(1, 1, 2, 0, 1064), -1)
	eng.RunUntil(sim.Millisecond)
	if len(b.got) != 0 {
		t.Fatal("data transmitted while paused")
	}
	if ab.PausedFor(PrioData) != sim.Millisecond {
		t.Fatalf("PausedFor = %v, want 1ms", ab.PausedFor(PrioData))
	}
	ab.SetPaused(PrioData, false)
	eng.Run()
	if len(b.got) != 1 {
		t.Fatal("data not transmitted after resume")
	}
	if ab.PauseEvents() != 1 {
		t.Fatalf("PauseEvents = %d, want 1", ab.PauseEvents())
	}
}

func TestPauseDoesNotBlockControl(t *testing.T) {
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	ab, _ := Connect(eng, a, b, 0, 0, sim.Gbps, 0)
	a.ports = append(a.ports, ab)

	ab.SetPaused(PrioData, true)
	ab.Enqueue(data(1, 1, 2, 0, 1064), -1)
	ab.Enqueue(&packet.Packet{Type: packet.Ack, Src: 1, Dst: 2, Prio: PrioCtrl, Size: 64}, -1)
	eng.Run()
	if len(b.got) != 1 || b.got[0].p.Type != packet.Ack {
		t.Fatalf("control should pass a data pause; got %d arrivals", len(b.got))
	}
}

func TestSwitchForwardsAndCounts(t *testing.T) {
	eng, a, s, b := lineTopo(t, SwitchConfig{}, 100*sim.Gbps, sim.Microsecond)
	const n = 50
	for i := 0; i < n; i++ {
		a.ports[0].Enqueue(data(1, a.id, b.id, int64(i)*1000, 1064), -1)
	}
	eng.Run()
	if len(b.got) != n {
		t.Fatalf("arrivals = %d, want %d", len(b.got), n)
	}
	if s.Drops() != 0 {
		t.Fatalf("drops = %d", s.Drops())
	}
	if s.BufferUsed() != 0 {
		t.Fatalf("buffer not drained: %d", s.BufferUsed())
	}
	if s.MaxBufferUsed() == 0 {
		t.Fatal("buffer high-water mark never moved")
	}
}

func TestECNMarking(t *testing.T) {
	cfg := SwitchConfig{ECNEnabled: true, KMin: 3000, KMax: 6000, PMax: 1.0}
	eng, a, s, b := lineTopoAsym(t, cfg, 400*sim.Gbps, 100*sim.Gbps, 0)
	// Blast packets so the egress queue exceeds KMax: beyond it every
	// packet must be marked.
	const n = 30
	for i := 0; i < n; i++ {
		a.ports[0].Enqueue(data(1, a.id, b.id, int64(i)*1000, 1064), -1)
	}
	eng.Run()
	marked := 0
	for _, ar := range b.got {
		if ar.p.ECNCE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no packets marked despite deep queue")
	}
	if s.ECNMarked() != uint64(marked) {
		t.Fatalf("switch counter %d != observed %d", s.ECNMarked(), marked)
	}
	// The first couple of packets see a queue below KMin: never marked.
	if b.got[0].p.ECNCE || b.got[1].p.ECNCE {
		t.Fatal("packets below KMin were marked")
	}
}

func TestINTStamping(t *testing.T) {
	cfg := SwitchConfig{INTEnabled: true}
	// 400G in, 100G out: the egress queue builds while packets pour in.
	eng, a, s, b := lineTopoAsym(t, cfg, 400*sim.Gbps, 100*sim.Gbps, sim.Microsecond)
	const n = 10
	for i := 0; i < n; i++ {
		a.ports[0].Enqueue(data(1, a.id, b.id, int64(i)*1000, 1064), -1)
	}
	eng.Run()
	if len(b.got) != n {
		t.Fatalf("arrivals = %d", len(b.got))
	}
	var prevTx uint64
	sawQueue := false
	for i, ar := range b.got {
		h := ar.p.INT
		if h.NHops != 1 {
			t.Fatalf("pkt %d: NHops = %d, want 1", i, h.NHops)
		}
		hop := h.Hops[0]
		if hop.B != 100*sim.Gbps {
			t.Fatalf("pkt %d: B = %v", i, hop.B)
		}
		if hop.TxBytes <= prevTx {
			t.Fatalf("pkt %d: txBytes not increasing: %d <= %d", i, hop.TxBytes, prevTx)
		}
		prevTx = hop.TxBytes
		if h.PathID != uint16(s.ID())&0x0fff {
			t.Fatalf("pathID = %x", h.PathID)
		}
		if hop.QLen > 0 {
			sawQueue = true
		}
		if hop.QLen%1064 != 0 {
			t.Fatalf("pkt %d: QLen = %d, not a multiple of the packet size", i, hop.QLen)
		}
	}
	if !sawQueue {
		t.Fatal("no packet ever observed a queue despite the rate mismatch")
	}
	// Figure 5 semantics: the queue a packet reports excludes itself,
	// so the first packet (dequeued into an empty egress) reports 0 and
	// the last packet, which drains the queue, also reports 0.
	if q := b.got[0].p.INT.Hops[0].QLen; q != 0 {
		t.Fatalf("first packet QLen = %d, want 0", q)
	}
	if q := b.got[n-1].p.INT.Hops[0].QLen; q != 0 {
		t.Fatalf("last packet QLen = %d, want 0", q)
	}
}

func TestINTQuantize(t *testing.T) {
	cfg := SwitchConfig{INTEnabled: true, INTQuantize: true}
	eng, a, _, b := lineTopoAsym(t, cfg, 400*sim.Gbps, 100*sim.Gbps, sim.Microsecond)
	for i := 0; i < 5; i++ {
		a.ports[0].Enqueue(data(1, a.id, b.id, int64(i)*1000, 1064), -1)
	}
	eng.Run()
	for _, ar := range b.got {
		hop := ar.p.INT.Hops[0]
		if hop.TxBytes%packet.TxBytesUnit != 0 {
			t.Fatalf("TxBytes %d not quantized", hop.TxBytes)
		}
		if hop.QLen%packet.QLenUnit != 0 {
			t.Fatalf("QLen %d not quantized", hop.QLen)
		}
		if hop.TS%sim.Nanosecond != 0 {
			t.Fatalf("TS %v not quantized", hop.TS)
		}
	}
}

func TestPFCPauseTriggersUpstream(t *testing.T) {
	// Tiny buffer so the threshold trips quickly. Downstream of the
	// switch is slow (1Gbps) while upstream feeds at 100Gbps, so the
	// egress queue, and hence the ingress accounting, builds.
	cfg := SwitchConfig{BufferBytes: 64 << 10, PFCEnabled: true, PFCAlpha: 0.11}
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	s := NewSwitch(eng, 100, cfg)
	as, sa := Connect(eng, a, s, 0, 0, 100*sim.Gbps, sim.Microsecond)
	a.ports = append(a.ports, as)
	s.AttachPort(sa)
	sb, bs := Connect(eng, s, b, 1, 0, sim.Gbps, sim.Microsecond)
	s.AttachPort(sb)
	b.ports = append(b.ports, bs)
	s.InstallRoute(a.id, []int{0})
	s.InstallRoute(b.id, []int{1})

	for i := 0; i < 200; i++ {
		as.Enqueue(data(1, a.id, b.id, int64(i)*1000, 1064), -1)
	}
	eng.Run()
	if s.PFCFramesSent() == 0 {
		t.Fatal("switch never sent a PFC frame")
	}
	if as.PauseEvents() == 0 {
		t.Fatal("upstream port never paused")
	}
	if as.PausedFor(PrioData) == 0 {
		t.Fatal("no pause time accumulated")
	}
	if s.Drops() != 0 {
		t.Fatalf("drops with PFC enabled: %d", s.Drops())
	}
	if len(b.got) != 200 {
		t.Fatalf("arrivals = %d, want 200 (lossless)", len(b.got))
	}
	if as.Paused(PrioData) {
		t.Fatal("port still paused after drain")
	}
}

func TestLossyEgressDrop(t *testing.T) {
	cfg := SwitchConfig{BufferBytes: 32 << 10, PFCEnabled: false, LossyEgressAlpha: 1}
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	s := NewSwitch(eng, 100, cfg)
	as, sa := Connect(eng, a, s, 0, 0, 100*sim.Gbps, 0)
	a.ports = append(a.ports, as)
	s.AttachPort(sa)
	sb, bs := Connect(eng, s, b, 1, 0, sim.Gbps, 0)
	s.AttachPort(sb)
	b.ports = append(b.ports, bs)
	s.InstallRoute(a.id, []int{0})
	s.InstallRoute(b.id, []int{1})

	for i := 0; i < 100; i++ {
		as.Enqueue(data(1, a.id, b.id, int64(i)*1000, 1064), -1)
	}
	eng.Run()
	if s.Drops() == 0 {
		t.Fatal("no drops despite overload beyond the dynamic threshold")
	}
	if len(b.got)+int(s.Drops()) != 100 {
		t.Fatalf("conservation: %d arrived + %d dropped != 100", len(b.got), s.Drops())
	}
}

func TestSharedBufferOverflowDrops(t *testing.T) {
	// A fast ingress into a slow egress with a tiny shared buffer and no
	// PFC must tail-drop once the buffer fills.
	cfg := SwitchConfig{BufferBytes: 8 << 10, PFCEnabled: false}
	eng := sim.NewEngine()
	a := &mockHost{id: 1, eng: eng}
	b := &mockHost{id: 2, eng: eng}
	s := NewSwitch(eng, 100, cfg)
	as, sa := Connect(eng, a, s, 0, 0, 100*sim.Gbps, 0)
	a.ports = append(a.ports, as)
	s.AttachPort(sa)
	sb, bs := Connect(eng, s, b, 1, 0, sim.Gbps, 0)
	s.AttachPort(sb)
	b.ports = append(b.ports, bs)
	s.InstallRoute(a.id, []int{0})
	s.InstallRoute(b.id, []int{1})
	for i := 0; i < 100; i++ {
		as.Enqueue(data(1, a.id, b.id, int64(i)*1000, 1064), -1)
	}
	eng.Run()
	if s.Drops() == 0 {
		t.Fatal("no drops on shared-buffer overflow")
	}
	if len(b.got)+int(s.Drops()) != 100 {
		t.Fatalf("conservation: %d arrived + %d dropped != 100", len(b.got), s.Drops())
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	p1 := data(7, 1, 2, 0, 1064)
	p2 := data(7, 1, 2, 1000, 1064)
	p3 := data(8, 1, 2, 0, 1064)
	if ecmpHash(p1, 5, 4) != ecmpHash(p2, 5, 4) {
		t.Fatal("same flow hashed to different ports")
	}
	// Different flows should spread (not a hard guarantee for one pair,
	// so check over many flows).
	counts := map[int]int{}
	for f := int32(0); f < 256; f++ {
		p := data(f, 1, 2, 0, 1064)
		counts[ecmpHash(p, 5, 4)]++
	}
	if len(counts) < 4 {
		t.Fatalf("ECMP used only %d of 4 ports over 256 flows", len(counts))
	}
	_ = p3
}

// Property: buffer accounting always returns to zero once the network
// drains, for any random packet pattern.
func TestBufferConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		cfg := SwitchConfig{BufferBytes: 1 << 20}
		eng, a, s, b := lineTopo(t, cfg, 25*sim.Gbps, 100*sim.Nanosecond)
		for i, raw := range sizes {
			if i > 200 {
				break
			}
			size := int32(raw%1400) + 65
			a.ports[0].Enqueue(data(int32(i), a.id, b.id, 0, size), -1)
		}
		eng.Run()
		return s.BufferUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnroutableDrops(t *testing.T) {
	eng, a, s, _ := lineTopo(t, SwitchConfig{}, 100*sim.Gbps, 0)
	p := data(1, a.id, 99, 0, 1064) // destination 99 has no route
	a.ports[0].Enqueue(p, -1)
	eng.Run()
	if s.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", s.Drops())
	}
}
