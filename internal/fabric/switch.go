package fabric

import (
	"fmt"
	"math/rand"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// SwitchConfig sets a switch's data-plane behaviour. The defaults (via
// Normalize) reproduce the paper's evaluation setup.
type SwitchConfig struct {
	// BufferBytes is the shared packet buffer size (32 MB in §5.1).
	BufferBytes int64

	// PFCEnabled turns on priority flow control. PFCAlpha is the
	// dynamic-threshold fraction: an ingress (port, priority) is paused
	// when its buffered bytes exceed PFCAlpha × (free buffer); the paper
	// pauses at 11% of the free buffer (§5.1).
	PFCEnabled bool
	PFCAlpha   float64
	// PFCResumeHysteresis is how many bytes below the pause threshold
	// the ingress must drain before a resume frame is sent.
	PFCResumeHysteresis int64

	// ECNEnabled turns on WRED marking on the data priority: packets
	// are CE-marked with probability rising linearly from 0 at KMin to
	// PMax at KMax, and always above KMax (DCQCN-style marking).
	ECNEnabled bool
	KMin, KMax int64
	PMax       float64

	// INTEnabled makes the switch stamp a telemetry record into data
	// packets at dequeue. INTQuantize additionally rounds each record
	// through the Figure-7 wire precision, emulating the ASIC.
	INTEnabled  bool
	INTQuantize bool

	// LossyEgressAlpha bounds each egress data queue to
	// LossyEgressAlpha × (free buffer) when PFC is disabled; packets
	// beyond that are dropped (the paper's footnote 6 uses α = 1 for
	// the go-back-N and IRN experiments). Zero disables the bound.
	LossyEgressAlpha float64

	// Seed feeds the WRED coin flips.
	Seed int64

	// Pool recycles packet structs consumed at this switch (drops, PFC
	// frames). Topology builders share one pool per network; nil gets a
	// private pool.
	Pool *packet.Pool
}

// Normalize fills zero fields with the paper's defaults.
func (c *SwitchConfig) Normalize() {
	if c.BufferBytes == 0 {
		c.BufferBytes = 32 << 20
	}
	if c.PFCAlpha == 0 {
		c.PFCAlpha = 0.11
	}
	if c.PFCResumeHysteresis == 0 {
		c.PFCResumeHysteresis = 2 * (packet.DefaultMTU + packet.HeaderBytes)
	}
	if c.KMin == 0 {
		c.KMin = 100 << 10
	}
	if c.KMax == 0 {
		c.KMax = 400 << 10
	}
	if c.PMax == 0 {
		c.PMax = 0.2
	}
}

// Switch is a shared-buffer output-queued switch with ECMP routing,
// optional PFC, WRED/ECN and INT stamping.
type Switch struct {
	id   NodeID       //hpcclint:nosnap immutable identity
	eng  *sim.Engine  //hpcclint:nosnap immutable wiring
	cfg  SwitchConfig //hpcclint:nosnap immutable config
	rng  *rand.Rand   //hpcclint:nosnap WRED/ECN stream; speculation is refused for RNG fabrics up front (UsesRNG)
	pool *packet.Pool //hpcclint:nosnap shared pool checkpointed as its own component

	ports  []*Port          //hpcclint:nosnap immutable wiring; each port checkpoints itself
	routes map[NodeID][]int //hpcclint:nosnap immutable routing table built at wiring time

	used      int64 // shared buffer bytes in use (data priorities)
	ingressB  [][NumPrio]int64
	pauseSent [][NumPrio]bool

	// Statistics.
	drops      uint64
	pfcSent    uint64
	maxUsed    int64
	enqueued   uint64
	ecnMarked  uint64
	routeErrsr uint64

	// snap is the speculative-execution checkpoint slot (see
	// checkpoint.go); allocated lazily.
	snap *switchSnap
}

// NewSwitch creates a switch; ports are attached afterwards with
// AttachPort (typically via topology builders).
func NewSwitch(eng *sim.Engine, id NodeID, cfg SwitchConfig) *Switch {
	cfg.Normalize()
	pool := cfg.Pool
	if pool == nil {
		pool = packet.NewPool()
	}
	return &Switch{
		id:     id,
		eng:    eng,
		cfg:    cfg,
		rng:    sim.NewRNG(cfg.Seed, fmt.Sprintf("switch-%d-wred", id)),
		pool:   pool,
		routes: make(map[NodeID][]int),
	}
}

// ID returns the switch's node ID.
func (s *Switch) ID() NodeID { return s.id }

// Rebind moves the switch (clock for INT stamps) onto another engine
// and gives it a shard-local packet pool. Part of partitioning a built
// network across shard engines; must happen before traffic flows. The
// switch's ports are rebound separately (ports are owned per
// direction).
func (s *Switch) Rebind(eng *sim.Engine, pool *packet.Pool) {
	s.eng = eng
	if pool != nil {
		s.pool = pool
	}
}

// Config returns the active configuration.
func (s *Switch) Config() SwitchConfig { return s.cfg }

// AttachPort registers a port created by Connect. The port's index must
// equal its position in the attachment order.
func (s *Switch) AttachPort(p *Port) {
	if p.Index() != len(s.ports) {
		panic("fabric: port attached out of order")
	}
	s.ports = append(s.ports, p)
	s.ingressB = append(s.ingressB, [NumPrio]int64{})
	s.pauseSent = append(s.pauseSent, [NumPrio]bool{})
}

// Ports returns the switch's ports in index order.
func (s *Switch) Ports() []*Port { return s.ports }

// InstallRoute sets the ECMP egress port set for a destination host.
func (s *Switch) InstallRoute(dst NodeID, portIdx []int) {
	s.routes[dst] = portIdx
}

// Routes returns the installed routing table (read-only use).
func (s *Switch) Routes() map[NodeID][]int { return s.routes }

// Drops returns the number of packets dropped at this switch.
func (s *Switch) Drops() uint64 { return s.drops }

// ECNMarked returns the number of packets CE-marked at this switch.
func (s *Switch) ECNMarked() uint64 { return s.ecnMarked }

// PFCFramesSent returns the number of pause/resume frames emitted.
func (s *Switch) PFCFramesSent() uint64 { return s.pfcSent }

// BufferUsed returns the shared-buffer occupancy in bytes.
func (s *Switch) BufferUsed() int64 { return s.used }

// MaxBufferUsed returns the shared-buffer high-water mark.
func (s *Switch) MaxBufferUsed() int64 { return s.maxUsed }

// ecmpHash deterministically picks among n equal-cost ports based on
// flow identity, so one flow always follows one path (per-flow ECMP).
func ecmpHash(p *packet.Packet, salt NodeID, n int) int {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h = (h ^ v) * 1099511628211
	}
	mix(uint64(uint32(p.Src)))
	mix(uint64(uint32(p.Dst)))
	mix(uint64(uint32(p.FlowID)))
	mix(uint64(uint32(salt)))
	return int(h % uint64(n))
}

// HandleArrival implements Node. It routes, accounts, marks and
// enqueues, or consumes PFC frames addressed to this hop.
func (s *Switch) HandleArrival(p *packet.Packet, in *Port) {
	if p.Type == packet.PFC {
		// A pause frame from the downstream neighbor: stop/resume our
		// transmitter on that link.
		in.SetPaused(p.PFCPrio, p.PFCPause)
		s.pool.Put(p)
		return
	}

	cand, ok := s.routes[NodeID(p.Dst)]
	if !ok || len(cand) == 0 {
		s.routeErrsr++
		s.drops++
		s.pool.Put(p)
		return
	}
	egIdx := cand[0]
	if len(cand) > 1 {
		egIdx = cand[ecmpHash(p, s.id, len(cand))]
	}
	eg := s.ports[egIdx]
	prio := p.Prio
	size := int64(p.Size)

	if prio == PrioCtrl {
		// Control traffic bypasses shared-buffer accounting (tiny
		// frames on a dedicated class, never dropped or paused).
		eg.Enqueue(p, -1)
		return
	}

	// Lossy-mode dynamic egress threshold (paper footnote 6).
	if !s.cfg.PFCEnabled && s.cfg.LossyEgressAlpha > 0 {
		limit := int64(s.cfg.LossyEgressAlpha * float64(s.cfg.BufferBytes-s.used))
		if eg.QueueBytes(prio)+size > limit {
			s.drops++
			s.pool.Put(p)
			return
		}
	}
	// Shared buffer tail drop.
	if s.used+size > s.cfg.BufferBytes {
		s.drops++
		s.pool.Put(p)
		return
	}
	s.used += size
	if s.used > s.maxUsed {
		s.maxUsed = s.used
	}
	s.enqueued++
	inIdx := in.Index()
	s.ingressB[inIdx][prio] += size

	// WRED / ECN marking on the post-enqueue queue depth.
	if s.cfg.ECNEnabled && p.Type == packet.Data {
		q := eg.QueueBytes(prio) + size
		if q > s.cfg.KMax {
			p.ECNCE = true
			s.ecnMarked++
		} else if q > s.cfg.KMin {
			prob := float64(q-s.cfg.KMin) / float64(s.cfg.KMax-s.cfg.KMin) * s.cfg.PMax
			if s.rng.Float64() < prob {
				p.ECNCE = true
				s.ecnMarked++
			}
		}
	}

	eg.Enqueue(p, inIdx)

	// PFC: pause the upstream if this ingress now exceeds the dynamic
	// threshold.
	if s.cfg.PFCEnabled && !s.pauseSent[inIdx][prio] {
		if s.ingressB[inIdx][prio] > s.pfcThreshold() {
			s.pauseSent[inIdx][prio] = true
			s.sendPFC(in, prio, true)
		}
	}
}

// pfcThreshold returns the current dynamic pause threshold in bytes.
func (s *Switch) pfcThreshold() int64 {
	free := s.cfg.BufferBytes - s.used
	if free < 0 {
		free = 0
	}
	return int64(s.cfg.PFCAlpha * float64(free))
}

func (s *Switch) sendPFC(via *Port, prio uint8, pause bool) {
	f := s.pool.Get()
	f.Type = packet.PFC
	f.Prio = PrioCtrl
	f.Size = packet.CtrlBytes
	f.PFCPrio = prio
	f.PFCPause = pause
	s.pfcSent++
	via.Enqueue(f, -1)
}

// OnDequeue implements Node: buffer release, PFC resume checks and INT
// stamping at the egress, in that order.
func (s *Switch) OnDequeue(p *packet.Packet, ingress int, from *Port) {
	if ingress >= 0 {
		prio := p.Prio
		size := int64(p.Size)
		s.used -= size
		s.ingressB[ingress][prio] -= size
		if s.cfg.PFCEnabled && s.pauseSent[ingress][prio] {
			resumeAt := s.pfcThreshold() - s.cfg.PFCResumeHysteresis
			if resumeAt < 0 {
				resumeAt = 0
			}
			if s.ingressB[ingress][prio] <= resumeAt {
				s.pauseSent[ingress][prio] = false
				s.sendPFC(s.ports[ingress], prio, false)
			}
		}
	}
	if s.cfg.INTEnabled && p.Type == packet.Data {
		hop := packet.Hop{
			B:       from.Rate(),
			TS:      s.eng.Now(),
			TxBytes: from.TxBytes(),
			RxBytes: from.RxQueueBytes(p.Prio),
			QLen:    from.QueueBytes(p.Prio),
		}
		if s.cfg.INTQuantize {
			hop = hop.Quantize()
		}
		p.INT.Push(hop, uint16(s.id))
	}
}
