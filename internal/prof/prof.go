// Package prof is the repo's profiling harness: a small wrapper around
// runtime/pprof that the binaries (hpccbench, hpccsim) expose as
// -cpuprofile / -memprofile / -mutexprofile flags. It exists so the
// perf trajectory the benchmarks record (BENCH_PR*.json) can always be
// explained — every baseline bump comes with a profile that
// `go tool pprof` can open, and CI archives the bench-smoke CPU
// profile as an artifact.
//
// Usage in a main:
//
//	p := prof.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := p.Start()
//	// ... simulation work ...
//	err = stop() // flush profiles before reporting/exit paths
//
// Start is a no-op returning a no-op stop when no profile flag is set,
// so the flags cost nothing when unused. The heap profile is written at
// stop time after a forced GC, so it reflects retained memory rather
// than transient garbage — the number the streaming-statistics work
// cares about.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles holds the profile destinations registered on a FlagSet.
type Profiles struct {
	cpu      string
	mem      string
	mutex    string
	mutexFrc int
}

// RegisterFlags registers the profiling flags on fs and returns the
// Profiles that will receive the parsed values. Call before fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile (post-GC, retained memory) to this file on exit")
	fs.StringVar(&p.mutex, "mutexprofile", "", "write a mutex-contention profile to this file on exit")
	fs.IntVar(&p.mutexFrc, "mutexfraction", 5, "with -mutexprofile, sample 1 in this many contention events")
	return p
}

// Started reports whether any profile flag was set, i.e. whether Start
// will do real work.
func (p *Profiles) Started() bool {
	return p.cpu != "" || p.mem != "" || p.mutex != ""
}

// Start begins CPU profiling and arms mutex sampling as requested.
// The returned stop flushes every requested profile; call it after the
// measured work and before reporting or exiting. Stop is idempotent.
// On error nothing is left running and stop is still safe to call.
func (p *Profiles) Start() (stop func() error, err error) {
	noop := func() error { return nil }
	if !p.Started() {
		return noop, nil
	}
	var cpuF *os.File
	if p.cpu != "" {
		cpuF, err = os.Create(p.cpu)
		if err != nil {
			return noop, fmt.Errorf("prof: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return noop, fmt.Errorf("prof: start cpu profile: %v", err)
		}
	}
	if p.mutex != "" {
		runtime.SetMutexProfileFraction(p.mutexFrc)
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			keep(cpuF.Close())
		}
		if p.mutex != "" {
			keep(writeProfile("mutex", p.mutex))
			runtime.SetMutexProfileFraction(0)
		}
		if p.mem != "" {
			// Flush transient garbage so the heap profile shows what the
			// run actually retains.
			runtime.GC()
			keep(writeProfile("heap", p.mem))
		}
		if firstErr != nil {
			return fmt.Errorf("prof: %v", firstErr)
		}
		return nil
	}, nil
}

// writeProfile dumps one named runtime profile to path.
func writeProfile(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
