package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hpcc/internal/sim"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5.5 {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element p99 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev || v < sorted[0]-1e-9 || v > sorted[len(sorted)-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Max != 8 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %v, want 1", got)
	}
	// One user hogs everything: index = 1/n.
	if got := Jain([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("monopoly: %v, want 0.25", got)
	}
	if got := Jain([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero: %v, want 1 by convention", got)
	}
}

// Property: Jain ∈ [1/n, 1] for nonnegative inputs.
func TestJainBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = rng.Float64() * 50
		}
		j := Jain(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIdealFCT(t *testing.T) {
	// 1000 B in one packet at 100G, no INT: 1064 wire bytes = 85.12 ns,
	// plus 10 µs RTT.
	got := IdealFCT(1000, 100*sim.Gbps, 10*sim.Microsecond, 1000, false)
	want := (100 * sim.Gbps).TxTime(1064) + 10*sim.Microsecond
	if got != want {
		t.Errorf("IdealFCT = %v, want %v", got, want)
	}
	// INT adds 42 B per packet.
	gotINT := IdealFCT(1000, 100*sim.Gbps, 10*sim.Microsecond, 1000, true)
	if gotINT <= got {
		t.Error("INT overhead did not increase ideal FCT")
	}
	// 2500 B = 3 packets.
	got3 := IdealFCT(2500, 100*sim.Gbps, 0, 1000, false)
	if got3 != (100 * sim.Gbps).TxTime(2500+3*64) {
		t.Errorf("3-packet ideal = %v", got3)
	}
}

func TestSlowdownFloorsAtOne(t *testing.T) {
	r := FCTRecord{Size: 1000, FCT: 5 * sim.Microsecond, Ideal: 10 * sim.Microsecond}
	if r.Slowdown() != 1 {
		t.Errorf("slowdown = %v, want floor at 1", r.Slowdown())
	}
}

func TestBuckets(t *testing.T) {
	var set FCTSet
	// Two flows in the first bucket (≤100), one in the second (≤1000).
	set.Add(FCTRecord{Size: 50, FCT: 20, Ideal: 10})
	set.Add(FCTRecord{Size: 100, FCT: 40, Ideal: 10})
	set.Add(FCTRecord{Size: 500, FCT: 30, Ideal: 10})
	set.Add(FCTRecord{Size: 5000, FCT: 30, Ideal: 10}) // beyond all edges: final bucket
	rows := set.Buckets([]int64{100, 1000})
	if rows[0].Stats.N != 2 || rows[1].Stats.N != 2 {
		t.Fatalf("bucket counts = %d, %d", rows[0].Stats.N, rows[1].Stats.N)
	}
	if rows[0].Stats.Max != 4 {
		t.Errorf("bucket 0 max slowdown = %v, want 4", rows[0].Stats.Max)
	}
	if rows[0].Lo != 0 || rows[0].Hi != 100 || rows[1].Lo != 100 {
		t.Errorf("bucket bounds: %+v", rows[:2])
	}
}

// Regression: records larger than the last edge used to be dropped
// silently, skewing tail-slowdown stats for custom workloads. They must
// land in the final bucket.
func TestBucketsRouteOverflowToFinalBucket(t *testing.T) {
	var set FCTSet
	set.Add(FCTRecord{Size: 2_000, FCT: 100, Ideal: 10}) // 10× slowdown, oversized
	set.Add(FCTRecord{Size: 900, FCT: 20, Ideal: 10})
	rows := set.Buckets([]int64{100, 1000})
	if rows[1].Stats.N != 2 {
		t.Fatalf("final bucket N = %d, want 2 (oversized flow included)", rows[1].Stats.N)
	}
	if rows[1].Stats.Max != 10 {
		t.Fatalf("final bucket max = %v, want 10 (the oversized flow's slowdown)", rows[1].Stats.Max)
	}
	total := 0
	for _, r := range rows {
		total += r.Stats.N
	}
	if total != len(set.Records) {
		t.Fatalf("bucketed %d of %d records", total, len(set.Records))
	}
}

func TestBucketEdgesMatchPaper(t *testing.T) {
	ws := WebSearchEdges()
	if len(ws) != 10 || ws[0] != 6_700 || ws[len(ws)-1] != 30_000_000 {
		t.Errorf("WebSearch edges = %v", ws)
	}
	fb := FBHadoopEdges()
	if len(fb) != 10 || fb[0] != 324 || fb[len(fb)-1] != 10_000_000 {
		t.Errorf("FBHadoop edges = %v", fb)
	}
}

func TestThroughputSeries(t *testing.T) {
	tp := NewThroughput(100 * sim.Microsecond)
	// 1.25 MB in bin 0 → 100 Gbps; nothing in bin 1; 625 KB in bin 2 → 50 Gbps.
	tp.Record(1, 50*sim.Microsecond, 1_250_000)
	tp.Record(1, 250*sim.Microsecond, 625_000)
	s := tp.Series(1, 300*sim.Microsecond)
	if len(s) != 3 {
		t.Fatalf("series len = %d", len(s))
	}
	if math.Abs(s[0].V-100) > 0.01 || s[1].V != 0 || math.Abs(s[2].V-50) > 0.01 {
		t.Fatalf("series = %v", s)
	}
	if got := tp.Rate(1, 0, 300*sim.Microsecond); math.Abs(got-50) > 0.01 {
		t.Fatalf("avg rate = %v, want 50", got)
	}
}
