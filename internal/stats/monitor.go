package stats

import (
	"hpcc/internal/fabric"
	"hpcc/internal/sim"
)

// QueueMonitor samples egress queue depths of a set of ports at a fixed
// interval, building the queue-length distributions of Figures 9f/10b/
// 10d and the time series of Figures 9a–d/13b.
type QueueMonitor struct {
	eng      *sim.Engine    //hpcclint:nosnap immutable wiring
	ports    []*fabric.Port //hpcclint:nosnap immutable wiring
	prio     uint8          //hpcclint:nosnap immutable config
	interval sim.Time       //hpcclint:nosnap immutable config
	until    sim.Time       //hpcclint:nosnap immutable config

	// Samples holds the retained per-port observations (bytes), pooled.
	Samples []float64
	// Series records the retained (time, total bytes) pairs.
	Series []TimePoint

	// OnSample, if set, streams each (time, total bytes) observation as
	// it is taken — the observer-layer feed TraceQueues and the public
	// QueueObserver ride. Set it right after NewQueueMonitor; the first
	// tick fires one interval later. Streaming sees every tick,
	// regardless of SampleCap.
	OnSample func(TimePoint) //hpcclint:nosnap observer callback installed at setup

	// Sketch mode (EnableSketch): per-port depth observations stream
	// into a mergeable quantile sketch instead of the Samples/Series
	// slices, so retention is O(buckets) however long the run. OnSample
	// still fires every tick, so time-series observers keep working.
	sketch *Sketch // cumulative per-port depths; non-nil => sketch mode
	window *Sketch // depths since the last flush (fed when FlushEvery > 0)

	// FlushEvery, when positive, closes the current window every
	// FlushEvery ticks and reports it to OnFlush — the interval-flush
	// primitive live-progress consumers ride: each flush carries the
	// window's depth summary plus the cumulative one, then the window
	// resets. Works in either retention mode (the window itself is
	// always a sketch); set both right after NewQueueMonitor.
	FlushEvery int              //hpcclint:nosnap immutable config
	OnFlush    func(QueueFlush) //hpcclint:nosnap observer callback installed at setup
	winTicks   int
	winStart   sim.Time

	// SampleCap, when positive, bounds the retained sampling instants:
	// the monitor keeps ticks whose index is a multiple of an adaptive
	// stride, doubling the stride (and dropping half the retained rows)
	// whenever the row count would exceed the cap — so an arbitrarily
	// long campaign holds at most SampleCap instants, thinned evenly
	// over the whole horizon rather than truncated. The decision
	// depends only on the tick index, never on port count or values, so
	// per-shard monitors sharing a tick schedule retain exactly the
	// same instants as a single whole-fabric monitor (the sharded
	// byte-identity contract). Set it right after NewQueueMonitor.
	// Zero (the default) retains every tick.
	SampleCap int    //hpcclint:nosnap immutable config set before the run
	stride    uint64 // tick keep-stride (power of two; 0 until first tick)
	ticks     uint64 // absolute tick counter

	snap monSnap // speculative-execution checkpoint
}

// monSnap is the monitor's checkpoint. Without a SampleCap the retained
// rows are append-only, so lengths suffice; with a cap, decimation
// rewrites the retained prefix in place, so full copies are kept.
type monSnap struct {
	valid             bool
	deep              bool
	nSamples, nSeries int
	stride, ticks     uint64
	samples           []float64
	series            []TimePoint
	winTicks          int
	winStart          sim.Time
}

// Checkpoint captures the monitor's retained rows and tick counters,
// overwriting the previous checkpoint (sim.Checkpointable; the tick
// event itself is engine state).
func (m *QueueMonitor) Checkpoint() {
	s := &m.snap
	s.valid = true
	s.stride, s.ticks = m.stride, m.ticks
	if m.sketch != nil {
		m.sketch.Checkpoint()
		m.window.Checkpoint()
		s.winTicks, s.winStart = m.winTicks, m.winStart
		return
	}
	s.deep = m.SampleCap > 0
	if s.deep {
		s.samples = append(s.samples[:0], m.Samples...)
		s.series = append(s.series[:0], m.Series...)
		return
	}
	s.nSamples, s.nSeries = len(m.Samples), len(m.Series)
}

// Rollback restores the last Checkpoint.
func (m *QueueMonitor) Rollback() {
	s := &m.snap
	if !s.valid {
		panic("stats: QueueMonitor.Rollback without Checkpoint")
	}
	m.stride, m.ticks = s.stride, s.ticks
	if m.sketch != nil {
		m.sketch.Rollback()
		m.window.Rollback()
		m.winTicks, m.winStart = s.winTicks, s.winStart
		return
	}
	if s.deep {
		m.Samples = append(m.Samples[:0], s.samples...)
		m.Series = append(m.Series[:0], s.series...)
		return
	}
	m.Samples = m.Samples[:s.nSamples]
	m.Series = m.Series[:s.nSeries]
}

// TimePoint is one time-series observation.
type TimePoint struct {
	T sim.Time
	V float64
}

// NewQueueMonitor starts sampling immediately; it stops after until.
func NewQueueMonitor(eng *sim.Engine, ports []*fabric.Port, prio uint8, interval, until sim.Time) *QueueMonitor {
	m := &QueueMonitor{eng: eng, ports: ports, prio: prio, interval: interval, until: until}
	eng.After(interval, m.tick)
	return m
}

// Stop ends sampling at the next tick.
func (m *QueueMonitor) Stop() { m.until = -1 }

// EnableSketch switches the monitor to sketch mode with the given
// relative accuracy (alpha <= 0 means DefaultRelativeAccuracy): no
// sample or series rows are retained, every per-port observation
// streams into mergeable sketches instead. Call it right after
// NewQueueMonitor, before the first tick.
func (m *QueueMonitor) EnableSketch(alpha float64) {
	m.sketch = NewSketch(alpha)
	m.window = NewSketch(alpha)
}

// Streaming reports whether the monitor sketches instead of retaining
// samples.
func (m *QueueMonitor) Streaming() bool { return m.sketch != nil }

// QueueFlush is one closed interval window of queue-depth observations,
// delivered to OnFlush every FlushEvery ticks in sketch mode.
type QueueFlush struct {
	Start sim.Time // window open (previous flush, or monitoring start)
	At    sim.Time // window close: the tick that triggered the flush
	Ticks int      // sampling instants inside the window
	// Window summarizes per-port depths inside this window alone; Run
	// is the cumulative distribution since monitoring began.
	Window Summary
	Run    Summary
}

func (m *QueueMonitor) tick() {
	now := m.eng.Now()
	if now > m.until {
		return
	}
	if m.stride == 0 {
		m.stride = 1
	}
	if m.FlushEvery > 0 && m.window == nil {
		m.window = NewSketch(0) // exact-retention monitor with a flush consumer
	}
	idx := m.ticks
	m.ticks++
	keep := m.sketch == nil && idx%m.stride == 0
	total := 0.0
	for _, p := range m.ports {
		q := float64(p.QueueBytes(m.prio))
		total += q
		switch {
		case m.sketch != nil:
			m.sketch.Add(q)
		case keep:
			m.Samples = append(m.Samples, q)
		}
		if m.FlushEvery > 0 {
			m.window.Add(q)
		}
	}
	if keep {
		m.Series = append(m.Series, TimePoint{now, total})
		if m.SampleCap > 0 && len(m.Series) > m.SampleCap {
			m.decimate()
		}
	}
	if m.FlushEvery > 0 {
		m.winTicks++
		if m.winTicks >= m.FlushEvery {
			f := QueueFlush{Start: m.winStart, At: now, Ticks: m.winTicks,
				Window: m.window.Summary(), Run: m.Summary()}
			m.winStart = now
			m.winTicks = 0
			m.window.Reset()
			if m.OnFlush != nil {
				m.OnFlush(f)
			}
		}
	}
	if m.OnSample != nil {
		m.OnSample(TimePoint{now, total})
	}
	m.eng.After(m.interval, m.tick)
}

// Summary summarizes the per-port depth observations, mode-agnostic:
// exact over retained Samples, α-accurate from the sketch.
func (m *QueueMonitor) Summary() Summary {
	if m.sketch != nil {
		return m.sketch.Summary()
	}
	return Summarize(m.Samples)
}

// DepthQuantile returns the p-th percentile of per-port queue depth
// (bytes). Empty monitors report 0.
func (m *QueueMonitor) DepthQuantile(p float64) float64 {
	if m.sketch != nil {
		return quantileOrZero(m.sketch, p)
	}
	if len(m.Samples) == 0 {
		return 0
	}
	return Percentile(m.Samples, p)
}

// RetainedBytes is the monitor's logical stat footprint: retained
// sample rows in exact mode, occupied sketch buckets in sketch mode.
// Series is excluded — per-shard monitors each carry their own totals
// row, so it is not part of the shard-count-invariant contract this
// figure feeds.
func (m *QueueMonitor) RetainedBytes() int64 {
	if m.sketch != nil {
		total := m.sketch.RetainedBytes()
		if m.window.Count() > 0 {
			total += m.window.RetainedBytes()
		}
		return total
	}
	return int64(len(m.Samples)) * 8
}

// MergeSketch folds another sketch-mode monitor's cumulative depth
// distribution into m. Per-shard monitors cover disjoint port sets, so
// the merged sketch is exactly the one a whole-fabric monitor on the
// same tick schedule would have built.
func (m *QueueMonitor) MergeSketch(o *QueueMonitor) {
	if m.sketch == nil || o.sketch == nil {
		panic("stats: MergeSketch on an exact-mode QueueMonitor")
	}
	m.sketch.Merge(o.sketch)
}

// decimate doubles the keep-stride and drops the retained rows that no
// longer land on it. Retained rows are always exactly the ticks
// 0, stride, 2·stride, …, so row r holds tick r·stride and doubling
// the stride keeps precisely the even-indexed rows.
func (m *QueueMonitor) decimate() {
	np := len(m.ports)
	m.stride *= 2
	n := (len(m.Series) + 1) / 2
	for w := 1; w < n; w++ {
		r := 2 * w
		m.Series[w] = m.Series[r]
		copy(m.Samples[w*np:(w+1)*np], m.Samples[r*np:(r+1)*np])
	}
	m.Series = m.Series[:n]
	m.Samples = m.Samples[:n*np]
}

// PFCEvent is one pause/resume transition observed at a switch egress
// port.
type PFCEvent struct {
	At     sim.Time
	Switch int // index into the watched switch list
	Port   int // port index at that switch
	Prio   uint8
	Paused bool
}

// WatchPFC streams every PFC pause/resume transition on the switches'
// ports to fn. It replaces any previously installed pause hooks on
// those ports.
func WatchPFC(eng *sim.Engine, switches []*fabric.Switch, fn func(PFCEvent)) {
	for si, sw := range switches {
		for pi, p := range sw.Ports() {
			si, pi, p := si, pi, p
			p.SetPauseHook(func(prio uint8, paused bool) {
				fn(PFCEvent{At: eng.Now(), Switch: si, Port: pi, Prio: prio, Paused: paused})
			})
		}
	}
}

// Throughput tracks per-flow goodput in fixed time bins, producing the
// rate curves of Figures 9a/9c/9g/13a.
type Throughput struct {
	bin   sim.Time
	bytes map[int]map[int64]int64 // flow tag -> bin index -> bytes
}

// NewThroughput creates a tracker with the given bin width.
func NewThroughput(bin sim.Time) *Throughput {
	return &Throughput{bin: bin, bytes: make(map[int]map[int64]int64)}
}

// Record adds n acknowledged bytes for flow tag at time t.
func (tp *Throughput) Record(tag int, t sim.Time, n int64) {
	m := tp.bytes[tag]
	if m == nil {
		m = make(map[int64]int64)
		tp.bytes[tag] = m
	}
	m[int64(t/tp.bin)] += n
}

// Series returns flow tag's goodput in Gbps per bin over [0, until].
func (tp *Throughput) Series(tag int, until sim.Time) []TimePoint {
	m := tp.bytes[tag]
	nBins := int64(until / tp.bin)
	out := make([]TimePoint, 0, nBins)
	for b := int64(0); b < nBins; b++ {
		gbps := float64(m[b]) * 8 / tp.bin.Seconds() / 1e9
		out = append(out, TimePoint{sim.Time(b) * tp.bin, gbps})
	}
	return out
}

// Rate returns flow tag's average goodput in Gbps over [from, to).
func (tp *Throughput) Rate(tag int, from, to sim.Time) float64 {
	m := tp.bytes[tag]
	var total int64
	for b := int64(from / tp.bin); b < int64(to/tp.bin); b++ {
		total += m[b]
	}
	dur := (to - from).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(total) * 8 / dur / 1e9
}

// PFCPauseFraction sums pause time across all ports of the switches and
// normalizes by (elapsed × ports): the "fraction of pause time" metric
// of Figure 11b/11d.
func PFCPauseFraction(switches []*fabric.Switch, prio uint8, elapsed sim.Time) float64 {
	var total sim.Time
	ports := 0
	for _, sw := range switches {
		for _, p := range sw.Ports() {
			total += p.PausedFor(prio)
			ports++
		}
	}
	if ports == 0 || elapsed <= 0 {
		return 0
	}
	return float64(total) / (float64(elapsed) * float64(ports))
}
