// Package stats computes the metrics the paper reports: FCT slowdown
// percentiles per flow-size bucket (Figures 2, 3, 10, 11, 12), switch
// queue-length CDFs (Figures 9, 10), PFC pause-time fractions (Figures
// 2b, 11b/d), throughput time series (Figures 9, 13) and Jain's
// fairness index (Figure 14).
package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0–100) of xs by linear
// interpolation between closest ranks. xs need not be sorted; it is
// copied, not mutated. Returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary bundles the order statistics the paper quotes.
type Summary struct {
	N                  int
	Mean               float64
	P50, P95, P99, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:    len(s),
		Mean: sum / float64(len(s)),
		P50:  percentileSorted(s, 50),
		P95:  percentileSorted(s, 95),
		P99:  percentileSorted(s, 99),
		Max:  s[len(s)-1],
	}
}

// Jain returns Jain's fairness index (Σx)²/(n·Σx²) ∈ [1/n, 1];
// 1 is perfectly fair. Returns NaN for empty input.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
