package stats

import "math"

// Sketch is a mergeable streaming quantile sketch in the DDSketch
// family: values land in geometric buckets gamma^k, so every quantile
// estimate is within a configurable relative accuracy α of an exact
// order statistic, memory is O(buckets) regardless of how many values
// stream in, and two sketches built with the same α merge exactly by
// bucket-count addition — merging is commutative and associative, so
// per-shard and per-seed sketches pool into precisely the sketch a
// single pass over all values would have built.
//
// It is the linear-memory-retention replacement for FCT-record and
// queue-sample slices: million-flow campaigns keep per-size-bucket
// slowdown sketches and interval-windowed queue sketches instead of
// every observation.
//
// The zero Sketch is not ready; use NewSketch. Values below minIndexable
// (including zero and negatives) are counted in a dedicated zero bucket
// and only influence quantiles through the exact Min.
type Sketch struct {
	gamma   float64 //hpcclint:nosnap immutable; derived from α at construction: (1+α)/(1-α)
	invLogG float64 //hpcclint:nosnap immutable; 1 / ln(gamma)
	maxBins int     //hpcclint:nosnap immutable; collapse bound on len(bins)

	// bins[i] counts values whose key is lo+i; a key k covers the value
	// range (gamma^(k-1), gamma^k].
	bins []uint64
	lo   int // key of bins[0]

	zeros    uint64 // values < minIndexable
	count    uint64
	sum      float64
	min, max float64

	snap sketchSnap
}

// sketchSnap is the single in-place checkpoint slot (sim.Checkpointable
// contract): buffers are reused across checkpoints, so speculative
// epochs snapshot bucket counts without allocating after warmup.
type sketchSnap struct {
	valid    bool
	bins     []uint64
	lo       int
	zeros    uint64
	count    uint64
	sum      float64
	min, max float64
}

// DefaultRelativeAccuracy is the sketch accuracy used when a caller
// passes α <= 0: quantile estimates within 1% of an exact order
// statistic.
const DefaultRelativeAccuracy = 0.01

// minIndexable is the smallest value the geometric store indexes;
// anything below it (simulation statistics are nonnegative) is counted
// in the zero bucket. Slowdowns are >= 1 and queue depths are whole
// bytes, so only true zeros land there in practice.
const minIndexable = 1e-9

// defaultMaxBins bounds the dense store. With α = 1%, ~2300 buckets
// span minIndexable..1e10 — far beyond any slowdown or queue depth this
// simulator produces — so collapsing is a safety valve, not a steady
// state.
const defaultMaxBins = 4096

// NewSketch returns an empty sketch with relative accuracy alpha
// (DefaultRelativeAccuracy when alpha <= 0).
func NewSketch(alpha float64) *Sketch {
	return newSketchMax(alpha, defaultMaxBins)
}

func newSketchMax(alpha float64, maxBins int) *Sketch {
	if alpha <= 0 {
		alpha = DefaultRelativeAccuracy
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		gamma:   gamma,
		invLogG: 1 / math.Log(gamma),
		maxBins: maxBins,
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// RelativeAccuracy returns the configured α.
func (s *Sketch) RelativeAccuracy() float64 { return (s.gamma - 1) / (s.gamma + 1) }

// key maps a value to its bucket index: the smallest k with
// gamma^k >= v.
func (s *Sketch) key(v float64) int {
	return int(math.Ceil(math.Log(v) * s.invLogG))
}

// value returns the representative value of bucket k: the midpoint of
// (gamma^(k-1), gamma^k], within α of everything in the bucket.
func (s *Sketch) value(k int) float64 {
	return math.Pow(s.gamma, float64(k)) * 2 / (1 + s.gamma)
}

// Add inserts one value. Allocation-free once the value range has been
// seen: the dense store only grows when a value lands outside the
// current key span.
//
//hpcclint:alloc-free
func (s *Sketch) Add(v float64) { s.AddN(v, 1) }

// AddN inserts a value n times.
//
//hpcclint:alloc-free
func (s *Sketch) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	s.count += n
	s.sum += v * float64(n)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v < minIndexable {
		s.zeros += n
		return
	}
	s.bucket(s.key(v)).add(n) //hpcclint:allow hotpathalloc -- bucket growth/collapse fires only when a value extends the key range; steady state hits existing bins (TestSketchAllocFreeAfterWarmup)
}

// binref is a settable cell of the dense store.
type binref struct {
	s *Sketch
	i int
}

func (b binref) add(n uint64) { b.s.bins[b.i] += n }

// bucket grows the store to cover key k and returns its cell.
func (s *Sketch) bucket(k int) binref {
	if len(s.bins) == 0 {
		s.bins = append(s.bins, 0)
		s.lo = k
		return binref{s, 0}
	}
	if k < s.lo {
		s.growDown(s.lo - k)
	}
	if i := k - s.lo; i >= len(s.bins) {
		s.growUp(i + 1 - len(s.bins))
	}
	if len(s.bins) > s.maxBins {
		s.collapse()
	}
	if k < s.lo { // collapsed past k: fold into the collapsed floor
		k = s.lo
	}
	return binref{s, k - s.lo}
}

func (s *Sketch) growDown(by int) {
	s.bins = append(s.bins, make([]uint64, by)...)
	copy(s.bins[by:], s.bins[:len(s.bins)-by])
	for i := 0; i < by; i++ {
		s.bins[i] = 0
	}
	s.lo -= by
}

func (s *Sketch) growUp(by int) {
	s.bins = append(s.bins, make([]uint64, by)...)
}

// collapse folds the lowest buckets together until the store fits
// maxBins again — the DDSketch collapsing-lowest policy: tail quantiles
// (the ones the paper reports) keep full accuracy, the low extreme
// degrades. Deterministic, so checkpoint/replay and sharded merges stay
// byte-identical.
func (s *Sketch) collapse() {
	drop := len(s.bins) - s.maxBins
	if drop <= 0 {
		return
	}
	var folded uint64
	for i := 0; i <= drop; i++ {
		folded += s.bins[i]
	}
	copy(s.bins, s.bins[drop:])
	s.bins = s.bins[:s.maxBins]
	s.bins[0] = folded
	s.lo += drop
}

// Count returns how many values have been inserted.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the exact running sum of inserted values.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the exact minimum inserted value (NaN when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact maximum inserted value (NaN when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile estimates the p-th percentile (0–100, matching Percentile).
// The estimate is within relative accuracy α of an exact order
// statistic at that rank; p = 0 and p = 100 return the exact min/max.
// Returns NaN for an empty sketch.
func (s *Sketch) Quantile(p float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := p / 100 * float64(s.count-1)
	cum := float64(s.zeros)
	if rank < cum {
		return s.min
	}
	for i, n := range s.bins {
		if n == 0 {
			continue
		}
		cum += float64(n)
		if rank < cum {
			return s.clamp(s.value(s.lo + i))
		}
	}
	return s.max
}

// clamp bounds a bucket representative by the exact extremes, so
// estimates never leave the observed value range.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Summary bundles the sketch's order statistics in the same shape
// Summarize produces from retained samples: N, exact mean and max,
// α-accurate percentiles.
func (s *Sketch) Summary() Summary {
	if s.count == 0 {
		return Summary{}
	}
	return Summary{
		N:    int(s.count),
		Mean: s.Mean(),
		P50:  s.Quantile(50),
		P95:  s.Quantile(95),
		P99:  s.Quantile(99),
		Max:  s.max,
	}
}

// Merge adds o's distribution into s, exactly: bucket counts add, so
// the result is identical (bit-for-bit) to a sketch that saw both
// streams in any order. Both sketches must share the same α; merging
// mismatched accuracies is a wiring bug and panics. o is unchanged.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if s.gamma != o.gamma {
		panic("stats: merging sketches with different relative accuracy")
	}
	s.count += o.count
	s.sum += o.sum
	s.zeros += o.zeros
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	for i, n := range o.bins {
		if n != 0 {
			s.bucket(o.lo + i).add(n)
		}
	}
}

// Clone returns an independent copy (checkpoint slot excluded).
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.bins = append([]uint64(nil), s.bins...)
	c.snap = sketchSnap{}
	return &c
}

// Reset empties the sketch, keeping its buffers.
func (s *Sketch) Reset() {
	s.bins = s.bins[:0]
	s.lo = 0
	s.zeros, s.count, s.sum = 0, 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
}

// RetainedBytes is the sketch's logical stat footprint: occupied
// buckets plus the fixed header. It is a function of the distribution
// alone — merge order and shard count cannot change it — which is what
// lets the memory-regression gate compare sharded and serial runs.
func (s *Sketch) RetainedBytes() int64 {
	occupied := int64(0)
	for _, n := range s.bins {
		if n != 0 {
			occupied++
		}
	}
	return 8*occupied + 64
}

// Checkpoint snapshots the bucket counts in place, reusing the snapshot
// buffer (sim.Checkpointable).
func (s *Sketch) Checkpoint() {
	sn := &s.snap
	sn.valid = true
	sn.bins = append(sn.bins[:0], s.bins...)
	sn.lo = s.lo
	sn.zeros, sn.count, sn.sum = s.zeros, s.count, s.sum
	sn.min, sn.max = s.min, s.max
}

// Rollback restores the last Checkpoint.
func (s *Sketch) Rollback() {
	sn := &s.snap
	if !sn.valid {
		panic("stats: Sketch.Rollback without Checkpoint")
	}
	s.bins = append(s.bins[:0], sn.bins...)
	s.lo = sn.lo
	s.zeros, s.count, s.sum = sn.zeros, sn.count, sn.sum
	s.min, s.max = sn.min, sn.max
}
