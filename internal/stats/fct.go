package stats

import (
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// FCTRecord is one completed flow's timing.
type FCTRecord struct {
	Size  int64
	FCT   sim.Time
	Ideal sim.Time
}

// Slowdown is the flow's FCT normalized by its ideal FCT on an empty
// network (paper footnote 1).
func (r FCTRecord) Slowdown() float64 {
	if r.Ideal <= 0 {
		return 1
	}
	s := float64(r.FCT) / float64(r.Ideal)
	if s < 1 {
		s = 1
	}
	return s
}

// IdealFCT returns a flow's FCT on an idle network: per-packet wire
// bytes serialized at the NIC line rate plus one base propagation RTT.
// intHeader adds the 42-byte INT tax when the scheme carries telemetry.
func IdealFCT(size int64, rate sim.Rate, baseRTT sim.Time, mtu int, intHeader bool) sim.Time {
	if size <= 0 {
		return baseRTT
	}
	pkts := (size + int64(mtu) - 1) / int64(mtu)
	overhead := int64(packet.HeaderBytes)
	if intHeader {
		overhead += packet.INTOverhead
	}
	wire := size + pkts*overhead
	return rate.TxTime(int(wire)) + baseRTT
}

// FCTSet accumulates completed flows.
type FCTSet struct {
	Records []FCTRecord

	mark int // Checkpoint high-water mark
}

// Add appends one record.
func (s *FCTSet) Add(r FCTRecord) { s.Records = append(s.Records, r) }

// Checkpoint marks the current record count (the set is append-only, so
// a length suffices). Part of the sim.Checkpointable contract used by
// speculative shard synchronization.
func (s *FCTSet) Checkpoint() { s.mark = len(s.Records) }

// Rollback truncates back to the last Checkpoint, dropping records
// appended by a rolled-back speculative run.
func (s *FCTSet) Rollback() { s.Records = s.Records[:s.mark] }

// Slowdowns returns every record's slowdown.
func (s *FCTSet) Slowdowns() []float64 {
	out := make([]float64, len(s.Records))
	for i, r := range s.Records {
		out[i] = r.Slowdown()
	}
	return out
}

// BucketRow is one flow-size bucket's slowdown statistics — one x-axis
// position of the paper's FCT figures.
type BucketRow struct {
	// (Lo, Hi] bounds the bucket by flow size in bytes.
	Lo, Hi int64
	Stats  Summary
}

// Buckets groups records into the given size-bucket edges (the figure's
// x-axis labels; edge i bounds bucket i as (edge[i-1], edge[i]], with
// the first bucket anchored at 0) and summarizes slowdowns per bucket.
// Flows larger than the last edge land in the final bucket rather than
// being dropped, so custom workloads with outsized flows keep their
// tail-slowdown statistics.
func (s *FCTSet) Buckets(edges []int64) []BucketRow {
	rows := make([]BucketRow, len(edges))
	vals := make([][]float64, len(edges))
	for i := range rows {
		lo := int64(0)
		if i > 0 {
			lo = edges[i-1]
		}
		rows[i] = BucketRow{Lo: lo, Hi: edges[i]}
	}
	for _, r := range s.Records {
		for i := range edges {
			lo := int64(0)
			if i > 0 {
				lo = edges[i-1]
			}
			if r.Size > lo && (r.Size <= edges[i] || i == len(edges)-1) {
				vals[i] = append(vals[i], r.Slowdown())
				break
			}
		}
	}
	for i := range rows {
		rows[i].Stats = Summarize(vals[i])
	}
	return rows
}

// WebSearchEdges are Figure 10's x-axis flow-size buckets.
func WebSearchEdges() []int64 {
	return []int64{6_700, 20_000, 30_000, 50_000, 73_000, 200_000, 1_000_000, 2_000_000, 5_000_000, 30_000_000}
}

// FBHadoopEdges are Figure 11's x-axis flow-size buckets.
func FBHadoopEdges() []int64 {
	return []int64{324, 400, 500, 600, 700, 1_000, 7_000, 46_000, 120_000, 10_000_000}
}
