package stats

import (
	"sort"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// FCTRecord is one completed flow's timing.
type FCTRecord struct {
	Size  int64
	FCT   sim.Time
	Ideal sim.Time
}

// Slowdown is the flow's FCT normalized by its ideal FCT on an empty
// network (paper footnote 1).
func (r FCTRecord) Slowdown() float64 {
	if r.Ideal <= 0 {
		return 1
	}
	s := float64(r.FCT) / float64(r.Ideal)
	if s < 1 {
		s = 1
	}
	return s
}

// IdealFCT returns a flow's FCT on an idle network: per-packet wire
// bytes serialized at the NIC line rate plus one base propagation RTT.
// intHeader adds the 42-byte INT tax when the scheme carries telemetry.
func IdealFCT(size int64, rate sim.Rate, baseRTT sim.Time, mtu int, intHeader bool) sim.Time {
	if size <= 0 {
		return baseRTT
	}
	pkts := (size + int64(mtu) - 1) / int64(mtu)
	overhead := int64(packet.HeaderBytes)
	if intHeader {
		overhead += packet.INTOverhead
	}
	wire := size + pkts*overhead
	return rate.TxTime(int(wire)) + baseRTT
}

// ShortFlowLimit is the flow-size ceiling (bytes) of the
// latency-sensitive class the paper highlights ("short" flows, ≤ 7 KB).
const ShortFlowLimit = 7_000

// FCTSet accumulates completed flows in one of two modes.
//
// Exact mode (the zero value, and the historical behavior) retains
// every FCTRecord: percentiles are exact, memory is linear in flow
// count, and goldens stay byte-identical.
//
// Streaming mode (NewStreamingFCT) retains no records: each completion
// streams into mergeable quantile sketches — one over all slowdowns,
// one per flow-size bucket, one for the short-flow class (slowdown and
// FCT) — so memory is O(buckets) however many flows complete, every
// quantile is within the sketch's relative accuracy of the exact
// percentile, and per-shard sets merge exactly.
type FCTSet struct {
	Records []FCTRecord

	mark int // exact-mode Checkpoint high-water mark

	str *fctStream // non-nil => streaming mode
}

// fctStream is the streaming mode's state: sketches instead of records.
type fctStream struct {
	edges   []int64
	all     *Sketch   // slowdown, every flow
	short   *Sketch   // slowdown, flows <= ShortFlowLimit
	shortUS *Sketch   // FCT in µs, flows <= ShortFlowLimit
	buckets []*Sketch // slowdown per size bucket (len == len(edges))
	dropped uint64    // records no bucket accepts (Size <= 0)
}

// NewStreamingFCT returns a streaming-mode set with the given size-
// bucket edges (nil edges default to WebSearchEdges) and sketch
// relative accuracy alpha (<= 0 means DefaultRelativeAccuracy).
func NewStreamingFCT(edges []int64, alpha float64) FCTSet {
	if len(edges) == 0 {
		edges = WebSearchEdges()
	}
	str := &fctStream{
		edges:   append([]int64(nil), edges...),
		all:     NewSketch(alpha),
		short:   NewSketch(alpha),
		shortUS: NewSketch(alpha),
		buckets: make([]*Sketch, len(edges)),
	}
	for i := range str.buckets {
		str.buckets[i] = NewSketch(alpha)
	}
	return FCTSet{str: str}
}

// Streaming reports whether the set sketches instead of retaining
// records.
func (s *FCTSet) Streaming() bool { return s.str != nil }

// Add appends one record (exact mode) or streams it into the sketches.
func (s *FCTSet) Add(r FCTRecord) {
	if s.str == nil {
		s.Records = append(s.Records, r)
		return
	}
	st := s.str
	sl := r.Slowdown()
	st.all.Add(sl)
	if r.Size <= ShortFlowLimit {
		st.short.Add(sl)
		st.shortUS.Add(r.FCT.Microseconds())
	}
	if i := bucketIndex(st.edges, r.Size); i >= 0 {
		st.buckets[i].Add(sl)
	} else {
		st.dropped++
	}
}

// Count returns how many flows the set has absorbed.
func (s *FCTSet) Count() int {
	if s.str != nil {
		return int(s.str.all.Count())
	}
	return len(s.Records)
}

// SlowdownQuantile returns the p-th percentile (0–100) of all
// slowdowns: exact in exact mode, within the sketch accuracy in
// streaming mode. Empty sets report 0 (callers publish the count
// alongside), never NaN.
func (s *FCTSet) SlowdownQuantile(p float64) float64 {
	if s.str != nil {
		return quantileOrZero(s.str.all, p)
	}
	if len(s.Records) == 0 {
		return 0
	}
	return Percentile(s.Slowdowns(), p)
}

// ShortCount counts flows no larger than ShortFlowLimit.
func (s *FCTSet) ShortCount() int {
	if s.str != nil {
		return int(s.str.short.Count())
	}
	n := 0
	for _, r := range s.Records {
		if r.Size <= ShortFlowLimit {
			n++
		}
	}
	return n
}

// ShortSlowdownQuantile is SlowdownQuantile over the short-flow class.
func (s *FCTSet) ShortSlowdownQuantile(p float64) float64 {
	if s.str != nil {
		return quantileOrZero(s.str.short, p)
	}
	var xs []float64
	for _, r := range s.Records {
		if r.Size <= ShortFlowLimit {
			xs = append(xs, r.Slowdown())
		}
	}
	if len(xs) == 0 {
		return 0
	}
	return Percentile(xs, p)
}

// ShortLatencyQuantile returns the p-th percentile of short-flow FCT in
// microseconds (the "95pct-latency" bars of Figures 2b/11). Empty sets
// report NaN like Percentile, preserving the exact-mode contract.
func (s *FCTSet) ShortLatencyQuantile(p float64) float64 {
	if s.str != nil {
		return s.str.shortUS.Quantile(p)
	}
	var xs []float64
	for _, r := range s.Records {
		if r.Size <= ShortFlowLimit {
			xs = append(xs, r.FCT.Microseconds())
		}
	}
	return Percentile(xs, p)
}

// quantileOrZero maps the empty-sketch NaN to 0.
func quantileOrZero(sk *Sketch, p float64) float64 {
	if sk.Count() == 0 {
		return 0
	}
	return sk.Quantile(p)
}

// Merge absorbs o into s: records concatenate in exact mode, sketches
// merge exactly (bucket-count addition) in streaming mode. The modes
// must match; in streaming mode the bucket edges must match too.
func (s *FCTSet) Merge(o *FCTSet) {
	if (s.str == nil) != (o.str == nil) {
		panic("stats: FCTSet.Merge across modes")
	}
	if s.str == nil {
		s.Records = append(s.Records, o.Records...)
		return
	}
	if len(s.str.edges) != len(o.str.edges) {
		panic("stats: FCTSet.Merge with different bucket edges")
	}
	s.str.all.Merge(o.str.all)
	s.str.short.Merge(o.str.short)
	s.str.shortUS.Merge(o.str.shortUS)
	for i := range s.str.buckets {
		s.str.buckets[i].Merge(o.str.buckets[i])
	}
	s.str.dropped += o.str.dropped
}

// RetainedBytes is the set's logical stat footprint: records retained
// in exact mode, occupied sketch buckets in streaming mode. It is
// deterministic and identical across shard counts and merge orders.
func (s *FCTSet) RetainedBytes() int64 {
	if s.str == nil {
		return int64(len(s.Records)) * 24 // Size + FCT + Ideal
	}
	st := s.str
	total := st.all.RetainedBytes() + st.short.RetainedBytes() + st.shortUS.RetainedBytes()
	for _, b := range st.buckets {
		total += b.RetainedBytes()
	}
	return total
}

// Checkpoint marks the current state (sim.Checkpointable, used by
// speculative shard synchronization). Exact mode records a high-water
// mark (the record list is append-only); streaming mode snapshots every
// sketch's bucket counts in place.
func (s *FCTSet) Checkpoint() {
	if s.str == nil {
		s.mark = len(s.Records)
		return
	}
	s.str.all.Checkpoint()
	s.str.short.Checkpoint()
	s.str.shortUS.Checkpoint()
	for _, b := range s.str.buckets {
		b.Checkpoint()
	}
}

// Rollback restores the last Checkpoint, dropping state added by a
// rolled-back speculative run.
func (s *FCTSet) Rollback() {
	if s.str == nil {
		s.Records = s.Records[:s.mark]
		return
	}
	s.str.all.Rollback()
	s.str.short.Rollback()
	s.str.shortUS.Rollback()
	for _, b := range s.str.buckets {
		b.Rollback()
	}
}

// SlowdownSketch returns a sketch of every flow's slowdown: streaming
// sets clone their running sketch (alpha is ignored), exact sets build
// one from the records. The campaign layer pools these across seeds so
// multi-seed percentiles come from the pooled distribution.
func (s *FCTSet) SlowdownSketch(alpha float64) *Sketch {
	if s.str != nil {
		return s.str.all.Clone()
	}
	sk := NewSketch(alpha)
	for _, r := range s.Records {
		sk.Add(r.Slowdown())
	}
	return sk
}

// Slowdowns returns every record's slowdown (exact mode only; streaming
// sets retain no per-flow values and return nil).
func (s *FCTSet) Slowdowns() []float64 {
	if s.str != nil {
		return nil
	}
	out := make([]float64, len(s.Records))
	for i, r := range s.Records {
		out[i] = r.Slowdown()
	}
	return out
}

// BucketRow is one flow-size bucket's slowdown statistics — one x-axis
// position of the paper's FCT figures.
type BucketRow struct {
	// (Lo, Hi] bounds the bucket by flow size in bytes.
	Lo, Hi int64
	Stats  Summary
}

// bucketIndex maps a flow size onto the bucket edges: edge i bounds
// bucket i as (edge[i-1], edge[i]], the first bucket is anchored at 0,
// and sizes beyond the last edge land in the final bucket. Returns -1
// for sizes no bucket accepts (Size <= 0). Binary search over the
// sorted edge array, O(log edges) per record.
func bucketIndex(edges []int64, size int64) int {
	if size <= 0 || len(edges) == 0 {
		return -1
	}
	i := sort.Search(len(edges), func(i int) bool { return edges[i] >= size })
	if i == len(edges) {
		i-- // oversized flows keep their tail statistics in the last bucket
	}
	return i
}

// Buckets groups flows into the given size-bucket edges (the figure's
// x-axis labels) and summarizes slowdowns per bucket. In streaming mode
// the edges must be the ones the set was built with (nil means "the
// configured edges") and the per-bucket Summary comes from that
// bucket's sketch: N, Mean and Max exact, percentiles within the sketch
// accuracy.
func (s *FCTSet) Buckets(edges []int64) []BucketRow {
	if s.str != nil {
		return s.str.rows(edges)
	}
	rows := bucketBounds(edges)
	vals := make([][]float64, len(edges))
	for _, r := range s.Records {
		if i := bucketIndex(edges, r.Size); i >= 0 {
			vals[i] = append(vals[i], r.Slowdown())
		}
	}
	for i := range rows {
		rows[i].Stats = Summarize(vals[i])
	}
	return rows
}

func bucketBounds(edges []int64) []BucketRow {
	rows := make([]BucketRow, len(edges))
	for i := range rows {
		lo := int64(0)
		if i > 0 {
			lo = edges[i-1]
		}
		rows[i] = BucketRow{Lo: lo, Hi: edges[i]}
	}
	return rows
}

func (st *fctStream) rows(edges []int64) []BucketRow {
	if edges == nil {
		edges = st.edges
	}
	if len(edges) != len(st.edges) {
		panic("stats: streaming FCTSet bucketed with foreign edges")
	}
	for i, e := range edges {
		if st.edges[i] != e {
			panic("stats: streaming FCTSet bucketed with foreign edges")
		}
	}
	rows := bucketBounds(edges)
	for i := range rows {
		rows[i].Stats = st.buckets[i].Summary()
	}
	return rows
}

// WebSearchEdges are Figure 10's x-axis flow-size buckets.
func WebSearchEdges() []int64 {
	return []int64{6_700, 20_000, 30_000, 50_000, 73_000, 200_000, 1_000_000, 2_000_000, 5_000_000, 30_000_000}
}

// FBHadoopEdges are Figure 11's x-axis flow-size buckets.
func FBHadoopEdges() []int64 {
	return []int64{324, 400, 500, 600, 700, 1_000, 7_000, 46_000, 120_000, 10_000_000}
}
