package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hpcc/internal/sim"
)

// randRecords draws WebSearch-ish records: sizes spanning the bucket
// edges, slowdowns with a heavy tail.
func randRecords(rng *rand.Rand, n int) []FCTRecord {
	out := make([]FCTRecord, n)
	for i := range out {
		size := int64(math.Exp(rng.Float64()*17)) + 1 // 1 .. ~2.4e7 bytes
		ideal := sim.Time(1000 + rng.Intn(100000))
		slow := 1 + rng.ExpFloat64()*4
		out[i] = FCTRecord{Size: size, Ideal: ideal, FCT: sim.Time(float64(ideal) * slow)}
	}
	return out
}

// Streaming mode must agree with exact mode on every published
// statistic: counts exactly, quantiles within the configured accuracy.
func TestStreamingFCTMatchesExact(t *testing.T) {
	const alpha = 0.01
	rng := rand.New(rand.NewSource(21))
	recs := randRecords(rng, 6000)

	var exact FCTSet
	str := NewStreamingFCT(WebSearchEdges(), alpha)
	for _, r := range recs {
		exact.Add(r)
		str.Add(r)
	}

	if exact.Count() != str.Count() || exact.ShortCount() != str.ShortCount() {
		t.Fatalf("counts: exact (%d,%d) vs streaming (%d,%d)",
			exact.Count(), exact.ShortCount(), str.Count(), str.ShortCount())
	}
	// The sketch guarantee is α relative to an exact order statistic, so
	// bracket each estimate by the order statistics surrounding its rank
	// (Percentile interpolates between them, which is a different — and
	// for sparse tails, wider — estimator).
	bracket := func(got float64, xs []float64, p float64, label string) {
		t.Helper()
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		rank := p / 100 * float64(len(sorted)-1)
		lo := sorted[int(rank)] * (1 - alpha)
		hi := sorted[int(math.Ceil(rank))] * (1 + alpha)
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Errorf("%s p%v: got %g, want within [%g, %g]", label, p, got, lo, hi)
		}
	}
	var shortSl, shortUS []float64
	perBucket := make([][]float64, len(WebSearchEdges()))
	for _, r := range recs {
		if r.Size <= ShortFlowLimit {
			shortSl = append(shortSl, r.Slowdown())
			shortUS = append(shortUS, r.FCT.Microseconds())
		}
		if i := bucketIndex(WebSearchEdges(), r.Size); i >= 0 {
			perBucket[i] = append(perBucket[i], r.Slowdown())
		}
	}
	for _, p := range []float64{50, 95, 99, 99.9} {
		bracket(str.SlowdownQuantile(p), exact.Slowdowns(), p, "slowdown")
		bracket(str.ShortSlowdownQuantile(p), shortSl, p, "short slowdown")
		bracket(str.ShortLatencyQuantile(p), shortUS, p, "short latency")
	}
	er, sr := exact.Buckets(WebSearchEdges()), str.Buckets(nil)
	for i := range er {
		if er[i].Lo != sr[i].Lo || er[i].Hi != sr[i].Hi || er[i].Stats.N != sr[i].Stats.N {
			t.Fatalf("bucket %d shape: %+v vs %+v", i, er[i], sr[i])
		}
		if er[i].Stats.Max != sr[i].Stats.Max {
			t.Errorf("bucket %d max: %g vs %g", i, sr[i].Stats.Max, er[i].Stats.Max)
		}
		if er[i].Stats.N > 0 {
			bracket(sr[i].Stats.P95, perBucket[i], 95, "bucket")
		}
	}
}

// Per-shard streaming sets merged in any order must equal the
// single-set stream exactly.
func TestStreamingFCTMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	recs := randRecords(rng, 3000)
	single := NewStreamingFCT(nil, 0)
	for _, r := range recs {
		single.Add(r)
	}
	for _, shards := range []int{2, 4, 8} {
		parts := make([]FCTSet, shards)
		for i := range parts {
			parts[i] = NewStreamingFCT(nil, 0)
		}
		for i, r := range recs {
			parts[i%shards].Add(r)
		}
		merged := NewStreamingFCT(nil, 0)
		for _, i := range rng.Perm(shards) {
			merged.Merge(&parts[i])
		}
		if merged.Count() != single.Count() || merged.RetainedBytes() != single.RetainedBytes() {
			t.Fatalf("shards=%d: count/bytes %d/%d vs %d/%d", shards,
				merged.Count(), merged.RetainedBytes(), single.Count(), single.RetainedBytes())
		}
		for _, p := range []float64{50, 95, 99, 99.9} {
			if merged.SlowdownQuantile(p) != single.SlowdownQuantile(p) {
				t.Fatalf("shards=%d p%v: %g vs %g", shards, p,
					merged.SlowdownQuantile(p), single.SlowdownQuantile(p))
			}
		}
	}
}

func TestStreamingFCTCheckpointRollback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set := NewStreamingFCT(nil, 0)
	for _, r := range randRecords(rng, 500) {
		set.Add(r)
	}
	p99, short, bytes := set.SlowdownQuantile(99), set.ShortCount(), set.RetainedBytes()
	set.Checkpoint()
	for _, r := range randRecords(rng, 800) {
		set.Add(r)
	}
	set.Rollback()
	if set.Count() != 500 || set.SlowdownQuantile(99) != p99 || set.ShortCount() != short || set.RetainedBytes() != bytes {
		t.Fatalf("rollback drifted: count %d p99 %g short %d bytes %d",
			set.Count(), set.SlowdownQuantile(99), set.ShortCount(), set.RetainedBytes())
	}
}

// Streaming retention must stay flat in flow count while exact
// retention grows linearly — the point of the refactor. Bucket
// occupancy saturates once the value range has been seen, so compare
// at saturated sample counts.
func TestStreamingFCTRetainedBytesFlat(t *testing.T) {
	build := func(n int) (int64, int64) {
		rng := rand.New(rand.NewSource(1))
		var exact FCTSet
		str := NewStreamingFCT(nil, 0)
		for _, r := range randRecords(rng, n) {
			exact.Add(r)
			str.Add(r)
		}
		return exact.RetainedBytes(), str.RetainedBytes()
	}
	e1, s1 := build(20000)
	e4, s4 := build(80000)
	if e4 != 4*e1 {
		t.Errorf("exact retention not linear: %d then %d", e1, e4)
	}
	if float64(s4) > 1.25*float64(s1) {
		t.Errorf("streaming retention grew with flow count: %d then %d", s1, s4)
	}
	if s4 >= e1 {
		t.Errorf("streaming footprint %d not below exact %d at 20K flows", s4, e1)
	}
}

// The binary-search bucket router must reproduce the historical linear
// scan exactly, for any sorted edge set and any sizes.
func TestBucketIndexMatchesLinearScan(t *testing.T) {
	linear := func(edges []int64, size int64) int {
		for i := range edges {
			lo := int64(0)
			if i > 0 {
				lo = edges[i-1]
			}
			if size > lo && (size <= edges[i] || i == len(edges)-1) {
				return i
			}
		}
		return -1
	}
	f := func(seed int64, nEdges uint8, nSizes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := make([]int64, int(nEdges%12)+1)
		for i := range edges {
			edges[i] = rng.Int63n(1 << 20)
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		for i := 0; i <= int(nSizes); i++ {
			size := rng.Int63n(1<<21) - 10
			// Exercise exact edge hits too.
			if i%3 == 0 {
				size = edges[rng.Intn(len(edges))]
			}
			if got, want := bucketIndex(edges, size), linear(edges, size); got != want {
				t.Logf("edges %v size %d: binary %d, linear %d", edges, size, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingFCTForeignEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign edges should panic")
		}
	}()
	set := NewStreamingFCT(WebSearchEdges(), 0)
	set.Buckets(FBHadoopEdges())
}
