package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// keyCounts flattens a sketch's dense store to logical (key -> count),
// ignoring physical padding, which legitimately differs by build order.
func keyCounts(s *Sketch) map[int]uint64 {
	out := map[int]uint64{}
	for i, n := range s.bins {
		if n != 0 {
			out[s.lo+i] = n
		}
	}
	return out
}

func sameSketch(t *testing.T, a, b *Sketch, label string) {
	t.Helper()
	// The running sum is the one field float addition order can nudge in
	// the last bits; everything rank-based must match exactly.
	sumDrift := math.Abs(a.sum - b.sum)
	if a.count != b.count || a.zeros != b.zeros || sumDrift > 1e-9*math.Abs(b.sum) || a.min != b.min || a.max != b.max {
		t.Fatalf("%s: scalar state differs: (%d,%d,%g,%g,%g) vs (%d,%d,%g,%g,%g)",
			label, a.count, a.zeros, a.sum, a.min, a.max, b.count, b.zeros, b.sum, b.min, b.max)
	}
	ka, kb := keyCounts(a), keyCounts(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d occupied buckets vs %d", label, len(ka), len(kb))
	}
	for k, n := range ka {
		if kb[k] != n {
			t.Fatalf("%s: bucket %d = %d vs %d", label, k, n, kb[k])
		}
	}
}

// The core guarantee: every quantile estimate is within the configured
// relative accuracy of the exact order statistics bracketing that rank,
// across distribution shapes (uniform, exponential, lognormal,
// heavy-tail Pareto, constant, and slowdown-like >= 1 values).
func TestSketchAccuracyProperty(t *testing.T) {
	dists := map[string]func(r *rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() * 100 },
		"exp":       func(r *rand.Rand) float64 { return r.ExpFloat64() * 10 },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 2) },
		"pareto":    func(r *rand.Rand) float64 { return math.Pow(r.Float64()+1e-12, -0.7) },
		"constant":  func(r *rand.Rand) float64 { return 42 },
		"slowdown":  func(r *rand.Rand) float64 { return 1 + r.ExpFloat64()*3 },
	}
	ps := []float64{1, 5, 25, 50, 75, 90, 95, 99, 99.9}
	for name, gen := range dists {
		for _, alpha := range []float64{0.01, 0.05} {
			rng := rand.New(rand.NewSource(7))
			sk := NewSketch(alpha)
			var xs []float64
			for i := 0; i < 5000; i++ {
				v := gen(rng)
				xs = append(xs, v)
				sk.Add(v)
			}
			sort.Float64s(xs)
			for _, p := range ps {
				got := sk.Quantile(p)
				rank := p / 100 * float64(len(xs)-1)
				lo := xs[int(rank)] * (1 - alpha)
				hi := xs[int(math.Ceil(rank))] * (1 + alpha)
				if got < lo-1e-9 || got > hi+1e-9 {
					t.Errorf("%s α=%v p%v: got %g, want within [%g, %g]", name, alpha, p, got, lo, hi)
				}
			}
			if sk.Count() != 5000 {
				t.Fatalf("%s: count %d", name, sk.Count())
			}
		}
	}
}

// Merge must be exact: bucket counts add, so any split of the stream
// into shards, merged in any order, reproduces the single-pass sketch's
// logical state bit-for-bit — quantiles, counts, sums, extremes and
// occupied buckets all identical.
func TestSketchMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs []float64
	for i := 0; i < 4000; i++ {
		switch i % 10 {
		case 0:
			xs = append(xs, 0) // zero-bucket traffic
		default:
			xs = append(xs, math.Exp(rng.NormFloat64()*3))
		}
	}
	single := NewSketch(0.01)
	for _, v := range xs {
		single.Add(v)
	}

	for _, shards := range []int{2, 4, 8} {
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = NewSketch(0.01)
		}
		for i, v := range xs {
			parts[i%shards].Add(v)
		}
		for trial := 0; trial < 4; trial++ {
			merged := NewSketch(0.01)
			for _, i := range rng.Perm(shards) {
				merged.Merge(parts[i])
			}
			sameSketch(t, merged, single, "merge")
			if merged.RetainedBytes() != single.RetainedBytes() {
				t.Fatalf("shards=%d: retained %d vs %d bytes", shards,
					merged.RetainedBytes(), single.RetainedBytes())
			}
		}
	}
}

func TestSketchMergeAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different α should panic")
		}
	}()
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(1)
	a.Merge(b)
}

func TestSketchCheckpointRollback(t *testing.T) {
	sk := NewSketch(0.01)
	for i := 1; i <= 100; i++ {
		sk.Add(float64(i))
	}
	want := sk.Clone()
	sk.Checkpoint()
	for i := 0; i < 500; i++ {
		sk.Add(float64(i) * 7.3)
	}
	sk.Rollback()
	sameSketch(t, sk, want, "rollback")
	// Rollback is repeatable.
	sk.Add(9e6)
	sk.Rollback()
	sameSketch(t, sk, want, "second rollback")
}

// Hot-path contract: once the value range has been seen, Add and the
// Checkpoint/Rollback cycle allocate nothing.
func TestSketchAllocFreeAfterWarmup(t *testing.T) {
	sk := NewSketch(0.01)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		sk.Add(math.Exp(rng.NormFloat64() * 2))
	}
	sk.Checkpoint()
	sk.Rollback()
	if n := testing.AllocsPerRun(200, func() {
		sk.Add(1 + rng.Float64()*100)
	}); n > 0 {
		t.Errorf("Add allocates %.1f/op after warmup", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		sk.Checkpoint()
		sk.Add(2.5)
		sk.Rollback()
	}); n > 0 {
		t.Errorf("Checkpoint/Rollback allocates %.1f/op after warmup", n)
	}
}

// The collapsing store bounds memory under pathological value ranges:
// counts survive, the store stays within maxBins, and upper quantiles
// keep their accuracy (collapse folds the lowest buckets only).
func TestSketchCollapseBoundsStore(t *testing.T) {
	sk := newSketchMax(0.01, 64)
	rng := rand.New(rand.NewSource(5))
	var xs []float64
	for i := 0; i < 3000; i++ {
		v := math.Pow(10, rng.Float64()*12-6) // 1e-6 .. 1e6
		xs = append(xs, v)
		sk.Add(v)
	}
	if len(sk.bins) > 64 {
		t.Fatalf("store holds %d bins, cap 64", len(sk.bins))
	}
	if sk.Count() != 3000 {
		t.Fatalf("collapse lost values: count %d", sk.Count())
	}
	sort.Float64s(xs)
	// Collapse folds the LOWEST buckets, so only quantiles inside the
	// retained top span keep full accuracy. With 64 retained buckets at
	// α = 1%, that span covers ~max/3.6 upward — p99.5 is safely inside.
	for _, p := range []float64{99.5, 99.9} {
		got := sk.Quantile(p)
		rank := p / 100 * float64(len(xs)-1)
		lo, hi := xs[int(rank)]*0.99, xs[int(math.Ceil(rank))]*1.01
		if got < lo || got > hi {
			t.Errorf("p%v after collapse: got %g, want within [%g, %g]", p, got, lo, hi)
		}
	}
	// Collapsed quantiles still behave: monotone in p, bounded by the
	// exact extremes.
	prev := sk.Quantile(0)
	for p := 5.0; p <= 100; p += 5 {
		v := sk.Quantile(p)
		if v < prev || v < sk.Min() || v > sk.Max() {
			t.Fatalf("collapsed quantiles not monotone at p%v: %g after %g", p, v, prev)
		}
		prev = v
	}
	if sk.Max() != xs[len(xs)-1] || sk.Min() != xs[0] {
		t.Errorf("extremes drifted: min %g max %g", sk.Min(), sk.Max())
	}
}

func TestSketchEmptyAndExtremes(t *testing.T) {
	sk := NewSketch(0)
	if !math.IsNaN(sk.Quantile(50)) || !math.IsNaN(sk.Min()) || !math.IsNaN(sk.Max()) {
		t.Error("empty sketch must report NaN order statistics")
	}
	if s := sk.Summary(); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	sk.Add(0)
	sk.Add(5)
	if sk.Quantile(0) != 0 || sk.Quantile(100) != 5 {
		t.Errorf("p0/p100 = %g/%g, want exact extremes 0/5", sk.Quantile(0), sk.Quantile(100))
	}
	if sk.zeros != 1 {
		t.Errorf("zero bucket = %d", sk.zeros)
	}
	sk.Reset()
	if sk.Count() != 0 || len(sk.bins) != 0 {
		t.Error("Reset did not empty the sketch")
	}
}

// Summary must agree with Summarize over the same stream to within the
// accuracy bound (mean and max exactly).
func TestSketchSummaryMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sk := NewSketch(0.01)
	var xs []float64
	for i := 0; i < 3000; i++ {
		v := 1 + rng.ExpFloat64()*5
		xs = append(xs, v)
		sk.Add(v)
	}
	exact := Summarize(xs)
	got := sk.Summary()
	if got.N != exact.N || got.Max != exact.Max {
		t.Fatalf("N/Max: %+v vs %+v", got, exact)
	}
	if math.Abs(got.Mean-exact.Mean) > 1e-9 {
		t.Errorf("mean %g vs %g", got.Mean, exact.Mean)
	}
	for _, q := range []struct{ got, want float64 }{{got.P50, exact.P50}, {got.P95, exact.P95}, {got.P99, exact.P99}} {
		if math.Abs(q.got-q.want)/q.want > 0.011 {
			t.Errorf("quantile %g vs exact %g beyond α", q.got, q.want)
		}
	}
}
