package stats

import (
	"testing"

	"hpcc/internal/sim"
)

// The retention cap must plateau like CompletedFlowWindow: however long
// the horizon, the monitor holds at most SampleCap rows, thinned to an
// even power-of-two stride over the whole run — not truncated at the
// front or back.
func TestQueueMonitorSampleCapPlateau(t *testing.T) {
	const interval = 10 * sim.Microsecond
	const capRows = 32
	eng := sim.NewEngine()
	// No ports: the mechanism under test is per-tick row retention,
	// which depends only on the tick schedule.
	m := NewQueueMonitor(eng, nil, 0, interval, 100*sim.Millisecond)
	m.SampleCap = capRows

	var streamed int
	m.OnSample = func(TimePoint) { streamed++ }

	high := 0
	for step := 0; step < 10; step++ {
		eng.RunUntil(sim.Time(step+1) * 10 * sim.Millisecond)
		if n := len(m.Series); n > high {
			high = n
		}
		if len(m.Series) > capRows {
			t.Fatalf("after %d ms: %d retained rows, cap %d", (step+1)*10, len(m.Series), capRows)
		}
	}
	if high < capRows/2 {
		t.Fatalf("high-water %d rows — cap %d never approached, test is vacuous", high, capRows)
	}
	// 10 ms / 10 µs = 1000 ticks per step, 10000 total.
	if streamed != 10000 {
		t.Fatalf("streamed %d ticks, want 10000 (OnSample must see every tick)", streamed)
	}
	// Retained instants are evenly strided: consecutive Series times
	// differ by exactly stride × interval for one power-of-two stride.
	if len(m.Series) < 2 {
		t.Fatalf("only %d retained rows", len(m.Series))
	}
	gap := m.Series[1].T - m.Series[0].T
	stride := gap / interval
	if stride&(stride-1) != 0 || stride == 0 {
		t.Fatalf("stride %d is not a power of two", stride)
	}
	for i := 1; i < len(m.Series); i++ {
		if m.Series[i].T-m.Series[i-1].T != gap {
			t.Fatalf("uneven retained gaps: %v then %v",
				gap, m.Series[i].T-m.Series[i-1].T)
		}
	}
	// The retained window spans the whole run, not just its head.
	if last := m.Series[len(m.Series)-1].T; last < 90*sim.Millisecond {
		t.Fatalf("last retained instant %v — thinning truncated the tail", last)
	}
}

// Without a cap, every tick is retained — the pre-knob behavior.
func TestQueueMonitorUncapped(t *testing.T) {
	eng := sim.NewEngine()
	m := NewQueueMonitor(eng, nil, 0, 10*sim.Microsecond, sim.Millisecond)
	eng.Run()
	if len(m.Series) != 100 {
		t.Fatalf("retained %d rows, want 100", len(m.Series))
	}
}
