package stats

import (
	"testing"

	"hpcc/internal/sim"
)

// The retention cap must plateau like CompletedFlowWindow: however long
// the horizon, the monitor holds at most SampleCap rows, thinned to an
// even power-of-two stride over the whole run — not truncated at the
// front or back.
func TestQueueMonitorSampleCapPlateau(t *testing.T) {
	const interval = 10 * sim.Microsecond
	const capRows = 32
	eng := sim.NewEngine()
	// No ports: the mechanism under test is per-tick row retention,
	// which depends only on the tick schedule.
	m := NewQueueMonitor(eng, nil, 0, interval, 100*sim.Millisecond)
	m.SampleCap = capRows

	var streamed int
	m.OnSample = func(TimePoint) { streamed++ }

	high := 0
	for step := 0; step < 10; step++ {
		eng.RunUntil(sim.Time(step+1) * 10 * sim.Millisecond)
		if n := len(m.Series); n > high {
			high = n
		}
		if len(m.Series) > capRows {
			t.Fatalf("after %d ms: %d retained rows, cap %d", (step+1)*10, len(m.Series), capRows)
		}
	}
	if high < capRows/2 {
		t.Fatalf("high-water %d rows — cap %d never approached, test is vacuous", high, capRows)
	}
	// 10 ms / 10 µs = 1000 ticks per step, 10000 total.
	if streamed != 10000 {
		t.Fatalf("streamed %d ticks, want 10000 (OnSample must see every tick)", streamed)
	}
	// Retained instants are evenly strided: consecutive Series times
	// differ by exactly stride × interval for one power-of-two stride.
	if len(m.Series) < 2 {
		t.Fatalf("only %d retained rows", len(m.Series))
	}
	gap := m.Series[1].T - m.Series[0].T
	stride := gap / interval
	if stride&(stride-1) != 0 || stride == 0 {
		t.Fatalf("stride %d is not a power of two", stride)
	}
	for i := 1; i < len(m.Series); i++ {
		if m.Series[i].T-m.Series[i-1].T != gap {
			t.Fatalf("uneven retained gaps: %v then %v",
				gap, m.Series[i].T-m.Series[i-1].T)
		}
	}
	// The retained window spans the whole run, not just its head.
	if last := m.Series[len(m.Series)-1].T; last < 90*sim.Millisecond {
		t.Fatalf("last retained instant %v — thinning truncated the tail", last)
	}
}

// Without a cap, every tick is retained — the pre-knob behavior.
func TestQueueMonitorUncapped(t *testing.T) {
	eng := sim.NewEngine()
	m := NewQueueMonitor(eng, nil, 0, 10*sim.Microsecond, sim.Millisecond)
	eng.Run()
	if len(m.Series) != 100 {
		t.Fatalf("retained %d rows, want 100", len(m.Series))
	}
}

// Sketch mode retains no rows and closes a window every FlushEvery
// ticks: contiguous windows, each covering exactly FlushEvery instants,
// while OnSample still sees every tick.
func TestQueueMonitorSketchFlushCadence(t *testing.T) {
	const interval = 10 * sim.Microsecond
	eng := sim.NewEngine()
	m := NewQueueMonitor(eng, nil, 0, interval, 10*sim.Millisecond)
	m.EnableSketch(0)
	m.FlushEvery = 100
	var flushes []QueueFlush
	m.OnFlush = func(f QueueFlush) { flushes = append(flushes, f) }
	streamed := 0
	m.OnSample = func(TimePoint) { streamed++ }
	eng.Run()

	if len(m.Samples) != 0 || len(m.Series) != 0 {
		t.Fatalf("sketch mode retained %d samples / %d series rows", len(m.Samples), len(m.Series))
	}
	if streamed != 1000 {
		t.Fatalf("OnSample saw %d ticks, want 1000", streamed)
	}
	if len(flushes) != 10 {
		t.Fatalf("%d flushes, want 10", len(flushes))
	}
	prev := sim.Time(0)
	for i, f := range flushes {
		if f.Ticks != 100 {
			t.Fatalf("flush %d covers %d ticks, want 100", i, f.Ticks)
		}
		if f.Start != prev {
			t.Fatalf("flush %d window [%v, %v] not contiguous with previous close %v", i, f.Start, f.At, prev)
		}
		prev = f.At
	}
	if prev != 10*sim.Millisecond {
		t.Fatalf("last window closed at %v, want 10ms", prev)
	}
}

// Sketch-mode Checkpoint/Rollback must restore the cumulative sketch,
// the open window, and the window phase — the speculative shard-sync
// contract.
func TestQueueMonitorSketchCheckpointRollback(t *testing.T) {
	eng := sim.NewEngine()
	m := NewQueueMonitor(eng, nil, 0, 10*sim.Microsecond, 10*sim.Millisecond)
	m.EnableSketch(0)
	m.FlushEvery = 64
	eng.RunUntil(sim.Millisecond) // 100 ticks: mid-window (100 mod 64 = 36)
	m.sketch.Add(5)               // stand in for port observations
	m.window.Add(5)
	m.Checkpoint()
	wantTicks, wantStart := m.winTicks, m.winStart
	eng.RunUntil(2 * sim.Millisecond)
	m.sketch.Add(9)
	m.window.Add(9)
	m.Rollback()
	if m.winTicks != wantTicks || m.winStart != wantStart {
		t.Fatalf("window phase drifted: (%d, %v) vs (%d, %v)", m.winTicks, m.winStart, wantTicks, wantStart)
	}
	if m.sketch.Count() != 1 || m.sketch.Max() != 5 || m.window.Count() != 1 {
		t.Fatalf("sketch state not restored: count %d max %g window %d",
			m.sketch.Count(), m.sketch.Max(), m.window.Count())
	}
}
