package topology

import (
	"math"
	"testing"

	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/host"
	"hpcc/internal/sim"
)

func TestParkingLotShape(t *testing.T) {
	eng := sim.NewEngine()
	nw := ParkingLot(eng, 3, 100*sim.Gbps, 100*sim.Gbps, sim.Microsecond, hcfg(), scfg())
	if len(nw.Switches) != 4 {
		t.Fatalf("switches = %d, want 4", len(nw.Switches))
	}
	if len(nw.Hosts) != 2+2*3 {
		t.Fatalf("hosts = %d, want 8", len(nw.Hosts))
	}
	f := nw.StartFlow(0, 1, 100_000, nil) // long path, 5 hops
	eng.Run()
	if !f.Done() {
		t.Fatal("long flow did not complete")
	}
}

// §3.2 and Appendix A.3: a long flow crossing two congested links
// observes max(U) over both, biasing the allocation away from max-min
// (everyone C/2) toward proportional fairness — long ≈ C/3, locals
// ≈ 2C/3. The measured split lands on the proportional-fair point.
func TestParkingLotProportionalShare(t *testing.T) {
	eng := sim.NewEngine()
	const segments = 2
	nw := ParkingLot(eng, segments, 100*sim.Gbps, 100*sim.Gbps, sim.Microsecond, hcfg(), scfg())

	acked := make([]int64, 1+segments)
	long := nw.StartFlow(0, 1, 1<<40, nil)
	long.OnProgress = func(_ *host.Flow, n int64) { acked[0] += n }
	for i := 0; i < segments; i++ {
		i := i
		f := nw.StartFlow(2+2*i, 3+2*i, 1<<40, nil)
		f.OnProgress = func(_ *host.Flow, n int64) { acked[1+i] += n }
	}
	// Measure the second half of a 4 ms run (converged regime).
	eng.RunUntil(2 * sim.Millisecond)
	at2ms := append([]int64(nil), acked...)
	eng.RunUntil(4 * sim.Millisecond)

	// Achievable per-link goodput: line × payload fraction × η.
	window := (2 * sim.Millisecond).Seconds()
	lineGoodput := (100 * sim.Gbps).BytesPerSec() * 1000 / 1106 * 0.95 * window
	longBytes := float64(acked[0] - at2ms[0])
	// Proportional-fair prediction: long = C/3.
	if math.Abs(longBytes-lineGoodput/3)/(lineGoodput/3) > 0.25 {
		t.Fatalf("long flow moved %.0f bytes, want ≈ C/3 = %.0f (proportional fairness, A.3)",
			longBytes, lineGoodput/3)
	}
	for i := 1; i < len(acked); i++ {
		local := float64(acked[i] - at2ms[i])
		// Locals take the rest of their segment: ≈ 2C/3.
		if math.Abs(local-2*lineGoodput/3)/(2*lineGoodput/3) > 0.25 {
			t.Fatalf("local flow %d moved %.0f bytes, want ≈ 2C/3 = %.0f", i, local, 2*lineGoodput/3)
		}
		// And each segment ends up fully utilized.
		if (longBytes+local)/lineGoodput < 0.85 {
			t.Fatalf("segment %d utilization %.2f too low", i, (longBytes+local)/lineGoodput)
		}
	}
}

// A route change mid-flow must flip the INT pathID and make HPCC
// rebuild its link records (§4.1) without disturbing delivery.
func TestRouteChangeResetsHPCCPath(t *testing.T) {
	// A — S1 — {S2 or S3} — S4 — B: S1 holds the ECMP choice.
	eng := sim.NewEngine()
	b := NewBuilder(eng, hcfg(), scfg())
	s1, s2, s3, s4 := b.AddSwitch(), b.AddSwitch(), b.AddSwitch(), b.AddSwitch()
	ha := b.AddHost()
	hb := b.AddHost()
	rate := 100 * sim.Gbps
	d := sim.Microsecond
	b.Link(ha, s1, rate, d)
	b.Link(s1, s2, rate, d)
	b.Link(s1, s3, rate, d)
	b.Link(s2, s4, rate, d)
	b.Link(s3, s4, rate, d)
	b.Link(s4, hb, rate, d)
	nw := b.Build()

	// Pin the forward path through S2 only (strip ECMP).
	viaS2 := nw.Switches[0].Routes()[hb.ID()][:1]
	nw.Switches[0].InstallRoute(hb.ID(), viaS2)

	f := nw.StartFlow(0, 1, 1<<30, nil)
	eng.RunUntil(500 * sim.Microsecond)
	alg := f.Alg().(*hpcccc.HPCC)
	pathBefore := alg.PathID()
	if pathBefore == 0 {
		t.Fatal("setup: no INT path recorded yet")
	}

	// Reroute through S3 mid-flow: S1's port 2 (0 = to S2, 1 = to S3
	// per link creation order... port indices are assigned in Link
	// order: S1 gained ports to hostA? No: links were added s1-s2,
	// s1-s3 after ha-s1, so S1 port 0 faces host A, 1 faces S2, 2
	// faces S3).
	nw.Switches[0].InstallRoute(hb.ID(), []int{2})
	eng.RunUntil(1500 * sim.Microsecond)

	if alg.PathID() == pathBefore {
		t.Fatal("pathID unchanged after reroute")
	}
	if alg.Window() <= 0 || math.IsNaN(alg.Window()) {
		t.Fatal("window corrupted by reroute")
	}
	f.Abort()
	eng.Run()
}
