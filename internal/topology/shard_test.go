package topology

import (
	"testing"

	"hpcc/internal/cc/hpcc"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
)

func shardCfg() (host.Config, fabric.SwitchConfig) {
	hcfg := host.Config{CC: hpcc.New(hpcc.Config{}), INT: true, BaseRTT: 7 * sim.Microsecond, Seed: 1}
	scfg := fabric.SwitchConfig{PFCEnabled: true, INTEnabled: true, Seed: 1}
	return hcfg, scfg
}

// flowFates captures everything observable about a run's flows plus
// fabric counters, for byte-for-byte comparison across shard counts.
type flowFate struct {
	id       int32
	acked    int64
	fct      sim.Time
	done     bool
	pkts     uint64
	rtx      uint64
	finished sim.Time
}

func fates(t *testing.T, nw *Network) []flowFate {
	t.Helper()
	var out []flowFate
	for _, h := range nw.Hosts {
		for id, f := range h.Flows() {
			out = append(out, flowFate{
				id: id, acked: f.Acked(), fct: f.FCT(), done: f.Done(),
				pkts: f.PacketsSent(), rtx: f.Retransmits(), finished: f.Finished(),
			})
		}
	}
	// Map order is random; sort by ID for comparison.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].id < out[j-1].id; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// dumbbellWorkload starts a congested bidirectional mix: every left
// host ships to a right host and vice versa, plus a 3-to-1 incast onto
// one receiver, so the bottleneck link, PFC and INT all engage.
func dumbbellWorkload(nw *Network) {
	pairs := len(nw.Hosts) / 2
	for i := 0; i < pairs; i++ {
		nw.StartFlow(i, pairs+i, 200_000, nil)
	}
	for i := 1; i < pairs; i++ {
		nw.StartFlow(pairs+i, i, 120_000, nil)
	}
	for i := 1; i < 4; i++ {
		nw.StartFlow(i, pairs, 150_000, nil) // incast onto host `pairs`
	}
}

// A 2-shard (and 3-shard) dumbbell run must be byte-identical to the
// single-engine run: same per-flow completion times, packet counts,
// drops and PFC pause totals at the same seed.
func TestShardDumbbellEquivalence(t *testing.T) {
	const horizon = 40 * sim.Millisecond
	run := func(shards int) ([]flowFate, uint64, sim.Time) {
		hcfg, scfg := shardCfg()
		eng := sim.NewEngine()
		nw := Dumbbell(eng, 6, 100*sim.Gbps, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)
		if shards > 1 {
			sh, err := Shard(nw, shards, sim.NewEngine)
			if err != nil {
				t.Fatalf("Shard(%d): %v", shards, err)
			}
			if sh.Lookahead != sim.Microsecond {
				t.Fatalf("lookahead = %v, want 1us", sh.Lookahead)
			}
			dumbbellWorkload(nw)
			sh.Group.RunUntil(horizon)
		} else {
			dumbbellWorkload(nw)
			eng.RunUntil(horizon)
		}
		var paused sim.Time
		for _, sw := range nw.Switches {
			for _, p := range sw.Ports() {
				paused += p.PausedFor(fabric.PrioData)
			}
		}
		return fates(t, nw), nw.TotalDrops(), paused
	}

	base, drops, paused := run(1)
	for _, k := range []int{2, 3} {
		got, gd, gp := run(k)
		if len(got) != len(base) {
			t.Fatalf("%d shards: %d flows, want %d", k, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%d shards: flow %d diverged:\n  1 shard: %+v\n  %d shards: %+v",
					k, base[i].id, base[i], k, got[i])
			}
		}
		if gd != drops || gp != paused {
			t.Fatalf("%d shards: drops/paused = %d/%v, want %d/%v", k, gd, gp, drops, paused)
		}
		if !base[0].done {
			t.Fatal("workload produced no completed flows — test is vacuous")
		}
	}
}

// The partition of the CI FatTree: hosts balance across shards, the
// lookahead is the 1us link delay, and aggs/cores spread over shards.
func TestShardFatTreePartition(t *testing.T) {
	hcfg, scfg := shardCfg()
	eng := sim.NewEngine()
	nw := FatTree(eng, ScaledFatTree(), hcfg, scfg)
	sh, err := Shard(nw, 4, sim.NewEngine)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Engines) != 4 {
		t.Fatalf("engines = %d, want 4", len(sh.Engines))
	}
	counts := make([]int, 4)
	for _, s := range sh.HostShard {
		counts[s]++
	}
	for i, c := range counts {
		if c != 8 { // 32 hosts, 4 ToR clusters of 8
			t.Fatalf("shard %d has %d hosts, want 8 (%v)", i, c, counts)
		}
	}
	if sh.Lookahead != sim.Microsecond {
		t.Fatalf("lookahead = %v, want 1us", sh.Lookahead)
	}
	if sh.BoundaryPorts == 0 {
		t.Fatal("no boundary ports on a sharded FatTree")
	}
}

// Topology-aware placement of bare switch clusters: aggs go with the
// shard whose ToRs they serve and cores follow the aggs, which must
// yield strictly fewer boundary ports than the old round-robin spread
// on the FatTree, and never more on the Pod.
func TestShardBarePlacementCutsBoundary(t *testing.T) {
	// ScaledFatTree: 4 ToR clusters, 4 aggs fully meshed to the ToRs,
	// 2 cores fully meshed to the aggs. Round-robin scattered aggs and
	// cores across shards, making every agg-core link a potential
	// boundary: 24 boundary ports at k=2 and 36 at k=4. Adjacency
	// placement keeps all agg-core links on one shard, leaving only the
	// unavoidable agg-ToR crossings: 4 aggs x (k-1)/k of their 4 ToR
	// links, both directions.
	for _, tc := range []struct {
		k, want, roundRobin int
	}{
		{2, 16, 24},
		{4, 24, 36},
	} {
		hcfg, scfg := shardCfg()
		nw := FatTree(sim.NewEngine(), ScaledFatTree(), hcfg, scfg)
		sh, err := Shard(nw, tc.k, sim.NewEngine)
		if err != nil {
			t.Fatal(err)
		}
		if sh.BoundaryPorts != tc.want {
			t.Fatalf("fattree k=%d: %d boundary ports, want %d", tc.k, sh.BoundaryPorts, tc.want)
		}
		if sh.BoundaryPorts >= tc.roundRobin {
			t.Fatalf("fattree k=%d: %d boundary ports, not below round-robin's %d",
				tc.k, sh.BoundaryPorts, tc.roundRobin)
		}
	}

	// The testbed Pod has one agg tied 2-2 between the two ToR-pair
	// clusters: no placement beats any other, so the count must simply
	// not regress past the round-robin figure (4 boundary ports).
	hcfg, scfg := shardCfg()
	nw := Pod(sim.NewEngine(), PodSpec{}, hcfg, scfg)
	sh, err := Shard(nw, 2, sim.NewEngine)
	if err != nil {
		t.Fatal(err)
	}
	if sh.BoundaryPorts > 4 {
		t.Fatalf("pod: %d boundary ports, round-robin had 4", sh.BoundaryPorts)
	}
}

// Star has a single host cluster at ToR granularity; sharding now
// refines to per-host granularity (the switch stays whole, hosts
// split), so a 5-host star must partition — and replay the serial run
// byte-for-byte, incast and all.
func TestShardStarPerHost(t *testing.T) {
	const horizon = 40 * sim.Millisecond
	starWorkload := func(nw *Network) {
		n := len(nw.Hosts)
		for i := 1; i < n; i++ {
			nw.StartFlow(i, 0, 150_000, nil) // incast onto host 0
		}
		for i := 1; i < n; i++ {
			nw.StartFlow(0, i, 80_000, nil)
		}
	}
	run := func(shards int) []flowFate {
		hcfg, scfg := shardCfg()
		eng := sim.NewEngine()
		nw := Star(eng, 5, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)
		if shards > 1 {
			sh, err := Shard(nw, shards, sim.NewEngine)
			if err != nil {
				t.Fatalf("Shard(star, %d): %v", shards, err)
			}
			if len(sh.Engines) != shards {
				t.Fatalf("star k=%d: %d engines", shards, len(sh.Engines))
			}
			if sh.Lookahead != sim.Microsecond {
				t.Fatalf("lookahead = %v, want 1us", sh.Lookahead)
			}
			starWorkload(nw)
			if err := sh.Group.RunUntil(horizon); err != nil {
				t.Fatal(err)
			}
		} else {
			starWorkload(nw)
			eng.RunUntil(horizon)
		}
		return fates(t, nw)
	}

	base := run(1)
	if !base[0].done {
		t.Fatal("workload produced no completed flows — test is vacuous")
	}
	for _, k := range []int{2, 4} {
		got := run(k)
		if len(got) != len(base) {
			t.Fatalf("%d shards: %d flows, want %d", k, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%d shards: flow %d diverged:\n  1 shard: %+v\n  %d shards: %+v",
					k, base[i].id, base[i], k, got[i])
			}
		}
	}
}

// A fabric with a single host cannot partition at any granularity:
// sharding must refuse and leave the network runnable.
func TestShardSingleHostRefuses(t *testing.T) {
	hcfg, scfg := shardCfg()
	eng := sim.NewEngine()
	nw := Star(eng, 1, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)
	if _, err := Shard(nw, 2, sim.NewEngine); err == nil {
		t.Fatal("Shard(1-host star) succeeded, want error")
	}
	done := false
	nw.StartFlow(0, 0, 0, func(*host.Flow) { done = true })
	eng.Run()
	if !done {
		t.Fatal("network unusable after refused Shard")
	}
}

// Speculative barriers on a real fabric must replay the serial run
// byte-for-byte — whether the bets commit (dumbbell with its 2us
// cross-shard lookahead) or roll back — and must actually speculate.
func TestShardSpeculationEquivalence(t *testing.T) {
	const horizon = 40 * sim.Millisecond
	run := func(shards, window int) ([]flowFate, sim.SyncStats) {
		hcfg, scfg := shardCfg()
		eng := sim.NewEngine()
		nw := Dumbbell(eng, 6, 100*sim.Gbps, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)
		if shards == 1 {
			dumbbellWorkload(nw)
			eng.RunUntil(horizon)
			return fates(t, nw), sim.SyncStats{}
		}
		sh, err := Shard(nw, shards, sim.NewEngine)
		if err != nil {
			t.Fatal(err)
		}
		if window > 0 {
			if err := sh.EnableSpeculation(window); err != nil {
				t.Fatal(err)
			}
		}
		dumbbellWorkload(nw)
		if err := sh.Group.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		return fates(t, nw), sh.Group.Stats
	}

	base, _ := run(1, 0)
	for _, k := range []int{2, 3} {
		got, st := run(k, 8)
		if st.SpecEpochs == 0 {
			t.Fatalf("%d shards: no speculative epochs attempted", k)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%d shards speculative: flow %d diverged:\n  serial: %+v\n  spec:   %+v",
					k, base[i].id, base[i], got[i])
			}
		}
	}
}

// EnableSpeculation must refuse a fabric whose switches flip RNG coins
// in the forwarding path (WRED/ECN marking).
func TestShardSpeculationRefusesECN(t *testing.T) {
	hcfg, scfg := shardCfg()
	scfg.ECNEnabled = true
	nw := Dumbbell(sim.NewEngine(), 6, 100*sim.Gbps, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)
	sh, err := Shard(nw, 2, sim.NewEngine)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.EnableSpeculation(0); err == nil {
		t.Fatal("EnableSpeculation succeeded on an ECN fabric, want error")
	}
	if sh.Group.Speculate {
		t.Fatal("refused EnableSpeculation still set Group.Speculate")
	}
}
