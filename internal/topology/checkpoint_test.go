package topology

import (
	"fmt"
	"testing"

	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// worldCheckpointables gathers every Checkpointable of a serial world,
// in the same order the sharded build registers them: engine and pool
// first, then each node followed by its ports.
func worldCheckpointables(eng *sim.Engine, pool *packet.Pool, nw *Network) []sim.Checkpointable {
	cs := []sim.Checkpointable{eng, pool}
	for _, h := range nw.Hosts {
		cs = append(cs, h)
		for _, pt := range h.Ports() {
			cs = append(cs, pt)
		}
	}
	for _, sw := range nw.Switches {
		cs = append(cs, sw)
		for _, pt := range sw.Ports() {
			cs = append(cs, pt)
		}
	}
	return cs
}

// probeWorld renders everything observable about a run — per-flow
// progress and counters, per-port serialization and pause totals,
// fabric drops, the clock — so two executions can be compared as one
// string.
func probeWorld(t *testing.T, eng *sim.Engine, nw *Network) string {
	out := fmt.Sprintf("now=%v drops=%d\n", eng.Now(), nw.TotalDrops())
	for _, f := range fates(t, nw) {
		out += fmt.Sprintf("flow %d: acked=%d done=%v pkts=%d rtx=%d fin=%v\n",
			f.id, f.acked, f.done, f.pkts, f.rtx, f.finished)
	}
	for _, h := range nw.Hosts {
		for _, pt := range h.Ports() {
			out += fmt.Sprintf("hport %d: sent=%d paused=%v\n",
				pt.WireKey(), pt.PacketsSent(), pt.PausedFor(fabric.PrioData))
		}
	}
	for _, sw := range nw.Switches {
		for _, pt := range sw.Ports() {
			out += fmt.Sprintf("sport %d: sent=%d paused=%v\n",
				pt.WireKey(), pt.PacketsSent(), pt.PausedFor(fabric.PrioData))
		}
	}
	return out
}

// The directed component round-trip: checkpoint a running serial world
// mid-stream (engine, pool, hosts with live CC/IRN state, switches,
// every port), run a window, roll everything back, and replay — twice,
// because a checkpoint must survive being restored from. This pins the
// per-component Checkpoint/Rollback contracts directly, without the
// speculation machinery on top.
func TestComponentCheckpointRoundTrip(t *testing.T) {
	hcfg, scfg := shardCfg()
	pool := packet.NewPool()
	hcfg.Pool = pool
	scfg.Pool = pool
	eng := sim.NewEngine()
	nw := Dumbbell(eng, 6, 100*sim.Gbps, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)
	dumbbellWorkload(nw)

	const (
		mark    = 100 * sim.Microsecond
		horizon = 400 * sim.Microsecond
	)
	eng.RunUntil(mark)
	cs := worldCheckpointables(eng, pool, nw)
	for _, c := range cs {
		c.Checkpoint()
	}
	at := probeWorld(t, eng, nw)

	eng.RunUntil(horizon)
	ref := probeWorld(t, eng, nw)
	if ref == at {
		t.Fatal("nothing happened inside the window — test is vacuous")
	}

	for round := 1; round <= 2; round++ {
		for _, c := range cs {
			c.Rollback()
		}
		if got := probeWorld(t, eng, nw); got != at {
			t.Fatalf("round %d: rollback did not restore the checkpoint state:\n got %s\nwant %s", round, got, at)
		}
		eng.RunUntil(horizon)
		if got := probeWorld(t, eng, nw); got != ref {
			t.Fatalf("round %d: replay diverged:\n got %s\nwant %s", round, got, ref)
		}
	}
}
