// Package topology builds the networks the HPCC paper evaluates on: the
// 32-server dual-homed testbed PoD, the 320-server FatTree used in the
// ns-3 simulations, and the small star / dumbbell fixtures used by the
// micro-benchmarks — all with BFS shortest-path ECMP routing.
package topology

import (
	"fmt"

	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// Network is a built topology ready to carry flows.
type Network struct {
	Eng      *sim.Engine
	Hosts    []*host.Host
	Switches []*fabric.Switch

	nextFlow int32
	nextRead int32 // READ flow IDs run negative to avoid flow-ID collisions
	hostIdx  map[fabric.NodeID]int
	b        *Builder // retained for partitioning (Shard)
}

// StartFlow launches a flow of size bytes from host index src to host
// index dst, assigning a network-unique flow ID. Multi-homed hosts pin
// the flow to an uplink by flow-ID hash (as the testbed's dual-homed
// servers do). onDone may be nil.
func (n *Network) StartFlow(src, dst int, size int64, onDone func(*host.Flow)) *host.Flow {
	n.nextFlow++
	return n.StartFlowID(n.nextFlow, src, dst, size, onDone)
}

// StartFlowID launches a flow under a caller-assigned network-unique
// ID. The sharded runner pre-assigns IDs (replaying exactly the
// sequence the single-engine counter would produce) so flows can start
// on per-shard engines without sharing a counter; the multi-homing
// uplink hash depends only on the ID, so the pinned port matches too.
func (n *Network) StartFlowID(id int32, src, dst int, size int64, onDone func(*host.Flow)) *host.Flow {
	h := n.Hosts[src]
	port := 0
	if np := len(h.Ports()); np > 1 {
		port = int(uint32(id) * 2654435761 % uint32(np))
	}
	return h.StartFlow(id, n.Hosts[dst].ID(), size, port, onDone)
}

// StartRead issues an RDMA READ (§4.2): host requester pulls size
// bytes from host responder. The response streams back as a data flow
// owned by the responder; onDone fires at the requester once every
// byte has arrived in order. READ flows get network-unique negative
// IDs, so they never collide with StartFlow's positive ones.
func (n *Network) StartRead(requester, responder int, size int64, onDone func()) {
	n.nextRead++
	h := n.Hosts[requester]
	h.Read(-n.nextRead, n.Hosts[responder].ID(), size, 0, onDone)
}

// HostIndex maps a node ID back to the host's index in Hosts.
func (n *Network) HostIndex(id fabric.NodeID) int { return n.hostIdx[id] }

// SwitchPorts enumerates every switch egress port in the network
// (for queue monitoring).
func (n *Network) SwitchPorts() []*fabric.Port {
	var ports []*fabric.Port
	for _, sw := range n.Switches {
		ports = append(ports, sw.Ports()...)
	}
	return ports
}

// EdgePorts enumerates switch egress ports facing hosts — where
// many-to-one congestion concentrates and the paper's queue statistics
// are taken.
func (n *Network) EdgePorts() []*fabric.Port {
	var ports []*fabric.Port
	for _, sw := range n.Switches {
		for _, p := range sw.Ports() {
			if _, isHost := n.hostIdx[p.Peer().ID()]; isHost {
				ports = append(ports, p)
			}
		}
	}
	return ports
}

// TotalDrops sums packet drops across all switches.
func (n *Network) TotalDrops() uint64 {
	var d uint64
	for _, sw := range n.Switches {
		d += sw.Drops()
	}
	return d
}

// Builder accumulates nodes and links, then computes routing.
type Builder struct {
	eng    *sim.Engine
	hcfg   host.Config
	scfg   fabric.SwitchConfig
	nextID fabric.NodeID
	// nextWire numbers directed ports in Link order — the structural
	// wire key that canonically ranks simultaneous deliveries (see
	// sim.Event.Before). Build-time state only; it never depends on
	// traffic, so every run of the same spec ranks wires identically.
	nextWire uint64

	hosts    []*host.Host
	switches []*fabric.Switch
	// adjacency: node -> list of (peer, local port index)
	adj map[fabric.NodeID][]edge
}

type edge struct {
	peer  fabric.NodeID
	port  int
	delay sim.Time
}

// NewBuilder starts a topology with shared host and switch configs.
// Every node of the network shares one packet pool (the world is
// single-threaded), so frames freed anywhere are reusable everywhere.
func NewBuilder(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Builder {
	if hcfg.Pool == nil && scfg.Pool == nil {
		pool := packet.NewPool()
		hcfg.Pool = pool
		scfg.Pool = pool
	} else if hcfg.Pool == nil {
		hcfg.Pool = scfg.Pool
	} else if scfg.Pool == nil {
		scfg.Pool = hcfg.Pool
	}
	return &Builder{eng: eng, hcfg: hcfg, scfg: scfg, adj: make(map[fabric.NodeID][]edge)}
}

// AddHost creates a host node.
func (b *Builder) AddHost() *host.Host {
	h := host.New(b.eng, b.nextID, b.hcfg)
	b.nextID++
	b.hosts = append(b.hosts, h)
	return h
}

// AddSwitch creates a switch node.
func (b *Builder) AddSwitch() *fabric.Switch {
	cfg := b.scfg
	cfg.Seed ^= int64(b.nextID) // decorrelate WRED streams
	s := fabric.NewSwitch(b.eng, b.nextID, cfg)
	b.nextID++
	b.switches = append(b.switches, s)
	return s
}

// Link wires a full-duplex link between two nodes (host or switch).
// Each direction gets the next structural wire key, so delivery events
// are canonically ranked by build order.
func (b *Builder) Link(x, y fabric.Node, rate sim.Rate, delay sim.Time) {
	xi, yi := b.portCount(x), b.portCount(y)
	px, py := fabric.Connect(b.eng, x, y, xi, yi, rate, delay)
	px.SetWireKey(b.nextWire + 1)
	py.SetWireKey(b.nextWire + 2)
	b.nextWire += 2
	b.attach(x, px)
	b.attach(y, py)
	b.adj[x.ID()] = append(b.adj[x.ID()], edge{y.ID(), xi, delay})
	b.adj[y.ID()] = append(b.adj[y.ID()], edge{x.ID(), yi, delay})
}

func (b *Builder) portCount(n fabric.Node) int {
	switch v := n.(type) {
	case *host.Host:
		return len(v.Ports())
	case *fabric.Switch:
		return len(v.Ports())
	default:
		panic(fmt.Sprintf("topology: unknown node type %T", n))
	}
}

func (b *Builder) attach(n fabric.Node, p *fabric.Port) {
	switch v := n.(type) {
	case *host.Host:
		v.AttachPort(p)
	case *fabric.Switch:
		v.AttachPort(p)
	}
}

// Build computes shortest-path ECMP routes from every switch to every
// host and returns the finished network.
func (b *Builder) Build() *Network {
	// BFS from each destination host over the undirected graph.
	for _, dst := range b.hosts {
		dist := map[fabric.NodeID]int{dst.ID(): 0}
		queue := []fabric.NodeID{dst.ID()}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range b.adj[cur] {
				if _, seen := dist[e.peer]; !seen {
					dist[e.peer] = dist[cur] + 1
					queue = append(queue, e.peer)
				}
			}
		}
		for _, sw := range b.switches {
			d, reach := dist[sw.ID()]
			if !reach {
				continue
			}
			var ports []int
			for _, e := range b.adj[sw.ID()] {
				if pd, ok := dist[e.peer]; ok && pd == d-1 {
					ports = append(ports, e.port)
				}
			}
			if len(ports) > 0 {
				sw.InstallRoute(dst.ID(), ports)
			}
		}
	}
	n := &Network{
		Eng:      b.eng,
		Hosts:    b.hosts,
		Switches: b.switches,
		hostIdx:  make(map[fabric.NodeID]int, len(b.hosts)),
		b:        b,
	}
	for i, h := range b.hosts {
		n.hostIdx[h.ID()] = i
	}
	return n
}
