package topology

import (
	"fmt"
	"sort"

	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// Sharding is a built network partitioned across per-shard engines for
// conservative-lookahead parallel execution. Shard 0 keeps the
// network's original engine; every node (and its transmit ports) is
// rebound to its shard's engine and packet pool, and every port whose
// peer lives in another shard ships serialized packets through a
// boundary outbox that the Group's exchange drains — deterministically
// — at each epoch barrier.
type Sharding struct {
	Net     *Network
	Engines []*sim.Engine
	Group   *sim.ShardGroup
	// HostShard maps host index -> shard index.
	HostShard []int
	// NodeShard maps every node ID -> shard index.
	NodeShard map[fabric.NodeID]int
	// Lookahead is the epoch length: the minimum propagation delay of
	// any link crossing a shard boundary.
	Lookahead sim.Time
	// BoundaryPorts counts directed cross-shard transmitters.
	BoundaryPorts int

	outs []*boundary

	// Speculation support (see speculate.go): per-shard packet pools,
	// per-shard checkpointable world state (engine, nodes, ports, plus
	// anything the caller Attaches), and the boundaries grouped by
	// receiver shard (their wires are receiver-side state).
	pools    []*packet.Pool
	ck       [][]sim.Checkpointable
	inBounds [][]*boundary
}

// xpkt is one serialized packet in flight across a shard boundary: the
// frame and its arrival instant at the peer. Nothing about local
// scheduling history rides along — the delivery event's position among
// simultaneous events is fixed by the wire's structural key (the
// canonical (time, key, seq) rank), which is identical to the
// single-engine run by construction.
type xpkt struct {
	p  *packet.Packet
	at sim.Time
}

// boundary is one directed cross-shard link: the sender side appends
// serialized packets to an outbox on its shard's goroutine during an
// epoch; the barrier moves them onto a receiver-side wire that mirrors
// Port's single-event head-of-wire delivery — the delivery callback
// pops the head, re-arms for the next packet under the same wire key,
// then delivers.
type boundary struct {
	port *fabric.Port // sender-side transmitter
	eng  *sim.Engine  // receiver shard's engine
	key  uint64       // the sender port's structural wire key
	buf  []xpkt       // sender-side outbox (epoch-local)

	rwire   []xpkt // receiver-side wire, FIFO
	rhead   int
	armed   bool
	deliver func()

	// Speculation state (see speculate.go): outbox packets staged at a
	// speculative barrier, and the outbox/receiver-wire checkpoints.
	staged []xpkt
	sbuf   []xwireSnap
	swire  []xwireSnap
	sarmed bool
}

// cluster is one unsplittable partition unit: a connected component of
// the node graph under the active link filter (see clusterize).
type cluster struct {
	root  fabric.NodeID
	nodes []fabric.NodeID
	hosts int
}

func (bd *boundary) pop() xpkt {
	e := bd.rwire[bd.rhead]
	bd.rwire[bd.rhead].p = nil
	bd.rhead++
	if bd.rhead == len(bd.rwire) {
		bd.rwire = bd.rwire[:0]
		bd.rhead = 0
	} else if bd.rhead > 256 && bd.rhead*2 >= len(bd.rwire) {
		n := copy(bd.rwire, bd.rwire[bd.rhead:])
		bd.rwire = bd.rwire[:n]
		bd.rhead = 0
	}
	return e
}

// exchange drains every boundary outbox onto its receiver-side wire
// and arms idle wires. Arming order is irrelevant to results: each
// delivery event carries its wire's structural key, so its position
// among simultaneous events at the receiver is the canonical
// (time, key, seq) rank — the same rank the local wire would have used
// on a single engine. Outboxes are still drained in boundary creation
// order to keep the exchange itself a pure function of the partition.
func (s *Sharding) exchange(now sim.Time) {
	for _, bd := range s.outs {
		if len(bd.buf) == 0 {
			continue
		}
		bd.rwire = append(bd.rwire, bd.buf...)
		for i := range bd.buf {
			bd.buf[i].p = nil
		}
		bd.buf = bd.buf[:0]
		if !bd.armed {
			bd.armed = true
			bd.eng.AtKey(bd.rwire[bd.rhead].at, bd.key, bd.deliver)
		}
	}
}

// Shard partitions a freshly built network into (at most) k shards and
// wires the conservative-lookahead machinery. The partition unit is a
// "cluster": a connected component of the node graph with all
// switch-switch links removed — a ToR plus its hosts in a FatTree, a
// ToR pair plus its dual-homed servers in the testbed Pod, one side of
// a dumbbell. Clusters are balanced across shards by host count;
// switch-only clusters (aggs, cores) are placed with the shard they
// share the most links with, cutting boundary traffic versus a blind
// spread.
//
// It must be called before any traffic is installed (flows bind their
// host's engine at start). mkEngine builds the additional engines —
// shard 0 keeps the network's own. Errors (no retained builder, a
// single cluster, a zero-delay boundary link) leave the network
// untouched and usable single-engine.
//
// Determinism: a sharded run is a pure function of (network, k, seed),
// and it replays the single-engine run byte-for-byte — including
// simultaneous deliveries. Every delivery event carries its wire's
// build-time structural key, so the canonical (time, key, seq) rank
// orders same-picosecond deliveries identically on one engine or N
// shards; no execution history (arming order) is consulted.
func Shard(nw *Network, k int, mkEngine func() *sim.Engine) (*Sharding, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: Shard needs k >= 2, got %d", k)
	}
	b := nw.b
	if b == nil {
		return nil, fmt.Errorf("topology: network has no retained builder")
	}

	isHost := make(map[fabric.NodeID]bool, len(nw.Hosts))
	for _, h := range nw.Hosts {
		isHost[h.ID()] = true
	}
	allNodes := make([]fabric.NodeID, 0, len(nw.Hosts)+len(nw.Switches))
	for _, h := range nw.Hosts {
		allNodes = append(allNodes, h.ID())
	}
	for _, sw := range nw.Switches {
		allNodes = append(allNodes, sw.ID())
	}
	sort.Slice(allNodes, func(i, j int) bool { return allNodes[i] < allNodes[j] })

	// Union-find over nodes. With hostLinks, components merge across
	// host-adjacent links — the coarse unit (a ToR plus its hosts).
	// Without, they merge across switch-switch links only: every host
	// stands alone and each switch complex stays whole.
	clusterize := func(hostLinks bool) (hostful, bare []*cluster) {
		parent := make(map[fabric.NodeID]fabric.NodeID)
		var find func(x fabric.NodeID) fabric.NodeID
		find = func(x fabric.NodeID) fabric.NodeID {
			p, ok := parent[x]
			if !ok || p == x {
				parent[x] = x
				return x
			}
			r := find(p)
			parent[x] = r
			return r
		}
		union := func(x, y fabric.NodeID) {
			rx, ry := find(x), find(y)
			if rx != ry {
				if rx > ry { // keep the smallest ID as the root
					rx, ry = ry, rx
				}
				parent[ry] = rx
			}
		}
		for _, id := range allNodes {
			find(id)
			for _, e := range b.adj[id] {
				if (isHost[id] || isHost[e.peer]) == hostLinks {
					union(id, e.peer)
				}
			}
		}
		// Clusters in min-node-ID order, with host counts.
		byRoot := make(map[fabric.NodeID]*cluster)
		var clusters []*cluster
		for _, id := range allNodes {
			r := find(id)
			c := byRoot[r]
			if c == nil {
				c = &cluster{root: r}
				byRoot[r] = c
				clusters = append(clusters, c)
			}
			c.nodes = append(c.nodes, id)
			if isHost[id] {
				c.hosts++
			}
		}
		for _, c := range clusters {
			if c.hosts > 0 {
				hostful = append(hostful, c)
			} else {
				bare = append(bare, c)
			}
		}
		return hostful, bare
	}

	hostful, bare := clusterize(true)
	if len(hostful) < k && len(nw.Hosts) > len(hostful) {
		// Flat fabrics — a Star's single ToR, a Dumbbell's two sides —
		// yield fewer host clusters than shards. Refine to per-host
		// granularity: a shared-buffer switch can never split, but hosts
		// couple only through wires, so any host partition is sound, and
		// the lookahead (the host-switch link delay) stays positive.
		hostful, bare = clusterize(false)
	}
	if len(hostful) < 2 {
		return nil, fmt.Errorf("topology: fabric does not partition (%d host cluster(s))", len(hostful))
	}
	if k > len(hostful) {
		k = len(hostful)
	}

	// Balance hostful clusters greedily (largest first, into the
	// least-loaded shard; all ties broken by order, so the assignment
	// is deterministic). Bare clusters spread round-robin.
	nodeShard := make(map[fabric.NodeID]int, len(allNodes))
	order := make([]*cluster, len(hostful))
	copy(order, hostful)
	sort.SliceStable(order, func(i, j int) bool { return order[i].hosts > order[j].hosts })
	load := make([]int, k)
	for _, c := range order {
		tgt := 0
		for s := 1; s < k; s++ {
			if load[s] < load[tgt] {
				tgt = s
			}
		}
		load[tgt] += c.hosts
		for _, id := range c.nodes {
			nodeShard[id] = tgt
		}
	}
	// Switch-only clusters (aggs, cores) carry no hosts, so host balance
	// does not constrain them. Each goes to the shard it already shares
	// the most links with (ties: the lowest shard) — an agg lands with
	// the pod whose ToRs it serves, and a core follows the aggs it
	// uplinks — cutting boundary links versus a blind round-robin
	// spread. Tiers that only touch other bare switches wait until a
	// pass has placed their neighbors; anything truly disconnected
	// falls back round-robin. Every pass iterates in min-node-ID order
	// over map-free state, so the placement is deterministic.
	pending := bare
	rr := 0
	for len(pending) > 0 {
		var waiting []*cluster
		for _, c := range pending {
			links := make([]int, k)
			seen := false
			for _, id := range c.nodes {
				for _, e := range b.adj[id] {
					if t, ok := nodeShard[e.peer]; ok {
						links[t]++
						seen = true
					}
				}
			}
			if !seen {
				waiting = append(waiting, c)
				continue
			}
			tgt := 0
			for sh := 1; sh < k; sh++ {
				if links[sh] > links[tgt] {
					tgt = sh
				}
			}
			for _, id := range c.nodes {
				nodeShard[id] = tgt
			}
		}
		if len(waiting) == len(pending) { // no progress: isolated tiers
			for _, c := range waiting {
				for _, id := range c.nodes {
					nodeShard[id] = rr % k
				}
				rr++
			}
			break
		}
		pending = waiting
	}

	// Lookahead: the minimum delay of any cross-shard link.
	lookahead := sim.Time(-1)
	for _, id := range allNodes {
		for _, e := range b.adj[id] {
			if nodeShard[id] != nodeShard[e.peer] {
				if lookahead < 0 || e.delay < lookahead {
					lookahead = e.delay
				}
			}
		}
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("topology: zero-delay boundary link; cannot shard conservatively")
	}

	// Engines and per-shard packet pools; rebind every node and port.
	engines := make([]*sim.Engine, k)
	engines[0] = nw.Eng
	for i := 1; i < k; i++ {
		engines[i] = mkEngine()
	}
	pools := make([]*packet.Pool, k)
	for i := range pools {
		pools[i] = packet.NewPool()
	}
	s := &Sharding{
		Net:       nw,
		Engines:   engines,
		HostShard: make([]int, len(nw.Hosts)),
		NodeShard: nodeShard,
		Lookahead: lookahead,
		pools:     pools,
		ck:        make([][]sim.Checkpointable, k),
		inBounds:  make([][]*boundary, k),
	}
	for i := range engines {
		s.ck[i] = append(s.ck[i], engines[i], pools[i])
	}
	addBoundary := func(pt *fabric.Port, owner fabric.NodeID) {
		peerShard := nodeShard[pt.Peer().ID()]
		if nodeShard[owner] == peerShard {
			return
		}
		bd := &boundary{port: pt, eng: engines[peerShard], key: pt.WireKey()}
		s.inBounds[peerShard] = append(s.inBounds[peerShard], bd)
		bd.deliver = func() {
			e := bd.pop()
			if bd.rhead < len(bd.rwire) {
				bd.eng.AtKey(bd.rwire[bd.rhead].at, bd.key, bd.deliver)
			} else {
				bd.armed = false
			}
			bd.port.Peer().HandleArrival(e.p, bd.port.PeerPort())
		}
		pt.SetRemote(func(p *packet.Packet, arrive sim.Time) {
			bd.buf = append(bd.buf, xpkt{p, arrive})
		})
		s.outs = append(s.outs, bd)
	}
	for i, h := range nw.Hosts {
		sh := nodeShard[h.ID()]
		s.HostShard[i] = sh
		h.Rebind(engines[sh], pools[sh])
		s.ck[sh] = append(s.ck[sh], h)
		for _, pt := range h.Ports() {
			pt.Rebind(engines[sh])
			s.ck[sh] = append(s.ck[sh], pt)
			addBoundary(pt, h.ID())
		}
	}
	for _, sw := range nw.Switches {
		sh := nodeShard[sw.ID()]
		sw.Rebind(engines[sh], pools[sh])
		s.ck[sh] = append(s.ck[sh], sw)
		for _, pt := range sw.Ports() {
			pt.Rebind(engines[sh])
			s.ck[sh] = append(s.ck[sh], pt)
			addBoundary(pt, sw.ID())
		}
	}
	s.BoundaryPorts = len(s.outs)
	s.Group = &sim.ShardGroup{Engines: engines, Lookahead: lookahead, Exchange: s.exchange}
	return s, nil
}
