package topology

import (
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
)

// Star wires n hosts to one switch — the fixture for the incast and
// design-choice micro-benchmarks (§5.4 uses 16+1 hosts on 100 Gbps links
// with 1 µs propagation delay).
func Star(eng *sim.Engine, n int, hostRate sim.Rate, delay sim.Time, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	b := NewBuilder(eng, hcfg, scfg)
	sw := b.AddSwitch()
	for i := 0; i < n; i++ {
		h := b.AddHost()
		b.Link(h, sw, hostRate, delay)
	}
	return b.Build()
}

// Dumbbell wires nPairs sender hosts and nPairs receiver hosts across
// two switches joined by a single bottleneck link.
func Dumbbell(eng *sim.Engine, nPairs int, hostRate, coreRate sim.Rate, delay sim.Time, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	b := NewBuilder(eng, hcfg, scfg)
	left := b.AddSwitch()
	right := b.AddSwitch()
	b.Link(left, right, coreRate, delay)
	for i := 0; i < nPairs; i++ {
		h := b.AddHost()
		b.Link(h, left, hostRate, delay)
	}
	for i := 0; i < nPairs; i++ {
		h := b.AddHost()
		b.Link(h, right, hostRate, delay)
	}
	return b.Build()
}

// PodSpec describes the paper's 32-server testbed PoD (§5.1): four ToRs
// under one Agg, with each server dual-homed to a ToR pair.
type PodSpec struct {
	// Servers is the total server count; must be even. Default 32.
	Servers int
	// HostRate is each NIC uplink speed. Default 25 Gbps.
	HostRate sim.Rate
	// FabricRate is the ToR–Agg link speed. Default 100 Gbps.
	FabricRate sim.Rate
	// LinkDelay is the per-link propagation delay. Default 600 ns,
	// which lands the base RTTs near the testbed's 5.4 µs intra-rack /
	// 8.5 µs cross-rack figures.
	LinkDelay sim.Time
}

func (s *PodSpec) normalize() {
	if s.Servers == 0 {
		s.Servers = 32
	}
	if s.HostRate == 0 {
		s.HostRate = 25 * sim.Gbps
	}
	if s.FabricRate == 0 {
		s.FabricRate = 100 * sim.Gbps
	}
	if s.LinkDelay == 0 {
		s.LinkDelay = 600 * sim.Nanosecond
	}
}

// Pod builds the testbed PoD: ToR1+ToR2 serve the first half of the
// servers (each server dual-homed to both), ToR3+ToR4 the second half,
// and all four ToRs uplink to one Agg switch.
func Pod(eng *sim.Engine, spec PodSpec, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	spec.normalize()
	b := NewBuilder(eng, hcfg, scfg)
	agg := b.AddSwitch()
	tors := make([]*fabric.Switch, 4)
	for i := range tors {
		tors[i] = b.AddSwitch()
		b.Link(tors[i], agg, spec.FabricRate, spec.LinkDelay)
	}
	half := spec.Servers / 2
	for i := 0; i < spec.Servers; i++ {
		h := b.AddHost()
		pair := 0
		if i >= half {
			pair = 2
		}
		b.Link(h, tors[pair], spec.HostRate, spec.LinkDelay)
		b.Link(h, tors[pair+1], spec.HostRate, spec.LinkDelay)
	}
	return b.Build()
}

// ParkingLot builds the classic multi-bottleneck chain used to study
// §3.2's multiple-bottleneck behaviour and Appendix A's rate recursion:
// segments+1 switches in a line, a "long" host pair at the two ends
// whose flow crosses every inter-switch link, and one local host pair
// per segment whose flow crosses only that segment.
//
// Host layout: host 0 = long sender, host 1 = long receiver, then for
// segment i (0-based): host 2+2i = local sender (at switch i), host
// 3+2i = local receiver (at switch i+1).
func ParkingLot(eng *sim.Engine, segments int, hostRate, coreRate sim.Rate, delay sim.Time, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	b := NewBuilder(eng, hcfg, scfg)
	switches := make([]*fabric.Switch, segments+1)
	for i := range switches {
		switches[i] = b.AddSwitch()
		if i > 0 {
			b.Link(switches[i-1], switches[i], coreRate, delay)
		}
	}
	longSrc := b.AddHost()
	b.Link(longSrc, switches[0], hostRate, delay)
	longDst := b.AddHost()
	b.Link(longDst, switches[segments], hostRate, delay)
	for i := 0; i < segments; i++ {
		s := b.AddHost()
		b.Link(s, switches[i], hostRate, delay)
		r := b.AddHost()
		b.Link(r, switches[i+1], hostRate, delay)
	}
	return b.Build()
}

// FatTreeSpec describes the simulation topology of §5.1: a three-tier
// Clos with 16 Core and 20 Agg switches over 20 ToRs of 16 servers each
// (320 hosts), 100 Gbps at the host and 400 Gbps between switches, 1 µs
// link delay (12 µs max base RTT). The counts scale down for CI runs.
type FatTreeSpec struct {
	Cores, Aggs, ToRs, HostsPerToR int
	HostRate, FabricRate           sim.Rate
	LinkDelay                      sim.Time
}

// PaperFatTree returns the full-scale spec from §5.1.
func PaperFatTree() FatTreeSpec {
	return FatTreeSpec{
		Cores: 16, Aggs: 20, ToRs: 20, HostsPerToR: 16,
		HostRate: 100 * sim.Gbps, FabricRate: 400 * sim.Gbps,
		LinkDelay: sim.Microsecond,
	}
}

// ScaledFatTree returns a CI-sized FatTree preserving the paper's
// oversubscription shape (same tiers, fewer elements).
func ScaledFatTree() FatTreeSpec {
	return FatTreeSpec{
		Cores: 2, Aggs: 4, ToRs: 4, HostsPerToR: 8,
		HostRate: 100 * sim.Gbps, FabricRate: 400 * sim.Gbps,
		LinkDelay: sim.Microsecond,
	}
}

func (s *FatTreeSpec) normalize() {
	if s.Cores == 0 {
		*s = PaperFatTree()
	}
}

// NumHosts returns the host count of the spec.
func (s FatTreeSpec) NumHosts() int { return s.ToRs * s.HostsPerToR }

// FatTree builds the Clos: every ToR links to every Agg, every Agg to
// every Core, hosts under their ToR.
func FatTree(eng *sim.Engine, spec FatTreeSpec, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	spec.normalize()
	b := NewBuilder(eng, hcfg, scfg)
	cores := make([]*fabric.Switch, spec.Cores)
	for i := range cores {
		cores[i] = b.AddSwitch()
	}
	aggs := make([]*fabric.Switch, spec.Aggs)
	for i := range aggs {
		aggs[i] = b.AddSwitch()
		for _, c := range cores {
			b.Link(aggs[i], c, spec.FabricRate, spec.LinkDelay)
		}
	}
	for t := 0; t < spec.ToRs; t++ {
		tor := b.AddSwitch()
		for _, a := range aggs {
			b.Link(tor, a, spec.FabricRate, spec.LinkDelay)
		}
		for j := 0; j < spec.HostsPerToR; j++ {
			h := b.AddHost()
			b.Link(h, tor, spec.HostRate, spec.LinkDelay)
		}
	}
	return b.Build()
}
