package topology

import (
	"testing"

	"hpcc/internal/cc"
	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
)

func hcfg() host.Config {
	return host.Config{
		CC:      hpcccc.New(hpcccc.Config{}),
		INT:     true,
		BaseRTT: 13 * sim.Microsecond,
	}
}

func scfg() fabric.SwitchConfig {
	return fabric.SwitchConfig{INTEnabled: true, PFCEnabled: true}
}

func TestStarRoutes(t *testing.T) {
	eng := sim.NewEngine()
	nw := Star(eng, 4, 100*sim.Gbps, sim.Microsecond, hcfg(), scfg())
	if len(nw.Hosts) != 4 || len(nw.Switches) != 1 {
		t.Fatalf("star: %d hosts, %d switches", len(nw.Hosts), len(nw.Switches))
	}
	routes := nw.Switches[0].Routes()
	for _, h := range nw.Hosts {
		ports, ok := routes[h.ID()]
		if !ok || len(ports) != 1 {
			t.Fatalf("switch route to host %d = %v", h.ID(), ports)
		}
	}
}

func TestStarEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	nw := Star(eng, 4, 100*sim.Gbps, sim.Microsecond, hcfg(), scfg())
	f := nw.StartFlow(0, 3, 100_000, nil)
	eng.Run()
	if !f.Done() {
		t.Fatal("flow did not complete on star")
	}
}

func TestDumbbellBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	nw := Dumbbell(eng, 2, 100*sim.Gbps, 100*sim.Gbps, sim.Microsecond, hcfg(), scfg())
	if len(nw.Hosts) != 4 || len(nw.Switches) != 2 {
		t.Fatalf("dumbbell: %d hosts, %d switches", len(nw.Hosts), len(nw.Switches))
	}
	// Cross flows traverse the core link.
	f1 := nw.StartFlow(0, 2, 200_000, nil)
	f2 := nw.StartFlow(1, 3, 200_000, nil)
	eng.Run()
	if !f1.Done() || !f2.Done() {
		t.Fatal("dumbbell flows did not complete")
	}
}

func TestPodShape(t *testing.T) {
	eng := sim.NewEngine()
	nw := Pod(eng, PodSpec{}, hcfg(), scfg())
	if len(nw.Hosts) != 32 {
		t.Fatalf("pod hosts = %d, want 32", len(nw.Hosts))
	}
	if len(nw.Switches) != 5 {
		t.Fatalf("pod switches = %d, want 5 (1 Agg + 4 ToR)", len(nw.Switches))
	}
	for i, h := range nw.Hosts {
		if len(h.Ports()) != 2 {
			t.Fatalf("host %d has %d ports, want 2 (dual-homed)", i, len(h.Ports()))
		}
	}
}

func TestPodCrossRackFlow(t *testing.T) {
	eng := sim.NewEngine()
	nw := Pod(eng, PodSpec{}, hcfg(), scfg())
	// Host 0 is in the ToR1/ToR2 half; host 31 in ToR3/ToR4: the flow
	// crosses the Agg.
	f := nw.StartFlow(0, 31, 500_000, nil)
	// And an intra-rack flow.
	g := nw.StartFlow(1, 2, 500_000, nil)
	eng.Run()
	if !f.Done() || !g.Done() {
		t.Fatal("pod flows did not complete")
	}
	if nw.TotalDrops() != 0 {
		t.Fatalf("drops = %d", nw.TotalDrops())
	}
}

func TestFatTreeShape(t *testing.T) {
	eng := sim.NewEngine()
	spec := ScaledFatTree()
	nw := FatTree(eng, spec, hcfg(), scfg())
	if len(nw.Hosts) != spec.NumHosts() {
		t.Fatalf("hosts = %d, want %d", len(nw.Hosts), spec.NumHosts())
	}
	wantSw := spec.Cores + spec.Aggs + spec.ToRs
	if len(nw.Switches) != wantSw {
		t.Fatalf("switches = %d, want %d", len(nw.Switches), wantSw)
	}
	// Every ToR must have ECMP routes (multiple Agg uplinks) to hosts
	// in other racks.
	tor := nw.Switches[spec.Cores+spec.Aggs] // first ToR
	remote := nw.Hosts[len(nw.Hosts)-1]      // host in the last rack
	ports := tor.Routes()[remote.ID()]
	if len(ports) != spec.Aggs {
		t.Fatalf("ToR ECMP set to remote host = %d ports, want %d", len(ports), spec.Aggs)
	}
}

func TestFatTreeCrossRackFlow(t *testing.T) {
	eng := sim.NewEngine()
	nw := FatTree(eng, ScaledFatTree(), hcfg(), scfg())
	f := nw.StartFlow(0, len(nw.Hosts)-1, 300_000, nil)
	eng.Run()
	if !f.Done() {
		t.Fatal("cross-rack flow did not complete")
	}
}

func TestFatTreeManyFlows(t *testing.T) {
	eng := sim.NewEngine()
	nw := FatTree(eng, ScaledFatTree(), hcfg(), scfg())
	var done int
	n := len(nw.Hosts)
	for i := 0; i < n; i++ {
		dst := (i + n/2) % n
		nw.StartFlow(i, dst, 100_000, func(*host.Flow) { done++ })
	}
	eng.Run()
	if done != n {
		t.Fatalf("completed %d/%d flows", done, n)
	}
	if nw.TotalDrops() != 0 {
		t.Fatalf("drops = %d with PFC on", nw.TotalDrops())
	}
}

func TestMultiHomedFlowsPinPorts(t *testing.T) {
	eng := sim.NewEngine()
	nw := Pod(eng, PodSpec{}, hcfg(), scfg())
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		nw.StartFlow(0, 31, 1000, nil)
	}
	eng.Run()
	for _, p := range nw.Hosts[0].Ports() {
		seen[p.PacketsSent()] = true
		if p.PacketsSent() == 0 {
			t.Fatal("one uplink of a dual-homed host never used across 16 flows")
		}
	}
	_ = seen
	_ = cc.Unlimited
}
