package topology

import (
	"fmt"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// This file implements sim.Speculator for a Sharding, turning the
// conservative lookahead barriers into optimistic ones: each shard's
// whole world — engine, hosts, switches, ports, packet pool, inbound
// boundary wires, plus anything the runner Attaches (per-shard FCT
// sets, queue monitors) — checkpoints at a speculative barrier and
// restores in place on rollback. Staging reuses the exchange's
// boundary outboxes: a speculative barrier moves them to a side buffer
// instead of delivering, so the group can inspect the earliest
// would-be arrival before committing.

// xwireSnap is one in-flight boundary packet at checkpoint time: the
// packet's identity plus a full value copy, written back through the
// pointer on rollback (same discipline as the fabric layer — packet
// structs are pooled, so the struct may have been reused by the
// rolled-back run).
type xwireSnap struct {
	p   *packet.Packet
	val packet.Packet
	at  sim.Time
}

// save checkpoints the boundary's receiver-side wire and sender-side
// outbox. The outbox is usually empty at a speculative barrier (every
// barrier drains it) — except before the very first epoch, when
// traffic started directly on the hosts has already transmitted into
// it; those packets predate the checkpoint and must survive rollback.
func (bd *boundary) save() {
	bd.sbuf = bd.sbuf[:0]
	for _, e := range bd.buf {
		bd.sbuf = append(bd.sbuf, xwireSnap{e.p, *e.p, e.at})
	}
	bd.swire = bd.swire[:0]
	for _, e := range bd.rwire[bd.rhead:] {
		bd.swire = append(bd.swire, xwireSnap{e.p, *e.p, e.at})
	}
	bd.sarmed = bd.armed
}

// restore rebuilds the outbox and receiver-side wire from the
// checkpoint. The delivery event itself is engine state and is
// restored there; armed/sarmed stay consistent because both snapshots
// share a barrier. The outbox was drained into staging before the
// rollback, so pre-checkpoint packets are re-owned here and the later
// Discard drops only the staging references, not the structs.
func (bd *boundary) restore() {
	for i := range bd.buf {
		bd.buf[i].p = nil
	}
	bd.buf = bd.buf[:0]
	for i := range bd.sbuf {
		ws := &bd.sbuf[i]
		*ws.p = ws.val
		bd.buf = append(bd.buf, xpkt{ws.p, ws.at})
	}
	for i := range bd.rwire {
		bd.rwire[i].p = nil
	}
	bd.rwire, bd.rhead = bd.rwire[:0], 0
	for i := range bd.swire {
		ws := &bd.swire[i]
		*ws.p = ws.val
		bd.rwire = append(bd.rwire, xpkt{ws.p, ws.at})
	}
	bd.armed = bd.sarmed
}

// Save implements sim.Speculator: checkpoint shard i's world state.
// Called concurrently, one shard per worker goroutine; every structure
// touched here is owned by shard i (inbound boundary wires are
// receiver-side state).
func (s *Sharding) Save(shard int) {
	for _, c := range s.ck[shard] {
		c.Checkpoint()
	}
	for _, bd := range s.inBounds[shard] {
		bd.save()
	}
}

// Restore implements sim.Speculator: roll shard i back to its last
// checkpoint.
func (s *Sharding) Restore(shard int) {
	for _, c := range s.ck[shard] {
		c.Rollback()
	}
	for _, bd := range s.inBounds[shard] {
		bd.restore()
	}
}

// Stage implements sim.Speculator: drain every boundary outbox into
// its staging buffer without delivering, reporting the earliest staged
// arrival. Runs single-threaded at the barrier.
func (s *Sharding) Stage() (earliest sim.Time, any bool) {
	for _, bd := range s.outs {
		if len(bd.buf) == 0 {
			continue
		}
		for _, e := range bd.buf {
			if !any || e.at < earliest {
				earliest, any = e.at, true
			}
		}
		bd.staged = append(bd.staged, bd.buf...)
		for i := range bd.buf {
			bd.buf[i].p = nil
		}
		bd.buf = bd.buf[:0]
	}
	return earliest, any
}

// Commit implements sim.Speculator: deliver the staged packets onto
// the receiver-side wires, in the same boundary-creation order (and
// with the same arming rule) as the conservative exchange.
func (s *Sharding) Commit() {
	for _, bd := range s.outs {
		if len(bd.staged) == 0 {
			continue
		}
		bd.rwire = append(bd.rwire, bd.staged...)
		for i := range bd.staged {
			bd.staged[i].p = nil
		}
		bd.staged = bd.staged[:0]
		if !bd.armed {
			bd.armed = true
			bd.eng.AtKey(bd.rwire[bd.rhead].at, bd.key, bd.deliver)
		}
	}
}

// Discard implements sim.Speculator: drop the staged packets after a
// rollback. The packet structs are NOT returned to any pool — each was
// drawn from its sender shard's pool during the rolled-back run, and
// that pool's restored freelist already reclaims it; re-pooling here
// would alias the struct to two owners.
func (s *Sharding) Discard() {
	for _, bd := range s.outs {
		for i := range bd.staged {
			bd.staged[i].p = nil
		}
		bd.staged = bd.staged[:0]
	}
}

// Attach registers extra checkpointable state (per-shard FCT sets,
// queue monitors) with a shard, so speculation rolls it back alongside
// the world. Must be called before the group runs.
func (s *Sharding) Attach(shard int, c sim.Checkpointable) {
	s.ck[shard] = append(s.ck[shard], c)
}

// EnableSpeculation turns on optimistic barriers with the given window
// (0 means the sim-layer default). It refuses fabrics whose switches
// consult a random source in the forwarding path (WRED/ECN marking):
// an RNG mid-stream cannot be checkpointed, so a rolled-back run would
// replay with different coin flips and diverge from the serial run.
func (s *Sharding) EnableSpeculation(window int) error {
	for _, sw := range s.Net.Switches {
		if sw.UsesRNG() {
			return fmt.Errorf("topology: switch %d marks ECN with an RNG; speculation would not replay identically", sw.ID())
		}
	}
	s.Group.Speculate = true
	s.Group.Window = window
	s.Group.Spec = s
	return nil
}
