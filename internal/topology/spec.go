package topology

import (
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
)

// Spec is a self-describing, buildable topology: every fabric the
// experiments run on — paper presets and user-composed graphs alike —
// is a value implementing this interface, so scenario code needs no
// per-kind switch statements.
type Spec interface {
	// Build constructs the network on eng with shared host/switch
	// configs.
	Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Network
	// Rate returns the host NIC speed — the reference for load targets,
	// ideal FCTs and ECN threshold scaling.
	Rate() sim.Rate
	// BaseRTT returns the network-wide base-RTT constant T (§5.1:
	// "slightly greater than the maximum RTT").
	BaseRTT() sim.Time
}

const rttMargin = 500 * sim.Nanosecond

// StarSpec is the §5.4 micro-benchmark fixture: N hosts around one
// switch. Defaults: 17 hosts, 100 Gbps, 1 µs links.
type StarSpec struct {
	N        int
	HostRate sim.Rate
	Delay    sim.Time
}

func (s StarSpec) normalize() StarSpec {
	if s.N == 0 {
		s.N = 17
	}
	if s.HostRate == 0 {
		s.HostRate = 100 * sim.Gbps
	}
	if s.Delay == 0 {
		s.Delay = sim.Microsecond
	}
	return s
}

func (s StarSpec) Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	s = s.normalize()
	return Star(eng, s.N, s.HostRate, s.Delay, hcfg, scfg)
}

func (s StarSpec) Rate() sim.Rate { return s.normalize().HostRate }

func (s StarSpec) BaseRTT() sim.Time { return 4*s.normalize().Delay + rttMargin }

// DumbbellSpec wires Pairs sender hosts and Pairs receiver hosts across
// two switches joined by one CoreRate bottleneck link.
type DumbbellSpec struct {
	Pairs    int
	HostRate sim.Rate
	CoreRate sim.Rate
	Delay    sim.Time
}

func (s DumbbellSpec) normalize() DumbbellSpec {
	if s.Pairs == 0 {
		s.Pairs = 1
	}
	if s.HostRate == 0 {
		s.HostRate = 100 * sim.Gbps
	}
	if s.CoreRate == 0 {
		s.CoreRate = s.HostRate
	}
	if s.Delay == 0 {
		s.Delay = sim.Microsecond
	}
	return s
}

func (s DumbbellSpec) Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	s = s.normalize()
	return Dumbbell(eng, s.Pairs, s.HostRate, s.CoreRate, s.Delay, hcfg, scfg)
}

func (s DumbbellSpec) Rate() sim.Rate { return s.normalize().HostRate }

// BaseRTT: host–switch–switch–host is three one-way link delays.
func (s DumbbellSpec) BaseRTT() sim.Time { return 6*s.normalize().Delay + rttMargin }

// ParkingLotSpec is the §3.2/Appendix-A multi-bottleneck chain:
// Segments+1 switches in a line whose inter-switch links run at the
// host rate, a long host pair at the ends, and one local host pair per
// segment (see ParkingLot for the host layout).
type ParkingLotSpec struct {
	Segments int
	HostRate sim.Rate
	CoreRate sim.Rate
	Delay    sim.Time
}

func (s ParkingLotSpec) normalize() ParkingLotSpec {
	if s.Segments == 0 {
		s.Segments = 2
	}
	if s.HostRate == 0 {
		s.HostRate = 100 * sim.Gbps
	}
	if s.CoreRate == 0 {
		s.CoreRate = s.HostRate
	}
	if s.Delay == 0 {
		s.Delay = sim.Microsecond
	}
	return s
}

func (s ParkingLotSpec) Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	s = s.normalize()
	return ParkingLot(eng, s.Segments, s.HostRate, s.CoreRate, s.Delay, hcfg, scfg)
}

func (s ParkingLotSpec) Rate() sim.Rate { return s.normalize().HostRate }

// BaseRTT: the long flow crosses every inter-switch hop plus both host
// links — 2·(Segments+2) one-way link delays, with margin.
func (s ParkingLotSpec) BaseRTT() sim.Time {
	s = s.normalize()
	return 2*sim.Time(s.Segments+2)*s.Delay + rttMargin
}

// PodSpec implements Spec (the builder itself is Pod).

func (s PodSpec) Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	return Pod(eng, s, hcfg, scfg)
}

func (s PodSpec) Rate() sim.Rate {
	if s.HostRate == 0 {
		return 25 * sim.Gbps
	}
	return s.HostRate
}

// BaseRTT is the testbed's 9 µs constant (§5.1).
func (s PodSpec) BaseRTT() sim.Time { return 9 * sim.Microsecond }

// FatTreeSpec implements Spec (the builder itself is FatTree).

func (s FatTreeSpec) Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	return FatTree(eng, s, hcfg, scfg)
}

func (s FatTreeSpec) Rate() sim.Rate {
	if s.HostRate == 0 {
		return 100 * sim.Gbps
	}
	return s.HostRate
}

// BaseRTT is the simulation fabric's 13 µs constant (§5.1).
func (s FatTreeSpec) BaseRTT() sim.Time { return 13 * sim.Microsecond }

// GraphNode references a node added to a GraphSpec. Hosts and switches
// are numbered independently in add order; the host numbering is the
// built Network's host index.
type GraphNode struct {
	Switch bool
	Index  int
}

// GraphLink is one full-duplex link of a GraphSpec.
type GraphLink struct {
	A, B  GraphNode
	Rate  sim.Rate
	Delay sim.Time
}

// GraphSpec is a user-composed topology: an explicit node/link graph
// replayed through Builder, with ECMP shortest-path routing computed at
// Build like every preset. The zero value is an empty graph; add nodes
// with AddHost/AddSwitch and wire them with Link.
type GraphSpec struct {
	// HostRate, if nonzero, overrides the derived NIC reference rate
	// (the maximum host-adjacent link rate).
	HostRate sim.Rate
	// RTT, if nonzero, overrides the derived base RTT (twice the
	// worst-case host-to-host shortest-path propagation delay, plus
	// margin).
	RTT sim.Time

	Hosts    int
	Switches int
	Links    []GraphLink
}

// AddHost appends a host and returns its reference.
func (g *GraphSpec) AddHost() GraphNode {
	g.Hosts++
	return GraphNode{Index: g.Hosts - 1}
}

// AddSwitch appends a switch and returns its reference.
func (g *GraphSpec) AddSwitch() GraphNode {
	g.Switches++
	return GraphNode{Switch: true, Index: g.Switches - 1}
}

// Link wires a full-duplex link between two previously added nodes.
func (g *GraphSpec) Link(a, b GraphNode, rate sim.Rate, delay sim.Time) {
	g.Links = append(g.Links, GraphLink{A: a, B: b, Rate: rate, Delay: delay})
}

// Build replays the recorded graph through a Builder. Host indices in
// the returned Network match AddHost order.
func (g GraphSpec) Build(eng *sim.Engine, hcfg host.Config, scfg fabric.SwitchConfig) *Network {
	b := NewBuilder(eng, hcfg, scfg)
	hosts := make([]*host.Host, g.Hosts)
	for i := range hosts {
		hosts[i] = b.AddHost()
	}
	switches := make([]*fabric.Switch, g.Switches)
	for i := range switches {
		switches[i] = b.AddSwitch()
	}
	pick := func(n GraphNode) fabric.Node {
		if n.Switch {
			return switches[n.Index]
		}
		return hosts[n.Index]
	}
	for _, l := range g.Links {
		b.Link(pick(l.A), pick(l.B), l.Rate, l.Delay)
	}
	return b.Build()
}

// Rate returns the explicit HostRate or the maximum link rate adjacent
// to a host (100 Gbps for an empty graph).
func (g GraphSpec) Rate() sim.Rate {
	if g.HostRate != 0 {
		return g.HostRate
	}
	var max sim.Rate
	for _, l := range g.Links {
		if (!l.A.Switch || !l.B.Switch) && l.Rate > max {
			max = l.Rate
		}
	}
	if max == 0 {
		max = 100 * sim.Gbps
	}
	return max
}

// BaseRTT returns the explicit RTT or derives it: twice the largest
// host-to-host shortest-path propagation delay, plus margin — the same
// convention the preset fixtures use.
func (g GraphSpec) BaseRTT() sim.Time {
	if g.RTT != 0 {
		return g.RTT
	}
	// Adjacency over (kind, index) nodes with per-link delay weights.
	type key struct {
		sw  bool
		idx int
	}
	adj := make(map[key][]struct {
		to key
		d  sim.Time
	})
	for _, l := range g.Links {
		a := key{l.A.Switch, l.A.Index}
		b := key{l.B.Switch, l.B.Index}
		adj[a] = append(adj[a], struct {
			to key
			d  sim.Time
		}{b, l.Delay})
		adj[b] = append(adj[b], struct {
			to key
			d  sim.Time
		}{a, l.Delay})
	}
	// Dijkstra-lite from each host (graphs are tiny at build time; an
	// O(V²) scan is fine and allocation-free in the loop).
	var worst sim.Time
	for h := 0; h < g.Hosts; h++ {
		dist := map[key]sim.Time{{false, h}: 0}
		done := make(map[key]bool)
		for {
			var cur key
			var best sim.Time = -1
			//hpcclint:allow determinism -- Dijkstra extract-min; tied picks reorder the scan but final distances are order-independent
			for k, d := range dist {
				if !done[k] && (best < 0 || d < best) {
					cur, best = k, d
				}
			}
			if best < 0 {
				break
			}
			done[cur] = true
			for _, e := range adj[cur] {
				nd := best + e.d
				if old, ok := dist[e.to]; !ok || nd < old {
					dist[e.to] = nd
				}
			}
		}
		//hpcclint:allow determinism -- max-reduction; the maximum is order-independent
		for k, d := range dist {
			if !k.sw && d > worst {
				worst = d
			}
		}
	}
	if worst == 0 {
		return 10 * sim.Microsecond
	}
	return 2*worst + rttMargin
}
