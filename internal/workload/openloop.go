package workload

import (
	"container/heap"

	"hpcc/internal/sim"
)

// This file lets the sharded runner pre-plan every arrival of a
// scenario whose traffic is open-loop (arrival times independent of
// simulation feedback): the full schedule — and, crucially, the exact
// flow-ID sequence the single-engine lazy install would produce — is
// computed up front, so arrivals can be installed on per-shard engines
// with pre-assigned IDs and still match the single-engine run
// byte-for-byte. Closed-loop generators (AllToAll's shuffle barrier,
// RPC's request-response) cannot be planned; PlanArrivals reports
// !ok and the runner falls back to one engine.

// PlannedFlow is one pre-planned arrival. At < 0 marks an inline
// arrival: the lazy install starts it during Install (before the
// engine runs), so the sharded install must too.
type PlannedFlow struct {
	At       sim.Time
	Src, Dst int
	Size     int64
	// Gen is the index of the generator that produces this arrival.
	// Its arrival event carries the canonical key sim.ArrivalKey(Gen)
	// in both the lazy and the sharded install, so the event's position
	// among simultaneous events is fixed by (time, key) alone — no
	// scheduling-instant reconstruction needed.
	Gen int
	// ID is the network-unique flow ID, replaying exactly the sequence
	// the shared counter would assign in a single-engine run.
	ID int32
}

// planBatch is one arrival event of a generator's lazy chain: every
// flow the event would start, in order.
type planBatch struct {
	at    sim.Time
	flows []FlowSpec
}

// genPlan is a generator's full arrival structure: flows started inline
// during Install, plus chains of batches where batch j+1 is scheduled
// by batch j's event (the lazy generators' self-rescheduling shape).
// Independently install-scheduled arrivals (FlowList) are chains of
// length one.
type genPlan struct {
	inline []FlowSpec
	chains [][]planBatch
}

// openLoop is implemented by generators whose arrival schedule can be
// expanded up front. plan must mirror Install exactly: same env
// defaulting, same RNG stream and draw order, same horizon checks.
type openLoop interface {
	plan(n int, env Env) (genPlan, bool)
}

// planCap bounds a single generator's planned arrivals, so an
// unbounded spec (no MaxFlows, huge horizon) degrades to the fallback
// instead of exhausting memory.
const planCap = 4 << 20

// CanPlan reports whether a generator's arrivals can be pre-planned:
// it is open-loop and carries no per-spec OnDone (the sharded replay
// installs its own completion callbacks and would otherwise silently
// drop the spec's). Cheap — callers use it to refuse sharding before
// building a fabric.
func CanPlan(g Generator) bool {
	switch s := g.(type) {
	case PoissonSpec:
		return s.OnDone == nil
	case IncastSpec:
		return s.OnDone == nil
	case FlowList, ArrivalFunc:
		return true
	default:
		return false
	}
}

// plan mirrors StartPoisson: one chain, one flow per batch, with the
// install-time first-gap draw and the per-arrival src/dst/size/gap
// draw order.
func (spec PoissonSpec) plan(n int, env Env) (genPlan, bool) {
	if spec.HostRate == 0 {
		spec.HostRate = env.HostRate
	}
	if spec.Until == 0 {
		spec.Until = env.Until
	}
	if spec.MaxFlows == 0 {
		spec.MaxFlows = env.MaxFlows
	}
	if spec.Seed == 0 {
		spec.Seed = env.Seed
	}
	rng := sim.NewRNG(spec.Seed, "poisson")
	bytesPerSec := spec.Load * float64(n) * spec.HostRate.BytesPerSec()
	lambda := bytesPerSec / spec.CDF.Mean()
	if lambda <= 0 {
		return genPlan{}, true
	}
	meanGapPs := float64(sim.Second) / lambda
	var chain []planBatch
	t := sim.Time(rng.ExpFloat64() * meanGapPs)
	for started := 0; ; started++ {
		if spec.MaxFlows > 0 && started >= spec.MaxFlows {
			break
		}
		if t > spec.Until {
			break
		}
		if started >= planCap {
			return genPlan{}, false
		}
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		size := spec.CDF.Sample(rng)
		chain = append(chain, planBatch{at: t, flows: []FlowSpec{{At: t, Src: src, Dst: dst, Size: size}}})
		t += sim.Time(rng.ExpFloat64() * meanGapPs)
	}
	if len(chain) == 0 {
		return genPlan{}, true
	}
	return genPlan{chains: [][]planBatch{chain}}, true
}

// plan mirrors StartIncast: one chain, FanIn flows per batch.
func (spec IncastSpec) plan(n int, env Env) (genPlan, bool) {
	if spec.HostRate == 0 {
		spec.HostRate = env.HostRate
	}
	if spec.Until == 0 {
		spec.Until = env.Until
	}
	if spec.Seed == 0 {
		spec.Seed = env.Seed
	}
	rng := sim.NewRNG(spec.Seed, "incast")
	if spec.FanIn >= n {
		spec.FanIn = n - 1
	}
	eventBytes := float64(spec.FanIn) * float64(spec.Size)
	capacityBps := float64(n) * spec.HostRate.BytesPerSec()
	period := sim.Time(eventBytes / (capacityBps * spec.LoadFrac) * float64(sim.Second))
	if period <= 0 {
		return genPlan{}, false
	}
	var chain []planBatch
	for t := period / 2; t <= spec.Until; t += period {
		if len(chain)*spec.FanIn >= planCap {
			return genPlan{}, false
		}
		recv := rng.Intn(n)
		senders := rng.Perm(n)
		b := planBatch{at: t}
		for _, s := range senders {
			if s == recv {
				continue
			}
			b.flows = append(b.flows, FlowSpec{At: t, Src: s, Dst: recv, Size: spec.Size})
			if len(b.flows) == spec.FanIn {
				break
			}
		}
		chain = append(chain, b)
	}
	if len(chain) == 0 {
		return genPlan{}, true
	}
	return genPlan{chains: [][]planBatch{chain}}, true
}

// plan mirrors FlowList.Install: entries at or before time zero start
// inline in list order; later entries are independently scheduled at
// install, so each is its own one-batch chain.
func (spec FlowList) plan(n int, env Env) (genPlan, bool) {
	var p genPlan
	for _, f := range spec {
		if env.Until > 0 && f.At > env.Until {
			continue
		}
		if f.At <= 0 {
			p.inline = append(p.inline, f)
		} else {
			p.chains = append(p.chains, []planBatch{{at: f.At, flows: []FlowSpec{f}}})
		}
	}
	return p, true
}

// plan mirrors ArrivalFunc.Install's one-ahead pull: a prefix of
// non-positive arrival times starts inline, then one chain whose
// batches group consecutive arrivals that the lazy pull would start
// within the same event (nondecreasing times; an arrival at or before
// the previous batch's time joins that batch).
func (spec ArrivalFunc) plan(n int, env Env) (genPlan, bool) {
	var p genPlan
	i := 0
	for {
		f, ok := spec(i)
		if !ok {
			return p, true
		}
		if env.Until > 0 && f.At > env.Until {
			return p, true
		}
		if f.At > 0 {
			break
		}
		p.inline = append(p.inline, f)
		i++
	}
	var chain []planBatch
	for count := 0; ; i++ {
		f, ok := spec(i)
		if !ok {
			break
		}
		if env.Until > 0 && f.At > env.Until {
			break
		}
		if count++; count > planCap {
			return genPlan{}, false
		}
		if len(chain) > 0 && f.At <= chain[len(chain)-1].at {
			last := &chain[len(chain)-1]
			last.flows = append(last.flows, f)
		} else {
			chain = append(chain, planBatch{at: f.At, flows: []FlowSpec{f}})
		}
	}
	if len(chain) > 0 {
		p.chains = append(p.chains, chain)
	}
	return p, true
}

// pendBatch is a scheduled-but-not-fired batch in the replay queue.
type pendBatch struct {
	gen, chain, idx int
	at              sim.Time
	seq             uint64
}

type pendHeap []pendBatch

func (h pendHeap) Len() int { return len(h) }

// Less mirrors the engine's canonical rank for arrival events:
// (time, generator key, scheduling order). Same-generator ties only
// arise between install-scheduled roots (FlowList entries at one
// instant), whose engine seq order is their chain push order — seq
// here.
func (h pendHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].gen != h[j].gen {
		return h[i].gen < h[j].gen
	}
	return h[i].seq < h[j].seq
}
func (h pendHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendHeap) Push(x any)   { *h = append(*h, x.(pendBatch)) }
func (h *pendHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// PlanArrivals expands every generator's arrival schedule and replays
// the single-engine flow-ID assignment: IDs go to inline flows in
// install order first, then to scheduled arrivals in the canonical
// fire order — (time, generator key, scheduling order), exactly the
// engine's (time, key, seq) rank when generator i installs with
// Env.Key = sim.ArrivalKey(i), as the scenario runner does. Generator
// i derives its randomness from env.Seed + i, mirroring the runner.
//
// ok is false when any generator is closed-loop or unbounded; callers
// fall back to the single-engine lazy install.
func PlanArrivals(gens []Generator, n int, env Env) ([]PlannedFlow, bool) {
	var out []PlannedFlow
	var id int32
	emit := func(at sim.Time, gen int, f FlowSpec) {
		id++
		out = append(out, PlannedFlow{At: at, Gen: gen, Src: f.Src, Dst: f.Dst, Size: f.Size, ID: id})
	}
	plans := make([]genPlan, len(gens))
	var pq pendHeap
	var seq uint64
	for gi, g := range gens {
		ol, ok := g.(openLoop)
		if !ok || !CanPlan(g) {
			return nil, false
		}
		e := env
		e.Seed = env.Seed + int64(gi)
		p, ok := ol.plan(n, e)
		if !ok {
			return nil, false
		}
		plans[gi] = p
		for _, f := range p.inline {
			emit(-1, gi, f)
		}
		for ci, c := range p.chains {
			heap.Push(&pq, pendBatch{gen: gi, chain: ci, at: c[0].at, seq: seq})
			seq++
		}
	}
	for pq.Len() > 0 {
		pb := heap.Pop(&pq).(pendBatch)
		c := plans[pb.gen].chains[pb.chain]
		for _, f := range c[pb.idx].flows {
			emit(c[pb.idx].at, pb.gen, f)
		}
		if pb.idx+1 < len(c) {
			heap.Push(&pq, pendBatch{gen: pb.gen, chain: pb.chain, idx: pb.idx + 1, at: c[pb.idx+1].at, seq: seq})
			seq++
		}
	}
	return out, true
}
