// Package workload generates the paper's traffic: flow sizes drawn from
// the public WebSearch [DCTCP] and FB_Hadoop [SIGCOMM'15] distributions,
// open-loop Poisson arrivals at a target average link load, and the
// periodic many-to-one incast events of §5.3.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Point is one knot of a piecewise-linear CDF: P(size ≤ Bytes) = Prob.
type Point struct {
	Bytes int64
	Prob  float64
}

// CDF is a piecewise-linear flow-size distribution.
type CDF struct {
	name   string
	points []Point
}

// NewCDF validates and builds a CDF. Points must be sorted by size with
// nondecreasing probability, starting at probability 0 and ending at 1.
func NewCDF(name string, points []Point) (*CDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF %q needs at least 2 points", name)
	}
	if points[0].Prob != 0 {
		return nil, fmt.Errorf("workload: CDF %q must start at probability 0", name)
	}
	if points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at probability 1", name)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Bytes < points[i-1].Bytes || points[i].Prob < points[i-1].Prob {
			return nil, fmt.Errorf("workload: CDF %q not monotone at point %d", name, i)
		}
	}
	return &CDF{name: name, points: points}, nil
}

// MustCDF is NewCDF that panics on invalid input (for package literals).
func MustCDF(name string, points []Point) *CDF {
	c, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the distribution's name.
func (c *CDF) Name() string { return c.name }

// Sample draws one flow size by inverse-transform sampling with linear
// interpolation inside segments. Sizes are at least 1 byte.
func (c *CDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Prob >= u })
	if i == 0 {
		i = 1
	}
	lo, hi := c.points[i-1], c.points[i]
	var size float64
	if hi.Prob == lo.Prob {
		size = float64(hi.Bytes)
	} else {
		frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
		size = float64(lo.Bytes) + frac*float64(hi.Bytes-lo.Bytes)
	}
	if size < 1 {
		size = 1
	}
	return int64(size)
}

// Mean returns the distribution's expected flow size in bytes
// (trapezoidal, matching the linear interpolation of Sample).
func (c *CDF) Mean() float64 {
	mean := 0.0
	for i := 1; i < len(c.points); i++ {
		lo, hi := c.points[i-1], c.points[i]
		dp := hi.Prob - lo.Prob
		mean += dp * float64(lo.Bytes+hi.Bytes) / 2
	}
	return mean
}

// Quantile returns the size at cumulative probability p.
func (c *CDF) Quantile(p float64) int64 {
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Prob >= p })
	if i == 0 {
		i = 1
	}
	if i >= len(c.points) {
		return c.points[len(c.points)-1].Bytes
	}
	lo, hi := c.points[i-1], c.points[i]
	if hi.Prob == lo.Prob {
		return hi.Bytes
	}
	frac := (p - lo.Prob) / (hi.Prob - lo.Prob)
	return lo.Bytes + int64(frac*float64(hi.Bytes-lo.Bytes))
}

// WebSearch returns the web-search workload of the DCTCP paper, the
// trace the HPCC testbed evaluation uses (§5.1). Knots are anchored at
// the flow-size bucket edges printed on the paper's Figure 10 x-axis.
func WebSearch() *CDF {
	return MustCDF("WebSearch", []Point{
		{0, 0},
		{6_700, 0.15},
		{20_000, 0.30},
		{30_000, 0.40},
		{50_000, 0.53},
		{73_000, 0.60},
		{200_000, 0.70},
		{1_000_000, 0.80},
		{2_000_000, 0.90},
		{5_000_000, 0.97},
		{30_000_000, 1.0},
	})
}

// FBHadoop returns the Facebook Hadoop-cluster workload [SIGCOMM'15]
// used by the simulation evaluation (§5.3): dominated by sub-KB flows
// ("90% of the flows are shorter than 120KB") with a heavy tail. Knots
// are anchored at Figure 11's bucket edges.
func FBHadoop() *CDF {
	return MustCDF("FB_Hadoop", []Point{
		{0, 0},
		{324, 0.30},
		{400, 0.40},
		{500, 0.50},
		{600, 0.60},
		{700, 0.70},
		{1_000, 0.78},
		{7_000, 0.83},
		{46_000, 0.86},
		{120_000, 0.90},
		{1_000_000, 0.95},
		{10_000_000, 1.0},
	})
}
