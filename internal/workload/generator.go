package workload

import (
	"hpcc/internal/host"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

// Env is the per-generator environment a scenario runner supplies at
// install time. Generators use it to fill any field they were not
// given explicitly, so one spec value composes into many scenarios.
// Generators installed as traffic element i of a scenario receive
// Seed = scenarioSeed + i, keeping multi-generator runs deterministic
// and decorrelated.
type Env struct {
	HostRate sim.Rate
	Until    sim.Time // arrival window end (0 = unlimited)
	MaxFlows int      // default cap on generated flows (0 = unlimited)
	// OnDone observes each completed sender flow.
	OnDone func(*host.Flow)
	// OnRead observes each completed RDMA READ at the requester:
	// endpoints, response size and request-to-last-byte elapsed time.
	OnRead func(requester, responder int, size int64, elapsed sim.Time)
	Seed   int64
	// Key is the canonical rank of this generator's arrival events
	// (sim.ArrivalKey(i) for traffic element i). Scenario runners set
	// it so simultaneous arrivals order by generator, not by engine
	// scheduling history — the property that lets the sharded replay
	// install pre-planned arrivals without reconstructing the lazy
	// install's scheduling instants. Zero (standalone use) falls back
	// to scheduling order.
	Key uint64
}

// Generator is a composable traffic source: anything that can install
// arrivals on a built network. All the paper's patterns (Poisson,
// incast) and the extensions (all-to-all shuffle, RPC request-response,
// explicit arrival traces) implement it.
type Generator interface {
	Install(nw *topology.Network, env Env)
}

// Install starts Poisson arrivals, taking HostRate, Until, MaxFlows,
// OnDone and Seed from env where the spec leaves them zero.
func (spec PoissonSpec) Install(nw *topology.Network, env Env) {
	if spec.HostRate == 0 {
		spec.HostRate = env.HostRate
	}
	if spec.Until == 0 {
		spec.Until = env.Until
	}
	if spec.MaxFlows == 0 {
		spec.MaxFlows = env.MaxFlows
	}
	if spec.Seed == 0 {
		spec.Seed = env.Seed
	}
	spec.Key = env.Key
	spec.OnDone = chain(spec.OnDone, env.OnDone)
	StartPoisson(nw, spec)
}

// Install starts periodic incast events, taking defaults from env like
// PoissonSpec.Install.
func (spec IncastSpec) Install(nw *topology.Network, env Env) {
	if spec.HostRate == 0 {
		spec.HostRate = env.HostRate
	}
	if spec.Until == 0 {
		spec.Until = env.Until
	}
	if spec.Seed == 0 {
		spec.Seed = env.Seed
	}
	spec.Key = env.Key
	spec.OnDone = chain(spec.OnDone, env.OnDone)
	StartIncast(nw, spec)
}

func chain(a, b func(*host.Flow)) func(*host.Flow) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return func(f *host.Flow) { a(f); b(f) }
	}
}

// AllToAllSpec is a shuffle stage: every host ships Size bytes to every
// other host, N·(N−1) flows per round. Rounds run closed-loop — round
// r+1 starts only when every flow of round r has completed, as a
// MapReduce shuffle barrier does. No randomness is involved; the
// pattern is fully deterministic.
type AllToAllSpec struct {
	Size   int64
	Rounds int // default 1; further rounds start only before Until
	OnDone func(*host.Flow)
}

// Install starts the first shuffle round immediately.
func (spec AllToAllSpec) Install(nw *topology.Network, env Env) {
	if spec.Rounds == 0 {
		spec.Rounds = 1
	}
	onDone := chain(spec.OnDone, env.OnDone)
	n := len(nw.Hosts)
	if n < 2 {
		return
	}
	rounds := spec.Rounds
	var fire func()
	fire = func() {
		if rounds == 0 {
			return
		}
		rounds--
		pending := n * (n - 1)
		flowDone := func(f *host.Flow) {
			if onDone != nil {
				onDone(f)
			}
			pending--
			if pending == 0 && rounds > 0 && (env.Until == 0 || nw.Eng.Now() <= env.Until) {
				fire()
			}
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if d != s {
					nw.StartFlow(s, d, spec.Size, flowDone)
				}
			}
		}
	}
	fire()
}

// RPCSpec drives the RDMA READ path (§4.2) with request-response
// traffic: requests arrive as an open-loop Poisson process; each picks
// a uniform-random requester/responder pair and the requester issues a
// READ whose response size is drawn from CDF (or the fixed Size). Load
// is the target average link load contributed by response bytes, the
// same convention PoissonSpec uses for one-way flows.
type RPCSpec struct {
	// Size is the fixed response size when CDF is nil.
	Size int64
	// CDF, if set, draws each response size instead.
	CDF  *CDF
	Load float64
	// MaxRequests caps total requests (0 = env.MaxFlows).
	MaxRequests int
	HostRate    sim.Rate
	Until       sim.Time
	// OnDone observes each completed READ at the requester.
	OnDone func(requester, responder int, size int64, elapsed sim.Time)
	Seed   int64
}

// Install starts the request process. Completion is observed at the
// requester (last response byte arrived in order), through both
// spec.OnDone and env.OnRead.
func (spec RPCSpec) Install(nw *topology.Network, env Env) {
	if spec.HostRate == 0 {
		spec.HostRate = env.HostRate
	}
	if spec.Until == 0 {
		spec.Until = env.Until
	}
	if spec.MaxRequests == 0 {
		spec.MaxRequests = env.MaxFlows
	}
	if spec.Seed == 0 {
		spec.Seed = env.Seed
	}
	rng := sim.NewRNG(spec.Seed, "rpc")
	n := len(nw.Hosts)
	if n < 2 {
		return
	}
	mean := float64(spec.Size)
	if spec.CDF != nil {
		mean = spec.CDF.Mean()
	}
	if mean <= 0 {
		return
	}
	bytesPerSec := spec.Load * float64(n) * spec.HostRate.BytesPerSec()
	lambda := bytesPerSec / mean // requests per second
	if lambda <= 0 {
		return
	}
	meanGapPs := float64(sim.Second) / lambda
	onDone := spec.OnDone
	onRead := env.OnRead
	issued := 0
	var arrive func()
	arrive = func() {
		if spec.MaxRequests > 0 && issued >= spec.MaxRequests {
			return
		}
		if spec.Until > 0 && nw.Eng.Now() > spec.Until {
			return
		}
		req := rng.Intn(n)
		resp := rng.Intn(n - 1)
		if resp >= req {
			resp++
		}
		size := spec.Size
		if spec.CDF != nil {
			size = spec.CDF.Sample(rng)
		}
		issuedAt := nw.Eng.Now()
		nw.StartRead(req, resp, size, func() {
			elapsed := nw.Eng.Now() - issuedAt
			if onDone != nil {
				onDone(req, resp, size, elapsed)
			}
			if onRead != nil {
				onRead(req, resp, size, elapsed)
			}
		})
		issued++
		nw.Eng.AfterKey(sim.Time(rng.ExpFloat64()*meanGapPs), env.Key, arrive)
	}
	nw.Eng.AfterKey(sim.Time(rng.ExpFloat64()*meanGapPs), env.Key, arrive)
}

// FlowSpec is one explicitly scheduled flow arrival.
type FlowSpec struct {
	At       sim.Time
	Src, Dst int
	Size     int64
}

// FlowList replays a fixed arrival trace — the simplest custom traffic
// source.
type FlowList []FlowSpec

// Install schedules every listed arrival at its absolute time.
// Arrivals past the env's window (Until > 0) are dropped, matching
// every other generator's horizon contract.
func (spec FlowList) Install(nw *topology.Network, env Env) {
	for _, f := range spec {
		if env.Until > 0 && f.At > env.Until {
			continue
		}
		f := f
		start := func() { nw.StartFlow(f.Src, f.Dst, f.Size, env.OnDone) }
		if f.At <= nw.Eng.Now() {
			start()
		} else {
			nw.Eng.AtKey(f.At, env.Key, start)
		}
	}
}

// ArrivalFunc is a lazy arrival iterator: called with i = 0, 1, 2, …,
// it returns the i-th arrival and whether one exists. Arrival times
// must be nondecreasing; the iterator is pulled one arrival ahead, so
// unbounded streams cost one pending event at a time.
type ArrivalFunc func(i int) (FlowSpec, bool)

// Install pulls and schedules arrivals until the iterator ends or the
// env's arrival window closes.
func (spec ArrivalFunc) Install(nw *topology.Network, env Env) {
	var pull func(i int)
	pull = func(i int) {
		f, ok := spec(i)
		if !ok {
			return
		}
		if env.Until > 0 && f.At > env.Until {
			return
		}
		start := func() {
			nw.StartFlow(f.Src, f.Dst, f.Size, env.OnDone)
			pull(i + 1)
		}
		if f.At <= nw.Eng.Now() {
			start()
		} else {
			nw.Eng.AtKey(f.At, env.Key, start)
		}
	}
	pull(0)
}
