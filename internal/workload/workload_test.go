package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

func TestCDFValidation(t *testing.T) {
	if _, err := NewCDF("bad", []Point{{0, 0}}); err == nil {
		t.Error("accepted a single-point CDF")
	}
	if _, err := NewCDF("bad", []Point{{0, 0.5}, {10, 1}}); err == nil {
		t.Error("accepted a CDF not starting at 0")
	}
	if _, err := NewCDF("bad", []Point{{0, 0}, {10, 0.9}}); err == nil {
		t.Error("accepted a CDF not ending at 1")
	}
	if _, err := NewCDF("bad", []Point{{0, 0}, {10, 0.8}, {5, 1}}); err == nil {
		t.Error("accepted non-monotone sizes")
	}
	if _, err := NewCDF("ok", []Point{{0, 0}, {10, 0.5}, {100, 1}}); err != nil {
		t.Errorf("rejected a valid CDF: %v", err)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []*CDF{WebSearch(), FBHadoop()} {
		lo := c.points[0].Bytes
		hi := c.points[len(c.points)-1].Bytes
		for i := 0; i < 10_000; i++ {
			s := c.Sample(rng)
			if s < max64(lo, 1) || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", c.Name(), s, lo, hi)
			}
		}
	}
}

func TestEmpiricalMeanMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []*CDF{WebSearch(), FBHadoop()} {
		var sum float64
		const n = 200_000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(rng))
		}
		got := sum / n
		want := c.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name(), got, want)
		}
	}
}

func TestQuantiles(t *testing.T) {
	ws := WebSearch()
	if q := ws.Quantile(0.30); q != 20_000 {
		t.Errorf("WebSearch p30 = %d, want 20000", q)
	}
	fb := FBHadoop()
	if q := fb.Quantile(0.90); q != 120_000 {
		t.Errorf("FB_Hadoop p90 = %d, want 120000 (paper: 90%% < 120KB)", q)
	}
}

func TestFBHadoopMostlySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fb := FBHadoop()
	small := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if fb.Sample(rng) <= 1000 {
			small++
		}
	}
	frac := float64(small) / n
	if frac < 0.7 || frac > 0.85 {
		t.Errorf("FB_Hadoop P(size ≤ 1KB) = %.2f, want ≈ 0.78", frac)
	}
}

// Property: empirical CDF at each knot matches the declared probability.
func TestCDFKnotsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := WebSearch()
		const n = 20_000
		counts := make([]int, len(c.points))
		for i := 0; i < n; i++ {
			s := c.Sample(rng)
			for j, p := range c.points {
				if s <= p.Bytes {
					counts[j]++
				}
			}
		}
		for j, p := range c.points {
			got := float64(counts[j]) / n
			if math.Abs(got-p.Prob) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func testNet(n int) *topology.Network {
	eng := sim.NewEngine()
	hcfg := host.Config{CC: hpcccc.New(hpcccc.Config{}), INT: true, BaseRTT: 13 * sim.Microsecond}
	scfg := fabric.SwitchConfig{INTEnabled: true, PFCEnabled: true}
	return topology.Star(eng, n, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)
}

func TestPoissonLoad(t *testing.T) {
	nw := testNet(8)
	var bytes int64
	var flows int
	StartPoisson(nw, PoissonSpec{
		CDF:      FBHadoop(),
		Load:     0.3,
		HostRate: 100 * sim.Gbps,
		Until:    2 * sim.Millisecond,
		OnDone: func(f *host.Flow) {
			bytes += f.Size()
			flows++
		},
		Seed: 42,
	})
	nw.Eng.Run()
	if flows == 0 {
		t.Fatal("no flows generated")
	}
	// Offered load over 2 ms across 8×100G hosts at 30%:
	// 0.3 × 8 × 12.5 GB/s × 2 ms = 60 MB. The expected flow count is
	// offered/mean; the count concentrates tightly (Poisson) while the
	// byte total is noisy under the heavy-tailed size distribution.
	offered := 0.3 * 8 * (100 * sim.Gbps).BytesPerSec() * 0.002
	wantFlows := offered / FBHadoop().Mean()
	if math.Abs(float64(flows)-wantFlows)/wantFlows > 0.30 {
		t.Errorf("flows = %d, want ≈ %.0f", flows, wantFlows)
	}
	if float64(bytes) < offered/3 || float64(bytes) > offered*3 {
		t.Errorf("delivered %d bytes, offered ≈ %.0f", bytes, offered)
	}
}

func TestPoissonMaxFlows(t *testing.T) {
	nw := testNet(4)
	flows := 0
	StartPoisson(nw, PoissonSpec{
		CDF:      FBHadoop(),
		Load:     0.5,
		HostRate: 100 * sim.Gbps,
		Until:    sim.Second,
		MaxFlows: 25,
		OnDone:   func(*host.Flow) { flows++ },
		Seed:     1,
	})
	nw.Eng.Run()
	if flows != 25 {
		t.Fatalf("flows = %d, want exactly MaxFlows = 25", flows)
	}
}

func TestIncastFanIn(t *testing.T) {
	nw := testNet(10)
	byDst := map[int64]int{}
	done := 0
	StartIncast(nw, IncastSpec{
		FanIn:    6,
		Size:     20_000,
		LoadFrac: 0.02,
		HostRate: 100 * sim.Gbps,
		Until:    2 * sim.Millisecond,
		OnDone: func(f *host.Flow) {
			done++
			byDst[int64(f.Dst())]++
		},
		Seed: 9,
	})
	nw.Eng.Run()
	if done == 0 || done%6 != 0 {
		t.Fatalf("done = %d, want a multiple of FanIn=6", done)
	}
	for dst, cnt := range byDst {
		if cnt%6 != 0 {
			t.Fatalf("receiver %d got %d flows, want multiples of 6", dst, cnt)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
