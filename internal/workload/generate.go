package workload

import (
	"hpcc/internal/host"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

// PoissonSpec drives an open-loop flow arrival process: flows between
// uniform-random host pairs, sizes from a CDF, exponential inter-
// arrivals tuned so the average host uplink carries Load of its
// capacity — the standard harness the paper uses at 30% and 50% load.
type PoissonSpec struct {
	CDF  *CDF
	Load float64 // target average link load, e.g. 0.3
	// HostRate is the NIC speed used to derive the arrival rate.
	HostRate sim.Rate
	// Until stops new arrivals at this time (flows in flight drain).
	Until sim.Time
	// MaxFlows caps total arrivals (0 = unlimited) to bound runtimes.
	MaxFlows int
	// OnDone observes each completed flow.
	OnDone func(*host.Flow)
	// Seed makes the arrival sequence deterministic.
	Seed int64
	// Key canonically ranks this generator's arrival events among
	// simultaneous events (see Env.Key); runners set it via Env.
	Key uint64
}

// StartPoisson installs the generator on a network. Arrival rate:
// λ = Load × N_hosts × HostRate / E[size] (in flows/sec), matching the
// convention of the paper's public simulator.
func StartPoisson(nw *topology.Network, spec PoissonSpec) {
	rng := sim.NewRNG(spec.Seed, "poisson")
	n := len(nw.Hosts)
	bytesPerSec := spec.Load * float64(n) * spec.HostRate.BytesPerSec()
	lambda := bytesPerSec / spec.CDF.Mean() // flows per second
	if lambda <= 0 {
		return
	}
	meanGapPs := float64(sim.Second) / lambda
	started := 0
	var arrive func()
	arrive = func() {
		if spec.MaxFlows > 0 && started >= spec.MaxFlows {
			return
		}
		if nw.Eng.Now() > spec.Until {
			return
		}
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		size := spec.CDF.Sample(rng)
		nw.StartFlow(src, dst, size, spec.OnDone)
		started++
		gap := sim.Time(rng.ExpFloat64() * meanGapPs)
		nw.Eng.AfterKey(gap, spec.Key, arrive)
	}
	nw.Eng.AfterKey(sim.Time(rng.ExpFloat64()*meanGapPs), spec.Key, arrive)
}

// IncastSpec schedules periodic fan-in events: FanIn random senders
// each ship Size bytes to one random receiver. The period is derived so
// incast traffic totals LoadFrac of the aggregate host capacity — the
// paper's setup is 60-to-1 × 500 KB at 2% load (§5.3).
type IncastSpec struct {
	FanIn    int
	Size     int64
	LoadFrac float64
	HostRate sim.Rate
	Until    sim.Time
	OnDone   func(*host.Flow)
	Seed     int64
	// Key canonically ranks this generator's arrival events among
	// simultaneous events (see Env.Key); runners set it via Env.
	Key uint64
}

// StartIncast installs the incast generator on a network.
func StartIncast(nw *topology.Network, spec IncastSpec) {
	rng := sim.NewRNG(spec.Seed, "incast")
	n := len(nw.Hosts)
	if spec.FanIn >= n {
		spec.FanIn = n - 1
	}
	eventBytes := float64(spec.FanIn) * float64(spec.Size)
	capacityBps := float64(n) * spec.HostRate.BytesPerSec()
	period := sim.Time(eventBytes / (capacityBps * spec.LoadFrac) * float64(sim.Second))
	var fire func()
	fire = func() {
		if nw.Eng.Now() > spec.Until {
			return
		}
		recv := rng.Intn(n)
		senders := rng.Perm(n)
		cnt := 0
		for _, s := range senders {
			if s == recv {
				continue
			}
			nw.StartFlow(s, recv, spec.Size, spec.OnDone)
			cnt++
			if cnt == spec.FanIn {
				break
			}
		}
		nw.Eng.AfterKey(period, spec.Key, fire)
	}
	nw.Eng.AfterKey(period/2, spec.Key, fire)
}
