package workload

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CDFFromFile loads a flow-size distribution from a text file of
// "<bytes> <probability>" lines — the format the public ns-3 HPCC
// harness ships its WebSearch/FB_Hadoop traces in. Probabilities may
// be on a 0–1 or 0–100 scale (detected from the final line); blank
// lines and lines starting with '#' are skipped. A leading (0, 0) knot
// is added if the file omits it.
func CDFFromFile(path string) (*CDF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var points []Point
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("workload: %s:%d: want \"<bytes> <prob>\", got %q", path, lineNo, line)
		}
		bytes, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s:%d: bad size %q: %v", path, lineNo, fields[0], err)
		}
		prob, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s:%d: bad probability %q: %v", path, lineNo, fields[1], err)
		}
		points = append(points, Point{Bytes: int64(bytes), Prob: prob})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: %s: no CDF points", path)
	}
	// Percent scale: normalize when the final cumulative value is > 1.
	if last := points[len(points)-1].Prob; last > 1 {
		for i := range points {
			points[i].Prob /= last
		}
	}
	if points[0].Prob != 0 {
		points = append([]Point{{Bytes: 0, Prob: 0}}, points...)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return NewCDF(name, points)
}

// Edges returns the distribution's knot sizes (excluding any zero-byte
// anchor, deduplicated) — the natural flow-size bucket edges for FCT
// figures over this workload.
func (c *CDF) Edges() []int64 {
	var edges []int64
	for _, p := range c.points {
		if p.Bytes == 0 {
			continue
		}
		if n := len(edges); n > 0 && edges[n-1] == p.Bytes {
			continue
		}
		edges = append(edges, p.Bytes)
	}
	return edges
}
