package workload

import (
	"testing"

	"hpcc/internal/host"
	"hpcc/internal/sim"
)

// PlanArrivals must reproduce the lazy install exactly: same flows
// (src, dst, size), same arrival times, and — the load-bearing part —
// the same flow-ID sequence the shared single-engine counter assigns.
func TestPlanMatchesLazyInstall(t *testing.T) {
	gens := []Generator{
		PoissonSpec{CDF: WebSearch(), Load: 0.4},
		IncastSpec{FanIn: 3, Size: 50_000, LoadFrac: 0.02},
		FlowList{
			{At: 0, Src: 0, Dst: 1, Size: 1000},
			{At: 500 * sim.Microsecond, Src: 2, Dst: 3, Size: 2000},
			{At: 700 * sim.Microsecond, Src: 3, Dst: 5, Size: 3000},
		},
		ArrivalFunc(func(i int) (FlowSpec, bool) {
			if i >= 5 {
				return FlowSpec{}, false
			}
			return FlowSpec{At: sim.Time(i/2) * 300 * sim.Microsecond,
				Src: i % 4, Dst: 4 + i%3, Size: 4000}, true
		}),
	}
	const n = 8
	env := Env{HostRate: 100 * sim.Gbps, Until: 2 * sim.Millisecond, MaxFlows: 40, Seed: 9}

	plan, ok := PlanArrivals(gens, n, env)
	if !ok {
		t.Fatal("PlanArrivals refused an open-loop mix")
	}
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}

	// Lazy install on a real network, exactly as the runner does it:
	// generator i gets Seed+i and the canonical arrival key that the
	// plan's (time, generator, order) emission mirrors.
	nw := testNet(n)
	for i, g := range gens {
		e := env
		e.Seed = env.Seed + int64(i)
		e.Key = sim.ArrivalKey(i)
		g.Install(nw, e)
	}
	nw.Eng.Run()

	byID := map[int32]*host.Flow{}
	for _, h := range nw.Hosts {
		for id, f := range h.Flows() {
			byID[id] = f
		}
	}
	if len(byID) != len(plan) {
		t.Fatalf("lazy install started %d flows, plan has %d", len(byID), len(plan))
	}
	for _, pf := range plan {
		f := byID[pf.ID]
		if f == nil {
			t.Fatalf("plan ID %d missing from lazy run", pf.ID)
		}
		src := nw.HostIndex(f.Host().ID())
		dst := nw.HostIndex(f.Dst())
		if src != pf.Src || dst != pf.Dst || f.Size() != pf.Size {
			t.Fatalf("ID %d: lazy (%d->%d, %d bytes) vs plan (%d->%d, %d bytes)",
				pf.ID, src, dst, f.Size(), pf.Src, pf.Dst, pf.Size)
		}
		wantStart := pf.At
		if wantStart < 0 {
			wantStart = 0 // inline arrivals start at install, time zero
		}
		if f.Started() != wantStart {
			t.Fatalf("ID %d started at %v, plan says %v", pf.ID, f.Started(), wantStart)
		}
	}

	// IDs must be dense 1..N — the counter sequence.
	for i := int32(1); i <= int32(len(plan)); i++ {
		if byID[i] == nil {
			t.Fatalf("flow ID %d not assigned (IDs not the counter sequence)", i)
		}
	}
}

// Closed-loop generators must refuse planning (the runner then falls
// back to a single engine).
func TestPlanRefusesClosedLoop(t *testing.T) {
	env := Env{HostRate: 100 * sim.Gbps, Until: sim.Millisecond, Seed: 1}
	if _, ok := PlanArrivals([]Generator{AllToAllSpec{Size: 1000}}, 4, env); ok {
		t.Fatal("planned a closed-loop AllToAll")
	}
	if _, ok := PlanArrivals([]Generator{RPCSpec{Size: 1000, Load: 0.1}}, 4, env); ok {
		t.Fatal("planned a closed-loop RPC")
	}
	if _, ok := PlanArrivals([]Generator{
		PoissonSpec{CDF: WebSearch(), Load: 0.3},
		AllToAllSpec{Size: 1000},
	}, 4, env); ok {
		t.Fatal("planned a mix containing a closed-loop generator")
	}
	// A per-spec OnDone cannot be replayed by the sharded install (it
	// installs its own completion callbacks): must refuse.
	withDone := PoissonSpec{CDF: WebSearch(), Load: 0.3, OnDone: func(*host.Flow) {}}
	if CanPlan(withDone) {
		t.Fatal("CanPlan accepted a spec with its own OnDone")
	}
	if _, ok := PlanArrivals([]Generator{withDone}, 4, env); ok {
		t.Fatal("planned a spec with its own OnDone")
	}
}
