// Package report renders campaign results into structured sinks: the
// aligned text tables the figures have always printed, plus JSON and
// CSV for mechanical consumption (BENCH_*.json-style trajectories,
// spreadsheets, plotting scripts).
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"hpcc/internal/campaign"
)

// WriteText prints every job's tables in campaign order — the same
// bytes regardless of how many workers ran the campaign. Failed jobs
// render as an error header so a broken scenario cannot silently
// disappear from the output.
func WriteText(w io.Writer, res *campaign.Result) error {
	for i := range res.Jobs {
		job := &res.Jobs[i]
		if job.Err != nil {
			if _, err := fmt.Fprintf(w, "== %s FAILED ==\n%v\n\n", job.Name, job.Err); err != nil {
				return err
			}
			continue
		}
		for _, t := range job.Tables {
			t.Fprint(w)
		}
	}
	return nil
}

// JSON document shape. Rows keep the rendered cell strings, so
// trajectories can be extracted mechanically without a second schema
// per figure: single-seed cells parse directly with
// strconv.ParseFloat; multi-seed campaigns render varying cells as
// "mean±hw" — split on '±' before parsing.
type (
	// Doc is the top-level JSON document.
	Doc struct {
		Campaign CampaignMeta `json:"campaign"`
		Jobs     []JobDoc     `json:"jobs"`
	}
	// CampaignMeta echoes the campaign configuration and totals.
	CampaignMeta struct {
		BaseSeed int64             `json:"baseSeed"`
		Seeds    int               `json:"seeds"`
		Parallel int               `json:"parallel"`
		WallMS   float64           `json:"wallMs"`
		Events   uint64            `json:"events"`
		Labels   map[string]string `json:"labels,omitempty"`
	}
	// JobDoc is one scenario's outcome.
	JobDoc struct {
		Name    string     `json:"name"`
		Seeds   []int64    `json:"seeds"`
		WallMS  float64    `json:"wallMs"`
		Events  uint64     `json:"events"`
		Engines int        `json:"engines"`
		Error   string     `json:"error,omitempty"`
		Tables  []TableDoc `json:"tables,omitempty"`
	}
	// TableDoc mirrors experiment.Table.
	TableDoc struct {
		Title string     `json:"title"`
		Cols  []string   `json:"cols"`
		Rows  [][]string `json:"rows"`
		Notes []string   `json:"notes,omitempty"`
		Dists []DistDoc  `json:"dists,omitempty"`
	}
	// DistDoc summarizes one distribution sketch attached to a table —
	// in multi-seed campaigns, pooled across all seeds (percentiles of
	// the combined population, unlike the mean±CI cells which average
	// per-run percentiles).
	DistDoc struct {
		Name string  `json:"name"`
		N    uint64  `json:"n"`
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		P999 float64 `json:"p999"`
		Max  float64 `json:"max"`
	}
)

// WriteJSON emits the campaign as one indented JSON document. labels
// carries free-form run metadata (e.g. the -scale name).
func WriteJSON(w io.Writer, res *campaign.Result, labels map[string]string) error {
	doc := Doc{
		Campaign: CampaignMeta{
			BaseSeed: res.Config.BaseSeed,
			Seeds:    res.Config.Seeds,
			Parallel: res.Config.Parallel,
			WallMS:   float64(res.Wall.Microseconds()) / 1000,
			Events:   res.Events(),
			Labels:   labels,
		},
	}
	for i := range res.Jobs {
		job := &res.Jobs[i]
		jd := JobDoc{
			Name:    job.Name,
			WallMS:  float64(job.Wall.Microseconds()) / 1000,
			Events:  job.Events,
			Engines: job.Engines,
		}
		for _, u := range job.Units {
			jd.Seeds = append(jd.Seeds, u.Seed)
		}
		if job.Err != nil {
			jd.Error = job.Err.Error()
		}
		for _, t := range job.Tables {
			td := TableDoc{Title: t.Title, Cols: t.Cols, Rows: t.Rows, Notes: t.Notes}
			for _, d := range t.Dists {
				sk := d.Sketch
				if sk == nil || sk.Count() == 0 {
					continue // empty sketches have NaN quantiles, which JSON cannot carry
				}
				td.Dists = append(td.Dists, DistDoc{
					Name: d.Name,
					N:    sk.Count(),
					Mean: sk.Mean(),
					P50:  sk.Quantile(50),
					P95:  sk.Quantile(95),
					P99:  sk.Quantile(99),
					P999: sk.Quantile(99.9),
					Max:  sk.Max(),
				})
			}
			jd.Tables = append(jd.Tables, td)
		}
		doc.Jobs = append(doc.Jobs, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCSV emits one rectangular CSV section per table, preceded by
// "# job"/"# table" comment lines and followed by "# note" lines, with
// a blank line between sections.
func WriteCSV(w io.Writer, res *campaign.Result) error {
	for i := range res.Jobs {
		job := &res.Jobs[i]
		if job.Err != nil {
			if _, err := fmt.Fprintf(w, "# job %s FAILED: %v\n\n", job.Name, job.Err); err != nil {
				return err
			}
			continue
		}
		for _, t := range job.Tables {
			if _, err := fmt.Fprintf(w, "# job %s\n# table %s\n", job.Name, t.Title); err != nil {
				return err
			}
			cw := csv.NewWriter(w)
			if err := cw.Write(t.Cols); err != nil {
				return err
			}
			if err := cw.WriteAll(t.Rows); err != nil {
				return err
			}
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			for _, n := range t.Notes {
				if _, err := fmt.Fprintf(w, "# note %s\n", n); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTiming prints the per-job wall-clock/event-count summary. It
// belongs on stderr: timings vary run to run, while the table output on
// stdout must stay byte-identical across worker counts.
func WriteTiming(w io.Writer, res *campaign.Result) error {
	if _, err := fmt.Fprintf(w, "# %-18s %6s %12s %14s %8s\n", "job", "seeds", "wall", "events", "engines"); err != nil {
		return err
	}
	for i := range res.Jobs {
		job := &res.Jobs[i]
		status := ""
		if job.Err != nil {
			status = "  FAILED"
		}
		if _, err := fmt.Fprintf(w, "# %-18s %6d %12s %14d %8d%s\n",
			job.Name, len(job.Units), job.Wall.Round(time.Millisecond), job.Events, job.Engines, status); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# campaign: %d jobs, %d events, wall %s (parallel %d, seeds %d)\n",
		len(res.Jobs), res.Events(), res.Wall.Round(time.Millisecond), res.Config.Parallel, res.Config.Seeds)
	return err
}
