package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"hpcc/internal/campaign"
	"hpcc/internal/experiment"
)

func sampleResult() *campaign.Result {
	tab := &experiment.Table{
		Title: "Sample panel",
		Cols:  []string{"size", "p95"},
		Rows:  [][]string{{"1K", "1.50"}, {"10K", "2.75"}},
		Notes: []string{"a note"},
	}
	return &campaign.Result{
		Config: campaign.Config{Parallel: 4, Seeds: 1, BaseSeed: 1},
		Jobs: []campaign.JobResult{
			{
				Name:   "sample",
				Units:  []campaign.UnitResult{{Seed: 1, Tables: []*experiment.Table{tab}, Wall: time.Millisecond, Events: 42, Engines: 1}},
				Tables: []*experiment.Table{tab},
				Wall:   time.Millisecond,
				Events: 42, Engines: 1,
			},
			{
				Name:  "broken",
				Units: []campaign.UnitResult{{Seed: 1, Err: errors.New("exploded")}},
				Err:   errors.New("exploded"),
			},
		},
		Wall: 2 * time.Millisecond,
	}
}

func TestWriteText(t *testing.T) {
	var b bytes.Buffer
	if err := WriteText(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== Sample panel ==", "1K", "2.75", "note: a note", "== broken FAILED ==", "exploded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSON(&b, sampleResult(), map[string]string{"scale": "default"}); err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Campaign.Events != 42 || doc.Campaign.Labels["scale"] != "default" {
		t.Fatalf("campaign meta = %+v", doc.Campaign)
	}
	if len(doc.Jobs) != 2 || doc.Jobs[0].Name != "sample" {
		t.Fatalf("jobs = %+v", doc.Jobs)
	}
	if doc.Jobs[0].Tables[0].Rows[1][1] != "2.75" {
		t.Fatal("table rows lost")
	}
	if doc.Jobs[1].Error == "" {
		t.Fatal("job error lost")
	}
}

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# job sample", "# table Sample panel", "size,p95", "10K,2.75", "# note a note", "# job broken FAILED"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTiming(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTiming(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"sample", "42", "FAILED", "campaign: 2 jobs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timing output missing %q:\n%s", want, out)
		}
	}
}
