// Package analysistest runs an hpcclint analyzer over a fixture package
// under testdata/src and checks its diagnostics against `// want "re"`
// comments, in the spirit of golang.org/x/tools/go/analysis/analysistest
// but self-contained on the standard library. Fixture imports resolve
// only within testdata/src, so fixtures that need std packages (time,
// math/rand, fmt) use small fakes that replicate the real package path
// and API surface the analyzers match on.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hpcc/internal/analysis"
)

// Run loads testdata/src/<importPath>, type-checks it with imports
// resolved from testdata/src, computes interprocedural facts for the
// package and (recursively) its fixture dependencies — round-tripping
// each dependency's facts through the serialized vetx form, so fixtures
// exercise the same fact export/import path the unitchecker uses — runs
// the analyzer, and compares the diagnostics with the fixture's want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{fset: fset, srcDir: filepath.Join(testdata, "src"), pkgs: map[string]*loadedPkg{}}

	lp, err := ld.load(importPath)
	if err != nil {
		t.Fatalf("load %s: %v", importPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    lp.files,
		Pkg:      lp.pkg,
		Info:     lp.info,
		Facts:    lp.facts,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, importPath, err)
	}

	checkWants(t, fset, lp.files, diags)
}

// want is one `// want "re"` expectation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("// *want +((?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")(?: +(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))*)")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantArgRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// loadedPkg is one fully-analyzed fixture package: parsed files, type
// information, and the interprocedural fact summaries.
type loadedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	facts *analysis.PackageFacts
	vetx  []byte // serialized facts, as a dependency would export them
}

// loader parses and type-checks packages rooted at testdata/src,
// resolving imports recursively within that tree only.
type loader struct {
	fset   *token.FileSet
	srcDir string
	pkgs   map[string]*loadedPkg
}

// load parses, type-checks and fact-computes one fixture package,
// memoized. Dependency facts resolve through the serialized form, the
// in-process equivalent of reading a vetx file.
func (l *loader) load(importPath string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[importPath]; ok {
		return lp, nil
	}
	files, err := l.parsePackage(importPath)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	pkg, err := l.check(importPath, files, info)
	if err != nil {
		return nil, err
	}
	facts := analysis.ComputeFacts(l.fset, files, pkg, info, func(path string) (analysis.SerializedFacts, error) {
		dep, ok := l.pkgs[path]
		if !ok {
			return nil, nil // outside the fixture tree: no facts
		}
		return analysis.DecodeFacts(dep.vetx)
	})
	vetx, err := facts.Export()
	if err != nil {
		return nil, fmt.Errorf("export facts for %s: %v", importPath, err)
	}
	lp := &loadedPkg{files: files, pkg: pkg, info: info, facts: facts, vetx: vetx}
	l.pkgs[importPath] = lp
	return lp, nil
}

func (l *loader) parsePackage(importPath string) ([]*ast.File, error) {
	dir := filepath.Join(l.srcDir, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

func (l *loader) check(importPath string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{Importer: importerFunc(l.Import)}
	return conf.Check(importPath, l.fset, files, info)
}

// Import implements types.Importer over the testdata/src tree. Each
// dependency is fully loaded — typechecked and fact-computed — before
// the importing package's own analysis begins, mirroring the bottom-up
// order cmd/go drives the unitchecker in.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	lp, err := l.load(path)
	if err != nil {
		return nil, fmt.Errorf("import %q: %v (fixture imports resolve only under testdata/src)", path, err)
	}
	return lp.pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newInfo allocates the types.Info maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
