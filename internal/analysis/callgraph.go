package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the per-package call graph and computes the
// interprocedural summaries facts.go defines. The pass is deliberately
// simple and deterministic:
//
//   - Roots are the direct constructs each analyzer flags: wall-clock
//     reads (time.Now/Since), global math/rand draws, unkeyed
//     Engine.At/After calls, and allocating constructs.
//   - A call edge to a function in the same package propagates the
//     callee's taint to the caller via fixpoint iteration; a call into
//     another package resolves against that package's serialized facts.
//   - An //hpcclint:allow escape at a root or call site cleanses the
//     construct from the summary too — an allowed escape is an audited
//     decision, so callers of the escaping function stay clean.
//   - Each function keeps at most one taint per kind: the first root
//     reachable in source order, with the full call chain recorded for
//     the diagnostic.
//
// Closure bodies are not attributed to the enclosing function (the
// FuncLit itself is an alloc root; what runs inside it runs at a
// different time), and calls through plain function values are not
// edges — the lint is conservative-off there, matching the
// intraprocedural analyzers.

// ComputeFacts builds the interprocedural summaries for one
// type-checked package. The importer resolves dependency facts; nil
// means dependencies contribute nothing (purely intra-package chains).
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imp FactImporter) *PackageFacts {
	pf := &PackageFacts{
		pkg:      pkg,
		local:    map[*types.Func]*FuncFact{},
		imported: map[string]SerializedFacts{},
		importer: imp,
	}

	allowIdx := map[*ast.File]map[int][]string{}
	allowed := func(f *ast.File, analyzer string, pos token.Pos) bool {
		idx, ok := allowIdx[f]
		if !ok {
			idx = buildAllowIndex(fset, f)
			allowIdx[f] = idx
		}
		line := fset.Position(pos).Line
		for _, l := range [2]int{line, line - 1} {
			for _, n := range idx[l] {
				if n == analyzer {
					return true
				}
			}
		}
		return false
	}

	type callEdge struct {
		callee *types.Func
		pos    token.Pos
	}
	type fnInfo struct {
		decl  *ast.FuncDecl
		file  *ast.File
		fact  *FuncFact
		edges []callEdge
	}
	var fns []*fnInfo

	for _, f := range files {
		if isTestFile(fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &fnInfo{decl: fd, file: f, fact: &FuncFact{AllocFree: isAllocFree(fd)}}
			fns = append(fns, fi)
			pf.local[obj] = fi.fact
		}
	}

	for _, fi := range fns {
		fi := fi
		addTaint := func(k Kind, pos token.Pos, chain ...string) {
			if fi.fact.Taints[k] != nil || allowed(fi.file, k.analyzer(), pos) {
				return
			}
			fi.fact.Taints[k] = &Taint{Chain: chain}
		}
		handleCall := func(call *ast.CallExpr) {
			switch {
			case isBuiltin(info, call, "make"):
				addTaint(KindAlloc, call.Pos(), "make")
				return
			case isBuiltin(info, call, "new"):
				addTaint(KindAlloc, call.Pos(), "new")
				return
			case isBuiltin(info, call, "append"):
				addTaint(KindAlloc, call.Pos(), "append")
				return
			case isConversion(info, call):
				if isCopyingConversion(info, call) {
					addTaint(KindAlloc, call.Pos(), "string-conversion")
				}
				return
			}
			fn := funcObj(info, call)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			fn = fn.Origin()
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					addTaint(KindWallClock, call.Pos(), "time."+fn.Name())
					return
				}
			case "math/rand", "math/rand/v2":
				if isGlobalRandDraw(fn) {
					addTaint(KindGlobalRand, call.Pos(), fn.Pkg().Name()+"."+fn.Name())
					return
				}
			case "fmt":
				addTaint(KindAlloc, call.Pos(), "fmt."+fn.Name())
				return
			}
			if isEngineMethod(fn, "At", "After") {
				addTaint(KindUnkeyedSched, call.Pos(), displayName(fn, pkg))
				// Engine.At may still carry other taints; fall through.
			}
			if fn.Pkg() == pkg {
				fi.edges = append(fi.edges, callEdge{callee: fn, pos: call.Pos()})
				return
			}
			// Cross-package edge: dependency facts are final, resolve now.
			impFact := pf.factOf(fn)
			if impFact == nil {
				return
			}
			for k := Kind(0); k < numKinds; k++ {
				if k == KindAlloc && impFact.AllocFree {
					continue
				}
				if t := impFact.Taints[k]; t != nil {
					addTaint(k, call.Pos(), append([]string{displayName(fn, pkg)}, t.Chain...)...)
				}
			}
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				addTaint(KindAlloc, n.Pos(), "closure")
				return false // the closure body runs in a different context
			case *ast.CallExpr:
				handleCall(n)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						addTaint(KindAlloc, n.Pos(), "&composite-literal")
					}
				}
			case *ast.CompositeLit:
				if t := info.TypeOf(n); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						addTaint(KindAlloc, n.Pos(), "map-literal")
					case *types.Slice:
						addTaint(KindAlloc, n.Pos(), "slice-literal")
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
					addTaint(KindAlloc, n.Pos(), "string-concat")
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
					addTaint(KindAlloc, n.Pos(), "string-concat")
				}
			}
			return true
		})
	}

	// Bottom-up fixpoint over the local edges. Iteration order is the
	// source order of functions and call sites, so the recorded chains
	// are deterministic.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for _, e := range fi.edges {
				calleeFact := pf.local[e.callee]
				if calleeFact == nil {
					continue
				}
				for k := Kind(0); k < numKinds; k++ {
					if fi.fact.Taints[k] != nil {
						continue
					}
					if k == KindAlloc && calleeFact.AllocFree {
						continue
					}
					t := calleeFact.Taints[k]
					if t == nil || allowed(fi.file, k.analyzer(), e.pos) {
						continue
					}
					fi.fact.Taints[k] = &Taint{
						Chain: append([]string{displayName(e.callee, pkg)}, t.Chain...),
					}
					changed = true
				}
			}
		}
	}
	return pf
}

// isGlobalRandDraw reports whether fn is a package-level math/rand
// function that draws from the shared global source (constructors are
// not draws; methods on seeded sources are the deterministic pattern).
func isGlobalRandDraw(fn *types.Func) bool {
	if fn.Signature().Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// isCopyingConversion reports string<->[]byte/[]rune conversions, the
// conversions that copy their operand.
func isCopyingConversion(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	to, from := info.TypeOf(call), info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}
