package analysis_test

import (
	"testing"

	"hpcc/internal/analysis"
	"hpcc/internal/analysis/analysistest"
)

func TestSnapAlias(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SnapAliasAnalyzer, "snapx")
}
