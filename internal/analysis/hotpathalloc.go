package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAllocAnalyzer checks functions annotated //hpcclint:alloc-free
// — the per-packet paths pinned at runtime by the AllocsPerRun tests
// (port tx/deliver, host ACK processing, sketch Add) — for constructs
// that allocate or are likely to escape to the heap: pointer composite
// literals, map/slice literals, make/new, append growth, closures, fmt
// calls, string concatenation and conversions, interface boxing of
// non-pointer values (including at call boundaries), and method values.
// It is interprocedural through the facts pass: calling a function
// whose summary says it may allocate is flagged at the call site with
// the chain, unless the callee is itself annotated //hpcclint:alloc-free
// (the annotation is the contract; its body is checked in its own
// package). The check is conservative: a flagged construct may in fact
// stay on the stack, but the hot paths are written so none appear at
// all; per-flow setup inside a hot function carries
// //hpcclint:allow hotpathalloc escapes.
var HotPathAllocAnalyzer = &Analyzer{
	Name:      "hotpathalloc",
	Doc:       "functions annotated //hpcclint:alloc-free must contain no allocating or heap-escaping constructs",
	Invariant: "zero-allocation-hot-path",
	Run:       runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isAllocFree(fn) {
				continue
			}
			checkAllocFreeFunc(pass, fn)
		}
	}
	return nil
}

// isAllocFree reports whether the function's doc comment carries the
// //hpcclint:alloc-free directive.
func isAllocFree(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if kind, _, ok := ParseDirective(c.Text); ok && kind == "alloc-free" {
			return true
		}
	}
	return false
}

func checkAllocFreeFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	name := fn.Name.Name
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"%s in alloc-free function %s: the per-packet hot path must not allocate "+
				"(pinned by AllocsPerRun tests); hoist it to setup, reuse pooled state, "+
				"or annotate //hpcclint:allow hotpathalloc -- <reason>", what, name)
	}

	// fmt calls box their arguments; report the call once rather than
	// each boxed argument inside it.
	var fmtCalls []*ast.CallExpr
	inFmtCall := func(pos token.Pos) bool {
		for _, c := range fmtCalls {
			if c.Pos() <= pos && pos < c.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "pointer to composite literal (heap allocation)")
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal (heap allocation)")
			case *types.Slice:
				report(n.Pos(), "slice literal (heap allocation)")
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure creation (allocates the closure and captured variables)")
			return false // don't descend: the closure body runs elsewhere
		case *ast.CallExpr:
			if isBuiltin(info, n, "make", "new") {
				report(n.Pos(), "make/new (heap allocation)")
				break
			}
			if isBuiltin(info, n, "append") {
				report(n.Pos(), "append (grows the backing array beyond capacity, a heap allocation)")
				break
			}
			if fnObj := funcObj(info, n); fnObj != nil && fnObj.Pkg() != nil && fnObj.Pkg().Path() == "fmt" {
				fmtCalls = append(fmtCalls, n)
				report(n.Pos(), "fmt call (formats and boxes arguments)")
				break
			}
			if isConversion(info, n) {
				checkConversion(pass, info, n, report)
				break
			}
			checkTaintedAllocCall(pass, n, name)
			checkCallBoxing(info, n, inFmtCall, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation (allocates the result)")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkImplicitBoxing(info, info.TypeOf(n.Lhs[i]), rhs, inFmtCall, report)
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation (allocates the result)")
			}
		case *ast.ReturnStmt:
			results := fnResults(info, fn)
			for i, r := range n.Results {
				if i < len(results) {
					checkImplicitBoxing(info, results[i], r, inFmtCall, report)
				}
			}
		case *ast.SelectorExpr:
			// A method value (m := x.M used as a value, not called)
			// allocates a bound-method closure.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if !isCalleeOf(fn.Body, n) {
					report(n.Pos(), "method value (allocates a bound-method closure)")
				}
			}
		}
		return true
	})
}

// checkTaintedAllocCall flags calls to functions whose summaries say
// they may allocate, unless the callee itself carries the
// //hpcclint:alloc-free contract (its own body is lint-enforced; any
// remaining construct inside it is an audited escape).
func checkTaintedAllocCall(pass *Pass, call *ast.CallExpr, inFunc string) {
	if pass.Facts == nil {
		return
	}
	fn := funcObj(pass.Info, call)
	if fn == nil || pass.Facts.AllocFree(fn) {
		return
	}
	t := pass.Facts.TaintOf(fn, KindAlloc)
	if t == nil {
		return
	}
	chain := append([]string{displayName(fn, pass.Pkg)}, t.Chain...)
	pass.ReportChainf(call.Pos(), chain,
		"call to %s may allocate in alloc-free function %s: the per-packet hot path must not allocate "+
			"(pinned by AllocsPerRun tests); annotate the callee //hpcclint:alloc-free once its body is "+
			"clean, or annotate //hpcclint:allow hotpathalloc -- <reason>",
		displayName(fn, pass.Pkg), inFunc)
}

// checkConversion flags string<->[]byte/[]rune conversions, which copy.
func checkConversion(pass *Pass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	to, from := info.TypeOf(call), info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	toStr, fromStr := isStringType(to), isStringType(from)
	toSl := isByteOrRuneSlice(to)
	fromSl := isByteOrRuneSlice(from)
	if (toStr && fromSl) || (toSl && fromStr) {
		report(call.Pos(), "string/[]byte conversion (copies the contents)")
	}
}

// checkCallBoxing flags arguments boxed into interface parameters.
func checkCallBoxing(info *types.Info, call *ast.CallExpr, inFmtCall func(token.Pos) bool, report func(token.Pos, string)) {
	if isBuiltin(info, call, "panic") {
		return // a panicking path is never the steady-state hot path
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			// f(xs...) passes the slice through without boxing elements.
			if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
				continue
			}
			s, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = s.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkImplicitBoxing(info, pt, arg, inFmtCall, report)
	}
}

// checkImplicitBoxing reports when a non-pointer, non-interface
// concrete value is assigned to an interface-typed destination: the
// conversion boxes the value on the heap (interned small values aside).
func checkImplicitBoxing(info *types.Info, dst types.Type, src ast.Expr, inFmtCall func(token.Pos) bool, report func(token.Pos, string)) {
	if dst == nil || inFmtCall(src.Pos()) {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := info.TypeOf(src)
	if st == nil {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return // interface-to-interface and pointers don't box
	}
	if st == types.Typ[types.UntypedNil] {
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	report(src.Pos(), "interface boxing of a non-pointer value (heap allocation)")
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// fnResults returns the declared result types of fn.
func fnResults(info *types.Info, fn *ast.FuncDecl) []types.Type {
	obj, _ := info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

// isCalleeOf reports whether sel appears as the Fun of some call in
// body — i.e. it is an ordinary method call, not a method value.
func isCalleeOf(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			found = true
		}
		return true
	})
	return found
}
