// Package analysis is hpcclint: a static-analysis suite that enforces
// the simulator's determinism, checkpoint and hot-path invariants at
// build time. Each analyzer pins a contract the repo otherwise
// guarantees only through golden tests that fire *after* a regression
// lands:
//
//   - determinism: no wall clock, global RNG, goroutines or
//     order-sensitive map iteration in simulation packages — the bug
//     classes that break byte-identical 1-vs-N shard replay.
//   - checkpointfields: every field of a sim.Checkpointable type is
//     covered by both Checkpoint and Rollback (or annotated), so "added
//     a field, forgot to snapshot it" is a lint error instead of a
//     speculative-rollback golden failure three PRs later.
//   - eventkey: packet-delivery and arrival paths schedule through the
//     keyed AtKey/AfterKey variants, so same-picosecond ties order by
//     the canonical structural rank.
//   - hotpathalloc: functions annotated //hpcclint:alloc-free contain
//     no allocating constructs.
//   - snapalias: Checkpoint methods deep-copy reference-typed state
//     (maps, slices, pointed-to structs holding them) instead of
//     aliasing the live simulation's storage into the snapshot.
//
// The determinism, eventkey and hotpathalloc analyzers are
// interprocedural: a facts pass (facts.go, callgraph.go) computes
// per-function summaries — MayWallClock, MayGlobalRand, MayAlloc,
// SchedulesUnkeyed — propagates them bottom-up through the package call
// graph, and serializes them per package through the vet unitchecker
// protocol, so calling a helper that transitively reaches time.Now is
// flagged at the sim-package call site with the full chain
// ("a → b → time.Now") in the diagnostic.
//
// The suite is framework-compatible in spirit with
// golang.org/x/tools/go/analysis but self-contained on the standard
// library: cmd/hpcclint drives it under `go vet -vettool`, and the
// analysistest subpackage runs it over testdata fixtures.
//
// # Annotation grammar
//
// Escapes are explicit comments, each carrying a reason:
//
//	//hpcclint:allow <a>[,<b>] -- <reason>    suppress those analyzers on
//	                                          this line or the next; also
//	                                          cleanses the construct from
//	                                          interprocedural summaries
//	//hpcclint:nosnap <reason>                exempt a struct field from
//	                                          checkpointfields coverage
//	//hpcclint:alias <reason>                 accept an intentional alias
//	                                          in a Checkpoint method
//	                                          (journaled/pointer-stable
//	                                          snapshot patterns)
//	//hpcclint:alloc-free                     opt a function into
//	                                          hotpathalloc checking
//
// An escape without a reason is ignored (the diagnostic still fires), so
// every escape in the tree documents why it is legitimate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ReadmeAnchor is the README section documenting every invariant; each
// diagnostic points at it so a contributor hitting a finding knows why
// the rule exists and which golden test backs it at runtime.
const ReadmeAnchor = "README.md#static-analysis--invariants"

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Chain is the call path from the reported call site to the taint
	// root for interprocedural findings ("a → b → time.Now"); empty for
	// direct findings.
	Chain []string
	// Note marks an advisory finding: printed, carried in -json output,
	// but not counted toward the exit status (go vet stays green).
	Note bool
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in //hpcclint:allow
	// annotations and -list output.
	Name string
	// Doc is the one-line description shown by -list.
	Doc string
	// Invariant names the repo contract the analyzer pins, echoed in
	// every diagnostic.
	Invariant string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CheckpointFieldsAnalyzer,
		EventKeyAnalyzer,
		HotPathAllocAnalyzer,
		SnapAliasAnalyzer,
	}
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts holds the interprocedural summaries for this package and
	// its dependencies (see facts.go). Nil disables call-site taint
	// checks, leaving each analyzer purely intraprocedural.
	Facts *PackageFacts

	// Report receives diagnostics that survive //hpcclint:allow
	// filtering.
	Report func(Diagnostic)

	allows map[*ast.File]map[int][]string // line -> analyzers allowed there
}

// Reportf emits a diagnostic at pos unless an
// "//hpcclint:allow <analyzer> -- reason" comment covers its line. The
// invariant name and README anchor are appended so the message is
// self-explanatory wherever it surfaces.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, nil, false, format, args...)
}

// ReportChainf is Reportf for interprocedural findings: the taint chain
// (call path from the flagged call to the root construct) is appended to
// the message and carried structurally for -json output.
func (p *Pass) ReportChainf(pos token.Pos, chain []string, format string, args ...interface{}) {
	p.report(pos, chain, false, format, args...)
}

// Notef emits an advisory diagnostic: same filtering and formatting as
// Reportf, but marked Note so it never trips the vet exit status.
func (p *Pass) Notef(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, nil, true, format, args...)
}

func (p *Pass) report(pos token.Pos, chain []string, note bool, format string, args ...interface{}) {
	if p.Allowed(p.Analyzer.Name, pos) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if len(chain) > 0 {
		msg = fmt.Sprintf("%s [chain: %s]", msg, strings.Join(chain, " → "))
	}
	severity := "invariant"
	if note {
		severity = "note; invariant"
	}
	p.Report(Diagnostic{
		Pos: pos,
		Message: fmt.Sprintf("%s [%s: %s; see %s]",
			msg, severity, p.Analyzer.Invariant, ReadmeAnchor),
		Analyzer: p.Analyzer.Name,
		Chain:    chain,
		Note:     note,
	})
}

// Allowed reports whether an allow annotation for the named analyzer
// covers pos: a directive on the same line (trailing comment) or on the
// line directly above.
func (p *Pass) Allowed(name string, pos token.Pos) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	if p.allows == nil {
		p.allows = make(map[*ast.File]map[int][]string)
	}
	idx, ok := p.allows[f]
	if !ok {
		idx = buildAllowIndex(p.Fset, f)
		p.allows[f] = idx
	}
	line := p.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, n := range idx[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func buildAllowIndex(fset *token.FileSet, f *ast.File) map[int][]string {
	idx := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			names := AllowedAnalyzers(c.Text)
			if len(names) == 0 {
				continue
			}
			line := fset.Position(c.End()).Line
			idx[line] = append(idx[line], names...)
		}
	}
	return idx
}

// AllowedAnalyzers decodes an escape comment into the analyzer names it
// suppresses. "//hpcclint:allow a,b -- reason" suppresses a and b;
// "//hpcclint:alias reason" is snapalias's dedicated escape and
// suppresses snapalias. A reasonless escape suppresses nothing (the
// diagnostic still fires), so every escape in the tree documents why it
// is legitimate.
func AllowedAnalyzers(comment string) []string {
	kind, rest, ok := ParseDirective(comment)
	if !ok {
		return nil
	}
	switch kind {
	case "alias":
		if strings.TrimSpace(rest) == "" {
			return nil
		}
		return []string{"snapalias"}
	case "allow":
		names, reason, found := strings.Cut(rest, "--")
		if !found || strings.TrimSpace(reason) == "" {
			return nil
		}
		var out []string
		for _, name := range strings.Split(names, ",") {
			if name = strings.TrimSpace(name); name != "" {
				out = append(out, name)
			}
		}
		return out
	}
	return nil
}

// ParseDirective decodes an "//hpcclint:<kind> <rest>" comment,
// reporting ok = false for ordinary comments. Kind is "allow",
// "nosnap", "alias" or "alloc-free".
func ParseDirective(text string) (kind, rest string, ok bool) {
	const prefix = "//hpcclint:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(text, prefix)
	kind, rest, _ = strings.Cut(body, " ")
	switch kind {
	case "allow", "nosnap", "alias", "alloc-free":
		return kind, strings.TrimSpace(rest), true
	}
	return "", "", false
}

// simScope lists the package names under internal/ whose code runs
// inside (or schedules) the deterministic simulation: the determinism
// analyzer applies to exactly these. internal/campaign is included
// because its worker pool brackets every scenario run.
var simScope = []string{"sim", "fabric", "host", "topology", "workload", "cc", "campaign"}

// inSimScope reports whether the import path is one of the simulation
// packages (".../internal/<name>" or a subpackage of it, e.g.
// internal/cc/hpcc).
func inSimScope(path string) bool {
	for _, name := range simScope {
		if hasSegments(path, "internal", name) {
			return true
		}
	}
	return false
}

// deliveryScope lists the packages whose At/After calls sit on
// packet-delivery or arrival paths, where PR 5's canonical event rank
// requires the keyed variants.
var deliveryScope = []string{"fabric", "topology", "workload"}

func inDeliveryScope(path string) bool {
	for _, name := range deliveryScope {
		if hasSegments(path, "internal", name) {
			return true
		}
	}
	return false
}

// hasSegments reports whether path contains the given consecutive
// slash-separated segments.
func hasSegments(path string, segs ...string) bool {
	parts := strings.Split(path, "/")
	for i := 0; i+len(segs) <= len(parts); i++ {
		match := true
		for j, s := range segs {
			if parts[i+j] != s {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// funcObj resolves a call's callee to its types.Func, or nil for
// builtins, conversions and indirect calls through plain variables.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, names ...string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return false
	}
	for _, n := range names {
		if b.Name() == n {
			return true
		}
	}
	return false
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
