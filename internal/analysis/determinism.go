package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer flags the constructs that break byte-identical
// 1-vs-N shard replay in simulation packages: wall-clock reads, draws
// from the global math/rand source, goroutine launches, and iteration
// over maps where the body's effects depend on iteration order. It is
// interprocedural: calling a helper outside the simulation scope that
// transitively reaches time.Now/time.Since or a global RNG draw is
// flagged at the call site with the full chain (helpers inside the
// scope are flagged where their own body offends, so each root is
// reported exactly once). The invariant is pinned at runtime by the
// sharded golden tests (TestShardedSaturatedMultipathGolden and
// friends) and the CI 1-vs-4-shard bytewise smoke; this analyzer
// catches the regression at build time instead.
var DeterminismAnalyzer = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall clock, global RNG, goroutines and order-sensitive map iteration in simulation packages",
	Invariant: "byte-identical-sharded-replay",
	Run:       runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !inSimScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement in a simulation package: goroutine interleaving is not replayable; "+
						"run the world single-threaded per engine or annotate //hpcclint:allow determinism -- <reason>")
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := funcObj(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s in a simulation package: wall-clock reads diverge across runs and shard counts; "+
					"use the engine clock (Engine.Now) or annotate //hpcclint:allow determinism -- <reason>", fn.Name())
		}
		return
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the shared global source;
		// seeded *rand.Rand streams (methods) are the deterministic
		// pattern sim.NewRNG hands out.
		if isGlobalRandDraw(fn) {
			pass.Reportf(call.Pos(),
				"math/rand.%s draws from the process-global source; thread a seeded *rand.Rand from the spec "+
					"(sim.NewRNG) or annotate //hpcclint:allow determinism -- <reason>", fn.Name())
		}
		return
	}
	checkTaintedDetCall(pass, call, fn)
}

// checkTaintedDetCall flags calls into helpers outside the simulation
// scope whose summaries say they transitively reach a wall-clock read
// or a global RNG draw. Callees inside the scope are skipped: their own
// package's analysis reports the offending construct, so each root
// surfaces exactly once.
func checkTaintedDetCall(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	if pass.Facts == nil || inSimScope(fn.Pkg().Path()) {
		return
	}
	if t := pass.Facts.TaintOf(fn, KindWallClock); t != nil {
		chain := append([]string{displayName(fn, pass.Pkg)}, t.Chain...)
		pass.ReportChainf(call.Pos(), chain,
			"call to %s reaches a wall-clock read: wall-clock values diverge across runs and shard counts; "+
				"use the engine clock (Engine.Now) or annotate //hpcclint:allow determinism -- <reason>",
			displayName(fn, pass.Pkg))
	}
	if t := pass.Facts.TaintOf(fn, KindGlobalRand); t != nil {
		chain := append([]string{displayName(fn, pass.Pkg)}, t.Chain...)
		pass.ReportChainf(call.Pos(), chain,
			"call to %s draws from the process-global math/rand source; thread a seeded *rand.Rand from "+
				"the spec (sim.NewRNG) or annotate //hpcclint:allow determinism -- <reason>",
			displayName(fn, pass.Pkg))
	}
}

// checkMapRange flags `range m` over a map when the loop body's effect
// depends on iteration order: calls that may schedule events or emit
// output, appends to outer slices, and non-commutative writes to outer
// state. Commutative integer accumulation (+=, -=, ^=, |=, &= and
// ++/--) is exempt; floating-point accumulation is not, because
// rounding makes even a sum order-sensitive.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	hazard := mapRangeHazard(pass, rng)
	if hazard == "" {
		return
	}
	pass.Reportf(rng.Pos(),
		"iteration over a map with an order-sensitive body (%s): map order is randomized per process, "+
			"so this diverges across runs and shard counts; iterate sorted keys, make the body commutative, "+
			"or annotate //hpcclint:allow determinism -- <reason>", hazard)
}

func mapRangeHazard(pass *Pass, rng *ast.RangeStmt) string {
	info := pass.Info
	body := rng.Body
	// An object is loop-local when it is declared inside the range
	// statement (including the key/value variables).
	isLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < body.End()
	}
	// rootObj resolves the base identifier of an lvalue (x, x.f, x[i],
	// *x ... chains).
	var rootObj func(e ast.Expr) types.Object
	rootObj = func(e ast.Expr) types.Object {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(e)
		case *ast.SelectorExpr:
			return rootObj(e.X)
		case *ast.IndexExpr:
			return rootObj(e.X)
		case *ast.StarExpr:
			return rootObj(e.X)
		}
		return nil
	}
	isFloat := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}

	var hazard string
	note := func(h string) {
		if hazard == "" {
			hazard = h
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n, "delete", "len", "cap", "min", "max", "append", "clear", "copy") ||
				isConversion(info, n) {
				return true
			}
			note("calls a function, which may schedule events or emit output")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				obj := rootObj(lhs)
				if obj == nil || isLocal(obj) {
					continue
				}
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.XOR_ASSIGN,
					token.OR_ASSIGN, token.AND_ASSIGN:
					if isFloat(lhs) {
						note("floating-point accumulation into outer state; rounding is order-sensitive")
					}
				default:
					// Plain assignment or appends into outer state:
					// the final value depends on which key came last.
					note("writes outer state in iteration order")
				}
			}
		case *ast.IncDecStmt:
			if obj := rootObj(n.X); obj != nil && !isLocal(obj) && isFloat(n.X) {
				note("floating-point accumulation into outer state; rounding is order-sensitive")
			}
		case *ast.SendStmt:
			note("sends on a channel in iteration order")
		case *ast.GoStmt, *ast.DeferStmt:
			note("launches work in iteration order")
		}
		return true
	})
	return hazard
}
