package analysis_test

import (
	"testing"

	"hpcc/internal/analysis"
	"hpcc/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "hpcc/internal/fabric")
}

// TestDeterminismOutOfScope checks the analyzer stays silent outside
// the sim packages: internal/report may read the wall clock.
func TestDeterminismOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "hpcc/internal/report")
}
