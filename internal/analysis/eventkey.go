package analysis

import (
	"go/ast"
	"go/types"
)

// EventKeyAnalyzer flags unkeyed Engine.At/Engine.After calls in the
// packet-delivery and arrival packages (internal/fabric, topology,
// workload). PR 5's canonical event rank orders same-picosecond events
// by a structural key derived from the spec; an unkeyed call falls back
// to key 0 and ties break by arming order, which differs between 1 and
// N shards. Delivery and arrival paths must use AtKey/AfterKey with
// sim.ArrivalKey or the port's WireKey. Interprocedurally, calling a
// helper outside the delivery scope whose summary says it schedules
// unkeyed is flagged at the call site with the chain.
var EventKeyAnalyzer = &Analyzer{
	Name:      "eventkey",
	Doc:       "packet-delivery and arrival paths must schedule via AtKey/AfterKey so same-picosecond ties order by the canonical rank",
	Invariant: "canonical-event-rank",
	Run:       runEventKey,
}

func runEventKey(pass *Pass) error {
	if !inDeliveryScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.Info, call)
			if fn == nil {
				return true
			}
			if isEngineMethod(fn, "At", "After") {
				pass.Reportf(call.Pos(),
					"unkeyed Engine.%s on a delivery/arrival path: same-picosecond ties break by arming order, "+
						"which diverges between 1 and N shards; use %sKey with sim.ArrivalKey or the port's WireKey, "+
						"or annotate //hpcclint:allow eventkey -- <reason> if ties are provably local",
					fn.Name(), fn.Name())
				return true
			}
			checkTaintedSchedCall(pass, call, fn)
			return true
		})
	}
	return nil
}

// checkTaintedSchedCall flags calls into helpers outside the delivery
// scope whose summaries say they transitively schedule through unkeyed
// Engine.At/After. Callees inside the scope are skipped — their own
// package's analysis reports the offending call.
func checkTaintedSchedCall(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	if pass.Facts == nil || fn.Pkg() == nil || inDeliveryScope(fn.Pkg().Path()) {
		return
	}
	t := pass.Facts.TaintOf(fn, KindUnkeyedSched)
	if t == nil {
		return
	}
	chain := append([]string{displayName(fn, pass.Pkg)}, t.Chain...)
	pass.ReportChainf(call.Pos(), chain,
		"call to %s schedules through unkeyed Engine.At/After on a delivery/arrival path: same-picosecond "+
			"ties break by arming order, which diverges between 1 and N shards; plumb a key down to the "+
			"AtKey/AfterKey call or annotate //hpcclint:allow eventkey -- <reason> if ties are provably local",
		displayName(fn, pass.Pkg))
}

// isEngineMethod reports whether fn is a method with one of the given
// names on *Engine (or Engine) from a package named "sim".
func isEngineMethod(fn *types.Func, names ...string) bool {
	match := false
	for _, n := range names {
		if fn.Name() == n {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}
