package analysis

import (
	"go/ast"
	"go/types"
)

// EventKeyAnalyzer flags unkeyed Engine.At/Engine.After calls in the
// packet-delivery and arrival packages (internal/fabric, topology,
// workload). PR 5's canonical event rank orders same-picosecond events
// by a structural key derived from the spec; an unkeyed call falls back
// to key 0 and ties break by arming order, which differs between 1 and
// N shards. Delivery and arrival paths must use AtKey/AfterKey with
// sim.ArrivalKey or the port's WireKey.
var EventKeyAnalyzer = &Analyzer{
	Name:      "eventkey",
	Doc:       "packet-delivery and arrival paths must schedule via AtKey/AfterKey so same-picosecond ties order by the canonical rank",
	Invariant: "canonical-event-rank",
	Run:       runEventKey,
}

func runEventKey(pass *Pass) error {
	if !inDeliveryScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.Info, call)
			if fn == nil || !isEngineMethod(fn, "At", "After") {
				return true
			}
			pass.Reportf(call.Pos(),
				"unkeyed Engine.%s on a delivery/arrival path: same-picosecond ties break by arming order, "+
					"which diverges between 1 and N shards; use %sKey with sim.ArrivalKey or the port's WireKey, "+
					"or annotate //hpcclint:allow eventkey -- <reason> if ties are provably local",
				fn.Name(), fn.Name())
			return true
		})
	}
	return nil
}

// isEngineMethod reports whether fn is a method with one of the given
// names on *Engine (or Engine) from a package named "sim".
func isEngineMethod(fn *types.Func, names ...string) bool {
	match := false
	for _, n := range names {
		if fn.Name() == n {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}
