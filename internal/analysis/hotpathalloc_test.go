package analysis_test

import (
	"testing"

	"hpcc/internal/analysis"
	"hpcc/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPathAllocAnalyzer, "hot")
}
