// Package time is a fixture stand-in for the real std package: the
// analyzers match callees by package path and name only, so this fake
// lets testdata packages type-check without std export data.
package time

type Time struct{ ns int64 }

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return 0 }

func (t Time) Sub(u Time) Duration { return Duration(t.ns - u.ns) }
