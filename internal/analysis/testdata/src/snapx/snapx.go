// Package snapx is a snapalias fixture: Checkpoint methods must
// deep-copy reference-typed state, not alias it into the snapshot.
package snapx

type inner struct {
	m  map[int]int
	xs []int
}

// thing aliases live state three ways: a map, a slice, and a struct
// value carrying both.
type thing struct {
	m      map[int]int
	xs     []int
	st     inner
	snapM  map[int]int
	snapXs []int
	snapSt inner
}

func (t *thing) Checkpoint() {
	t.snapM = t.m   // want `the copied map shares its storage`
	t.snapXs = t.xs // want `the copied slice shares its backing array`
	t.snapSt = t.st // want `the copied struct value shares reference fields \(m, xs\)`
}

func (t *thing) Rollback() {
	t.m = t.snapM
	t.xs = t.snapXs
	t.st = t.snapSt
}

// clean deep-copies: key-by-key for the map, append into a reused
// buffer for the slice. Neither needs an annotation.
type clean struct {
	m      map[int]int
	xs     []int
	snapM  map[int]int
	snapXs []int
}

func (c *clean) Checkpoint() {
	if c.snapM == nil {
		c.snapM = make(map[int]int, len(c.m))
	}
	clear(c.snapM)
	for k, v := range c.m {
		c.snapM[k] = v
	}
	c.snapXs = append(c.snapXs[:0], c.xs...)
}

func (c *clean) Rollback() {
	clear(c.m)
	for k, v := range c.snapM {
		c.m[k] = v
	}
	c.xs = append(c.xs[:0], c.snapXs...)
}

// node is pointed-to mutable state with its own reference field.
type node struct {
	val  int
	deps []int
}

type nodeSnap struct {
	p   *node
	val node
}

// journaled uses the pointer-stable snapshot pattern: identity plus a
// value copy through the pointer. The pointer itself is clean (it has a
// *n sibling); the value copy would flag node.deps, and carries an
// audited alias escape.
type journaled struct {
	live []*node
	snap []nodeSnap
}

func (j *journaled) Checkpoint() {
	j.snap = j.snap[:0]
	for _, n := range j.live {
		j.snap = append(j.snap, nodeSnap{p: n, val: *n}) //hpcclint:alias deps is journaled append-only and truncated on rollback
	}
}

func (j *journaled) Rollback() {
	for i := range j.snap {
		*j.snap[i].p = j.snap[i].val
	}
}

// unjournaled is the same pattern without the escape: the struct value
// copied through the pointer shares deps with the live node.
type unjournaled struct {
	live []*node
	snap []nodeSnap
}

func (u *unjournaled) Checkpoint() {
	u.snap = u.snap[:0]
	for _, n := range u.live {
		u.snap = append(u.snap, nodeSnap{p: n, val: *n}) // want `the copied struct value shares reference fields \(deps\)`
	}
}

func (u *unjournaled) Rollback() {}

// wrap stores a bare pointer with no paired value copy: the snapshot
// records only identity, so rollback cannot restore the bytes.
type wrap struct {
	p *node
}

type holder struct {
	live *node
	snap wrap
}

func (h *holder) Checkpoint() {
	h.snap = wrap{p: h.live} // want `stores a pointer to live state without a paired value copy`
}

func (h *holder) Rollback() {
	h.live = h.snap.p
}

// pair is the clean pointer+value form over reference-free state.
type plain struct {
	x int
}

type pair struct {
	p   *plain
	val plain
}

type keeper struct {
	live *plain
	snap pair
}

func (k *keeper) Checkpoint() {
	k.snap = pair{p: k.live, val: *k.live}
}

func (k *keeper) Rollback() {
	*k.snap.p = k.snap.val
}

// scalarOnly copies scalars and reference-free structs: nothing flags.
type scalarOnly struct {
	a, b  int64
	rates [4]float64
	snap  *scalarOnly
}

func (s *scalarOnly) Checkpoint() {
	if s.snap == nil {
		s.snap = &scalarOnly{}
	}
	s.snap.a = s.a
	s.snap.b = s.b
	s.snap.rates = s.rates
}

func (s *scalarOnly) Rollback() {
	s.a = s.snap.a
	s.b = s.snap.b
	s.rates = s.snap.rates
}
