// Package topology is an eventkey-analyzer fixture: its import path is
// in the delivery scope, so unkeyed Engine.At/After calls are flagged.
package topology

import "hpcc/internal/sim"

type node struct {
	eng *sim.Engine
	key sim.EventKey
}

func (n *node) deliver(t sim.Time, fn func()) {
	n.eng.At(t, fn) // want `unkeyed Engine\.At on a delivery/arrival path`
}

func (n *node) arrive(d sim.Time, fn func()) {
	n.eng.After(d, fn) // want `unkeyed Engine\.After on a delivery/arrival path`
}

// deliverKeyed uses the canonical-rank variant: not flagged.
func (n *node) deliverKeyed(t sim.Time, fn func()) {
	n.eng.AtKey(t, n.key, fn)
}

func (n *node) arriveKeyed(d sim.Time, fn func()) {
	n.eng.AfterKey(d, n.key, fn)
}

func (n *node) localTimer(d sim.Time, fn func()) {
	n.eng.After(d, fn) //hpcclint:allow eventkey -- engine-local timer, ties cannot span shards
}

// deferred schedules through a helper that hides the unkeyed call one
// package away: the imported summary flags the call site with the chain.
func (n *node) deferred(d sim.Time, fn func()) {
	sim.Defer(n.eng, d, fn) // want `call to sim\.Defer schedules through unkeyed Engine\.At/After.*\[chain: sim\.Defer → Engine\.After\]`
}
