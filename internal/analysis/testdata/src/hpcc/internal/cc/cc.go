// Package cc is a negative fixture for the eventkey analyzer: it is
// outside the delivery scope (fabric/topology/workload), so engine-
// local timers may schedule unkeyed.
package cc

import "hpcc/internal/sim"

type pacer struct{ eng *sim.Engine }

func (p *pacer) rearm(d sim.Time, fn func()) {
	p.eng.After(d, fn)
}
