// Package host is a checkpointfields fixture: structs with
// Checkpoint/Rollback pairs must cover every field in both methods,
// unless annotated //hpcclint:nosnap or copied whole through the
// receiver.
package host

type hostSnap struct {
	inFl  int64
	acked int64
}

type host struct {
	id    int //hpcclint:nosnap immutable identity
	inFl  int64
	acked int64
	lost  int64 // want `field lost of checkpointable type host is not referenced in Checkpoint or Rollback`
	snap  hostSnap
}

func (h *host) Checkpoint() {
	h.snap.inFl = h.inFl
	h.snap.acked = h.acked
}

func (h *host) Rollback() {
	h.inFl = h.snap.inFl
	h.acked = h.snap.acked
}

type meter struct {
	ticks int64 // want `field ticks of checkpointable type meter is not referenced in Rollback`
	saved int64
}

func (m *meter) Checkpoint() { m.saved = m.ticks }

func (m *meter) Rollback() { m.ticks2(m.saved) }

func (m *meter) ticks2(v int64) {}

// cwnd snapshots itself with a whole-struct copy: every field is
// covered at once, the flat-value pattern the cc schemes use.
type cwnd struct {
	rate float64
	inc  float64
	snap *cwnd //hpcclint:nosnap snapshot slot
}

func (c *cwnd) Checkpoint() { *c.snap = *c }

func (c *cwnd) Rollback() { *c = *c.snap }

type half struct { // want `half has Checkpoint but no Rollback`
	v int
}

func (h *half) Checkpoint() { h.v++ }
