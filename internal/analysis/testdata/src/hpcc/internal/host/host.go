// Package host is a checkpointfields fixture: structs with
// Checkpoint/Rollback pairs must cover every field in both methods,
// unless annotated //hpcclint:nosnap or copied whole through the
// receiver.
package host

type hostSnap struct {
	inFl  int64
	acked int64
}

type host struct {
	id    int //hpcclint:nosnap immutable identity
	inFl  int64
	acked int64
	lost  int64 // want `field lost of checkpointable type host is not referenced in Checkpoint or Rollback`
	snap  hostSnap
}

func (h *host) Checkpoint() {
	h.snap.inFl = h.inFl
	h.snap.acked = h.acked
}

func (h *host) Rollback() {
	h.inFl = h.snap.inFl
	h.acked = h.snap.acked
}

type meter struct {
	ticks int64 // want `field ticks of checkpointable type meter is not referenced in Rollback`
	saved int64
}

func (m *meter) Checkpoint() { m.saved = m.ticks }

func (m *meter) Rollback() { m.ticks2(m.saved) }

func (m *meter) ticks2(v int64) {}

// cwnd snapshots itself with a whole-struct copy: every field is
// covered at once, the flat-value pattern the cc schemes use.
type cwnd struct {
	rate float64
	inc  float64
	snap *cwnd //hpcclint:nosnap snapshot slot
}

func (c *cwnd) Checkpoint() { *c.snap = *c }

func (c *cwnd) Rollback() { *c = *c.snap }

type half struct { // want `half has Checkpoint but no Rollback`
	v int
}

func (h *half) Checkpoint() { h.v++ }

// stats is embedded below: its fields promote into the outer struct.
type stats struct {
	sent int64
	lost int64
	seq  int64
}

// embHost covers the embedded struct by referencing every promoted
// field individually — the flattening rule accepts that as coverage.
type embHost struct {
	stats
	save stats //hpcclint:nosnap snapshot slot
}

func (e *embHost) Checkpoint() {
	e.save.sent = e.sent
	e.save.lost = e.lost
	e.save.seq = e.seq
}

func (e *embHost) Rollback() {
	e.sent = e.save.sent
	e.lost = e.save.lost
	e.seq = e.save.seq
}

// embBad snapshots only one promoted field: the diagnostic names the
// ones it forgot.
type embBad struct {
	stats // want `embedded field stats of checkpointable type embBad is not covered in Checkpoint or Rollback: promoted fields sent, lost are never referenced`
	sSeq  int64
}

func (e *embBad) Checkpoint() { e.sSeq = e.seq }

func (e *embBad) Rollback() { e.seq = e.sSeq }

// gauge is itself Checkpointable, so fields of this type must be
// delegated to rather than hand-copied.
type gauge struct {
	v, sv int64
}

func (g *gauge) Checkpoint() { g.sv = g.v }

func (g *gauge) Rollback() { g.v = g.sv }

// bank delegates to its gauge field in both methods: clean.
type bank struct {
	g  *gauge
	n  int64
	sn int64 //hpcclint:nosnap snapshot slot
}

func (b *bank) Checkpoint() {
	b.g.Checkpoint()
	b.sn = b.n
}

func (b *bank) Rollback() {
	b.g.Rollback()
	b.n = b.sn
}

// bankBad copies a scalar out of the gauge instead of delegating:
// only gauge's own methods know its full snapshot shape.
type bankBad struct {
	g     *gauge // want `field g of checkpointable type bankBad has a Checkpointable type: delegate with g\.Checkpoint\(\) and g\.Rollback\(\)`
	gSave int64
}

func (b *bankBad) Checkpoint() { b.gSave = b.g.v }

func (b *bankBad) Rollback() { b.g.v = b.gSave }

// wide uses a whole-struct copy, which covers the map field — but the
// copy shares the map's storage, so an advisory note points at the
// snapalias analyzer. Notes never trip the vet exit status.
type wide struct {
	hits int64
	seen map[int]bool // want `whole-struct copy covers field seen of wide, but its reference state \(seen\) is copied by reference`
	snap *wide        //hpcclint:nosnap snapshot slot
}

func (w *wide) Checkpoint() { *w.snap = *w }

func (w *wide) Rollback() { *w = *w.snap }
