// Package util is a taint-source fixture outside the sim scope: its
// own wall-clock reads are legal here, but the facts pass summarizes
// them, so sim-scope callers of Stamp are flagged with the full
// cross-package chain (Stamp → wall → time.Now).
package util

import "time"

// Stamp reaches the wall clock two calls deep.
func Stamp() time.Time { return wall() }

func wall() time.Time { return time.Now() }

// Quiet reads the wall clock under an audited escape: the allow
// cleanses the root from Quiet's summary, so callers stay clean.
func Quiet() time.Time {
	//hpcclint:allow determinism -- startup-only read, excluded from results
	return time.Now()
}

// Pure never touches a taint root.
func Pure(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
