// Package fabric is a determinism-analyzer fixture: its import path
// matches the sim scope, so wall clock, global RNG, goroutines and
// order-sensitive map ranges are flagged here.
package fabric

import (
	"fmt"
	"math/rand"
	"time"

	"hpcc/internal/util"
)

type port struct {
	pkts  int
	bytes float64
}

type fab struct {
	ports map[int]*port
	total int
	sumB  float64
	out   []int
}

func (f *fab) drain() {}

func (f *fab) tick() {
	t0 := time.Now() // want `time\.Now in a simulation package`
	_ = t0
	n := rand.Intn(4) // want `math/rand\.Intn draws from the process-global source`
	_ = n
	go f.drain() // want `go statement in a simulation package`
}

// seeded draws from a *rand.Rand threaded in by the caller: the
// deterministic pattern, not flagged.
func (f *fab) seeded(rng *rand.Rand) int {
	return rng.Intn(4)
}

// construct builds a seeded stream; constructors are not draws.
func (f *fab) construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func (f *fab) metered() {
	//hpcclint:allow determinism -- wall-clock metering only, excluded from results
	t0 := time.Now()
	_ = t0
}

// elapsed: time.Since is a wall-clock read too.
func (f *fab) elapsed(t0 time.Time) {
	_ = time.Since(t0) // want `time\.Since in a simulation package`
}

// stamped calls a helper outside the sim scope that transitively
// reaches the wall clock: flagged at the call site, with the chain
// imported from util's serialized facts.
func (f *fab) stamped() {
	_ = util.Stamp() // want `call to util\.Stamp reaches a wall-clock read.*\[chain: util\.Stamp → wall → time\.Now\]`
}

// quieted calls a helper whose wall-clock read carries an audited
// escape: the allow cleanses the summary, so the call site is clean.
func (f *fab) quieted() {
	_ = util.Quiet()
	_ = util.Pure(1, 2)
}

// commutative integer accumulation over a map is order-insensitive.
func (f *fab) commutative() {
	for _, p := range f.ports {
		f.total += p.pkts
	}
}

func (f *fab) floatSum() {
	for _, p := range f.ports { // want `iteration over a map with an order-sensitive body`
		f.sumB += p.bytes
	}
}

func (f *fab) appendOrder() {
	for id := range f.ports { // want `iteration over a map with an order-sensitive body`
		f.out = append(f.out, id)
	}
}

func (f *fab) emits() {
	for id, p := range f.ports { // want `iteration over a map with an order-sensitive body`
		fmt.Println(id, p.pkts)
	}
}

// delete during iteration is order-insensitive and exempt.
func (f *fab) sweep() {
	for id := range f.ports {
		delete(f.ports, id)
	}
}

func (f *fab) dump() {
	//hpcclint:allow determinism -- debug dump, not part of simulation results
	for id := range f.ports {
		fmt.Println(id)
	}
}
