// Package report is a negative fixture: it is outside the determinism
// analyzer's sim scope, so wall-clock reads are fine here.
package report

import "time"

func Stamp() time.Time { return time.Now() }
