// Package sim is a fixture stand-in for hpcc/internal/sim: the
// eventkey analyzer matches methods named At/After on *Engine in a
// package named "sim", which this fake replicates.
package sim

type Time int64

type EventKey uint64

type Engine struct{ now Time }

func (e *Engine) Now() Time { return e.now }

func (e *Engine) At(t Time, fn func()) {}

func (e *Engine) After(d Time, fn func()) {}

func (e *Engine) AtKey(t Time, key EventKey, fn func()) {}

func (e *Engine) AfterKey(d Time, key EventKey, fn func()) {}

// Defer schedules unkeyed through Engine.After: package sim is outside
// the delivery scope, so nothing is flagged here, but the facts pass
// records the SchedulesUnkeyed summary and delivery-scope callers are
// flagged at their call site with the chain.
func Defer(e *Engine, d Time, fn func()) { e.After(d, fn) }
