// Package hot is a hotpathalloc fixture: only functions annotated
// //hpcclint:alloc-free are checked, in any package.
package hot

import "fmt"

type entry struct{ v int }

type path struct {
	buf  [8]int
	n    int
	name string
}

func consume(x interface{}) {}

//hpcclint:alloc-free
func (p *path) good(v int) {
	e := entry{v: v} // value composite literal: stack, not flagged
	p.buf[p.n&7] = e.v
	p.n++
}

//hpcclint:alloc-free
func (p *path) bad(v int) {
	e := &entry{v: v} // want `pointer to composite literal`
	_ = e
	m := map[int]int{} // want `map literal`
	_ = m
	s := []int{v} // want `slice literal`
	_ = s
	b := make([]byte, 8) // want `make/new`
	_ = b
	f := func() int { return v } // want `closure creation`
	_ = f
	fmt.Printf("v=%d", v) // want `fmt call`
	p.name = p.name + "x" // want `string concatenation`
	var i interface{}
	i = v // want `interface boxing`
	_ = i
	bs := []byte(p.name) // want `string/\[\]byte conversion`
	_ = bs
}

//hpcclint:alloc-free
func (p *path) boxes(v int) {
	consume(v) // want `interface boxing`
}

//hpcclint:alloc-free
func (p *path) mval() func(int) {
	return p.put // want `method value`
}

func (p *path) put(v int) {}

// cold is unannotated: the same constructs are not flagged.
func (p *path) cold(v int) {
	_ = &entry{v: v}
	_ = make([]byte, 8)
}

//hpcclint:alloc-free
func (p *path) setup() {
	m := make(map[int]int) //hpcclint:allow hotpathalloc -- per-flow setup, not per-packet
	_ = m
}
