// Package hot is a hotpathalloc fixture: only functions annotated
// //hpcclint:alloc-free are checked, in any package.
package hot

import "fmt"

type entry struct{ v int }

type path struct {
	buf  [8]int
	n    int
	name string
	s    []int
}

func consume(x interface{}) {}

//hpcclint:alloc-free
func (p *path) good(v int) {
	e := entry{v: v} // value composite literal: stack, not flagged
	p.buf[p.n&7] = e.v
	p.n++
}

//hpcclint:alloc-free
func (p *path) bad(v int) {
	e := &entry{v: v} // want `pointer to composite literal`
	_ = e
	m := map[int]int{} // want `map literal`
	_ = m
	s := []int{v} // want `slice literal`
	_ = s
	b := make([]byte, 8) // want `make/new`
	_ = b
	f := func() int { return v } // want `closure creation`
	_ = f
	fmt.Printf("v=%d", v) // want `fmt call`
	p.name = p.name + "x" // want `string concatenation`
	var i interface{}
	i = v // want `interface boxing`
	_ = i
	bs := []byte(p.name) // want `string/\[\]byte conversion`
	_ = bs
}

//hpcclint:alloc-free
func (p *path) boxes(v int) {
	consume(v) // want `interface boxing`
}

//hpcclint:alloc-free
func (p *path) mval() func(int) {
	return p.put // want `method value`
}

func (p *path) put(v int) {}

// cold is unannotated: the same constructs are not flagged.
func (p *path) cold(v int) {
	_ = &entry{v: v}
	_ = make([]byte, 8)
}

//hpcclint:alloc-free
func (p *path) setup() {
	m := make(map[int]int) //hpcclint:allow hotpathalloc -- per-flow setup, not per-packet
	_ = m
}

//hpcclint:alloc-free
func (p *path) appends(v int) {
	p.s = append(p.s, v) // want `append \(grows the backing array`
}

// grows reaches an append three calls deep: flagged at the call site
// with the chain from the facts pass.
//
//hpcclint:alloc-free
func (p *path) grows() {
	p.grow() // want `call to path\.grow may allocate.*\[chain: path\.grow → path\.deepGrow → append\]`
}

func (p *path) grow() { p.deepGrow() }

func (p *path) deepGrow() { p.s = append(p.s, 1) }

// okCall calls an //hpcclint:alloc-free callee: the annotation is the
// contract, so the call is not re-flagged even though tidy's body
// contains an audited append escape.
//
//hpcclint:alloc-free
func (p *path) okCall() { p.tidy() }

//hpcclint:alloc-free
func (p *path) tidy() {
	p.s = append(p.s, 0) //hpcclint:allow hotpathalloc -- amortized growth audited by AllocsPerRun
}

func sink(vs ...interface{}) {}

// spread passes a ready-made slice through a variadic interface
// parameter: no per-element boxing happens, so nothing is flagged.
//
//hpcclint:alloc-free
func (p *path) spread(vs []interface{}) { sink(vs...) }

// boxed passes elements individually: each one is boxed.
//
//hpcclint:alloc-free
func (p *path) boxed(v int) {
	sink(v) // want `interface boxing`
}

// panics guards with a message: a panicking path is never the
// steady-state hot path, so its boxed argument is not flagged.
//
//hpcclint:alloc-free
func (p *path) panics(v int) {
	if v < 0 {
		panic("negative")
	}
	p.buf[p.n&7] = v
}
