// Package fmt is a fixture stand-in for the real std package.
package fmt

func Sprintf(format string, args ...interface{}) string { return format }

func Printf(format string, args ...interface{}) (int, error) { return 0, nil }

func Println(args ...interface{}) (int, error) { return 0, nil }
