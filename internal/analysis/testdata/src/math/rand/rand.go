// Package rand is a fixture stand-in for math/rand: package-level
// functions model the global source, methods model a seeded *Rand.
package rand

type Source interface{ Int63() int64 }

type Rand struct{ src Source }

func New(src Source) *Rand { return &Rand{src: src} }

func NewSource(seed int64) Source { return nil }

func Intn(n int) int { return 0 }

func Float64() float64 { return 0 }

func (r *Rand) Intn(n int) int { return 0 }

func (r *Rand) Float64() float64 { return 0 }

func (r *Rand) ExpFloat64() float64 { return 0 }
