package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapAliasAnalyzer verifies that Checkpoint methods deep-copy
// reference-typed state instead of aliasing it — the one checkpoint bug
// class checkpointfields structurally cannot see: a field can be
// "referenced in both methods" while the snapshot still shares storage
// with the live simulation, so a post-checkpoint mutation silently
// corrupts the snapshot and rollback restores garbage.
//
// The analyzer tracks the set of receiver-derived expressions (the
// receiver, locals bound to plain receiver paths, range variables over
// receiver state) and flags copies whose source is receiver-derived and
// reference-typed:
//
//   - assigning a live map or slice (snap.m = s.m aliases the storage)
//   - copying a struct value that transitively contains maps or slices
//     (*snap = *s shares every one of them)
//   - storing a pointer to live state in a composite literal without a
//     sibling value copy through that pointer ({ptr: p} journals only
//     the identity; {ptr: p, val: *p} is the pointer-stable deep-copy
//     pattern PR 6 established)
//
// Clean patterns pass without annotation: append into a reused buffer
// (sn.bins = append(sn.bins[:0], s.bins...)), maps-style key-by-key
// copies, make+copy, and any other call-expression source (calls are
// assumed to copy; their bodies are checked where they live).
// Intentional aliases — journaled pointers restored through explicit
// write-backs, pointer-stable trampolines — carry
// "//hpcclint:alias <reason>" escapes.
var SnapAliasAnalyzer = &Analyzer{
	Name:      "snapalias",
	Doc:       "Checkpoint methods must deep-copy reference-typed state (maps, slices, pointed-to structs), not alias it into the snapshot",
	Invariant: "checkpoint-deep-copy",
	Run:       runSnapAlias,
}

func runSnapAlias(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Checkpoint" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if fn.Type.Params.NumFields() != 0 || fn.Type.Results.NumFields() != 0 {
				continue // not the sim.Checkpointable shape
			}
			checkCheckpointAliases(pass, fn)
		}
	}
	return nil
}

func checkCheckpointAliases(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	recvType := recvTypeName(fn)
	derived := receiverDerived(info, fn)

	// rooted reports whether e is a plain access path (idents, field
	// selections, indexing, derefs) rooted at a receiver-derived object.
	rooted := func(e ast.Expr) bool {
		obj, plain := pathRoot(info, e)
		return plain && obj != nil && derived[obj]
	}
	flag := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(),
			"Checkpoint of %s aliases live state: %s; a post-checkpoint mutation corrupts the snapshot and "+
				"rollback restores garbage — deep-copy it (append into a reused buffer, copy key by key, or "+
				"pair the pointer with a value copy), or annotate //hpcclint:alias <reason> for "+
				"journaled/pointer-stable patterns", recvType, what)
	}
	// checkValueCopy flags a reference-typed copy from a receiver-derived
	// source expression.
	checkValueCopy := func(src ast.Expr) {
		src = ast.Unparen(src)
		if !rooted(src) {
			return
		}
		t := info.TypeOf(src)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			flag(src, "the copied map shares its storage with the live simulation")
		case *types.Slice:
			flag(src, "the copied slice shares its backing array with the live simulation")
		default:
			if refs := refFields(t); len(refs) > 0 {
				flag(src, "the copied struct value shares reference fields ("+
					strings.Join(refs, ", ")+") with the live simulation")
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for _, rhs := range n.Rhs {
				checkValueCopy(rhs)
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Struct); !ok {
				return true
			}
			// Collect the dereferenced siblings so {ptr: p, val: *p}
			// recognizes the pointer+value-copy pattern.
			deref := map[string]bool{}
			values := make([]ast.Expr, 0, len(n.Elts))
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				v = ast.Unparen(v)
				values = append(values, v)
				if star, ok := v.(*ast.StarExpr); ok {
					deref[types.ExprString(ast.Unparen(star.X))] = true
				}
			}
			for _, v := range values {
				if !rooted(v) {
					continue
				}
				t := info.TypeOf(v)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Pointer); ok {
					if !deref[types.ExprString(v)] {
						flag(v, "the snapshot stores a pointer to live state without a paired value copy (*"+
							types.ExprString(v)+")")
					}
					continue
				}
				checkValueCopy(v)
			}
		}
		return true
	})
}

// receiverDerived computes the set of objects whose value is a plain
// path into the receiver's state: the receiver itself, locals assigned
// from such paths, and range variables over them. One-level dataflow,
// iterated to a fixpoint over the body.
func receiverDerived(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	derived := map[types.Object]bool{}
	if names := fn.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
		if obj := info.Defs[names[0]]; obj != nil {
			derived[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		add := func(e ast.Expr) {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := info.ObjectOf(id)
			if obj != nil && !derived[obj] {
				derived[obj] = true
				changed = true
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if obj, plain := pathRoot(info, rhs); plain && obj != nil && derived[obj] {
						add(n.Lhs[i])
					}
				}
			case *ast.RangeStmt:
				if obj, plain := pathRoot(info, n.X); plain && obj != nil && derived[obj] {
					if n.Key != nil {
						add(n.Key)
					}
					if n.Value != nil {
						add(n.Value)
					}
				}
			}
			return true
		})
	}
	return derived
}

// pathRoot resolves the base object of a plain access path (x, x.f,
// x[i], *x and chains thereof). plain is false for anything containing
// calls, slicing, address-taking or literals — those produce fresh
// values rather than aliasing the root's storage wholesale.
func pathRoot(info *types.Info, e ast.Expr) (root types.Object, plain bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e), true
	case *ast.SelectorExpr:
		return pathRoot(info, e.X)
	case *ast.IndexExpr:
		return pathRoot(info, e.X)
	case *ast.StarExpr:
		return pathRoot(info, e.X)
	}
	return nil, false
}

// refFields lists the dotted paths of map- and slice-typed fields
// reachable through value composition (structs and arrays) of t. Copying
// a value of t shares exactly these with the original.
func refFields(t types.Type) []string {
	var out []string
	var walk func(t types.Type, path string, depth int)
	// Value composition cannot cycle (a struct cannot contain itself by
	// value), so a depth cap is enough to bound the walk.
	walk = func(t types.Type, path string, depth int) {
		if depth > 8 {
			return
		}
		switch u := t.Underlying().(type) {
		case *types.Map:
			out = append(out, strings.TrimPrefix(path, "."))
		case *types.Slice:
			out = append(out, strings.TrimPrefix(path, "."))
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				walk(f.Type(), path+"."+f.Name(), depth+1)
			}
		case *types.Array:
			walk(u.Elem(), path+"[]", depth+1)
		}
	}
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		walk(t, "", 0)
	}
	return out
}
