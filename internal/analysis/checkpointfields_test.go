package analysis_test

import (
	"testing"

	"hpcc/internal/analysis"
	"hpcc/internal/analysis/analysistest"
)

func TestCheckpointFields(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CheckpointFieldsAnalyzer, "hpcc/internal/host")
}
