package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
)

// This file defines the interprocedural fact store. A fact is a
// per-function summary — "this function may transitively reach a
// wall-clock read / a global RNG draw / an allocating construct / an
// unkeyed Engine.At" — computed bottom-up over the package call graph
// (callgraph.go) and serialized per package through the vet unitchecker
// protocol: cmd/hpcclint writes this package's facts to the unit's
// VetxOutput file and reads dependency facts from the files listed in
// the unit cfg's PackageVetx map. analysistest computes dependency
// facts in process instead, walking fixture imports recursively.

// Kind enumerates the taint kinds the call-graph pass tracks.
type Kind int

const (
	// KindWallClock: the function may reach time.Now or time.Since.
	KindWallClock Kind = iota
	// KindGlobalRand: the function may draw from the process-global
	// math/rand source.
	KindGlobalRand
	// KindAlloc: the function may execute an allocating construct
	// (make/new/append, reference literals, closures, fmt, string
	// building).
	KindAlloc
	// KindUnkeyedSched: the function may schedule through unkeyed
	// Engine.At/Engine.After.
	KindUnkeyedSched

	numKinds
)

// String names the kind for diagnostics and JSON output.
func (k Kind) String() string {
	switch k {
	case KindWallClock:
		return "wall-clock"
	case KindGlobalRand:
		return "global-rand"
	case KindAlloc:
		return "alloc"
	case KindUnkeyedSched:
		return "unkeyed-sched"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// analyzer names the analyzer whose //hpcclint:allow escape cleanses
// roots and call edges of this kind from the summaries.
func (k Kind) analyzer() string {
	switch k {
	case KindWallClock, KindGlobalRand:
		return "determinism"
	case KindAlloc:
		return "hotpathalloc"
	case KindUnkeyedSched:
		return "eventkey"
	}
	return ""
}

// Taint records that a function may reach a root construct of one kind.
type Taint struct {
	// Chain is the call path from (but excluding) the function itself
	// down to the root construct, e.g. ["stamp", "time.Now"] for a
	// function calling stamp which calls time.Now. A direct root is a
	// one-element chain.
	Chain []string `json:"chain"`
}

// FuncFact is the exported summary of one function.
type FuncFact struct {
	// AllocFree records an //hpcclint:alloc-free annotation: the
	// function's body is lint-enforced allocation-free, so callers do
	// not re-flag calls to it even if cleansed constructs remain inside.
	AllocFree bool `json:"allocFree,omitempty"`
	// Taints holds at most one taint per kind (the first reachable root
	// in source order). Keyed by Kind.String() in the JSON form.
	Taints [numKinds]*Taint `json:"-"`
}

// serializedFact is FuncFact's JSON wire form, with taints keyed by
// kind name so the vetx files are self-describing.
type serializedFact struct {
	AllocFree bool              `json:"allocFree,omitempty"`
	Taints    map[string]*Taint `json:"taints,omitempty"`
}

// SerializedFacts is the JSON document written to a unit's vetx file:
// facts keyed by the function's object path (types.Func.FullName, e.g.
// "hpcc/internal/fabric.clamp" or "(*hpcc/internal/fabric.Port).kick").
type SerializedFacts map[string]*serializedFact

// FactImporter resolves the serialized facts of a dependency package,
// or (nil, nil) when none were recorded for it.
type FactImporter func(pkgPath string) (SerializedFacts, error)

// PackageFacts holds the summaries for one package under analysis plus
// lazily-imported summaries of its dependencies.
type PackageFacts struct {
	pkg      *types.Package
	local    map[*types.Func]*FuncFact
	imported map[string]SerializedFacts
	importer FactImporter
}

// TaintOf returns fn's taint of the given kind, or nil when fn is
// untainted or unknown (no facts recorded for its package).
func (pf *PackageFacts) TaintOf(fn *types.Func, k Kind) *Taint {
	if f := pf.factOf(fn); f != nil {
		return f.Taints[k]
	}
	return nil
}

// AllocFree reports whether fn carries the //hpcclint:alloc-free
// contract.
func (pf *PackageFacts) AllocFree(fn *types.Func) bool {
	if f := pf.factOf(fn); f != nil {
		return f.AllocFree
	}
	return false
}

func (pf *PackageFacts) factOf(fn *types.Func) *FuncFact {
	if pf == nil || fn == nil {
		return nil
	}
	fn = fn.Origin()
	if fn.Pkg() == pf.pkg {
		return pf.local[fn]
	}
	if fn.Pkg() == nil {
		return nil
	}
	sf := pf.importedFacts(fn.Pkg().Path())
	if sf == nil {
		return nil
	}
	s, ok := sf[fn.FullName()]
	if !ok {
		return nil
	}
	return s.funcFact()
}

func (pf *PackageFacts) importedFacts(path string) SerializedFacts {
	if sf, ok := pf.imported[path]; ok {
		return sf
	}
	var sf SerializedFacts
	if pf.importer != nil {
		sf, _ = pf.importer(path) // unresolvable deps simply have no facts
	}
	pf.imported[path] = sf
	return sf
}

// Export serializes the package's own facts for the unit's vetx output.
func (pf *PackageFacts) Export() ([]byte, error) {
	out := SerializedFacts{}
	for fn, fact := range pf.local {
		s := &serializedFact{AllocFree: fact.AllocFree}
		for k := Kind(0); k < numKinds; k++ {
			if t := fact.Taints[k]; t != nil {
				if s.Taints == nil {
					s.Taints = map[string]*Taint{}
				}
				s.Taints[k.String()] = t
			}
		}
		if s.AllocFree || s.Taints != nil {
			out[fn.FullName()] = s
		}
	}
	return json.MarshalIndent(out, "", "\t")
}

// DecodeFacts parses a dependency's vetx file contents. Empty input
// (the placeholder cmd/hpcclint writes for packages outside the module)
// decodes as no facts.
func DecodeFacts(data []byte) (SerializedFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var sf SerializedFacts
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, err
	}
	return sf, nil
}

func (s *serializedFact) funcFact() *FuncFact {
	f := &FuncFact{AllocFree: s.AllocFree}
	for name, t := range s.Taints {
		for k := Kind(0); k < numKinds; k++ {
			if k.String() == name {
				f.Taints[k] = t
			}
		}
	}
	return f
}

// displayName renders fn for a taint chain as seen from pkg:
// same-package functions by bare name ("stamp", "Port.kick"), foreign
// ones prefixed with their package name ("time.Now", "sim.Engine.At").
func displayName(fn *types.Func, pkg *types.Package) string {
	name := fn.Name()
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
