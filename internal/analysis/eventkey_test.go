package analysis_test

import (
	"testing"

	"hpcc/internal/analysis"
	"hpcc/internal/analysis/analysistest"
)

func TestEventKey(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.EventKeyAnalyzer, "hpcc/internal/topology")
}

// TestEventKeyOutOfScope checks engine-local timers outside the
// delivery scope (fabric/topology/workload) are exempt.
func TestEventKeyOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.EventKeyAnalyzer, "hpcc/internal/cc")
}
