package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CheckpointFieldsAnalyzer verifies the sim.Checkpointable contract
// structurally: for every struct type with Checkpoint/Rollback methods,
// each field must be referenced in BOTH methods — snapshotted on
// Checkpoint and restored on Rollback — or carry an explicit
// "//hpcclint:nosnap <reason>" annotation (immutable config, derived
// state, journaled membership, the snapshot slot itself). A
// whole-struct copy through the receiver (*s = *r / *r = *s) covers
// every field at once, the flat-value pattern the cc schemes use.
//
// This turns "you added a field to Host but forgot to snapshot it" —
// today a speculative-rollback golden failure several PRs later
// (TestSpeculativePropertyRandomized) — into a build-time error.
var CheckpointFieldsAnalyzer = &Analyzer{
	Name:      "checkpointfields",
	Doc:       "every mutable field of a sim.Checkpointable type must be covered by both Checkpoint and Rollback (or annotated //hpcclint:nosnap)",
	Invariant: "checkpoint-rollback-field-coverage",
	Run:       runCheckpointFields,
}

// ckptField is one declared field of a checkpointable struct.
type ckptField struct {
	name   string
	pos    token.Pos
	nosnap bool
}

func runCheckpointFields(pass *Pass) error {
	// Collect struct declarations and the Checkpoint/Rollback methods
	// per receiver type across the whole package (the struct and its
	// checkpoint code commonly live in different files).
	structs := map[string]*ast.StructType{}
	structPos := map[string]token.Pos{}
	methods := map[string]map[string]*ast.FuncDecl{} // type -> method name -> decl
	nosnapLines := map[string]map[int]bool{}         // filename -> line with a nosnap directive

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		fname := pass.Fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if kind, _, ok := ParseDirective(c.Text); ok && kind == "nosnap" {
					if nosnapLines[fname] == nil {
						nosnapLines[fname] = map[int]bool{}
					}
					nosnapLines[fname][pass.Fset.Position(c.End()).Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						structs[ts.Name.Name] = st
						structPos[ts.Name.Name] = ts.Name.Pos()
					}
				}
			case *ast.FuncDecl:
				name := d.Name.Name
				if (name != "Checkpoint" && name != "Rollback") || d.Recv == nil {
					continue
				}
				if d.Type.Params.NumFields() != 0 || d.Type.Results.NumFields() != 0 {
					continue // not the sim.Checkpointable shape
				}
				recv := recvTypeName(d)
				if recv == "" {
					continue
				}
				if methods[recv] == nil {
					methods[recv] = map[string]*ast.FuncDecl{}
				}
				methods[recv][name] = d
			}
		}
	}

	for typeName, ms := range methods {
		st, ok := structs[typeName]
		if !ok {
			continue // method on a non-struct or foreign type
		}
		ck, hasCk := ms["Checkpoint"]
		rb, hasRb := ms["Rollback"]
		if hasCk != hasRb {
			have, missing := "Checkpoint", "Rollback"
			if hasRb {
				have, missing = "Rollback", "Checkpoint"
			}
			pass.Reportf(structPos[typeName],
				"%s has %s but no %s: sim.Checkpointable requires both, and a half-implemented pair "+
					"silently corrupts speculative rollback", typeName, have, missing)
			continue
		}

		fields := structFields(pass, st, nosnapLines)
		if len(fields) == 0 {
			continue
		}
		inCk := fieldRefs(pass, ck, fields)
		inRb := fieldRefs(pass, rb, fields)
		for _, fd := range fields {
			if fd.nosnap {
				continue
			}
			ckOK, rbOK := inCk[fd.name], inRb[fd.name]
			if ckOK && rbOK {
				continue
			}
			var where string
			switch {
			case !ckOK && !rbOK:
				where = "Checkpoint or Rollback"
			case !ckOK:
				where = "Checkpoint"
			default:
				where = "Rollback"
			}
			pass.Reportf(fd.pos,
				"field %s of checkpointable type %s is not referenced in %s: snapshot and restore it, "+
					"or annotate it //hpcclint:nosnap <reason> if it is immutable, derived or journaled elsewhere",
				fd.name, typeName, where)
		}
	}
	return nil
}

func recvTypeName(d *ast.FuncDecl) string {
	if len(d.Recv.List) != 1 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func structFields(pass *Pass, st *ast.StructType, nosnapLines map[string]map[int]bool) []ckptField {
	var out []ckptField
	for _, f := range st.Fields.List {
		nosnap := false
		pos := f.Pos()
		p := pass.Fset.Position(pos)
		if lines := nosnapLines[p.Filename]; lines != nil {
			// Directive trailing the field's line, or on the line above.
			nosnap = lines[p.Line] || lines[p.Line-1]
		}
		if len(f.Names) == 0 {
			// Embedded field: refer to it by its type's base name.
			name := embeddedName(f.Type)
			if name != "" {
				out = append(out, ckptField{name: name, pos: pos, nosnap: nosnap})
			}
			continue
		}
		for _, id := range f.Names {
			if id.Name == "_" {
				continue
			}
			out = append(out, ckptField{name: id.Name, pos: id.Pos(), nosnap: nosnap})
		}
	}
	return out
}

func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return embeddedName(t.X)
	}
	return ""
}

// fieldRefs returns the set of struct fields the method references
// through its receiver, treating a whole-struct copy via the receiver
// (*dst = *recv, *recv = *src, s := *recv) as covering every field.
func fieldRefs(pass *Pass, fn *ast.FuncDecl, fields []ckptField) map[string]bool {
	known := map[string]bool{}
	for _, fd := range fields {
		known[fd.name] = true
	}
	recvName := ""
	if names := fn.Recv.List[0].Names; len(names) == 1 {
		recvName = names[0].Name
	}
	refs := map[string]bool{}
	if recvName == "" || recvName == "_" || fn.Body == nil {
		return refs
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recvName
	}
	coverAll := func() {
		for name := range known {
			refs[name] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isRecv(n.X) && known[n.Sel.Name] {
				refs[n.Sel.Name] = true
			}
		case *ast.StarExpr:
			// *recv as a value or assignment target is a whole-struct
			// copy: every field is snapshotted/restored at once.
			if isRecv(n.X) {
				coverAll()
			}
		}
		return true
	})
	return refs
}

// String implements fmt.Stringer for debugging field sets.
func (f ckptField) String() string {
	var b strings.Builder
	b.WriteString(f.name)
	if f.nosnap {
		b.WriteString(" (nosnap)")
	}
	return b.String()
}
