package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CheckpointFieldsAnalyzer verifies the sim.Checkpointable contract
// structurally: for every struct type with Checkpoint/Rollback methods,
// each field must be referenced in BOTH methods — snapshotted on
// Checkpoint and restored on Rollback — or carry an explicit
// "//hpcclint:nosnap <reason>" annotation (immutable config, derived
// state, journaled membership, the snapshot slot itself). A
// whole-struct copy through the receiver (*s = *r / *r = *s) covers
// every field at once, the flat-value pattern the cc schemes use —
// though if the struct holds reference-typed fields, a note points at
// the snapalias analyzer, which checks whether that copy aliases.
//
// Two structural rules look through the field list:
//
//   - An embedded struct is flattened: it counts as covered when the
//     embedded name itself is referenced, or when every promoted field
//     is (the missing ones are named in the diagnostic).
//   - A field whose own type is Checkpointable must be delegated to —
//     recv.f.Checkpoint() in Checkpoint and recv.f.Rollback() in
//     Rollback — because only the field's own methods know how to
//     snapshot its internals (the pattern QueueMonitor uses for its
//     sketches).
//
// This turns "you added a field to Host but forgot to snapshot it" —
// today a speculative-rollback golden failure several PRs later
// (TestSpeculativePropertyRandomized) — into a build-time error.
var CheckpointFieldsAnalyzer = &Analyzer{
	Name:      "checkpointfields",
	Doc:       "every mutable field of a sim.Checkpointable type must be covered by both Checkpoint and Rollback (or annotated //hpcclint:nosnap)",
	Invariant: "checkpoint-rollback-field-coverage",
	Run:       runCheckpointFields,
}

// ckptField is one declared field of a checkpointable struct.
type ckptField struct {
	name     string
	pos      token.Pos
	nosnap   bool
	typ      types.Type // nil when unresolved
	embedded bool
	subnames []string // promoted field names of an embedded struct
}

func runCheckpointFields(pass *Pass) error {
	// Collect struct declarations and the Checkpoint/Rollback methods
	// per receiver type across the whole package (the struct and its
	// checkpoint code commonly live in different files).
	structs := map[string]*ast.StructType{}
	structPos := map[string]token.Pos{}
	methods := map[string]map[string]*ast.FuncDecl{} // type -> method name -> decl
	nosnapLines := map[string]map[int]bool{}         // filename -> line with a nosnap directive

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		fname := pass.Fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if kind, _, ok := ParseDirective(c.Text); ok && kind == "nosnap" {
					if nosnapLines[fname] == nil {
						nosnapLines[fname] = map[int]bool{}
					}
					nosnapLines[fname][pass.Fset.Position(c.End()).Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						structs[ts.Name.Name] = st
						structPos[ts.Name.Name] = ts.Name.Pos()
					}
				}
			case *ast.FuncDecl:
				name := d.Name.Name
				if (name != "Checkpoint" && name != "Rollback") || d.Recv == nil {
					continue
				}
				if d.Type.Params.NumFields() != 0 || d.Type.Results.NumFields() != 0 {
					continue // not the sim.Checkpointable shape
				}
				recv := recvTypeName(d)
				if recv == "" {
					continue
				}
				if methods[recv] == nil {
					methods[recv] = map[string]*ast.FuncDecl{}
				}
				methods[recv][name] = d
			}
		}
	}

	for typeName, ms := range methods {
		st, ok := structs[typeName]
		if !ok {
			continue // method on a non-struct or foreign type
		}
		ck, hasCk := ms["Checkpoint"]
		rb, hasRb := ms["Rollback"]
		if hasCk != hasRb {
			have, missing := "Checkpoint", "Rollback"
			if hasRb {
				have, missing = "Rollback", "Checkpoint"
			}
			pass.Reportf(structPos[typeName],
				"%s has %s but no %s: sim.Checkpointable requires both, and a half-implemented pair "+
					"silently corrupts speculative rollback", typeName, have, missing)
			continue
		}

		fields := structFields(pass, st, nosnapLines)
		if len(fields) == 0 {
			continue
		}
		known := map[string]bool{}
		for _, fd := range fields {
			known[fd.name] = true
			for _, sub := range fd.subnames {
				known[sub] = true
			}
		}
		inCk := methodCoverage(pass, ck, known)
		inRb := methodCoverage(pass, rb, known)
		for _, fd := range fields {
			if fd.nosnap {
				continue
			}
			if isCheckpointable(fd.typ) {
				if !inCk.delegated[fd.name] || !inRb.delegated[fd.name] {
					pass.Reportf(fd.pos,
						"field %s of checkpointable type %s has a Checkpointable type: delegate with "+
							"%s.Checkpoint() and %s.Rollback() (only the field's own methods snapshot its "+
							"internals), or annotate it //hpcclint:nosnap <reason>",
						fd.name, typeName, fd.name, fd.name)
				}
				continue
			}
			ckOK, ckMissing := fd.covered(inCk)
			rbOK, _ := fd.covered(inRb)
			if ckOK && rbOK {
				// Whole-struct copies cover everything at once, but they
				// copy maps and slices by reference: surface an advisory
				// note pointing at the analyzer that audits the copy.
				if inCk.coverAll && !inCk.refs[fd.name] {
					if refs := fieldRefState(fd); len(refs) > 0 {
						pass.Notef(fd.pos,
							"whole-struct copy covers field %s of %s, but its reference state (%s) is "+
								"copied by reference and shares storage with the live simulation; the snapalias "+
								"analyzer audits the Checkpoint copy — deep-copy the field explicitly if it "+
								"mutates between checkpoints",
							fd.name, typeName, strings.Join(refs, ", "))
					}
				}
				continue
			}
			var where string
			switch {
			case !ckOK && !rbOK:
				where = "Checkpoint or Rollback"
			case !ckOK:
				where = "Checkpoint"
			default:
				where = "Rollback"
			}
			if fd.embedded && len(ckMissing) > 0 && ckMissing[0] != fd.name {
				pass.Reportf(fd.pos,
					"embedded field %s of checkpointable type %s is not covered in %s: promoted fields %s are "+
						"never referenced; snapshot them (or the embedded value as a whole), or annotate "+
						"//hpcclint:nosnap <reason>",
					fd.name, typeName, where, strings.Join(ckMissing, ", "))
				continue
			}
			pass.Reportf(fd.pos,
				"field %s of checkpointable type %s is not referenced in %s: snapshot and restore it, "+
					"or annotate it //hpcclint:nosnap <reason> if it is immutable, derived or journaled elsewhere",
				fd.name, typeName, where)
		}
	}
	return nil
}

// fieldRefState names the reference state a whole-struct copy shares
// for this field: the field itself when it is a map or slice, or the
// reference-typed paths inside it when it is a struct or array.
func fieldRefState(fd ckptField) []string {
	if fd.typ == nil {
		return nil
	}
	switch fd.typ.Underlying().(type) {
	case *types.Map, *types.Slice:
		return []string{fd.name}
	}
	return refFields(fd.typ)
}

// covered reports whether the field is covered by the method's
// references: a whole-struct copy, a direct reference, or (for embedded
// structs) every promoted field referenced. missing lists what is not.
func (fd *ckptField) covered(mc coverage) (ok bool, missing []string) {
	if mc.coverAll || mc.refs[fd.name] {
		return true, nil
	}
	if fd.embedded && len(fd.subnames) > 0 {
		for _, sub := range fd.subnames {
			if !mc.refs[sub] {
				missing = append(missing, sub)
			}
		}
		return len(missing) == 0, missing
	}
	return false, []string{fd.name}
}

func recvTypeName(d *ast.FuncDecl) string {
	if len(d.Recv.List) != 1 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func structFields(pass *Pass, st *ast.StructType, nosnapLines map[string]map[int]bool) []ckptField {
	var out []ckptField
	for _, f := range st.Fields.List {
		nosnap := false
		pos := f.Pos()
		p := pass.Fset.Position(pos)
		if lines := nosnapLines[p.Filename]; lines != nil {
			// Directive trailing the field's line, or on the line above.
			nosnap = lines[p.Line] || lines[p.Line-1]
		}
		typ := pass.Info.TypeOf(f.Type)
		if len(f.Names) == 0 {
			// Embedded field: refer to it by its type's base name, and
			// flatten its promoted fields so covering them one by one
			// also counts.
			name := embeddedName(f.Type)
			if name != "" {
				out = append(out, ckptField{
					name: name, pos: pos, nosnap: nosnap, typ: typ,
					embedded: true, subnames: promotedFields(pass.Pkg, typ),
				})
			}
			continue
		}
		for _, id := range f.Names {
			if id.Name == "_" {
				continue
			}
			out = append(out, ckptField{name: id.Name, pos: id.Pos(), nosnap: nosnap, typ: typ})
		}
	}
	return out
}

// promotedFields lists the field names an embedded struct (or pointer
// to struct) promotes into the outer type, restricted to those the
// analyzed package can actually reference.
func promotedFields(pkg *types.Package, t types.Type) []string {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" {
			continue
		}
		if !f.Exported() && f.Pkg() != nil && f.Pkg() != pkg {
			continue // not referenceable from here
		}
		out = append(out, f.Name())
	}
	return out
}

// isCheckpointable reports whether t (or *t) satisfies the
// sim.Checkpointable shape: Checkpoint() and Rollback() methods with no
// parameters or results.
func isCheckpointable(t types.Type) bool {
	if t == nil {
		return false
	}
	hasMethod := func(name string) bool {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			return false
		}
		sig := fn.Signature()
		return sig.Params().Len() == 0 && sig.Results().Len() == 0
	}
	return hasMethod("Checkpoint") && hasMethod("Rollback")
}

// coverage is what one method's body references.
type coverage struct {
	refs      map[string]bool // field names referenced through the receiver
	delegated map[string]bool // fields with a recv.f.<Method>() delegation call
	coverAll  bool            // whole-struct copy via *recv
}

// methodCoverage returns the struct fields the method references
// through its receiver, the fields it delegates to (recv.f.Checkpoint()
// inside Checkpoint, recv.f.Rollback() inside Rollback), and whether a
// whole-struct copy via the receiver (*dst = *recv, s := *recv) covers
// every field at once.
func methodCoverage(pass *Pass, fn *ast.FuncDecl, known map[string]bool) coverage {
	mc := coverage{refs: map[string]bool{}, delegated: map[string]bool{}}
	recvName := ""
	if names := fn.Recv.List[0].Names; len(names) == 1 {
		recvName = names[0].Name
	}
	if recvName == "" || recvName == "_" || fn.Body == nil {
		return mc
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recvName
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// recv.f.Checkpoint() / recv.f.Rollback(): delegation to a
			// Checkpointable field, matched against the enclosing
			// method's own name.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == fn.Name.Name {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && isRecv(inner.X) {
					mc.delegated[inner.Sel.Name] = true
				}
			}
		case *ast.SelectorExpr:
			if isRecv(n.X) && known[n.Sel.Name] {
				mc.refs[n.Sel.Name] = true
			}
		case *ast.StarExpr:
			// *recv as a value or assignment target is a whole-struct
			// copy: every field is snapshotted/restored at once.
			if isRecv(n.X) {
				mc.coverAll = true
			}
		}
		return true
	})
	return mc
}

func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return embeddedName(t.X)
	}
	return ""
}

// String implements fmt.Stringer for debugging field sets.
func (f ckptField) String() string {
	var b strings.Builder
	b.WriteString(f.name)
	if f.nosnap {
		b.WriteString(" (nosnap)")
	}
	return b.String()
}
