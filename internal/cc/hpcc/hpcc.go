// Package hpcc implements the HPCC sender algorithm — Algorithm 1 of
// "HPCC: High Precision Congestion Control" (SIGCOMM 2019) — plus the
// ablation variants the paper evaluates: rxRate-based feedback (Fig. 6)
// and pure per-ACK / per-RTT reaction strategies (Fig. 13).
package hpcc

import (
	"math"

	"hpcc/internal/cc"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// Reaction selects how the sender combines per-ACK and per-RTT updates
// (§3.2 "Fast reaction without overreaction").
type Reaction int

const (
	// Combined is HPCC proper: react to every ACK, but derive the new
	// window from a reference window W^c that is only synced once per
	// RTT (when the ACK of the first packet sent under the current W^c
	// returns).
	Combined Reaction = iota
	// PerAck reacts to every ACK and immediately adopts the result as
	// the new reference — the overreacting strawman of Figure 13.
	PerAck
	// PerRTT reacts only once per RTT, ignoring the other ACKs — the
	// slow-reacting strawman of Figure 13.
	PerRTT
)

func (r Reaction) String() string {
	switch r {
	case PerAck:
		return "per-ACK"
	case PerRTT:
		return "per-RTT"
	default:
		return "combined"
	}
}

// Config carries HPCC's three tunables (§3.3) and the ablation switches.
type Config struct {
	// Eta is the target utilization η; default 0.95.
	Eta float64
	// MaxStage caps consecutive additive-increase rounds before a
	// multiplicative adjustment; default 5.
	MaxStage int
	// WAI is the additive-increase step in bytes. Zero selects the
	// paper's rule of thumb W_AI = W_init × (1−η) / N with N = 100
	// expected concurrent flows (§3.3, §5.1).
	WAI float64
	// UseRxRate replaces txRate with rxRate in all calculations — the
	// HPCC-rxRate strawman of §3.4 / Figure 6.
	UseRxRate bool
	// Reaction selects the reaction-combining strategy.
	Reaction Reaction
	// MinRate floors the pacing rate (hence the window at MinRate×T).
	// Zero selects LineRate/1000, mirroring the ns-3 reference setup.
	MinRate sim.Rate
}

func (c *Config) normalize(env *cc.Env) {
	if c.Eta == 0 {
		c.Eta = 0.95
	}
	if c.MaxStage == 0 {
		c.MaxStage = 5
	}
	if c.WAI == 0 {
		c.WAI = env.BDP() * (1 - c.Eta) / 100
	}
	if c.MinRate == 0 {
		c.MinRate = env.LineRate / 1000
	}
}

// HPCC is one flow's sender state (Algorithm 1).
type HPCC struct {
	cfg Config
	env cc.Env

	w    float64 // current window W
	wc   float64 // reference window W^c
	u    float64 // EWMA of normalized inflight bytes U
	rate float64 // pacing rate, bits/s

	incStage      int
	lastUpdateSeq int64

	// L is the link-feedback record from the previous ACK
	// (Algorithm 1's "sender's record of link feedbacks").
	l        [packet.MaxHops]packet.Hop
	nl       int
	pathID   uint16
	havePath bool

	winInit float64
	minWnd  float64

	snap *HPCC //hpcclint:nosnap speculative-execution checkpoint slot
}

// Checkpoint captures the algorithm's state for speculative execution
// (the sim.Checkpointable contract): HPCC's state is a flat value, so a
// struct copy into an internal slot captures it completely. The slot is
// allocated once and reused across checkpoints.
func (h *HPCC) Checkpoint() {
	s := h.snap
	if s == nil {
		s = new(HPCC)
	}
	*s = *h
	s.snap = nil
	h.snap = s
}

// Rollback restores the last Checkpoint in place.
func (h *HPCC) Rollback() {
	s := h.snap
	*h = *s
	h.snap = s
}

// New returns a factory producing HPCC instances with the given config.
func New(cfg Config) cc.Factory {
	return func() cc.Algorithm { return &HPCC{cfg: cfg} }
}

// Name implements cc.Algorithm.
func (h *HPCC) Name() string {
	switch {
	case h.cfg.UseRxRate:
		return "HPCC-rxRate"
	case h.cfg.Reaction == PerAck:
		return "HPCC-perACK"
	case h.cfg.Reaction == PerRTT:
		return "HPCC-perRTT"
	default:
		return "HPCC"
	}
}

// Init implements cc.Algorithm: W_init = B_NIC × T, start at line rate.
func (h *HPCC) Init(env cc.Env) {
	h.env = env
	h.cfg.normalize(&env)
	h.winInit = env.BDP()
	h.minWnd = h.cfg.MinRate.BytesPerSec() * env.BaseRTT.Seconds()
	h.w = h.winInit
	h.wc = h.winInit
	h.rate = float64(env.LineRate)
	h.lastUpdateSeq = 0
	h.u = 0
}

// Window returns W in bytes (exported for tests and tracing).
func (h *HPCC) Window() float64 { return h.w }

// WindowBytes implements cc.Algorithm.
func (h *HPCC) WindowBytes() float64 { return h.w }

// RateBps implements cc.Algorithm: R = W / T (§3.2).
func (h *HPCC) RateBps() float64 { return h.rate }

// Utilization returns the current EWMA estimate U (for tracing).
func (h *HPCC) Utilization() float64 { return h.u }

// PathID returns the last recorded path identifier; the sender rebuilds
// its link records whenever it changes (§4.1).
func (h *HPCC) PathID() uint16 { return h.pathID }

// OnCNP implements cc.Algorithm; HPCC does not use CNPs.
func (h *HPCC) OnCNP(sim.Time) {}

// OnAck implements cc.Algorithm — procedure NewAck of Algorithm 1.
func (h *HPCC) OnAck(ev *cc.AckEvent) {
	if len(ev.Hops) == 0 {
		return // no INT info (control-plane loss); nothing to react to
	}
	if !h.havePath || h.pathID != ev.PathID || h.nl != len(ev.Hops) {
		// First feedback on a (new) path: rebuild the records (§4.1),
		// react on the next ACK.
		h.resetPath(ev)
		return
	}
	if h.staleFeedback(ev) {
		// The 12-bit pathID can collide across an ECMP reroute (XOR of
		// switch IDs), leaving records from a different path in h.l. A
		// raw curr-prev subtraction would underflow to an absurd txRate
		// and slam the window to minWnd; treat the ACK as no-feedback
		// and rebuild the records instead.
		h.resetPath(ev)
		return
	}

	switch h.cfg.Reaction {
	case PerRTT:
		// Only adjust when an ACK covers the first packet sent after
		// the previous adjustment, and only record link feedback at
		// those points so the measurement window spans the full RTT.
		if ev.AckSeq <= h.lastUpdateSeq {
			return
		}
		u := h.measureInflight(ev)
		h.w = h.computeWind(u, true)
		h.lastUpdateSeq = ev.SndNxt
		h.rate = h.w / h.env.BaseRTT.Seconds() * 8
	case PerAck:
		// React fully to every ACK: the reference window always tracks
		// the latest result (Figure 13's overreaction).
		u := h.measureInflight(ev)
		h.w = h.computeWind(u, true)
		h.lastUpdateSeq = ev.SndNxt
		h.rate = h.w / h.env.BaseRTT.Seconds() * 8
	default:
		updateWc := ev.AckSeq > h.lastUpdateSeq
		u := h.measureInflight(ev)
		h.w = h.computeWind(u, updateWc)
		if updateWc {
			h.lastUpdateSeq = ev.SndNxt
		}
		h.rate = h.w / h.env.BaseRTT.Seconds() * 8
	}
	h.record(ev)
}

func (h *HPCC) resetPath(ev *cc.AckEvent) {
	h.record(ev)
	h.pathID = ev.PathID
	h.havePath = true
	h.u = 0
	h.incStage = 0
	// Anchor the per-RTT sync point at the current snd_nxt: every ACK
	// until a packet sent from now on is covered reacts against the
	// frozen reference window (Figure 5 — no overreaction during the
	// first round trip).
	h.lastUpdateSeq = ev.SndNxt
}

func (h *HPCC) record(ev *cc.AckEvent) {
	h.nl = copy(h.l[:], ev.Hops)
}

// staleFeedback reports whether the ACK's INT records are impossible
// successors of the stored ones: per-egress cumulative counters and
// timestamps never decrease on an unchanged path (ACKs ride the control
// class in FIFO order), so a regression means the stored records belong
// to a different path despite matching pathID/nHops.
func (h *HPCC) staleFeedback(ev *cc.AckEvent) bool {
	for i := range ev.Hops {
		if i >= h.nl || i >= packet.MaxHops {
			break
		}
		curr, prev := &ev.Hops[i], &h.l[i]
		if curr.TS < prev.TS || curr.TxBytes < prev.TxBytes || curr.RxBytes < prev.RxBytes {
			return true
		}
	}
	return false
}

// measureInflight is function MeasureInflight of Algorithm 1: estimate
// the normalized inflight bytes of the most loaded link and fold it
// into the parameterless EWMA U.
func (h *HPCC) measureInflight(ev *cc.AckEvent) float64 {
	t := h.env.BaseRTT.Seconds()
	u := 0.0
	var tau sim.Time
	for i := range ev.Hops {
		curr := &ev.Hops[i]
		prev := &h.l[i]
		dt := curr.TS - prev.TS
		var txRate float64 // bytes per second
		if dt > 0 {
			var db uint64
			if h.cfg.UseRxRate {
				db = curr.RxBytes - prev.RxBytes
			} else {
				db = curr.TxBytes - prev.TxBytes
			}
			txRate = float64(db) / dt.Seconds()
		}
		bBytes := curr.B.BytesPerSec()
		qlen := float64(min64(curr.QLen, prev.QLen))
		uLink := qlen/(bBytes*t) + txRate/bBytes
		if uLink > u {
			u = uLink
			tau = dt
		}
	}
	if tau > h.env.BaseRTT {
		tau = h.env.BaseRTT
	}
	if tau < 0 {
		tau = 0
	}
	frac := float64(tau) / float64(h.env.BaseRTT)
	h.u = (1-frac)*h.u + frac*u
	return h.u
}

// computeWind is function ComputeWind of Algorithm 1: multiplicative
// adjust when U ≥ η or after maxStage additive rounds, else additive
// increase; sync the reference window when updateWc is set.
func (h *HPCC) computeWind(u float64, updateWc bool) float64 {
	var w float64
	if u >= h.cfg.Eta || h.incStage >= h.cfg.MaxStage {
		k := u / h.cfg.Eta
		if k < 1e-9 {
			k = 1e-9
		}
		w = h.wc/k + h.cfg.WAI
		if updateWc {
			h.incStage = 0
			h.wc = clampW(w, h.minWnd, h.winInit)
		}
	} else {
		w = h.wc + h.cfg.WAI
		if updateWc {
			h.incStage++
			h.wc = clampW(w, h.minWnd, h.winInit)
		}
	}
	return clampW(w, h.minWnd, h.winInit)
}

func clampW(w, lo, hi float64) float64 {
	if math.IsNaN(w) {
		return lo
	}
	return cc.Clamp(w, lo, hi)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
