package hpcc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hpcc/internal/cc"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

const (
	lineRate = 100 * sim.Gbps
	baseRTT  = 10 * sim.Microsecond
	bdp      = 125_000.0 // 12.5 GB/s × 10 µs
)

func testEnv() cc.Env {
	now := sim.Time(0)
	return cc.Env{
		Now:      func() sim.Time { return now },
		Schedule: func(d sim.Time, fn func()) {},
		LineRate: lineRate,
		BaseRTT:  baseRTT,
		MTU:      1000,
	}
}

func newHPCC(cfg Config) *HPCC {
	h := New(cfg)().(*HPCC)
	h.Init(testEnv())
	return h
}

// ackWith builds a single-hop AckEvent. The hop's TS/TxBytes are the
// switch counters at stamping time; qlen is the egress queue depth.
func ackWith(ackSeq, sndNxt int64, ts sim.Time, txBytes uint64, qlen int64) *cc.AckEvent {
	return &cc.AckEvent{
		AckSeq: ackSeq,
		SndNxt: sndNxt,
		Hops: []packet.Hop{{
			B:       lineRate,
			TS:      ts,
			TxBytes: txBytes,
			RxBytes: txBytes,
			QLen:    qlen,
		}},
		PathID: 0x123,
	}
}

func TestInitState(t *testing.T) {
	h := newHPCC(Config{})
	if got := h.WindowBytes(); math.Abs(got-bdp) > 1 {
		t.Fatalf("W_init = %v, want %v (B_NIC × T)", got, bdp)
	}
	if got := h.RateBps(); got != float64(lineRate) {
		t.Fatalf("initial rate = %v, want line rate", got)
	}
	// Default WAI per §3.3 rule of thumb with N = 100.
	if got := h.cfg.WAI; math.Abs(got-bdp*0.05/100) > 0.01 {
		t.Fatalf("default WAI = %v, want %v", got, bdp*0.05/100)
	}
}

func TestFirstAckOnlyRecords(t *testing.T) {
	h := newHPCC(Config{})
	w0 := h.WindowBytes()
	h.OnAck(ackWith(1000, 125_000, sim.Microsecond, 1064, 0))
	if h.WindowBytes() != w0 {
		t.Fatal("window changed on the first (record-only) ACK")
	}
}

func TestFullyLoadedLinkMultiplicativeDecrease(t *testing.T) {
	h := newHPCC(Config{})
	// ACK 1 records the path. ACK 2 arrives one base RTT later having
	// observed txRate = B and a queue of one BDP: u = 1 + 1 = 2, and
	// with dt = T the EWMA adopts it fully.
	h.OnAck(ackWith(1000, 125_000, 0, 0, 125_000))
	h.OnAck(ackWith(2000, 126_000, baseRTT, 125_000, 125_000))
	// W = Wc/(U/η) + WAI = 125000×0.475 + 62.5
	want := bdp*0.95/2 + h.cfg.WAI
	if got := h.WindowBytes(); math.Abs(got-want) > 1 {
		t.Fatalf("W after MD = %v, want %v", got, want)
	}
	if got := h.Utilization(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("U = %v, want 2.0", got)
	}
	// Pacing rate follows W/T.
	wantRate := h.WindowBytes() / baseRTT.Seconds() * 8
	if got := h.RateBps(); math.Abs(got-wantRate) > 1 {
		t.Fatalf("rate = %v, want %v", got, wantRate)
	}
}

// The Figure-5 scenario: two ACKs within one RTT describing the same
// queue must not compound the decrease (the reference window is frozen
// between per-RTT syncs).
func TestNoOverreactionWithinRTT(t *testing.T) {
	h := newHPCC(Config{})
	// First ACK records the path and anchors lastUpdateSeq at its
	// SndNxt (1 MB), so everything below stays within "one RTT".
	h.OnAck(ackWith(1000, 1_000_000, 0, 0, 125_000))
	w0 := h.WindowBytes()

	// Two congested ACKs (u = qlen/BDP + txRate/B = 1 + 1 = 2).
	h.OnAck(ackWith(2000, 1_001_000, baseRTT, 125_000, 125_000))
	w1 := h.WindowBytes()
	h.OnAck(ackWith(3000, 1_002_000, 2*baseRTT, 250_000, 125_000))
	w2 := h.WindowBytes()

	if w1 >= w0 {
		t.Fatalf("no decrease on congestion: %v -> %v", w0, w1)
	}
	if math.Abs(w1-w2) > 1e-6 {
		t.Fatalf("window compounded within one RTT: W1=%v W2=%v", w1, w2)
	}
	// W = W_init/(U/η) + WAI with U = 2.
	want := bdp*0.95/2 + h.cfg.WAI
	if math.Abs(w1-want) > 1 {
		t.Fatalf("W1 = %v, want %v", w1, want)
	}
}

func TestPerAckVariantOverreacts(t *testing.T) {
	h := newHPCC(Config{Reaction: PerAck})
	h.OnAck(ackWith(1000, 1_000_000, 0, 0, 125_000))
	h.OnAck(ackWith(2000, 1_001_000, baseRTT, 125_000, 125_000))
	w1 := h.WindowBytes()
	h.OnAck(ackWith(3000, 1_002_000, 2*baseRTT, 250_000, 125_000))
	w2 := h.WindowBytes()
	if w2 >= w1 {
		t.Fatalf("per-ACK variant should compound decreases: W1=%v W2=%v", w1, w2)
	}
}

func TestPerRTTVariantIgnoresMidRTTAcks(t *testing.T) {
	h := newHPCC(Config{Reaction: PerRTT})
	h.OnAck(ackWith(1000, 1_000_000, 0, 0, 125_000))
	w1 := h.WindowBytes()
	// Mid-RTT congested ACKs: completely ignored.
	h.OnAck(ackWith(2000, 1_001_000, baseRTT, 125_000, 125_000))
	h.OnAck(ackWith(3000, 1_002_000, 2*baseRTT, 250_000, 125_000))
	if h.WindowBytes() != w1 {
		t.Fatalf("per-RTT variant reacted mid-RTT: %v -> %v", w1, h.WindowBytes())
	}
	// The ACK that finally covers lastUpdateSeq reacts.
	h.OnAck(ackWith(1_000_001, 1_500_000, 3*baseRTT, 375_000, 125_000))
	if h.WindowBytes() >= w1 {
		t.Fatal("per-RTT variant did not react at the RTT boundary")
	}
}

func TestAdditiveIncreaseThenMI(t *testing.T) {
	h := newHPCC(Config{})
	// Underutilized link: u = 0.5 every RTT (txRate = B/2, no queue).
	// First maxStage syncing ACKs do AI; the next one jumps
	// multiplicatively. Each ACK's seq exceeds the previous SndNxt so
	// every ACK is a per-RTT sync.
	h.OnAck(ackWith(1000, 2000, 0, 0, 0)) // records; lastUpdateSeq = 2000
	// Knock the window below W_init with one congested RTT (u = 2).
	h.OnAck(ackWith(3000, 3500, baseRTT, 125_000, 125_000))
	w := h.WindowBytes()
	if w >= bdp {
		t.Fatalf("setup: W = %v did not decrease", w)
	}
	wai := h.cfg.WAI
	tx := uint64(125_000)
	seq := int64(4000)
	for i := 0; i < 5; i++ {
		tx += 62_500
		h.OnAck(ackWith(seq, seq+500, sim.Time(i+2)*baseRTT, tx, 0))
		got := h.WindowBytes()
		if math.Abs(got-(w+wai)) > 1e-6 {
			t.Fatalf("AI stage %d: W = %v, want %v", i, got, w+wai)
		}
		w = got
		seq += 1000
	}
	// Stage 6: incStage == maxStage ⇒ multiplicative increase by η/U ≈
	// 1.9×, which here saturates at W_init — far more than one more AI
	// step would give.
	tx += 62_500
	h.OnAck(ackWith(seq, seq+500, 7*baseRTT, tx, 0))
	got := h.WindowBytes()
	if got <= w+wai+1e-6 {
		t.Fatalf("MI stage: W = %v, want a multiplicative jump above %v", got, w+wai)
	}
	if math.Abs(got-bdp) > 1 {
		t.Fatalf("MI stage: W = %v, want clamp at W_init %v", got, bdp)
	}
}

func TestWindowClampedToInit(t *testing.T) {
	h := newHPCC(Config{})
	h.OnAck(ackWith(1000, 2000, 0, 0, 0))
	// Nearly idle link for many RTTs: window must never exceed W_init.
	tx := uint64(0)
	for i := 1; i < 50; i++ {
		tx += 1000
		h.OnAck(ackWith(int64(1000+i*1000), int64(2000+i*1000), sim.Time(i)*baseRTT, tx, 0))
	}
	if got := h.WindowBytes(); got > bdp+1 {
		t.Fatalf("W = %v exceeded W_init %v", got, bdp)
	}
}

func TestPathChangeResets(t *testing.T) {
	h := newHPCC(Config{})
	h.OnAck(ackWith(1000, 2000, 0, 0, 125_000))
	h.OnAck(ackWith(2000, 3000, baseRTT, 125_000, 125_000))
	if h.Utilization() == 0 {
		t.Fatal("setup: U should be nonzero")
	}
	ev := ackWith(3000, 4000, 2*baseRTT, 250_000, 125_000)
	ev.PathID = 0x456 // route changed
	h.OnAck(ev)
	if h.Utilization() != 0 {
		t.Fatal("path change did not reset U")
	}
}

// Regression: an ECMP reroute whose 12-bit XOR pathID collides with the
// previous path (and has the same hop count) slips past the path-change
// check with counters from a different egress port. The raw uint64
// TxBytes delta then underflows to a huge txRate and slams the window to
// minWnd. Implausible feedback must instead be treated as no-feedback
// (record-and-rebuild, like a detected path change).
func TestPathIDCollisionDoesNotSlamWindow(t *testing.T) {
	h := newHPCC(Config{})
	// Establish a path whose egress counter is already large.
	h.OnAck(ackWith(1000, 125_000, 0, 10_000_000, 0))
	h.OnAck(ackWith(2000, 126_000, baseRTT, 10_125_000, 0))
	w := h.WindowBytes()
	if w < 0.5*bdp {
		t.Fatalf("setup: healthy window expected, got %v", w)
	}
	// Rerouted path, colliding pathID (0x123 again), same hop count —
	// but its egress port has transmitted far less: TxBytes regresses.
	ev := ackWith(3000, 127_000, baseRTT+sim.Microsecond, 50_000, 0)
	h.OnAck(ev)
	if got := h.WindowBytes(); got < 0.5*bdp {
		t.Fatalf("stale feedback slammed W to %v (minWnd %v); want it held near %v", got, h.minWnd, w)
	}
	if h.Utilization() != 0 {
		t.Fatal("stale feedback should reset U like a path change")
	}
	// The next consistent ACK on the new path reacts normally.
	h.OnAck(ackWith(4000, 128_000, 2*baseRTT+sim.Microsecond, 175_000, 0))
	if got := h.WindowBytes(); got < 0.5*bdp {
		t.Fatalf("post-rebuild reaction collapsed W to %v", got)
	}
}

func TestRxRateVariantUsesRxBytes(t *testing.T) {
	h := newHPCC(Config{UseRxRate: true})
	if h.Name() != "HPCC-rxRate" {
		t.Fatalf("Name = %q", h.Name())
	}
	// txBytes stalls but rxBytes races: the rxRate variant must see
	// overload even though tx deltas read zero.
	ev1 := ackWith(1000, 2000, 0, 0, 0)
	ev1.Hops[0].RxBytes = 0
	h.OnAck(ev1)
	ev2 := ackWith(2000, 3000, baseRTT, 0, 0)
	ev2.Hops[0].RxBytes = 250_000 // 2× line rate arrival
	h.OnAck(ev2)
	if got := h.Utilization(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("rxRate U = %v, want 2.0", got)
	}
}

func TestMinQlenFiltersTransient(t *testing.T) {
	h := newHPCC(Config{})
	// Algorithm 1 line 5: min of current and previous qlen filters a
	// one-sample spike. Previous qlen 0, current huge ⇒ queue term 0,
	// leaving only txRate/B = 0.5.
	h.OnAck(ackWith(1000, 2000, 0, 0, 0))
	h.OnAck(ackWith(2000, 3000, baseRTT, 62_500, 10_000_000))
	if got := h.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("U = %v, want 0.5 (spike filtered)", got)
	}
}

func TestEWMAWeightScalesWithGap(t *testing.T) {
	h := newHPCC(Config{})
	h.OnAck(ackWith(1000, 2000, 0, 0, 0))
	// A feedback gap of T/10 gets weight 0.1.
	h.OnAck(ackWith(2000, 3000, baseRTT/10, 125_000, 0))
	// u for this sample: txRate = 125000 B over 1 µs = 1.25e11 B/s = 10× line.
	// U = 0.9×0 + 0.1×10 = 1.0
	if got := h.Utilization(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("U = %v, want 1.0", got)
	}
}

func TestNoINTNoReaction(t *testing.T) {
	h := newHPCC(Config{})
	w0 := h.WindowBytes()
	h.OnAck(&cc.AckEvent{AckSeq: 1000, SndNxt: 2000})
	if h.WindowBytes() != w0 {
		t.Fatal("reacted to an ACK with no INT records")
	}
}

// Property: for arbitrary feedback sequences, the window stays within
// [minWnd, W_init] and never becomes NaN.
func TestWindowBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHPCC(Config{})
		ts := sim.Time(0)
		var tx uint64
		var ackSeq, sndNxt int64
		for i := 0; i < int(n); i++ {
			ts += sim.Time(rng.Int63n(int64(2 * baseRTT)))
			tx += uint64(rng.Int63n(300_000))
			ackSeq += int64(rng.Int63n(10_000) + 1)
			sndNxt = ackSeq + rng.Int63n(200_000)
			h.OnAck(ackWith(ackSeq, sndNxt, ts, tx, rng.Int63n(2_000_000)))
			w := h.WindowBytes()
			if math.IsNaN(w) || w < h.minWnd-1 || w > h.winInit+1 {
				return false
			}
			if math.IsNaN(h.RateBps()) || h.RateBps() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: U is always nonnegative and bounded by the largest
// per-sample u ever observed (EWMA is a convex combination).
func TestEWMABoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHPCC(Config{})
		h.OnAck(ackWith(1, 2, 0, 0, 0))
		ts := sim.Time(0)
		var tx uint64
		maxU := 0.0
		for i := 0; i < int(n); i++ {
			dt := sim.Time(rng.Int63n(int64(baseRTT)) + 1)
			ts += dt
			db := uint64(rng.Int63n(200_000))
			tx += db
			q := rng.Int63n(500_000)
			// Upper bound on this sample's u: q/BDP + rate/B.
			u := float64(q)/bdp + float64(db)/dt.Seconds()/lineRate.BytesPerSec()
			if u > maxU {
				maxU = u
			}
			h.OnAck(ackWith(int64(i+2)*1000, int64(i+3)*1000, ts, tx, q))
			if h.Utilization() < 0 || h.Utilization() > maxU+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantNames(t *testing.T) {
	if got := newHPCC(Config{}).Name(); got != "HPCC" {
		t.Errorf("Name = %q", got)
	}
	if got := newHPCC(Config{Reaction: PerAck}).Name(); got != "HPCC-perACK" {
		t.Errorf("Name = %q", got)
	}
	if got := newHPCC(Config{Reaction: PerRTT}).Name(); got != "HPCC-perRTT" {
		t.Errorf("Name = %q", got)
	}
	if Combined.String() != "combined" || PerAck.String() != "per-ACK" || PerRTT.String() != "per-RTT" {
		t.Error("Reaction.String mismatch")
	}
}
