package hpcc

// This file reproduces the §4.3 hardware optimization: FPGA division is
// expensive, so the NIC replaces W^c / k with W^c × (1/n) looked up
// from a table of reciprocals whose entries are geometrically spaced so
// that consecutive values differ by at least ε — bounding the relative
// error at ε while keeping the table small (the prototype covers
// 1 ≤ n ≤ 2²² in about 10 KB).

import "sort"

// DivLUT is the reciprocal lookup table.
type DivLUT struct {
	eps float64
	n   []float64 // ascending divisor knots
	inv []float64 // 1/n at each knot
}

// NewDivLUT builds a table covering divisors [1, maxN] with relative
// spacing eps (the prototype's table: NewDivLUT(1<<22, eps)).
func NewDivLUT(maxN float64, eps float64) *DivLUT {
	l := &DivLUT{eps: eps}
	for n := 1.0; n < maxN; n *= 1 + eps {
		l.n = append(l.n, n)
		l.inv = append(l.inv, 1/n)
	}
	l.n = append(l.n, maxN)
	l.inv = append(l.inv, 1/maxN)
	return l
}

// Entries returns the table size.
func (l *DivLUT) Entries() int { return len(l.n) }

// Recip returns the tabulated approximation of 1/n for n ≥ 1,
// saturating at the table edges.
func (l *DivLUT) Recip(n float64) float64 {
	if n <= l.n[0] {
		return l.inv[0]
	}
	if n >= l.n[len(l.n)-1] {
		return l.inv[len(l.inv)-1]
	}
	// Largest knot ≤ n (truncation, as the hardware table does).
	i := sort.SearchFloat64s(l.n, n)
	if i < len(l.n) && l.n[i] == n {
		return l.inv[i]
	}
	return l.inv[i-1]
}

// Div approximates w / n as w × Recip(n).
func (l *DivLUT) Div(w, n float64) float64 { return w * l.Recip(n) }
