package hpcc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDivLUTErrorBound(t *testing.T) {
	const eps = 0.01
	l := NewDivLUT(1<<22, eps)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		n := 1 + rng.Float64()*(1<<22-1)
		got := l.Recip(n)
		want := 1 / n
		rel := (want - got) / want
		// Truncation to the lower knot means the approximation is a
		// slight overestimate of 1/n, within the spacing.
		if rel > 1e-12 || rel < -eps-1e-9 {
			t.Fatalf("Recip(%v) = %v, want %v (rel err %v)", n, got, want, rel)
		}
	}
}

func TestDivLUTSizeMatchesPrototype(t *testing.T) {
	// The paper stores {1/n | 1 ≤ n ≤ 2²²} in ~10 KB. With 8-byte
	// entries that is ~1280 entries, i.e. ε ≈ 1.2%. Our ε = 1.2% table
	// should land in the same ballpark.
	l := NewDivLUT(1<<22, 0.012)
	if l.Entries() < 800 || l.Entries() > 2000 {
		t.Fatalf("entries = %d, want ≈ 1220 (10KB at 8B/entry)", l.Entries())
	}
}

func TestDivLUTExactAtKnots(t *testing.T) {
	l := NewDivLUT(1024, 0.5)
	for i, n := range l.n {
		if got := l.Recip(n); got != l.inv[i] {
			t.Fatalf("Recip at knot %v = %v, want %v", n, got, l.inv[i])
		}
	}
}

func TestDivLUTSaturates(t *testing.T) {
	l := NewDivLUT(100, 0.1)
	if l.Recip(0.5) != 1 {
		t.Error("below-range divisor should clamp to 1/1")
	}
	if l.Recip(1e9) != 1.0/100 {
		t.Error("above-range divisor should clamp to 1/max")
	}
}

// Property: window computation via the LUT stays within ε of the exact
// division for arbitrary windows and divisors.
func TestDivLUTWindowProperty(t *testing.T) {
	const eps = 0.02
	l := NewDivLUT(1<<20, eps)
	f := func(wRaw, nRaw uint32) bool {
		w := float64(wRaw%10_000_000) + 1
		n := 1 + float64(nRaw%(1<<20))
		exact := w / n
		approx := l.Div(w, n)
		rel := (approx - exact) / exact
		return rel >= -1e-9 && rel <= eps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFloatDivision(b *testing.B) {
	w, n := 125000.0, 1.7
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = w / n
		n += 1e-9
	}
	_ = sink
}

func BenchmarkDivLUT(b *testing.B) {
	l := NewDivLUT(1<<22, 0.012)
	w, n := 125000.0, 1.7
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = l.Div(w, n)
		n += 1e-9
	}
	_ = sink
}
