// Package timely implements TIMELY (Mittal et al., SIGCOMM 2015),
// RTT-gradient congestion control for the data center, as reproduced by
// the HPCC paper's evaluation. The "TIMELY+win" variant adds the
// HPCC-style inflight cap W = R × T (§5.1).
package timely

import (
	"hpcc/internal/cc"
	"hpcc/internal/sim"
)

// Config carries TIMELY's parameters with the values the TIMELY paper
// suggests (and the HPCC paper reuses, §5.1).
type Config struct {
	// EWMA is the weight of a new RTT-difference sample; default 0.875
	// (matching the ns-3 reproduction the paper's simulations use).
	EWMA float64
	// Beta is the multiplicative-decrease factor; default 0.8.
	Beta float64
	// TLow / THigh bound the gradient-based zone; below TLow TIMELY
	// always increases, above THigh it always decreases. Defaults 50 µs
	// and 500 µs.
	TLow, THigh sim.Time
	// AddStep is the additive increment δ; the TIMELY paper used
	// 10 Mbps at 10 Gbps line rate, so the default scales that ratio.
	AddStep sim.Rate
	// HAIAfter is how many consecutive non-positive gradients switch to
	// hyper-active increase (5 × δ); default 5.
	HAIAfter int
	// MinRate floors the rate; default LineRate/1000.
	MinRate sim.Rate
	// Window, when true, adds the inflight cap W = R × T ("TIMELY+win").
	Window bool
}

func (c *Config) normalize(env *cc.Env) {
	if c.EWMA == 0 {
		c.EWMA = 0.875
	}
	if c.Beta == 0 {
		c.Beta = 0.8
	}
	if c.TLow == 0 {
		c.TLow = 50 * sim.Microsecond
	}
	if c.THigh == 0 {
		c.THigh = 500 * sim.Microsecond
	}
	if c.AddStep == 0 {
		c.AddStep = sim.Rate(int64(10*sim.Mbps) * int64(env.LineRate) / int64(10*sim.Gbps))
	}
	if c.HAIAfter == 0 {
		c.HAIAfter = 5
	}
	if c.MinRate == 0 {
		c.MinRate = env.LineRate / 1000
	}
}

// Timely is one flow's sender state.
type Timely struct {
	cfg Config
	env cc.Env

	rate     float64 // bits per second
	prevRTT  sim.Time
	rttDiff  float64 // EWMA of RTT differences, picoseconds
	negCount int     // consecutive non-positive gradients

	snap *Timely //hpcclint:nosnap speculative-execution checkpoint slot
}

// Checkpoint captures the algorithm's state for speculative execution
// (the sim.Checkpointable contract): TIMELY's state is a flat value, so
// a struct copy into a reused internal slot captures it completely.
func (t *Timely) Checkpoint() {
	s := t.snap
	if s == nil {
		s = new(Timely)
	}
	*s = *t
	s.snap = nil
	t.snap = s
}

// Rollback restores the last Checkpoint in place.
func (t *Timely) Rollback() {
	s := t.snap
	*t = *s
	t.snap = s
}

// New returns a factory producing TIMELY instances.
func New(cfg Config) cc.Factory {
	return func() cc.Algorithm { return &Timely{cfg: cfg} }
}

// Name implements cc.Algorithm.
func (t *Timely) Name() string {
	if t.cfg.Window {
		return "TIMELY+win"
	}
	return "TIMELY"
}

// Init implements cc.Algorithm: flows start at line rate.
func (t *Timely) Init(env cc.Env) {
	t.env = env
	t.cfg.normalize(&env)
	t.rate = float64(env.LineRate)
}

// OnAck implements cc.Algorithm: TIMELY's per-completion update using
// the ACK's echoed-timestamp RTT sample.
func (t *Timely) OnAck(ev *cc.AckEvent) {
	rtt := ev.RTT
	if rtt <= 0 {
		return
	}
	if t.prevRTT == 0 {
		t.prevRTT = rtt
		return
	}
	newDiff := float64(rtt - t.prevRTT)
	t.prevRTT = rtt
	t.rttDiff = (1-t.cfg.EWMA)*t.rttDiff + t.cfg.EWMA*newDiff
	gradient := t.rttDiff / float64(t.env.BaseRTT)

	switch {
	case rtt < t.cfg.TLow:
		t.rate += float64(t.cfg.AddStep)
		t.negCount = 0
	case rtt > t.cfg.THigh:
		t.rate *= 1 - t.cfg.Beta*(1-float64(t.cfg.THigh)/float64(rtt))
		t.negCount = 0
	case gradient <= 0:
		t.negCount++
		n := 1.0
		if t.negCount >= t.cfg.HAIAfter {
			n = 5
		}
		t.rate += n * float64(t.cfg.AddStep)
	default:
		t.rate *= 1 - t.cfg.Beta*gradient
		t.negCount = 0
	}
	t.rate = cc.Clamp(t.rate, float64(t.cfg.MinRate), float64(t.env.LineRate))
}

// OnCNP implements cc.Algorithm; TIMELY ignores CNPs.
func (t *Timely) OnCNP(sim.Time) {}

// WindowBytes implements cc.Algorithm.
func (t *Timely) WindowBytes() float64 {
	if !t.cfg.Window {
		return cc.Unlimited()
	}
	w := t.rate / 8 * t.env.BaseRTT.Seconds()
	if w < float64(t.env.MTU) {
		w = float64(t.env.MTU)
	}
	return w
}

// RateBps implements cc.Algorithm.
func (t *Timely) RateBps() float64 { return t.rate }

// Gradient exposes the normalized RTT gradient for tests and tracing.
func (t *Timely) Gradient() float64 { return t.rttDiff / float64(t.env.BaseRTT) }
