package timely

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hpcc/internal/cc"
	"hpcc/internal/sim"
)

const line = 100 * sim.Gbps

func newTimely(cfg Config) *Timely {
	tl := New(cfg)().(*Timely)
	tl.Init(cc.Env{
		Now:      func() sim.Time { return 0 },
		Schedule: func(d sim.Time, fn func()) {},
		LineRate: line,
		BaseRTT:  10 * sim.Microsecond,
		MTU:      1000,
	})
	return tl
}

func ack(rtt sim.Time) *cc.AckEvent { return &cc.AckEvent{RTT: rtt, AckedBytes: 1000} }

func TestInitAtLineRate(t *testing.T) {
	tl := newTimely(Config{})
	if tl.RateBps() != float64(line) {
		t.Fatalf("initial rate = %v", tl.RateBps())
	}
	if !math.IsInf(tl.WindowBytes(), 1) {
		t.Fatal("classic TIMELY should have an unlimited window")
	}
}

func TestBelowTLowAdditiveIncrease(t *testing.T) {
	tl := newTimely(Config{})
	// Pull the rate down first so increases are visible.
	tl.OnAck(ack(100 * sim.Microsecond))
	tl.OnAck(ack(600 * sim.Microsecond)) // above THigh: MD
	r := tl.RateBps()
	tl.OnAck(ack(20 * sim.Microsecond)) // below TLow=50us
	want := r + float64(tl.cfg.AddStep)
	if math.Abs(tl.RateBps()-want) > 1 {
		t.Fatalf("rate = %v, want %v", tl.RateBps(), want)
	}
}

func TestAboveTHighMultiplicativeDecrease(t *testing.T) {
	tl := newTimely(Config{})
	tl.OnAck(ack(100 * sim.Microsecond)) // prime prevRTT
	r := tl.RateBps()
	rtt := 1000 * sim.Microsecond
	tl.OnAck(ack(rtt))
	want := r * (1 - 0.8*(1-float64(500*sim.Microsecond)/float64(rtt)))
	if math.Abs(tl.RateBps()-want) > 1 {
		t.Fatalf("rate = %v, want %v", tl.RateBps(), want)
	}
}

func TestPositiveGradientDecreases(t *testing.T) {
	tl := newTimely(Config{})
	tl.OnAck(ack(100 * sim.Microsecond))
	r := tl.RateBps()
	// Growing RTT within [TLow, THigh]: gradient positive → decrease.
	tl.OnAck(ack(110 * sim.Microsecond))
	tl.OnAck(ack(130 * sim.Microsecond))
	if tl.RateBps() >= r {
		t.Fatalf("rate did not decrease on rising RTT: %v -> %v", r, tl.RateBps())
	}
	if tl.Gradient() <= 0 {
		t.Fatalf("gradient = %v, want > 0", tl.Gradient())
	}
}

func TestNegativeGradientStreakHAI(t *testing.T) {
	tl := newTimely(Config{})
	// Crash the rate.
	tl.OnAck(ack(100 * sim.Microsecond))
	for i := 0; i < 5; i++ {
		tl.OnAck(ack(900 * sim.Microsecond))
	}
	r := tl.RateBps()
	// Falling RTTs within the gradient band: first increases are +δ,
	// after 5 consecutive non-positive gradients they jump to +5δ.
	rtts := []sim.Time{400, 350, 300, 260, 230, 210, 190, 180}
	var lastStep float64
	for _, us := range rtts {
		before := tl.RateBps()
		tl.OnAck(ack(us * sim.Microsecond))
		lastStep = tl.RateBps() - before
	}
	if lastStep < 4.9*float64(tl.cfg.AddStep) {
		t.Fatalf("HAI step = %v, want ≈ 5×%v", lastStep, float64(tl.cfg.AddStep))
	}
	if tl.RateBps() <= r {
		t.Fatal("rate did not recover on falling RTT")
	}
}

func TestWindowVariant(t *testing.T) {
	tl := newTimely(Config{Window: true})
	if tl.Name() != "TIMELY+win" {
		t.Fatalf("Name = %q", tl.Name())
	}
	// W = R × T = 12.5 GB/s × 10 µs = 125000.
	if got := tl.WindowBytes(); math.Abs(got-125000) > 1 {
		t.Fatalf("window = %v", got)
	}
}

func TestIgnoresZeroRTT(t *testing.T) {
	tl := newTimely(Config{})
	r := tl.RateBps()
	tl.OnAck(&cc.AckEvent{RTT: 0})
	if tl.RateBps() != r {
		t.Fatal("reacted to a zero RTT sample")
	}
}

// Property: rate stays within [MinRate, LineRate] for any RTT sequence.
func TestRateBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := newTimely(Config{})
		for i := 0; i < int(n); i++ {
			rtt := sim.Time(rng.Int63n(int64(2*sim.Millisecond)) + int64(sim.Microsecond))
			tl.OnAck(ack(rtt))
			r := tl.RateBps()
			if math.IsNaN(r) || r < float64(line)/1000-1 || r > float64(line)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
