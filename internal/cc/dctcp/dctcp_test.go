package dctcp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hpcc/internal/cc"
	"hpcc/internal/sim"
)

const (
	line = 100 * sim.Gbps
	bdp  = 125_000.0
)

func newDCTCP(cfg Config) *DCTCP {
	d := New(cfg)().(*DCTCP)
	d.Init(cc.Env{
		Now:      func() sim.Time { return 0 },
		Schedule: func(d sim.Time, fn func()) {},
		LineRate: line,
		BaseRTT:  10 * sim.Microsecond,
		MTU:      1000,
	})
	return d
}

func TestNoSlowStart(t *testing.T) {
	d := newDCTCP(Config{})
	if got := d.WindowBytes(); math.Abs(got-bdp) > 1 {
		t.Fatalf("initial window = %v, want one BDP (%v) — slow start removed per §5.1", got, bdp)
	}
}

func TestCleanRTTAddsOneMSS(t *testing.T) {
	d := newDCTCP(Config{})
	w := d.WindowBytes()
	// First ACK closes the trivial window [0,0) and opens a real one.
	d.OnAck(&cc.AckEvent{AckSeq: 1000, SndNxt: 125_000, AckedBytes: 1000})
	w1 := d.WindowBytes()
	if math.Abs(w1-(w+1000)) > 1 {
		t.Fatalf("window after clean RTT = %v, want %v", w1, w+1000)
	}
	// Mid-window ACKs don't change W.
	d.OnAck(&cc.AckEvent{AckSeq: 50_000, SndNxt: 150_000, AckedBytes: 49_000})
	if d.WindowBytes() != w1 {
		t.Fatal("window changed mid-observation-window")
	}
}

func TestFullyMarkedWindowConvergesToHalving(t *testing.T) {
	d := newDCTCP(Config{})
	seq := int64(0)
	// Every byte marked for many RTTs: α → 1.
	for i := 0; i < 200; i++ {
		seq += 125_000
		d.OnAck(&cc.AckEvent{AckSeq: seq, SndNxt: seq + 125_000, AckedBytes: 125_000, ECE: true})
	}
	if d.Alpha() < 0.99 {
		t.Fatalf("alpha = %v, want → 1 under persistent marking", d.Alpha())
	}
	// With α ≈ 1 the per-RTT cut is one half (classic TCP behaviour).
	d.w = bdp
	before := d.WindowBytes()
	seq += 125_000
	d.OnAck(&cc.AckEvent{AckSeq: seq, SndNxt: seq + 125_000, AckedBytes: 125_000, ECE: true})
	ratio := d.WindowBytes() / before
	if math.Abs(ratio-0.5) > 0.01 {
		t.Fatalf("cut ratio = %v, want ≈ 0.5", ratio)
	}
}

func TestAlphaEWMA(t *testing.T) {
	d := newDCTCP(Config{G: 1.0 / 16})
	// Prime: the first ACK closes the trivial [0,0) window and opens a
	// real observation window ending at 125 000.
	d.OnAck(&cc.AckEvent{AckSeq: 1000, SndNxt: 125_000, AckedBytes: 1000})
	// Half of the window's 124 000 bytes marked: α = (1-g)·0 + g·0.5.
	d.OnAck(&cc.AckEvent{AckSeq: 63_000, SndNxt: 150_000, AckedBytes: 62_000})
	d.OnAck(&cc.AckEvent{AckSeq: 125_000, SndNxt: 187_500, AckedBytes: 62_000, ECE: true})
	want := 0.5 / 16
	if math.Abs(d.Alpha()-want) > 1e-9 {
		t.Fatalf("alpha = %v, want %v", d.Alpha(), want)
	}
}

func TestWindowFloor(t *testing.T) {
	d := newDCTCP(Config{})
	seq := int64(0)
	for i := 0; i < 500; i++ {
		seq += 10_000
		d.OnAck(&cc.AckEvent{AckSeq: seq, SndNxt: seq + 10_000, AckedBytes: 10_000, ECE: true})
	}
	if d.WindowBytes() < 1000 {
		t.Fatalf("window fell below one MTU: %v", d.WindowBytes())
	}
}

func TestRateFollowsWindow(t *testing.T) {
	d := newDCTCP(Config{})
	wantRate := d.WindowBytes() / (10 * sim.Microsecond).Seconds() * 8
	if math.Abs(d.RateBps()-wantRate) > 1 {
		t.Fatalf("rate = %v, want W/T = %v", d.RateBps(), wantRate)
	}
}

// Property: window within [MTU, MaxWindowBDP×BDP] and α within [0,1]
// for arbitrary ACK streams.
func TestBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := newDCTCP(Config{})
		seq := int64(0)
		for i := 0; i < int(n); i++ {
			adv := rng.Int63n(200_000) + 1
			seq += adv
			d.OnAck(&cc.AckEvent{
				AckSeq:     seq,
				SndNxt:     seq + rng.Int63n(200_000),
				AckedBytes: adv,
				ECE:        rng.Intn(2) == 0,
			})
			w := d.WindowBytes()
			if math.IsNaN(w) || w < 999 || w > 8*bdp+1 {
				return false
			}
			if a := d.Alpha(); a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
