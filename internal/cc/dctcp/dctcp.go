// Package dctcp implements DCTCP (Alizadeh et al., SIGCOMM 2010) as the
// HPCC paper evaluates it: a window-based scheme whose window shrinks in
// proportion to the EWMA fraction α of ECN-marked bytes, with the slow-
// start phase removed for fairness of comparison (§5.1) — flows start at
// a full bandwidth-delay-product window like the RDMA schemes.
package dctcp

import (
	"hpcc/internal/cc"
	"hpcc/internal/sim"
)

// Config carries DCTCP's parameters.
type Config struct {
	// G is the α EWMA gain; the DCTCP paper recommends 1/16.
	G float64
	// MaxWindowBDP caps the window at this many bandwidth-delay
	// products (queues are bounded by switch buffers, not the window);
	// default 8.
	MaxWindowBDP float64
}

func (c *Config) normalize() {
	if c.G == 0 {
		c.G = 1.0 / 16
	}
	if c.MaxWindowBDP == 0 {
		c.MaxWindowBDP = 8
	}
}

// DCTCP is one flow's sender state.
type DCTCP struct {
	cfg Config
	env cc.Env

	w     float64 // window, bytes
	alpha float64

	windowEnd   int64 // seq marking the end of the current observation window
	ackedBytes  int64
	markedBytes int64

	snap *DCTCP //hpcclint:nosnap speculative-execution checkpoint slot
}

// Checkpoint captures the algorithm's state for speculative execution
// (the sim.Checkpointable contract): DCTCP's state is a flat value, so
// a struct copy into a reused internal slot captures it completely.
func (d *DCTCP) Checkpoint() {
	s := d.snap
	if s == nil {
		s = new(DCTCP)
	}
	*s = *d
	s.snap = nil
	d.snap = s
}

// Rollback restores the last Checkpoint in place.
func (d *DCTCP) Rollback() {
	s := d.snap
	*d = *s
	d.snap = s
}

// New returns a factory producing DCTCP instances.
func New(cfg Config) cc.Factory {
	return func() cc.Algorithm { return &DCTCP{cfg: cfg} }
}

// Name implements cc.Algorithm.
func (d *DCTCP) Name() string { return "DCTCP" }

// Init implements cc.Algorithm: no slow start, W starts at one BDP.
func (d *DCTCP) Init(env cc.Env) {
	d.env = env
	d.cfg.normalize()
	d.w = env.BDP()
	d.alpha = 0
}

// OnAck implements cc.Algorithm: accumulate marked/acked bytes; once
// per RTT (when the cumulative ACK passes the window marker) update α
// and apply the DCTCP control law.
func (d *DCTCP) OnAck(ev *cc.AckEvent) {
	d.ackedBytes += ev.AckedBytes
	if ev.ECE {
		d.markedBytes += ev.AckedBytes
	}
	if ev.AckSeq < d.windowEnd {
		return
	}
	// One observation window has elapsed.
	if d.ackedBytes > 0 {
		f := float64(d.markedBytes) / float64(d.ackedBytes)
		d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*f
		if d.markedBytes > 0 {
			d.w = d.w * (1 - d.alpha/2)
		} else {
			d.w += float64(d.env.MTU) // one MSS per RTT
		}
	}
	d.ackedBytes = 0
	d.markedBytes = 0
	d.windowEnd = ev.SndNxt
	d.w = cc.Clamp(d.w, float64(d.env.MTU), d.cfg.MaxWindowBDP*d.env.BDP())
}

// OnCNP implements cc.Algorithm; DCTCP uses ECN echoes, not CNPs.
func (d *DCTCP) OnCNP(sim.Time) {}

// WindowBytes implements cc.Algorithm.
func (d *DCTCP) WindowBytes() float64 { return d.w }

// RateBps implements cc.Algorithm: pace at W/T like the other
// window-based schemes (the host port caps at line rate regardless).
func (d *DCTCP) RateBps() float64 {
	return d.w / d.env.BaseRTT.Seconds() * 8
}

// Alpha exposes α for tests and tracing.
func (d *DCTCP) Alpha() float64 { return d.alpha }
