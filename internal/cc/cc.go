// Package cc defines the congestion-control contract between the NIC
// (internal/host) and the algorithms (internal/cc/hpcc, dcqcn, timely,
// dctcp).
//
// An Algorithm owns two knobs the NIC enforces on every flow, exactly as
// §3.2 of the HPCC paper prescribes: a sending window (a cap on inflight
// bytes) and a pacing rate. Rate-only schemes report an unbounded window;
// window-only schemes derive the rate as W/T.
package cc

import (
	"math"

	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// Env is the runtime a flow's algorithm instance receives at Init.
// Schedule lets timer-driven schemes (DCQCN) arm their own clocks; the
// host re-reads Window/Rate after every scheduled callback.
type Env struct {
	Now      func() sim.Time
	Schedule func(d sim.Time, fn func())
	LineRate sim.Rate // NIC port speed (B_NIC)
	BaseRTT  sim.Time // the network-wide base RTT T (§3.2)
	MTU      int      // data payload bytes per packet
	Seed     int64    // per-flow deterministic randomness
}

// BDP returns the bandwidth-delay product B_NIC × T in bytes — the
// paper's initial window W_init.
func (e *Env) BDP() float64 {
	return e.LineRate.BytesPerSec() * e.BaseRTT.Seconds()
}

// AckEvent carries everything an ACK tells the sender.
type AckEvent struct {
	Now        sim.Time
	RTT        sim.Time // measured by timestamp echo
	AckSeq     int64    // cumulative: next byte expected by the receiver
	SndNxt     int64    // sender's snd_nxt when the ACK was processed
	AckedBytes int64    // new bytes acknowledged by this ACK
	ECE        bool     // ECN echo
	Hops       []packet.Hop
	PathID     uint16
}

// Algorithm is one flow's congestion-control state machine. Instances
// are per-flow and never shared across goroutines (the simulator is
// single-threaded).
type Algorithm interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Init binds the algorithm to its flow's environment. Called once
	// before any traffic.
	Init(env Env)
	// OnAck processes one acknowledgment.
	OnAck(ev *AckEvent)
	// OnCNP processes a congestion-notification packet (DCQCN; no-op
	// for the others).
	OnCNP(now sim.Time)
	// WindowBytes is the current inflight-byte cap. +Inf means the
	// scheme does not limit inflight data.
	WindowBytes() float64
	// RateBps is the current pacing rate in bits per second.
	RateBps() float64
}

// Factory builds a fresh algorithm instance for a new flow.
type Factory func() Algorithm

// Unlimited is the WindowBytes value of rate-only schemes.
func Unlimited() float64 { return math.Inf(1) }

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
