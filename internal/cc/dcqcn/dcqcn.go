// Package dcqcn implements the DCQCN congestion-control algorithm (Zhu
// et al., SIGCOMM 2015) as deployed on RoCEv2 NICs: ECN-marked packets
// trigger CNPs from the receiver; the sender maintains a rate pair
// (current Rc, target Rt) with an α-weighted multiplicative decrease and
// a three-phase increase (fast recovery → additive → hyper) driven by a
// timer and a byte counter.
//
// The paper's Figure 2 sweeps the rate-increase timer Ti and the
// rate-decrease minimum gap Td; both are exposed in Config. The
// "DCQCN+win" variant of §5.1 adds an HPCC-style sending window bound to
// the current rate (W = Rc × T).
package dcqcn

import (
	"hpcc/internal/cc"
	"hpcc/internal/sim"
)

// Config holds DCQCN's knobs (the paper counts 15 in production; the
// ones that matter for the evaluation are here, with vendor defaults).
type Config struct {
	// G is the α EWMA gain; default 1/256.
	G float64
	// AlphaTimer is the α-decay period when no CNP arrives; default 55 µs.
	AlphaTimer sim.Time
	// RateIncTimer is Ti, the period of rate-increase events; default
	// 300 µs (the vendor default in Figure 2).
	RateIncTimer sim.Time
	// MinDecGap is Td, the minimum gap between two rate decreases;
	// default 4 µs (vendor default in Figure 2).
	MinDecGap sim.Time
	// FastRecoveryTh is F, the number of increase stages spent in fast
	// recovery; default 5.
	FastRecoveryTh int
	// RateAI / RateHAI are the additive and hyper increase steps;
	// defaults scale the DCQCN paper's 40 Mbps (at 25G) to the line
	// rate, with HAI = 10 × AI.
	RateAI, RateHAI sim.Rate
	// ByteCounter advances the increase stages every this many sent
	// bytes (10 MB default); 0 disables the byte counter.
	ByteCounter int64
	// MinRate floors Rc; default LineRate/1000.
	MinRate sim.Rate
	// Window, when true, adds the HPCC-style inflight cap W = Rc × T
	// ("DCQCN+win", §5.1).
	Window bool
}

func (c *Config) normalize(env *cc.Env) {
	if c.G == 0 {
		c.G = 1.0 / 256
	}
	if c.AlphaTimer == 0 {
		c.AlphaTimer = 55 * sim.Microsecond
	}
	if c.RateIncTimer == 0 {
		c.RateIncTimer = 300 * sim.Microsecond
	}
	if c.MinDecGap == 0 {
		c.MinDecGap = 4 * sim.Microsecond
	}
	if c.FastRecoveryTh == 0 {
		c.FastRecoveryTh = 5
	}
	if c.RateAI == 0 {
		c.RateAI = sim.Rate(int64(40*sim.Mbps) * int64(env.LineRate) / int64(25*sim.Gbps))
	}
	if c.RateHAI == 0 {
		c.RateHAI = 10 * c.RateAI
	}
	if c.ByteCounter == 0 {
		c.ByteCounter = 10 << 20
	}
	if c.MinRate == 0 {
		c.MinRate = env.LineRate / 1000
	}
}

// DCQCN is one flow's sender state.
type DCQCN struct {
	cfg Config
	env cc.Env

	rc, rt       float64 // current / target rate, bits per second
	alpha        float64
	cnpSeen      bool // CNP since the last alpha timer tick
	lastDecrease sim.Time
	timeStage    int
	byteStage    int
	bytesSince   int64

	snap *DCQCN //hpcclint:nosnap speculative-execution checkpoint slot
}

// Checkpoint captures the algorithm's state for speculative execution
// (the sim.Checkpointable contract): DCQCN's state is a flat value, so
// a struct copy into a reused internal slot captures it completely. The
// alpha/rate timer events live in the engine and are checkpointed
// there.
func (d *DCQCN) Checkpoint() {
	s := d.snap
	if s == nil {
		s = new(DCQCN)
	}
	*s = *d
	s.snap = nil
	d.snap = s
}

// Rollback restores the last Checkpoint in place.
func (d *DCQCN) Rollback() {
	s := d.snap
	*d = *s
	d.snap = s
}

// New returns a factory producing DCQCN instances.
func New(cfg Config) cc.Factory {
	return func() cc.Algorithm { return &DCQCN{cfg: cfg} }
}

// Name implements cc.Algorithm.
func (d *DCQCN) Name() string {
	if d.cfg.Window {
		return "DCQCN+win"
	}
	return "DCQCN"
}

// Init implements cc.Algorithm: start at line rate (§2.2 "RDMA hosts
// start sending at line rate") and arm the two timers.
func (d *DCQCN) Init(env cc.Env) {
	d.env = env
	d.cfg.normalize(&env)
	d.rc = float64(env.LineRate)
	d.rt = d.rc
	d.alpha = 1
	d.lastDecrease = -d.cfg.MinDecGap
	env.Schedule(d.cfg.AlphaTimer, d.alphaTick)
	env.Schedule(d.cfg.RateIncTimer, d.rateTick)
}

func (d *DCQCN) alphaTick() {
	if !d.cnpSeen {
		d.alpha *= 1 - d.cfg.G
	}
	d.cnpSeen = false
	d.env.Schedule(d.cfg.AlphaTimer, d.alphaTick)
}

func (d *DCQCN) rateTick() {
	d.timeStage++
	d.increase()
	d.env.Schedule(d.cfg.RateIncTimer, d.rateTick)
}

// increase applies one rate-increase event: fast recovery while both
// stage counters are below F, hyper increase when both exceeded it,
// additive increase otherwise.
func (d *DCQCN) increase() {
	f := d.cfg.FastRecoveryTh
	switch {
	case d.timeStage <= f && d.byteStage <= f:
		// Fast recovery: close half the gap to the target.
	case d.timeStage > f && d.byteStage > f:
		d.rt += float64(d.cfg.RateHAI)
	default:
		d.rt += float64(d.cfg.RateAI)
	}
	if d.rt > float64(d.env.LineRate) {
		d.rt = float64(d.env.LineRate)
	}
	d.rc = (d.rc + d.rt) / 2
	d.clamp()
}

// OnAck implements cc.Algorithm: only the byte counter consumes ACKs.
func (d *DCQCN) OnAck(ev *cc.AckEvent) {
	if ev.ECE {
		// ECN echo without a separate CNP packet: some deployments
		// fold CNP into ACKs; the host delivers explicit CNPs via
		// OnCNP, so nothing to do here.
		_ = ev
	}
	d.bytesSince += ev.AckedBytes
	if d.cfg.ByteCounter > 0 && d.bytesSince >= d.cfg.ByteCounter {
		d.bytesSince = 0
		d.byteStage++
		d.increase()
	}
}

// OnCNP implements cc.Algorithm: the multiplicative decrease, rate-
// limited to one cut per MinDecGap (Td).
func (d *DCQCN) OnCNP(now sim.Time) {
	d.cnpSeen = true
	if now-d.lastDecrease < d.cfg.MinDecGap {
		return
	}
	d.lastDecrease = now
	d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G
	d.rt = d.rc
	d.rc = d.rc * (1 - d.alpha/2)
	d.timeStage = 0
	d.byteStage = 0
	d.bytesSince = 0
	d.clamp()
}

func (d *DCQCN) clamp() {
	d.rc = cc.Clamp(d.rc, float64(d.cfg.MinRate), float64(d.env.LineRate))
}

// WindowBytes implements cc.Algorithm: unbounded for classic DCQCN,
// Rc × T for the +win variant.
func (d *DCQCN) WindowBytes() float64 {
	if !d.cfg.Window {
		return cc.Unlimited()
	}
	w := d.rc / 8 * d.env.BaseRTT.Seconds()
	if w < float64(d.env.MTU) {
		w = float64(d.env.MTU)
	}
	return w
}

// RateBps implements cc.Algorithm.
func (d *DCQCN) RateBps() float64 { return d.rc }

// Alpha exposes α for tests and tracing.
func (d *DCQCN) Alpha() float64 { return d.alpha }

// TargetRate exposes Rt for tests and tracing.
func (d *DCQCN) TargetRate() float64 { return d.rt }
