package dcqcn

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hpcc/internal/cc"
	"hpcc/internal/sim"
)

// timerHarness drives an Algorithm's self-scheduled timers on a tiny
// standalone event loop, so unit tests can advance virtual time.
type timerHarness struct {
	now sim.Time
	q   timerHeap
	seq int
}

type timerItem struct {
	at  sim.Time
	seq int
	fn  func()
}

type timerHeap []timerItem

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(timerItem)) }
func (h *timerHeap) Pop() (out any)    { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (th *timerHarness) Now() sim.Time { return th.now }

func (th *timerHarness) Schedule(d sim.Time, fn func()) {
	heap.Push(&th.q, timerItem{th.now + d, th.seq, fn})
	th.seq++
}

func (th *timerHarness) AdvanceTo(t sim.Time) {
	for len(th.q) > 0 && th.q[0].at <= t {
		it := heap.Pop(&th.q).(timerItem)
		th.now = it.at
		it.fn()
	}
	th.now = t
}

func (th *timerHarness) env(line sim.Rate, rtt sim.Time) cc.Env {
	return cc.Env{
		Now:      th.Now,
		Schedule: th.Schedule,
		LineRate: line,
		BaseRTT:  rtt,
		MTU:      1000,
	}
}

const line = 25 * sim.Gbps

func newDCQCN(th *timerHarness, cfg Config) *DCQCN {
	d := New(cfg)().(*DCQCN)
	d.Init(th.env(line, 10*sim.Microsecond))
	return d
}

func TestInitAtLineRate(t *testing.T) {
	th := &timerHarness{}
	d := newDCQCN(th, Config{})
	if d.RateBps() != float64(line) {
		t.Fatalf("initial rate = %v, want line", d.RateBps())
	}
	if !math.IsInf(d.WindowBytes(), 1) {
		t.Fatal("classic DCQCN should have an unlimited window")
	}
	if d.Name() != "DCQCN" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestCNPCutsRate(t *testing.T) {
	th := &timerHarness{}
	d := newDCQCN(th, Config{})
	r0 := d.RateBps()
	d.OnCNP(th.Now())
	// α starts at 1, updated to (1-g)+g = 1, cut = 1 - α/2 = 0.5.
	if got := d.RateBps(); math.Abs(got-r0/2) > 1 {
		t.Fatalf("rate after first CNP = %v, want %v", got, r0/2)
	}
	if d.TargetRate() != r0 {
		t.Fatalf("target = %v, want previous rate %v", d.TargetRate(), r0)
	}
}

func TestDecreaseGapTd(t *testing.T) {
	th := &timerHarness{}
	d := newDCQCN(th, Config{MinDecGap: 50 * sim.Microsecond})
	d.OnCNP(th.Now())
	r1 := d.RateBps()
	th.AdvanceTo(10 * sim.Microsecond)
	d.OnCNP(th.Now()) // within Td: suppressed
	if d.RateBps() != r1 {
		t.Fatal("second CNP within Td cut the rate again")
	}
	th.AdvanceTo(70 * sim.Microsecond)
	d.OnCNP(th.Now()) // beyond Td: cuts
	if d.RateBps() >= r1 {
		t.Fatal("CNP after Td did not cut the rate")
	}
}

func TestFastRecoveryApproachesTarget(t *testing.T) {
	th := &timerHarness{}
	cfg := Config{RateIncTimer: 100 * sim.Microsecond, ByteCounter: -1}
	d := newDCQCN(th, cfg)
	d.OnCNP(th.Now())
	rt := d.TargetRate()
	// Five fast-recovery ticks halve the gap each time: Rc -> Rt - gap/2^5.
	th.AdvanceTo(5*100*sim.Microsecond + sim.Microsecond)
	gap := rt - d.RateBps()
	wantGap := (rt - rt/2) / 32
	if math.Abs(gap-wantGap) > 1 {
		t.Fatalf("gap after 5 FR ticks = %v, want %v", gap, wantGap)
	}
}

func TestAdditiveThenHyperIncrease(t *testing.T) {
	th := &timerHarness{}
	cfg := Config{RateIncTimer: 100 * sim.Microsecond, ByteCounter: -1}
	d := newDCQCN(th, cfg)
	d.OnCNP(th.Now())
	// After F=5 timer ticks, timeStage exceeds F: additive increase
	// raises Rt by RateAI each tick. Byte counter disabled, so HAI
	// (needs both counters past F) never triggers.
	th.AdvanceTo(20*100*sim.Microsecond + sim.Microsecond)
	if d.TargetRate() <= d.RateBps()/2 {
		t.Fatal("target rate did not grow under AI")
	}
	rtBefore := d.TargetRate()
	th.AdvanceTo(21*100*sim.Microsecond + sim.Microsecond)
	wantAI := float64(sim.Rate(int64(40*sim.Mbps) * int64(line) / int64(25*sim.Gbps)))
	if got := d.TargetRate() - rtBefore; math.Abs(got-wantAI) > 1 && d.TargetRate() < float64(line) {
		t.Fatalf("AI step = %v, want %v", got, wantAI)
	}
}

func TestByteCounterTriggersIncrease(t *testing.T) {
	th := &timerHarness{}
	cfg := Config{RateIncTimer: sim.Second, ByteCounter: 100_000}
	d := newDCQCN(th, cfg)
	d.OnCNP(th.Now())
	r1 := d.RateBps()
	// 100 KB of ACKed bytes: one byte-counter increase event (fast
	// recovery: halve the gap to target).
	d.OnAck(&cc.AckEvent{AckedBytes: 100_000})
	if d.RateBps() <= r1 {
		t.Fatal("byte counter did not trigger an increase")
	}
}

func TestHyperIncreaseWhenBothExceed(t *testing.T) {
	th := &timerHarness{}
	cfg := Config{RateIncTimer: 100 * sim.Microsecond, ByteCounter: 10_000, RateAI: 40 * sim.Mbps, RateHAI: 400 * sim.Mbps}
	d := newDCQCN(th, cfg)
	// Two spaced CNPs pull the target rate well below line rate so the
	// increase steps are observable (Rt saturates at line otherwise).
	d.OnCNP(th.Now())
	th.AdvanceTo(10 * sim.Microsecond)
	d.OnCNP(th.Now())
	// Drive the byte counter past F.
	for i := 0; i < 6; i++ {
		d.OnAck(&cc.AckEvent{AckedBytes: 10_000})
	}
	// And the timer counter past F.
	th.AdvanceTo(th.Now() + 6*100*sim.Microsecond + sim.Microsecond)
	rtBefore := d.TargetRate()
	d.OnAck(&cc.AckEvent{AckedBytes: 10_000}) // both counters > F: HAI
	got := d.TargetRate() - rtBefore
	if math.Abs(got-float64(400*sim.Mbps)) > 1 {
		t.Fatalf("HAI step = %v, want %v", got, float64(400*sim.Mbps))
	}
}

func TestAlphaDecaysWithoutCNP(t *testing.T) {
	th := &timerHarness{}
	d := newDCQCN(th, Config{AlphaTimer: 55 * sim.Microsecond})
	d.OnCNP(th.Now())
	a0 := d.Alpha()
	th.AdvanceTo(10 * 55 * sim.Microsecond)
	if d.Alpha() >= a0 {
		t.Fatalf("alpha did not decay: %v -> %v", a0, d.Alpha())
	}
	want := a0 * math.Pow(1-1.0/256, 9) // first tick sees cnpSeen=true
	if math.Abs(d.Alpha()-want)/want > 0.02 {
		t.Fatalf("alpha = %v, want ≈ %v", d.Alpha(), want)
	}
}

func TestWindowVariant(t *testing.T) {
	th := &timerHarness{}
	d := newDCQCN(th, Config{Window: true})
	if d.Name() != "DCQCN+win" {
		t.Fatalf("Name = %q", d.Name())
	}
	// W = Rc × T = 25G/8 × 10µs = 31250 bytes.
	if got := d.WindowBytes(); math.Abs(got-31250) > 1 {
		t.Fatalf("window = %v, want 31250", got)
	}
	d.OnCNP(th.Now())
	if got := d.WindowBytes(); math.Abs(got-31250/2) > 1 {
		t.Fatalf("window after cut = %v, want %v", got, 31250.0/2)
	}
}

// Property: the rate always stays within [MinRate, LineRate] under any
// interleaving of CNPs, ACKs and timer advances.
func TestRateBoundsProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		th := &timerHarness{}
		d := newDCQCN(th, Config{})
		for i := 0; i < int(steps); i++ {
			switch rng.Intn(3) {
			case 0:
				d.OnCNP(th.Now())
			case 1:
				d.OnAck(&cc.AckEvent{AckedBytes: rng.Int63n(1 << 22)})
			case 2:
				th.AdvanceTo(th.Now() + sim.Time(rng.Int63n(int64(sim.Millisecond))))
			}
			r := d.RateBps()
			if math.IsNaN(r) || r < float64(line)/1000-1 || r > float64(line)+1 {
				return false
			}
			if a := d.Alpha(); a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
