package theory

import "math"

// NDD1 models the ΣD_i/D/1 queue of Appendix A.1: n homogeneous
// periodic sources, each emitting one unit-size packet per period, into
// a deterministic server with utilization rho. Appendix A.1: at rho =
// 95% with 50 sources the mean queue is ≈ 3 packets and
// P(Q > 20) ≈ 1e-9; even at rho = 100% the mean is ≈ sqrt(πN/8).
type NDD1 struct {
	N   int     // sources
	Rho float64 // load (0, 1]
}

// SimulateMeanQueue runs a slotted simulation for `slots` service slots
// with random (but fixed) source phases drawn from phase01 values in
// [0,1), returning the time-average queue length and the fraction of
// time the queue exceeded `threshold`. The server drains one packet per
// slot; each source deposits one packet every N/rho slots, offset by
// its phase.
func (m NDD1) SimulateMeanQueue(phase01 []float64, slots int, threshold int) (mean float64, pExceed float64) {
	if len(phase01) != m.N {
		panic("theory: need one phase per source")
	}
	period := float64(m.N) / m.Rho // slots between packets of one source
	// next arrival slot per source
	next := make([]float64, m.N)
	for i, ph := range phase01 {
		next[i] = ph * period
	}
	q := 0.0
	var sum float64
	exceed := 0
	for s := 0; s < slots; s++ {
		t := float64(s)
		for i := range next {
			for next[i] <= t {
				q++
				next[i] += period
			}
		}
		// serve one packet per slot
		if q > 0 {
			q--
		}
		sum += q
		if int(q) > threshold {
			exceed++
		}
	}
	return sum / float64(slots), float64(exceed) / float64(slots)
}

// BrownianMeanAt100 returns the heavy-traffic approximation of the mean
// queue at 100% load: sqrt(πN/8) (Appendix A.1).
func BrownianMeanAt100(n int) float64 {
	return math.Sqrt(math.Pi * float64(n) / 8)
}
