// Package theory implements the analytical models of the paper's
// Appendix A: the synchronous multi-resource rate recursion whose Lemma
// proves one-step feasibility and Pareto-optimal convergence within I
// steps (A.2), the additive-increase fairness equilibrium (A.3), and
// the ΣD_i/D/1 queue model bounding steady-state queues under paced
// periodic sources (A.1).
package theory

import (
	"fmt"
	"math"
	"math/rand"
)

// System is the Appendix A.2 model: I resources with capacities C,
// J paths, and an incidence matrix A (A[i][j] = true iff resource i is
// used by path j).
type System struct {
	A [][]bool  // I × J incidence
	C []float64 // per-resource target capacities, > 0
}

// Validate checks the Appendix's standing assumptions: every path uses
// at least one resource and all capacities are positive.
func (s *System) Validate() error {
	if len(s.A) == 0 || len(s.A) != len(s.C) {
		return fmt.Errorf("theory: need one capacity per resource")
	}
	j := len(s.A[0])
	if j == 0 {
		return fmt.Errorf("theory: no paths")
	}
	for i, row := range s.A {
		if len(row) != j {
			return fmt.Errorf("theory: ragged incidence row %d", i)
		}
		if s.C[i] <= 0 {
			return fmt.Errorf("theory: capacity %d not positive", i)
		}
	}
	for p := 0; p < j; p++ {
		used := false
		for i := range s.A {
			if s.A[i][p] {
				used = true
				break
			}
		}
		if !used {
			return fmt.Errorf("theory: path %d uses no resource", p)
		}
	}
	return nil
}

// Loads computes Y = A·R, the per-resource load.
func (s *System) Loads(r []float64) []float64 {
	y := make([]float64, len(s.A))
	for i, row := range s.A {
		for j, used := range row {
			if used {
				y[i] += r[j]
			}
		}
	}
	return y
}

// Feasible reports whether Y = A·R ≤ C.
func (s *System) Feasible(r []float64) bool {
	for i, y := range s.Loads(r) {
		if y > s.C[i]*(1+1e-12) {
			return false
		}
	}
	return true
}

// Step applies recursion (5)–(6): R'_j = R_j / max_i{Y_i·A_ij / C_i}.
func (s *System) Step(r []float64) []float64 {
	y := s.Loads(r)
	out := make([]float64, len(r))
	for j := range r {
		k := 0.0
		for i, row := range s.A {
			if row[j] {
				if v := y[i] / s.C[i]; v > k {
					k = v
				}
			}
		}
		if k == 0 {
			out[j] = r[j]
			continue
		}
		out[j] = r[j] / k
	}
	return out
}

// ParetoOptimal reports whether no single path's rate can grow (by more
// than a relative eps) without shrinking another: every path must cross
// at least one resource saturated to within eps.
//
// A note on Appendix A.2's Lemma: its claim (iii) — an exact fixed
// point within I steps — holds when each newly saturated resource pins
// all of its paths (e.g. a single bottleneck, or disjoint bottlenecks).
// When a pinned path shares a non-binding resource with a free path,
// the literal recursion (5)-(6) instead converges geometrically to the
// Pareto-optimal allocation (each step closes a constant fraction of
// the remaining gap), which is what the property tests verify with a
// small eps.
func (s *System) ParetoOptimal(r []float64, eps float64) bool {
	y := s.Loads(r)
	for j := range r {
		bottlenecked := false
		for i, row := range s.A {
			if row[j] && y[i] >= s.C[i]*(1-eps) {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			return false
		}
	}
	return true
}

// Converge iterates Step until the rate vector stabilizes, returning
// the trajectory (including the initial state). Convergence to the
// Pareto-optimal allocation is geometric; see the ParetoOptimal note.
func (s *System) Converge(r0 []float64, maxSteps int) [][]float64 {
	traj := [][]float64{append([]float64(nil), r0...)}
	cur := r0
	for step := 0; step < maxSteps; step++ {
		next := s.Step(cur)
		traj = append(traj, next)
		if maxDelta(cur, next) < 1e-12 {
			break
		}
		cur = next
	}
	return traj
}

func maxDelta(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// RandomSystem generates a connected random instance for property
// tests: up to maxI resources, maxJ paths, each path using ≥ 1 resource.
func RandomSystem(rng *rand.Rand, maxI, maxJ int) *System {
	i := rng.Intn(maxI) + 1
	j := rng.Intn(maxJ) + 1
	s := &System{A: make([][]bool, i), C: make([]float64, i)}
	for k := range s.A {
		s.A[k] = make([]bool, j)
		s.C[k] = rng.Float64()*99 + 1
	}
	for p := 0; p < j; p++ {
		// Guarantee at least one resource per path.
		s.A[rng.Intn(i)][p] = true
		for k := 0; k < i; k++ {
			if rng.Float64() < 0.3 {
				s.A[k][p] = true
			}
		}
	}
	return s
}

// AIEquilibrium solves the A.3 fixed point for a single bottleneck:
// sources updating R ← R·(U_target/U) + a settle at
// R = a·(1 − U_target/U)⁻¹, equivalently U = U_target·(1 − a/R)⁻¹.
// Given n identical sources sharing capacity c, the equilibrium rate is
// R = c·U/n at utilization U; combining yields a quadratic in U.
type AIEquilibrium struct {
	UTarget float64 // η
	A       float64 // additive step, rate units
	C       float64 // bottleneck capacity
	N       int     // competing sources
}

// Solve returns the equilibrium utilization U and per-source rate R.
// From R = a/(1 − Ut/U) and n·R = U·C:
//
//	U·C/n = a·U/(U − Ut)  ⇒  U = Ut + a·n/C.
func (e AIEquilibrium) Solve() (u, r float64) {
	u = e.UTarget + e.A*float64(e.N)/e.C
	r = u * e.C / float64(e.N)
	return u, r
}

// MaxAdditiveStep returns the largest a keeping equilibrium utilization
// below 100%: a < R·(1−Ut) per Appendix A.3, expressed via capacity:
// U < 1 ⇔ a < C(1−Ut)/n.
func (e AIEquilibrium) MaxAdditiveStep() float64 {
	return e.C * (1 - e.UTarget) / float64(e.N)
}

// AlphaFairRate implements Appendix A.3's multi-register extension: a
// source holding one register R_i per resource on its path sets its
// rate to R = (Σ R_i^−α)^(−1/α), the α-fair aggregate. α → ∞
// approaches min_i R_i (max-min fairness), α = 1 is proportional
// fairness, α → 0 approaches maximizing the sum of rates.
func AlphaFairRate(regs []float64, alpha float64) float64 {
	if len(regs) == 0 {
		return 0
	}
	if alpha <= 0 {
		panic("theory: alpha must be positive")
	}
	var sum float64
	for _, r := range regs {
		if r <= 0 {
			return 0
		}
		sum += math.Pow(r, -alpha)
	}
	return math.Pow(sum, -1/alpha)
}
