package theory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// singleLink returns a one-resource system shared by j paths.
func singleLink(c float64, j int) *System {
	row := make([]bool, j)
	for i := range row {
		row[i] = true
	}
	return &System{A: [][]bool{row}, C: []float64{c}}
}

func TestValidate(t *testing.T) {
	s := singleLink(10, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &System{A: [][]bool{{false}}, C: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted a path using no resource")
	}
}

func TestSingleBottleneckOneStep(t *testing.T) {
	// "If there is a single bottleneck resource then we could achieve
	// the target utilization in one RTT."
	s := singleLink(100, 4)
	r := []float64{90, 50, 30, 10} // load 180 on capacity 100
	r1 := s.Step(r)
	y := s.Loads(r1)
	if math.Abs(y[0]-100) > 1e-9 {
		t.Fatalf("load after one step = %v, want exactly C = 100", y[0])
	}
	// Rates scale proportionally (MIMD preserves ratios).
	if math.Abs(r1[0]/r1[3]-9) > 1e-9 {
		t.Fatalf("rate ratios not preserved: %v", r1)
	}
}

// Lemma (i): after one step, rates are feasible.
func TestLemmaFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSystem(rng, 6, 8)
		r := make([]float64, len(s.A[0]))
		for j := range r {
			r[j] = rng.Float64()*200 + 1
		}
		r1 := s.Step(r)
		return s.Feasible(r1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Lemma (ii): after the first step, rates never decrease.
func TestLemmaMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSystem(rng, 6, 8)
		r := make([]float64, len(s.A[0]))
		for j := range r {
			r[j] = rng.Float64()*200 + 1
		}
		cur := s.Step(r) // step 1: now feasible
		for k := 0; k < 8; k++ {
			next := s.Step(cur)
			for j := range next {
				if next[j] < cur[j]-1e-9 {
					return false
				}
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Lemma (iii), ε-version: the recursion converges (geometrically — see
// the ParetoOptimal doc note) to a Pareto-optimal allocation.
func TestLemmaParetoProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSystem(rng, 6, 8)
		r := make([]float64, len(s.A[0]))
		for j := range r {
			r[j] = rng.Float64()*200 + 1
		}
		traj := s.Converge(r, 400)
		final := traj[len(traj)-1]
		if !s.Feasible(final) {
			return false
		}
		if !s.ParetoOptimal(final, 1e-5) {
			return false
		}
		// Near fixed point: one more step moves almost nothing.
		next := s.Step(final)
		return maxDelta(final, next) < 1e-5*(1+maxVal(final))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// With a single bottleneck or disjoint bottlenecks the Lemma's exact
// finite-step claim does hold.
func TestLemmaExactForDisjointBottlenecks(t *testing.T) {
	s := &System{
		A: [][]bool{{true, true, false, false}, {false, false, true, true}},
		C: []float64{10, 4},
	}
	r := []float64{30, 10, 6, 6}
	r1 := s.Step(r)
	y := s.Loads(r1)
	if math.Abs(y[0]-10) > 1e-9 || math.Abs(y[1]-4) > 1e-9 {
		t.Fatalf("one step should saturate both disjoint links: %v", y)
	}
	r2 := s.Step(r1)
	if maxDelta(r1, r2) > 1e-12 {
		t.Fatalf("not a fixed point after one step: %v -> %v", r1, r2)
	}
}

func TestTwoBottleneckExample(t *testing.T) {
	// Path 0 uses both links; paths 1 and 2 use one link each.
	//   link0 (C=10): paths {0,1}
	//   link1 (C=4):  paths {0,2}
	s := &System{
		A: [][]bool{{true, true, false}, {true, false, true}},
		C: []float64{10, 4},
	}
	traj := s.Converge([]float64{8, 8, 8}, 300)
	final := traj[len(traj)-1]
	y := s.Loads(final)
	if !s.ParetoOptimal(final, 1e-5) {
		t.Fatalf("final %v not Pareto optimal (loads %v)", final, y)
	}
	// Both links end saturated: link1 binds paths 0 and 2; link0's
	// slack is taken by path 1 (geometric approach).
	if math.Abs(y[0]-10) > 1e-3 || math.Abs(y[1]-4) > 1e-3 {
		t.Fatalf("loads = %v, want both at capacity", y)
	}
}

func maxVal(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func TestAIEquilibrium(t *testing.T) {
	// η=0.95, 50 flows on a unit-capacity link, a chosen at half the
	// stability bound: utilization stays below 1.
	e := AIEquilibrium{UTarget: 0.95, C: 1, N: 50}
	e.A = e.MaxAdditiveStep() / 2
	u, r := e.Solve()
	if u <= 0.95 || u >= 1 {
		t.Fatalf("equilibrium U = %v, want in (0.95, 1)", u)
	}
	// Check the fixed point: R = a/(1 - Ut/U).
	wantR := e.A / (1 - e.UTarget/u)
	if math.Abs(r-wantR)/wantR > 1e-9 {
		t.Fatalf("R = %v, want %v", r, wantR)
	}
	// At the bound, U hits exactly 1.
	e.A = e.MaxAdditiveStep()
	u, _ = e.Solve()
	if math.Abs(u-1) > 1e-12 {
		t.Fatalf("U at max step = %v, want 1", u)
	}
}

func TestNDD1SmallQueues(t *testing.T) {
	// Appendix A.1: 50 paced sources at 95% load keep the queue tiny —
	// mean ≈ 3 packets, P(Q > 20) ≈ 1e-9.
	rng := rand.New(rand.NewSource(11))
	m := NDD1{N: 50, Rho: 0.95}
	phases := make([]float64, m.N)
	for i := range phases {
		phases[i] = rng.Float64()
	}
	mean, pExceed := m.SimulateMeanQueue(phases, 200_000, 20)
	if mean > 6 {
		t.Fatalf("mean queue = %v, want ≈ 3 (small)", mean)
	}
	if pExceed > 1e-3 {
		t.Fatalf("P(Q>20) = %v, want ≈ 0", pExceed)
	}
}

func TestNDD1At100PercentBounded(t *testing.T) {
	// Even at 100% load periodic sources keep the queue ≈ sqrt(πN/8).
	rng := rand.New(rand.NewSource(5))
	m := NDD1{N: 50, Rho: 1.0}
	phases := make([]float64, m.N)
	for i := range phases {
		phases[i] = rng.Float64()
	}
	mean, _ := m.SimulateMeanQueue(phases, 500_000, 1<<30)
	approx := BrownianMeanAt100(50) // ≈ 4.43
	if mean > 4*approx {
		t.Fatalf("mean queue at 100%% = %v, want order of %v", mean, approx)
	}
}

func TestAlphaFairRate(t *testing.T) {
	regs := []float64{4, 8, 16}
	// α = 1: harmonic combination (proportional fairness):
	// (1/4 + 1/8 + 1/16)^-1 = 16/7.
	if got := AlphaFairRate(regs, 1); math.Abs(got-16.0/7) > 1e-12 {
		t.Fatalf("alpha=1: %v, want %v", got, 16.0/7)
	}
	// α → ∞ approaches the minimum register (max-min fairness).
	if got := AlphaFairRate(regs, 200); math.Abs(got-4) > 0.05 {
		t.Fatalf("alpha→∞: %v, want ≈ 4", got)
	}
	// Single register: the register itself, for any α.
	if got := AlphaFairRate([]float64{7}, 2); math.Abs(got-7) > 1e-12 {
		t.Fatalf("single register: %v", got)
	}
	if got := AlphaFairRate(nil, 1); got != 0 {
		t.Fatalf("empty: %v", got)
	}
}

// Property: the α-fair aggregate is monotone in α toward the minimum,
// bounded by (min/len^(1/α), min], and scale-equivariant.
func TestAlphaFairProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%6) + 1
		regs := make([]float64, k)
		mn := math.Inf(1)
		for i := range regs {
			regs[i] = rng.Float64()*99 + 1
			if regs[i] < mn {
				mn = regs[i]
			}
		}
		prev := 0.0
		for i, alpha := range []float64{0.5, 1, 2, 4, 8} {
			r := AlphaFairRate(regs, alpha)
			if r <= 0 || r > mn+1e-9 {
				return false
			}
			if i > 0 && r < prev-1e-9 { // increasing toward min
				return false
			}
			prev = r
		}
		// Scale equivariance: doubling every register doubles the rate.
		doubled := make([]float64, k)
		for i := range regs {
			doubled[i] = 2 * regs[i]
		}
		return math.Abs(AlphaFairRate(doubled, 2)-2*AlphaFairRate(regs, 2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBrownianApprox(t *testing.T) {
	if got := BrownianMeanAt100(50); math.Abs(got-4.43) > 0.01 {
		t.Fatalf("sqrt(π·50/8) = %v, want ≈ 4.43", got)
	}
}
