package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hpcc/internal/experiment"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
)

// render prints a result the way the CLI's text sink does (job order,
// tables only) for byte-comparison.
func render(res *Result) string {
	var b bytes.Buffer
	for i := range res.Jobs {
		job := &res.Jobs[i]
		if job.Err != nil {
			fmt.Fprintf(&b, "== %s FAILED ==\n", job.Name)
			continue
		}
		for _, t := range job.Tables {
			t.Fprint(&b)
		}
	}
	return b.String()
}

func TestDeriveSeed(t *testing.T) {
	if got := DeriveSeed(7, "fig6", 0); got != 7 {
		t.Fatalf("replicate 0 seed = %d, want base 7", got)
	}
	// Replicates beyond 0 differ from the base and from each other,
	// and depend only on (base, job, replicate).
	seen := map[int64]string{7: "base"}
	for _, job := range []string{"fig6", "fig13"} {
		for rep := 1; rep < 4; rep++ {
			s := DeriveSeed(7, job, rep)
			if s <= 0 {
				t.Fatalf("seed %d for %s/%d not positive", s, job, rep)
			}
			if s != DeriveSeed(7, job, rep) {
				t.Fatal("derivation not deterministic")
			}
			key := fmt.Sprintf("%s/%d", job, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both got %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

// fakeJob builds a seed- and name-dependent table without any
// simulation, plus a knob to burn scheduling orderings.
func fakeJob(name string) Job {
	return Job{
		Name: name,
		Run: func(seed int64) []*experiment.Table {
			rng := sim.NewRNG(seed, name)
			t := &experiment.Table{Title: name, Cols: []string{"k", "v"}}
			for i := 0; i < 5; i++ {
				t.AddRow(fmt.Sprintf("r%d", i), fmt.Sprintf("%.3f", rng.Float64()))
			}
			t.AddNote("seed %d", seed)
			return []*experiment.Table{t}
		},
	}
}

// The tentpole guarantee: a campaign's rendered output is identical
// whatever the worker count, including multi-seed aggregation.
func TestParallelOutputMatchesSequential(t *testing.T) {
	jobs := []Job{fakeJob("alpha"), fakeJob("beta"), fakeJob("gamma"), fakeJob("delta"), fakeJob("epsilon")}
	for _, seeds := range []int{1, 3} {
		seq := Run(Config{Parallel: 1, Seeds: seeds, BaseSeed: 42}, jobs)
		par := Run(Config{Parallel: 8, Seeds: seeds, BaseSeed: 42}, jobs)
		if render(seq) != render(par) {
			t.Fatalf("seeds=%d: parallel output differs from sequential:\n--- seq ---\n%s--- par ---\n%s",
				seeds, render(seq), render(par))
		}
	}
}

// End-to-end over real registered scenarios: the micro figures are fast
// enough to run twice.
func TestParallelCampaignOverRealScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real scenarios: skipped in -short")
	}
	scens, err := experiment.Match([]string{"fig6", "fig13", "theory"})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, s := range scens {
		run := s.Run
		name := s.Name
		jobs = append(jobs, Job{Name: name, Run: func(seed int64) []*experiment.Table {
			return run(experiment.Params{Seed: seed})
		}})
	}
	seq := Run(Config{Parallel: 1, BaseSeed: 1}, jobs)
	par := Run(Config{Parallel: 4, BaseSeed: 1}, jobs)
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	if render(seq) != render(par) {
		t.Fatal("parallel campaign output differs from sequential over real scenarios")
	}
	for i := range seq.Jobs {
		if seq.Jobs[i].Events == 0 && seq.Jobs[i].Name != "theory" {
			t.Fatalf("%s: no events metered", seq.Jobs[i].Name)
		}
		if seq.Jobs[i].Wall <= 0 {
			t.Fatalf("%s: no wall time recorded", seq.Jobs[i].Name)
		}
	}
	if seq.Events() != par.Events() {
		t.Fatalf("event counts differ: seq %d, par %d", seq.Events(), par.Events())
	}
}

func TestMultiSeedAggregation(t *testing.T) {
	res := Run(Config{Parallel: 2, Seeds: 4, BaseSeed: 9}, []Job{fakeJob("agg")})
	job := res.Jobs[0]
	if len(job.Units) != 4 {
		t.Fatalf("units = %d", len(job.Units))
	}
	if job.Units[0].Seed != 9 {
		t.Fatalf("replicate 0 seed = %d, want base", job.Units[0].Seed)
	}
	tab := job.Tables[0]
	// Value cells vary with seed → mean±hw; key cells are invariant.
	for _, row := range tab.Rows {
		if strings.Contains(row[0], "±") {
			t.Fatalf("label cell aggregated: %q", row[0])
		}
		if !strings.Contains(row[1], "±") {
			t.Fatalf("value cell not aggregated: %q", row[1])
		}
	}
	note := strings.Join(tab.Notes, "\n")
	if !strings.Contains(note, "mean±95% CI over 4 seeds") {
		t.Fatalf("missing aggregation note: %q", note)
	}
}

// Distribution sketches attached to tables pool across seeds: the
// aggregated table carries one merged sketch per name whose population
// is the union of every replicate's, plus a note with its percentiles.
func TestMultiSeedDistPooling(t *testing.T) {
	distJob := Job{
		Name: "dist",
		Run: func(seed int64) []*experiment.Table {
			rng := sim.NewRNG(seed, "dist")
			tab := &experiment.Table{Title: "dist", Cols: []string{"k", "v"}}
			tab.AddRow("r0", fmt.Sprintf("%.3f", rng.Float64()))
			sk := stats.NewSketch(0)
			for i := 0; i < 500; i++ {
				sk.Add(1 + 4*rng.ExpFloat64())
			}
			tab.AddDist("slowdown", sk)
			return []*experiment.Table{tab}
		},
	}
	res := Run(Config{Parallel: 2, Seeds: 4, BaseSeed: 9}, []Job{distJob})
	job := res.Jobs[0]
	tab := job.Tables[0]
	if len(tab.Dists) != 1 {
		t.Fatalf("dists = %d, want 1", len(tab.Dists))
	}
	pooled := tab.Dists[0].Sketch
	if pooled.Count() != 4*500 {
		t.Fatalf("pooled count = %d, want %d", pooled.Count(), 4*500)
	}
	// Pooling must match one sketch fed every replicate's values — the
	// single-run-with-4x-the-flows answer — regardless of merge order.
	want := stats.NewSketch(0)
	for _, u := range job.Units {
		rng := sim.NewRNG(u.Seed, "dist")
		rng.Float64() // the cell draw precedes the dist draws
		for i := 0; i < 500; i++ {
			want.Add(1 + 4*rng.ExpFloat64())
		}
	}
	for _, p := range []float64{50, 95, 99, 99.9} {
		if g, w := pooled.Quantile(p), want.Quantile(p); g != w {
			t.Fatalf("pooled p%v = %v, want %v", p, g, w)
		}
	}
	// Pooling clones: replicate sketches must come through unmutated.
	if n := job.Units[0].Tables[0].Dists[0].Sketch.Count(); n != 500 {
		t.Fatalf("replicate 0 sketch mutated: count = %d, want 500", n)
	}
	note := strings.Join(tab.Notes, "\n")
	if !strings.Contains(note, "pooled slowdown over 4 seeds") ||
		!strings.Contains(note, "not the mean of per-seed percentiles") {
		t.Fatalf("missing pooled-distribution note: %q", note)
	}
	// Single-seed campaigns pass the replicate sketch through verbatim.
	one := Run(Config{Parallel: 1, Seeds: 1, BaseSeed: 9}, []Job{distJob})
	if n := one.Jobs[0].Tables[0].Dists[0].Sketch.Count(); n != 500 {
		t.Fatalf("single-seed dist count = %d, want 500", n)
	}
}

// Regression: a "NaN" cell parses as a float, but must be treated like
// non-numeric — one bad replicate used to poison the whole cell into
// "NaN±NaN".
func TestAggregationRejectsNaNCells(t *testing.T) {
	calls := 0
	job := Job{
		Name: "nan",
		Run: func(seed int64) []*experiment.Table {
			calls++ // safe: Parallel is 1 below
			t := &experiment.Table{Title: "nan", Cols: []string{"k", "v"}}
			v := fmt.Sprintf("%.3f", float64(calls))
			if calls == 2 {
				v = "NaN" // replicate 1 went bad
			}
			t.AddRow("r0", v)
			return []*experiment.Table{t}
		},
	}
	res := Run(Config{Parallel: 1, Seeds: 3, BaseSeed: 1}, []Job{job})
	cell := res.Jobs[0].Tables[0].Rows[0][1]
	if strings.Contains(cell, "NaN") {
		t.Fatalf("NaN replicate poisoned the aggregate cell: %q", cell)
	}
	if cell != "1.000" {
		t.Fatalf("cell = %q, want replicate 0's value 1.000", cell)
	}
}

func TestAggregationSkipsMismatchedShapes(t *testing.T) {
	calls := 0
	job := Job{
		Name: "ragged",
		Run: func(seed int64) []*experiment.Table {
			calls++ // safe: Parallel is 1 below
			t := &experiment.Table{Title: "ragged", Cols: []string{"v"}}
			for i := 0; i < calls; i++ {
				t.AddRow("x")
			}
			return []*experiment.Table{t}
		},
	}
	res := Run(Config{Parallel: 1, Seeds: 3, BaseSeed: 1}, []Job{job})
	note := strings.Join(res.Jobs[0].Tables[0].Notes, "\n")
	if !strings.Contains(note, "aggregation skipped") {
		t.Fatalf("expected skip note, got %q", note)
	}
}

func TestPanicBecomesJobError(t *testing.T) {
	boom := Job{Name: "boom", Run: func(int64) []*experiment.Table { panic("kaboom") }}
	ok := fakeJob("ok")
	res := Run(Config{Parallel: 2, BaseSeed: 1}, []Job{boom, ok})
	if res.Jobs[0].Err == nil || !strings.Contains(res.Jobs[0].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", res.Jobs[0].Err)
	}
	if res.Jobs[1].Err != nil {
		t.Fatal("healthy job infected by sibling panic")
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("campaign error = %v", err)
	}
}
