// Package campaign fans independent experiment jobs out across a
// bounded worker pool. Each job owns its own sim.Engine(s), so the only
// coordination the runner needs is deterministic seeding and ordered
// result collection: a campaign's rendered output is byte-identical
// whether it ran on one worker or many.
package campaign

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/sim"
)

// Job is one registered scenario bound to campaign parameters. Run is
// invoked once per seed replicate and must be reentrant: with Parallel
// and Seeds both above one, workers may execute it concurrently with
// other jobs and with its own replicates. It must confine itself to
// state it creates (its own engines), deriving everything from seed.
type Job struct {
	Name string
	Run  func(seed int64) []*experiment.Table
}

// Config bounds a campaign.
type Config struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Seeds is the replicate count per job; <= 0 means 1. With more
	// than one, each job's tables are aggregated to mean ± 95% CI.
	Seeds int
	// BaseSeed anchors seed derivation (see DeriveSeed).
	BaseSeed int64
}

func (c *Config) normalize() {
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
}

// DeriveSeed returns the RNG seed for a job replicate. Replicate 0 runs
// at the base seed itself (so a single-seed campaign reproduces the
// scenario exactly as invoked standalone); further replicates hash the
// job name in, giving every (job, replicate) an independent stream that
// does not depend on which other jobs run or on worker scheduling.
func DeriveSeed(base int64, job string, replicate int) int64 {
	if replicate == 0 {
		return base
	}
	h := uint64(base)
	for _, c := range job {
		h = (h ^ uint64(c)) * 1099511628211 // FNV-1a step
	}
	h ^= uint64(replicate) << 1
	// splitmix64 finalizer to decorrelate nearby replicates.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	// Truncate to 31 bits: every RNG in the tree re-hashes its seed, so
	// small positive seeds lose nothing and stay easy to quote/replay.
	s := int64(h & 0x7fffffff)
	if s == 0 {
		s = 1
	}
	return s
}

// UnitResult is one (job, replicate) execution.
type UnitResult struct {
	Seed    int64
	Tables  []*experiment.Table
	Wall    time.Duration
	Events  uint64
	Engines int
	Err     error
}

// JobResult collects a job's replicates plus the cross-seed aggregate.
type JobResult struct {
	Name string
	// Units holds one entry per replicate, in replicate order.
	Units []UnitResult
	// Tables is the aggregated view: replicate 0's tables verbatim for
	// a single seed, mean ± 95% CI cells otherwise.
	Tables []*experiment.Table
	// Wall/Events/Engines sum over replicates.
	Wall    time.Duration
	Events  uint64
	Engines int
	// Err is the first replicate error, if any.
	Err error
}

// Result is a completed campaign.
type Result struct {
	Config Config
	// Jobs appear in submission order regardless of scheduling.
	Jobs []JobResult
	// Wall is the campaign's end-to-end wall-clock time.
	Wall time.Duration
}

// Events sums fired simulation events across the campaign.
func (r *Result) Events() uint64 {
	var total uint64
	for i := range r.Jobs {
		total += r.Jobs[i].Events
	}
	return total
}

// Err returns the first job error, if any.
func (r *Result) Err() error {
	for i := range r.Jobs {
		if err := r.Jobs[i].Err; err != nil {
			return fmt.Errorf("%s: %w", r.Jobs[i].Name, err)
		}
	}
	return nil
}

// Run executes jobs × seeds on the worker pool and returns results in
// submission order.
func Run(cfg Config, jobs []Job) *Result {
	cfg.normalize()
	start := time.Now() //hpcclint:allow determinism -- campaign wall-clock accounting; results depend only on per-job seeds

	type unit struct{ job, rep int }
	var units []unit
	for j := range jobs {
		for r := 0; r < cfg.Seeds; r++ {
			units = append(units, unit{j, r})
		}
	}
	slots := make([][]UnitResult, len(jobs))
	for j := range slots {
		slots[j] = make([]UnitResult, cfg.Seeds)
	}

	work := make(chan unit)
	var wg sync.WaitGroup
	workers := cfg.Parallel
	if workers > len(units) {
		workers = len(units)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//hpcclint:allow determinism -- worker pool runs whole jobs; each job is a self-contained deterministic simulation keyed by its seed
		go func() {
			defer wg.Done()
			for u := range work {
				slots[u.job][u.rep] = runUnit(jobs[u.job], DeriveSeed(cfg.BaseSeed, jobs[u.job].Name, u.rep))
			}
		}()
	}
	for _, u := range units {
		work <- u
	}
	close(work)
	wg.Wait()

	res := &Result{Config: cfg}
	for j := range jobs {
		jr := JobResult{Name: jobs[j].Name, Units: slots[j]}
		for _, u := range jr.Units {
			jr.Wall += u.Wall
			jr.Events += u.Events
			jr.Engines += u.Engines
			if u.Err != nil && jr.Err == nil {
				jr.Err = u.Err
			}
		}
		jr.Tables = aggregate(jr.Units)
		res.Jobs = append(res.Jobs, jr)
	}
	res.Wall = time.Since(start) //hpcclint:allow determinism -- campaign wall-time metering reported alongside results, not part of them
	return res
}

// runUnit executes one replicate with engine metering and panic
// containment (a scenario bug fails its job, not the campaign).
func runUnit(job Job, seed int64) (out UnitResult) {
	out.Seed = seed
	meter := sim.AttachMeter()
	start := time.Now() //hpcclint:allow determinism -- per-unit wall-clock metering reported alongside results, not part of them
	defer func() {
		out.Wall = time.Since(start) //hpcclint:allow determinism -- per-unit wall-clock metering reported alongside results, not part of them
		meter.Detach()
		out.Events = meter.Events()
		out.Engines = meter.Engines()
		if r := recover(); r != nil {
			out.Err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	out.Tables = job.Run(seed)
	return out
}
