package campaign

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hpcc/internal/experiment"
)

// aggregate merges a job's replicates into one table set. With a single
// replicate (or any failed one) the first replicate's tables pass
// through verbatim. Otherwise every cell that parses as a number in all
// replicates becomes "mean±hw" where hw is the 95% confidence-interval
// half-width (normal approximation); non-numeric cells and notes come
// from replicate 0. Replicates whose table shapes disagree (tables,
// columns or row counts) cannot be merged cell-wise and also fall back
// to replicate 0, flagged by a note.
func aggregate(units []UnitResult) []*experiment.Table {
	if len(units) == 0 {
		return nil
	}
	first := units[0].Tables
	if len(units) == 1 {
		return first
	}
	for _, u := range units {
		if u.Err != nil {
			return first
		}
	}
	var seeds []string
	for _, u := range units {
		seeds = append(seeds, strconv.FormatInt(u.Seed, 10))
	}
	if !sameShape(units) {
		out := cloneTables(first)
		for _, t := range out {
			t.AddNote("multi-seed aggregation skipped (replicate shapes differ); showing seed %d of seeds %s",
				units[0].Seed, strings.Join(seeds, ","))
		}
		return out
	}
	out := cloneTables(first)
	for ti, t := range out {
		for ri, row := range t.Rows {
			for ci := range row {
				vals := make([]float64, len(units))
				numeric, varies := true, false
				for ui, u := range units {
					cell := u.Tables[ti].Rows[ri][ci]
					if cell != row[ci] {
						varies = true
					}
					v, err := strconv.ParseFloat(cell, 64)
					// NaN parses fine but would poison the mean±CI into
					// NaN±NaN; treat it like non-numeric so the cell
					// falls back to replicate 0.
					if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
						numeric = false
						break
					}
					vals[ui] = v
				}
				// Keep seed-invariant cells (labels, time axes) and
				// non-numeric ones as replicate 0 rendered them.
				if !numeric || !varies {
					continue
				}
				row[ci] = meanCI(vals, fracDigits(row[ci]))
			}
		}
		t.AddNote("numeric cells: mean±95%% CI over %d seeds (%s); notes reflect seed %d",
			len(units), strings.Join(seeds, ","), units[0].Seed)
		poolDists(t, ti, units)
	}
	return out
}

// poolDists merges every replicate's attached distribution sketches
// into one pooled distribution per name and reports its percentiles.
// This answers a different question than the mean±CI cells: a cell like
// "p99" averaged over seeds is the expected per-run p99 (each run's
// tail computed over its own flows), while the pooled percentile is the
// p99 of all flows from all seeds as one population — the number a
// single run with Seeds× the flows would report. Tails are
// concentration-sensitive, so the two can differ; campaigns get both.
func poolDists(t *experiment.Table, ti int, units []UnitResult) {
	if len(t.Dists) == 0 {
		return
	}
	for _, u := range units[1:] {
		if len(u.Tables[ti].Dists) != len(t.Dists) {
			t.AddNote("distribution pooling skipped (replicate dist shapes differ)")
			return
		}
	}
	for di := range t.Dists {
		merged := units[0].Tables[ti].Dists[di].Sketch.Clone()
		for _, u := range units[1:] {
			merged.Merge(u.Tables[ti].Dists[di].Sketch)
		}
		t.Dists[di].Sketch = merged
		if merged.Count() > 0 {
			t.AddNote("pooled %s over %d seeds: p50 %.2f  p95 %.2f  p99 %.2f  p99.9 %.2f  n %d (percentiles of the pooled distribution, not the mean of per-seed percentiles)",
				t.Dists[di].Name, len(units),
				merged.Quantile(50), merged.Quantile(95), merged.Quantile(99), merged.Quantile(99.9), merged.Count())
		}
	}
}

func sameShape(units []UnitResult) bool {
	first := units[0].Tables
	for _, u := range units[1:] {
		if len(u.Tables) != len(first) {
			return false
		}
		for ti, t := range u.Tables {
			f := first[ti]
			if t.Title != f.Title || len(t.Cols) != len(f.Cols) || len(t.Rows) != len(f.Rows) {
				return false
			}
			for ri := range t.Rows {
				if len(t.Rows[ri]) != len(f.Rows[ri]) {
					return false
				}
			}
		}
	}
	return true
}

func cloneTables(in []*experiment.Table) []*experiment.Table {
	out := make([]*experiment.Table, len(in))
	for i, t := range in {
		c := &experiment.Table{
			Title: t.Title,
			Cols:  append([]string(nil), t.Cols...),
			Notes: append([]string(nil), t.Notes...),
		}
		for _, row := range t.Rows {
			c.Rows = append(c.Rows, append([]string(nil), row...))
		}
		for _, d := range t.Dists {
			c.Dists = append(c.Dists, experiment.Dist{Name: d.Name, Sketch: d.Sketch.Clone()})
		}
		out[i] = c
	}
	return out
}

// meanCI formats mean ± 95% CI half-width, keeping the precision the
// scenario chose for the underlying cell.
func meanCI(vals []float64, digits int) string {
	n := float64(len(vals))
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / n
	var sq float64
	for _, v := range vals {
		d := v - mean
		sq += d * d
	}
	sd := math.Sqrt(sq / (n - 1))
	hw := 1.96 * sd / math.Sqrt(n)
	return fmt.Sprintf("%.*f±%.*f", digits, mean, digits, hw)
}

// fracDigits counts digits after the decimal point in a rendered cell,
// so aggregates match the scenario's formatting.
func fracDigits(cell string) int {
	if i := strings.IndexByte(cell, '.'); i >= 0 {
		return len(cell) - i - 1
	}
	return 0
}
