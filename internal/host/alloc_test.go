package host

import (
	"testing"

	"hpcc/internal/fabric"
	"hpcc/internal/sim"
)

// The tentpole guarantee end to end: in steady state, a full HPCC flow
// — data packets through an INT switch, in-place ACK conversion at the
// receiver, window/rate reaction at the sender — costs well under one
// heap allocation per simulated packet. Before the pooled-packet /
// single-event-wire refactor this path allocated ≈ 8-20 per packet
// (packet structs, ACK structs with their 320-byte INT copy, two event
// closures per hop, escaping AckEvents); the test enforces far more
// than the required 80% reduction and pins the win against regression.
func TestSteadyStateAllocsPerPacketUnderBudget(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	const flowBytes = 200_000 // 200 packets per run
	id := int32(0)
	run := func() {
		id++
		nw.hosts[0].StartFlow(id, nw.hosts[1].ID(), flowBytes, 0, nil)
		nw.eng.Run()
	}
	// Warm pools, FIFOs and the event heap.
	for i := 0; i < 10; i++ {
		run()
	}

	avg := testing.AllocsPerRun(30, run)
	pktsPerRun := float64(flowBytes) / 1000 // MTU chunks
	perPkt := avg / pktsPerRun
	// Budget: per-flow setup (Flow struct, CC instance, timer closures,
	// receiver state, map growth) amortizes to < 0.3 allocs per packet
	// on a 200-packet flow; the per-packet path itself must be free.
	if perPkt > 0.3 {
		t.Fatalf("steady-state host path allocates %.3f allocs/packet (%.1f/flow), want < 0.3", perPkt, avg)
	}
}

// The receive/ACK side alone: a paced long flow must keep allocations
// flat while ACKs stream back (reusable AckEvent, pooled ACK release).
func TestLongFlowMidstreamAllocFree(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	nw.hosts[0].StartFlow(1, nw.hosts[1].ID(), 1<<40, 0, nil) // effectively infinite
	// Past slow start: window and pacer in steady oscillation.
	nw.eng.RunUntil(2 * sim.Millisecond)

	avg := testing.AllocsPerRun(20, func() {
		nw.eng.RunUntil(nw.eng.Now() + 100*sim.Microsecond)
	})
	// ≈ 1100 data packets + 1100 ACKs per 100µs slice at ~95 Gbps.
	if avg > 16 {
		t.Fatalf("midstream slice allocates %.1f allocs per 100µs (≈2200 packets), want ≈ 0", avg)
	}
}
