package host

import (
	"math"
	"sync/atomic"

	"hpcc/internal/cc"
	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// pktID is the process-wide packet-ID source, used only for tracing
// (forwarding never branches on it). It is atomic so independent
// engines may run on concurrent goroutines (campaign workers).
var pktID atomic.Uint64

// Flow is one sender-side queue pair: it segments size bytes into
// MTU-sized packets, enforces the CC window and pacing rate, and runs
// loss recovery.
type Flow struct {
	ID   int32
	host *Host
	dst  fabric.NodeID
	size int64
	port *fabric.Port
	alg  cc.Algorithm

	sndNxt, sndUna int64
	nextSendAt     sim.Time
	sendEv         sim.Timer
	rtoEv          sim.Timer
	lastProgress   sim.Time

	// sendFn/rtoFn are the flow's timer callbacks, built once at start
	// so re-arming the pacer or the RTO never allocates a closure.
	sendFn, rtoFn func()
	// ackEv is the reusable event passed to the CC algorithm on every
	// ACK (algorithms treat it as transient; HPCC copies the hop
	// records it keeps).
	ackEv cc.AckEvent

	// IRN state.
	sacked      map[int64]int32 // out-of-order acked chunks: seq -> len
	sackedBytes int64
	rtx         map[int64]int32 // pending selective retransmits: seq -> len
	irnCap      float64         // fixed one-BDP inflight cap
	lastRtxSeq  int64
	lastRtxAt   sim.Time

	started  sim.Time
	finished sim.Time
	liveIdx  int // position in the host's liveList; -1 once torn down
	done     bool
	alive    bool
	pending  bool // waiting for a flow-scheduler engine slot (§4.3)
	admitted bool // holds a scheduler slot (must be released at teardown)
	onDone   func(*Flow)

	// OnProgress, if set, observes every cumulative-ACK advance (for
	// throughput time series).
	OnProgress func(f *Flow, newlyAcked int64)

	pktsSent, pktsRtx uint64
}

// Size returns the flow's total bytes.
func (f *Flow) Size() int64 { return f.size }

// Started returns the flow start time.
func (f *Flow) Started() sim.Time { return f.started }

// Finished returns the completion time (valid once Done).
func (f *Flow) Finished() sim.Time { return f.finished }

// Done reports whether every byte has been cumulatively acknowledged.
func (f *Flow) Done() bool { return f.done }

// FCT returns the flow completion time (valid once Done).
func (f *Flow) FCT() sim.Time { return f.finished - f.started }

// Acked returns the cumulatively acknowledged byte count.
func (f *Flow) Acked() int64 { return f.sndUna }

// Dst returns the destination host's node ID.
func (f *Flow) Dst() fabric.NodeID { return f.dst }

// Host returns the sending host that owns this flow.
func (f *Flow) Host() *Host { return f.host }

// Alg exposes the flow's CC instance for tracing.
func (f *Flow) Alg() cc.Algorithm { return f.alg }

// PacketsSent returns total data packets emitted (including
// retransmissions, reported separately by Retransmits).
func (f *Flow) PacketsSent() uint64 { return f.pktsSent }

// Retransmits returns the number of retransmitted packets.
func (f *Flow) Retransmits() uint64 { return f.pktsRtx }

// inflight returns the unacknowledged bytes currently in the network.
func (f *Flow) inflight() int64 {
	return f.sndNxt - f.sndUna - f.sackedBytes
}

// window returns the effective inflight cap: the CC window, further
// bounded by IRN's fixed BDP cap in IRN mode.
func (f *Flow) window() float64 {
	w := f.alg.WindowBytes()
	if f.host.cfg.FlowCtl == IRN && w > f.irnCap {
		w = f.irnCap
	}
	return w
}

// nextChunk picks the next (seq, payload) to transmit: pending
// selective retransmits first (IRN), then new data.
func (f *Flow) nextChunk() (seq int64, payload int32, isRtx bool) {
	if len(f.rtx) > 0 {
		seq = math.MaxInt64
		//hpcclint:allow determinism -- min-scan; the minimum key is order-independent
		for s := range f.rtx {
			if s < seq {
				seq = s
			}
		}
		return seq, f.rtx[seq], true
	}
	if f.sndNxt < f.size {
		p := f.size - f.sndNxt
		if p > int64(f.host.cfg.MTU) {
			p = int64(f.host.cfg.MTU)
		}
		return f.sndNxt, int32(p), false
	}
	return 0, 0, false
}

// trySend transmits as many packets as the window and pacer allow,
// arming the pacing timer when it runs ahead of the clock.
func (f *Flow) trySend() {
	if f.done || !f.alive || f.pending {
		return
	}
	now := f.host.eng.Now()
	for {
		seq, payload, isRtx := f.nextChunk()
		if payload == 0 {
			return
		}
		// Window gate; a flow with nothing inflight may always send one
		// packet so a sub-MTU window cannot deadlock it.
		if f.inflight() > 0 && float64(f.inflight()+int64(payload)) > f.window() {
			return
		}
		if now < f.nextSendAt {
			f.armSendTimer()
			return
		}
		f.emit(now, seq, payload, isRtx)
	}
}

func (f *Flow) emit(now sim.Time, seq int64, payload int32, isRtx bool) {
	size := payload + packet.HeaderBytes
	if f.host.cfg.INT {
		size += packet.INTOverhead
	}
	p := f.host.pool.Get()
	p.ID = pktID.Add(1)
	p.Type = packet.Data
	p.FlowID = f.ID
	p.Src = int32(f.host.id)
	p.Dst = int32(f.dst)
	p.Prio = fabric.PrioData
	p.Size = size
	p.Seq = seq
	p.PayloadLen = payload
	p.SendTS = now
	// Mark the chunk carrying the flow's last byte so the receiver can
	// free its reassembly state once everything before it landed.
	p.FlowEnd = seq+int64(payload) >= f.size
	f.port.Enqueue(p, -1)
	f.pktsSent++
	if isRtx {
		f.pktsRtx++
		delete(f.rtx, seq)
	} else {
		f.sndNxt = seq + int64(payload)
	}
	// Pace the next transmission at the CC rate.
	rate := f.alg.RateBps()
	if rate > float64(f.port.Rate()) {
		rate = float64(f.port.Rate())
	}
	var gap sim.Time
	if rate > 0 {
		gap = sim.Time(float64(size) * 8 * float64(sim.Second) / rate)
	}
	base := f.nextSendAt
	if now > base {
		base = now
	}
	f.nextSendAt = base + gap
}

// initTimers builds the flow's reusable timer callbacks (one-time
// allocations; every later re-arm is closure-free).
func (f *Flow) initTimers() {
	f.sendFn = func() {
		f.sendEv = sim.Timer{}
		f.trySend()
	}
	f.rtoFn = f.onRTO
}

func (f *Flow) armSendTimer() {
	// Lazy re-arm: trySend runs on every ACK and CC tick, and nextSendAt
	// only moves when a packet is emitted — so the pacer is usually
	// already armed at exactly the right instant. Keeping that event
	// avoids a cancel + re-push through the scheduler per ACK; the event
	// that eventually fires is the same one, just with its original
	// scheduling sequence.
	if f.sendEv.Armed() && f.sendEv.When() == f.nextSendAt {
		return
	}
	f.host.eng.Cancel(f.sendEv)                      // stale or zero handles are no-ops
	f.sendEv = f.host.eng.At(f.nextSendAt, f.sendFn) //hpcclint:allow eventkey -- pacing timer on the flow's own host engine; ties with deliveries break on the delivery's canonical wire key, and host-local arming order is identical across shard counts (TestShardDumbbellEquivalence)
}

// handleAck processes a cumulative (and, under IRN, selective) ACK.
//
//hpcclint:alloc-free
func (f *Flow) handleAck(p *packet.Packet) {
	if f.done {
		return
	}
	now := f.host.eng.Now()
	newly := int64(0)
	if p.AckSeq > f.sndUna {
		newly = p.AckSeq - f.sndUna
		f.sndUna = p.AckSeq
		f.lastProgress = now
	}
	if f.host.cfg.FlowCtl == IRN {
		f.irnOnAck(p, now)
	}

	ev := &f.ackEv
	ev.Now = now
	ev.RTT = now - p.EchoTS
	ev.AckSeq = p.AckSeq
	ev.SndNxt = f.sndNxt
	ev.AckedBytes = newly
	ev.ECE = p.ECE
	ev.Hops = p.INT.Records()
	ev.PathID = p.INT.PathID
	f.alg.OnAck(ev)
	ev.Hops = nil // p returns to the pool after this ACK is consumed

	if newly > 0 && f.OnProgress != nil {
		f.OnProgress(f, newly)
	}
	if f.sndUna >= f.size {
		f.complete(now)
		return
	}
	f.trySend()
}

// irnOnAck maintains the selective-repeat state: record out-of-order
// deliveries and queue gap retransmissions.
func (f *Flow) irnOnAck(p *packet.Packet, now sim.Time) {
	// Clear sacked chunks the cumulative ACK has overtaken.
	for s, l := range f.sacked {
		if s < f.sndUna {
			delete(f.sacked, s)
			f.sackedBytes -= int64(l)
		}
	}
	if p.DataSeq > p.AckSeq {
		// The receiver holds DataSeq but still waits at AckSeq: a gap.
		if _, dup := f.sacked[p.DataSeq]; !dup && p.DataSeq >= f.sndUna {
			// Length of the sacked chunk: MTU-bounded remainder.
			l := f.size - p.DataSeq
			if l > int64(f.host.cfg.MTU) {
				l = int64(f.host.cfg.MTU)
			}
			f.sacked[p.DataSeq] = int32(l)
			f.sackedBytes += l
		}
		// Queue the missing chunk at AckSeq unless recently requeued.
		if p.AckSeq != f.lastRtxSeq || now-f.lastRtxAt > f.host.cfg.BaseRTT {
			gapLen := f.size - p.AckSeq
			if gapLen > int64(f.host.cfg.MTU) {
				gapLen = int64(f.host.cfg.MTU)
			}
			if gapLen > 0 && p.AckSeq < f.sndNxt {
				f.rtx[p.AckSeq] = int32(gapLen)
				f.lastRtxSeq = p.AckSeq
				f.lastRtxAt = now
			}
		}
	}
}

// handleNack processes a go-back-N NACK: rewind to the receiver's
// expected sequence.
func (f *Flow) handleNack(p *packet.Packet) {
	if f.done || f.host.cfg.FlowCtl != GoBackN {
		return
	}
	if p.AckSeq > f.sndUna {
		f.sndUna = p.AckSeq // NACK also acknowledges everything before the gap
	}
	if p.AckSeq < f.sndNxt {
		f.sndNxt = p.AckSeq
		f.pktsRtx++ // count the rewind episode
	}
	f.trySend()
}

// armRTO arms the retransmission-timeout backstop.
func (f *Flow) armRTO() {
	f.rtoEv = f.host.eng.After(f.host.cfg.RTO, f.rtoFn) //hpcclint:allow eventkey -- RTO backstop on the flow's own host engine; ties with deliveries break on the delivery's canonical wire key, and host-local arming order is identical across shard counts (TestShardDumbbellEquivalence)
}

// onRTO fires the retransmission-timeout backstop and re-arms it.
func (f *Flow) onRTO() {
	f.rtoEv = sim.Timer{}
	if f.done || !f.alive {
		return
	}
	now := f.host.eng.Now()
	if f.inflight() > 0 && now-f.lastProgress >= f.host.cfg.RTO {
		// Timed out: rewind (GBN) or requeue the unacked head (IRN).
		if f.host.cfg.FlowCtl == GoBackN {
			f.sndNxt = f.sndUna
			f.pktsRtx++ // count the rewind episode
		} else {
			l := f.size - f.sndUna
			if l > int64(f.host.cfg.MTU) {
				l = int64(f.host.cfg.MTU)
			}
			if l > 0 && f.sndUna < f.sndNxt {
				f.rtx[f.sndUna] = int32(l)
			}
		}
		f.lastProgress = now
		f.trySend()
	}
	f.armRTO()
}

// Abort stops the flow immediately without firing onDone — used by
// experiments to make long-running flows "leave" at a scheduled time.
func (f *Flow) Abort() {
	if f.done {
		return
	}
	f.teardown(f.host.eng.Now())
}

func (f *Flow) complete(now sim.Time) {
	f.teardown(now)
	if f.onDone != nil {
		f.onDone(f)
	}
	f.host.noteFlowDone(f)
}

func (f *Flow) teardown(now sim.Time) {
	f.done = true
	f.alive = false
	f.finished = now
	if f.liveIdx >= 0 {
		f.host.unlinkFlow(f)
	}
	f.host.eng.Cancel(f.sendEv)
	f.sendEv = sim.Timer{}
	f.host.eng.Cancel(f.rtoEv)
	f.rtoEv = sim.Timer{}
	// Drop the IRN recovery maps: every handler that touches them is
	// gated on the flow being live.
	f.sacked = nil
	f.rtx = nil
	if f.admitted {
		f.admitted = false
		f.host.flowFinished()
	}
	f.pending = false
}
