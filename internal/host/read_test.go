package host

import (
	"testing"

	"hpcc/internal/cc"
	"hpcc/internal/fabric"
	"hpcc/internal/sim"
)

func TestRDMARead(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	done := false
	// Host 0 reads 500 KB from host 1: the data flows 1 -> 0.
	nw.hosts[0].Read(1, nw.hosts[1].ID(), 500_000, 0, func() { done = true })
	nw.eng.Run()
	if !done {
		t.Fatal("READ completion never fired at the requester")
	}
	// The responder owns the data flow.
	f := nw.hosts[1].Flows()[1]
	if f == nil || !f.Done() {
		t.Fatal("responder flow missing or unfinished")
	}
	if got := f.Acked(); got != 500_000 {
		t.Fatalf("responder streamed %d acked bytes, want 500000", got)
	}
	// The requester's reassembly state is freed once the stream lands.
	if nw.hosts[0].recv[1] != nil {
		t.Fatal("requester receiver state not freed after READ completion")
	}
}

func TestRDMAReadUnderIRN(t *testing.T) {
	cfg := hpccConfig()
	cfg.FlowCtl = IRN
	nw := buildStar(2, cfg, fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	done := false
	nw.hosts[0].Read(7, nw.hosts[1].ID(), 123_456, 0, func() { done = true })
	nw.eng.Run()
	if !done {
		t.Fatal("READ completion never fired under IRN")
	}
}

func TestSchedulerEngineLimit(t *testing.T) {
	// One engine = 50 flows; launch 60 and check the last ten wait
	// until earlier flows finish, yet all eventually complete.
	mock := func() cc.Algorithm { return &mockCC{w: 0, rate: float64(line100)} }
	cfg := Config{CC: mock, BaseRTT: 10 * sim.Microsecond, SchedulerEngines: 1}
	nw := buildStar(2, cfg, fabric.SwitchConfig{}, line100, sim.Microsecond)
	var flows []*Flow
	for i := 0; i < 60; i++ {
		flows = append(flows, nw.start(0, 1, 50_000, nil))
	}
	waiting := 0
	for _, f := range flows {
		if f.pending {
			waiting++
		}
	}
	if waiting != 10 {
		t.Fatalf("waiting flows = %d, want 10 (capacity 50)", waiting)
	}
	nw.eng.Run()
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d never completed", i)
		}
	}
	if nw.hosts[0].activeFlows != 0 {
		t.Fatalf("scheduler slots leaked: %d active after drain", nw.hosts[0].activeFlows)
	}
}

func TestSchedulerAbortWhileWaiting(t *testing.T) {
	mock := func() cc.Algorithm { return &mockCC{w: 0, rate: float64(line100)} }
	cfg := Config{CC: mock, BaseRTT: 10 * sim.Microsecond, SchedulerEngines: 1}
	nw := buildStar(2, cfg, fabric.SwitchConfig{}, line100, sim.Microsecond)
	var flows []*Flow
	for i := 0; i < 55; i++ {
		flows = append(flows, nw.start(0, 1, 50_000, nil))
	}
	// Abort a waiting flow before it is admitted.
	flows[52].Abort()
	nw.eng.Run()
	for i, f := range flows {
		if i == 52 {
			continue
		}
		if !f.Done() {
			t.Fatalf("flow %d never completed", i)
		}
	}
	if nw.hosts[0].activeFlows != 0 {
		t.Fatalf("scheduler slots leaked after abort: %d", nw.hosts[0].activeFlows)
	}
}

func TestUnlimitedSchedulerByDefault(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	for i := 0; i < 400; i++ {
		nw.start(0, 1, 2_000, nil)
	}
	nw.eng.Run()
	for id, f := range nw.hosts[0].Flows() {
		if !f.Done() {
			t.Fatalf("flow %d unfinished with unlimited scheduler", id)
		}
	}
}
