package host

import (
	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// recvState is the per-flow receiver: cumulative reassembly plus the
// NACK (go-back-N) or out-of-order buffer (IRN) machinery, and DCQCN's
// CNP rate limiter.
type recvState struct {
	rcvNxt   int64
	nackSent bool            // GBN: one NACK per out-of-sequence episode
	ooo      map[int64]int32 // IRN: buffered out-of-order chunks
	lastCNP  sim.Time
	hasCNP   bool
}

// handleData runs the receiver side: reassemble, acknowledge, and
// generate CNPs on ECN marks.
func (h *Host) handleData(p *packet.Packet, in *fabric.Port) {
	rs := h.recv[p.FlowID]
	if rs == nil {
		rs = &recvState{}
		if h.cfg.FlowCtl == IRN {
			rs.ooo = make(map[int64]int32)
		}
		h.recv[p.FlowID] = rs
	}
	now := h.eng.Now()

	// DCQCN CNP generation: at most one per CNPInterval per flow.
	if p.ECNCE && h.cfg.CNPInterval >= 0 {
		if !rs.hasCNP || now-rs.lastCNP >= h.cfg.CNPInterval {
			rs.hasCNP = true
			rs.lastCNP = now
			h.sendCtrl(in, p, packet.CNP, 0, 0)
		}
	}

	switch h.cfg.FlowCtl {
	case GoBackN:
		switch {
		case p.Seq == rs.rcvNxt:
			rs.rcvNxt += int64(p.PayloadLen)
			rs.nackSent = false
			h.sendAck(in, p, rs.rcvNxt)
			h.checkReadDone(p.FlowID, rs)
		case p.Seq > rs.rcvNxt:
			// Out of sequence: NACK once per episode, drop payload.
			if !rs.nackSent {
				rs.nackSent = true
				h.sendCtrl(in, p, packet.Nack, rs.rcvNxt, p.Seq)
			}
		default:
			// Duplicate of already-delivered data: re-ACK to resync.
			h.sendAck(in, p, rs.rcvNxt)
		}
	case IRN:
		switch {
		case p.Seq == rs.rcvNxt:
			rs.rcvNxt += int64(p.PayloadLen)
			// Absorb any now-contiguous buffered chunks.
			for {
				l, ok := rs.ooo[rs.rcvNxt]
				if !ok {
					break
				}
				delete(rs.ooo, rs.rcvNxt)
				rs.rcvNxt += int64(l)
			}
			h.sendAck(in, p, rs.rcvNxt)
			h.checkReadDone(p.FlowID, rs)
		case p.Seq > rs.rcvNxt:
			if _, dup := rs.ooo[p.Seq]; !dup {
				rs.ooo[p.Seq] = p.PayloadLen
			}
			// Selective ACK: cumulative position + the received seq.
			h.sendAck(in, p, rs.rcvNxt)
		default:
			h.sendAck(in, p, rs.rcvNxt)
		}
	}
}

// checkReadDone fires a pending RDMA READ completion once the read's
// response stream has fully arrived in order.
func (h *Host) checkReadDone(flowID int32, rs *recvState) {
	pr := h.reads[flowID]
	if pr == nil || rs.rcvNxt < pr.size {
		return
	}
	delete(h.reads, flowID)
	if pr.onDone != nil {
		pr.onDone()
	}
}

// sendAck emits an ACK for data packet p, echoing its timestamp, ECN
// mark and INT stack (§3.1: "the receiver copies all the meta-data
// recorded by the switches to the ACK").
func (h *Host) sendAck(via *fabric.Port, p *packet.Packet, cumSeq int64) {
	size := int32(packet.AckBytes)
	if h.cfg.INT {
		size += packet.INTOverhead
	}
	ack := &packet.Packet{
		ID:      pktID.Add(1),
		Type:    packet.Ack,
		FlowID:  p.FlowID,
		Src:     p.Dst,
		Dst:     p.Src,
		Prio:    fabric.PrioCtrl,
		Size:    size,
		AckSeq:  cumSeq,
		DataSeq: p.Seq,
		EchoTS:  p.SendTS,
		ECE:     p.ECNCE,
		INT:     p.INT,
	}
	via.Enqueue(ack, -1)
}

// sendCtrl emits a NACK or CNP toward the sender of p.
func (h *Host) sendCtrl(via *fabric.Port, p *packet.Packet, typ packet.Type, expSeq, gotSeq int64) {
	ctrl := &packet.Packet{
		ID:      pktID.Add(1),
		Type:    typ,
		FlowID:  p.FlowID,
		Src:     p.Dst,
		Dst:     p.Src,
		Prio:    fabric.PrioCtrl,
		Size:    packet.CtrlBytes,
		AckSeq:  expSeq,
		DataSeq: gotSeq,
		EchoTS:  p.SendTS,
	}
	via.Enqueue(ctrl, -1)
}
