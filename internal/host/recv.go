package host

import (
	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// recvState is the per-flow receiver: cumulative reassembly plus the
// NACK (go-back-N) or out-of-order buffer (IRN) machinery, and DCQCN's
// CNP rate limiter. It is freed as soon as the flow's final byte has
// been delivered in order (the sender marks the last chunk with
// FlowEnd), so long campaigns do not accumulate dead receiver state.
type recvState struct {
	rcvNxt   int64
	nackSent bool            // GBN: one NACK per out-of-sequence episode
	ooo      map[int64]int32 // IRN: buffered out-of-order chunks
	lastCNP  sim.Time
	hasCNP   bool
	endSeq   int64 // flow length, learned from the FlowEnd marker
	hasEnd   bool
}

// handleData runs the receiver side: reassemble, acknowledge, and
// generate CNPs on ECN marks. The data packet is terminally consumed
// here: it is either converted in place into its own ACK (which also
// reuses the INT stack without copying it) or returned to the pool.
//
//hpcclint:alloc-free
func (h *Host) handleData(p *packet.Packet, in *fabric.Port) {
	flowID := p.FlowID
	rs := h.recv[flowID]
	if rs == nil {
		if h.recentlyRecvDone(flowID) {
			// Straggler duplicate of a flow whose reassembly state was
			// already freed: the sender has (or is about to get) the
			// final cumulative ACK, so drop it rather than recreate —
			// and leak — receiver state or emit a spurious NACK.
			h.pool.Put(p)
			return
		}
		rs = &recvState{} //hpcclint:allow hotpathalloc -- first packet of a flow: per-flow setup, not per-packet
		if h.cfg.FlowCtl == IRN {
			rs.ooo = make(map[int64]int32) //hpcclint:allow hotpathalloc -- first packet of a flow: per-flow setup, not per-packet
		}
		h.recv[flowID] = rs
	}
	now := h.eng.Now()
	if p.FlowEnd {
		rs.hasEnd = true
		rs.endSeq = p.Seq + int64(p.PayloadLen)
	}

	// DCQCN CNP generation: at most one per CNPInterval per flow.
	if p.ECNCE && h.cfg.CNPInterval >= 0 {
		if !rs.hasCNP || now-rs.lastCNP >= h.cfg.CNPInterval {
			rs.hasCNP = true
			rs.lastCNP = now
			h.sendCtrl(in, p, packet.CNP, 0, 0)
		}
	}

	switch h.cfg.FlowCtl {
	case GoBackN:
		switch {
		case p.Seq == rs.rcvNxt:
			rs.rcvNxt += int64(p.PayloadLen)
			rs.nackSent = false
			h.sendAck(in, p, rs.rcvNxt)
			h.checkReadDone(flowID, rs)
		case p.Seq > rs.rcvNxt:
			// Out of sequence: NACK once per episode, drop payload.
			if !rs.nackSent {
				rs.nackSent = true
				h.sendCtrl(in, p, packet.Nack, rs.rcvNxt, p.Seq)
			}
			h.pool.Put(p)
		default:
			// Duplicate of already-delivered data: re-ACK to resync.
			h.sendAck(in, p, rs.rcvNxt)
		}
	case IRN:
		switch {
		case p.Seq == rs.rcvNxt:
			rs.rcvNxt += int64(p.PayloadLen)
			// Absorb any now-contiguous buffered chunks.
			for {
				l, ok := rs.ooo[rs.rcvNxt]
				if !ok {
					break
				}
				delete(rs.ooo, rs.rcvNxt)
				rs.rcvNxt += int64(l)
			}
			h.sendAck(in, p, rs.rcvNxt)
			h.checkReadDone(flowID, rs)
		case p.Seq > rs.rcvNxt:
			if _, dup := rs.ooo[p.Seq]; !dup {
				rs.ooo[p.Seq] = p.PayloadLen
			}
			// Selective ACK: cumulative position + the received seq.
			h.sendAck(in, p, rs.rcvNxt)
		default:
			h.sendAck(in, p, rs.rcvNxt)
		}
	}

	// End of flow: every byte up to the FlowEnd marker arrived in
	// order, so the reassembly state is dead. The flow ID goes into the
	// completed ring so straggler duplicates still in flight are
	// dropped above instead of resurrecting state; even past the ring's
	// horizon a resurrected episode is harmless for correctness — its
	// NACK/re-ACK lands on a sender flow that is already done (control
	// frames are never dropped and stay FIFO on the flow's path, so the
	// final cumulative ACK gets there first) and is ignored.
	if rs.hasEnd && rs.rcvNxt >= rs.endSeq {
		delete(h.recv, flowID)
		h.noteRecvDone(flowID)
	}
}

// checkReadDone fires a pending RDMA READ completion once the read's
// response stream has fully arrived in order.
func (h *Host) checkReadDone(flowID int32, rs *recvState) {
	pr := h.reads[flowID]
	if pr == nil || rs.rcvNxt < pr.size {
		return
	}
	delete(h.reads, flowID)
	if pr.onDone != nil {
		pr.onDone()
	}
}

// sendAck converts data packet p into its own ACK in place — flipping
// src/dst, echoing its timestamp, ECN mark and INT stack (§3.1: "the
// receiver copies all the meta-data recorded by the switches to the
// ACK") — and transmits it. Reusing the struct avoids both the ACK
// allocation and a 320-byte INT copy per data packet.
//
//hpcclint:alloc-free
func (h *Host) sendAck(via *fabric.Port, p *packet.Packet, cumSeq int64) {
	size := int32(packet.AckBytes)
	if h.cfg.INT {
		size += packet.INTOverhead
	}
	p.ID = pktID.Add(1)
	p.Type = packet.Ack
	p.Src, p.Dst = p.Dst, p.Src
	p.Prio = fabric.PrioCtrl
	p.Size = size
	p.AckSeq = cumSeq
	p.DataSeq = p.Seq
	p.EchoTS = p.SendTS
	p.ECE = p.ECNCE
	via.Enqueue(p, -1)
}

// sendCtrl emits a NACK or CNP toward the sender of p.
func (h *Host) sendCtrl(via *fabric.Port, p *packet.Packet, typ packet.Type, expSeq, gotSeq int64) {
	ctrl := h.pool.Get()
	ctrl.ID = pktID.Add(1)
	ctrl.Type = typ
	ctrl.FlowID = p.FlowID
	ctrl.Src = p.Dst
	ctrl.Dst = p.Src
	ctrl.Prio = fabric.PrioCtrl
	ctrl.Size = packet.CtrlBytes
	ctrl.AckSeq = expSeq
	ctrl.DataSeq = gotSeq
	ctrl.EchoTS = p.SendTS
	via.Enqueue(ctrl, -1)
}
