// Package host models the RDMA NIC endpoints: per-flow queue pairs with
// sending windows and packet pacing (§3.2), receiver-side ACK/NACK/CNP
// generation, and the two loss-recovery modes the paper evaluates —
// go-back-N (RoCEv2 default) and IRN-style selective repeat (§5.3,
// Figure 12).
package host

import (
	"fmt"

	"hpcc/internal/cc"
	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// FlowControl selects the loss-recovery scheme.
type FlowControl int

const (
	// GoBackN is RoCEv2's default: an out-of-sequence arrival triggers
	// a NACK and the sender rewinds to the lost packet.
	GoBackN FlowControl = iota
	// IRN is selective repeat with a fixed one-BDP inflight cap, per
	// Mittal et al. (SIGCOMM 2018) as used in Figure 12.
	IRN
)

func (fc FlowControl) String() string {
	if fc == IRN {
		return "IRN"
	}
	return "GBN"
}

// Config sets host-wide transport behaviour.
type Config struct {
	// CC builds each new flow's congestion-control instance.
	CC cc.Factory
	// FlowCtl selects go-back-N or IRN recovery.
	FlowCtl FlowControl
	// MTU is the data payload size per packet; default 1000 (§5.1).
	MTU int
	// INT adds the 42-byte INT header to data packets and echoes INT
	// records in ACKs (required by HPCC; off for the baselines).
	INT bool
	// BaseRTT is the network-wide base RTT T handed to CC (§3.2).
	BaseRTT sim.Time
	// CNPInterval is the minimum gap between CNPs per flow at the
	// receiver (DCQCN's NP state machine); default 50 µs. Negative
	// disables CNP generation.
	CNPInterval sim.Time
	// RTO is the retransmission-timeout backstop for lossy modes;
	// default 1 ms.
	RTO sim.Time
	// SchedulerEngines models the NIC flow-scheduler clock engines of
	// §4.3: each engine sustains up to 50 concurrent flows at line
	// rate (the FPGA prototype has six). Flows beyond the capacity
	// wait FIFO until a slot frees. Zero means unlimited (ASIC-class).
	SchedulerEngines int
	// CompletedWindow, when positive, bounds the host's memory over
	// long campaigns: at most this many completed sender flows are
	// retained (a ring of recent completions for post-run inspection);
	// older ones are folded into aggregate counters (EvictedFlows) and
	// dropped from the flow map, so the map stops growing with
	// campaign length. Zero retains every flow.
	CompletedWindow int
	// Seed feeds per-flow deterministic randomness.
	Seed int64
	// Pool recycles packet structs across the host's send and receive
	// paths. Topology builders share one pool per network; nil gets a
	// private pool.
	Pool *packet.Pool
}

// FlowsPerEngine is the per-clock-engine concurrent-flow capacity of
// the FPGA prototype (§4.3).
const FlowsPerEngine = 50

func (c *Config) normalize() {
	if c.MTU == 0 {
		c.MTU = packet.DefaultMTU
	}
	if c.CNPInterval == 0 {
		c.CNPInterval = 50 * sim.Microsecond
	}
	if c.RTO == 0 {
		c.RTO = sim.Millisecond
	}
	if c.BaseRTT == 0 {
		c.BaseRTT = 10 * sim.Microsecond
	}
}

// Host is a server endpoint with one or more NIC ports.
type Host struct {
	id    fabric.NodeID   //hpcclint:nosnap immutable identity
	eng   *sim.Engine     //hpcclint:nosnap immutable wiring
	cfg   Config          //hpcclint:nosnap immutable config
	pool  *packet.Pool    //hpcclint:nosnap shared pool checkpointed as its own component
	ports []*fabric.Port  //hpcclint:nosnap immutable wiring; each port checkpoints itself
	flows map[int32]*Flow //hpcclint:nosnap membership journaled via jAdded/jRemoved; live values snapshotted via liveList
	recv  map[int32]*recvState

	// RDMA READ requester state: flow ID -> (expected bytes, callback).
	reads map[int32]*pendingRead

	// Flow-scheduler engine limit (§4.3): active sender flows beyond
	// the clock-engine capacity wait here in FIFO order.
	activeFlows int
	waiting     []*Flow

	// wrapFree recycles the cc.Env.Schedule trampolines so timer-driven
	// CC schemes (DCQCN's per-flow clocks) do not allocate per tick.
	wrapFree []*schedWrap

	// doneRing remembers the most recently completed inbound flows so a
	// straggler duplicate (e.g. an RTO retransmission that was still in
	// flight when the original copy finished the flow) is dropped
	// instead of recreating — and then leaking — a recvState. Flow IDs
	// are never reused network-wide, so a hit always means straggler.
	doneRing [doneRingSize]int32
	doneHead int

	// Completed-flow retention ring (Config.CompletedWindow): the IDs
	// of the most recent completions, plus aggregate counters for the
	// flows already evicted from the map.
	retired     []int32
	retiredHead int
	evicted     int
	evictedPkts uint64

	// Speculative-execution support (see checkpoint.go). liveList
	// tracks the not-yet-done sender flows so a checkpoint walks live
	// state instead of the whole retained-flow map; liveWraps tracks
	// in-flight CC trampolines so their (flow, callback) pairs can be
	// restored; the journals record flow-map membership changes since
	// the last checkpoint so a rollback undoes insertions and evictions
	// in O(changes).
	liveList  []*Flow
	liveWraps []*schedWrap
	journal   bool //hpcclint:nosnap checkpoint-mode flag flipped by Checkpoint itself, not simulated state
	jAdded    []*Flow
	jRemoved  []*Flow
	snap      *hostSnap
}

// doneRingSize bounds the completed-inbound-flow memory (power of two).
const doneRingSize = 64

func (h *Host) noteRecvDone(flowID int32) {
	h.doneRing[h.doneHead&(doneRingSize-1)] = flowID
	h.doneHead++
}

// recentlyRecvDone reports whether flowID completed within the last
// doneRingSize inbound completions. Only consulted on the per-flow slow
// path (no receiver state yet). Flow ID 0 is indistinguishable from an
// empty slot and is never treated as recently done.
func (h *Host) recentlyRecvDone(flowID int32) bool {
	if flowID == 0 {
		return false
	}
	for _, id := range h.doneRing {
		if id == flowID {
			return true
		}
	}
	return false
}

// schedWrap adapts one cc.Env.Schedule call onto the engine: it guards
// the callback behind the flow's liveness and follows it with trySend,
// like the old per-call closure did, but the wrap (and its bound run
// closure) returns to the host's free list on firing.
type schedWrap struct {
	f   *Flow
	fn  func()
	run func()
	idx int // position in the host's liveWraps list; -1 when free
}

func (h *Host) scheduleCC(f *Flow, d sim.Time, fn func()) {
	var w *schedWrap
	if n := len(h.wrapFree); n > 0 {
		w = h.wrapFree[n-1]
		h.wrapFree = h.wrapFree[:n-1]
	} else {
		w = &schedWrap{}
		w.run = func() {
			f, fn := w.f, w.fn
			w.f, w.fn = nil, nil
			h.unlinkWrap(w)
			h.wrapFree = append(h.wrapFree, w)
			if f.alive {
				fn()
				f.trySend()
			}
		}
	}
	w.f, w.fn = f, fn
	w.idx = len(h.liveWraps)
	h.liveWraps = append(h.liveWraps, w)
	h.eng.After(d, w.run)
}

// unlinkWrap removes a firing trampoline from the live list (swap
// delete; order is irrelevant, only membership matters for snapshots).
func (h *Host) unlinkWrap(w *schedWrap) {
	last := len(h.liveWraps) - 1
	lw := h.liveWraps[last]
	h.liveWraps[w.idx] = lw
	lw.idx = w.idx
	h.liveWraps[last] = nil
	h.liveWraps = h.liveWraps[:last]
	w.idx = -1
}

// unlinkFlow removes a finished flow from the live list (swap delete).
func (h *Host) unlinkFlow(f *Flow) {
	last := len(h.liveList) - 1
	lf := h.liveList[last]
	h.liveList[f.liveIdx] = lf
	lf.liveIdx = f.liveIdx
	h.liveList[last] = nil
	h.liveList = h.liveList[:last]
	f.liveIdx = -1
}

type pendingRead struct {
	size   int64
	onDone func()
}

// New creates a host. Ports are attached afterwards (via topology
// builders) with AttachPort.
func New(eng *sim.Engine, id fabric.NodeID, cfg Config) *Host {
	cfg.normalize()
	pool := cfg.Pool
	if pool == nil {
		pool = packet.NewPool()
	}
	return &Host{
		id:    id,
		eng:   eng,
		cfg:   cfg,
		pool:  pool,
		flows: make(map[int32]*Flow),
		recv:  make(map[int32]*recvState),
		reads: make(map[int32]*pendingRead),
	}
}

// ID implements fabric.Node.
func (h *Host) ID() fabric.NodeID { return h.id }

// Rebind moves the host's event scheduling onto another engine and
// gives it a shard-local packet pool. Part of partitioning a built
// network across shard engines; must happen before any flow starts
// (flows capture h.eng through their timers and CC environment).
func (h *Host) Rebind(eng *sim.Engine, pool *packet.Pool) {
	if len(h.flows) > 0 {
		panic("host: Rebind with flows started")
	}
	h.eng = eng
	if pool != nil {
		h.pool = pool
	}
}

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// AttachPort registers a NIC port created by fabric.Connect; its index
// must match the attachment order.
func (h *Host) AttachPort(p *fabric.Port) {
	if p.Index() != len(h.ports) {
		panic("host: port attached out of order")
	}
	h.ports = append(h.ports, p)
}

// Ports returns the host's NIC ports.
func (h *Host) Ports() []*fabric.Port { return h.ports }

// OnDequeue implements fabric.Node; hosts need no dequeue-time hooks.
func (h *Host) OnDequeue(p *packet.Packet, ingress int, from *fabric.Port) {}

// HandleArrival implements fabric.Node: dispatch by frame type. Every
// branch but Data terminally consumes the frame here, so it returns to
// the pool; a data packet is either recycled in place as its own ACK or
// released inside handleData.
func (h *Host) HandleArrival(p *packet.Packet, in *fabric.Port) {
	switch p.Type {
	case packet.PFC:
		in.SetPaused(p.PFCPrio, p.PFCPause)
		h.pool.Put(p)
	case packet.Data:
		h.handleData(p, in)
	case packet.Ack:
		if f := h.flows[p.FlowID]; f != nil {
			f.handleAck(p)
		}
		h.pool.Put(p)
	case packet.Nack:
		if f := h.flows[p.FlowID]; f != nil {
			f.handleNack(p)
		}
		h.pool.Put(p)
	case packet.CNP:
		if f := h.flows[p.FlowID]; f != nil && !f.done {
			f.alg.OnCNP(h.eng.Now())
			f.trySend()
		}
		h.pool.Put(p)
	case packet.ReadReq:
		// RDMA READ responder: stream the requested bytes back as a
		// plain data flow owned by this host. READ flow IDs are
		// negative, so the multi-homing hash must use the magnitude —
		// a negative remainder would index out of range.
		port := int(p.FlowID) % len(h.ports)
		if port < 0 {
			port = -port
		}
		h.StartFlow(p.FlowID, fabric.NodeID(p.Src), p.Seq, port, nil)
		h.pool.Put(p)
	default:
		panic(fmt.Sprintf("host: unknown packet type %v", p.Type))
	}
}

// StartFlow creates and starts a sender flow of size bytes toward dst,
// bound to the local port portIdx. id must be unique network-wide.
// onDone, if non-nil, fires at completion (all bytes cumulatively
// ACKed). If the flow-scheduler engines are saturated, the flow queues
// until a slot frees (§4.3).
func (h *Host) StartFlow(id int32, dst fabric.NodeID, size int64, portIdx int, onDone func(*Flow)) *Flow {
	if _, dup := h.flows[id]; dup {
		panic(fmt.Sprintf("host: duplicate flow id %d", id))
	}
	port := h.ports[portIdx]
	f := &Flow{
		ID:      id,
		host:    h,
		dst:     dst,
		size:    size,
		port:    port,
		started: h.eng.Now(),
		onDone:  onDone,
		alive:   true,
	}
	if h.cfg.FlowCtl == IRN {
		f.sacked = make(map[int64]int32)
		f.rtx = make(map[int64]int32)
		env := cc.Env{LineRate: port.Rate(), BaseRTT: h.cfg.BaseRTT}
		f.irnCap = env.BDP()
	}
	f.liveIdx = len(h.liveList)
	h.liveList = append(h.liveList, f)
	if h.journal {
		h.jAdded = append(h.jAdded, f)
	}
	f.initTimers()
	f.alg = h.cfg.CC()
	f.alg.Init(cc.Env{
		Now:      h.eng.Now,
		Schedule: func(d sim.Time, fn func()) { h.scheduleCC(f, d, fn) },
		LineRate: port.Rate(),
		BaseRTT:  h.cfg.BaseRTT,
		MTU:      h.cfg.MTU,
		Seed:     h.cfg.Seed ^ int64(id),
	})
	h.flows[id] = f
	if size <= 0 {
		// Degenerate zero-byte transfer: complete immediately (after
		// the current event, so the caller sees the handle first).
		h.eng.After(0, func() { f.complete(h.eng.Now()) }) //hpcclint:allow eventkey -- zero-byte completion fires on the flow's own host engine; a host lives on exactly one shard, so the tie class is host-local and cannot differ between 1 and N shards
		return f
	}
	if cap := h.schedCapacity(); cap > 0 && h.activeFlows >= cap {
		f.pending = true
		h.waiting = append(h.waiting, f)
		return f
	}
	h.admit(f)
	return f
}

// admit grants f a scheduler slot and starts transmission.
func (h *Host) admit(f *Flow) {
	h.activeFlows++
	f.admitted = true
	f.armRTO()
	f.trySend()
}

func (h *Host) schedCapacity() int {
	if h.cfg.SchedulerEngines <= 0 {
		return 0
	}
	return h.cfg.SchedulerEngines * FlowsPerEngine
}

// flowFinished releases the flow's scheduler slot and admits the next
// waiting flow, if any.
func (h *Host) flowFinished() {
	if h.schedCapacity() == 0 {
		return
	}
	h.activeFlows--
	for len(h.waiting) > 0 && h.activeFlows < h.schedCapacity() {
		next := h.waiting[0]
		h.waiting = h.waiting[1:]
		if next.done {
			continue // aborted while waiting
		}
		next.pending = false
		next.started = h.eng.Now() // queueing delay excluded from FCT
		h.admit(next)
	}
}

// Read issues an RDMA READ: the responder streams size bytes back to
// this host as flow id. onDone fires here (at the requester) once all
// bytes have arrived in order. The request rides the control class.
func (h *Host) Read(id int32, responder fabric.NodeID, size int64, portIdx int, onDone func()) {
	h.reads[id] = &pendingRead{size: size, onDone: onDone}
	req := h.pool.Get()
	req.ID = pktID.Add(1)
	req.Type = packet.ReadReq
	req.FlowID = id
	req.Src = int32(h.id)
	req.Dst = int32(responder)
	req.Prio = fabric.PrioCtrl
	req.Size = packet.CtrlBytes
	req.Seq = size
	h.ports[portIdx].Enqueue(req, -1)
}

// Flows returns the host's sender flows (live and retained completed
// ones; with Config.CompletedWindow set, older completions are evicted
// into the EvictedFlows aggregate).
func (h *Host) Flows() map[int32]*Flow { return h.flows }

// EvictedFlows returns how many completed flows were evicted from the
// flow map under Config.CompletedWindow, and their total data packets
// sent (retransmissions included) — so whole-run accounting stays exact
// under bounded memory.
func (h *Host) EvictedFlows() (flows int, pkts uint64) { return h.evicted, h.evictedPkts }

// noteFlowDone records a completion in the retention ring and evicts
// the oldest retained completion once the window is full. Called after
// the flow's onDone observers ran; an evicted flow's stats are folded
// into the aggregate counters first, so nothing is lost.
func (h *Host) noteFlowDone(f *Flow) {
	w := h.cfg.CompletedWindow
	if w <= 0 {
		return
	}
	if len(h.retired) < w {
		h.retired = append(h.retired, f.ID) //hpcclint:allow hotpathalloc -- retention ring fills once up to CompletedWindow, then recycles slots in place
		return
	}
	old := h.retired[h.retiredHead]
	h.retired[h.retiredHead] = f.ID
	h.retiredHead++
	if h.retiredHead == len(h.retired) {
		h.retiredHead = 0
	}
	if g := h.flows[old]; g != nil && g.done {
		h.evicted++
		h.evictedPkts += g.pktsSent
		if h.journal {
			h.jRemoved = append(h.jRemoved, g) //hpcclint:allow hotpathalloc -- membership journal grows per eviction inside a speculation epoch, amortized and truncated at each checkpoint
		}
		delete(h.flows, old)
	}
}
