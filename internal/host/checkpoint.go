package host

import "hpcc/internal/sim"

// This file implements the sim.Checkpointable contract for hosts: at a
// speculation barrier the host snapshots its mutable transport state —
// live sender flows (with their CC instances and IRN recovery maps),
// receiver reassembly state, pending RDMA READs, the flow-scheduler
// admission queue, in-flight CC trampolines and the completed-flow
// retention bookkeeping — and restores it all in place on rollback.
//
// The cost is proportional to *live* state, not campaign length: done
// flows are immutable (every handler is gated on the flow being live),
// so the checkpoint walks liveList instead of the whole retained-flow
// map, and flow-map membership changes since the checkpoint are undone
// through the jAdded/jRemoved journals rather than by copying the map.
//
// Like the fabric layer, restores go through the original pointers
// (*f = snapshot value), so every live reference — timer callbacks,
// trampoline bindings, onDone closures — survives rollback untouched.
// Map-typed fields need one extra step: the value copy preserves the
// map *pointer* but not its contents, so key/value pairs are dumped
// into a shared buffer at checkpoint and the (pointer-identical) map is
// cleared and repopulated on rollback.

// seqKV is one entry of an IRN sacked/rtx map or a receiver ooo map.
type seqKV struct {
	k int64
	v int32
}

// flowSnap is one live sender flow at checkpoint time.
type flowSnap struct {
	ptr                *Flow
	val                Flow
	sackedOff, sackedN int
	rtxOff, rtxN       int
}

// recvSnap is one live receiver reassembly state at checkpoint time.
type recvSnap struct {
	id           int32
	ptr          *recvState
	val          recvState
	oooOff, oooN int
}

// readSnap is one pending RDMA READ at checkpoint time.
type readSnap struct {
	id  int32
	ptr *pendingRead
	val pendingRead
}

// wrapSnap is one in-flight CC trampoline's binding at checkpoint time.
type wrapSnap struct {
	w  *schedWrap
	f  *Flow
	fn func()
}

type hostSnap struct {
	flows []flowSnap
	live  []*Flow
	recvs []recvSnap
	reads []readSnap
	kvs   []seqKV

	activeFlows int
	waiting     []*Flow

	wraps    []wrapSnap
	wrapFree []*schedWrap

	doneRing    [doneRingSize]int32
	doneHead    int
	retired     []int32
	retiredHead int
	evicted     int
	evictedPkts uint64
}

// dumpKVs appends m's entries to buf, returning their (offset, count).
func dumpKVs(buf *[]seqKV, m map[int64]int32) (off, n int) {
	off = len(*buf)
	//hpcclint:allow determinism -- snapshot dump restored via restoreKVs into a map; entry order never observed
	for k, v := range m {
		*buf = append(*buf, seqKV{k, v})
	}
	return off, len(*buf) - off
}

// restoreKVs resets m to exactly kvs[off : off+n].
func restoreKVs(m map[int64]int32, kvs []seqKV, off, n int) {
	if m == nil {
		return
	}
	clear(m)
	for _, kv := range kvs[off : off+n] {
		m[kv.k] = kv.v
	}
}

// Checkpoint captures the host's mutable state, overwriting the
// previous checkpoint, and turns on membership journaling so Rollback
// can undo flow-map insertions and evictions in O(changes).
func (h *Host) Checkpoint() {
	s := h.snap
	if s == nil {
		s = &hostSnap{}
		h.snap = s
	}
	h.journal = true
	h.jAdded = h.jAdded[:0]
	h.jRemoved = h.jRemoved[:0]

	s.kvs = s.kvs[:0]
	s.flows = s.flows[:0]
	for _, f := range h.liveList {
		//hpcclint:alias sacked/rtx are deep-copied via dumpKVs below and restored through the pointer-identical maps; ackEv.Hops is per-ACK scratch, always nil between events
		fs := flowSnap{ptr: f, val: *f}
		fs.sackedOff, fs.sackedN = dumpKVs(&s.kvs, f.sacked)
		fs.rtxOff, fs.rtxN = dumpKVs(&s.kvs, f.rtx)
		if c, ok := f.alg.(sim.Checkpointable); ok {
			c.Checkpoint()
		}
		s.flows = append(s.flows, fs)
	}
	s.live = append(s.live[:0], h.liveList...)

	s.recvs = s.recvs[:0]
	//hpcclint:allow determinism -- snapshot restored back through per-entry pointers; order never observed
	for id, rs := range h.recv {
		//hpcclint:alias ooo is deep-copied via dumpKVs below and restored through the pointer-identical map
		r := recvSnap{id: id, ptr: rs, val: *rs}
		r.oooOff, r.oooN = dumpKVs(&s.kvs, rs.ooo)
		s.recvs = append(s.recvs, r)
	}
	s.reads = s.reads[:0]
	//hpcclint:allow determinism -- snapshot restored back through per-entry pointers; order never observed
	for id, pr := range h.reads {
		s.reads = append(s.reads, readSnap{id: id, ptr: pr, val: *pr})
	}

	s.activeFlows = h.activeFlows
	s.waiting = append(s.waiting[:0], h.waiting...)

	s.wraps = s.wraps[:0]
	for _, w := range h.liveWraps {
		s.wraps = append(s.wraps, wrapSnap{w: w, f: w.f, fn: w.fn}) //hpcclint:alias journals the trampoline binding only; Rollback writes f/fn/idx back through w, and the Flow value itself is restored by the flowSnap pass
	}
	s.wrapFree = append(s.wrapFree[:0], h.wrapFree...)

	s.doneRing = h.doneRing
	s.doneHead = h.doneHead
	s.retired = append(s.retired[:0], h.retired...)
	s.retiredHead = h.retiredHead
	s.evicted = h.evicted
	s.evictedPkts = h.evictedPkts
}

// Rollback restores the last Checkpoint in place.
func (h *Host) Rollback() {
	s := h.snap
	if s == nil {
		panic("host: Rollback without Checkpoint")
	}
	// Undo flow-map membership changes. Reinsert evictions before
	// deleting insertions: a flow both started and evicted inside the
	// rolled-back epoch must end up absent.
	for _, g := range h.jRemoved {
		h.flows[g.ID] = g
	}
	for _, f := range h.jAdded {
		delete(h.flows, f.ID)
	}
	h.jAdded = h.jAdded[:0]
	h.jRemoved = h.jRemoved[:0]

	for i := range s.flows {
		fs := &s.flows[i]
		f := fs.ptr
		*f = fs.val
		restoreKVs(f.sacked, s.kvs, fs.sackedOff, fs.sackedN)
		restoreKVs(f.rtx, s.kvs, fs.rtxOff, fs.rtxN)
		if c, ok := f.alg.(sim.Checkpointable); ok {
			c.Rollback()
		}
	}
	h.liveList = append(h.liveList[:0], s.live...)
	for i, f := range h.liveList {
		f.liveIdx = i
	}

	clear(h.recv)
	for i := range s.recvs {
		r := &s.recvs[i]
		*r.ptr = r.val
		restoreKVs(r.ptr.ooo, s.kvs, r.oooOff, r.oooN)
		h.recv[r.id] = r.ptr
	}
	clear(h.reads)
	for i := range s.reads {
		r := &s.reads[i]
		*r.ptr = r.val
		h.reads[r.id] = r.ptr
	}

	h.activeFlows = s.activeFlows
	h.waiting = append(h.waiting[:0], s.waiting...)

	h.liveWraps = h.liveWraps[:0]
	for i := range s.wraps {
		ws := &s.wraps[i]
		ws.w.f, ws.w.fn = ws.f, ws.fn
		ws.w.idx = i
		h.liveWraps = append(h.liveWraps, ws.w)
	}
	h.wrapFree = append(h.wrapFree[:0], s.wrapFree...)

	h.doneRing = s.doneRing
	h.doneHead = s.doneHead
	h.retired = append(h.retired[:0], s.retired...)
	h.retiredHead = s.retiredHead
	h.evicted = s.evicted
	h.evictedPkts = s.evictedPkts
}
