package host

import (
	"testing"

	"hpcc/internal/fabric"
	"hpcc/internal/sim"
)

// With CompletedWindow set, the per-host flow map must plateau at the
// window while a long run keeps completing flows — the bounded-memory
// contract for multi-minute campaigns — and the evicted aggregate must
// keep whole-run accounting exact.
func TestCompletedWindowPlateaus(t *testing.T) {
	hcfg := hpccConfig()
	hcfg.CompletedWindow = 16
	nw := buildStar(2, hcfg, fabric.SwitchConfig{PFCEnabled: true, INTEnabled: true}, line100, sim.Microsecond)

	const rounds = 400
	maxLive := 0
	done := 0
	var sentPkts uint64
	var launch func(i int)
	launch = func(i int) {
		if i == rounds {
			return
		}
		nw.start(0, 1, 3_000, func(f *Flow) {
			done++
			sentPkts += f.PacketsSent()
			if n := len(nw.hosts[0].Flows()); n > maxLive {
				maxLive = n
			}
			launch(i + 1)
		})
	}
	launch(0)
	nw.eng.Run()

	if done != rounds {
		t.Fatalf("completed %d flows, want %d", done, rounds)
	}
	// The map may briefly hold window+live flows; it must not grow with
	// the round count.
	if maxLive > hcfg.CompletedWindow+2 {
		t.Fatalf("flow map grew to %d entries (window %d): memory does not plateau",
			maxLive, hcfg.CompletedWindow)
	}
	h := nw.hosts[0]
	evicted, evictedPkts := h.EvictedFlows()
	if evicted != rounds-len(h.Flows()) {
		t.Fatalf("evicted %d, retained %d, total %d: accounting mismatch",
			evicted, len(h.Flows()), rounds)
	}
	var retainedPkts uint64
	for _, f := range h.Flows() {
		retainedPkts += f.PacketsSent()
	}
	if evictedPkts+retainedPkts != sentPkts {
		t.Fatalf("evicted %d + retained %d packets != sent %d",
			evictedPkts, retainedPkts, sentPkts)
	}
}

// Without the window every flow is retained (the historical default).
func TestCompletedWindowOffRetainsAll(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{PFCEnabled: true, INTEnabled: true}, line100, sim.Microsecond)
	const rounds = 50
	var launch func(i int)
	launch = func(i int) {
		if i == rounds {
			return
		}
		nw.start(0, 1, 2_000, func(*Flow) { launch(i + 1) })
	}
	launch(0)
	nw.eng.Run()
	if n := len(nw.hosts[0].Flows()); n != rounds {
		t.Fatalf("retained %d flows, want all %d", n, rounds)
	}
	if evicted, _ := nw.hosts[0].EvictedFlows(); evicted != 0 {
		t.Fatalf("evicted %d flows with the window off", evicted)
	}
}
