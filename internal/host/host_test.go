package host

import (
	"math"
	"testing"
	"testing/quick"

	"hpcc/internal/cc"
	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// mockCC is a scriptable algorithm for transport-level tests.
type mockCC struct {
	w    float64
	rate float64
	env  cc.Env

	acks    int
	cnps    int
	lastEv  cc.AckEvent
	rttSeen []sim.Time
}

func (m *mockCC) Name() string     { return "mock" }
func (m *mockCC) Init(env cc.Env)  { m.env = env }
func (m *mockCC) OnCNP(sim.Time)   { m.cnps++ }
func (m *mockCC) RateBps() float64 { return m.rate }
func (m *mockCC) WindowBytes() float64 {
	if m.w <= 0 {
		return cc.Unlimited()
	}
	return m.w
}
func (m *mockCC) OnAck(ev *cc.AckEvent) {
	m.acks++
	m.lastEv = *ev
	m.rttSeen = append(m.rttSeen, ev.RTT)
}

// net is a star test network: n hosts around one switch.
type net struct {
	eng    *sim.Engine
	sw     *fabric.Switch
	hosts  []*Host
	nextID int32
}

// buildStar wires n hosts to a single switch with hostRate links and
// the given one-way delay.
func buildStar(n int, hcfg Config, scfg fabric.SwitchConfig, hostRate sim.Rate, delay sim.Time) *net {
	eng := sim.NewEngine()
	sw := fabric.NewSwitch(eng, 1000, scfg)
	nw := &net{eng: eng, sw: sw}
	for i := 0; i < n; i++ {
		h := New(eng, fabric.NodeID(i+1), hcfg)
		hp, sp := fabric.Connect(eng, h, sw, 0, i, hostRate, delay)
		h.AttachPort(hp)
		sw.AttachPort(sp)
		sw.InstallRoute(h.ID(), []int{i})
		nw.hosts = append(nw.hosts, h)
	}
	return nw
}

func (nw *net) start(src, dst int, size int64, onDone func(*Flow)) *Flow {
	nw.nextID++
	return nw.hosts[src].StartFlow(nw.nextID, nw.hosts[dst].ID(), size, 0, onDone)
}

const line100 = 100 * sim.Gbps

func hpccConfig() Config {
	return Config{
		CC:      hpcccc.New(hpcccc.Config{}),
		INT:     true,
		BaseRTT: 10 * sim.Microsecond,
	}
}

func TestFlowCompletesHPCC(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	var fct sim.Time
	f := nw.start(0, 1, 1<<20, func(f *Flow) { fct = f.FCT() })
	nw.eng.Run()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if f.Acked() != 1<<20 {
		t.Fatalf("acked = %d, want %d", f.Acked(), 1<<20)
	}
	// Ideal: 1049 packets × 1106 B at 100G ≈ 93 µs serialization plus a
	// few µs of RTT; HPCC paces at ≥ 95% of line. Anything within
	// [90µs, 160µs] is sane.
	if fct < 90*sim.Microsecond || fct > 160*sim.Microsecond {
		t.Fatalf("FCT = %v, expected ≈ 95-120µs", fct)
	}
	if nw.sw.Drops() != 0 {
		t.Fatalf("drops = %d", nw.sw.Drops())
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	// Window of exactly 4 packets: the sender must never have more than
	// 4×1064 unacked wire bytes out.
	mock := &mockCC{w: 4 * 1064, rate: float64(line100)}
	cfg := Config{CC: func() cc.Algorithm { return mock }, BaseRTT: 10 * sim.Microsecond}
	nw := buildStar(2, cfg, fabric.SwitchConfig{}, line100, 10*sim.Microsecond)
	f := nw.start(0, 1, 200_000, nil)

	maxInflight := int64(0)
	var sample func()
	sample = func() {
		if infl := f.inflight(); infl > maxInflight {
			maxInflight = infl
		}
		if !f.Done() {
			nw.eng.After(sim.Microsecond, sample)
		}
	}
	nw.eng.After(0, sample)
	nw.eng.Run()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if maxInflight > 5*1000 {
		t.Fatalf("inflight reached %d bytes, window is %d", maxInflight, 4*1064)
	}
}

func TestPacingHalvesThroughput(t *testing.T) {
	mock := &mockCC{w: 0, rate: float64(line100) / 2}
	cfg := Config{CC: func() cc.Algorithm { return mock }, BaseRTT: 10 * sim.Microsecond}
	nw := buildStar(2, cfg, fabric.SwitchConfig{}, line100, sim.Microsecond)
	var fct sim.Time
	nw.start(0, 1, 1_000_000, func(f *Flow) { fct = f.FCT() })
	nw.eng.Run()
	// 1000 packets × 1064 B at 50 Gbps ≈ 170 µs.
	want := (50 * sim.Gbps).TxTime(1_064_000)
	if fct < want || fct > want+20*sim.Microsecond {
		t.Fatalf("FCT = %v, want ≈ %v (paced at half line)", fct, want)
	}
}

func TestRTTMeasurement(t *testing.T) {
	mock := &mockCC{w: 0, rate: float64(line100)}
	cfg := Config{CC: func() cc.Algorithm { return mock }, BaseRTT: 10 * sim.Microsecond}
	// Two 5µs links each way → base RTT 20µs + serialization.
	nw := buildStar(2, cfg, fabric.SwitchConfig{}, line100, 5*sim.Microsecond)
	nw.start(0, 1, 10_000, nil)
	nw.eng.Run()
	if len(mock.rttSeen) == 0 {
		t.Fatal("no RTT samples")
	}
	first := mock.rttSeen[0]
	if first < 20*sim.Microsecond || first > 22*sim.Microsecond {
		t.Fatalf("RTT = %v, want ≈ 20-21µs", first)
	}
}

func TestAckEventFields(t *testing.T) {
	mock := &mockCC{w: 0, rate: float64(line100)}
	cfg := Config{CC: func() cc.Algorithm { return mock }, INT: true, BaseRTT: 10 * sim.Microsecond}
	nw := buildStar(2, cfg, fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	nw.start(0, 1, 5_000, nil)
	nw.eng.Run()
	if mock.acks != 5 {
		t.Fatalf("acks = %d, want 5 (one per packet)", mock.acks)
	}
	ev := mock.lastEv
	if ev.AckSeq != 5000 {
		t.Fatalf("final AckSeq = %d", ev.AckSeq)
	}
	if len(ev.Hops) != 1 {
		t.Fatalf("INT hops = %d, want 1", len(ev.Hops))
	}
	if ev.Hops[0].B != line100 {
		t.Fatalf("hop B = %v", ev.Hops[0].B)
	}
}

func TestGoBackNRecovery(t *testing.T) {
	// Overload a 25G egress at 2× line rate with a tiny lossy buffer:
	// drops force NACK-driven rewinds, yet the flow must complete with
	// every byte delivered in order.
	mock := &mockCC{w: 0, rate: float64(50 * sim.Gbps)}
	cfg := Config{CC: func() cc.Algorithm { return mock }, BaseRTT: 10 * sim.Microsecond, RTO: sim.Millisecond}
	scfg := fabric.SwitchConfig{BufferBytes: 64 << 10, PFCEnabled: false, LossyEgressAlpha: 1}
	eng := sim.NewEngine()
	sw := fabric.NewSwitch(eng, 1000, scfg)
	a := New(eng, 1, cfg)
	b := New(eng, 2, cfg)
	ap, sa := fabric.Connect(eng, a, sw, 0, 0, 100*sim.Gbps, sim.Microsecond)
	a.AttachPort(ap)
	sw.AttachPort(sa)
	sb, bp := fabric.Connect(eng, sw, b, 1, 0, 25*sim.Gbps, sim.Microsecond)
	sw.AttachPort(sb)
	b.AttachPort(bp)
	sw.InstallRoute(a.ID(), []int{0})
	sw.InstallRoute(b.ID(), []int{1})

	f := a.StartFlow(1, b.ID(), 2_000_000, 0, nil)
	eng.Run()
	if !f.Done() {
		t.Fatal("flow did not complete despite GBN recovery")
	}
	if sw.Drops() == 0 {
		t.Fatal("test needs drops to exercise recovery")
	}
	if f.Retransmits() == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if f.Acked() != 2_000_000 {
		t.Fatalf("sender saw %d bytes acked, want 2000000", f.Acked())
	}
	// Delivery of the final byte frees the receiver's reassembly state.
	if b.recv[1] != nil {
		t.Fatalf("receiver state not freed at flow end: %+v", b.recv[1])
	}
}

func TestIRNRecovery(t *testing.T) {
	mock := &mockCC{w: 0, rate: float64(50 * sim.Gbps)}
	cfg := Config{CC: func() cc.Algorithm { return mock }, FlowCtl: IRN, BaseRTT: 10 * sim.Microsecond, RTO: sim.Millisecond}
	scfg := fabric.SwitchConfig{BufferBytes: 64 << 10, PFCEnabled: false, LossyEgressAlpha: 1}
	eng := sim.NewEngine()
	sw := fabric.NewSwitch(eng, 1000, scfg)
	a := New(eng, 1, cfg)
	b := New(eng, 2, cfg)
	ap, sa := fabric.Connect(eng, a, sw, 0, 0, 100*sim.Gbps, sim.Microsecond)
	a.AttachPort(ap)
	sw.AttachPort(sa)
	sb, bp := fabric.Connect(eng, sw, b, 1, 0, 25*sim.Gbps, sim.Microsecond)
	sw.AttachPort(sb)
	b.AttachPort(bp)
	sw.InstallRoute(a.ID(), []int{0})
	sw.InstallRoute(b.ID(), []int{1})

	f := a.StartFlow(1, b.ID(), 2_000_000, 0, nil)
	eng.Run()
	if !f.Done() {
		t.Fatal("flow did not complete despite IRN recovery")
	}
	if f.Retransmits() == 0 {
		t.Fatal("no selective retransmissions recorded")
	}
	if f.Acked() != 2_000_000 {
		t.Fatalf("sender saw %d bytes acked, want 2000000", f.Acked())
	}
	if b.recv[1] != nil {
		t.Fatalf("receiver state not freed at flow end: %+v", b.recv[1])
	}
}

func TestCNPGeneration(t *testing.T) {
	mock := &mockCC{w: 0, rate: float64(line100)}
	cfg := Config{CC: func() cc.Algorithm { return mock }, BaseRTT: 10 * sim.Microsecond, CNPInterval: 50 * sim.Microsecond}
	// Force marking from the first packet.
	scfg := fabric.SwitchConfig{ECNEnabled: true, KMin: 1, KMax: 2, PMax: 1}
	eng := sim.NewEngine()
	sw := fabric.NewSwitch(eng, 1000, scfg)
	a := New(eng, 1, cfg)
	b := New(eng, 2, cfg)
	ap, sa := fabric.Connect(eng, a, sw, 0, 0, 100*sim.Gbps, sim.Microsecond)
	a.AttachPort(ap)
	sw.AttachPort(sa)
	sb, bp := fabric.Connect(eng, sw, b, 1, 0, 25*sim.Gbps, sim.Microsecond)
	sw.AttachPort(sb)
	b.AttachPort(bp)
	sw.InstallRoute(a.ID(), []int{0})
	sw.InstallRoute(b.ID(), []int{1})

	a.StartFlow(1, b.ID(), 3_000_000, 0, nil)
	eng.Run()
	if mock.cnps == 0 {
		t.Fatal("no CNPs delivered to the sender")
	}
	// Rate-limited to one per 50µs: 3MB at ~25G takes ≈ 1 ms → at most
	// ~21 CNPs (plus slack for recovery tail).
	if mock.cnps > 40 {
		t.Fatalf("cnps = %d, exceeds the 50µs rate limit", mock.cnps)
	}
}

func TestSubMTUWindowNoDeadlock(t *testing.T) {
	// A window smaller than one packet must still let a lone packet out
	// (inflight == 0 exemption), or the flow deadlocks.
	mock := &mockCC{w: 100, rate: float64(line100)}
	cfg := Config{CC: func() cc.Algorithm { return mock }, BaseRTT: 10 * sim.Microsecond}
	nw := buildStar(2, cfg, fabric.SwitchConfig{}, line100, sim.Microsecond)
	f := nw.start(0, 1, 10_000, nil)
	nw.eng.Run()
	if !f.Done() {
		t.Fatal("sub-MTU window deadlocked the flow")
	}
}

func TestPFCPausesHostPort(t *testing.T) {
	// Two senders blast one receiver with PFC on: the switch pauses the
	// host uplinks; nothing is dropped and both flows finish.
	cfg := hpccConfig()
	scfg := fabric.SwitchConfig{BufferBytes: 256 << 10, PFCEnabled: true, INTEnabled: true}
	nw := buildStar(3, cfg, scfg, line100, sim.Microsecond)
	f1 := nw.start(0, 2, 500_000, nil)
	f2 := nw.start(1, 2, 500_000, nil)
	nw.eng.Run()
	if !f1.Done() || !f2.Done() {
		t.Fatal("incast flows did not complete")
	}
	if nw.sw.Drops() != 0 {
		t.Fatalf("drops = %d with PFC enabled", nw.sw.Drops())
	}
}

func TestMultipleFlowsSharePort(t *testing.T) {
	nw := buildStar(3, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	f1 := nw.start(0, 1, 300_000, nil)
	f2 := nw.start(0, 2, 300_000, nil)
	nw.eng.Run()
	if !f1.Done() || !f2.Done() {
		t.Fatal("concurrent flows on one NIC did not finish")
	}
}

// Property: on a clean network, flows of any size complete with acked ==
// size under both GBN and IRN.
func TestFlowCompletionProperty(t *testing.T) {
	f := func(sizeRaw uint32, irn bool) bool {
		size := int64(sizeRaw%500_000) + 1
		cfg := hpccConfig()
		if irn {
			cfg.FlowCtl = IRN
		}
		nw := buildStar(2, cfg, fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
		fl := nw.start(0, 1, size, nil)
		nw.eng.Run()
		return fl.Done() && fl.Acked() >= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHPCCWindowConvergesNearEta(t *testing.T) {
	// A single long flow through one switch: HPCC should settle with W
	// around η × BDP (±WAI wiggle), i.e. utilization just under line.
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	f := nw.start(0, 1, 1<<40, nil) // effectively infinite
	nw.eng.RunUntil(2 * sim.Millisecond)
	alg := f.Alg().(*hpcccc.HPCC)
	bdp := line100.BytesPerSec() * (10 * sim.Microsecond).Seconds()
	w := alg.Window()
	if w < 0.80*bdp || w > 1.0*bdp {
		t.Fatalf("steady-state W = %v, want ≈ η×BDP = %v", w, 0.95*bdp)
	}
	if math.IsNaN(alg.Utilization()) {
		t.Fatal("U is NaN")
	}
	_ = packet.DefaultMTU
}
