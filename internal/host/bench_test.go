package host

import (
	"testing"

	"hpcc/internal/fabric"
	"hpcc/internal/sim"
)

// BenchmarkHPCCFlowEndToEnd measures full-stack simulation throughput:
// HPCC flow + INT switch + ACK path, reported as simulated data packets
// per wall-clock benchmark op (1 op = one 100-packet flow).
func BenchmarkHPCCFlowEndToEnd(b *testing.B) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := nw.hosts[0].StartFlow(int32(i+1), nw.hosts[1].ID(), 100_000, 0, nil)
		nw.eng.Run()
		if !f.Done() {
			b.Fatal("flow unfinished")
		}
	}
}

// BenchmarkIncast16 measures the §5.4 fixture cost: one 16-to-1 incast
// round of 100 KB per sender.
func BenchmarkIncast16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nw := buildStar(17, hpccConfig(), fabric.SwitchConfig{INTEnabled: true, PFCEnabled: true}, line100, sim.Microsecond)
		for s := 0; s < 16; s++ {
			nw.start(s, 16, 100_000, nil)
		}
		nw.eng.Run()
	}
}
