package host

import (
	"testing"

	"hpcc/internal/cc"
	"hpcc/internal/fabric"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

func TestZeroSizeFlowCompletes(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	done := false
	f := nw.start(0, 1, 0, func(*Flow) { done = true })
	nw.eng.Run()
	if !f.Done() || !done {
		t.Fatal("zero-size flow did not complete")
	}
}

func TestStaleAckIgnored(t *testing.T) {
	// ACKs for unknown or completed flows must be dropped silently.
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	f := nw.start(0, 1, 10_000, nil)
	nw.eng.Run()
	if !f.Done() {
		t.Fatal("setup: flow unfinished")
	}
	stale := &packet.Packet{Type: packet.Ack, FlowID: f.ID, Src: 2, Dst: 1, Prio: fabric.PrioCtrl, Size: 64, AckSeq: 99}
	nw.hosts[0].HandleArrival(stale, nw.hosts[0].Ports()[0])
	unknown := &packet.Packet{Type: packet.Ack, FlowID: 999, Src: 2, Dst: 1, Prio: fabric.PrioCtrl, Size: 64}
	nw.hosts[0].HandleArrival(unknown, nw.hosts[0].Ports()[0])
	// Also NACK and CNP for unknown flows.
	nw.hosts[0].HandleArrival(&packet.Packet{Type: packet.Nack, FlowID: 999, Size: 64}, nw.hosts[0].Ports()[0])
	nw.hosts[0].HandleArrival(&packet.Packet{Type: packet.CNP, FlowID: 999, Size: 64}, nw.hosts[0].Ports()[0])
}

func TestDuplicateFlowIDPanics(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	nw.hosts[0].StartFlow(42, nw.hosts[1].ID(), 1000, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate flow id did not panic")
		}
	}()
	nw.hosts[0].StartFlow(42, nw.hosts[1].ID(), 1000, 0, nil)
}

func TestNackSuppressionOnePerEpisode(t *testing.T) {
	// Feed a receiver an out-of-order burst directly: exactly one NACK
	// per out-of-sequence episode (RoCEv2 behaviour), re-armed only
	// after an in-order arrival.
	eng := sim.NewEngine()
	h := New(eng, 2, Config{CC: func() cc.Algorithm { return &mockCC{rate: 1e9} }, BaseRTT: 10 * sim.Microsecond})
	sink := &countingNode{}
	hp, sp := fabric.Connect(eng, h, sink, 0, 0, line100, 0)
	h.AttachPort(hp)
	sink.port = sp

	mk := func(seq int64) *packet.Packet {
		return &packet.Packet{Type: packet.Data, FlowID: 5, Src: 1, Dst: 2, Prio: fabric.PrioData,
			Size: 1064, Seq: seq, PayloadLen: 1000}
	}
	h.handleData(mk(0), hp) // in order: ACK
	h.handleData(mk(2000), hp)
	h.handleData(mk(3000), hp)
	h.handleData(mk(4000), hp) // three OOS arrivals: one NACK
	eng.Run()
	if sink.nacks != 1 {
		t.Fatalf("NACKs = %d, want 1 (suppressed per episode)", sink.nacks)
	}
	h.handleData(mk(1000), hp) // fills the gap: ACK, re-arms NACK
	h.handleData(mk(5000), hp) // new episode: second NACK
	eng.Run()
	if sink.nacks != 2 {
		t.Fatalf("NACKs = %d, want 2 after a new episode", sink.nacks)
	}
	if sink.acks < 2 {
		t.Fatalf("ACKs = %d, want ≥ 2", sink.acks)
	}
}

// countingNode counts control frames it receives.
type countingNode struct {
	port  *fabric.Port
	acks  int
	nacks int
}

func (c *countingNode) ID() fabric.NodeID { return 1 }
func (c *countingNode) OnDequeue(p *packet.Packet, ingress int, from *fabric.Port) {
}
func (c *countingNode) HandleArrival(p *packet.Packet, in *fabric.Port) {
	switch p.Type {
	case packet.Ack:
		c.acks++
	case packet.Nack:
		c.nacks++
	}
}

// Regression: a duplicate data packet arriving after the flow's
// receiver state was freed (an RTO retransmission racing the final ACK)
// must not resurrect — and then leak — a recvState, nor emit a spurious
// NACK.
func TestStragglerAfterFlowEndDoesNotResurrectRecvState(t *testing.T) {
	nw := buildStar(2, hpccConfig(), fabric.SwitchConfig{INTEnabled: true}, line100, sim.Microsecond)
	f := nw.start(0, 1, 10_000, nil)
	nw.eng.Run()
	if !f.Done() {
		t.Fatal("setup: flow unfinished")
	}
	recv := nw.hosts[1]
	if recv.recv[f.ID] != nil {
		t.Fatal("setup: receiver state not freed at flow end")
	}
	// A straggler duplicate of the flow's last chunk shows up late.
	straggler := &packet.Packet{
		Type: packet.Data, FlowID: f.ID, Src: int32(nw.hosts[0].ID()), Dst: int32(recv.ID()),
		Prio: fabric.PrioData, Size: 1064, Seq: 9_000, PayloadLen: 1000, FlowEnd: true,
	}
	recv.handleData(straggler, recv.Ports()[0])
	nw.eng.Run()
	if recv.recv[f.ID] != nil {
		t.Fatalf("straggler resurrected receiver state: %+v", recv.recv[f.ID])
	}
	// Far beyond the completed-flow ring, resurrection is allowed (and
	// harmless); the ring only needs to cover in-flight stragglers.
}

func TestTailLossRecoveredByRTO(t *testing.T) {
	// Drop the very last packet of a flow once: only the RTO can
	// recover it (no later packet triggers a NACK). Use a dropping
	// switch wrapper: a tiny lossy buffer sized to drop the tail...
	// deterministic alternative: deliver all but the tail by hand.
	eng := sim.NewEngine()
	cfg := Config{CC: func() cc.Algorithm { return &mockCC{rate: float64(line100)} },
		BaseRTT: 10 * sim.Microsecond, RTO: 200 * sim.Microsecond}
	a := New(eng, 1, cfg)
	b := New(eng, 2, cfg)
	dropper := &tailDropper{eng: eng}
	ap, da := fabric.Connect(eng, a, dropper, 0, 0, line100, sim.Microsecond)
	a.AttachPort(ap)
	dropper.ports = append(dropper.ports, da)
	db, bp := fabric.Connect(eng, dropper, b, 1, 0, line100, sim.Microsecond)
	dropper.ports = append(dropper.ports, db)
	b.AttachPort(bp)
	dropper.dropSeq = 9000 // the last packet of a 10 KB flow

	f := a.StartFlow(1, b.ID(), 10_000, 0, nil)
	eng.Run()
	if !f.Done() {
		t.Fatal("tail loss never recovered")
	}
	if f.Retransmits() == 0 {
		t.Fatal("no retransmission recorded")
	}
	if f.FCT() < 200*sim.Microsecond {
		t.Fatalf("FCT %v shorter than the RTO that recovery needed", f.FCT())
	}
}

// tailDropper forwards between its two ports, dropping the data packet
// with Seq == dropSeq exactly once.
type tailDropper struct {
	eng     *sim.Engine
	ports   []*fabric.Port
	dropSeq int64
	dropped bool
}

func (d *tailDropper) ID() fabric.NodeID { return 100 }
func (d *tailDropper) OnDequeue(p *packet.Packet, ingress int, from *fabric.Port) {
}
func (d *tailDropper) HandleArrival(p *packet.Packet, in *fabric.Port) {
	if p.Type == packet.Data && p.Seq == d.dropSeq && !d.dropped {
		d.dropped = true
		return
	}
	out := d.ports[0]
	if in == d.ports[0] {
		out = d.ports[1]
	}
	out.Enqueue(p, -1)
}

func TestHPCCMultiHopPicksBottleneck(t *testing.T) {
	// Two hops: first idle, second saturated. HPCC must react to the
	// max-U hop (the second).
	h := hpccAlg(t)
	ack := func(seq, nxt int64, ts sim.Time, tx1, tx2 uint64, q2 int64) *cc.AckEvent {
		return &cc.AckEvent{
			AckSeq: seq, SndNxt: nxt,
			Hops: []packet.Hop{
				{B: line100, TS: ts, TxBytes: tx1, QLen: 0},
				{B: line100, TS: ts, TxBytes: tx2, QLen: q2},
			},
			PathID: 0x0f0,
		}
	}
	h.OnAck(ack(1000, 1_000_000, 0, 0, 0, 125_000))
	h.OnAck(ack(2000, 1_001_000, 10*sim.Microsecond, 12_500 /* 10% */, 125_000 /* 100% */, 125_000))
	// Bottleneck hop: u = 1 + 1 = 2 ⇒ window halves (≈ η/2 × BDP).
	w := h.WindowBytes()
	if w > 70_000 || w < 50_000 {
		t.Fatalf("W = %v, want ≈ 59.4K (reacting to the bottleneck hop)", w)
	}
}

func hpccAlg(t *testing.T) cc.Algorithm {
	t.Helper()
	cfg := hpccConfig()
	alg := cfg.CC()
	alg.Init(cc.Env{
		Now:      func() sim.Time { return 0 },
		Schedule: func(d sim.Time, fn func()) {},
		LineRate: line100,
		BaseRTT:  10 * sim.Microsecond,
		MTU:      1000,
	})
	return alg
}
