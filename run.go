package hpcc

import (
	"fmt"
	"time"
)

// SimConfig describes a whole-cluster load experiment: Poisson traffic
// from a public flow-size distribution (plus optional incast) on one of
// the paper's topologies.
//
// It is the legacy string-keyed surface, kept as a thin wrapper over
// the spec-based Experiment API: Topology/Workload strings map onto
// the corresponding Topology and Traffic spec values. New code should
// compose an Experiment directly.
type SimConfig struct {
	// Scheme is the congestion control (see SchemeNames). Default
	// "hpcc".
	Scheme string
	// Topology: "pod" (default; the paper's testbed) or "fattree".
	Topology string
	// PaperScale selects the full 320-host FatTree.
	PaperScale bool
	// Workload: "websearch" (default) or "fbhadoop".
	Workload string
	// Load is the target average link load (default 0.3).
	Load float64
	// Flows caps the number of generated flows (default 1000).
	Flows int
	// Duration is the arrival window (default 5 ms of virtual time).
	Duration time.Duration
	// Drain is extra time for in-flight flows (default 20 ms).
	Drain time.Duration
	// Incast adds periodic fan-in events (60-to-1 × 500 KB at 2% of
	// capacity, scaled down on small fabrics), as in §5.3.
	Incast bool
	// Lossless enables PFC (default true). When false, switches drop
	// and hosts recover via go-back-N.
	Lossless *bool
	// Shards requests multi-core execution of the scenario (see
	// Experiment.Shards for the determinism contract).
	Shards int
	// Speculate controls optimistic shard synchronization on sharded
	// runs (default on; see Experiment.Speculate).
	Speculate *bool
	// SpeculationWindow caps the speculative horizon (see
	// Experiment.SpeculationWindow; default 8).
	SpeculationWindow int
	// SketchStats switches result statistics to streaming quantile
	// sketches: O(buckets) retained stat memory regardless of flow
	// count, percentiles within StatsAccuracy of exact (see
	// Experiment.SketchStats).
	SketchStats bool
	// StatsAccuracy is the sketch relative accuracy (default 0.01).
	StatsAccuracy float64
	// Seed makes runs reproducible (default 1).
	Seed int64
}

// SimResult summarizes one load experiment.
type SimResult struct {
	Scheme string
	// Flows completed; Censored were still in flight at the horizon.
	Flows, Censored int
	// SlowdownP50/P95/P99/P999 are FCT-slowdown percentiles over all
	// flows (0 when no flows completed — see Flows). In sketch-stats
	// mode each is within the configured relative accuracy of the exact
	// percentile; P999 is the deep-tail figure sketches make affordable
	// at million-flow scale.
	SlowdownP50, SlowdownP95, SlowdownP99, SlowdownP999 float64
	// ShortFlowP99Slowdown covers flows ≤ 7 KB (the latency-sensitive
	// class the paper highlights). When ShortFlows is 0, it reports 0
	// rather than NaN, so results always survive encoding/json.
	ShortFlowP99Slowdown float64
	// ShortFlows counts the completed flows ≤ 7 KB behind
	// ShortFlowP99Slowdown.
	ShortFlows int
	// QueueP50KB/P99KB/MaxKB are switch-queue percentiles over 10 µs
	// samples.
	QueueP50KB, QueueP99KB, QueueMaxKB float64
	// PFCPauseFraction is paused (port × time) over the whole run.
	PFCPauseFraction float64
	Drops            uint64
	// RetainedStatBytes is the run's logical retained-statistics
	// footprint (FCT retention plus pooled queue samples; sketch
	// buckets in sketch-stats mode). Deterministic and identical across
	// shard counts; flat in flow count when SketchStats is set.
	RetainedStatBytes int64
	// ShardsUsed is how many engines actually executed the run. Sharded
	// execution is best-effort (closed-loop traffic, observers and
	// non-partitionable topologies fall back to one engine), so this can
	// be less than the requested Shards; results are identical either
	// way, only the core usage differs.
	ShardsUsed int
	// Speculated reports whether optimistic shard synchronization was
	// engaged (see Experiment.Speculate); the counters below describe
	// how it went. Epochs counts conservative epochs (including
	// post-rollback replays); SpecEpochs counts speculative attempts,
	// each either a commit or a rollback. SyncOverhead is the fraction
	// of wall time spent synchronizing shards rather than running them
	// (barriers, exchanges, checkpoints, restores); it is meaningful
	// for any sharded run, speculative or not.
	Speculated    bool
	Epochs        uint64
	SpecEpochs    uint64
	SpecCommits   uint64
	SpecRollbacks uint64
	SyncOverhead  float64
	// BucketP95 maps each flow-size bucket edge to its 95th-percentile
	// slowdown (the paper's FCT-figure series). Buckets with N == 0
	// report P95 = 0.
	BucketP95 []BucketPoint
}

// BucketPoint is one x-position of an FCT figure.
type BucketPoint struct {
	SizeHi int64
	P95    float64
	N      int
}

// Run executes a load experiment and summarizes it. It is a back-compat
// wrapper composing the equivalent Experiment from the config's
// strings.
func Run(cfg SimConfig) (*SimResult, error) {
	var topo Topology
	switch cfg.Topology {
	case "", "pod":
		topo = Pod{}
	case "fattree":
		if cfg.PaperScale {
			topo = PaperFatTree()
		} else {
			topo = FatTree{}
		}
	default:
		return nil, fmt.Errorf("hpcc: unknown topology %q", cfg.Topology)
	}
	var cdf CDF
	switch cfg.Workload {
	case "", "websearch":
		cdf = WebSearchCDF()
	case "fbhadoop":
		cdf = FBHadoopCDF()
	default:
		return nil, fmt.Errorf("hpcc: unknown workload %q (want websearch or fbhadoop)", cfg.Workload)
	}
	if cfg.Load == 0 {
		cfg.Load = 0.3
	}
	traffic := []Traffic{Poisson{CDF: cdf, Load: cfg.Load}}
	if cfg.Incast {
		fanIn := 60
		if cfg.Topology == "pod" || cfg.Topology == "" {
			fanIn = 16
		}
		traffic = append(traffic, Incast{FanIn: fanIn, FlowSizeBytes: 500_000, LoadFraction: 0.02})
	}
	return Experiment{
		Scheme:            cfg.Scheme,
		Topology:          topo,
		Traffic:           traffic,
		Horizon:           cfg.Duration,
		Drain:             cfg.Drain,
		MaxFlows:          cfg.Flows,
		Lossless:          cfg.Lossless,
		Shards:            cfg.Shards,
		Speculate:         cfg.Speculate,
		SpeculationWindow: cfg.SpeculationWindow,
		SketchStats:       cfg.SketchStats,
		StatsAccuracy:     cfg.StatsAccuracy,
		Seed:              cfg.Seed,
	}.Run()
}
