package hpcc

import (
	"fmt"
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// SimConfig describes a whole-cluster load experiment: Poisson traffic
// from a public flow-size distribution (plus optional incast) on one of
// the paper's topologies.
type SimConfig struct {
	// Scheme is the congestion control (see SchemeNames). Default
	// "hpcc".
	Scheme string
	// Topology: "pod" (default; the paper's testbed) or "fattree".
	Topology string
	// PaperScale selects the full 320-host FatTree.
	PaperScale bool
	// Workload: "websearch" (default) or "fbhadoop".
	Workload string
	// Load is the target average link load (default 0.3).
	Load float64
	// Flows caps the number of generated flows (default 1000).
	Flows int
	// Duration is the arrival window (default 20 ms of virtual time).
	Duration time.Duration
	// Drain is extra time for in-flight flows (default 30 ms).
	Drain time.Duration
	// Incast adds periodic fan-in events (60-to-1 × 500 KB at 2% of
	// capacity, scaled down on small fabrics), as in §5.3.
	Incast bool
	// Lossless enables PFC (default true). When false, switches drop
	// and hosts recover via go-back-N.
	Lossless *bool
	// Seed makes runs reproducible (default 1).
	Seed int64
}

// SimResult summarizes one load experiment.
type SimResult struct {
	Scheme string
	// Flows completed; Censored were still in flight at the horizon.
	Flows, Censored int
	// SlowdownP50/P95/P99 are FCT-slowdown percentiles over all flows.
	SlowdownP50, SlowdownP95, SlowdownP99 float64
	// ShortFlowP99Slowdown covers flows ≤ 7 KB (the latency-sensitive
	// class the paper highlights).
	ShortFlowP99Slowdown float64
	// QueueP50KB/P99KB/MaxKB are switch-queue percentiles over 10 µs
	// samples.
	QueueP50KB, QueueP99KB, QueueMaxKB float64
	// PFCPauseFraction is paused (port × time) over the whole run.
	PFCPauseFraction float64
	Drops            uint64
	// BucketP95 maps each flow-size bucket edge to its 95th-percentile
	// slowdown (the paper's FCT-figure series).
	BucketP95 []BucketPoint
}

// BucketPoint is one x-position of an FCT figure.
type BucketPoint struct {
	SizeHi int64
	P95    float64
	N      int
}

// Run executes a load experiment and summarizes it.
func Run(cfg SimConfig) (*SimResult, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = "hpcc"
	}
	scheme, err := experiment.ByName(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	var topo experiment.Topo
	switch cfg.Topology {
	case "", "pod":
		topo = experiment.PodTopo(topology.PodSpec{})
	case "fattree":
		spec := topology.ScaledFatTree()
		if cfg.PaperScale {
			spec = topology.PaperFatTree()
		}
		topo = experiment.FatTreeTopo(spec)
	default:
		return nil, fmt.Errorf("hpcc: unknown topology %q", cfg.Topology)
	}
	var cdf *workload.CDF
	var edges []int64
	switch cfg.Workload {
	case "", "websearch":
		cdf, edges = workload.WebSearch(), stats.WebSearchEdges()
	case "fbhadoop":
		cdf, edges = workload.FBHadoop(), stats.FBHadoopEdges()
	default:
		return nil, fmt.Errorf("hpcc: unknown workload %q (want websearch or fbhadoop)", cfg.Workload)
	}
	if cfg.Load == 0 {
		cfg.Load = 0.3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sc := experiment.LoadScenario{
		Scheme:   scheme,
		Topo:     topo,
		CDF:      cdf,
		Load:     cfg.Load,
		MaxFlows: cfg.Flows,
		Until:    toSim(cfg.Duration),
		Drain:    toSim(cfg.Drain),
		PFC:      cfg.Lossless == nil || *cfg.Lossless,
		Seed:     cfg.Seed,
	}
	if cfg.Incast {
		fanIn := 60
		if cfg.Topology == "pod" || cfg.Topology == "" {
			fanIn = 16
		}
		sc.Incast = &experiment.Incast{FanIn: fanIn, Size: 500_000, LoadFrac: 0.02}
	}
	r := experiment.RunLoad(sc)

	sl := r.FCT.Slowdowns()
	out := &SimResult{
		Scheme:               r.Scheme,
		Flows:                len(r.FCT.Records),
		Censored:             r.Censored,
		SlowdownP50:          stats.Percentile(sl, 50),
		SlowdownP95:          stats.Percentile(sl, 95),
		SlowdownP99:          stats.Percentile(sl, 99),
		ShortFlowP99Slowdown: shortP99(&r.FCT, 7_000),
		QueueP50KB:           r.Queue.P50 / 1024,
		QueueP99KB:           r.Queue.P99 / 1024,
		QueueMaxKB:           r.Queue.Max / 1024,
		PFCPauseFraction:     r.PauseFrac,
		Drops:                r.Drops,
	}
	for _, row := range r.FCT.Buckets(edges) {
		out.BucketP95 = append(out.BucketP95, BucketPoint{SizeHi: row.Hi, P95: row.Stats.P95, N: row.Stats.N})
	}
	return out, nil
}

func shortP99(set *stats.FCTSet, limit int64) float64 {
	var xs []float64
	for _, rec := range set.Records {
		if rec.Size <= limit {
			xs = append(xs, rec.Slowdown())
		}
	}
	return stats.Percentile(xs, 99)
}
