// Streaming: watch an experiment's statistics while it runs instead of
// waiting for the final summary. A StatsObserver flushes one window of
// statistics every Every queue-sampling ticks — queue-depth percentiles
// over the window, plus cumulative flow counts and slowdown percentiles
// — all drawn from constant-memory sketches, so a flush costs the same
// whether the run has absorbed a thousand flows or a million.
//
// The run itself uses SketchStats, the streaming statistics mode: the
// result's percentiles come from mergeable quantile sketches (within 1%
// of exact by default) and retained stat memory stays a few KB
// regardless of flow count — the mode long campaigns run in.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	fmt.Println("window-end   q-p50(KB)  q-p99(KB)  q-max(KB)   flows  sd-p50  sd-p99")
	res, err := hpcc.Experiment{
		Scheme:   "hpcc",
		Topology: hpcc.Pod{},
		Traffic: []hpcc.Traffic{
			hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.5},
		},
		Horizon:  10 * time.Millisecond,
		Drain:    25 * time.Millisecond,
		MaxFlows: 600,
		// Streaming statistics: sketch-backed percentiles, flat memory.
		SketchStats: true,
		Observers: []hpcc.Observer{
			hpcc.StatsObserver{
				// One flush per 100 queue-sampling ticks = every 1 ms of
				// virtual time at the default 10 µs sampling period.
				Every: 100,
				OnFlush: func(f hpcc.StatsFlush) {
					fmt.Printf("%10v  %9.1f  %9.1f  %9.1f  %6d  %6.2f  %6.2f\n",
						f.End, f.QueueP50KB, f.QueueP99KB, f.QueueMaxKB,
						f.Flows, f.SlowdownP50, f.SlowdownP99)
				},
			},
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfinal summary (sketch-backed, within 1% of exact):")
	fmt.Printf("flows      %d completed, %d censored\n", res.Flows, res.Censored)
	fmt.Printf("slowdown   p50 %.2f  p95 %.2f  p99 %.2f  p99.9 %.2f\n",
		res.SlowdownP50, res.SlowdownP95, res.SlowdownP99, res.SlowdownP999)
	fmt.Printf("queue      p50 %.1f KB  p99 %.1f KB  max %.1f KB\n",
		res.QueueP50KB, res.QueueP99KB, res.QueueMaxKB)
	fmt.Printf("stat mem   %d B retained — O(sketch buckets), not O(flows)\n",
		res.RetainedStatBytes)
}
