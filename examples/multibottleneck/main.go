// Multibottleneck: a parking-lot chain where one long flow crosses two
// congested links while a local flow rides each segment. Appendix A.3
// predicts the allocation lands on proportional fairness (long ≈ C/3,
// locals ≈ 2C/3) rather than max-min (everyone C/2), because the long
// flow reacts to max(U) over both links. An RDMA READ (§4.2) then pulls
// data across the same chain.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	const segments = 2
	net, err := hpcc.Experiment{
		Scheme:   "hpcc",
		Topology: hpcc.ParkingLot{Segments: segments}, // host layout documented on ParkingLot
	}.Start()
	if err != nil {
		log.Fatal(err)
	}

	// Long flow host0 -> host1 across both segments; one local flow per
	// segment.
	var acked [1 + segments]int64
	long := net.StartFlow(0, 1, 1<<40)
	long.OnProgress(func(n int64) { acked[0] += n })
	for i := 0; i < segments; i++ {
		i := i
		f := net.StartFlow(2+2*i, 3+2*i, 1<<40)
		f.OnProgress(func(n int64) { acked[1+i] += n })
	}

	// Let HPCC converge, then measure one window.
	net.Run(2 * time.Millisecond)
	var before [1 + segments]int64
	copy(before[:], acked[:])
	const window = 2 * time.Millisecond
	net.Run(window)

	gbps := func(i int) float64 {
		return float64(acked[i]-before[i]) * 8 / window.Seconds() / 1e9
	}
	fmt.Printf("long flow  (2 bottlenecks): %5.1f Gbps   <- ≈ C/3: proportional fairness (A.3)\n", gbps(0))
	for i := 0; i < segments; i++ {
		fmt.Printf("local flow (segment %d):     %5.1f Gbps   <- ≈ 2C/3\n", i, gbps(1+i))
	}

	// RDMA READ: host 1 pulls 1 MB from host 0 across the chain while
	// the elephants keep running.
	readTook := time.Duration(-1)
	start := net.Now()
	net.Read(1, 0, 1<<20, func() { readTook = net.Now() - start })
	net.Run(5 * time.Millisecond)
	fmt.Printf("RDMA READ of 1MB across the busy chain: completed in %v\n", readTook)
}
