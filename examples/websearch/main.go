// Websearch: the paper's end-to-end testbed experiment (Figure 10) as
// a library call — WebSearch traffic on the 32-server PoD at 30% and
// 50% load, comparing HPCC against DCQCN on tail FCT slowdown and
// switch queueing.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	for _, load := range []float64{0.3, 0.5} {
		fmt.Printf("=== WebSearch at %.0f%% average load (testbed PoD) ===\n", load*100)
		fmt.Println("scheme   flows  sd-p50  sd-p95  sd-p99  short-p99  q-p99(KB)  pause%")
		for _, scheme := range []string{"hpcc", "dcqcn"} {
			res, err := hpcc.Experiment{
				Scheme:   scheme,
				Topology: hpcc.Pod{},
				Traffic: []hpcc.Traffic{
					hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: load},
				},
				Horizon:  10 * time.Millisecond,
				Drain:    25 * time.Millisecond,
				MaxFlows: 600,
			}.Run()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %5d  %6.2f  %6.2f  %6.2f  %9.2f  %9.1f  %5.2f\n",
				res.Scheme, res.Flows,
				res.SlowdownP50, res.SlowdownP95, res.SlowdownP99,
				res.ShortFlowP99Slowdown, res.QueueP99KB, res.PFCPauseFraction*100)
		}
		fmt.Println()
	}
	fmt.Println("paper's figure 10: HPCC cuts short-flow tail slowdown by up to 95%")
	fmt.Println("and keeps p99 queues ~100x smaller, at a small long-flow cost.")
}
