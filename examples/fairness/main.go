// Fairness: the staggered join/leave benchmark of Figures 9g/9h — four
// long flows enter a 25 Gbps bottleneck one by one and leave one by
// one; HPCC converges to even shares at every population.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	const (
		nFlows = 4
		epoch  = 4 * time.Millisecond
	)
	net, err := hpcc.Experiment{
		Scheme:   "hpcc",
		Topology: hpcc.Star{Hosts: nFlows + 1, LinkRateGbps: 25},
	}.Start()
	if err != nil {
		log.Fatal(err)
	}

	// Per-flow goodput accounting in epoch-sized bins.
	nEpochs := 2*nFlows - 1
	bytes := make([][]int64, nFlows)
	flows := make([]*hpcc.Flow, nFlows)
	for i := 0; i < nFlows; i++ {
		i := i
		bytes[i] = make([]int64, nEpochs)
		flows[i] = net.StartFlowAt(time.Duration(i)*epoch, i, nFlows, 1<<40)
		flows[i].OnProgress(func(n int64) {
			if e := int(net.Now() / epoch); e < nEpochs {
				bytes[i][e] += n
			}
		})
	}
	// Flows leave in arrival order: flow i stops at epoch nFlows+i.
	for e := 0; e < nEpochs; e++ {
		net.Run(epoch)
		if leave := e + 1 - nFlows; leave >= 0 && leave < nFlows {
			flows[leave].Stop()
		}
	}

	fmt.Println("per-epoch goodput (Gbps); flows join one per epoch, then leave one per epoch")
	fmt.Println("epoch   flow1  flow2  flow3  flow4   Jain(active)")
	for e := 0; e < nEpochs; e++ {
		var rates [nFlows]float64
		var active []float64
		for i := 0; i < nFlows; i++ {
			rates[i] = float64(bytes[i][e]) * 8 / epoch.Seconds() / 1e9
			if e >= i && e < nFlows+i {
				active = append(active, rates[i])
			}
		}
		fmt.Printf("%5d   %5.1f  %5.1f  %5.1f  %5.1f   %.3f\n",
			e+1, rates[0], rates[1], rates[2], rates[3], jain(active))
	}
}

func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
