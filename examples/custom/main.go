// Custom: compose a fabric the library has no preset for — two racks
// with dual spine uplinks and a storage rack hanging off one spine —
// then drive it with RPC request-response traffic over the RDMA READ
// path plus a Poisson background mix, observing per-flow completions
// and queue depth as the simulation runs.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	// Build the fabric: 2 compute racks × 4 hosts at 100 Gbps under
	// their ToRs, each ToR dual-homed to two 400 Gbps spines, and a
	// 2-host storage rack under spine 0 only (an asymmetric corner no
	// preset covers).
	var c hpcc.Custom
	spine0, spine1 := c.AddSwitch(), c.AddSwitch()
	for r := 0; r < 2; r++ {
		tor := c.AddSwitch()
		c.Link(tor, spine0, 400, time.Microsecond)
		c.Link(tor, spine1, 400, time.Microsecond)
		for i := 0; i < 4; i++ {
			c.Link(c.AddHost(), tor, 100, time.Microsecond)
		}
	}
	storTor := c.AddSwitch()
	c.Link(storTor, spine0, 400, time.Microsecond)
	for i := 0; i < 2; i++ {
		c.Link(c.AddHost(), storTor, 100, time.Microsecond)
	}

	// Observers stream events while the run executes.
	var reads, flows int
	var worstRead time.Duration
	var peakQueue int64
	obs := []hpcc.Observer{
		hpcc.FlowObserver{OnComplete: func(r hpcc.FlowRecord) {
			flows++
			if r.Read {
				reads++
				if r.FCT > worstRead {
					worstRead = r.FCT
				}
			}
		}},
		hpcc.QueueObserver{OnSample: func(s hpcc.QueueSample) {
			if s.TotalBytes > peakQueue {
				peakQueue = s.TotalBytes
			}
		}},
	}

	// RPC request-response traffic rides the RDMA READ path between
	// uniform-random pairs; Poisson WebSearch load rides underneath.
	res, err := hpcc.Experiment{
		Scheme:   "hpcc",
		Topology: &c,
		Traffic: []hpcc.Traffic{
			hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.2, MaxFlows: 300},
			hpcc.RPC{ResponseBytes: 128 << 10, Load: 0.1, MaxRequests: 100},
		},
		Horizon:   4 * time.Millisecond,
		Drain:     20 * time.Millisecond,
		Observers: obs,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom fabric: %d hosts, 5 switches\n", c.NumHosts())
	fmt.Printf("completed:     %d transfers (%d censored), %d via RDMA READ\n",
		res.Flows, res.Censored, reads)
	fmt.Printf("slowdown:      p50 %.2f   p95 %.2f   p99 %.2f\n",
		res.SlowdownP50, res.SlowdownP95, res.SlowdownP99)
	fmt.Printf("worst READ:    %v\n", worstRead)
	fmt.Printf("peak queue:    %.1f KB (streamed sample)\n", float64(peakQueue)/1024)
	fmt.Printf("drops:         %d, PFC pause %.3f%%\n", res.Drops, res.PFCPauseFraction*100)
	if flows != res.Flows {
		log.Fatalf("observer saw %d flows, result has %d", flows, res.Flows)
	}
}
