// Incast: reproduce the paper's headline behaviour — under a 16-to-1
// burst, HPCC drains the queue within a round trip while DCQCN keeps a
// deep standing queue (Figures 9c/9d).
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	const (
		fanIn    = 16
		flowSize = 500_000
		horizon  = 2 * time.Millisecond
	)
	for _, scheme := range []string{"hpcc", "dcqcn"} {
		net, err := hpcc.Experiment{
			Scheme:   scheme,
			Topology: hpcc.Star{Hosts: fanIn + 1},
		}.Start()
		if err != nil {
			log.Fatal(err)
		}
		trace := net.TraceQueues(time.Microsecond, horizon)

		// All sixteen senders fire simultaneously at host 16.
		var flows []*hpcc.Flow
		for i := 0; i < fanIn; i++ {
			flows = append(flows, net.StartFlow(i, fanIn, flowSize))
		}
		net.Run(horizon)

		done := 0
		var worst time.Duration
		for _, f := range flows {
			if f.Done() {
				done++
				if f.FCT() > worst {
					worst = f.FCT()
				}
			}
		}
		var peak int64
		drainedAt := time.Duration(0)
		for _, p := range *trace {
			if p.Bytes > peak {
				peak = p.Bytes
			}
		}
		for _, p := range *trace {
			if p.Bytes > peak/10 {
				drainedAt = p.At
			}
		}

		fmt.Printf("== %s ==\n", net.Scheme())
		fmt.Printf("  flows done:      %d/%d (worst FCT %v)\n", done, fanIn, worst)
		fmt.Printf("  peak queue:      %.1f KB\n", float64(peak)/1024)
		fmt.Printf("  queue above 10%% of peak until: %v\n", drainedAt)
		fmt.Printf("  PFC pause frac:  %.3f%%\n", net.PFCPauseFraction()*100)
		fmt.Printf("  drops:           %d\n\n", net.Drops())
	}
}
