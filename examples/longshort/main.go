// Longshort: the rate-recovery micro-benchmark of Figures 9a/9b — a
// long flow shares a 25 Gbps link with a transient 1 MB short flow;
// HPCC hands back bandwidth within a round trip of the short flow
// ending, while DCQCN crawls back via timer-driven increase.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	const (
		horizon  = 3 * time.Millisecond
		shortAt  = 500 * time.Microsecond
		bin      = 100 * time.Microsecond
		shortLen = 1 << 20
	)
	for _, scheme := range []string{"hpcc", "dcqcn"} {
		net, err := hpcc.Experiment{
			Scheme:   scheme,
			Topology: hpcc.Star{Hosts: 3, LinkRateGbps: 25},
		}.Start()
		if err != nil {
			log.Fatal(err)
		}

		// Long flow host0 -> host2; short flow host1 -> host2 later.
		long := net.StartFlow(0, 2, 1<<40)
		bins := make([]int64, horizon/bin)
		long.OnProgress(func(n int64) {
			if i := int(net.Now() / bin); i < len(bins) {
				bins[i] += n
			}
		})
		short := net.StartFlowAt(shortAt, 1, 2, shortLen)
		net.Run(horizon)

		fmt.Printf("== %s == (short flow done: %v, FCT %v)\n", net.Scheme(), short.Done(), short.FCT())
		fmt.Println("  time      long-flow goodput")
		for i, b := range bins {
			gbps := float64(b) * 8 / bin.Seconds() / 1e9
			marker := ""
			if t := time.Duration(i) * bin; t <= shortAt && shortAt < t+bin {
				marker = "  <- short flow starts"
			}
			fmt.Printf("  %7v   %5.1f Gbps%s\n", time.Duration(i)*bin, gbps, marker)
		}
		fmt.Println()
	}
}
