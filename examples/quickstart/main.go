// Quickstart: build a small HPCC fabric, send one flow, and inspect
// its completion time — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcc"
)

func main() {
	// Four hosts around one 100 Gbps switch, running HPCC with INT —
	// composed from first-class spec values.
	net, err := hpcc.Experiment{
		Scheme:   "hpcc",
		Topology: hpcc.Star{Hosts: 4},
	}.Start()
	if err != nil {
		log.Fatal(err)
	}

	// Ship 1 MB from host 0 to host 3 and run the simulation until
	// every event has drained.
	flow := net.StartFlow(0, 3, 1<<20)
	net.RunUntilIdle()

	fmt.Printf("scheme:     %s\n", net.Scheme())
	fmt.Printf("base RTT:   %v\n", net.BaseRTT())
	fmt.Printf("completed:  %v\n", flow.Done())
	fmt.Printf("FCT:        %v\n", flow.FCT())
	fmt.Printf("slowdown:   %.2fx ideal\n", flow.Slowdown())
	fmt.Printf("drops:      %d\n", net.Drops())

	// The same algorithm is also available standalone, fed with INT
	// feedback you supply — here one congested round trip halves the
	// window, demonstrating HPCC's one-step multiplicative adjustment.
	var clock time.Duration
	sender := hpcc.NewSender(hpcc.SenderConfig{
		LineRateBps: 100e9,
		BaseRTT:     10 * time.Microsecond,
	}, func() time.Duration { return clock })

	hop := func(ts time.Duration, tx uint64, qlen int64) []hpcc.INTHop {
		return []hpcc.INTHop{{BandwidthBps: 100e9, Timestamp: ts, TxBytes: tx, QueueBytes: qlen}}
	}
	fmt.Printf("\nstandalone sender: W0 = %.0f bytes\n", sender.WindowBytes())
	sender.OnAck(hpcc.Ack{AckSeq: 1000, SndNxt: 500_000, Hops: hop(0, 0, 125_000), PathID: 7})
	clock = 10 * time.Microsecond
	sender.OnAck(hpcc.Ack{AckSeq: 2000, SndNxt: 501_000, Hops: hop(clock, 125_000, 125_000), PathID: 7})
	fmt.Printf("after one congested RTT (U = %.2f): W = %.0f bytes\n",
		sender.Utilization(), sender.WindowBytes())
}
