package hpcc

import (
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/stats"
)

// Observer streams simulation events to user callbacks while an
// Experiment runs: per-flow completion records (FlowObserver),
// periodic queue samples (QueueObserver), and PFC pause transitions
// (PFCObserver). Attach any number to Experiment.Observers; callbacks
// fire in virtual-time order as the simulation executes.
//
// The interface is sealed; the three concrete observers cover the
// streams the engine exposes.
type Observer interface {
	attach(obs *experiment.Obs)
}

// FlowRecord is one completed transfer as seen by a FlowObserver. For
// RDMA READs (Read true), Src is the responder (the data source) and
// Dst the requester, and FCT spans request issue to last response
// byte.
type FlowRecord struct {
	Src, Dst  int
	Read      bool
	SizeBytes int64
	Start     time.Duration
	FCT       time.Duration
	// Slowdown is FCT over the flow's ideal FCT on an empty network.
	Slowdown float64
}

// FlowObserver streams every completed flow.
type FlowObserver struct {
	OnComplete func(FlowRecord)
}

func (o FlowObserver) attach(obs *experiment.Obs) {
	if o.OnComplete == nil {
		return
	}
	fn, prev := o.OnComplete, obs.OnFlow
	obs.OnFlow = func(ev experiment.FlowEvent) {
		if prev != nil {
			prev(ev)
		}
		fn(FlowRecord{
			Src:       ev.Src,
			Dst:       ev.Dst,
			Read:      ev.Read,
			SizeBytes: ev.Rec.Size,
			Start:     fromSim(ev.Started),
			FCT:       fromSim(ev.Rec.FCT),
			Slowdown:  ev.Rec.Slowdown(),
		})
	}
}

// QueueSample is one periodic observation of the total switch-queue
// backlog across the monitored (host-facing) egress ports.
type QueueSample struct {
	At         time.Duration
	TotalBytes int64
}

// QueueObserver streams queue backlog samples taken at the
// Experiment's queue sampling period.
type QueueObserver struct {
	OnSample func(QueueSample)
	// Every, when > 1, streams only every Every-th sample — the stride
	// knob for long campaigns where per-tick callbacks would swamp the
	// consumer. The first sample always streams.
	Every int
}

func (o QueueObserver) attach(obs *experiment.Obs) {
	if o.OnSample == nil {
		return
	}
	fn, prev := o.OnSample, obs.OnQueue
	every, n := o.Every, 0
	obs.OnQueue = func(tp stats.TimePoint) {
		if prev != nil {
			prev(tp)
		}
		if every > 1 {
			if n++; (n-1)%every != 0 {
				return
			}
		}
		fn(QueueSample{At: fromSim(tp.T), TotalBytes: int64(tp.V)})
	}
}

// PFCEvent is one priority-flow-control pause or resume applied to a
// switch egress port.
type PFCEvent struct {
	At     time.Duration
	Switch int // switch index in build order
	Port   int // egress port index at that switch
	Paused bool
}

// PFCObserver streams every PFC pause/resume transition at the
// switches.
type PFCObserver struct {
	OnEvent func(PFCEvent)
}

func (o PFCObserver) attach(obs *experiment.Obs) {
	if o.OnEvent == nil {
		return
	}
	fn, prev := o.OnEvent, obs.OnPFC
	obs.OnPFC = func(ev stats.PFCEvent) {
		if prev != nil {
			prev(ev)
		}
		fn(PFCEvent{At: fromSim(ev.At), Switch: ev.Switch, Port: ev.Port, Paused: ev.Paused})
	}
}
