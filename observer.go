package hpcc

import (
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/stats"
)

// Observer streams simulation events to user callbacks while an
// Experiment runs: per-flow completion records (FlowObserver),
// periodic queue samples (QueueObserver), PFC pause transitions
// (PFCObserver), and interval statistics flushes (StatsObserver).
// Attach any number to Experiment.Observers; callbacks fire in
// virtual-time order as the simulation executes.
//
// The interface is sealed; the four concrete observers cover the
// streams the engine exposes.
type Observer interface {
	attach(sc *experiment.LoadScenario)
}

// FlowRecord is one completed transfer as seen by a FlowObserver. For
// RDMA READs (Read true), Src is the responder (the data source) and
// Dst the requester, and FCT spans request issue to last response
// byte.
type FlowRecord struct {
	Src, Dst  int
	Read      bool
	SizeBytes int64
	Start     time.Duration
	FCT       time.Duration
	// Slowdown is FCT over the flow's ideal FCT on an empty network.
	Slowdown float64
}

// FlowObserver streams every completed flow.
type FlowObserver struct {
	OnComplete func(FlowRecord)
}

func (o FlowObserver) attach(sc *experiment.LoadScenario) {
	if o.OnComplete == nil {
		return
	}
	fn, prev := o.OnComplete, sc.Obs.OnFlow
	sc.Obs.OnFlow = func(ev experiment.FlowEvent) {
		if prev != nil {
			prev(ev)
		}
		fn(FlowRecord{
			Src:       ev.Src,
			Dst:       ev.Dst,
			Read:      ev.Read,
			SizeBytes: ev.Rec.Size,
			Start:     fromSim(ev.Started),
			FCT:       fromSim(ev.Rec.FCT),
			Slowdown:  ev.Rec.Slowdown(),
		})
	}
}

// QueueSample is one periodic observation of the total switch-queue
// backlog across the monitored (host-facing) egress ports.
type QueueSample struct {
	At         time.Duration
	TotalBytes int64
}

// QueueObserver streams queue backlog samples taken at the
// Experiment's queue sampling period.
type QueueObserver struct {
	OnSample func(QueueSample)
	// Every, when > 1, streams only every Every-th sample — the stride
	// knob for long campaigns where per-tick callbacks would swamp the
	// consumer. The first sample always streams.
	Every int
}

func (o QueueObserver) attach(sc *experiment.LoadScenario) {
	if o.OnSample == nil {
		return
	}
	fn, prev := o.OnSample, sc.Obs.OnQueue
	every, n := o.Every, 0
	sc.Obs.OnQueue = func(tp stats.TimePoint) {
		if prev != nil {
			prev(tp)
		}
		if every > 1 {
			if n++; (n-1)%every != 0 {
				return
			}
		}
		fn(QueueSample{At: fromSim(tp.T), TotalBytes: int64(tp.V)})
	}
}

// PFCEvent is one priority-flow-control pause or resume applied to a
// switch egress port.
type PFCEvent struct {
	At     time.Duration
	Switch int // switch index in build order
	Port   int // egress port index at that switch
	Paused bool
}

// PFCObserver streams every PFC pause/resume transition at the
// switches.
type PFCObserver struct {
	OnEvent func(PFCEvent)
}

func (o PFCObserver) attach(sc *experiment.LoadScenario) {
	if o.OnEvent == nil {
		return
	}
	fn, prev := o.OnEvent, sc.Obs.OnPFC
	sc.Obs.OnPFC = func(ev stats.PFCEvent) {
		if prev != nil {
			prev(ev)
		}
		fn(PFCEvent{At: fromSim(ev.At), Switch: ev.Switch, Port: ev.Port, Paused: ev.Paused})
	}
}

// StatsFlush is one closed interval window of a live run's statistics,
// as streamed by a StatsObserver: queue-depth percentiles over the
// window alone, plus cumulative flow statistics since the run began.
// Percentile fields come from streaming sketches (within 1% relative
// accuracy by default), so a flush costs O(sketch buckets) however
// many flows or samples the run has absorbed.
type StatsFlush struct {
	// Start/End bound the window in virtual time.
	Start, End time.Duration
	// QueueP50KB/P99KB/MaxKB are per-port queue-depth percentiles over
	// this window's sampling ticks only.
	QueueP50KB, QueueP99KB, QueueMaxKB float64
	// RunQueueP99KB is the cumulative p99 since monitoring began.
	RunQueueP99KB float64
	// Flows counts completions so far; SlowdownP50/P99 summarize their
	// FCT slowdowns so far.
	Flows                    int
	SlowdownP50, SlowdownP99 float64
}

// StatsObserver streams interval statistics flushes from a live run —
// the progress feed for dashboards and long campaigns: every Every
// queue-sampling ticks it emits one StatsFlush combining the closed
// queue window with cumulative flow statistics. The observer keeps its
// own slowdown sketch fed from the flow stream, so it works (and costs
// O(sketch buckets)) in both exact and sketch-stats runs.
//
// Like every observer, attaching one keeps the run on a single engine.
type StatsObserver struct {
	// Every is the window length in queue sampling ticks (default 100:
	// 1 ms at the default 10 µs sampling period).
	Every   int
	OnFlush func(StatsFlush)
	// Accuracy is the observer's sketch relative accuracy (default 1%).
	Accuracy float64
}

func (o StatsObserver) attach(sc *experiment.LoadScenario) {
	if o.OnFlush == nil {
		return
	}
	slowdown := stats.NewSketch(o.Accuracy)
	prevFlow := sc.Obs.OnFlow
	sc.Obs.OnFlow = func(ev experiment.FlowEvent) {
		if prevFlow != nil {
			prevFlow(ev)
		}
		slowdown.Add(ev.Rec.Slowdown())
	}
	if o.Every > 0 {
		sc.FlushEvery = o.Every
	}
	fn, prevFlush := o.OnFlush, sc.Obs.OnQueueFlush
	sc.Obs.OnQueueFlush = func(f stats.QueueFlush) {
		if prevFlush != nil {
			prevFlush(f)
		}
		out := StatsFlush{
			Start:         fromSim(f.Start),
			End:           fromSim(f.At),
			QueueP50KB:    f.Window.P50 / 1024,
			QueueP99KB:    f.Window.P99 / 1024,
			QueueMaxKB:    f.Window.Max / 1024,
			RunQueueP99KB: f.Run.P99 / 1024,
			Flows:         int(slowdown.Count()),
		}
		if out.Flows > 0 {
			out.SlowdownP50 = slowdown.Quantile(50)
			out.SlowdownP99 = slowdown.Quantile(99)
		}
		fn(out)
	}
}
