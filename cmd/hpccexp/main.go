// Command hpccexp runs campaigns over the registered experiment
// scenarios — every figure and ablation of the HPCC paper plus the
// extra scenarios registered through the same interface. Jobs fan out
// across a bounded worker pool with deterministic per-job seeding, so
// output is byte-identical whatever -parallel is.
//
// Usage:
//
//	hpccexp [flags] <scenario|family|glob|all>...
//	hpccexp -list
//
// Selectors are exact names ("fig11"), family prefixes ("fig9" runs
// every fig9-* job, "ablations" both ablations), path globs ("fig1*"),
// or "all". Examples:
//
//	hpccexp -list
//	hpccexp fig2 fig3
//	hpccexp -parallel 8 all
//	hpccexp -seeds 5 -json fig10 > fig10.json
//	hpccexp -csv 'fig9-*' > fig9.csv
//
// The default scale is CI-friendly; -scale bench roughly quadruples the
// flow counts, -scale paper uses the full 320-host FatTree (slow).
// Per-job wall-clock/event-count timing goes to stderr (-timing=false
// to silence).
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcc/internal/campaign"
	"hpcc/internal/experiment"
	"hpcc/internal/report"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "experiment scale: default, bench, paper")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		seeds     = flag.Int("seeds", 1, "replicates per scenario; >1 aggregates cells to mean±95% CI")
		parallel  = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		asJSON    = flag.Bool("json", false, "emit one JSON document instead of text tables")
		asCSV     = flag.Bool("csv", false, "emit CSV sections instead of text tables")
		timing    = flag.Bool("timing", true, "print per-job wall-clock/event timing to stderr")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpccexp [flags] <scenario|family|glob|all>...\n")
		fmt.Fprintf(os.Stderr, "       hpccexp -list\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, s := range experiment.All() {
			fmt.Printf("%-18s %s\n", s.Name, s.Title)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON && *asCSV {
		fmt.Fprintln(os.Stderr, "hpccexp: -json and -csv are mutually exclusive")
		os.Exit(2)
	}

	sc, fat := scales(*scaleName)
	scens, err := experiment.Match(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccexp:", err)
		os.Exit(2)
	}

	jobs := make([]campaign.Job, len(scens))
	for i, s := range scens {
		run := s.Run
		jobs[i] = campaign.Job{
			Name: s.Name,
			Run: func(jobSeed int64) []*experiment.Table {
				return run(experiment.Params{Scale: sc, Fat: fat, Seed: jobSeed})
			},
		}
	}

	res := campaign.Run(campaign.Config{Parallel: *parallel, Seeds: *seeds, BaseSeed: *seed}, jobs)
	if *timing {
		report.WriteTiming(os.Stderr, res)
	}

	switch {
	case *asJSON:
		err = report.WriteJSON(os.Stdout, res, map[string]string{"scale": *scaleName})
	case *asCSV:
		err = report.WriteCSV(os.Stdout, res)
	default:
		err = report.WriteText(os.Stdout, res)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccexp:", err)
		os.Exit(1)
	}
	if err := res.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "hpccexp: job failed:", err)
		os.Exit(1)
	}
}

func scales(name string) (experiment.Scale, topology.FatTreeSpec) {
	switch name {
	case "bench":
		return experiment.Scale{MaxFlows: 3000, Until: 40 * sim.Millisecond, Drain: 60 * sim.Millisecond},
			topology.ScaledFatTree()
	case "paper":
		return experiment.Scale{MaxFlows: 20000, Until: 100 * sim.Millisecond, Drain: 200 * sim.Millisecond},
			topology.PaperFatTree()
	default:
		return experiment.Scale{}, topology.ScaledFatTree()
	}
}
