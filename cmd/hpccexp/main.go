// Command hpccexp reproduces the HPCC paper's figures one by one,
// printing the same rows/series each figure plots. DESIGN.md maps every
// figure to its implementation; EXPERIMENTS.md records paper-vs-
// measured outcomes.
//
// Usage:
//
//	hpccexp [flags] fig1|fig2|fig3|fig6|fig9|fig10|fig11|fig12|fig13|fig14|ablations|theory|all
//
// The default scale is CI-friendly; -scale bench roughly quadruples the
// flow counts, -scale paper uses the full 320-host FatTree (slow).
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcc/internal/experiment"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "experiment scale: default, bench, paper")
		seed      = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpccexp [flags] <figure>...\n")
		fmt.Fprintf(os.Stderr, "figures: fig1 fig2 fig3 fig6 fig9 fig10 fig11 fig12 fig13 fig14 ablations theory all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	sc, fat := scales(*scaleName, *seed)
	for _, name := range flag.Args() {
		if name == "all" {
			for _, f := range []string{"fig1", "fig2", "fig3", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablations", "theory"} {
				runFigure(f, sc, fat, *seed)
			}
			continue
		}
		runFigure(name, sc, fat, *seed)
	}
}

func scales(name string, seed int64) (experiment.Scale, topology.FatTreeSpec) {
	switch name {
	case "bench":
		return experiment.Scale{MaxFlows: 3000, Until: 40 * sim.Millisecond, Drain: 60 * sim.Millisecond, Seed: seed},
			topology.ScaledFatTree()
	case "paper":
		return experiment.Scale{MaxFlows: 20000, Until: 100 * sim.Millisecond, Drain: 200 * sim.Millisecond, Seed: seed},
			topology.PaperFatTree()
	default:
		return experiment.Scale{Seed: seed}, topology.ScaledFatTree()
	}
}

func runFigure(name string, sc experiment.Scale, fat topology.FatTreeSpec, seed int64) {
	w := os.Stdout
	switch name {
	case "fig1":
		experiment.Fig01(0, seed).Table().Fprint(w)
	case "fig2":
		for _, t := range experiment.Fig02(sc).Tables() {
			t.Fprint(w)
		}
	case "fig3":
		for _, t := range experiment.Fig03(sc).Tables() {
			t.Fprint(w)
		}
	case "fig6":
		experiment.Fig06(0, seed).Table().Fprint(w)
	case "fig9":
		experiment.Fig09LongShort(nil, 0, seed).Table().Fprint(w)
		experiment.Fig09Incast(nil, 0, seed).Table().Fprint(w)
		experiment.Fig09Mice(nil, 0, seed).Table().Fprint(w)
		experiment.Fig09Fairness(nil, 0, seed).Table().Fprint(w)
	case "fig10":
		for _, t := range experiment.Fig10(sc).Tables() {
			t.Fprint(w)
		}
	case "fig11":
		for _, t := range experiment.Fig11(fat, sc).Tables() {
			t.Fprint(w)
		}
	case "fig12":
		for _, t := range experiment.Fig12(fat, sc).Tables() {
			t.Fprint(w)
		}
	case "fig13":
		for _, t := range experiment.Fig13(0, seed).Tables() {
			t.Fprint(w)
		}
	case "fig14":
		experiment.Fig14(nil, 0, seed).Table().Fprint(w)
	case "ablations":
		experiment.EtaMaxStageTable(experiment.AblationEtaMaxStage(0, seed)).Fprint(w)
		experiment.QuantizeTable(experiment.AblationINTQuantization(sc)).Fprint(w)
	case "theory":
		experiment.TheoryLemmaTable(200, seed).Fprint(w)
	default:
		fmt.Fprintf(os.Stderr, "hpccexp: unknown figure %q\n", name)
		os.Exit(2)
	}
}
