// Command hpccsim runs a single cluster-load scenario — scheme ×
// topology × workload × load — and prints the FCT-slowdown, queue and
// PFC summary.
//
// Examples:
//
//	hpccsim -scheme hpcc -topo pod -workload websearch -load 0.5
//	hpccsim -scheme dcqcn -topo fattree -workload fbhadoop -incast
//	hpccsim -json -scheme hpcc -load 0.5 > result.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hpcc"
	"hpcc/internal/prof"
)

func main() {
	var (
		scheme   = flag.String("scheme", "hpcc", "congestion control: hpcc, dcqcn, dcqcn+win, timely, timely+win, dctcp, hpcc-rxrate, hpcc-perack, hpcc-perrtt")
		topo     = flag.String("topo", "pod", "topology: pod, fattree")
		paper    = flag.Bool("paper-scale", false, "full 320-host FatTree (slow)")
		work     = flag.String("workload", "websearch", "flow sizes: websearch, fbhadoop")
		load     = flag.Float64("load", 0.3, "average link load")
		flows    = flag.Int("flows", 1000, "max generated flows")
		duration = flag.Duration("duration", 20*time.Millisecond, "arrival window (virtual time)")
		drain    = flag.Duration("drain", 30*time.Millisecond, "extra drain time")
		incast   = flag.Bool("incast", false, "add periodic fan-in events (2% of capacity)")
		lossy    = flag.Bool("lossy", false, "disable PFC (go-back-N recovery)")
		shards   = flag.Int("shards", 1, "partition the fabric across this many engines (multi-core; byte-identical results)")
		spec     = flag.Bool("spec", true, "speculative shard synchronization (checkpoint + rollback instead of a barrier every epoch; byte-identical results)")
		specWin  = flag.Int("spec-window", 0, "speculation window in lookahead epochs (0 = default 8)")
		sketch   = flag.Bool("sketch", false, "streaming statistics: constant-memory DDSketch quantiles instead of exact per-flow retention")
		accuracy = flag.Float64("stats-accuracy", 0, "sketch relative accuracy with -sketch (0 = default 0.01)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		asJSON   = flag.Bool("json", false, "emit the result as one JSON document")
	)
	profiles := prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := profiles.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccsim:", err)
		os.Exit(1)
	}

	lossless := !*lossy
	res, err := hpcc.Run(hpcc.SimConfig{
		Scheme:            *scheme,
		Topology:          *topo,
		PaperScale:        *paper,
		Workload:          *work,
		Load:              *load,
		Flows:             *flows,
		Duration:          *duration,
		Drain:             *drain,
		Incast:            *incast,
		Lossless:          &lossless,
		Shards:            *shards,
		Speculate:         spec,
		SpeculationWindow: *specWin,
		SketchStats:       *sketch,
		StatsAccuracy:     *accuracy,
		Seed:              *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccsim:", err)
		os.Exit(1)
	}
	// Profiles cover the simulation itself; flush before reporting.
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "hpccsim:", err)
		os.Exit(1)
	}
	if *shards > 1 && res.ShardsUsed != *shards {
		fmt.Fprintf(os.Stderr,
			"hpccsim: requested %d shards but the run used %d engine(s) "+
				"(sharding is best-effort and limited by the fabric's host "+
				"clusters; results are unaffected)\n",
			*shards, res.ShardsUsed)
	}
	if *spec && res.ShardsUsed > 1 && !res.Speculated {
		fmt.Fprintln(os.Stderr,
			"hpccsim: speculation is unavailable for this scenario (ECN-marking "+
				"schemes replay with an RNG); the run used conservative barriers; "+
				"results are unaffected")
	}
	if res.Speculated && res.SpecRollbacks > res.SpecCommits {
		fmt.Fprintf(os.Stderr,
			"hpccsim: speculative rollbacks (%d) outnumbered commits (%d); "+
				"cross-shard traffic arrives too densely for this fabric to "+
				"speculate profitably; results are unaffected\n",
			res.SpecRollbacks, res.SpecCommits)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "hpccsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("scheme        %s\n", res.Scheme)
	fmt.Printf("flows         %d completed, %d censored\n", res.Flows, res.Censored)
	fmt.Printf("slowdown      p50 %.2f   p95 %.2f   p99 %.2f   p99.9 %.2f\n", res.SlowdownP50, res.SlowdownP95, res.SlowdownP99, res.SlowdownP999)
	fmt.Printf("short (<=7K)  p99 %.2f\n", res.ShortFlowP99Slowdown)
	fmt.Printf("queue         p50 %.1f KB   p99 %.1f KB   max %.1f KB\n", res.QueueP50KB, res.QueueP99KB, res.QueueMaxKB)
	fmt.Printf("pfc pause     %.3f%% of port-time\n", res.PFCPauseFraction*100)
	fmt.Printf("drops         %d\n", res.Drops)
	mode := "exact"
	if *sketch {
		mode = "sketch"
	}
	fmt.Printf("stat memory   %d B retained (%s mode)\n", res.RetainedStatBytes, mode)
	fmt.Println("\np95 slowdown by flow size:")
	for _, b := range res.BucketP95 {
		if b.N == 0 {
			continue
		}
		fmt.Printf("  <=%-10d %8.2f   (%d flows)\n", b.SizeHi, b.P95, b.N)
	}
}
