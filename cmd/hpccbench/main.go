// Command hpccbench is the repo's perf-baseline harness: it runs a
// fixed set of simulation scenarios (FatTree WebSearch at 50% load, a
// 16:1 incast, and a parking-lot chain), and reports how fast the
// simulator itself runs — events/sec, simulated packets/sec, and heap
// allocations per packet. Its JSON output is the recorded perf
// trajectory (BENCH_PR2.json, BENCH_PR4.json and successors); CI runs
// `-quick` as a smoke test and uploads the artifact.
//
// The FatTree scenario runs three ways: the default 4-ary-heap
// scheduler, the calendar-queue scheduler, and sharded across
// -shards engines (conservative-lookahead partitioning) — all three
// produce byte-identical simulation results, so the numbers compare
// pure engine mechanics. -paper adds the full 320-host paper-scale
// fabric (the ROADMAP wall-clock target).
//
// Usage:
//
//	hpccbench [-quick] [-paper] [-shards n] [-label name] [-out bench.json]
//	          [-baseline old.json] [-perfbaseline old.json]
//	          [-cpuprofile f] [-memprofile f] [-mutexprofile f]
//
// With -baseline, the run fails (exit 1) if any scenario's
// allocs/packet regresses materially against the same-named scenario
// in the baseline file — the CI guard for the zero-allocation hot
// path. -perfbaseline adds the throughput gate: packets/s may not
// collapse and the deterministic events/port-packet ratio may not
// grow (see gatePerf). Wall-clock numbers are machine-sensitive;
// allocs/packet and events/port-packet are deterministic and
// machine-independent. The -cpuprofile/-memprofile/-mutexprofile
// flags (internal/prof) capture pprof profiles of the scenario runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/prof"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// ScenarioResult is one scenario's measurement.
type ScenarioResult struct {
	Name        string  `json:"name"`
	Shards      int     `json:"shards,omitempty"`
	WallMS      float64 `json:"wall_ms"`
	SimulatedMS float64 `json:"simulated_ms"`
	// PacketsPerSec (simulated data packets retired per wall second) is
	// the headline throughput metric: unlike events/s it is not deflated
	// when the scheduler learns to do the same work in fewer events —
	// the lazy-port change cut the event count per packet by ~35%, which
	// made events/s look flat while the simulator got nearly 2× faster.
	DataPackets   uint64  `json:"data_packets"`
	PortPackets   uint64  `json:"port_packets"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	Events        uint64  `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	// EventsPerPortPacket is the scheduling-efficiency ratio: engine
	// events fired per port-level frame serialized. Deterministic (no
	// wall clock in it), so it gates tightly — a rise means some path
	// started scheduling events it doesn't need.
	EventsPerPortPacket float64 `json:"events_per_port_packet,omitempty"`
	Allocs              uint64  `json:"allocs"`
	AllocsPerPacket     float64 `json:"allocs_per_packet"`
	BytesPerPacket      float64 `json:"bytes_per_packet"`
	Flows               int     `json:"flows"`
	// RetainedStatBytes is the run's logical statistics retention
	// (LoadResult.RetainedStatBytes): per-flow records plus queue
	// samples in exact mode, sketch bucket arrays in streaming mode.
	// Deterministic, so it gates like allocs/packet: the stream-flows
	// family must stay flat as the flow count grows.
	RetainedStatBytes int64 `json:"retained_stat_bytes,omitempty"`

	// Shard-synchronization accounting (sharded scenarios only).
	// Epochs counts conservative epochs, including post-rollback
	// replays; SpecEpochs/SpecCommits/SpecRollbacks describe the
	// optimistic barriers when Speculated; SyncOverhead is the fraction
	// of wall time spent synchronizing rather than running engines.
	Speculated    bool    `json:"speculated,omitempty"`
	Epochs        uint64  `json:"epochs,omitempty"`
	SpecEpochs    uint64  `json:"spec_epochs,omitempty"`
	SpecCommits   uint64  `json:"spec_commits,omitempty"`
	SpecRollbacks uint64  `json:"spec_rollbacks,omitempty"`
	SyncOverhead  float64 `json:"sync_overhead,omitempty"`
}

// Speedup is one sharded scenario's wall-clock gain over its
// single-engine counterpart in the same harness run. Only meaningful on
// a multi-core host (GOMAXPROCS in the record says which); on one core
// the shard engines execute serially and the factor hovers near 1.
type Speedup struct {
	Scenario string  `json:"scenario"`
	Base     string  `json:"base"`
	Shards   int     `json:"shards"`
	Factor   float64 `json:"speedup"`
}

// Run is one full harness invocation.
type Run struct {
	Label     string           `json:"label"`
	Quick     bool             `json:"quick"`
	GoVersion string           `json:"go_version"`
	Procs     int              `json:"gomaxprocs"`
	Scenarios []ScenarioResult `json:"scenarios"`
	// Speedups pairs every "<name>-shardsN" scenario with its "<name>"
	// baseline row from the same run.
	Speedups []Speedup `json:"speedups,omitempty"`
}

// outcome is what a scenario body reports back to the measurement
// wrapper: simulated packets and virtual time elapsed.
type outcome struct {
	dataPkts   uint64
	portPkts   uint64
	flows      int
	shards     int
	simTime    sim.Time
	speculated bool
	sync       sim.SyncStats
	retained   int64
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced sizes for CI smoke runs")
		paper    = flag.Bool("paper", false, "add the full 320-host paper-scale FatTree scenarios (slow)")
		shards   = flag.Int("shards", 2, "shard count for the sharded FatTree scenarios (<2 disables them)")
		label    = flag.String("label", "", "label recorded in the JSON output")
		out      = flag.String("out", "", "write JSON to this file (default: stdout table only)")
		baseline = flag.String("baseline", "", "prior bench JSON; exit 1 if allocs/packet regresses against it")
		perfbase = flag.String("perfbaseline", "", "prior bench JSON; exit 1 if packets/s or events/port-packet regresses against it")
	)
	profiles := prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := profiles.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccbench:", err)
		os.Exit(1)
	}

	run := Run{Label: *label, Quick: *quick, GoVersion: runtime.Version(), Procs: runtime.GOMAXPROCS(0)}
	add := func(name string, fn func() outcome) {
		s := measure(name, fn)
		run.Scenarios = append(run.Scenarios, s)
		// A "-shardsN" row that ran on fewer engines would otherwise be
		// misread as a multi-core measurement.
		if i := strings.LastIndex(name, "-shards"); i >= 0 {
			if want, err := strconv.Atoi(name[i+len("-shards"):]); err == nil && s.Shards != want {
				fmt.Fprintf(os.Stderr,
					"hpccbench: %s: requested %d shards but ran on %d engine(s)\n",
					name, want, s.Shards)
			}
		}
		// Likewise a "-spec" row that silently fell back to conservative
		// barriers, or whose optimistic bet mostly lost, is not measuring
		// what its name claims.
		if strings.Contains(name, "-spec") {
			if !s.Speculated {
				fmt.Fprintf(os.Stderr,
					"hpccbench: %s: speculation requested but the run used conservative barriers\n", name)
			} else if s.SpecRollbacks > s.SpecCommits {
				fmt.Fprintf(os.Stderr,
					"hpccbench: %s: speculative rollbacks (%d) outnumbered commits (%d); conservative sync dominated\n",
					name, s.SpecRollbacks, s.SpecCommits)
			}
		}
	}
	add("fattree-websearch-50", func() outcome { return fattreeWebSearch(*quick, false, 1, false) })
	add("fattree-websearch-50-calendar", func() outcome { return fattreeWebSearch(*quick, true, 1, false) })
	if *shards > 1 {
		add(fmt.Sprintf("fattree-websearch-50-shards%d", *shards),
			func() outcome { return fattreeWebSearch(*quick, false, *shards, false) })
		add(fmt.Sprintf("fattree-websearch-50-spec-shards%d", *shards),
			func() outcome { return fattreeWebSearch(*quick, false, *shards, true) })
	}
	add("incast-16-1", func() outcome { return incast16(*quick) })
	add("parkinglot-4seg", func() outcome { return parkingLot(*quick) })
	// The streaming-statistics memory family: same scenario at 4× the
	// flow count. In sketch mode RetainedStatBytes must stay flat —
	// gateRetained below fails the run if it grows with the flows.
	small, big := 250_000, 1_000_000
	if *quick {
		small, big = 25_000, 100_000
	}
	add(fmt.Sprintf("stream-flows-%dk", small/1000), func() outcome { return streamFlows(small) })
	add(fmt.Sprintf("stream-flows-%dk", big/1000), func() outcome { return streamFlows(big) })
	if *paper {
		add("paper-fattree-websearch", func() outcome { return paperFatTree(false, 1, false) })
		add("paper-fattree-websearch-calendar", func() outcome { return paperFatTree(true, 1, false) })
		if *shards > 1 {
			// Calendar engines under sharding: the name encodes both
			// knobs so the row is not read as sharding alone.
			add(fmt.Sprintf("paper-fattree-websearch-calendar-shards%d", *shards),
				func() outcome { return paperFatTree(true, *shards, false) })
			add(fmt.Sprintf("paper-fattree-websearch-spec-shards%d", *shards),
				func() outcome { return paperFatTree(false, *shards, true) })
		}
	}

	run.Speedups = speedups(run.Scenarios)

	// Profiles cover the measured scenarios only: flush before the
	// reporting and gate paths so their work doesn't pollute the data.
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "hpccbench:", err)
		os.Exit(1)
	}

	fmt.Printf("%-34s %10s %14s %14s %12s %12s %11s %10s %10s\n",
		"scenario", "wall-ms", "data-pkts", "pkts/s", "events", "events/s", "ev/port-pkt", "allocs/pkt", "ret-bytes")
	for _, s := range run.Scenarios {
		fmt.Printf("%-34s %10.1f %14d %14.0f %12d %12.0f %11.3f %10.3f %10d\n",
			s.Name, s.WallMS, s.DataPackets, s.PacketsPerSec, s.Events, s.EventsPerSec, s.EventsPerPortPacket, s.AllocsPerPacket, s.RetainedStatBytes)
	}
	for _, sp := range run.Speedups {
		fmt.Printf("speedup %-26s %10.2fx vs %s (%d shards, GOMAXPROCS %d)\n",
			sp.Scenario, sp.Factor, sp.Base, sp.Shards, run.Procs)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(&run, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpccbench:", err)
			os.Exit(1)
		}
	}
	if err := gateRetained(run.Scenarios); err != nil {
		fmt.Fprintln(os.Stderr, "hpccbench:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := gateAllocs(run, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "hpccbench:", err)
			os.Exit(1)
		}
	}
	if *perfbase != "" {
		if err := gatePerf(run, *perfbase); err != nil {
			fmt.Fprintln(os.Stderr, "hpccbench:", err)
			os.Exit(1)
		}
	}
}

// gateRetained is the streaming-statistics memory gate: across the
// stream-flows family the retained-statistics footprint must not grow
// with the flow count. Sketch bucket occupancy still fills in a little
// between runs, so the gate allows 1.25× over the family minimum —
// exact retention at 4× the flows would blow through that by orders of
// magnitude. Needs no baseline file: the family self-compares.
func gateRetained(rows []ScenarioResult) error {
	var min, max int64
	var minName, maxName string
	for _, s := range rows {
		if !strings.HasPrefix(s.Name, "stream-flows-") {
			continue
		}
		if minName == "" || s.RetainedStatBytes < min {
			min, minName = s.RetainedStatBytes, s.Name
		}
		if maxName == "" || s.RetainedStatBytes > max {
			max, maxName = s.RetainedStatBytes, s.Name
		}
	}
	if minName == "" {
		return nil
	}
	if limit := min + min/4; max > limit {
		return fmt.Errorf("retained-stat-bytes regression: %s retained %d B > limit %d B (1.25x %s's %d B); streaming stats are no longer flat in the flow count",
			maxName, max, limit, minName, min)
	}
	fmt.Printf("retained-stat-bytes gate (stream-flows family): ok (%d..%d B)\n", min, max)
	return nil
}

// speedups pairs each "<base>-shardsN" row with its "<base>" row and
// records the wall-clock ratio — the multi-core gain the ROADMAP
// tracks (BENCH_PR5.json and successors).
func speedups(rows []ScenarioResult) []Speedup {
	byName := map[string]ScenarioResult{}
	for _, s := range rows {
		byName[s.Name] = s
	}
	var out []Speedup
	for _, s := range rows {
		i := strings.LastIndex(s.Name, "-shards")
		if i < 0 {
			continue
		}
		// A speculative row's single-engine counterpart is the plain
		// scenario: serial execution has no barriers to speculate past.
		base, ok := byName[strings.TrimSuffix(s.Name[:i], "-spec")]
		if !ok || s.WallMS <= 0 {
			continue
		}
		out = append(out, Speedup{
			Scenario: s.Name,
			Base:     base.Name,
			Shards:   s.Shards,
			Factor:   base.WallMS / s.WallMS,
		})
	}
	return out
}

// loadBaseline reads a prior bench JSON: either a bare Run or a
// {before, after} record like BENCH_PR2.json, where "after" is the
// baseline.
func loadBaseline(path string) (Run, error) {
	var base Run
	buf, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	var wrapped struct {
		After *Run `json:"after"`
	}
	if err := json.Unmarshal(buf, &wrapped); err == nil && wrapped.After != nil {
		return *wrapped.After, nil
	}
	if err := json.Unmarshal(buf, &base); err != nil {
		return base, fmt.Errorf("baseline %s: %v", path, err)
	}
	return base, nil
}

// gateAllocs compares allocs/packet per scenario against a baseline
// file. Wall-clock never gates here — only the deterministic
// allocation counts do. Baselines are recorded from full runs; quick
// runs amortize fixed startup allocations over far fewer packets, so
// the quick gate is looser.
func gateAllocs(run Run, path string) error {
	base, err := loadBaseline(path)
	if err != nil {
		return err
	}
	byName := map[string]ScenarioResult{}
	for _, s := range base.Scenarios {
		byName[s.Name] = s
	}
	slack, bias := 1.25, 0.02
	if run.Quick && !base.Quick {
		slack, bias = 2.0, 0.75
	}
	for _, s := range run.Scenarios {
		b, ok := byName[s.Name]
		if !ok {
			continue
		}
		if limit := b.AllocsPerPacket*slack + bias; s.AllocsPerPacket > limit {
			return fmt.Errorf("allocs/packet regression in %s: %.3f > limit %.3f (baseline %.3f)",
				s.Name, s.AllocsPerPacket, limit, b.AllocsPerPacket)
		}
	}
	fmt.Printf("allocs/packet gate vs %s: ok\n", path)
	return nil
}

// gatePerf is the throughput-regression gate introduced with the
// demand-driven scheduling work (BENCH_PR9.json). It checks two
// numbers per scenario:
//
//   - packets/s, loosely: wall-clock throughput is machine- and
//     load-sensitive (CI smoke runs share one noisy vCPU), so the gate
//     only catches collapses — half the baseline within the same mode,
//     a quarter when a quick run gates against a full baseline (quick
//     runs amortize startup over far fewer packets).
//   - events/port-packet, tightly: the ratio is deterministic, so any
//     real increase means a code path started scheduling events it
//     used to skip. Same-mode slack is 5%; cross-mode 20% (shorter
//     runs spend proportionally more events on arrivals/teardown).
func gatePerf(run Run, path string) error {
	base, err := loadBaseline(path)
	if err != nil {
		return err
	}
	byName := map[string]ScenarioResult{}
	for _, s := range base.Scenarios {
		byName[s.Name] = s
	}
	ppsFloor, evSlack := 0.5, 1.05
	if run.Quick != base.Quick {
		ppsFloor, evSlack = 0.25, 1.20
	}
	for _, s := range run.Scenarios {
		b, ok := byName[s.Name]
		if !ok {
			continue
		}
		if floor := b.PacketsPerSec * ppsFloor; b.PacketsPerSec > 0 && s.PacketsPerSec < floor {
			return fmt.Errorf("packets/s collapse in %s: %.0f < floor %.0f (baseline %.0f)",
				s.Name, s.PacketsPerSec, floor, b.PacketsPerSec)
		}
		if limit := b.EventsPerPortPacket * evSlack; b.EventsPerPortPacket > 0 && s.EventsPerPortPacket > limit {
			return fmt.Errorf("events/port-packet regression in %s: %.3f > limit %.3f (baseline %.3f); something schedules events it doesn't need",
				s.Name, s.EventsPerPortPacket, limit, b.EventsPerPortPacket)
		}
	}
	fmt.Printf("packets/s + events/port-packet gate vs %s: ok\n", path)
	return nil
}

// measure runs fn with the engine meter attached and GC counters
// bracketed, then derives the throughput metrics.
func measure(name string, fn func() outcome) ScenarioResult {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	meter := sim.AttachMeter()
	t0 := time.Now()
	oc := fn()
	wall := time.Since(t0)
	meter.Detach()
	runtime.ReadMemStats(&m1)

	allocs := m1.Mallocs - m0.Mallocs
	bytes := m1.TotalAlloc - m0.TotalAlloc
	r := ScenarioResult{
		Name:              name,
		Shards:            oc.shards,
		WallMS:            float64(wall.Nanoseconds()) / 1e6,
		SimulatedMS:       oc.simTime.Seconds() * 1e3,
		Events:            meter.Events(),
		DataPackets:       oc.dataPkts,
		PortPackets:       oc.portPkts,
		Allocs:            allocs,
		Flows:             oc.flows,
		Speculated:        oc.speculated,
		RetainedStatBytes: oc.retained,
		Epochs:            oc.sync.Epochs,
		SpecEpochs:        oc.sync.SpecEpochs,
		SpecCommits:       oc.sync.SpecCommits,
		SpecRollbacks:     oc.sync.SpecRollbacks,
		SyncOverhead:      oc.sync.SyncOverhead(),
	}
	if secs := wall.Seconds(); secs > 0 {
		r.EventsPerSec = float64(r.Events) / secs
		r.PacketsPerSec = float64(r.DataPackets) / secs
	}
	if r.DataPackets > 0 {
		r.AllocsPerPacket = float64(allocs) / float64(r.DataPackets)
		r.BytesPerPacket = float64(bytes) / float64(r.DataPackets)
	}
	if r.PortPackets > 0 {
		r.EventsPerPortPacket = float64(r.Events) / float64(r.PortPackets)
	}
	return r
}

// fattreeWebSearch is the paper's §5.3 setup at half scale: WebSearch
// Poisson arrivals at 50% load on the CI-sized FatTree, HPCC with INT.
// The calendar and shards knobs swap engine mechanics without changing
// results.
func fattreeWebSearch(quick, calendar bool, shards int, speculate bool) outcome {
	s := experiment.LoadScenario{
		Scheme:    mustScheme("hpcc"),
		Topo:      experiment.FatTreeTopo(topology.ScaledFatTree()),
		Traffic:   []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.5}},
		MaxFlows:  1200,
		Until:     8 * sim.Millisecond,
		Drain:     20 * sim.Millisecond,
		PFC:       true,
		Seed:      1,
		Calendar:  calendar,
		Shards:    shards,
		Speculate: speculate,
	}
	if quick {
		s.MaxFlows = 200
		s.Until = 2 * sim.Millisecond
		s.Drain = 10 * sim.Millisecond
	}
	return runScenario(s)
}

// paperFatTree is the ROADMAP scale target: WebSearch at 50% load on
// the full 320-host, 16-core/20-agg/20-ToR paper fabric.
func paperFatTree(calendar bool, shards int, speculate bool) outcome {
	s := experiment.LoadScenario{
		Scheme:      mustScheme("hpcc"),
		Topo:        experiment.FatTreeTopo(topology.PaperFatTree()),
		Traffic:     []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.5}},
		MaxFlows:    12_000,
		Until:       8 * sim.Millisecond,
		Drain:       20 * sim.Millisecond,
		PFC:         true,
		Seed:        1,
		Calendar:    calendar,
		Shards:      shards,
		Speculate:   speculate,
		BufferBytes: experiment.BufferFor(320),
		// Paper-scale runs hold hundreds of thousands of flows over a
		// campaign; bound per-host retention like a long campaign would.
		CompletedWindow: 256,
	}
	return runScenario(s)
}

// runScenario is the harness's RunLoad: a sharded run dying mid-epoch
// is a harness bug, and a half-measured scenario must not land in the
// recorded trajectory.
func runScenario(s experiment.LoadScenario) outcome {
	r, err := experiment.RunLoad(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccbench:", err)
		os.Exit(1)
	}
	return outcome{dataPkts: r.DataPackets, portPkts: r.PortPackets, flows: r.Started,
		shards: r.Shards, simTime: r.Elapsed, speculated: r.Speculated, sync: r.Sync,
		retained: r.RetainedStatBytes}
}

// streamFlows floods a 4-host star with fixed-1KB Poisson flows at 50%
// load in streaming-statistics mode. The scenario exists for its
// RetainedStatBytes number: one flow is one packet, so a million flows
// is cheap to simulate, and the sketch footprint must not move between
// the family's flow counts.
func streamFlows(flows int) outcome {
	fixed1KB := workload.MustCDF("fixed-1KB", []workload.Point{{Bytes: 1000, Prob: 0}, {Bytes: 1000, Prob: 1}})
	return runScenario(experiment.LoadScenario{
		Scheme:      mustScheme("hpcc"),
		Topo:        experiment.StarTopo(4),
		Traffic:     []workload.Generator{workload.PoissonSpec{CDF: fixed1KB, Load: 0.5}},
		MaxFlows:    flows,
		Until:       sim.Second, // MaxFlows is the real cutoff
		Drain:       20 * sim.Millisecond,
		PFC:         true,
		Seed:        1,
		SketchStats: true,
	})
}

// incast16 runs repeated 16-to-1 fan-in rounds of 100 KB per sender on
// the §5.4 star fixture.
func incast16(quick bool) outcome {
	rounds := 8
	if quick {
		rounds = 2
	}
	sch := mustScheme("hpcc")
	eng := sim.NewEngine()
	hcfg := host.Config{CC: sch.Factory, INT: sch.INT, BaseRTT: 10 * sim.Microsecond, Seed: 1}
	scfg := fabric.SwitchConfig{PFCEnabled: true, INTEnabled: sch.INT, Seed: 1}
	nw := topology.Star(eng, 17, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)

	flows := 0
	var startRound func()
	startRound = func() {
		if rounds == 0 {
			return
		}
		rounds--
		pending := 16
		for s := 0; s < 16; s++ {
			flows++
			nw.StartFlow(s, 16, 100_000, func(*host.Flow) {
				pending--
				if pending == 0 {
					startRound()
				}
			})
		}
	}
	startRound()
	eng.Run()
	return outcome{dataPkts: flowPackets(nw), portPkts: portPackets(nw), flows: flows, shards: 1, simTime: eng.Now()}
}

// parkingLot runs the §3.2 multi-bottleneck chain: one long flow across
// every segment plus a local crossing flow per segment.
func parkingLot(quick bool) outcome {
	size := int64(4 << 20)
	if quick {
		size = 1 << 20
	}
	sch := mustScheme("hpcc")
	eng := sim.NewEngine()
	const segments = 4
	topo := experiment.ParkingLotTopo(segments, 100*sim.Gbps)
	hcfg := host.Config{CC: sch.Factory, INT: sch.INT, BaseRTT: topo.BaseRTT(), Seed: 1}
	scfg := fabric.SwitchConfig{PFCEnabled: true, INTEnabled: sch.INT, Seed: 1}
	nw := topo.Build(eng, hcfg, scfg)

	// Host layout per topology.ParkingLot: 0/1 are the long pair, then
	// (2+2i, 3+2i) are segment i's local sender/receiver.
	flows := 1
	nw.StartFlow(0, 1, 2*size, nil)
	for i := 0; i < segments; i++ {
		flows++
		nw.StartFlow(2+2*i, 3+2*i, size, nil)
	}
	eng.Run()
	return outcome{dataPkts: flowPackets(nw), portPkts: portPackets(nw), flows: flows, shards: 1, simTime: eng.Now()}
}

func flowPackets(nw *topology.Network) uint64 {
	var n uint64
	for _, h := range nw.Hosts {
		for _, f := range h.Flows() {
			n += f.PacketsSent()
		}
	}
	return n
}

func portPackets(nw *topology.Network) uint64 {
	var n uint64
	for _, h := range nw.Hosts {
		for _, p := range h.Ports() {
			n += p.PacketsSent()
		}
	}
	for _, p := range nw.SwitchPorts() {
		n += p.PacketsSent()
	}
	return n
}

func mustScheme(name string) experiment.Scheme {
	s, err := experiment.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}
