// Command hpccbench is the repo's perf-baseline harness: it runs a
// fixed set of simulation scenarios (FatTree WebSearch at 50% load, a
// 16:1 incast, and a parking-lot chain), and reports how fast the
// simulator itself runs — events/sec, simulated packets/sec, and heap
// allocations per packet. Its JSON output is the recorded perf
// trajectory (BENCH_PR2.json and successors); CI runs `-quick` as a
// smoke test and uploads the artifact.
//
// Usage:
//
//	hpccbench [-quick] [-label name] [-out bench.json]
//
// Numbers are wall-clock sensitive: compare runs taken on the same
// machine. Allocations per packet, in contrast, are deterministic and
// machine-independent; regressions there are also guarded by
// testing.AllocsPerRun tests in internal/fabric and internal/host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
	"hpcc/internal/workload"
)

// ScenarioResult is one scenario's measurement.
type ScenarioResult struct {
	Name            string  `json:"name"`
	WallMS          float64 `json:"wall_ms"`
	SimulatedMS     float64 `json:"simulated_ms"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	DataPackets     uint64  `json:"data_packets"`
	PortPackets     uint64  `json:"port_packets"`
	PacketsPerSec   float64 `json:"packets_per_sec"`
	Allocs          uint64  `json:"allocs"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	BytesPerPacket  float64 `json:"bytes_per_packet"`
	Flows           int     `json:"flows"`
}

// Run is one full harness invocation.
type Run struct {
	Label     string           `json:"label"`
	Quick     bool             `json:"quick"`
	GoVersion string           `json:"go_version"`
	Procs     int              `json:"gomaxprocs"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// outcome is what a scenario body reports back to the measurement
// wrapper: simulated packets and virtual time elapsed.
type outcome struct {
	dataPkts uint64
	portPkts uint64
	flows    int
	simTime  sim.Time
}

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced sizes for CI smoke runs")
		label = flag.String("label", "", "label recorded in the JSON output")
		out   = flag.String("out", "", "write JSON to this file (default: stdout table only)")
	)
	flag.Parse()

	run := Run{Label: *label, Quick: *quick, GoVersion: runtime.Version(), Procs: runtime.GOMAXPROCS(0)}
	run.Scenarios = append(run.Scenarios,
		measure("fattree-websearch-50", func() outcome { return fattreeWebSearch(*quick) }),
		measure("incast-16-1", func() outcome { return incast16(*quick) }),
		measure("parkinglot-4seg", func() outcome { return parkingLot(*quick) }),
	)

	fmt.Printf("%-22s %10s %12s %12s %14s %14s %10s\n",
		"scenario", "wall-ms", "events", "events/s", "data-pkts", "pkts/s", "allocs/pkt")
	for _, s := range run.Scenarios {
		fmt.Printf("%-22s %10.1f %12d %12.0f %14d %14.0f %10.3f\n",
			s.Name, s.WallMS, s.Events, s.EventsPerSec, s.DataPackets, s.PacketsPerSec, s.AllocsPerPacket)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(&run, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpccbench:", err)
			os.Exit(1)
		}
	}
}

// measure runs fn with the engine meter attached and GC counters
// bracketed, then derives the throughput metrics.
func measure(name string, fn func() outcome) ScenarioResult {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	meter := sim.AttachMeter()
	t0 := time.Now()
	oc := fn()
	wall := time.Since(t0)
	meter.Detach()
	runtime.ReadMemStats(&m1)

	allocs := m1.Mallocs - m0.Mallocs
	bytes := m1.TotalAlloc - m0.TotalAlloc
	r := ScenarioResult{
		Name:        name,
		WallMS:      float64(wall.Nanoseconds()) / 1e6,
		SimulatedMS: oc.simTime.Seconds() * 1e3,
		Events:      meter.Events(),
		DataPackets: oc.dataPkts,
		PortPackets: oc.portPkts,
		Allocs:      allocs,
		Flows:       oc.flows,
	}
	if secs := wall.Seconds(); secs > 0 {
		r.EventsPerSec = float64(r.Events) / secs
		r.PacketsPerSec = float64(r.DataPackets) / secs
	}
	if r.DataPackets > 0 {
		r.AllocsPerPacket = float64(allocs) / float64(r.DataPackets)
		r.BytesPerPacket = float64(bytes) / float64(r.DataPackets)
	}
	return r
}

// fattreeWebSearch is the paper's §5.3 setup at half scale: WebSearch
// Poisson arrivals at 50% load on the CI-sized FatTree, HPCC with INT.
func fattreeWebSearch(quick bool) outcome {
	s := experiment.LoadScenario{
		Scheme:   mustScheme("hpcc"),
		Topo:     experiment.FatTreeTopo(topology.ScaledFatTree()),
		Traffic:  []workload.Generator{workload.PoissonSpec{CDF: workload.WebSearch(), Load: 0.5}},
		MaxFlows: 1200,
		Until:    8 * sim.Millisecond,
		Drain:    20 * sim.Millisecond,
		PFC:      true,
		Seed:     1,
	}
	if quick {
		s.MaxFlows = 200
		s.Until = 2 * sim.Millisecond
		s.Drain = 10 * sim.Millisecond
	}
	r := experiment.RunLoad(s)
	return outcome{dataPkts: r.DataPackets, portPkts: r.PortPackets, flows: r.Started, simTime: r.Elapsed}
}

// incast16 runs repeated 16-to-1 fan-in rounds of 100 KB per sender on
// the §5.4 star fixture.
func incast16(quick bool) outcome {
	rounds := 8
	if quick {
		rounds = 2
	}
	sch := mustScheme("hpcc")
	eng := sim.NewEngine()
	hcfg := host.Config{CC: sch.Factory, INT: sch.INT, BaseRTT: 10 * sim.Microsecond, Seed: 1}
	scfg := fabric.SwitchConfig{PFCEnabled: true, INTEnabled: sch.INT, Seed: 1}
	nw := topology.Star(eng, 17, 100*sim.Gbps, sim.Microsecond, hcfg, scfg)

	flows := 0
	var startRound func()
	startRound = func() {
		if rounds == 0 {
			return
		}
		rounds--
		pending := 16
		for s := 0; s < 16; s++ {
			flows++
			nw.StartFlow(s, 16, 100_000, func(*host.Flow) {
				pending--
				if pending == 0 {
					startRound()
				}
			})
		}
	}
	startRound()
	eng.Run()
	return outcome{dataPkts: flowPackets(nw), portPkts: portPackets(nw), flows: flows, simTime: eng.Now()}
}

// parkingLot runs the §3.2 multi-bottleneck chain: one long flow across
// every segment plus a local crossing flow per segment.
func parkingLot(quick bool) outcome {
	size := int64(4 << 20)
	if quick {
		size = 1 << 20
	}
	sch := mustScheme("hpcc")
	eng := sim.NewEngine()
	const segments = 4
	topo := experiment.ParkingLotTopo(segments, 100*sim.Gbps)
	hcfg := host.Config{CC: sch.Factory, INT: sch.INT, BaseRTT: topo.BaseRTT(), Seed: 1}
	scfg := fabric.SwitchConfig{PFCEnabled: true, INTEnabled: sch.INT, Seed: 1}
	nw := topo.Build(eng, hcfg, scfg)

	// Host layout per topology.ParkingLot: 0/1 are the long pair, then
	// (2+2i, 3+2i) are segment i's local sender/receiver.
	flows := 1
	nw.StartFlow(0, 1, 2*size, nil)
	for i := 0; i < segments; i++ {
		flows++
		nw.StartFlow(2+2*i, 3+2*i, size, nil)
	}
	eng.Run()
	return outcome{dataPkts: flowPackets(nw), portPkts: portPackets(nw), flows: flows, simTime: eng.Now()}
}

func flowPackets(nw *topology.Network) uint64 {
	var n uint64
	for _, h := range nw.Hosts {
		for _, f := range h.Flows() {
			n += f.PacketsSent()
		}
	}
	return n
}

func portPackets(nw *topology.Network) uint64 {
	var n uint64
	for _, h := range nw.Hosts {
		for _, p := range h.Ports() {
			n += p.PacketsSent()
		}
	}
	for _, p := range nw.SwitchPorts() {
		n += p.PacketsSent()
	}
	return n
}

func mustScheme(name string) experiment.Scheme {
	s, err := experiment.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}
