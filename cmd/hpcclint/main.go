// Command hpcclint drives the internal/analysis suite under
// `go vet -vettool=hpcclint ./...`. It speaks the vet unitchecker
// protocol by hand (self-contained on the standard library, no
// golang.org/x/tools dependency):
//
//	hpcclint -V=full        identify the tool for build caching
//	hpcclint -flags         describe supported flags as JSON
//	hpcclint <cfg>          analyze one package unit described by the
//	                        JSON config file cmd/go writes
//	hpcclint -list          describe every analyzer and its invariant
//	hpcclint -list-allows   inventory every annotation under a tree
//	hpcclint -json <cfg>    emit findings as JSON instead of text
//
// Facts: each unit exports its interprocedural summaries (see
// internal/analysis/facts.go) as JSON to the VetxOutput file cmd/go
// assigns it, and imports dependency summaries from the files listed in
// PackageVetx — the same channel x/tools unitcheckers use for facts.
// Packages outside this module export an empty placeholder, so only
// hpcc packages pay the typechecking cost during the facts-only pass.
//
// Findings print as file:line:col: message and exit with status 2, the
// convention go vet interprets as "diagnostics reported". Note-level
// findings (advisories) are printed and serialized but do not affect
// the exit status. When the HPCCLINT_JSON environment variable names a
// file, every finding is also appended to it as one JSON object per
// line — units run as separate processes, so CI collects one merged
// JSONL artifact there.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hpcc/internal/analysis"
)

// version feeds the go build cache key: bump it whenever analyzer
// behavior or the fact schema changes, or cached empty vetx files from
// older runs would be replayed as "no facts".
const version = "2.0.0"

func main() {
	flagV := flag.String("V", "", "print version and exit (use -V=full for the build-cache id)")
	flagFlags := flag.Bool("flags", false, "print the tool's flag schema as JSON and exit")
	flagList := flag.Bool("list", false, "list the analyzers, the invariant each pins, and exit")
	flagListAllows := flag.String("list-allows", "", "inventory hpcclint annotations under the given directory and exit")
	flagJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout instead of text on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpcclint [-list] [-list-allows dir] [-V=full] [-flags] [-json] <unit.cfg>\n")
		fmt.Fprintf(os.Stderr, "run via: go vet -vettool=$(command -v hpcclint) ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *flagV != "":
		// cmd/go hashes this line into the build cache key; the format
		// must be "<basename> version <...>".
		fmt.Printf("%s version %s\n", progName(), version)
		return
	case *flagFlags:
		// No analyzer-specific flags: cmd/go parses the reply to learn
		// which go vet flags it may forward.
		fmt.Println("[]")
		return
	case *flagList:
		list()
		return
	case *flagListAllows != "":
		if err := listAllows(*flagListAllows); err != nil {
			fmt.Fprintf(os.Stderr, "hpcclint: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}
	exitcode, err := runUnit(flag.Arg(0), *flagJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcclint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(exitcode)
}

func progName() string { return filepath.Base(os.Args[0]) }

func list() {
	all := analysis.All()
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	for _, a := range all {
		fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		fmt.Printf("%-17s invariant: %s (see %s)\n", "", a.Invariant, analysis.ReadmeAnchor)
	}
}

// listAllows prints every hpcclint annotation under dir, one per line,
// sorted by position — the escape inventory CI diffs so a new escape is
// visible in review. testdata fixtures are excluded (their annotations
// exercise the analyzers rather than excuse real code).
func listAllows(dir string) error {
	fset := token.NewFileSet()
	var lines []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %v", path, err)
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			rel = path
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, rest, ok := analysis.ParseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				entry := fmt.Sprintf("%s:%d: %s", filepath.ToSlash(rel), pos.Line, kind)
				if rest != "" {
					entry += " " + rest
				}
				lines = append(lines, entry)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// WalkDir visits files in lexical order and comments arrive in
	// source order, so the inventory is already (file, line)-sorted —
	// stable for committed-inventory diffs in CI.
	for _, l := range lines {
		fmt.Println(l)
	}
	return nil
}

// unitConfig mirrors the JSON config cmd/go writes for each package
// unit (the unitchecker.Config wire format).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// inModule reports whether the unit belongs to this module: only hpcc
// packages carry facts, so everything else writes an empty placeholder.
func (cfg *unitConfig) inModule() bool {
	path := cfg.ImportPath
	// Test variants are listed as "pkg [pkg.test]" or "pkg.test".
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path == "hpcc" || strings.HasPrefix(path, "hpcc/")
}

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
	Note     bool     `json:"note,omitempty"`
}

func runUnit(cfgPath string, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parse %s: %v", cfgPath, err)
	}

	writeVetx := func(facts []byte) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, facts, 0o666)
	}

	// Packages outside the module contribute no facts; skip the parse
	// and typecheck entirely on their facts-only pass.
	if !cfg.inModule() {
		if err := writeVetx(nil); err != nil {
			return 1, err
		}
		if cfg.VetxOnly {
			return 0, nil
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx(nil)
			}
			return 1, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(nil)
		}
		return 1, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	var facts *analysis.PackageFacts
	if cfg.inModule() {
		facts = analysis.ComputeFacts(fset, files, pkg, info, func(path string) (analysis.SerializedFacts, error) {
			vetx, ok := cfg.PackageVetx[path]
			if !ok {
				return nil, nil
			}
			data, err := os.ReadFile(vetx)
			if err != nil {
				return nil, nil // missing facts degrade to intraprocedural
			}
			return analysis.DecodeFacts(data)
		})
		exported, err := facts.Export()
		if err != nil {
			return 1, fmt.Errorf("export facts for %s: %v", cfg.ImportPath, err)
		}
		if err := writeVetx(exported); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	var diags []analysis.Diagnostic
	for _, a := range analysis.All() {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Facts:    facts,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return 1, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	findings := make([]jsonFinding, 0, len(diags))
	hard := 0
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		findings = append(findings, jsonFinding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Chain:    d.Chain,
			Note:     d.Note,
		})
		if !d.Note {
			hard++
		}
	}
	if err := appendJSONL(findings); err != nil {
		return 1, err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findings); err != nil {
			return 1, err
		}
	} else {
		for i, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), findings[i].Message)
		}
	}
	if hard == 0 {
		return 0, nil
	}
	return 2, nil
}

// appendJSONL appends findings to $HPCCLINT_JSON, one JSON object per
// line. Each vet unit is a separate process appending whole lines, so a
// parallel run still yields one well-formed JSONL file.
func appendJSONL(findings []jsonFinding) error {
	path := os.Getenv("HPCCLINT_JSON")
	if path == "" || len(findings) == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf strings.Builder
	for _, fd := range findings {
		line, err := json.Marshal(fd)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	_, err = io.WriteString(f, buf.String())
	return err
}

// typecheck resolves imports through the export data cmd/go lists in
// the config: ImportMap translates source import paths to canonical
// package paths, PackageFile locates each package's export file.
func typecheck(cfg *unitConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	exportImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				path = importPath
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return exportImporter.Import(path)
		}),
		Sizes: types.SizesFor(compiler, "amd64"),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
