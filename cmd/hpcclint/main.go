// Command hpcclint drives the internal/analysis suite under
// `go vet -vettool=hpcclint ./...`. It speaks the vet unitchecker
// protocol by hand (self-contained on the standard library, no
// golang.org/x/tools dependency):
//
//	hpcclint -V=full    identify the tool for build caching
//	hpcclint -flags     describe supported flags as JSON
//	hpcclint <cfg>      analyze one package unit described by the
//	                    JSON config file cmd/go writes
//	hpcclint -list      describe every analyzer and its invariant
//
// Findings print as file:line:col: message and exit with status 2, the
// convention go vet interprets as "diagnostics reported".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"

	"hpcc/internal/analysis"
)

const version = "1.0.0"

func main() {
	flagV := flag.String("V", "", "print version and exit (use -V=full for the build-cache id)")
	flagFlags := flag.Bool("flags", false, "print the tool's flag schema as JSON and exit")
	flagList := flag.Bool("list", false, "list the analyzers, the invariant each pins, and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpcclint [-list] [-V=full] [-flags] <unit.cfg>\n")
		fmt.Fprintf(os.Stderr, "run via: go vet -vettool=$(command -v hpcclint) ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *flagV != "":
		// cmd/go hashes this line into the build cache key; the format
		// must be "<basename> version <...>".
		fmt.Printf("%s version %s\n", progName(), version)
		return
	case *flagFlags:
		// No analyzer-specific flags: cmd/go parses the reply to learn
		// which go vet flags it may forward.
		fmt.Println("[]")
		return
	case *flagList:
		list()
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}
	exitcode, err := runUnit(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcclint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(exitcode)
}

func progName() string { return filepath.Base(os.Args[0]) }

func list() {
	all := analysis.All()
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	for _, a := range all {
		fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		fmt.Printf("%-17s invariant: %s (see %s)\n", "", a.Invariant, analysis.ReadmeAnchor)
	}
}

// unitConfig mirrors the JSON config cmd/go writes for each package
// unit (the unitchecker.Config wire format).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parse %s: %v", cfgPath, err)
	}

	// cmd/go expects the facts file to exist for caching even though
	// this suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		// Dependency unit analyzed only for facts: nothing to do.
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 1, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	var diags []analysis.Diagnostic
	for _, a := range analysis.All() {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return 1, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	if len(diags) == 0 {
		return 0, nil
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 2, nil
}

// typecheck resolves imports through the export data cmd/go lists in
// the config: ImportMap translates source import paths to canonical
// package paths, PackageFile locates each package's export file.
func typecheck(cfg *unitConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	exportImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				path = importPath
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return exportImporter.Import(path)
		}),
		Sizes: types.SizesFor(compiler, "amd64"),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
