package hpcc

import (
	"fmt"
	"time"

	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

// Topology describes a simulated fabric as a first-class value: one of
// the paper's presets (Star, Dumbbell, ParkingLot, Pod, FatTree) or a
// user-composed Custom graph. Specs are plain data — compose them into
// an Experiment, or build one directly with Experiment.Start.
//
// The interface is sealed: new fabrics are expressed with Custom, not
// by implementing Topology outside this package.
type Topology interface {
	topoSpec() (topology.Spec, error)
}

func gbps(g, def int) sim.Rate {
	if g == 0 {
		g = def
	}
	return sim.Rate(g) * sim.Gbps
}

func delayOr(d, def time.Duration) sim.Time {
	if d == 0 {
		d = def
	}
	return toSim(d)
}

// Star is the §5.4 micro-benchmark fixture: Hosts servers around one
// switch. Defaults: 17 hosts, 100 Gbps, 1 µs links.
type Star struct {
	Hosts        int
	LinkRateGbps int
	LinkDelay    time.Duration
}

func (s Star) topoSpec() (topology.Spec, error) {
	if s.Hosts < 0 || s.Hosts == 1 {
		return nil, fmt.Errorf("hpcc: Star needs at least 2 hosts, got %d", s.Hosts)
	}
	return topology.StarSpec{
		N:        s.Hosts,
		HostRate: gbps(s.LinkRateGbps, 100),
		Delay:    delayOr(s.LinkDelay, time.Microsecond),
	}, nil
}

// Dumbbell wires Pairs sender hosts and Pairs receiver hosts across two
// switches joined by one bottleneck link of CoreRateGbps (defaults to
// the host rate).
type Dumbbell struct {
	Pairs        int
	HostRateGbps int
	CoreRateGbps int
	LinkDelay    time.Duration
}

func (s Dumbbell) topoSpec() (topology.Spec, error) {
	if s.Pairs < 0 {
		return nil, fmt.Errorf("hpcc: Dumbbell needs a nonnegative pair count, got %d", s.Pairs)
	}
	hostRate := gbps(s.HostRateGbps, 100)
	coreRate := hostRate
	if s.CoreRateGbps != 0 {
		coreRate = gbps(s.CoreRateGbps, 0)
	}
	return topology.DumbbellSpec{
		Pairs:    s.Pairs,
		HostRate: hostRate,
		CoreRate: coreRate,
		Delay:    delayOr(s.LinkDelay, time.Microsecond),
	}, nil
}

// ParkingLot is the §3.2/Appendix-A multi-bottleneck chain: Segments+1
// switches in a line whose inter-switch links run at the host rate, a
// "long" host pair at the two ends whose flow crosses every segment,
// and one local host pair per segment. Host layout: host 0 = long
// sender, host 1 = long receiver, then for segment i host 2+2i is the
// local sender at switch i and host 3+2i the local receiver at switch
// i+1. Defaults: 2 segments, 100 Gbps, 1 µs links.
type ParkingLot struct {
	Segments     int
	LinkRateGbps int
	LinkDelay    time.Duration
}

func (s ParkingLot) topoSpec() (topology.Spec, error) {
	if s.Segments < 0 {
		return nil, fmt.Errorf("hpcc: ParkingLot needs a nonnegative segment count, got %d", s.Segments)
	}
	rate := gbps(s.LinkRateGbps, 100)
	return topology.ParkingLotSpec{
		Segments: s.Segments,
		HostRate: rate,
		CoreRate: rate,
		Delay:    delayOr(s.LinkDelay, time.Microsecond),
	}, nil
}

// Pod is the paper's 32-server dual-homed testbed PoD (§5.1): four
// ToRs under one Agg, every server dual-homed to a ToR pair. Defaults
// match the testbed (32 servers, 25 Gbps NICs, 100 Gbps fabric links).
type Pod struct {
	Servers        int // must be even; default 32
	HostRateGbps   int // default 25
	FabricRateGbps int // default 100
	LinkDelay      time.Duration
}

func (s Pod) topoSpec() (topology.Spec, error) {
	if s.Servers%2 != 0 || s.Servers < 0 {
		return nil, fmt.Errorf("hpcc: Pod needs an even server count, got %d", s.Servers)
	}
	spec := topology.PodSpec{Servers: s.Servers}
	if s.HostRateGbps != 0 {
		spec.HostRate = gbps(s.HostRateGbps, 0)
	}
	if s.FabricRateGbps != 0 {
		spec.FabricRate = gbps(s.FabricRateGbps, 0)
	}
	if s.LinkDelay != 0 {
		spec.LinkDelay = toSim(s.LinkDelay)
	}
	return spec, nil
}

// FatTree is the §5.1 three-tier Clos. The zero value is the CI-scaled
// fabric (same shape, fewer elements); PaperFatTree returns the full
// 320-host spec.
type FatTree struct {
	Cores, Aggs, ToRs, HostsPerToR int
	HostRateGbps                   int // default 100
	FabricRateGbps                 int // default 400
	LinkDelay                      time.Duration
}

// PaperFatTree is the full-scale simulation fabric of §5.1: 16 Cores,
// 20 Aggs, 20 ToRs × 16 servers (320 hosts).
func PaperFatTree() FatTree {
	return FatTree{Cores: 16, Aggs: 20, ToRs: 20, HostsPerToR: 16}
}

// ScaledFatTree is the CI-sized FatTree preserving the paper's
// oversubscription shape.
func ScaledFatTree() FatTree {
	return FatTree{Cores: 2, Aggs: 4, ToRs: 4, HostsPerToR: 8}
}

func (s FatTree) topoSpec() (topology.Spec, error) {
	if s.Cores == 0 {
		s = ScaledFatTree().withRates(s)
	}
	return topology.FatTreeSpec{
		Cores: s.Cores, Aggs: s.Aggs, ToRs: s.ToRs, HostsPerToR: s.HostsPerToR,
		HostRate:   gbps(s.HostRateGbps, 100),
		FabricRate: gbps(s.FabricRateGbps, 400),
		LinkDelay:  delayOr(s.LinkDelay, time.Microsecond),
	}, nil
}

// withRates copies the rate/delay overrides of o onto the preset shape.
func (s FatTree) withRates(o FatTree) FatTree {
	s.HostRateGbps = o.HostRateGbps
	s.FabricRateGbps = o.FabricRateGbps
	s.LinkDelay = o.LinkDelay
	return s
}

// Node references a host or switch added to a Custom topology.
type Node struct {
	sw  bool
	idx int
}

// IsSwitch reports whether the node is a switch.
func (n Node) IsSwitch() bool { return n.sw }

// Index returns the node's number among its kind, in add order. For
// hosts this is the host index used by traffic specs and StartFlow.
func (n Node) Index() int { return n.idx }

// Custom composes an arbitrary fabric from hosts, switches and links —
// the public face of the internal topology builder. Add nodes, wire
// them, and use the value anywhere a Topology is accepted; shortest-
// path ECMP routes are computed at build time exactly as for the
// presets.
//
//	var c hpcc.Custom
//	tor0, tor1 := c.AddSwitch(), c.AddSwitch()
//	spine := c.AddSwitch()
//	c.Link(tor0, spine, 400, time.Microsecond)
//	c.Link(tor1, spine, 400, time.Microsecond)
//	for i := 0; i < 8; i++ {
//		c.Link(c.AddHost(), tor0, 100, time.Microsecond)
//		c.Link(c.AddHost(), tor1, 100, time.Microsecond)
//	}
//
// Host indices follow AddHost order. BaseRTT defaults to twice the
// worst host-to-host shortest-path propagation delay (plus margin);
// set it explicitly for fabrics where serialization dominates.
type Custom struct {
	// BaseRTT overrides the derived network-wide base RTT constant T.
	BaseRTT time.Duration
	// HostRateGbps overrides the derived NIC reference rate (the
	// fastest host-adjacent link), used for load targets and ideal
	// FCTs.
	HostRateGbps int

	graph topology.GraphSpec
}

// AddHost adds a server and returns its reference.
func (c *Custom) AddHost() Node {
	g := c.graph.AddHost()
	return Node{idx: g.Index}
}

// AddSwitch adds a switch and returns its reference.
func (c *Custom) AddSwitch() Node {
	g := c.graph.AddSwitch()
	return Node{sw: true, idx: g.Index}
}

// Link wires a full-duplex link of rateGbps and one-way propagation
// delay between two nodes.
func (c *Custom) Link(a, b Node, rateGbps int, delay time.Duration) {
	c.graph.Link(
		topology.GraphNode{Switch: a.sw, Index: a.idx},
		topology.GraphNode{Switch: b.sw, Index: b.idx},
		gbps(rateGbps, 100), delayOr(delay, time.Microsecond),
	)
}

// NumHosts returns the number of hosts added so far.
func (c *Custom) NumHosts() int { return c.graph.Hosts }

func (c *Custom) topoSpec() (topology.Spec, error) {
	if c.graph.Hosts < 2 {
		return nil, fmt.Errorf("hpcc: Custom topology needs at least 2 hosts, got %d", c.graph.Hosts)
	}
	if len(c.graph.Links) == 0 {
		return nil, fmt.Errorf("hpcc: Custom topology has no links")
	}
	for i, l := range c.graph.Links {
		for _, n := range [2]topology.GraphNode{l.A, l.B} {
			limit, kind := c.graph.Hosts, "host"
			if n.Switch {
				limit, kind = c.graph.Switches, "switch"
			}
			if n.Index < 0 || n.Index >= limit {
				return nil, fmt.Errorf("hpcc: Custom link %d references %s %d of %d — use Nodes returned by AddHost/AddSwitch on this Custom", i, kind, n.Index, limit)
			}
		}
		if l.Rate <= 0 {
			return nil, fmt.Errorf("hpcc: Custom link %d has non-positive rate", i)
		}
		if l.Delay < 0 {
			return nil, fmt.Errorf("hpcc: Custom link %d has negative delay", i)
		}
	}
	g := c.graph
	if c.BaseRTT != 0 {
		g.RTT = toSim(c.BaseRTT)
	}
	if c.HostRateGbps != 0 {
		g.HostRate = gbps(c.HostRateGbps, 0)
	}
	return g, nil
}
