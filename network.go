package hpcc

import (
	"fmt"
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
)

// SchemeNames lists the congestion-control schemes this library
// implements, in the paper's Figure-11 order plus the HPCC ablation
// variants.
func SchemeNames() []string {
	return []string{
		"hpcc", "dcqcn", "timely", "dcqcn+win", "timely+win", "dctcp",
		"hpcc-rxrate", "hpcc-perack", "hpcc-perrtt",
	}
}

// NetConfig describes a simulated fabric for flow-level experiments.
type NetConfig struct {
	// Scheme is the congestion control to run (see SchemeNames).
	Scheme string
	// Topology: "star" (Hosts around one switch), "pod" (the paper's
	// 32-server dual-homed testbed), "fattree" (three-tier Clos), or
	// "parkinglot" (multi-bottleneck chain; Hosts counts the segments,
	// see topology.ParkingLot for the host layout).
	Topology string
	// Hosts is the host count for "star" (default 17, the §5.4
	// fixture) or the segment count for "parkinglot" (default 2).
	Hosts int
	// LinkRateGbps is the NIC speed for "star" (default 100).
	LinkRateGbps int
	// PaperScale builds the full 320-host FatTree instead of the
	// CI-sized one.
	PaperScale bool
	// Seed makes runs reproducible (default 1).
	Seed int64
}

// Network is a running simulated fabric accepting explicit flows — the
// micro-benchmark surface of the library.
type Network struct {
	eng     *sim.Engine
	nw      *topology.Network
	scheme  experiment.Scheme
	rate    sim.Rate
	rtt     sim.Time
	readSeq int32 // READ flow IDs run negative to avoid workload collisions
}

// Flow is a handle to one transfer on a Network.
type Flow struct {
	inner *host.Flow
	net   *Network
	// onProgress buffers a callback registered before a scheduled flow
	// materializes; StartFlowAt's closure attaches it at start time.
	onProgress func(*host.Flow, int64)
}

// NewNetwork builds a fabric per cfg. PFC is enabled (lossless), as on
// the paper's testbed.
func NewNetwork(cfg NetConfig) (*Network, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = "hpcc"
	}
	scheme, err := experiment.ByName(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	if cfg.Hosts == 0 {
		cfg.Hosts = 17
	}
	if cfg.LinkRateGbps == 0 {
		cfg.LinkRateGbps = 100
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng := sim.NewEngine()
	rateOf := sim.Rate(cfg.LinkRateGbps) * sim.Gbps

	var (
		rate    sim.Rate
		baseRTT sim.Time
		build   func(host.Config, fabric.SwitchConfig) *topology.Network
	)
	switch cfg.Topology {
	case "", "star":
		topo := experiment.Topo{Kind: "star", N: cfg.Hosts, HostRate: rateOf, Delay: sim.Microsecond}
		rate, baseRTT = topo.Rate(), topo.BaseRTT()
		build = func(h host.Config, s fabric.SwitchConfig) *topology.Network { return topo.Build(eng, h, s) }
	case "pod":
		topo := experiment.PodTopo(topology.PodSpec{})
		rate, baseRTT = topo.Rate(), topo.BaseRTT()
		build = func(h host.Config, s fabric.SwitchConfig) *topology.Network { return topo.Build(eng, h, s) }
	case "fattree":
		spec := topology.ScaledFatTree()
		if cfg.PaperScale {
			spec = topology.PaperFatTree()
		}
		topo := experiment.FatTreeTopo(spec)
		rate, baseRTT = topo.Rate(), topo.BaseRTT()
		build = func(h host.Config, s fabric.SwitchConfig) *topology.Network { return topo.Build(eng, h, s) }
	case "parkinglot":
		segments := cfg.Hosts
		if segments <= 0 || segments == 17 {
			segments = 2
		}
		rate = rateOf
		delay := sim.Microsecond
		baseRTT = 2*sim.Time(segments+2)*delay + 500*sim.Nanosecond
		build = func(h host.Config, s fabric.SwitchConfig) *topology.Network {
			return topology.ParkingLot(eng, segments, rate, rate, delay, h, s)
		}
	default:
		return nil, fmt.Errorf("hpcc: unknown topology %q", cfg.Topology)
	}

	scfg := fabric.SwitchConfig{
		PFCEnabled: true,
		INTEnabled: scheme.INT,
		ECNEnabled: scheme.ECN,
		Seed:       cfg.Seed,
	}
	if scheme.ECN {
		scfg.KMin = scheme.Kmin(rate)
		scfg.KMax = scheme.Kmax(rate)
	}
	hcfg := host.Config{
		CC:      scheme.Factory,
		INT:     scheme.INT,
		BaseRTT: baseRTT,
		Seed:    cfg.Seed,
	}
	return &Network{
		eng:    eng,
		nw:     build(hcfg, scfg),
		scheme: scheme,
		rate:   rate,
		rtt:    baseRTT,
	}, nil
}

// NumHosts returns the host count.
func (n *Network) NumHosts() int { return len(n.nw.Hosts) }

// Scheme returns the active congestion-control name.
func (n *Network) Scheme() string { return n.scheme.Name }

// BaseRTT returns the network's base round-trip constant T.
func (n *Network) BaseRTT() time.Duration { return fromSim(n.rtt) }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return fromSim(n.eng.Now()) }

// StartFlow launches size bytes from host src to host dst immediately.
func (n *Network) StartFlow(src, dst int, size int64) *Flow {
	return &Flow{inner: n.nw.StartFlow(src, dst, size, nil), net: n}
}

// StartFlowAt schedules a flow to begin after delay d. The returned
// handle is valid immediately but idle until the start time — it costs
// no simulation events until the flow starts.
func (n *Network) StartFlowAt(d time.Duration, src, dst int, size int64) *Flow {
	f := &Flow{net: n}
	n.eng.After(toSim(d), func() {
		f.inner = n.nw.StartFlow(src, dst, size, nil)
		if f.onProgress != nil {
			f.inner.OnProgress = f.onProgress
		}
	})
	return f
}

// Read issues an RDMA READ (§4.2): host requester pulls size bytes from
// host responder; the returned channel-free handle reports completion
// via done, which fires when every byte has arrived at the requester.
func (n *Network) Read(requester, responder int, size int64, done func()) {
	rh := n.nw.Hosts[requester]
	n.readSeq++
	rh.Read(-n.readSeq, n.nw.Hosts[responder].ID(), size, 0, done)
}

// Run advances virtual time by d.
func (n *Network) Run(d time.Duration) { n.eng.RunUntil(n.eng.Now() + toSim(d)) }

// RunUntilIdle runs until no simulation events remain (all finite flows
// done). Networks with unfinished long-running flows never go idle; use
// Run instead.
func (n *Network) RunUntilIdle() { n.eng.Run() }

// QueueTrace samples the total switch-queue backlog every interval for
// dur and returns (time, bytes) points.
type QueuePoint struct {
	At    time.Duration
	Bytes int64
}

// TraceQueues installs a backlog sampler; read the result after Run.
func (n *Network) TraceQueues(interval, dur time.Duration) *[]QueuePoint {
	out := &[]QueuePoint{}
	mon := stats.NewQueueMonitor(n.eng, n.nw.SwitchPorts(), fabric.PrioData, toSim(interval), n.eng.Now()+toSim(dur))
	n.eng.At(n.eng.Now()+toSim(dur), func() {
		for _, tp := range mon.Series {
			*out = append(*out, QueuePoint{At: fromSim(tp.T), Bytes: int64(tp.V)})
		}
	})
	return out
}

// Drops returns total packets dropped across the fabric so far.
func (n *Network) Drops() uint64 { return n.nw.TotalDrops() }

// PFCPauseFraction returns the fraction of (switch-port × time) spent
// paused so far.
func (n *Network) PFCPauseFraction() float64 {
	return stats.PFCPauseFraction(n.nw.Switches, fabric.PrioData, n.eng.Now())
}

// Done reports whether the flow completed (every byte acknowledged).
func (f *Flow) Done() bool { return f.inner != nil && f.inner.Done() }

// FCT returns the flow completion time (zero until Done).
func (f *Flow) FCT() time.Duration {
	if f.inner == nil || !f.inner.Done() {
		return 0
	}
	return fromSim(f.inner.FCT())
}

// Acked returns cumulatively acknowledged bytes.
func (f *Flow) Acked() int64 {
	if f.inner == nil {
		return 0
	}
	return f.inner.Acked()
}

// Slowdown returns FCT normalized by the flow's ideal FCT on an empty
// network (valid once Done).
func (f *Flow) Slowdown() float64 {
	if f.inner == nil || !f.inner.Done() {
		return 0
	}
	rec := stats.FCTRecord{
		Size:  f.inner.Size(),
		FCT:   f.inner.FCT(),
		Ideal: stats.IdealFCT(f.inner.Size(), f.net.rate, f.net.rtt, 1000, f.net.scheme.INT),
	}
	return rec.Slowdown()
}

// Stop aborts the flow (for long-running flows that "leave").
func (f *Flow) Stop() {
	if f.inner != nil {
		f.inner.Abort()
	}
}

// OnProgress registers a callback observing each cumulative-ACK
// advance (newly acknowledged bytes). Call before the flow starts
// moving for a complete trace. On a scheduled flow the callback is
// held and attached by the start closure, costing zero events while
// the flow waits.
func (f *Flow) OnProgress(fn func(newlyAcked int64)) {
	wrapped := func(_ *host.Flow, n int64) { fn(n) }
	if f.inner != nil {
		f.inner.OnProgress = wrapped
		return
	}
	f.onProgress = wrapped
}
