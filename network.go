package hpcc

import (
	"fmt"
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/fabric"
	"hpcc/internal/host"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
	"hpcc/internal/stats"
	"hpcc/internal/topology"
)

// SchemeNames lists the congestion-control schemes this library
// implements, in the paper's Figure-11 order plus the HPCC ablation
// variants.
func SchemeNames() []string {
	return []string{
		"hpcc", "dcqcn", "timely", "dcqcn+win", "timely+win", "dctcp",
		"hpcc-rxrate", "hpcc-perack", "hpcc-perrtt",
	}
}

// NetConfig describes a simulated fabric for flow-level experiments.
//
// It is the legacy string-keyed surface, kept as a thin wrapper over
// the spec-based Experiment API: every Topology string maps onto the
// corresponding Topology spec value (Star, Pod, FatTree, ParkingLot).
// New code should compose an Experiment directly.
type NetConfig struct {
	// Scheme is the congestion control to run (see SchemeNames).
	Scheme string
	// Topology: "star" (Hosts around one switch), "pod" (the paper's
	// 32-server dual-homed testbed), "fattree" (three-tier Clos), or
	// "parkinglot" (multi-bottleneck chain; Hosts counts the segments,
	// see ParkingLot for the host layout).
	Topology string
	// Hosts is the host count for "star" (default 17, the §5.4
	// fixture) or the segment count for "parkinglot" (default 2; any
	// explicit positive value — including 17 — is honored).
	Hosts int
	// LinkRateGbps is the NIC speed for "star" and "parkinglot"
	// (default 100).
	LinkRateGbps int
	// PaperScale builds the full 320-host FatTree instead of the
	// CI-sized one.
	PaperScale bool
	// Shards carries the multi-core knob through to batch execution
	// (Experiment.Shards). Manually driven Networks always run a single
	// engine — sharding engages in Experiment.Run, where the whole
	// schedule is owned by the runner.
	Shards int
	// Seed makes runs reproducible (default 1).
	Seed int64
}

// topology maps the legacy strings onto Topology specs — the only
// place the string spellings survive.
func (cfg NetConfig) topology() (Topology, error) {
	switch cfg.Topology {
	case "", "star":
		return Star{Hosts: cfg.Hosts, LinkRateGbps: cfg.LinkRateGbps}, nil
	case "pod":
		return Pod{}, nil
	case "fattree":
		if cfg.PaperScale {
			return PaperFatTree(), nil
		}
		return FatTree{}, nil
	case "parkinglot":
		segments := cfg.Hosts
		if segments < 0 {
			segments = 0
		}
		return ParkingLot{Segments: segments, LinkRateGbps: cfg.LinkRateGbps}, nil
	default:
		return nil, fmt.Errorf("hpcc: unknown topology %q", cfg.Topology)
	}
}

// Network is a running simulated fabric accepting explicit flows — the
// micro-benchmark surface of the library. Build one from a legacy
// NetConfig via NewNetwork, or from composable specs via
// Experiment.Start.
type Network struct {
	eng    *sim.Engine
	nw     *topology.Network
	scheme experiment.Scheme
	rate   sim.Rate
	rtt    sim.Time
	obs    experiment.Obs
}

// Flow is a handle to one transfer on a Network.
type Flow struct {
	inner *host.Flow
	net   *Network
	// onProgress buffers a callback registered before a scheduled flow
	// materializes; StartFlowAt's closure attaches it at start time.
	onProgress func(*host.Flow, int64)
}

// NewNetwork builds a fabric per cfg. PFC is enabled (lossless), as on
// the paper's testbed. It is a back-compat wrapper over
// Experiment.Start with the equivalent Topology spec.
func NewNetwork(cfg NetConfig) (*Network, error) {
	topo, err := cfg.topology()
	if err != nil {
		return nil, err
	}
	return Experiment{Scheme: cfg.Scheme, Topology: topo, Shards: cfg.Shards, Seed: cfg.Seed}.Start()
}

// NumHosts returns the host count.
func (n *Network) NumHosts() int { return len(n.nw.Hosts) }

// Scheme returns the active congestion-control name.
func (n *Network) Scheme() string { return n.scheme.Name }

// BaseRTT returns the network's base round-trip constant T.
func (n *Network) BaseRTT() time.Duration { return fromSim(n.rtt) }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return fromSim(n.eng.Now()) }

// flowDone returns the completion callback wiring manual flows into
// the attached flow observers (nil when none are attached).
func (n *Network) flowDone() func(*host.Flow) {
	if n.obs.OnFlow == nil {
		return nil
	}
	return func(f *host.Flow) {
		n.obs.OnFlow(experiment.FlowEvent{
			Src:     n.nw.HostIndex(f.Host().ID()),
			Dst:     n.nw.HostIndex(f.Dst()),
			Started: f.Started(),
			Rec:     n.fctRecord(f.Size(), f.FCT()),
		})
	}
}

func (n *Network) fctRecord(size int64, fct sim.Time) stats.FCTRecord {
	return stats.FCTRecord{
		Size:  size,
		FCT:   fct,
		Ideal: stats.IdealFCT(size, n.rate, n.rtt, packet.DefaultMTU, n.scheme.INT),
	}
}

// StartFlow launches size bytes from host src to host dst immediately.
func (n *Network) StartFlow(src, dst int, size int64) *Flow {
	return &Flow{inner: n.nw.StartFlow(src, dst, size, n.flowDone()), net: n}
}

// StartFlowAt schedules a flow to begin after delay d. The returned
// handle is valid immediately but idle until the start time — it costs
// no simulation events until the flow starts.
func (n *Network) StartFlowAt(d time.Duration, src, dst int, size int64) *Flow {
	f := &Flow{net: n}
	n.eng.After(toSim(d), func() {
		f.inner = n.nw.StartFlow(src, dst, size, n.flowDone())
		if f.onProgress != nil {
			f.inner.OnProgress = f.onProgress
		}
	})
	return f
}

// Read issues an RDMA READ (§4.2): host requester pulls size bytes from
// host responder; done fires when every byte has arrived in order at
// the requester. Completions also stream to any attached FlowObserver
// (Src = responder, Dst = requester).
func (n *Network) Read(requester, responder int, size int64, done func()) {
	issued := n.eng.Now()
	n.nw.StartRead(requester, responder, size, func() {
		if n.obs.OnFlow != nil {
			rec := n.fctRecord(size, n.eng.Now()-issued)
			rec.Ideal += n.rtt / 2 // the request's one-way trip
			n.obs.OnFlow(experiment.FlowEvent{
				Src: responder, Dst: requester, Read: true, Started: issued, Rec: rec,
			})
		}
		if done != nil {
			done()
		}
	})
}

// Run advances virtual time by d.
func (n *Network) Run(d time.Duration) { n.eng.RunUntil(n.eng.Now() + toSim(d)) }

// RunUntilIdle runs until no simulation events remain (all finite flows
// done). Networks with unfinished long-running flows never go idle; use
// Run instead.
func (n *Network) RunUntilIdle() { n.eng.Run() }

// QueuePoint is one sample of the total switch-queue backlog.
type QueuePoint struct {
	At    time.Duration
	Bytes int64
}

// TraceQueues installs a backlog sampler over all switch egress ports,
// streaming each observation into the returned slice as the simulation
// runs (the same observer feed QueueObserver exposes); read the result
// after Run.
func (n *Network) TraceQueues(interval, dur time.Duration) *[]QueuePoint {
	out := &[]QueuePoint{}
	mon := stats.NewQueueMonitor(n.eng, n.nw.SwitchPorts(), fabric.PrioData, toSim(interval), n.eng.Now()+toSim(dur))
	mon.OnSample = func(tp stats.TimePoint) {
		*out = append(*out, QueuePoint{At: fromSim(tp.T), Bytes: int64(tp.V)})
	}
	return out
}

// Drops returns total packets dropped across the fabric so far.
func (n *Network) Drops() uint64 { return n.nw.TotalDrops() }

// PFCPauseFraction returns the fraction of (switch-port × time) spent
// paused so far.
func (n *Network) PFCPauseFraction() float64 {
	return stats.PFCPauseFraction(n.nw.Switches, fabric.PrioData, n.eng.Now())
}

// Done reports whether the flow completed (every byte acknowledged).
func (f *Flow) Done() bool { return f.inner != nil && f.inner.Done() }

// FCT returns the flow completion time (zero until Done).
func (f *Flow) FCT() time.Duration {
	if f.inner == nil || !f.inner.Done() {
		return 0
	}
	return fromSim(f.inner.FCT())
}

// Acked returns cumulatively acknowledged bytes.
func (f *Flow) Acked() int64 {
	if f.inner == nil {
		return 0
	}
	return f.inner.Acked()
}

// Slowdown returns FCT normalized by the flow's ideal FCT on an empty
// network (valid once Done).
func (f *Flow) Slowdown() float64 {
	if f.inner == nil || !f.inner.Done() {
		return 0
	}
	return f.net.fctRecord(f.inner.Size(), f.inner.FCT()).Slowdown()
}

// Stop aborts the flow (for long-running flows that "leave").
func (f *Flow) Stop() {
	if f.inner != nil {
		f.inner.Abort()
	}
}

// OnProgress registers a callback observing each cumulative-ACK
// advance (newly acknowledged bytes). Call before the flow starts
// moving for a complete trace. On a scheduled flow the callback is
// held and attached by the start closure, costing zero events while
// the flow waits.
func (f *Flow) OnProgress(fn func(newlyAcked int64)) {
	wrapped := func(_ *host.Flow, n int64) { fn(n) }
	if f.inner != nil {
		f.inner.OnProgress = wrapped
		return
	}
	f.onProgress = wrapped
}
