package hpcc

import (
	"testing"
	"time"

	"hpcc/internal/sim"
)

// The standalone Sender's Env.Schedule used to be a silent no-op; now
// timers queue and Advance drains them in due-time order.
func TestSenderTimerQueue(t *testing.T) {
	var clock time.Duration
	s := NewSender(SenderConfig{LineRateBps: 100e9, BaseRTT: 10 * time.Microsecond},
		func() time.Duration { return clock })

	var fired []int
	s.schedule(30*sim.Microsecond, func() { fired = append(fired, 3) })
	s.schedule(10*sim.Microsecond, func() { fired = append(fired, 1) })
	s.schedule(20*sim.Microsecond, func() {
		fired = append(fired, 2)
		// A callback may schedule again; due timers run in the same
		// Advance call.
		s.schedule(5*sim.Microsecond, func() { fired = append(fired, 4) })
	})
	if s.PendingTimers() != 3 {
		t.Fatalf("pending = %d, want 3", s.PendingTimers())
	}

	clock = 5 * time.Microsecond
	s.Advance(clock)
	if len(fired) != 0 {
		t.Fatalf("timers fired early: %v", fired)
	}
	// At 25 µs timers 1 and 2 are due; timer 2 re-schedules 5 µs out
	// (due 30 µs), so it must not fire yet.
	clock = 25 * time.Microsecond
	s.Advance(clock)
	if want := []int{1, 2}; !equalInts(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	// At 1 ms the remaining timers fire in due-time order: 3 (30 µs,
	// queued first) then 4 (30 µs, queued later).
	clock = time.Millisecond
	s.Advance(clock)
	if want := []int{1, 2, 3, 4}; !equalInts(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	if s.PendingTimers() != 0 {
		t.Fatalf("pending = %d after drain", s.PendingTimers())
	}
}

// Equal due times fire FIFO.
func TestSenderTimerFIFO(t *testing.T) {
	var clock time.Duration
	s := NewSender(SenderConfig{LineRateBps: 100e9, BaseRTT: 10 * time.Microsecond},
		func() time.Duration { return clock })
	var fired []int
	for i := 0; i < 4; i++ {
		i := i
		s.schedule(10*sim.Microsecond, func() { fired = append(fired, i) })
	}
	s.Advance(10 * time.Microsecond)
	if want := []int{0, 1, 2, 3}; !equalInts(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
