module hpcc

go 1.24
