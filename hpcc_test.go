package hpcc_test

import (
	"math"
	"testing"
	"time"

	"hpcc"
)

func TestSenderStandalone(t *testing.T) {
	var now time.Duration
	s := hpcc.NewSender(hpcc.SenderConfig{
		LineRateBps: 100e9,
		BaseRTT:     10 * time.Microsecond,
	}, func() time.Duration { return now })

	// W_init = 12.5 GB/s × 10 µs = 125 KB.
	if w := s.WindowBytes(); math.Abs(w-125_000) > 1 {
		t.Fatalf("W_init = %v, want 125000", w)
	}
	if r := s.RateBps(); r != 100e9 {
		t.Fatalf("initial rate = %v", r)
	}

	// First ACK records the path.
	hop := func(ts time.Duration, tx uint64, q int64) []hpcc.INTHop {
		return []hpcc.INTHop{{BandwidthBps: 100e9, Timestamp: ts, TxBytes: tx, QueueBytes: q}}
	}
	s.OnAck(hpcc.Ack{RTT: 10 * time.Microsecond, AckSeq: 1000, SndNxt: 1_000_000, Hops: hop(0, 0, 125_000), PathID: 1})
	// Congested link: txRate = line, queue = 1 BDP ⇒ U = 2 ⇒ halve.
	now = 10 * time.Microsecond
	s.OnAck(hpcc.Ack{RTT: 10 * time.Microsecond, AckSeq: 2000, SndNxt: 1_001_000, Hops: hop(10*time.Microsecond, 125_000, 125_000), PathID: 1})
	if u := s.Utilization(); math.Abs(u-2) > 1e-9 {
		t.Fatalf("U = %v, want 2", u)
	}
	if w := s.WindowBytes(); w > 70_000 || w < 50_000 {
		t.Fatalf("W after congestion = %v, want ≈ 59.4K", w)
	}
}

func TestNetworkMicro(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Scheme: "hpcc", Hosts: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := net.StartFlow(0, 3, 1<<20)
	net.RunUntilIdle()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if f.Acked() != 1<<20 {
		t.Fatalf("acked = %d", f.Acked())
	}
	if f.FCT() <= 0 || f.FCT() > time.Millisecond {
		t.Fatalf("FCT = %v", f.FCT())
	}
	if s := f.Slowdown(); s < 1 || s > 3 {
		t.Fatalf("slowdown = %v", s)
	}
	if net.Drops() != 0 {
		t.Fatalf("drops = %d", net.Drops())
	}
}

func TestNetworkSchemesAll(t *testing.T) {
	for _, scheme := range hpcc.SchemeNames() {
		net, err := hpcc.NewNetwork(hpcc.NetConfig{Scheme: scheme, Hosts: 3, LinkRateGbps: 25})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		f := net.StartFlow(0, 2, 200_000)
		net.RunUntilIdle()
		if !f.Done() {
			t.Fatalf("%s: flow did not complete", scheme)
		}
	}
}

func TestNetworkIncastTrace(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Scheme: "hpcc", Hosts: 9})
	if err != nil {
		t.Fatal(err)
	}
	trace := net.TraceQueues(time.Microsecond, 300*time.Microsecond)
	var flows []*hpcc.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, net.StartFlow(i, 8, 200_000))
	}
	net.Run(400 * time.Microsecond)
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("incast flow %d unfinished", i)
		}
	}
	if len(*trace) == 0 {
		t.Fatal("no queue samples")
	}
	peak := int64(0)
	for _, p := range *trace {
		if p.Bytes > peak {
			peak = p.Bytes
		}
	}
	if peak == 0 {
		t.Fatal("incast never built a queue")
	}
	if net.PFCPauseFraction() != 0 {
		t.Fatal("HPCC triggered PFC during a modest incast")
	}
}

func TestNetworkScheduledFlowAndStop(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Hosts: 3, LinkRateGbps: 25})
	if err != nil {
		t.Fatal(err)
	}
	var progressed int64
	f := net.StartFlowAt(100*time.Microsecond, 0, 2, 1<<40)
	f.OnProgress(func(n int64) { progressed += n })
	net.Run(600 * time.Microsecond)
	f.Stop()
	net.Run(100 * time.Microsecond)
	if progressed == 0 {
		t.Fatal("scheduled flow never progressed")
	}
	if !f.Done() {
		t.Fatal("Stop did not mark the flow done")
	}
}

func TestRunLoadExperiment(t *testing.T) {
	res, err := hpcc.Run(hpcc.SimConfig{
		Scheme:   "hpcc",
		Flows:    150,
		Duration: 4 * time.Millisecond,
		Drain:    12 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 {
		t.Fatal("no flows completed")
	}
	if res.SlowdownP50 < 1 {
		t.Fatalf("p50 slowdown = %v", res.SlowdownP50)
	}
	if res.Drops != 0 {
		t.Fatalf("drops = %d", res.Drops)
	}
	if len(res.BucketP95) != 10 {
		t.Fatalf("buckets = %d", len(res.BucketP95))
	}
}

func TestNetworkParkingLot(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Topology: "parkinglot", Hosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumHosts() != 6 {
		t.Fatalf("hosts = %d, want 6 (2 long + 2 per segment)", net.NumHosts())
	}
	long := net.StartFlow(0, 1, 500_000)
	local := net.StartFlow(2, 3, 500_000)
	net.RunUntilIdle()
	if !long.Done() || !local.Done() {
		t.Fatal("parking-lot flows did not complete")
	}
}

func TestNetworkRDMARead(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Hosts: 3})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	net.Read(0, 2, 250_000, func() { done++ })
	net.Read(1, 2, 125_000, func() { done++ })
	net.RunUntilIdle()
	if done != 2 {
		t.Fatalf("READ completions = %d, want 2", done)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := hpcc.Run(hpcc.SimConfig{Scheme: "nope"}); err == nil {
		t.Fatal("accepted unknown scheme")
	}
	if _, err := hpcc.Run(hpcc.SimConfig{Workload: "nope"}); err == nil {
		t.Fatal("accepted unknown workload")
	}
	if _, err := hpcc.Run(hpcc.SimConfig{Topology: "nope"}); err == nil {
		t.Fatal("accepted unknown topology")
	}
	if _, err := hpcc.NewNetwork(hpcc.NetConfig{Topology: "nope"}); err == nil {
		t.Fatal("NewNetwork accepted unknown topology")
	}
	if _, err := hpcc.NewNetwork(hpcc.NetConfig{Scheme: "nope"}); err == nil {
		t.Fatal("NewNetwork accepted unknown scheme")
	}
}
