package hpcc

import (
	"fmt"
	"time"

	"hpcc/internal/experiment"
	"hpcc/internal/sim"
	"hpcc/internal/workload"
)

// Experiment composes a simulation from first-class spec values: a
// congestion-control scheme, a Topology, any number of Traffic
// sources, and Observers streaming events out. It replaces the
// stringly-typed config surface — NetConfig and SimConfig are thin
// wrappers over it.
//
//	res, err := hpcc.Experiment{
//		Scheme:   "hpcc",
//		Topology: hpcc.FatTree{},
//		Traffic: []hpcc.Traffic{
//			hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.5},
//			hpcc.Incast{FanIn: 16, FlowSizeBytes: 500_000, LoadFraction: 0.02},
//		},
//		Horizon: 10 * time.Millisecond,
//	}.Run()
//
// Determinism: everything derives from Seed; traffic source i draws
// from Seed+i. Two runs of an identical Experiment produce identical
// results.
type Experiment struct {
	// Scheme is the congestion control (see SchemeNames). Default
	// "hpcc".
	Scheme string
	// Topology is the fabric spec. Default Pod{} (the paper's testbed).
	Topology Topology
	// Traffic sources are installed in order on the built fabric.
	// Leave empty to drive flows manually via Start.
	Traffic []Traffic
	// Horizon is the traffic arrival window in virtual time (default
	// 5 ms). Arrivals stop at the horizon; flows in flight drain.
	Horizon time.Duration
	// Drain is extra virtual time for in-flight flows (default 20 ms).
	Drain time.Duration
	// MaxFlows is the default per-source arrival cap (default 1000);
	// sources with their own cap override it.
	MaxFlows int
	// Lossless enables PFC (default true). When false, switches drop
	// and hosts recover via go-back-N.
	Lossless *bool
	// BucketEdges are the flow-size bucket edges for the result's
	// per-bucket FCT statistics. Default: the natural edges of the
	// first Poisson or RPC source's CDF, else the WebSearch figure
	// edges.
	BucketEdges []int64
	// Observers stream per-flow records, queue samples and PFC events
	// while the simulation runs.
	Observers []Observer
	// Shards requests multi-core execution of this one experiment: the
	// fabric is partitioned into per-cluster engines (per-rack on the
	// FatTree) synchronized by conservative lookahead, so Run can use up
	// to Shards cores for a single large scenario. Best-effort: when the
	// topology does not partition (Star), the traffic is closed-loop
	// (AllToAll, RPC), or Observers are attached, Run falls back to one
	// engine.
	//
	// Determinism contract: a sharded run is a pure function of the
	// Experiment (same spec + Seed + Shards → identical bytes, on any
	// machine), and it replays the single-engine run exactly — flow
	// IDs, arrival scheduling, and the order of simultaneous deliveries
	// all follow the canonical (time, structural key, seq) event rank,
	// which is derived from the topology and traffic specs rather than
	// execution history. Golden tests verify byte-identical results on
	// the dumbbell, Pod and CI FatTree configurations, including a
	// saturated multipath FatTree where same-picosecond cross-shard
	// delivery ties actually occur. The run's actual engine count is
	// reported in SimResult.ShardsUsed. Start always drives a single
	// engine.
	Shards int
	// Speculate controls optimistic shard synchronization on sharded
	// runs (default on). Instead of a barrier every lookahead epoch,
	// each shard checkpoints its whole world, runs up to
	// SpeculationWindow epochs ahead, and rolls back + replays
	// conservatively when cross-shard traffic arrives inside the
	// speculated span — one barrier paid for many epochs' progress on
	// fabrics where shards rarely interact at the lookahead bound. The
	// determinism contract is unchanged: committed spans had no
	// cross-shard arrivals to order, rolled-back spans replay under
	// conservative barriers, so results stay byte-identical to the
	// serial run. Best-effort like Shards itself: ECN-marking schemes
	// (RNG in the forwarding path) run with plain conservative
	// barriers. SimResult.Speculated reports what engaged.
	Speculate *bool
	// SpeculationWindow caps the speculative horizon in lookahead
	// epochs beyond the conservative one (default 8). The effective
	// window adapts at runtime: it grows toward the cap while epochs
	// commit and halves on rollback.
	SpeculationWindow int
	// CompletedFlowWindow, when positive, bounds per-host memory over
	// long campaigns: each host retains at most this many completed
	// flows, folding older ones into aggregate counters. Results are
	// unchanged; only post-run per-flow inspection is truncated.
	CompletedFlowWindow int
	// SketchStats switches result statistics to streaming mode: instead
	// of retaining every FCT record and queue sample, observations
	// stream into mergeable DDSketch-style quantile sketches
	// (per-size-bucket slowdowns, the short-flow class, per-port queue
	// depth), so retained stat memory is O(sketch buckets) — a few KB —
	// regardless of flow count or horizon. Every reported percentile is
	// within StatsAccuracy of the exact one. The default (false)
	// retains everything and reproduces historical results
	// byte-for-byte.
	SketchStats bool
	// StatsAccuracy is the sketches' relative accuracy when SketchStats
	// is set (default 0.01: quantiles within 1% of exact percentiles).
	StatsAccuracy float64
	// QueueSampleCap, when positive, bounds the retained queue-sample
	// instants over long horizons: the monitor thins samples with an
	// adaptive stride (keeping every 2^k-th sampling tick, doubling k
	// as needed), so a multi-second campaign holds at most this many
	// instants, spread evenly over the whole run, instead of growing
	// with the horizon. Queue percentiles are then computed over the
	// thinned set. Thinning is by tick index alone, so sharded and
	// single-engine runs retain identical sample sets.
	QueueSampleCap int
	// Seed makes runs reproducible (default 1).
	Seed int64
}

// scenario lowers the Experiment onto the internal runner. It resolves
// every spec and attaches the observers.
func (e Experiment) scenario() (experiment.LoadScenario, []int64, error) {
	if e.Scheme == "" {
		e.Scheme = "hpcc"
	}
	scheme, err := experiment.ByName(e.Scheme)
	if err != nil {
		return experiment.LoadScenario{}, nil, err
	}
	if e.Topology == nil {
		e.Topology = Pod{}
	}
	spec, err := e.Topology.topoSpec()
	if err != nil {
		return experiment.LoadScenario{}, nil, err
	}
	gens := make([]workload.Generator, len(e.Traffic))
	for i, t := range e.Traffic {
		if t == nil {
			return experiment.LoadScenario{}, nil, fmt.Errorf("hpcc: Traffic[%d] is nil", i)
		}
		if gens[i], err = t.generator(); err != nil {
			return experiment.LoadScenario{}, nil, err
		}
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	sc := experiment.LoadScenario{
		Scheme:          scheme,
		Topo:            spec,
		Traffic:         gens,
		MaxFlows:        e.MaxFlows,
		Until:           toSim(e.Horizon),
		Drain:           toSim(e.Drain),
		PFC:             e.Lossless == nil || *e.Lossless,
		Seed:            e.Seed,
		Shards:          e.Shards,
		Speculate:       e.Speculate == nil || *e.Speculate,
		SpecWindow:      e.SpeculationWindow,
		CompletedWindow: e.CompletedFlowWindow,
		QueueSampleCap:  e.QueueSampleCap,
		SketchStats:     e.SketchStats,
		StatsAccuracy:   e.StatsAccuracy,
	}
	edges := e.edges()
	if e.SketchStats {
		// Streaming FCT sketches are keyed by their bucket edges up
		// front; pin them to the edges the result will be bucketed by.
		sc.FCTBucketEdges = edges
	}
	for _, o := range e.Observers {
		if o != nil {
			o.attach(&sc)
		}
	}
	return sc, edges, nil
}

// edges resolves the bucket edges for result statistics.
func (e Experiment) edges() []int64 {
	if len(e.BucketEdges) > 0 {
		return e.BucketEdges
	}
	for _, t := range e.Traffic {
		switch t := t.(type) {
		case Poisson:
			return t.CDF.edges()
		case *Poisson:
			return t.CDF.edges()
		case RPC:
			if t.ResponseCDF != nil {
				return t.ResponseCDF.edges()
			}
		case *RPC:
			if t.ResponseCDF != nil {
				return t.ResponseCDF.edges()
			}
		}
	}
	return CDF{}.edges()
}

// Run executes the experiment to its horizon plus drain and summarizes
// FCT-slowdown, queue and PFC statistics.
func (e Experiment) Run() (*SimResult, error) {
	sc, edges, err := e.scenario()
	if err != nil {
		return nil, err
	}
	r, err := experiment.RunLoad(sc)
	if err != nil {
		return nil, err
	}
	return summarize(r, edges), nil
}

// Start builds the experiment's fabric, installs its traffic sources
// and observers, and returns a Network for manual driving — start
// explicit flows, issue READs, advance virtual time. Traffic arrivals
// respect the Horizon (default 5 ms of virtual time); queue observers
// sample over the same window.
func (e Experiment) Start() (*Network, error) {
	sc, _, err := e.scenario()
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	net := experiment.StartManual(eng, sc)
	return &Network{
		eng:    eng,
		nw:     net.Network,
		scheme: sc.Scheme,
		rate:   sc.Topo.Rate(),
		rtt:    sc.Topo.BaseRTT(),
		obs:    net.Obs,
	}, nil
}

// summarize converts an internal LoadResult into the public SimResult,
// guarding every percentile against empty sets: a run with no
// qualifying flows reports 0 (with the explicit counts saying why),
// never NaN — so results always survive encoding/json.
func summarize(r *experiment.LoadResult, edges []int64) *SimResult {
	out := &SimResult{
		Scheme:               r.Scheme,
		Flows:                r.FCT.Count(),
		Censored:             r.Censored,
		SlowdownP50:          r.FCT.SlowdownQuantile(50),
		SlowdownP95:          r.FCT.SlowdownQuantile(95),
		SlowdownP99:          r.FCT.SlowdownQuantile(99),
		SlowdownP999:         r.FCT.SlowdownQuantile(99.9),
		ShortFlowP99Slowdown: r.FCT.ShortSlowdownQuantile(99),
		ShortFlows:           r.FCT.ShortCount(),
		QueueP50KB:           r.Queue.P50 / 1024,
		QueueP99KB:           r.Queue.P99 / 1024,
		QueueMaxKB:           r.Queue.Max / 1024,
		PFCPauseFraction:     r.PauseFrac,
		Drops:                r.Drops,
		RetainedStatBytes:    r.RetainedStatBytes,
		ShardsUsed:           r.Shards,
		Speculated:           r.Speculated,
		Epochs:               r.Sync.Epochs,
		SpecEpochs:           r.Sync.SpecEpochs,
		SpecCommits:          r.Sync.SpecCommits,
		SpecRollbacks:        r.Sync.SpecRollbacks,
		SyncOverhead:         r.Sync.SyncOverhead(),
	}
	for _, row := range r.FCT.Buckets(edges) {
		out.BucketP95 = append(out.BucketP95, BucketPoint{SizeHi: row.Hi, P95: row.Stats.P95, N: row.Stats.N})
	}
	return out
}
