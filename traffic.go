package hpcc

import (
	"fmt"
	"time"

	"hpcc/internal/stats"
	"hpcc/internal/workload"
)

// Traffic describes a composable traffic source installed on an
// Experiment's fabric: Poisson background load, incast bursts,
// all-to-all shuffles, RPC request-response over the RDMA READ path,
// or explicit arrival schedules. Multiple Traffic values compose on
// one fabric; generator i of an Experiment draws its randomness from
// Seed+i, so results depend only on the specs and the seed.
//
// The interface is sealed; custom arrival patterns are expressed with
// Schedule or ArrivalFunc.
type Traffic interface {
	generator() (workload.Generator, error)
}

// CDF is a flow-size distribution for Poisson and RPC traffic. The
// zero value defaults to the WebSearch distribution.
type CDF struct {
	inner *workload.CDF
}

// WebSearchCDF returns the DCTCP web-search flow-size distribution the
// testbed evaluation uses (§5.1).
func WebSearchCDF() CDF { return CDF{workload.WebSearch()} }

// FBHadoopCDF returns the Facebook Hadoop-cluster distribution the
// simulation evaluation uses (§5.3).
func FBHadoopCDF() CDF { return CDF{workload.FBHadoop()} }

// CDFFromFile loads a distribution from a "<bytes> <probability>" text
// file — the format the public ns-3 HPCC harness ships its traces in.
// Probabilities may be on a 0–1 or 0–100 scale.
func CDFFromFile(path string) (CDF, error) {
	c, err := workload.CDFFromFile(path)
	if err != nil {
		return CDF{}, err
	}
	return CDF{c}, nil
}

// CDFPoint is one knot of a piecewise-linear CDF.
type CDFPoint struct {
	Bytes int64
	Prob  float64
}

// NewCDF builds a distribution from explicit knots: sorted by size,
// nondecreasing probability, from 0 to 1.
func NewCDF(name string, points []CDFPoint) (CDF, error) {
	ps := make([]workload.Point, len(points))
	for i, p := range points {
		ps[i] = workload.Point{Bytes: p.Bytes, Prob: p.Prob}
	}
	c, err := workload.NewCDF(name, ps)
	if err != nil {
		return CDF{}, err
	}
	return CDF{c}, nil
}

// Name returns the distribution's name ("" for the zero value).
func (c CDF) Name() string {
	if c.inner == nil {
		return ""
	}
	return c.inner.Name()
}

func (c CDF) cdf() *workload.CDF {
	if c.inner == nil {
		return workload.WebSearch()
	}
	return c.inner
}

// edges returns the flow-size bucket edges natural to the
// distribution: the paper's published figure edges for the two public
// workloads, the CDF's own knots otherwise.
func (c CDF) edges() []int64 {
	w := c.cdf()
	switch w.Name() {
	case "WebSearch":
		return stats.WebSearchEdges()
	case "FB_Hadoop":
		return stats.FBHadoopEdges()
	}
	return w.Edges()
}

// Poisson is open-loop background load: flows between uniform-random
// host pairs, sizes drawn from CDF, exponential inter-arrivals tuned
// so the average host uplink carries Load of its capacity (§5.1's
// harness convention).
type Poisson struct {
	CDF  CDF
	Load float64 // target average link load, e.g. 0.3
	// MaxFlows caps arrivals; 0 uses the Experiment default.
	MaxFlows int
}

func (t Poisson) generator() (workload.Generator, error) {
	if t.Load < 0 {
		return nil, fmt.Errorf("hpcc: Poisson load %v is negative", t.Load)
	}
	return workload.PoissonSpec{CDF: t.CDF.cdf(), Load: t.Load, MaxFlows: t.MaxFlows}, nil
}

// Incast schedules periodic fan-in events: FanIn random senders each
// ship FlowSizeBytes to one random receiver, with the period derived
// so incast traffic totals LoadFraction of the aggregate host capacity
// — the paper's §5.3 setup is 60-to-1 × 500 KB at 2%.
type Incast struct {
	FanIn         int
	FlowSizeBytes int64
	LoadFraction  float64
}

func (t Incast) generator() (workload.Generator, error) {
	if t.FanIn < 2 {
		return nil, fmt.Errorf("hpcc: Incast fan-in %d must be at least 2", t.FanIn)
	}
	if t.FlowSizeBytes <= 0 || t.LoadFraction <= 0 {
		return nil, fmt.Errorf("hpcc: Incast needs positive FlowSizeBytes and LoadFraction")
	}
	return workload.IncastSpec{FanIn: t.FanIn, Size: t.FlowSizeBytes, LoadFrac: t.LoadFraction}, nil
}

// AllToAll is a shuffle stage: every host ships FlowSizeBytes to every
// other host — N·(N−1) concurrent flows per round. Rounds run
// closed-loop: the next round starts when every flow of the previous
// one has completed, like a MapReduce shuffle barrier.
type AllToAll struct {
	FlowSizeBytes int64
	Rounds        int // default 1
}

func (t AllToAll) generator() (workload.Generator, error) {
	if t.FlowSizeBytes <= 0 {
		return nil, fmt.Errorf("hpcc: AllToAll needs a positive FlowSizeBytes")
	}
	if t.Rounds < 0 {
		return nil, fmt.Errorf("hpcc: AllToAll rounds must be nonnegative")
	}
	return workload.AllToAllSpec{Size: t.FlowSizeBytes, Rounds: t.Rounds}, nil
}

// RPC is request-response traffic over the RDMA READ path (§4.2):
// requests arrive Poisson; each picks a uniform-random requester/
// responder pair and the requester pulls a response of ResponseBytes
// (or a size drawn from ResponseCDF) from the responder. Load is the
// average link load contributed by response bytes. Completions are
// measured at the requester — request issue to last response byte —
// and feed the result's FCT statistics like ordinary flows.
type RPC struct {
	ResponseBytes int64
	// ResponseCDF, if set, draws each response size instead.
	ResponseCDF *CDF
	Load        float64
	// MaxRequests caps requests; 0 uses the Experiment default.
	MaxRequests int
}

func (t RPC) generator() (workload.Generator, error) {
	if t.ResponseCDF == nil && t.ResponseBytes <= 0 {
		return nil, fmt.Errorf("hpcc: RPC needs ResponseBytes or ResponseCDF")
	}
	if t.Load <= 0 {
		return nil, fmt.Errorf("hpcc: RPC needs a positive load, got %v", t.Load)
	}
	spec := workload.RPCSpec{Size: t.ResponseBytes, Load: t.Load, MaxRequests: t.MaxRequests}
	if t.ResponseCDF != nil {
		spec.CDF = t.ResponseCDF.cdf()
	}
	return spec, nil
}

// FlowSpec is one explicitly scheduled flow arrival.
type FlowSpec struct {
	At        time.Duration
	Src, Dst  int
	SizeBytes int64
}

// Schedule replays an explicit arrival trace — the simplest custom
// traffic source.
type Schedule []FlowSpec

func (t Schedule) generator() (workload.Generator, error) {
	fl := make(workload.FlowList, len(t))
	for i, f := range t {
		if f.SizeBytes <= 0 {
			return nil, fmt.Errorf("hpcc: Schedule[%d] needs a positive size", i)
		}
		fl[i] = workload.FlowSpec{At: toSim(f.At), Src: f.Src, Dst: f.Dst, Size: f.SizeBytes}
	}
	return fl, nil
}

// ArrivalFunc is a lazy custom arrival iterator: called with
// i = 0, 1, 2, …, it returns the i-th arrival and whether one exists.
// Arrival times must be nondecreasing; the iterator is pulled one
// arrival ahead, so unbounded streams are cheap.
type ArrivalFunc func(i int) (FlowSpec, bool)

func (t ArrivalFunc) generator() (workload.Generator, error) {
	return workload.ArrivalFunc(func(i int) (workload.FlowSpec, bool) {
		f, ok := t(i)
		return workload.FlowSpec{At: toSim(f.At), Src: f.Src, Dst: f.Dst, Size: f.SizeBytes}, ok
	}), nil
}
