// Benchmarks regenerating every figure of the paper's evaluation, one
// per panel group (DESIGN.md §3 maps figures to benches). Each bench
// reports the figure's headline metric via b.ReportMetric so regression
// runs can track the reproduced results, and cmd/hpccexp prints the
// full tables.
package hpcc_test

import (
	"testing"

	"hpcc/internal/experiment"
	"hpcc/internal/sim"
	"hpcc/internal/topology"
)

// benchScale bounds the load-scenario benches. Figures keep the paper's
// topology shape; flow counts are CI-sized (see cmd/hpccexp -scale
// paper for full runs).
func benchScale() experiment.Scale {
	return experiment.Scale{MaxFlows: 400, Until: 8 * sim.Millisecond, Drain: 20 * sim.Millisecond, Seed: 1}
}

func benchFatTree() topology.FatTreeSpec { return topology.ScaledFatTree() }

func BenchmarkFig01PFCStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig01(0, 1)
		b.ReportMetric(r.SuppressedBandwidthFrac*100, "suppressed-bw-%")
		b.ReportMetric(float64(r.PFCFrames), "pfc-frames")
	}
}

func BenchmarkFig02aTimersFCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig02(benchScale())
		// Headline: big-flow p95 slowdown under conservative (Ti=900,
		// index 0) vs aggressive (Ti=55, index 2) timers.
		last := len(r.Buckets[0]) - 1
		b.ReportMetric(r.Buckets[0][last].Stats.P95, "conservative-p95")
		b.ReportMetric(r.Buckets[2][last].Stats.P95, "aggressive-p95")
	}
}

func BenchmarkFig02bTimersPFC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig02(benchScale())
		b.ReportMetric(r.Incast[2].PauseFrac*100, "aggressive-pause-%")
		b.ReportMetric(r.Incast[0].PauseFrac*100, "conservative-pause-%")
	}
}

func BenchmarkFig03ECNThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig03(benchScale())
		b.ReportMetric(r.Results[1][0].Queue.P99/1024, "highK-q99-KB")
		b.ReportMetric(r.Results[1][2].Queue.P99/1024, "lowK-q99-KB")
	}
}

func BenchmarkFig06TxVsRxRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig06(0, 1)
		b.ReportMetric(r.RebuildKB[0], "txrate-rebuild-KB")
		b.ReportMetric(r.RebuildKB[1], "rxrate-rebuild-KB")
	}
}

func BenchmarkFig09LongShort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig09LongShort(nil, 0, 1)
		b.ReportMetric(r.TailGbps[0], "hpcc-tail-Gbps")
		b.ReportMetric(r.TailGbps[1], "dcqcn-tail-Gbps")
	}
}

func BenchmarkFig09Incast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig09Incast(nil, 0, 1)
		b.ReportMetric(r.PeakKB[0], "hpcc-peak-KB")
		b.ReportMetric(r.PeakKB[1], "dcqcn-peak-KB")
	}
}

func BenchmarkFig09Mice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig09Mice(nil, 0, 1)
		b.ReportMetric(r.LatencyUs[0].P99, "hpcc-mice-p99-us")
		b.ReportMetric(r.LatencyUs[1].P99, "dcqcn-mice-p99-us")
	}
}

func BenchmarkFig09Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig09Fairness(nil, 0, 1)
		b.ReportMetric(r.Jain[0][3], "hpcc-jain-4flows")
	}
}

func BenchmarkFig10TestbedFCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig10(benchScale())
		// Headline: 50%-load short-flow p99 slowdown, HPCC vs DCQCN
		// (the paper's 95%-reduction claim).
		b.ReportMetric(r.Buckets[1][0][0].Stats.P99, "hpcc-short-p99")
		b.ReportMetric(r.Buckets[1][1][0].Stats.P99, "dcqcn-short-p99")
		b.ReportMetric(r.Results[1][0].Queue.P99/1024, "hpcc-q99-KB")
		b.ReportMetric(r.Results[1][1].Queue.P99/1024, "dcqcn-q99-KB")
	}
}

func BenchmarkFig11SixSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11(benchFatTree(), benchScale())
		idx := map[string]int{}
		for j, s := range r.Schemes {
			idx[s] = j
		}
		b.ReportMetric(r.Results[0][idx["HPCC"]].PauseFrac*100, "hpcc-pause-%")
		b.ReportMetric(r.Results[0][idx["DCQCN"]].PauseFrac*100, "dcqcn-pause-%")
		b.ReportMetric(r.Results[0][idx["HPCC"]].ShortFlowP95Latency(7_000), "hpcc-p95lat-us")
	}
}

func BenchmarkFig12FlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig12(benchFatTree(), benchScale())
		// Headline: spread of HPCC's p95 slowdown across flow-control
		// modes (the paper: nearly none) vs DCQCN's.
		b.ReportMetric(spreadP95(r, 1), "hpcc-fc-spread")
		b.ReportMetric(spreadP95(r, 0), "dcqcn-fc-spread")
	}
}

func spreadP95(r *experiment.Fig12Result, scheme int) float64 {
	lo, hi := 1e18, 0.0
	for mi := range r.Modes {
		var sum, n float64
		for _, row := range r.Buckets[scheme][mi] {
			if row.Stats.N > 0 {
				sum += row.Stats.P95
				n++
			}
		}
		if n == 0 {
			continue
		}
		avg := sum / n
		if avg < lo {
			lo = avg
		}
		if avg > hi {
			hi = avg
		}
	}
	return hi - lo
}

func BenchmarkFig13ReactionStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig13(0, 1)
		b.ReportMetric(r.AvgGbps[0], "perack-Gbps")
		b.ReportMetric(r.AvgGbps[1], "perrtt-Gbps")
		b.ReportMetric(r.AvgGbps[2], "hpcc-Gbps")
	}
}

func BenchmarkFig14WAISweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig14(nil, 0, 1)
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		b.ReportMetric(first.Queue95KB, "wai25-q95-KB")
		b.ReportMetric(last.Queue95KB, "wai300-q95-KB")
		b.ReportMetric(last.Jain, "wai300-jain")
	}
}

func BenchmarkAblationEtaMaxStage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationEtaMaxStage(0, 1)
		b.ReportMetric(rows[len(rows)-1].Queue95KB, "eta98ms5-q95-KB")
	}
}

func BenchmarkAblationINTQuantize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationINTQuantization(benchScale())
		b.ReportMetric(rows[0].FCTp95, "float-p95")
		b.ReportMetric(rows[1].FCTp95, "wire-p95")
	}
}

func BenchmarkTheoryLemma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.TheoryLemmaTable(100, 1)
	}
}
