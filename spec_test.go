package hpcc_test

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hpcc"
)

// Every preset Topology spec must round-trip: compose into an
// Experiment, build, carry one flow end to end.
func TestTopologySpecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		topo hpcc.Topology
		// src/dst pick hosts that exist in the built fabric.
		src, dst int
	}{
		{"star", hpcc.Star{Hosts: 4}, 0, 3},
		{"star-default", hpcc.Star{}, 0, 16},
		{"dumbbell", hpcc.Dumbbell{Pairs: 2, HostRateGbps: 25}, 0, 2},
		{"parkinglot", hpcc.ParkingLot{Segments: 3}, 0, 1},
		{"pod", hpcc.Pod{}, 0, 31},
		{"fattree", hpcc.FatTree{}, 0, 31},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, err := hpcc.Experiment{Topology: tc.topo}.Start()
			if err != nil {
				t.Fatal(err)
			}
			f := net.StartFlow(tc.src, tc.dst, 200_000)
			net.RunUntilIdle()
			if !f.Done() {
				t.Fatal("flow did not complete")
			}
			if s := f.Slowdown(); s < 1 {
				t.Fatalf("slowdown = %v, want >= 1", s)
			}
		})
	}
}

// A Custom topology must build with user-chosen host indices, route
// across its switches, and derive a sane base RTT.
func TestCustomTopologyRoundTrip(t *testing.T) {
	// Two racks of two hosts under one spine.
	var c hpcc.Custom
	spine := c.AddSwitch()
	for r := 0; r < 2; r++ {
		tor := c.AddSwitch()
		c.Link(tor, spine, 400, time.Microsecond)
		for i := 0; i < 2; i++ {
			c.Link(c.AddHost(), tor, 100, time.Microsecond)
		}
	}
	if c.NumHosts() != 4 {
		t.Fatalf("NumHosts = %d, want 4", c.NumHosts())
	}
	net, err := hpcc.Experiment{Topology: &c}.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Cross-rack RTT: 3 hops each way at 1 µs ⇒ base RTT > 6 µs.
	if rtt := net.BaseRTT(); rtt < 6*time.Microsecond || rtt > 20*time.Microsecond {
		t.Fatalf("derived base RTT = %v", rtt)
	}
	f := net.StartFlow(0, 3, 500_000) // crosses the spine
	net.RunUntilIdle()
	if !f.Done() {
		t.Fatal("cross-rack flow did not complete")
	}
}

// Custom topologies reject degenerate graphs.
func TestCustomTopologyValidation(t *testing.T) {
	var empty hpcc.Custom
	if _, err := (hpcc.Experiment{Topology: &empty}).Start(); err == nil {
		t.Fatal("accepted an empty custom topology")
	}
	var unlinked hpcc.Custom
	unlinked.AddHost()
	unlinked.AddHost()
	if _, err := (hpcc.Experiment{Topology: &unlinked}).Start(); err == nil {
		t.Fatal("accepted a custom topology with no links")
	}
	var dangling hpcc.Custom
	h := dangling.AddHost()
	dangling.AddHost()
	dangling.Link(h, hpcc.Node{}, 100, time.Microsecond) // zero Node = host 0, fine
	var other hpcc.Custom
	sw := other.AddSwitch()
	dangling.Link(h, sw, 100, time.Microsecond) // switch from another Custom
	if _, err := (hpcc.Experiment{Topology: &dangling}).Start(); err == nil {
		t.Fatal("accepted a link to a node this Custom never added")
	}
	var badRate hpcc.Custom
	a, b := badRate.AddHost(), badRate.AddHost()
	badRate.Link(a, b, -25, time.Microsecond)
	if _, err := (hpcc.Experiment{Topology: &badRate}).Start(); err == nil {
		t.Fatal("accepted a negative link rate")
	}
}

// Every Traffic spec must round-trip through Experiment.Run and
// produce completed-flow statistics.
func TestTrafficSpecRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		traffic hpcc.Traffic
	}{
		{"poisson", hpcc.Poisson{CDF: hpcc.FBHadoopCDF(), Load: 0.3, MaxFlows: 60}},
		{"incast", hpcc.Incast{FanIn: 4, FlowSizeBytes: 100_000, LoadFraction: 0.05}},
		{"alltoall", hpcc.AllToAll{FlowSizeBytes: 50_000}},
		{"rpc", hpcc.RPC{ResponseBytes: 40_000, Load: 0.2, MaxRequests: 40}},
		{"schedule", hpcc.Schedule{
			{At: 0, Src: 0, Dst: 5, SizeBytes: 100_000},
			{At: 100 * time.Microsecond, Src: 1, Dst: 5, SizeBytes: 100_000},
		}},
		{"arrivalfunc", hpcc.ArrivalFunc(func(i int) (hpcc.FlowSpec, bool) {
			if i >= 10 {
				return hpcc.FlowSpec{}, false
			}
			return hpcc.FlowSpec{
				At:  time.Duration(i) * 50 * time.Microsecond,
				Src: i % 5, Dst: 5, SizeBytes: 20_000,
			}, true
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := hpcc.Experiment{
				Topology: hpcc.Star{Hosts: 6},
				Traffic:  []hpcc.Traffic{tc.traffic},
				Horizon:  2 * time.Millisecond,
				Drain:    10 * time.Millisecond,
			}.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Flows == 0 {
				t.Fatal("no flows completed")
			}
			if res.SlowdownP50 < 1 {
				t.Fatalf("p50 slowdown = %v", res.SlowdownP50)
			}
		})
	}
}

// The RPC generator drives the READ path: every response must be
// pulled through an actual RDMA READ and measured at the requester.
func TestRPCTrafficDrivesReads(t *testing.T) {
	var reads int
	res, err := hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 6},
		Traffic:  []hpcc.Traffic{hpcc.RPC{ResponseBytes: 30_000, Load: 0.2, MaxRequests: 25}},
		Horizon:  2 * time.Millisecond,
		Drain:    10 * time.Millisecond,
		Observers: []hpcc.Observer{hpcc.FlowObserver{OnComplete: func(r hpcc.FlowRecord) {
			reads++
			if r.FCT <= 0 || r.SizeBytes != 30_000 {
				t.Errorf("bad read record %+v", r)
			}
		}}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reads == 0 || res.Flows != reads {
		t.Fatalf("reads = %d, result flows = %d", reads, res.Flows)
	}
}

// RPC on the dual-homed Pod exercises READ responses departing over
// either uplink (regression: negative READ flow IDs used to produce a
// negative port index and panic).
func TestRPCOnDualHomedPod(t *testing.T) {
	res, err := hpcc.Experiment{
		Topology: hpcc.Pod{},
		Traffic:  []hpcc.Traffic{hpcc.RPC{ResponseBytes: 20_000, Load: 0.1, MaxRequests: 30}},
		Horizon:  2 * time.Millisecond,
		Drain:    10 * time.Millisecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 {
		t.Fatal("no READs completed on the pod")
	}
}

// AllToAll rounds run closed-loop: N·(N−1) flows per round, all
// completing.
func TestAllToAllRounds(t *testing.T) {
	var flows int
	_, err := hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 4},
		Traffic:  []hpcc.Traffic{hpcc.AllToAll{FlowSizeBytes: 20_000, Rounds: 2}},
		Horizon:  5 * time.Millisecond,
		Drain:    10 * time.Millisecond,
		Observers: []hpcc.Observer{hpcc.FlowObserver{OnComplete: func(hpcc.FlowRecord) {
			flows++
		}}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4 * 3; flows != want {
		t.Fatalf("all-to-all completions = %d, want %d", flows, want)
	}
}

// Observers stream queue samples and flow records in virtual-time
// order while the simulation runs.
func TestObserversStream(t *testing.T) {
	var samples []hpcc.QueueSample
	var records []hpcc.FlowRecord
	_, err := hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 5},
		Traffic:  []hpcc.Traffic{hpcc.Incast{FanIn: 4, FlowSizeBytes: 200_000, LoadFraction: 0.1}},
		Horizon:  time.Millisecond,
		Drain:    5 * time.Millisecond,
		Observers: []hpcc.Observer{
			hpcc.QueueObserver{OnSample: func(s hpcc.QueueSample) { samples = append(samples, s) }},
			hpcc.FlowObserver{OnComplete: func(r hpcc.FlowRecord) { records = append(records, r) }},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no queue samples streamed")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At <= samples[i-1].At {
			t.Fatal("queue samples out of order")
		}
	}
	if len(records) == 0 {
		t.Fatal("no flow records streamed")
	}
	for _, r := range records {
		if r.Slowdown < 1 || r.FCT <= 0 {
			t.Fatalf("bad record %+v", r)
		}
	}

	// The Every stride thins the stream to every N-th tick (first tick
	// included), without changing the simulation.
	var strided []hpcc.QueueSample
	_, err = hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 5},
		Traffic:  []hpcc.Traffic{hpcc.Incast{FanIn: 4, FlowSizeBytes: 200_000, LoadFraction: 0.1}},
		Horizon:  time.Millisecond,
		Drain:    5 * time.Millisecond,
		Observers: []hpcc.Observer{
			hpcc.QueueObserver{Every: 4, OnSample: func(s hpcc.QueueSample) { strided = append(strided, s) }},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := (len(samples) + 3) / 4
	if len(strided) != want {
		t.Fatalf("Every=4 streamed %d samples, want %d of %d", len(strided), want, len(samples))
	}
	if len(strided) == 0 || strided[0] != samples[0] {
		t.Fatal("Every must include the first sample")
	}
}

// The PFC observer sees pause/resume transitions when a deep incast
// overwhelms a slow link in lossless mode.
func TestPFCObserverStreams(t *testing.T) {
	var events []hpcc.PFCEvent
	_, err := hpcc.Experiment{
		Scheme:   "dcqcn",
		Topology: hpcc.Star{Hosts: 17, LinkRateGbps: 25},
		Traffic:  []hpcc.Traffic{hpcc.Incast{FanIn: 16, FlowSizeBytes: 500_000, LoadFraction: 0.5}},
		Horizon:  2 * time.Millisecond,
		Drain:    20 * time.Millisecond,
		Observers: []hpcc.Observer{
			hpcc.PFCObserver{OnEvent: func(e hpcc.PFCEvent) { events = append(events, e) }},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Skip("no PFC events at this scale (pause threshold not reached)")
	}
	pauses, resumes := 0, 0
	for _, e := range events {
		if e.Paused {
			pauses++
		} else {
			resumes++
		}
	}
	if pauses == 0 || resumes == 0 {
		t.Fatalf("pauses = %d, resumes = %d, want both", pauses, resumes)
	}
}

// Legacy NetConfig strings must produce the same fabric and identical
// flow results as the equivalent spec through the new wrappers.
func TestBackCompatNetConfigMatchesSpecs(t *testing.T) {
	legacy, err := hpcc.NewNetwork(hpcc.NetConfig{Scheme: "hpcc", Hosts: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := hpcc.Experiment{Scheme: "hpcc", Topology: hpcc.Star{Hosts: 5}, Seed: 2}.Start()
	if err != nil {
		t.Fatal(err)
	}
	var fcts [2][]time.Duration
	for i, net := range []*hpcc.Network{legacy, spec} {
		var fs []*hpcc.Flow
		for s := 0; s < 4; s++ {
			fs = append(fs, net.StartFlow(s, 4, 250_000))
		}
		net.RunUntilIdle()
		for _, f := range fs {
			if !f.Done() {
				t.Fatal("flow unfinished")
			}
			fcts[i] = append(fcts[i], f.FCT())
		}
	}
	for j := range fcts[0] {
		if fcts[0][j] != fcts[1][j] {
			t.Fatalf("flow %d: legacy FCT %v != spec FCT %v", j, fcts[0][j], fcts[1][j])
		}
	}
}

// Legacy SimConfig must produce byte-identical JSON to the equivalent
// Experiment at the same seed — the string surface is a pure wrapper.
func TestBackCompatRunMatchesExperiment(t *testing.T) {
	legacy, err := hpcc.Run(hpcc.SimConfig{
		Scheme: "hpcc", Topology: "pod", Workload: "websearch",
		Load: 0.3, Flows: 120, Duration: 3 * time.Millisecond,
		Drain: 8 * time.Millisecond, Incast: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := hpcc.Experiment{
		Scheme:   "hpcc",
		Topology: hpcc.Pod{},
		Traffic: []hpcc.Traffic{
			hpcc.Poisson{CDF: hpcc.WebSearchCDF(), Load: 0.3},
			hpcc.Incast{FanIn: 16, FlowSizeBytes: 500_000, LoadFraction: 0.02},
		},
		Horizon:  3 * time.Millisecond,
		Drain:    8 * time.Millisecond,
		MaxFlows: 120,
		Seed:     5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(legacy)
	b, _ := json.Marshal(spec)
	if string(a) != string(b) {
		t.Fatalf("legacy != spec:\n%s\n%s", a, b)
	}
	if legacy.Flows == 0 {
		t.Fatal("empty run")
	}
	// Determinism: an identical experiment reruns byte-identically.
	again, err := hpcc.Run(hpcc.SimConfig{
		Scheme: "hpcc", Topology: "pod", Workload: "websearch",
		Load: 0.3, Flows: 120, Duration: 3 * time.Millisecond,
		Drain: 8 * time.Millisecond, Incast: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(again)
	if string(a) != string(c) {
		t.Fatal("same-seed rerun diverged")
	}
}

// The parking-lot sentinel bug: an explicit Hosts (segments) of 17
// must be honored, not silently remapped to 2.
func TestParkingLotHonorsExplicitSegments(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Topology: "parkinglot", Hosts: 17})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := net.NumHosts(), 2+2*17; got != want {
		t.Fatalf("17-segment parking lot has %d hosts, want %d", got, want)
	}
	// The default is still 2 segments.
	def, err := hpcc.NewNetwork(hpcc.NetConfig{Topology: "parkinglot"})
	if err != nil {
		t.Fatal(err)
	}
	if got := def.NumHosts(); got != 6 {
		t.Fatalf("default parking lot has %d hosts, want 6", got)
	}
}

// A run where no flow completes must report zeros (never NaN) and
// survive encoding/json, with the explicit counts saying why.
func TestNaNGuardsEmptyResult(t *testing.T) {
	res, err := hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 4},
		Traffic:  []hpcc.Traffic{hpcc.Schedule{}}, // no arrivals at all
		Horizon:  100 * time.Microsecond,
		Drain:    100 * time.Microsecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows != 0 || res.ShortFlows != 0 {
		t.Fatalf("expected an empty run, got %d flows", res.Flows)
	}
	for name, v := range map[string]float64{
		"SlowdownP50":          res.SlowdownP50,
		"SlowdownP95":          res.SlowdownP95,
		"SlowdownP99":          res.SlowdownP99,
		"ShortFlowP99Slowdown": res.ShortFlowP99Slowdown,
	} {
		if math.IsNaN(v) || v != 0 {
			t.Errorf("%s = %v, want 0", name, v)
		}
	}
	for _, b := range res.BucketP95 {
		if math.IsNaN(b.P95) {
			t.Errorf("bucket %d has NaN P95", b.SizeHi)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("empty result does not survive JSON: %v", err)
	}
}

// A run with flows but none short must still guard the short-flow
// percentile.
func TestNaNGuardShortFlows(t *testing.T) {
	res, err := hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 3},
		// One 1 MB flow: completes, but nothing ≤ 7 KB.
		Traffic: []hpcc.Traffic{hpcc.Schedule{{Src: 0, Dst: 2, SizeBytes: 1 << 20}}},
		Horizon: time.Millisecond,
		Drain:   10 * time.Millisecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows != 1 || res.ShortFlows != 0 {
		t.Fatalf("flows = %d, short = %d", res.Flows, res.ShortFlows)
	}
	if math.IsNaN(res.ShortFlowP99Slowdown) || res.ShortFlowP99Slowdown != 0 {
		t.Fatalf("ShortFlowP99Slowdown = %v, want 0", res.ShortFlowP99Slowdown)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("result does not survive JSON: %v", err)
	}
}

// CDFFromFile loads ns-3-style distribution files, on both probability
// scales.
func TestCDFFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.cdf")
	content := "# test distribution\n1000 0\n10000 50\n100000 100\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cdf, err := hpcc.CDFFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Name() != "custom" {
		t.Fatalf("name = %q", cdf.Name())
	}
	res, err := hpcc.Experiment{
		Topology: hpcc.Star{Hosts: 5},
		Traffic:  []hpcc.Traffic{hpcc.Poisson{CDF: cdf, Load: 0.3, MaxFlows: 40}},
		Horizon:  2 * time.Millisecond,
		Drain:    10 * time.Millisecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 {
		t.Fatal("no flows from the custom CDF")
	}
	// Bucket edges derive from the custom CDF's knots.
	if len(res.BucketP95) != 3 || res.BucketP95[2].SizeHi != 100000 {
		t.Fatalf("buckets = %+v", res.BucketP95)
	}
	if _, err := hpcc.CDFFromFile(filepath.Join(dir, "missing.cdf")); err == nil {
		t.Fatal("accepted a missing file")
	}
}

// Experiment validation surfaces bad specs as errors, not panics.
func TestExperimentValidation(t *testing.T) {
	bad := []hpcc.Experiment{
		{Scheme: "nope"},
		{Topology: hpcc.Star{Hosts: 1}},
		{Topology: hpcc.Pod{Servers: 3}},
		{Traffic: []hpcc.Traffic{hpcc.Poisson{Load: -0.5}}},
		{Traffic: []hpcc.Traffic{hpcc.Incast{FanIn: 1, FlowSizeBytes: 1, LoadFraction: 0.1}}},
		{Traffic: []hpcc.Traffic{hpcc.RPC{}}},
		{Traffic: []hpcc.Traffic{nil}},
	}
	for i, e := range bad {
		if _, err := e.Run(); err == nil {
			t.Errorf("case %d: accepted invalid experiment", i)
		}
	}
}
