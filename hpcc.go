// Package hpcc is a from-scratch Go reproduction of "HPCC: High
// Precision Congestion Control" (Li et al., SIGCOMM 2019): the HPCC
// sender algorithm driven by in-network telemetry (INT), the RoCEv2-
// style transport and switch data plane it runs on, the baseline
// schemes it is evaluated against (DCQCN, TIMELY, DCTCP and their
// windowed variants), and a deterministic packet-level simulator that
// regenerates every figure of the paper's evaluation.
//
// Three API layers:
//
//   - Sender: the HPCC congestion-control algorithm alone, fed with INT
//     feedback you provide — for embedding in other stacks or studies.
//   - Network / Flow: a simulated data-center fabric with explicit flow
//     control — for micro-benchmarks (incasts, fairness, rate traces).
//   - Run / SimConfig: whole-cluster load experiments (Poisson traffic
//     over FatTree or testbed-PoD topologies) with FCT-slowdown, queue
//     and PFC statistics.
//
// The figure-by-figure reproduction lives in cmd/hpccexp; the raw
// experiment code in internal/experiment.
package hpcc

import (
	"time"

	"hpcc/internal/cc"
	hpcccc "hpcc/internal/cc/hpcc"
	"hpcc/internal/packet"
	"hpcc/internal/sim"
)

// INTHop is one switch egress-port telemetry record, as stamped into a
// packet at dequeue (Figure 7 of the paper).
type INTHop struct {
	// BandwidthBps is the egress link capacity in bits per second.
	BandwidthBps int64
	// Timestamp is when the packet left the egress port.
	Timestamp time.Duration
	// TxBytes is the port's cumulative transmitted-byte counter.
	TxBytes uint64
	// QueueBytes is the egress queue depth at dequeue.
	QueueBytes int64
}

// SenderConfig parameterizes the HPCC algorithm (§3.3: the three
// tunables) for standalone use.
type SenderConfig struct {
	// LineRateBps is the NIC speed in bits per second.
	LineRateBps int64
	// BaseRTT is the network-wide base RTT T.
	BaseRTT time.Duration
	// MTU is the data payload per packet (default 1000 bytes).
	MTU int
	// Eta is the target utilization η (default 0.95).
	Eta float64
	// MaxStage bounds consecutive additive-increase rounds (default 5).
	MaxStage int
	// WAIBytes is the additive-increase step (default: the §3.3 rule
	// of thumb for 100 concurrent flows).
	WAIBytes float64
}

// Sender is a standalone HPCC flow state machine (Algorithm 1). Feed it
// one Ack per acknowledgment; read WindowBytes and RateBps to drive
// transmission. Timers the algorithm schedules internally are queued
// and fired by Advance — call it as your clock progresses.
type Sender struct {
	inner *hpcccc.HPCC
	now   func() time.Duration
	// timers holds CC-internal callbacks ordered by due time (FIFO
	// among equal times). The queue is tiny (HPCC schedules at most a
	// handful of timers), so a sorted slice beats a heap.
	timers []senderTimer
}

type senderTimer struct {
	at time.Duration
	fn func()
}

// Ack carries one acknowledgment's feedback into the Sender.
type Ack struct {
	// RTT is the measured round-trip time of the acknowledged packet.
	RTT time.Duration
	// AckSeq is the cumulative acknowledgment (next expected byte).
	AckSeq int64
	// SndNxt is the sender's next-to-send byte offset right now.
	SndNxt int64
	// Hops is the INT stack echoed by the receiver, sender-to-receiver
	// order.
	Hops []INTHop
	// PathID detects route changes (XOR of switch IDs, Figure 7).
	PathID uint16
}

// NewSender builds a standalone HPCC instance. now supplies the current
// time (monotonic); it is only used to timestamp state transitions.
func NewSender(cfg SenderConfig, now func() time.Duration) *Sender {
	if cfg.MTU == 0 {
		cfg.MTU = packet.DefaultMTU
	}
	inner := hpcccc.New(hpcccc.Config{
		Eta:      cfg.Eta,
		MaxStage: cfg.MaxStage,
		WAI:      cfg.WAIBytes,
	})().(*hpcccc.HPCC)
	s := &Sender{inner: inner, now: now}
	inner.Init(cc.Env{
		Now:      func() sim.Time { return sim.Time(now().Nanoseconds()) * sim.Nanosecond },
		Schedule: s.schedule,
		LineRate: sim.Rate(cfg.LineRateBps),
		BaseRTT:  sim.Time(cfg.BaseRTT.Nanoseconds()) * sim.Nanosecond,
		MTU:      cfg.MTU,
	})
	return s
}

// schedule queues a CC-internal timer d after the current clock,
// keeping the queue sorted by due time (FIFO among equal times).
func (s *Sender) schedule(d sim.Time, fn func()) {
	at := s.now() + fromSim(d)
	t := senderTimer{at: at, fn: fn}
	i := len(s.timers)
	for i > 0 && (s.timers[i-1].at > at) {
		i--
	}
	s.timers = append(s.timers, senderTimer{})
	copy(s.timers[i+1:], s.timers[i:])
	s.timers[i] = t
}

// Advance fires every queued CC-internal timer due at or before now,
// in due-time order. Call it as your clock progresses (for example
// once per received ACK batch, after moving the clock). Timers a
// callback schedules are processed in the same call if already due.
// Without Advance, schemes that rely on internal clocks would silently
// stall; HPCC itself is ACK-clocked, so OnAck alone drives it, but
// Advance keeps the standalone surface faithful to the embedded one.
func (s *Sender) Advance(now time.Duration) {
	for len(s.timers) > 0 && s.timers[0].at <= now {
		t := s.timers[0]
		s.timers = s.timers[1:]
		t.fn()
	}
}

// PendingTimers reports how many CC-internal timers are queued.
func (s *Sender) PendingTimers() int { return len(s.timers) }

// OnAck processes one acknowledgment.
func (s *Sender) OnAck(a Ack) {
	hops := make([]packet.Hop, len(a.Hops))
	for i, h := range a.Hops {
		hops[i] = packet.Hop{
			B:       sim.Rate(h.BandwidthBps),
			TS:      toSim(h.Timestamp),
			TxBytes: h.TxBytes,
			RxBytes: h.TxBytes,
			QLen:    h.QueueBytes,
		}
	}
	s.inner.OnAck(&cc.AckEvent{
		Now:    toSim(s.now()),
		RTT:    toSim(a.RTT),
		AckSeq: a.AckSeq,
		SndNxt: a.SndNxt,
		Hops:   hops,
		PathID: a.PathID,
	})
}

// WindowBytes returns the current inflight-byte limit W.
func (s *Sender) WindowBytes() float64 { return s.inner.WindowBytes() }

// RateBps returns the current pacing rate R = W/T in bits per second.
func (s *Sender) RateBps() float64 { return s.inner.RateBps() }

// Utilization returns the EWMA estimate U of normalized inflight bytes
// on the most loaded link.
func (s *Sender) Utilization() float64 { return s.inner.Utilization() }

// toSim converts a wall-clock duration to simulator picoseconds.
func toSim(d time.Duration) sim.Time {
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond
}

// fromSim converts simulator time to a wall-clock duration (truncating
// to nanoseconds).
func fromSim(t sim.Time) time.Duration {
	return time.Duration(t.Nanoseconds()) * time.Nanosecond
}
