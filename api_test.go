package hpcc_test

import (
	"testing"
	"time"

	"hpcc"
	"hpcc/internal/sim"
)

// A scheduled flow must cost zero simulation events until it starts —
// the old implementation re-armed a 1 µs poll timer to attach the
// OnProgress callback, burning ~10⁶ events per simulated second of lead
// time.
func TestScheduledFlowCostsNothingUntilStart(t *testing.T) {
	meter := sim.AttachMeter()
	defer meter.Detach()
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Hosts: 3, LinkRateGbps: 25})
	if err != nil {
		t.Fatal(err)
	}
	var progressed int64
	f := net.StartFlowAt(50*time.Millisecond, 0, 2, 100_000)
	f.OnProgress(func(n int64) { progressed += n })

	// Run right up to the start time: the network is empty, so the only
	// admissible work is bookkeeping — far fewer events than the ~50k a
	// µs-resolution poll would burn.
	net.Run(49 * time.Millisecond)
	if progressed != 0 {
		t.Fatal("flow progressed before its start time")
	}
	if ev := meter.Events(); ev > 100 {
		t.Fatalf("idle wait burned %d events, want ~0 (busy-poll regression)", ev)
	}

	// After the start time the callback (registered pre-start) must see
	// every acknowledged byte.
	net.Run(10 * time.Millisecond)
	if !f.Done() {
		t.Fatal("scheduled flow did not complete")
	}
	if progressed != 100_000 {
		t.Fatalf("OnProgress saw %d bytes, want 100000", progressed)
	}
	if s := f.Slowdown(); s < 1 || s > 5 {
		t.Fatalf("slowdown = %v", s)
	}
}

// OnProgress registered after a flow already materialized still
// attaches directly.
func TestOnProgressAfterStart(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Hosts: 3, LinkRateGbps: 25})
	if err != nil {
		t.Fatal(err)
	}
	f := net.StartFlow(0, 2, 50_000)
	var progressed int64
	f.OnProgress(func(n int64) { progressed += n })
	net.RunUntilIdle()
	if progressed != 50_000 {
		t.Fatalf("OnProgress saw %d bytes, want 50000", progressed)
	}
}

// Slowdown is 0 while in flight and ≥ 1 once done, for scheduled flows
// too.
func TestSlowdownLifecycle(t *testing.T) {
	net, err := hpcc.NewNetwork(hpcc.NetConfig{Hosts: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := net.StartFlowAt(100*time.Microsecond, 0, 1, 1<<20)
	if f.Slowdown() != 0 {
		t.Fatal("slowdown nonzero before start")
	}
	net.Run(50 * time.Microsecond)
	if f.Slowdown() != 0 || f.Done() {
		t.Fatal("flow ran early")
	}
	net.RunUntilIdle()
	if s := f.Slowdown(); s < 1 {
		t.Fatalf("slowdown = %v, want >= 1", s)
	}
}

// Run with the FB_Hadoop workload exercises the second public CDF end
// to end (bucket edges differ from WebSearch).
func TestRunFBHadoop(t *testing.T) {
	res, err := hpcc.Run(hpcc.SimConfig{
		Scheme:   "hpcc",
		Workload: "fbhadoop",
		Flows:    150,
		Duration: 4 * time.Millisecond,
		Drain:    12 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 {
		t.Fatal("no flows completed")
	}
	if res.SlowdownP50 < 1 {
		t.Fatalf("p50 slowdown = %v", res.SlowdownP50)
	}
	// FB_Hadoop's smallest bucket tops out at 324 B.
	if len(res.BucketP95) != 10 || res.BucketP95[0].SizeHi != 324 {
		t.Fatalf("buckets = %+v", res.BucketP95)
	}
}
